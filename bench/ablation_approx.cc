// Ablation: effect of the surface approximation on the REAL experiment —
// the study the paper leaves as future work ("we also plan to investigate
// the effect of approximation on the performance of HEEB").
//
// Sweeps the bicubic control-grid density (3x3 up to 17x17) against the
// exact Monte Carlo surface, reporting both approximation error and cache
// misses. Expected shape: misses degrade gracefully as the grid coarsens;
// the paper's 5x5 sits near the exact surface.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "harness/flags.h"
#include "sjoin/analysis/ar1_fit.h"
#include "sjoin/analysis/melbourne.h"
#include "sjoin/core/heeb_caching_policy.h"
#include "sjoin/core/model_repo.h"
#include "sjoin/core/precompute.h"
#include "sjoin/engine/cache_simulator.h"
#include "sjoin/stochastic/ar1_process.h"

using namespace sjoin;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  std::int64_t days = flags.GetInt("days", 3650);
  std::uint64_t seed = static_cast<std::uint64_t>(flags.GetInt("seed", 2005));
  int paths = static_cast<int>(flags.GetInt("paths", 300));
  std::int64_t memory = flags.GetInt("memory", 150);
  flags.CheckConsumed();

  auto series =
      SyntheticMelbourneDeciCelsius(static_cast<std::size_t>(days), seed);
  auto fit = FitAr1(series);
  if (!fit.has_value()) return 1;
  auto [lo_it, hi_it] = std::minmax_element(series.begin(), series.end());
  Value v_min = *lo_it - 20;
  Value v_max = *hi_it + 20;
  Ar1Process model(fit->phi0, fit->phi1, fit->sigma, series.front());

  double alpha = static_cast<double>(memory);
  Time horizon = std::min<Time>(4 * memory + 50, 1500);
  // Borrowed from the shared ModelRepo: one build per model key.
  ModelRepo& repo = ModelRepo::Global();
  std::shared_ptr<const HeebSurfaceTable> surface =
      repo.Ar1CachingSurfaceTable(model, alpha, horizon, v_min, v_max, v_min,
                                  v_max, 10, paths, seed + 7);

  CacheSimulator sim(
      {.capacity = static_cast<std::size_t>(memory), .warmup = 0});
  auto misses_with = [&](std::function<double(Value, Value)> evaluator) {
    HeebCachingPolicy::Options options;
    options.mode = HeebCachingPolicy::Mode::kEvaluator;
    options.alpha = alpha;
    options.evaluator = std::move(evaluator);
    HeebCachingPolicy policy(nullptr, options);
    return sim.Run(series, policy).misses;
  };

  std::printf("# Ablation: bicubic control-grid density (REAL, memory=%lld)"
              "\ncontrol_points,max_abs_error,misses\n",
              static_cast<long long>(memory));
  std::printf("exact,0.00000,%lld\n",
              static_cast<long long>(misses_with(
                  [&](Value v, Value x) { return surface->At(v, x); })));
  for (int control : {3, 5, 9, 17}) {
    std::shared_ptr<const BicubicSurface> approx =
        repo.Ar1CachingSurfaceBicubic(model, alpha, horizon, v_min, v_max,
                                      v_min, v_max, 10, paths, seed + 7,
                                      control, control);
    double worst = 0.0;
    for (Value v = v_min; v <= v_max; v += 5) {
      for (Value x = v_min; x <= v_max; x += 10) {
        worst = std::max(worst,
                         std::fabs(approx->At(static_cast<double>(v),
                                              static_cast<double>(x)) -
                                   surface->At(v, x)));
      }
    }
    std::printf("%dx%d,%.5f,%lld\n", control, control, worst,
                static_cast<long long>(misses_with([&](Value v, Value x) {
                  return approx->At(static_cast<double>(v),
                                    static_cast<double>(x));
                })));
    std::fflush(stdout);
  }
  return 0;
}
