// Microbenchmarks for the HEEB computation modes of Section 4.4: the cost
// of one replacement decision under direct summation, time-incremental
// updates, and precomputed walk tables.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/random_walk_process.h"
#include "sjoin/stochastic/stream_sampler.h"

namespace sjoin {
namespace {

struct TrendSetup {
  TrendSetup()
      : r(1.0, -1.0,
          DiscreteDistribution::TruncatedDiscretizedNormal(0, 1.0, -10, 10)),
        s(1.0, 0.0,
          DiscreteDistribution::TruncatedDiscretizedNormal(0, 2.0, -15,
                                                           15)) {
    Rng rng(1);
    pair = SampleStreamPair(r, s, 400, rng);
  }
  LinearTrendProcess r;
  LinearTrendProcess s;
  StreamPair pair;
};

void BM_HeebTrend(benchmark::State& state, HeebJoinPolicy::Mode mode) {
  static TrendSetup* setup = new TrendSetup;
  HeebJoinPolicy::Options options;
  options.mode = mode;
  options.alpha = 10.0;
  options.horizon = static_cast<Time>(state.range(0));
  JoinSimulator sim({.capacity = 10, .warmup = 0});
  for (auto _ : state) {
    HeebJoinPolicy policy(&setup->r, &setup->s, options);
    benchmark::DoNotOptimize(
        sim.Run(setup->pair.r, setup->pair.s, policy).total_results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(setup->pair.r.size()));
}

void BM_HeebDirect(benchmark::State& state) {
  BM_HeebTrend(state, HeebJoinPolicy::Mode::kDirect);
}
void BM_HeebTimeIncremental(benchmark::State& state) {
  BM_HeebTrend(state, HeebJoinPolicy::Mode::kTimeIncremental);
}
void BM_HeebValueIncremental(benchmark::State& state) {
  BM_HeebTrend(state, HeebJoinPolicy::Mode::kValueIncremental);
}

BENCHMARK(BM_HeebDirect)->Arg(60)->Arg(150);
BENCHMARK(BM_HeebTimeIncremental)->Arg(60)->Arg(150);
BENCHMARK(BM_HeebValueIncremental)->Arg(60)->Arg(150);

void BM_HeebWalkTable(benchmark::State& state) {
  RandomWalkProcess r(DiscreteDistribution::DiscretizedNormal(0.0, 1.0), 0);
  RandomWalkProcess s(DiscreteDistribution::DiscretizedNormal(0.0, 1.0), 0);
  Rng rng(2);
  auto pair = SampleStreamPair(r, s, 400, rng);
  HeebJoinPolicy::Options options;
  options.mode = HeebJoinPolicy::Mode::kWalkTable;
  options.alpha = 10.0;
  options.horizon = static_cast<Time>(state.range(0));
  JoinSimulator sim({.capacity = 10, .warmup = 0});
  for (auto _ : state) {
    HeebJoinPolicy policy(&r, &s, options);
    benchmark::DoNotOptimize(
        sim.Run(pair.r, pair.s, policy).total_results);
  }
}
BENCHMARK(BM_HeebWalkTable)->Arg(60);

}  // namespace
}  // namespace sjoin

BENCHMARK_MAIN();
