// Microbenchmarks for the replacement policies themselves: full simulated
// runs per second for each baseline and HEEB mode at TOWER scale, plus the
// caching-side policies on the REAL-like workload.

#include <benchmark/benchmark.h>

#include <memory>

#include "sjoin/analysis/melbourne.h"
#include "sjoin/core/heeb_caching_policy.h"
#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/engine/cache_simulator.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/policies/lfd_policy.h"
#include "sjoin/policies/lfu_policy.h"
#include "sjoin/policies/life_policy.h"
#include "sjoin/policies/lru_policy.h"
#include "sjoin/policies/prob_policy.h"
#include "sjoin/policies/random_policy.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/stationary_process.h"
#include "sjoin/stochastic/stream_sampler.h"

namespace sjoin {
namespace {

struct JoinSetup {
  JoinSetup()
      : r(1.0, -1.0,
          DiscreteDistribution::TruncatedDiscretizedNormal(0, 1.0, -10, 10)),
        s(1.0, 0.0,
          DiscreteDistribution::TruncatedDiscretizedNormal(0, 2.0, -15,
                                                           15)) {
    Rng rng(1);
    pair = SampleStreamPair(r, s, 1000, rng);
  }
  LinearTrendProcess r;
  LinearTrendProcess s;
  StreamPair pair;
};

JoinSetup& Setup() {
  static JoinSetup* setup = new JoinSetup;
  return *setup;
}

template <typename MakePolicy>
void RunJoinBench(benchmark::State& state, MakePolicy make_policy) {
  JoinSetup& setup = Setup();
  JoinSimulator sim({.capacity = 10, .warmup = 40});
  for (auto _ : state) {
    auto policy = make_policy(setup);
    benchmark::DoNotOptimize(
        sim.Run(setup.pair.r, setup.pair.s, *policy).counted_results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(setup.pair.r.size()));
}

void BM_PolicyRand(benchmark::State& state) {
  RunJoinBench(state, [](JoinSetup&) {
    return std::make_unique<RandomPolicy>(1, Time{25});
  });
}
BENCHMARK(BM_PolicyRand);

void BM_PolicyProb(benchmark::State& state) {
  RunJoinBench(state, [](JoinSetup&) {
    return std::make_unique<ProbPolicy>(Time{25});
  });
}
BENCHMARK(BM_PolicyProb);

void BM_PolicyLife(benchmark::State& state) {
  RunJoinBench(state,
               [](JoinSetup&) { return std::make_unique<LifePolicy>(25); });
}
BENCHMARK(BM_PolicyLife);

void BM_PolicyHeebIncremental(benchmark::State& state) {
  RunJoinBench(state, [](JoinSetup& setup) {
    HeebJoinPolicy::Options options;
    options.mode = HeebJoinPolicy::Mode::kTimeIncremental;
    options.alpha = 11.0;
    options.horizon = 150;
    return std::make_unique<HeebJoinPolicy>(&setup.r, &setup.s, options);
  });
}
BENCHMARK(BM_PolicyHeebIncremental);

void BM_CachingPolicies(benchmark::State& state) {
  auto series = SyntheticMelbourneDeciCelsius(1500, 7);
  CacheSimulator sim({.capacity = 50, .warmup = 0});
  int which = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::int64_t hits = 0;
    if (which == 0) {
      LruCachingPolicy policy;
      hits = sim.Run(series, policy).hits;
    } else if (which == 1) {
      LfuCachingPolicy policy;
      hits = sim.Run(series, policy).hits;
    } else {
      LfdCachingPolicy policy(series);
      hits = sim.Run(series, policy).hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(series.size()));
}
BENCHMARK(BM_CachingPolicies)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace sjoin

BENCHMARK_MAIN();
