// Figure 19: effect of FlowExpect's look-ahead distance. Linear trend with
// bounded uniform noise (the FLOOR configuration), stream length 500,
// memory 20, as in Section 6.4.
//
// Expected shape: a short look-ahead (around 5) already captures most of
// the benefit; longer look-aheads improve little while costs grow.
// RAND / PROB / LIFE are flat reference lines.

#include <cstdio>
#include <vector>

#include "harness/configs.h"
#include "harness/flags.h"
#include "sjoin/common/rng.h"
#include "sjoin/core/flow_expect_policy.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/policies/life_policy.h"
#include "sjoin/policies/prob_policy.h"
#include "sjoin/policies/random_policy.h"
#include "sjoin/stochastic/stream_sampler.h"

using namespace sjoin;
using namespace sjoin::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Time len = flags.GetInt("len", 500);
  std::size_t cache = static_cast<std::size_t>(flags.GetInt("cache", 20));
  int runs = static_cast<int>(flags.GetInt("runs", 3));
  std::uint64_t seed = static_cast<std::uint64_t>(flags.GetInt("seed", 5));
  Time max_lookahead = flags.GetInt("max_lookahead", 30);
  flags.CheckConsumed();

  JoinWorkload workload = MakeFloor();
  Rng rng(seed);
  std::vector<StreamPair> pairs;
  for (int run = 0; run < runs; ++run) {
    pairs.push_back(SampleStreamPair(*workload.r, *workload.s, len, rng));
  }
  JoinSimulator sim(
      {.capacity = cache, .warmup = static_cast<Time>(4 * cache)});

  auto average = [&](ReplacementPolicy& policy) {
    double total = 0.0;
    for (const StreamPair& pair : pairs) {
      total += static_cast<double>(
          sim.Run(pair.r, pair.s, policy).counted_results);
    }
    return total / static_cast<double>(pairs.size());
  };

  RandomPolicy rand(seed + 17, workload.life_window);
  ProbPolicy prob(workload.life_window);
  LifePolicy life(workload.life_window);
  double rand_avg = average(rand);
  double prob_avg = average(prob);
  double life_avg = average(life);

  std::printf("# Figure 19: FlowExpect look-ahead sweep (FLOOR, len=%lld, "
              "memory=%zu, runs=%d)\n",
              static_cast<long long>(len), cache, runs);
  std::printf("lookahead,FLOWEXPECT,RAND,PROB,LIFE\n");
  for (Time lookahead : std::vector<Time>{1, 2, 3, 5, 8, 10, 15, 20, 25,
                                          30}) {
    if (lookahead > max_lookahead) break;
    FlowExpectPolicy flow_expect(workload.r.get(), workload.s.get(),
                                 {.lookahead = lookahead});
    std::printf("%lld,%.1f,%.1f,%.1f,%.1f\n",
                static_cast<long long>(lookahead), average(flow_expect),
                rand_avg, prob_avg, life_avg);
    std::fflush(stdout);
  }
  return 0;
}
