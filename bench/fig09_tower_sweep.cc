// Figure 09: TOWER — average join counts vs memory size (1..50).
//
// Expected shape: every algorithm improves with memory and (except WALK)
// converges to OPT-offline; HEEB converges fastest.
// Paper scale: --runs=50 --len=5000.

#include "harness/runner.h"

int main(int argc, char** argv) {
  sjoin::bench::RosterMainSpec spec;
  spec.figure_name = "Figure 09 (TOWER)";
  spec.workloads = {[] { return sjoin::bench::MakeTower(); }};
  return sjoin::bench::RunRosterMain(argc, argv, spec);
}
