// Figure 14: how HEEB allocates cache between the two streams under the
// TOWER configuration, starting from identical streams and then (a)
// lagging R behind S by 2 and 4 steps, (b) doubling and quadrupling S's
// noise standard deviation.
//
// Expected shape: identical streams split the cache evenly (~0.5);
// lagging R gets much less; a higher-variance S also shifts allocation
// toward R (S tuples that fall behind the narrow R window are dropped),
// i.e. the fraction of R tuples rises above 0.5.

#include <cstdio>
#include <string>
#include <vector>

#include "harness/configs.h"
#include "harness/flags.h"
#include "sjoin/common/rng.h"
#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/stochastic/stream_sampler.h"

using namespace sjoin;
using namespace sjoin::bench;

namespace {

std::vector<double> FractionSeries(const JoinWorkload& workload,
                                   std::size_t cache, Time len,
                                   std::uint64_t seed) {
  HeebJoinPolicy::Options options;
  options.mode = workload.heeb_mode;
  options.alpha = workload.heeb_alpha;
  options.horizon = workload.heeb_horizon;
  HeebJoinPolicy policy(workload.r.get(), workload.s.get(), options);
  Rng rng(seed);
  auto pair = SampleStreamPair(*workload.r, *workload.s, len, rng);
  JoinSimulator sim({.capacity = cache,
                     .warmup = 0,
                     .window = std::nullopt,
                     .track_cache_composition = true});
  return sim.Run(pair.r, pair.s, policy).r_fraction_by_time;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Time len = flags.GetInt("len", 2000);
  std::size_t cache = static_cast<std::size_t>(flags.GetInt("cache", 10));
  Time stride = flags.GetInt("stride", 50);
  std::uint64_t seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  flags.CheckConsumed();

  struct Variant {
    std::string label;
    JoinWorkload workload;
  };
  std::vector<Variant> variants;
  variants.push_back({"same", MakeTower(0.0, 1.0, /*equal_streams=*/true)});
  variants.push_back({"R_lags_2", MakeTower(2.0, 1.0, true)});
  variants.push_back({"R_lags_4", MakeTower(4.0, 1.0, true)});
  variants.push_back({"S_sd_x2", MakeTower(0.0, 2.0, true)});
  variants.push_back({"S_sd_x4", MakeTower(0.0, 4.0, true)});

  std::printf("# Figure 14: fraction of cache taken by R tuples under "
              "HEEB (TOWER variants, cache=%zu)\n",
              cache);
  std::printf("time");
  for (const Variant& variant : variants) {
    std::printf(",%s", variant.label.c_str());
  }
  std::printf("\n");

  std::vector<std::vector<double>> series;
  for (const Variant& variant : variants) {
    series.push_back(FractionSeries(variant.workload, cache, len, seed));
  }
  for (Time t = stride; t < len; t += stride) {
    std::printf("%lld", static_cast<long long>(t));
    for (const auto& s : series) {
      // Smooth with a trailing window of `stride` steps.
      double sum = 0.0;
      for (Time u = t - stride; u < t; ++u) {
        sum += s[static_cast<std::size_t>(u)];
      }
      std::printf(",%.3f", sum / static_cast<double>(stride));
    }
    std::printf("\n");
  }
  return 0;
}
