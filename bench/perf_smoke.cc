// Perf-telemetry baseline: times JoinSimulator::Run under the policies
// that matter — HEEB in all four computation modes, FlowExpect, the
// RAND/PROB/LIFE baselines and OPT-offline — plus CacheSimulator under
// LRU/LFU/RAND (and PROB via the joining-policy route) on fixed seeds,
// and emits BENCH_perf.json so the perf trajectory of future PRs has a
// measured anchor (steps/sec, ns/step, peak candidate count per
// scenario). Both simulators are StreamEngine façades, so the rows also
// anchor the engine's binary instantiation and the Theorem 1 reduction
// path.
//
// Runs serially on purpose: per-run wall times feed ns/step, and parallel
// execution would contend for the core(s) being measured. The sharded
// rows are the one exception — an inline (threads=1) shard sweep at
// {1, 2, 4, 8} shards isolates sharding itself, and a full shards x
// threads matrix on HEEB-value-incr / CACHE-LRU / CACHE-PROB measures the
// persistent worker team (sjoin-perf-v3 rows carry shards, threads and an
// adaptive flag; shards=1/threads=1 rows are the serial baselines the
// sweeps read against). Skewed workloads (ZIPF08/ZIPF12/BURSTY/REGIME)
// anchor the skew-adaptive partition map: the ZIPF12 shards x threads
// block runs static vs adaptive, and adaptive rows carry the hot-shard
// load ratio before/after rebalancing (skew_ratio_static vs
// skew_ratio_adaptive) plus the rebalance count.
//
// sjoin-perf-v4 adds multi-way rows (MULTI-HEEB / MULTI-PROB /
// EDGE-BUDGET on a 3-way chain and a 5-way star) as planner-off /
// planner-on A/B pairs keyed by a `planner` flag: planner-on runs attach
// the runtime probe planner (re-planned probe order + empty-partner
// skips + the (partner, value) probe-result cache, DESIGN.md §2f) and
// the policies' ScoreMemo. Both sides of a pair are bit-identical in
// counted_results by contract — the checker enforces that — and
// planner-on rows carry plan_replans, probe_skip_rate and
// probe_cache_hit_rate.
//
// sjoin-perf-v6 adds a `batch` flag to the row key: batched SoA scoring
// kernels on (the default) vs the scalar per-tuple Score() loop. The
// batch-scorable serial rows (HEEB-direct / HEEB-time-incr /
// HEEB-walk-table / PROB / LIFE) and the CACHE-ECB caching-HEEB pair run
// batch-off twins on the same realizations; the kernels preserve per-lane
// operation order, so both sides of a pair must agree on counted_results
// bit for bit (the checker enforces that and prints the batch speedups).
//
// Usage: perf_smoke [--len=2000] [--runs=3] [--cache=50] [--seed=1]
//                   [--flow_len=400] [--flow_prune=1]
//                   [--sweep_len=1000] [--sweep_cache=200]
//                   [--multi_len=1200] [--multi_cache=100]
//                   [--out=BENCH_perf.json]
//
// --flow_prune=0 disables the FlowExpect dominance prefilter in every
// FLOWEXPECT row, for A/B-ing the prefilter against the pure
// template+solver path (see EXPERIMENTS.md).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "harness/configs.h"
#include "harness/flags.h"
#include "sjoin/common/json_writer.h"
#include "sjoin/common/rng.h"
#include "sjoin/common/stopwatch.h"
#include "sjoin/core/flow_expect_policy.h"
#include "sjoin/core/heeb_caching_policy.h"
#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/engine/scoring_batch.h"
#include "sjoin/engine/cache_simulator.h"
#include "sjoin/engine/caching_policy.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/multi/multi_baseline_policies.h"
#include "sjoin/multi/multi_heeb_policy.h"
#include "sjoin/multi/multi_join_simulator.h"
#include "sjoin/policies/edge_budget_policy.h"
#include "sjoin/policies/lfu_policy.h"
#include "sjoin/policies/life_policy.h"
#include "sjoin/policies/lru_policy.h"
#include "sjoin/policies/opt_offline_policy.h"
#include "sjoin/policies/prob_policy.h"
#include "sjoin/policies/random_caching_policy.h"
#include "sjoin/policies/random_policy.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/stream_sampler.h"

using namespace sjoin;
using namespace sjoin::bench;

namespace {

struct ScenarioResult {
  std::string name;
  std::string workload;
  Time len = 0;
  int runs = 0;
  int shards = 1;
  int threads = 1;
  /// 1 when the run used the skew-adaptive partition map. Part of the row
  /// key: an adaptive row measures a different engine configuration than
  /// its static twin at the same (name, workload, len, shards, threads).
  int adaptive = 0;
  /// 1 when the run attached the runtime probe planner + score memos
  /// (multi-way rows). Part of the row key; planner twins must agree on
  /// counted_results bit for bit.
  int planner = 0;
  /// 1 when the batched SoA scoring kernels were enabled (the default).
  /// Part of the row key; a batch-off row measures the scalar per-tuple
  /// Score() path on the same realizations, and the twins must agree on
  /// counted_results bit for bit (check_perf_regression.py enforces it).
  int batch = 1;
  std::int64_t setup_ns = 0;  // Policy construction (all runs).
  std::int64_t run_ns = 0;    // JoinSimulator::Run (all runs).
  std::int64_t counted_results = 0;
  std::int64_t peak_candidates = 0;
  // Skew telemetry, summed over runs (adaptive rows only): rebalance
  // windows evaluated, rebalances applied, and the per-window max/mean
  // load-ratio sums under the static equal-width layout vs the evolved
  // one — divide by windows for the average ratios the JSON reports.
  std::int64_t windows = 0;
  std::int64_t rebalances = 0;
  double static_ratio_sum = 0.0;
  double adaptive_ratio_sum = 0.0;
  // Probe-plan telemetry, summed over runs (planner rows only): considered
  // partner probes and how they were served (see engine/probe_planner.h).
  std::int64_t probes = 0;
  std::int64_t probe_skips = 0;
  std::int64_t probe_cache_hits = 0;
  std::int64_t plan_replans = 0;
};

struct Config {
  Time len = 2000;
  int runs = 3;
  std::size_t cache = 50;
  std::uint64_t seed = 1;
};

/// Times `make_policy` + JoinSimulator::Run over `runs` pre-sampled pairs.
/// `shards` > 1 runs the sharded engine (results are bit-identical; only
/// the wall time moves); `threads` sizes its persistent worker team
/// (1 = inline — the thread count is explicit so every row records the
/// exact configuration it measured, not a host-dependent auto value).
template <typename MakePolicy>
ScenarioResult TimeScenario(const std::string& name,
                            const JoinWorkload& workload, Time len,
                            const Config& config, MakePolicy&& make_policy,
                            int shards = 1, int threads = 1,
                            bool adaptive = false, bool batch = true) {
  ScenarioResult out;
  out.name = name;
  out.workload = workload.name;
  out.len = len;
  out.runs = config.runs;
  out.shards = shards;
  out.threads = threads;
  out.adaptive = adaptive ? 1 : 0;
  out.batch = batch ? 1 : 0;
  // The engine snapshots the flag at session open, so scoping the whole
  // timing loop pins every run in this row to one kernel path.
  ScopedScoringBatch scoped_batch(batch);

  Rng rng(config.seed);
  std::vector<StreamPair> pairs;
  pairs.reserve(static_cast<std::size_t>(config.runs));
  for (int run = 0; run < config.runs; ++run) {
    pairs.push_back(SampleStreamPair(*workload.r, *workload.s, len, rng));
  }

  JoinSimulator sim({.capacity = config.cache,
                     .warmup = static_cast<Time>(4 * config.cache),
                     .shards = shards,
                     .threads = threads,
                     .adaptive_shards = adaptive});
  for (const StreamPair& pair : pairs) {
    Stopwatch setup;
    auto policy = make_policy(pair);
    out.setup_ns += setup.ElapsedNs();

    Stopwatch run;
    JoinRunResult result = sim.Run(pair.r, pair.s, *policy);
    out.run_ns += run.ElapsedNs();
    out.counted_results += result.counted_results;
    if (result.telemetry.peak_candidates > out.peak_candidates) {
      out.peak_candidates = result.telemetry.peak_candidates;
    }
    out.windows += result.adaptive.windows;
    out.rebalances += result.adaptive.rebalances;
    out.static_ratio_sum += result.adaptive.static_ratio_sum;
    out.adaptive_ratio_sum += result.adaptive.adaptive_ratio_sum;
  }
  std::int64_t steps = len * config.runs;
  std::fprintf(stderr, "%-18s %-5s s%d/t%d %8.0f steps/s %10.0f ns/step\n",
               name.c_str(), workload.name.c_str(), shards, threads,
               static_cast<double>(steps) /
                   (static_cast<double>(out.run_ns) * 1e-9),
               static_cast<double>(out.run_ns) /
                   static_cast<double>(steps));
  return out;
}

/// Times `make_policy` + CacheSimulator over `runs` pre-sampled reference
/// streams (the workload's R process). A CachingPolicy runs through
/// CacheSimulator::Run (the Theorem 1 adapter); a joining
/// ReplacementPolicy runs through RunJoinPolicy — the inverse direction
/// of the unification, where a join policy serves the caching problem.
template <typename MakePolicy>
ScenarioResult TimeCacheScenario(const std::string& name,
                                 const JoinWorkload& workload, Time len,
                                 const Config& config,
                                 MakePolicy&& make_policy, int shards = 1,
                                 int threads = 1, bool batch = true) {
  using PolicyT = typename decltype(make_policy())::element_type;
  ScenarioResult out;
  out.name = name;
  out.workload = workload.name;
  out.len = len;
  out.runs = config.runs;
  out.shards = shards;
  out.threads = threads;
  out.batch = batch ? 1 : 0;
  ScopedScoringBatch scoped_batch(batch);

  Rng rng(config.seed);
  std::vector<std::vector<Value>> streams;
  streams.reserve(static_cast<std::size_t>(config.runs));
  for (int run = 0; run < config.runs; ++run) {
    streams.push_back(SampleStreamPair(*workload.r, *workload.s, len, rng).r);
  }

  CacheSimulator sim({.capacity = config.cache,
                      .warmup = static_cast<Time>(4 * config.cache),
                      .shards = shards,
                      .threads = threads});
  for (const std::vector<Value>& references : streams) {
    Stopwatch setup;
    auto policy = make_policy();
    out.setup_ns += setup.ElapsedNs();

    Stopwatch run;
    CacheRunResult result;
    if constexpr (std::is_base_of_v<CachingPolicy, PolicyT>) {
      result = sim.Run(references, *policy);
    } else {
      result = sim.RunJoinPolicy(references, *policy);
    }
    out.run_ns += run.ElapsedNs();
    out.counted_results += result.counted_hits;
    if (result.telemetry.peak_candidates > out.peak_candidates) {
      out.peak_candidates = result.telemetry.peak_candidates;
    }
  }
  std::int64_t steps = len * config.runs;
  std::fprintf(stderr, "%-18s %-5s s%d/t%d %8.0f steps/s %10.0f ns/step\n",
               name.c_str(), workload.name.c_str(), shards, threads,
               static_cast<double>(steps) /
                   (static_cast<double>(out.run_ns) * 1e-9),
               static_cast<double>(out.run_ns) /
                   static_cast<double>(steps));
  return out;
}

/// An N-stream join workload: drifting linear trends with staggered
/// intercepts and a shared +/-8 noise band, so every edge sees a dense
/// overlap of values — the regime where the probe-result cache and the
/// score memos have repeats to serve — while the drift keeps the pmf
/// lookups moving.
struct MultiWorkload {
  std::string name;
  int num_streams = 0;
  std::vector<std::pair<int, int>> edges;
  std::vector<std::unique_ptr<LinearTrendProcess>> processes;
  std::vector<const StochasticProcess*> process_ptrs;
};

MultiWorkload MakeMultiTrends(std::string name, int num_streams,
                              std::vector<std::pair<int, int>> edges) {
  MultiWorkload workload;
  workload.name = std::move(name);
  workload.num_streams = num_streams;
  workload.edges = std::move(edges);
  for (int s = 0; s < num_streams; ++s) {
    workload.processes.push_back(std::make_unique<LinearTrendProcess>(
        1.0, -0.5 * s,
        DiscreteDistribution::TruncatedDiscretizedNormal(0.0, 2.0, -8, 8)));
    workload.process_ptrs.push_back(workload.processes.back().get());
  }
  return workload;
}

/// Times `make_policy` + MultiJoinSimulator::Run over `runs` pre-sampled
/// realizations. `planner` attaches the runtime probe planner; the policy
/// factory receives it too so planner rows also turn on the policy's
/// score memo — one flag selects the whole runtime-optimized
/// configuration, and the planner-off twin is the naive baseline it reads
/// against. counted_results must match between the twins bit for bit
/// (check_perf_regression.py enforces this).
template <typename MakePolicy>
ScenarioResult TimeMultiScenario(const std::string& name,
                                 const MultiWorkload& workload, Time len,
                                 const Config& config, bool planner,
                                 MakePolicy&& make_policy) {
  ScenarioResult out;
  out.name = name;
  out.workload = workload.name;
  out.len = len;
  out.runs = config.runs;
  out.planner = planner ? 1 : 0;

  Rng rng(config.seed);
  std::vector<std::vector<std::vector<Value>>> realizations;
  realizations.reserve(static_cast<std::size_t>(config.runs));
  for (int run = 0; run < config.runs; ++run) {
    std::vector<std::vector<Value>> streams;
    for (const StochasticProcess* process : workload.process_ptrs) {
      streams.push_back(SampleRealization(*process, len, rng));
    }
    realizations.push_back(std::move(streams));
  }

  MultiJoinSimulator sim(workload.num_streams, workload.edges,
                         {.capacity = config.cache,
                          .warmup = static_cast<Time>(4 * config.cache),
                          .planner = planner});
  for (const auto& streams : realizations) {
    Stopwatch setup;
    auto policy = make_policy(sim, planner);
    out.setup_ns += setup.ElapsedNs();

    Stopwatch run;
    MultiJoinRunResult result = sim.Run(streams, *policy);
    out.run_ns += run.ElapsedNs();
    out.counted_results += result.counted_results;
    if (result.telemetry.peak_candidates > out.peak_candidates) {
      out.peak_candidates = result.telemetry.peak_candidates;
    }
    out.probes += result.telemetry.probes;
    out.probe_skips += result.telemetry.probe_skips;
    out.probe_cache_hits += result.telemetry.probe_cache_hits;
    out.plan_replans += result.telemetry.plan_replans;
  }
  std::int64_t steps = len * config.runs;
  std::fprintf(stderr, "%-18s %-6s p%d    %8.0f steps/s %10.0f ns/step\n",
               name.c_str(), workload.name.c_str(), out.planner,
               static_cast<double>(steps) /
                   (static_cast<double>(out.run_ns) * 1e-9),
               static_cast<double>(out.run_ns) /
                   static_cast<double>(steps));
  return out;
}

void WriteJson(const std::string& path, const Config& config,
               const std::vector<ScenarioResult>& results) {
  JsonWriter json;
  json.BeginObject();
  json.Key("schema");
  json.String("sjoin-perf-v6");
  json.Key("len");
  json.Int(config.len);
  json.Key("runs");
  json.Int(config.runs);
  json.Key("cache");
  json.Int(static_cast<std::int64_t>(config.cache));
  json.Key("seed");
  json.Int(static_cast<std::int64_t>(config.seed));
  json.Key("results");
  json.BeginArray();
  for (const ScenarioResult& r : results) {
    double steps = static_cast<double>(r.len) * r.runs;
    json.BeginObject();
    json.Key("name");
    json.String(r.name);
    json.Key("workload");
    json.String(r.workload);
    json.Key("len");
    json.Int(r.len);
    json.Key("runs");
    json.Int(r.runs);
    json.Key("shards");
    json.Int(r.shards);
    json.Key("threads");
    json.Int(r.threads);
    json.Key("adaptive");
    json.Int(r.adaptive);
    json.Key("planner");
    json.Int(r.planner);
    json.Key("batch");
    json.Int(r.batch);
    json.Key("setup_ns");
    json.Int(r.setup_ns);
    json.Key("run_ns");
    json.Int(r.run_ns);
    json.Key("ns_per_step");
    json.Double(static_cast<double>(r.run_ns) / steps);
    json.Key("steps_per_sec");
    json.Double(steps / (static_cast<double>(r.run_ns) * 1e-9));
    json.Key("peak_candidates");
    json.Int(r.peak_candidates);
    json.Key("counted_results");
    json.Int(r.counted_results);
    if (r.adaptive != 0 && r.windows > 0) {
      // Average max/mean candidates-per-shard ratio over rebalance
      // windows: what the never-rebalanced equal-width layout would have
      // seen on the same loads vs what the evolved map saw. The
      // regression checker prints these side by side; on skewed
      // workloads skew_ratio_adaptive < skew_ratio_static is the point
      // of the whole mechanism.
      json.Key("windows");
      json.Int(r.windows);
      json.Key("rebalances");
      json.Int(r.rebalances);
      json.Key("skew_ratio_static");
      json.Double(r.static_ratio_sum / static_cast<double>(r.windows));
      json.Key("skew_ratio_adaptive");
      json.Double(r.adaptive_ratio_sum / static_cast<double>(r.windows));
    }
    if (r.planner != 0 && r.probes > 0) {
      // How Phase 1's considered probes were served: skipped (partner
      // cached nothing), answered from the probe-result cache, or
      // evaluated against the index/scan — plus the number of checkpoint
      // re-plans that actually changed a probe order.
      json.Key("probes");
      json.Int(r.probes);
      json.Key("probe_skip_rate");
      json.Double(static_cast<double>(r.probe_skips) /
                  static_cast<double>(r.probes));
      json.Key("probe_cache_hit_rate");
      json.Double(static_cast<double>(r.probe_cache_hits) /
                  static_cast<double>(r.probes));
      json.Key("plan_replans");
      json.Int(r.plan_replans);
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_smoke: cannot open %s for writing\n",
                 path.c_str());
    std::exit(1);
  }
  std::fputs(json.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Config config;
  config.len = flags.GetInt("len", 2000);
  config.runs = static_cast<int>(flags.GetInt("runs", 3));
  config.cache = static_cast<std::size_t>(flags.GetInt("cache", 50));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  // FlowExpect and OPT-offline are far slower per step; a shorter length
  // keeps the smoke run fast while still producing a stable ns/step.
  Time flow_len = flags.GetInt("flow_len", 400);
  bool flow_prune = flags.GetInt("flow_prune", 1) != 0;
  // The shard sweep uses its own length and (larger) cache: row keys are
  // (name, workload, len, shards), so a distinct length keeps the sweep's
  // shards=1 baselines from colliding with the main serial rows, and the
  // larger cache gives every shard a useful per-step scoring grain.
  Time sweep_len = flags.GetInt("sweep_len", 1000);
  std::size_t sweep_cache =
      static_cast<std::size_t>(flags.GetInt("sweep_cache", 200));
  // Multi-way rows: shorter than the main serial rows (MULTI-HEEB scores
  // every candidate against every partner over the full horizon, the
  // costliest per-step profile in the roster) and distinct from sweep_len
  // so the row keys stay unambiguous. The larger cache is the regime a
  // shared multi-way cache actually runs in — k tuples serving every
  // edge at once — and it is where the per-(partner, value) memos
  // amortize: candidates grow with k while distinct values stay bounded
  // by the noise band.
  Time multi_len = flags.GetInt("multi_len", 1200);
  std::size_t multi_cache =
      static_cast<std::size_t>(flags.GetInt("multi_cache", 100));
  std::string out_path = flags.GetString("out", "BENCH_perf.json");
  flags.CheckConsumed();
  if (flow_len > config.len) flow_len = config.len;
  if (sweep_len >= config.len) {
    sweep_len = config.len > 1 ? config.len / 2 : config.len;
  }

  JoinWorkload tower = MakeTower();
  JoinWorkload walk = MakeWalk();
  std::vector<ScenarioResult> results;

  auto heeb_on = [&](const JoinWorkload& workload, HeebJoinPolicy::Mode mode,
                     double alpha) {
    return [&workload, mode, alpha](const StreamPair&) {
      HeebJoinPolicy::Options options;
      options.mode = mode;
      options.alpha = alpha;
      options.horizon = workload.heeb_horizon;
      return std::make_unique<HeebJoinPolicy>(workload.r.get(),
                                              workload.s.get(), options);
    };
  };

  results.push_back(TimeScenario(
      "HEEB-direct", tower, config.len, config,
      heeb_on(tower, HeebJoinPolicy::Mode::kDirect, tower.heeb_alpha)));
  results.push_back(TimeScenario("HEEB-time-incr", tower, config.len, config,
                                 heeb_on(tower,
                                         HeebJoinPolicy::Mode::kTimeIncremental,
                                         tower.heeb_alpha)));
  results.push_back(
      TimeScenario("HEEB-value-incr", tower, config.len, config,
                   heeb_on(tower, HeebJoinPolicy::Mode::kValueIncremental,
                           tower.heeb_alpha)));
  results.push_back(
      TimeScenario("HEEB-walk-table", walk, config.len, config,
                   heeb_on(walk, HeebJoinPolicy::Mode::kWalkTable,
                           static_cast<double>(config.cache))));
  auto flow_expect_on = [&tower, flow_prune](Time lookahead) {
    return [&tower, flow_prune, lookahead](const StreamPair&) {
      return std::make_unique<FlowExpectPolicy>(
          tower.r.get(), tower.s.get(),
          FlowExpectPolicy::Options{.lookahead = lookahead,
                                    .dominance_prune = flow_prune});
    };
  };
  results.push_back(TimeScenario("FLOWEXPECT", tower, flow_len, config,
                                 flow_expect_on(5)));
  // Lookahead sweep: per-step cost grows with the Theta((k+l) l) slice
  // graph, so these rows track how the solver scales with l.
  for (Time lookahead : {Time{4}, Time{8}, Time{16}}) {
    results.push_back(TimeScenario("FLOWEXPECT-l" + std::to_string(lookahead),
                                   tower, flow_len, config,
                                   flow_expect_on(lookahead)));
  }
  results.push_back(TimeScenario(
      "OPT-OFFLINE", tower, flow_len, config,
      [&config](const StreamPair& pair) {
        return std::make_unique<OptOfflinePolicy>(pair.r, pair.s,
                                                  config.cache);
      }));
  std::optional<Time> life;
  if (tower.life_window > 0) life = tower.life_window;
  results.push_back(TimeScenario(
      "RAND", tower, config.len, config, [&](const StreamPair&) {
        return std::make_unique<RandomPolicy>(config.seed + 17, life);
      }));
  results.push_back(TimeScenario("PROB", tower, config.len, config,
                                 [&](const StreamPair&) {
                                   return std::make_unique<ProbPolicy>(life);
                                 }));
  results.push_back(TimeScenario(
      "LIFE", tower, config.len, config, [&](const StreamPair&) {
        return std::make_unique<LifePolicy>(tower.life_window);
      }));

  // Batch-off twins for the batch-scorable serial rows: same workloads,
  // same realizations, scalar per-tuple Score() instead of the SoA
  // kernels. counted_results must match the batch-on rows above bit for
  // bit; the ns/step ratio is the measured kernel speedup the checker
  // reports.
  results.push_back(TimeScenario(
      "HEEB-direct", tower, config.len, config,
      heeb_on(tower, HeebJoinPolicy::Mode::kDirect, tower.heeb_alpha),
      /*shards=*/1, /*threads=*/1, /*adaptive=*/false, /*batch=*/false));
  results.push_back(TimeScenario(
      "HEEB-time-incr", tower, config.len, config,
      heeb_on(tower, HeebJoinPolicy::Mode::kTimeIncremental,
              tower.heeb_alpha),
      /*shards=*/1, /*threads=*/1, /*adaptive=*/false, /*batch=*/false));
  results.push_back(TimeScenario(
      "HEEB-walk-table", walk, config.len, config,
      heeb_on(walk, HeebJoinPolicy::Mode::kWalkTable,
              static_cast<double>(config.cache)),
      /*shards=*/1, /*threads=*/1, /*adaptive=*/false, /*batch=*/false));
  results.push_back(TimeScenario(
      "PROB", tower, config.len, config,
      [&](const StreamPair&) { return std::make_unique<ProbPolicy>(life); },
      /*shards=*/1, /*threads=*/1, /*adaptive=*/false, /*batch=*/false));
  results.push_back(TimeScenario(
      "LIFE", tower, config.len, config,
      [&](const StreamPair&) {
        return std::make_unique<LifePolicy>(tower.life_window);
      },
      /*shards=*/1, /*threads=*/1, /*adaptive=*/false, /*batch=*/false));

  // Caching rows: the same engine running the caching problem through the
  // Theorem 1 reduction (and, for CACHE-PROB, a joining policy crossing
  // over to the caching side).
  results.push_back(TimeCacheScenario(
      "CACHE-LRU", tower, config.len, config,
      [] { return std::make_unique<LruCachingPolicy>(); }));
  results.push_back(TimeCacheScenario(
      "CACHE-LFU", tower, config.len, config,
      [] { return std::make_unique<LfuCachingPolicy>(); }));
  results.push_back(TimeCacheScenario(
      "CACHE-RAND", tower, config.len, config, [&] {
        return std::make_unique<RandomCachingPolicy>(config.seed + 29);
      }));
  results.push_back(TimeCacheScenario(
      "CACHE-PROB", tower, config.len, config,
      [] { return std::make_unique<ProbPolicy>(std::nullopt); }));
  // CACHE-ECB: the model-driven caching surface (caching HEEB realizes
  // the ECB expected-benefit score, Corollary 4 family) as a batch on/off
  // pair — the fused CachingHeebBatch kernel vs per-value CachingHeeb.
  auto cache_ecb_on = [&] {
    return std::make_unique<HeebCachingPolicy>(
        tower.r.get(),
        HeebCachingPolicy::Options{.mode = HeebCachingPolicy::Mode::kDirect,
                                   .alpha = tower.heeb_alpha,
                                   .horizon = tower.heeb_horizon});
  };
  results.push_back(TimeCacheScenario("CACHE-ECB", tower, config.len, config,
                                      cache_ecb_on));
  results.push_back(TimeCacheScenario("CACHE-ECB", tower, config.len, config,
                                      cache_ecb_on, /*shards=*/1,
                                      /*threads=*/1, /*batch=*/false));

  // Shard sweep: the scored policies under the sharded engine at 1/2/4/8
  // value-domain shards, inline (threads = 1), isolating the cost/benefit
  // of sharding itself. Results are bit-identical across the sweep by the
  // sharding contract; only the wall time moves. CACHE-RAND is not
  // shard-scorable and rides along to anchor the serial-fallback cost.
  Config sweep = config;
  sweep.len = sweep_len;
  sweep.cache = sweep_cache;
  for (int shards : {1, 2, 4, 8}) {
    results.push_back(TimeScenario(
        "HEEB-direct", tower, sweep.len, sweep,
        heeb_on(tower, HeebJoinPolicy::Mode::kDirect, tower.heeb_alpha),
        shards));
    results.push_back(TimeScenario(
        "HEEB-time-incr", tower, sweep.len, sweep,
        heeb_on(tower, HeebJoinPolicy::Mode::kTimeIncremental,
                tower.heeb_alpha),
        shards));
    results.push_back(TimeCacheScenario(
        "CACHE-LFU", tower, sweep.len, sweep,
        [] { return std::make_unique<LfuCachingPolicy>(); }, shards));
    results.push_back(TimeCacheScenario(
        "CACHE-RAND", tower, sweep.len, sweep,
        [&] { return std::make_unique<RandomCachingPolicy>(config.seed + 29); },
        shards));
  }

  // Skewed workloads (adaptive-sharding study): Zipf popularity at two
  // exponents, bursty phases, and a regime-switching hot set. Serial rows
  // first — they anchor the skewed workloads' baseline cost and prove the
  // skew itself doesn't change the serial profile class.
  JoinWorkload zipf08 = MakeZipf(0.8);
  JoinWorkload zipf12 = MakeZipf(1.2);
  JoinWorkload bursty = MakeBursty();
  JoinWorkload regime = MakeRegime();
  auto prob_on = [] {
    return [](const StreamPair&) {
      return std::make_unique<ProbPolicy>(std::nullopt);
    };
  };
  for (const JoinWorkload* skewed : {&zipf08, &zipf12, &bursty, &regime}) {
    results.push_back(TimeScenario(
        "HEEB-time-incr", *skewed, config.len, config,
        heeb_on(*skewed, HeebJoinPolicy::Mode::kTimeIncremental,
                skewed->heeb_alpha)));
    results.push_back(
        TimeScenario("PROB", *skewed, config.len, config, prob_on()));
    results.push_back(TimeScenario(
        "LIFE", *skewed, config.len, config, [&](const StreamPair&) {
          return std::make_unique<LifePolicy>(skewed->life_window);
        }));
  }

  // Skew sweep: the hottest workload (ZIPF12) across shards x threads,
  // static vs adaptive partitioning. Results are bit-identical across the
  // whole block (the adaptive map only moves load, never output); the
  // adaptive rows additionally record the before/after hot-shard load
  // ratios (skew_ratio_static vs skew_ratio_adaptive) and the rebalance
  // count. The static TOWER matrix above is the no-skew control: adaptive
  // off there, and the threads=1 rows here gate any overhead regression.
  for (int shards : {1, 2, 4, 8}) {
    for (int threads : {1, 4}) {
      if (shards == 1 && threads > 1) continue;
      for (int adaptive = 0; adaptive < 2; ++adaptive) {
        if (shards == 1 && adaptive == 1) continue;  // Serial: map unused.
        results.push_back(TimeScenario(
            "HEEB-time-incr", zipf12, sweep.len, sweep,
            heeb_on(zipf12, HeebJoinPolicy::Mode::kTimeIncremental,
                    zipf12.heeb_alpha),
            shards, threads, adaptive != 0));
        results.push_back(TimeScenario("PROB", zipf12, sweep.len, sweep,
                                       prob_on(), shards, threads,
                                       adaptive != 0));
      }
    }
  }

  // Uniform control for the adaptive overhead: TOWER at threads=1 with
  // the map on. No skew means (nearly) no rebalances; the row isolates
  // the bucket-counting cost the checker gates against its static twin.
  results.push_back(TimeScenario(
      "HEEB-time-incr", tower, sweep.len, sweep,
      heeb_on(tower, HeebJoinPolicy::Mode::kTimeIncremental,
              tower.heeb_alpha),
      /*shards=*/4, /*threads=*/1, /*adaptive=*/true));

  // Shards x threads matrix: the persistent-worker path across every
  // combination of shard count and worker-team size, on the heaviest
  // scored join row (HEEB-value-incr) and the two caching regimes
  // (CACHE-LRU via the reduction, CACHE-PROB via the joining-policy
  // route). threads = 1 is the inline path — those rows double as the
  // matrix's serial baselines; threads > shards exercises idle workers.
  // shards = 1 always runs the plain serial engine (threads is moot), so
  // only its threads = 1 row is emitted. On single-core hosts every
  // thread count measures the same core, so a flat threads axis there is
  // expected (see EXPERIMENTS.md).
  for (int shards : {1, 2, 4, 8}) {
    for (int threads : {1, 2, 4, 8}) {
      if (shards == 1 && threads > 1) continue;
      results.push_back(TimeScenario(
          "HEEB-value-incr", tower, sweep.len, sweep,
          heeb_on(tower, HeebJoinPolicy::Mode::kValueIncremental,
                  tower.heeb_alpha),
          shards, threads));
      results.push_back(TimeCacheScenario(
          "CACHE-LRU", tower, sweep.len, sweep,
          [] { return std::make_unique<LruCachingPolicy>(); }, shards,
          threads));
      results.push_back(TimeCacheScenario(
          "CACHE-PROB", tower, sweep.len, sweep,
          [] { return std::make_unique<ProbPolicy>(std::nullopt); }, shards,
          threads));
    }
  }

  // Multi-way A/B pairs: planner off (naive fixed-order probes, no score
  // memo) vs planner on (re-planned probe order + probe-result cache +
  // ScoreMemo). MULTI-HEEB is the model-driven policy the §2f machinery
  // exists for; MULTI-PROB isolates the Phase-1 planner on a cheap
  // frequency policy; EDGE-BUDGET rides the same memo through per-edge
  // budgeting. counted_results must agree within each pair bit for bit.
  MultiWorkload chain3 = MakeMultiTrends("CHAIN3", 3, {{0, 1}, {1, 2}});
  MultiWorkload star5 =
      MakeMultiTrends("STAR5", 5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  Config multi_config = config;
  multi_config.cache = multi_cache;
  for (bool planner : {false, true}) {
    auto heeb_multi = [](const MultiWorkload& workload) {
      return [&workload](const MultiJoinSimulator& sim, bool with_cache) {
        return std::make_unique<MultiHeebPolicy>(
            workload.process_ptrs, &sim,
            MultiHeebPolicy::Options{.alpha = 10.0,
                                     .horizon = 100,
                                     .use_score_cache = with_cache});
      };
    };
    results.push_back(TimeMultiScenario("MULTI-HEEB", chain3, multi_len,
                                        multi_config, planner,
                                        heeb_multi(chain3)));
    results.push_back(TimeMultiScenario("MULTI-HEEB", star5, multi_len,
                                        multi_config, planner, heeb_multi(star5)));
    results.push_back(TimeMultiScenario(
        "MULTI-PROB", star5, multi_len, multi_config, planner,
        [](const MultiJoinSimulator& sim, bool with_cache) {
          return std::make_unique<MultiProbPolicy>(
              &sim,
              MultiProbPolicy::Options{.use_score_cache = with_cache});
        }));
    results.push_back(TimeMultiScenario(
        "EDGE-BUDGET", star5, multi_len, multi_config, planner,
        [&star5](const MultiJoinSimulator& sim, bool with_cache) {
          return std::make_unique<EdgeBudgetPolicy>(
              star5.process_ptrs, &sim.topology(),
              EdgeBudgetPolicy::Options{.alpha = 10.0,
                                        .horizon = 100,
                                        .use_score_cache = with_cache});
        }));
  }

  WriteJson(out_path, config, results);
  return 0;
}
