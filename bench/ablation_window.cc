// Ablation: sliding-window semantics (Section 7) across window sizes.
// Windowed HEEB (L_exp zeroed beyond the remaining life) against the
// window-aware PROB and LIFE heuristics on a stationary zipf workload.
//
// Expected shape: at small windows PROB's myopia and LIFE's pessimism
// both cost results and HEEB leads; at large windows the problem
// approaches the regular stationary join where PROB is provably optimal
// (Section 5.2) and all three converge to within noise of each other.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness/flags.h"
#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/policies/life_policy.h"
#include "sjoin/policies/prob_policy.h"
#include "sjoin/policies/random_policy.h"
#include "sjoin/stochastic/stationary_process.h"
#include "sjoin/stochastic/stream_sampler.h"

using namespace sjoin;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  Time len = flags.GetInt("len", 3000);
  int runs = static_cast<int>(flags.GetInt("runs", 3));
  std::size_t cache = static_cast<std::size_t>(flags.GetInt("cache", 12));
  std::uint64_t seed = static_cast<std::uint64_t>(flags.GetInt("seed", 19));
  flags.CheckConsumed();

  std::vector<double> zipf(50);
  for (std::size_t i = 0; i < zipf.size(); ++i) {
    zipf[i] = 1.0 / static_cast<double>(i + 1);
  }
  StationaryProcess r(DiscreteDistribution::FromMasses(0, zipf));
  StationaryProcess s(DiscreteDistribution::FromMasses(0, zipf));

  Rng rng(seed);
  std::vector<StreamPair> pairs;
  for (int run = 0; run < runs; ++run) {
    pairs.push_back(SampleStreamPair(r, s, len, rng));
  }

  std::printf("# Ablation: sliding-window size (stationary zipf, cache "
              "%zu)\nwindow,HEEB,PROB,LIFE,RAND\n",
              cache);
  for (Time window : std::vector<Time>{10, 25, 50, 100, 200}) {
    JoinSimulator sim({.capacity = cache, .warmup = 100, .window = window});
    auto average = [&](ReplacementPolicy& policy) {
      std::int64_t total = 0;
      for (const StreamPair& pair : pairs) {
        total += sim.Run(pair.r, pair.s, policy).counted_results;
      }
      return static_cast<double>(total) / runs;
    };
    HeebJoinPolicy::Options options;
    // Section 4.3 tuning rule: match the expected residence of a cached
    // tuple, which the window bounds.
    options.alpha = ExpLifetime::AlphaForAverageLifetime(
        std::max(4.0, static_cast<double>(window) * 0.75));
    options.horizon = window + 10;
    HeebJoinPolicy heeb(&r, &s, options);
    ProbPolicy prob;
    LifePolicy life(window);
    RandomPolicy rand(seed + 3);
    std::printf("%lld,%.1f,%.1f,%.1f,%.1f\n",
                static_cast<long long>(window), average(heeb),
                average(prob), average(life), average(rand));
    std::fflush(stdout);
  }
  return 0;
}
