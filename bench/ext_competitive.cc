// Extension: empirical competitive ratios. The paper closes by noting
// "competitive analysis would be a natural direction for future work";
// this harness measures the empirical counterpart — the ratio
// OPT-offline / policy on sampled realizations per configuration (higher
// is worse; 1.0 means matching the clairvoyant optimum).
//
// Expected shape: HEEB's empirical ratio stays near 1 on TOWER, grows on
// FLOOR, and blows up on WALK (where Section 6.3 argues no online
// algorithm can track the diverging walks).

#include <cstdio>
#include <memory>

#include "harness/configs.h"
#include "harness/flags.h"
#include "harness/runner.h"

using namespace sjoin;
using namespace sjoin::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  RosterOptions options;
  options.cache = static_cast<std::size_t>(flags.GetInt("cache", 10));
  options.len = flags.GetInt("len", 1000);
  options.runs = static_cast<int>(flags.GetInt("runs", 5));
  options.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 37));
  options.threads = static_cast<int>(flags.GetInt("threads", 0));
  flags.CheckConsumed();

  std::printf("# Extension: empirical competitive ratios OPT/policy "
              "(cache=%zu len=%lld runs=%d)\n",
              options.cache, static_cast<long long>(options.len),
              options.runs);
  std::printf("config,policy,ratio\n");
  JoinWorkload workloads[] = {MakeTower(), MakeRoof(), MakeFloor(),
                              MakeWalk()};
  for (const JoinWorkload& workload : workloads) {
    auto roster = RunJoinRoster(workload, options);
    double opt_mean = 0.0;
    for (const AlgoResult& result : roster) {
      if (result.name == "OPT-OFFLINE") opt_mean = result.summary.mean;
    }
    for (const AlgoResult& result : roster) {
      if (result.name == "OPT-OFFLINE") continue;
      if (result.summary.mean > 0.0) {
        std::printf("%s,%s,%.2f\n", workload.name.c_str(),
                    result.name.c_str(), opt_mean / result.summary.mean);
      } else {
        std::printf("%s,%s,inf\n", workload.name.c_str(),
                    result.name.c_str());
      }
    }
    std::fflush(stdout);
  }
  return 0;
}
