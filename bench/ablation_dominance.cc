// Ablation: how often does the Corollary 2 dominated-subset test settle
// the replacement decision outright, per scenario? When it does, the
// eviction is provably optimal and no heuristic is consulted.
//
// Expected shape (Section 5): ~100% for stationary streams (total order by
// match probability), high for offline streams, low for the crossing-ECB
// scenarios (TOWER-like trends, random walks with drift).

#include <cstdio>
#include <memory>

#include "harness/configs.h"
#include "harness/flags.h"
#include "sjoin/core/dominance_prefilter_policy.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/policies/random_policy.h"
#include "sjoin/stochastic/offline_process.h"
#include "sjoin/stochastic/stationary_process.h"
#include "sjoin/stochastic/stream_sampler.h"

using namespace sjoin;
using namespace sjoin::bench;

namespace {

void Report(const char* label, const StochasticProcess& r,
            const StochasticProcess& s, const std::vector<Value>& rv,
            const std::vector<Value>& sv, std::size_t cache) {
  RandomPolicy fallback(3);
  DominancePrefilterPolicy policy(&r, &s, &fallback, {.horizon = 60});
  JoinSimulator sim({.capacity = cache, .warmup = 0});
  auto result = sim.Run(rv, sv, policy);
  double fraction =
      policy.total_decisions() == 0
          ? 0.0
          : static_cast<double>(policy.decisions_by_dominance()) /
                static_cast<double>(policy.total_decisions());
  std::printf("%-12s %8.1f%% of decisions optimal-by-dominance, %lld "
              "results\n",
              label, 100.0 * fraction,
              static_cast<long long>(result.total_results));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Time len = flags.GetInt("len", 400);
  std::size_t cache = static_cast<std::size_t>(flags.GetInt("cache", 8));
  std::uint64_t seed = static_cast<std::uint64_t>(flags.GetInt("seed", 29));
  flags.CheckConsumed();

  std::printf("# Ablation: decisions settled by ECB dominance "
              "(Corollary 2), cache=%zu len=%lld\n",
              cache, static_cast<long long>(len));

  {
    auto dist = DiscreteDistribution::FromMasses(0, {0.4, 0.3, 0.2, 0.1});
    StationaryProcess r(dist);
    StationaryProcess s(dist);
    Rng rng(seed);
    auto pair = SampleStreamPair(r, s, len, rng);
    Report("STATIONARY", r, s, pair.r, pair.s, cache);
  }
  {
    JoinWorkload workload = MakeTower();
    Rng rng(seed + 1);
    auto pair = SampleStreamPair(*workload.r, *workload.s, len, rng);
    Report("TOWER", *workload.r, *workload.s, pair.r, pair.s, cache);
  }
  {
    JoinWorkload workload = MakeFloor();
    Rng rng(seed + 2);
    auto pair = SampleStreamPair(*workload.r, *workload.s, len, rng);
    Report("FLOOR", *workload.r, *workload.s, pair.r, pair.s, cache);
  }
  {
    JoinWorkload workload = MakeWalk();
    Rng rng(seed + 3);
    auto pair = SampleStreamPair(*workload.r, *workload.s, len, rng);
    Report("WALK", *workload.r, *workload.s, pair.r, pair.s, cache);
  }
  {
    // Offline: the realization is known in advance.
    JoinWorkload workload = MakeTower();
    Rng rng(seed + 4);
    auto pair = SampleStreamPair(*workload.r, *workload.s, len, rng);
    OfflineProcess r(pair.r);
    OfflineProcess s(pair.s);
    Report("OFFLINE", r, s, pair.r, pair.s, cache);
  }
  return 0;
}
