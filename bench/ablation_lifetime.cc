// Ablation: the choice of lifetime function L_x (Section 4.3 table).
//
// Joining (TOWER): L_exp vs L_fixed with several cutoffs. The paper argues
// L_exp both converges and supports incremental computation; this shows
// the performance side: a well-chosen L_fixed is competitive, a bad cutoff
// is not, and L_exp is robust.
// Caching (stationary zipf): adds L_inf and L_inv, which are only
// guaranteed to converge for caching.

#include <cstdio>
#include <memory>

#include "harness/configs.h"
#include "harness/flags.h"
#include "sjoin/core/heeb_caching_policy.h"
#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/engine/cache_simulator.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/stochastic/stationary_process.h"
#include "sjoin/stochastic/stream_sampler.h"

using namespace sjoin;
using namespace sjoin::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Time len = flags.GetInt("len", 1500);
  int runs = static_cast<int>(flags.GetInt("runs", 3));
  std::uint64_t seed = static_cast<std::uint64_t>(flags.GetInt("seed", 11));
  flags.CheckConsumed();

  std::printf("# Ablation: lifetime functions for HEEB\n\n");

  {
    JoinWorkload workload = MakeTower();
    Rng rng(seed);
    std::vector<StreamPair> pairs;
    for (int run = 0; run < runs; ++run) {
      pairs.push_back(SampleStreamPair(*workload.r, *workload.s, len, rng));
    }
    JoinSimulator sim({.capacity = 10, .warmup = 40});
    auto run_with = [&](const char* label, const LifetimeFn* lifetime,
                        double alpha) {
      HeebJoinPolicy::Options options;
      options.mode = HeebJoinPolicy::Mode::kDirect;
      options.alpha = alpha;
      options.horizon = 150;
      options.lifetime = lifetime;
      std::int64_t total = 0;
      for (const StreamPair& pair : pairs) {
        HeebJoinPolicy policy(workload.r.get(), workload.s.get(), options);
        total += sim.Run(pair.r, pair.s, policy).counted_results;
      }
      std::printf("%-24s %10.1f\n", label,
                  static_cast<double>(total) / runs);
    };

    std::printf("== joining (TOWER, cache 10) ==\n");
    std::printf("%-24s %10s\n", "lifetime", "results");
    run_with("L_exp (tuned alpha)", nullptr, workload.heeb_alpha);
    FixedLifetime fixed5(5), fixed12(12), fixed25(25), fixed60(60);
    run_with("L_fixed(5)", &fixed5, workload.heeb_alpha);
    run_with("L_fixed(12)", &fixed12, workload.heeb_alpha);
    run_with("L_fixed(25)", &fixed25, workload.heeb_alpha);
    run_with("L_fixed(60)", &fixed60, workload.heeb_alpha);
    std::printf("\n");
  }

  {
    // Caching: zipf-ish stationary reference stream.
    std::vector<double> zipf(60);
    for (std::size_t i = 0; i < zipf.size(); ++i) {
      zipf[i] = 1.0 / static_cast<double>(i + 1);
    }
    StationaryProcess reference(DiscreteDistribution::FromMasses(0, zipf));
    Rng rng(seed + 1);
    CacheSimulator sim({.capacity = 8, .warmup = 50});
    auto run_with = [&](const char* label, const LifetimeFn* lifetime) {
      std::int64_t total = 0;
      for (int run = 0; run < runs; ++run) {
        Rng run_rng = rng.Fork();
        auto refs = SampleRealization(reference, len, run_rng);
        HeebCachingPolicy::Options options;
        options.mode = HeebCachingPolicy::Mode::kDirect;
        options.alpha = 8.0;
        options.horizon = 400;
        options.lifetime = lifetime;
        HeebCachingPolicy policy(&reference, options);
        total += sim.Run(refs, policy).counted_hits;
      }
      std::printf("%-24s %10.1f\n", label,
                  static_cast<double>(total) / runs);
    };

    std::printf("== caching (stationary zipf, cache 8) ==\n");
    std::printf("%-24s %10s\n", "lifetime", "hits");
    run_with("L_exp(8)", nullptr);
    InfiniteLifetime inf;
    InverseLifetime inv;
    FixedLifetime fixed8(8), fixed40(40);
    run_with("L_inf", &inf);
    run_with("L_inv", &inv);
    run_with("L_fixed(8)", &fixed8);
    run_with("L_fixed(40)", &fixed40);
  }
  return 0;
}
