// Load sweep for the session-multiplexed join service (DESIGN.md §2g):
// N concurrent PROB sessions driven open-loop at a fixed per-tick offered
// rate through serve::SessionScheduler, across a sessions x rate x
// threads grid. Each cell reports aggregate throughput (steps/s over the
// whole serve, ns/step) and the per-step latency distribution (p50/p99 of
// each Advance slice's wall time divided by its steps, weighted by
// steps).
//
// Rows use the sjoin-perf-v6 schema: the v4 fields plus `sessions`,
// `offered_rate` and `batch`, which join the row key. Only sessions=1 / threads=1
// rows feed the regression gate (check_perf_regression.py) — they
// measure the scheduler's overhead over a bare engine run, which is
// machine-comparable; multi-session and threaded rows are reported as
// info, like the threads>1 engine rows.
//
// Usage: serve_load [--sessions=1,64,512,2048] [--rates=16,64]
//                   [--threads=1,4] [--len=256] [--capacity=16]
//                   [--quota=32] [--seed=1]
//                   [--out=BENCH_serve.json] [--append=]
//
// --append=FILE splices the rows into FILE's existing "results" array
// (a BENCH_perf.json written by perf_smoke) and stamps the combined
// document sjoin-perf-v6 — the CI perf job runs perf_smoke first, then
// `serve_load --append=BENCH_perf_current.json`, so one file carries the
// whole perf surface. Without --append a standalone v6 document goes to
// --out.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/flags.h"
#include "sjoin/common/check.h"
#include "sjoin/common/json_writer.h"
#include "sjoin/common/rng.h"
#include "sjoin/common/stopwatch.h"
#include "sjoin/policies/prob_policy.h"
#include "sjoin/serve/session_scheduler.h"

using namespace sjoin;
using namespace sjoin::bench;

namespace {

std::vector<int> ParseIntList(const std::string& text) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    out.push_back(std::atoi(text.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  SJOIN_CHECK_MSG(!out.empty(), "empty int list flag");
  for (int v : out) SJOIN_CHECK_GE(v, 1);
  return out;
}

std::vector<Value> SampleValues(Time len, Value domain, Rng& rng) {
  std::vector<Value> out;
  out.reserve(static_cast<std::size_t>(len));
  for (Time t = 0; t < len; ++t) {
    out.push_back(rng.UniformInt(0, domain - 1));
  }
  return out;
}

struct LoadResult {
  int sessions = 0;
  int offered_rate = 0;
  int threads = 0;
  Time len = 0;
  std::int64_t setup_ns = 0;
  std::int64_t run_ns = 0;
  std::int64_t counted_results = 0;
  std::int64_t steps_executed = 0;
  std::int64_t steps_shed = 0;
  std::int64_t rounds = 0;
  double p50_step_ns = 0.0;
  double p99_step_ns = 0.0;
};

/// Steps-weighted percentile of per-step latency over the Advance slices.
double WeightedStepLatency(std::vector<serve::SliceLatency> slices,
                           double quantile) {
  if (slices.empty()) return 0.0;
  std::sort(slices.begin(), slices.end(),
            [](const serve::SliceLatency& a, const serve::SliceLatency& b) {
              return static_cast<double>(a.ns) * static_cast<double>(b.steps) <
                     static_cast<double>(b.ns) * static_cast<double>(a.steps);
            });
  std::int64_t total = 0;
  for (const serve::SliceLatency& slice : slices) total += slice.steps;
  const double target = quantile * static_cast<double>(total);
  std::int64_t seen = 0;
  for (const serve::SliceLatency& slice : slices) {
    seen += slice.steps;
    if (static_cast<double>(seen) >= target) {
      return static_cast<double>(slice.ns) /
             static_cast<double>(slice.steps);
    }
  }
  const serve::SliceLatency& last = slices.back();
  return static_cast<double>(last.ns) / static_cast<double>(last.steps);
}

LoadResult RunLoadCell(int sessions, int rate, int threads, Time len,
                       std::size_t capacity, Time quota,
                       std::uint64_t seed) {
  LoadResult out;
  out.sessions = sessions;
  out.offered_rate = rate;
  out.threads = threads;
  out.len = len;

  Stopwatch setup;
  Rng rng(seed);
  std::vector<std::vector<std::vector<Value>>> streams;
  streams.reserve(static_cast<std::size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    streams.push_back(
        {SampleValues(len, 12, rng), SampleValues(len, 12, rng)});
  }
  std::vector<ProbPolicy> policies(static_cast<std::size_t>(sessions));
  std::vector<BinaryPolicyAdapter> adapters;
  adapters.reserve(static_cast<std::size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    adapters.emplace_back(&policies[static_cast<std::size_t>(s)]);
  }

  serve::SessionScheduler::Options options;
  options.max_sessions = static_cast<std::size_t>(sessions);
  options.queue_capacity = static_cast<std::size_t>(4 * rate);
  options.quota_unit = quota;
  options.threads = threads;
  serve::SessionScheduler scheduler(StreamTopology::Binary(), options);

  std::vector<serve::SessionId> ids;
  ids.reserve(static_cast<std::size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    serve::SessionConfig config;
    config.engine = {.capacity = capacity,
                     .warmup = static_cast<Time>(2 * capacity)};
    config.policy = &adapters[static_cast<std::size_t>(s)];
    serve::Admission admission = scheduler.Open(config);
    SJOIN_CHECK_MSG(admission.ok(), "admission rejected in the load sweep");
    ids.push_back(admission.id);
  }
  out.setup_ns = setup.ElapsedNs();

  // Open loop: every tick offers `rate` more steps to each session that
  // still has realization left, then runs one round; what a session
  // cannot absorb (queue full) is retried next tick, so nothing is lost
  // — shedding only shows up when the watermark is configured below the
  // queue bound, which this sweep leaves alone.
  Stopwatch run;
  std::vector<Time> offered(static_cast<std::size_t>(sessions), 0);
  bool offering = true;
  while (offering) {
    offering = false;
    for (int s = 0; s < sessions; ++s) {
      const std::size_t idx = static_cast<std::size_t>(s);
      const Time take =
          std::min<Time>(rate, len - offered[idx]);
      if (take <= 0) continue;
      std::vector<std::vector<Value>> burst;
      std::vector<const std::vector<Value>*> burst_ptrs;
      for (const std::vector<Value>& stream : streams[idx]) {
        burst.emplace_back(
            stream.begin() + static_cast<std::ptrdiff_t>(offered[idx]),
            stream.begin() + static_cast<std::ptrdiff_t>(offered[idx] + take));
      }
      for (const std::vector<Value>& b : burst) burst_ptrs.push_back(&b);
      offered[idx] +=
          static_cast<Time>(scheduler.Offer(ids[idx], burst_ptrs));
      if (offered[idx] >= len) {
        scheduler.Finish(ids[idx]);
      } else {
        offering = true;
      }
    }
    scheduler.RunRound();
  }
  scheduler.Drain();
  out.run_ns = run.ElapsedNs();

  for (serve::SessionId id : ids) {
    out.counted_results += scheduler.result(id).counted_results;
  }
  const serve::SchedulerStats& stats = scheduler.stats();
  out.steps_executed = stats.steps_executed;
  out.steps_shed = stats.steps_shed;
  out.rounds = stats.rounds;
  out.p50_step_ns = WeightedStepLatency(scheduler.slice_latencies(), 0.50);
  out.p99_step_ns = WeightedStepLatency(scheduler.slice_latencies(), 0.99);

  std::fprintf(stderr,
               "SERVE-PROB n=%-5d rate=%-3d t=%d %9.0f steps/s "
               "%8.0f ns/step p50 %6.0f p99 %6.0f\n",
               sessions, rate, threads,
               static_cast<double>(out.steps_executed) /
                   (static_cast<double>(out.run_ns) * 1e-9),
               static_cast<double>(out.run_ns) /
                   static_cast<double>(out.steps_executed),
               out.p50_step_ns, out.p99_step_ns);
  return out;
}

/// One sjoin-perf-v6 results row. Serve rows never touch the batched
/// scoring kernels' A/B axis; they emit batch=1 (the default engine
/// configuration they actually run).
void WriteRow(JsonWriter& json, const LoadResult& r) {
  const double steps = static_cast<double>(r.steps_executed);
  json.BeginObject();
  json.Key("name");
  json.String("SERVE-PROB");
  json.Key("workload");
  json.String("UNIF");
  json.Key("len");
  json.Int(r.len);
  json.Key("runs");
  json.Int(1);
  json.Key("shards");
  json.Int(1);
  json.Key("threads");
  json.Int(r.threads);
  json.Key("adaptive");
  json.Int(0);
  json.Key("planner");
  json.Int(0);
  json.Key("sessions");
  json.Int(r.sessions);
  json.Key("offered_rate");
  json.Int(r.offered_rate);
  json.Key("batch");
  json.Int(1);
  json.Key("setup_ns");
  json.Int(r.setup_ns);
  json.Key("run_ns");
  json.Int(r.run_ns);
  json.Key("ns_per_step");
  json.Double(static_cast<double>(r.run_ns) / steps);
  json.Key("steps_per_sec");
  json.Double(steps / (static_cast<double>(r.run_ns) * 1e-9));
  json.Key("p50_step_ns");
  json.Double(r.p50_step_ns);
  json.Key("p99_step_ns");
  json.Double(r.p99_step_ns);
  json.Key("peak_candidates");
  json.Int(0);
  json.Key("counted_results");
  json.Int(r.counted_results);
  json.Key("steps_shed");
  json.Int(r.steps_shed);
  json.Key("rounds");
  json.Int(r.rounds);
  json.EndObject();
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "serve_load: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return text;
}

void WriteFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "serve_load: cannot open %s for writing\n",
                 path.c_str());
    std::exit(1);
  }
  std::fputs(text.c_str(), f);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::vector<int> sessions_list =
      ParseIntList(flags.GetString("sessions", "1,64,512,2048"));
  std::vector<int> rates = ParseIntList(flags.GetString("rates", "16,64"));
  std::vector<int> threads_list =
      ParseIntList(flags.GetString("threads", "1,4"));
  Time len = flags.GetInt("len", 256);
  std::size_t capacity =
      static_cast<std::size_t>(flags.GetInt("capacity", 16));
  Time quota = flags.GetInt("quota", 32);
  std::uint64_t seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  std::string out_path = flags.GetString("out", "BENCH_serve.json");
  std::string append_path = flags.GetString("append", "");
  flags.CheckConsumed();

  std::vector<LoadResult> results;
  for (int sessions : sessions_list) {
    for (int rate : rates) {
      for (int threads : threads_list) {
        // One session cannot spread over workers; its threads>1 cells
        // would time the same serial execution under a different key.
        if (sessions == 1 && threads > 1) continue;
        results.push_back(RunLoadCell(sessions, rate, threads, len,
                                      capacity, quota, seed));
      }
    }
  }

  // Row fragment shared by both output modes.
  JsonWriter rows;
  rows.BeginArray();
  for (const LoadResult& r : results) WriteRow(rows, r);
  rows.EndArray();
  const std::string& rows_array = rows.str();
  // Strip the surrounding brackets to get "obj,obj,...".
  const std::string rows_inner =
      rows_array.substr(1, rows_array.size() - 2);

  if (!append_path.empty()) {
    // Splice into an existing perf_smoke document: bump the schema tag
    // and insert our rows before the final ']' — perf_smoke's writer
    // always emits "results" as the last key, so the last ']' in the
    // file closes that array.
    std::string text = ReadFile(append_path);
    bool upgraded = false;
    for (const char* old_tag : {"\"schema\":\"sjoin-perf-v4\"",
                                "\"schema\":\"sjoin-perf-v5\""}) {
      const std::size_t schema_pos = text.find(old_tag);
      if (schema_pos != std::string::npos) {
        text.replace(schema_pos, std::string(old_tag).size(),
                     "\"schema\":\"sjoin-perf-v6\"");
        upgraded = true;
        break;
      }
    }
    if (!upgraded && text.find("\"schema\":\"sjoin-perf-v6\"") ==
                         std::string::npos) {
      std::fprintf(stderr,
                   "serve_load: %s is not a sjoin-perf-v4/v5/v6 document\n",
                   append_path.c_str());
      return 1;
    }
    const std::size_t close = text.rfind(']');
    if (close == std::string::npos) {
      std::fprintf(stderr, "serve_load: no results array in %s\n",
                   append_path.c_str());
      return 1;
    }
    std::string insert = rows_inner;
    if (text[close - 1] != '[') insert = "," + insert;
    text.insert(close, insert);
    if (!JsonParses(text)) {
      std::fprintf(stderr,
                   "serve_load: splice produced invalid JSON, aborting\n");
      return 1;
    }
    WriteFile(append_path, text);
    std::fprintf(stderr, "appended %zu rows to %s\n", results.size(),
                 append_path.c_str());
    return 0;
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("schema");
  json.String("sjoin-perf-v6");
  json.Key("len");
  json.Int(len);
  json.Key("seed");
  json.Int(static_cast<std::int64_t>(seed));
  json.Key("results");
  json.BeginArray();
  for (const LoadResult& r : results) WriteRow(json, r);
  json.EndArray();
  json.EndObject();
  std::string text = json.str();
  text += '\n';
  SJOIN_CHECK(JsonParses(text));
  WriteFile(out_path, text);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
