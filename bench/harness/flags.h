#ifndef SJOIN_BENCH_HARNESS_FLAGS_H_
#define SJOIN_BENCH_HARNESS_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Minimal --key=value flag parsing for the benchmark binaries, so every
/// figure can be re-run at paper scale (e.g. --runs=50 --len=5000).

namespace sjoin::bench {

/// Parsed command line. Unknown flags abort with a message listing usage.
class Flags {
 public:
  Flags(int argc, char** argv);

  /// Integer flag with default.
  std::int64_t GetInt(const std::string& name, std::int64_t default_value);

  /// Double flag with default.
  double GetDouble(const std::string& name, double default_value);

  /// String flag with default (the raw text after '=').
  std::string GetString(const std::string& name,
                        const std::string& default_value);

  /// After all Get* calls, verify every provided flag was consumed.
  void CheckConsumed() const;

 private:
  struct Entry {
    std::string name;
    std::string value;
    bool consumed = false;
  };
  std::vector<Entry> entries_;
  std::string program_;
};

}  // namespace sjoin::bench

#endif  // SJOIN_BENCH_HARNESS_FLAGS_H_
