#!/usr/bin/env python3
"""Compare a fresh perf_smoke run against the committed BENCH_perf.json.

Usage:
    check_perf_regression.py BASELINE.json CURRENT.json [--threshold=1.25]

Rows are matched by (name, workload, len, shards); a sjoin-perf-v1 file
(no per-row shards) reads as shards=1 throughout, so v1 baselines keep
working against v2 runs. The raw per-row ratio
current/baseline of ns_per_step is normalized by the median ratio across
all matched rows before thresholding: CI machines are uniformly slower or
faster than the laptop that committed the baseline, and that uniform shift
carries no information about the code. A real regression moves one row
relative to the rest, which the normalized ratio isolates.

Exit status 1 if any normalized ratio exceeds the threshold or if a
baseline row is missing from the current run.
"""

import json
import statistics
import sys


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") not in ("sjoin-perf-v1", "sjoin-perf-v2"):
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return {
        (r["name"], r["workload"], r["len"], r.get("shards", 1)): r
        for r in doc["results"]
    }


def main(argv):
    threshold = 1.25
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.exit(__doc__)
    baseline = load_rows(paths[0])
    current = load_rows(paths[1])

    missing = sorted(set(baseline) - set(current))
    for key in missing:
        print(f"MISSING  {key[0]} ({key[1]}, len={key[2]}, "
              f"shards={key[3]}): "
              "row present in baseline but absent from current run")
    extra = sorted(set(current) - set(baseline))
    for key in extra:
        print(f"note: new row {key[0]} ({key[1]}, len={key[2]}, "
              f"shards={key[3]}) has no baseline yet")

    matched = sorted(set(baseline) & set(current))
    if not matched:
        sys.exit("no rows in common between baseline and current run")
    ratios = {
        key: current[key]["ns_per_step"] / baseline[key]["ns_per_step"]
        for key in matched
    }
    median = statistics.median(ratios.values())
    print(f"median current/baseline ns_per_step ratio: {median:.3f} "
          "(machine-speed normalizer)")

    failed = bool(missing)
    for key in matched:
        normalized = ratios[key] / median
        verdict = "ok"
        if normalized > threshold:
            verdict = f"REGRESSED >{(threshold - 1) * 100:.0f}%"
            failed = True
        print(f"{verdict:>14}  {key[0]:<18} {key[1]:<6} len={key[2]:<5} "
              f"x{key[3]:<2} "
              f"ns/step {baseline[key]['ns_per_step']:>12.0f} -> "
              f"{current[key]['ns_per_step']:>12.0f} "
              f"(raw x{ratios[key]:.3f}, normalized x{normalized:.3f})")

    if failed:
        print("perf regression check FAILED")
        return 1
    print("perf regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
