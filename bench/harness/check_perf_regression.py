#!/usr/bin/env python3
"""Compare a fresh perf_smoke run against the committed BENCH_perf.json.

Usage:
    check_perf_regression.py BASELINE.json CURRENT.json [--threshold=1.25]

Rows are matched by (name, workload, len, shards, adaptive, threads,
planner, sessions, offered_rate, batch); older files without per-row
shards/threads/adaptive/planner/sessions/offered_rate/batch read as
shards=1 / threads=1 / adaptive=0 / planner=0 / sessions=1 /
offered_rate=0 / batch=1 throughout, so v1..v5 baselines keep working
against newer runs. The raw per-row
ratio current/baseline of ns_per_step is normalized by the median ratio
across all matched rows before thresholding: CI machines are uniformly
slower or faster than the laptop that committed the baseline, and that
uniform shift carries no information about the code. A real regression
moves one row relative to the rest, which the normalized ratio isolates.

Only threads=1, sessions<=1 rows feed the median and the threshold:
multi-thread timings depend on the host's core count (a single-core
runner serializes every worker, a many-core one doesn't), and
multi-session serve timings depend on how the host schedules the worker
engines — so comparing either across machines measures the hardware, not
the code. threads>1 and sessions>1 rows are still matched and printed —
as "info" — and summarized after the table as best-threads
speedups over their own threads=1 row: the quick read on whether worker
threads pay off on this host (on a single-core runner they won't, and
that's expected).

Adaptive rows (skew-adaptive partition map on) are gated like any other
threads=1 row — the map's bookkeeping is part of the engine's cost — and
additionally summarized after the table: per row, the average hot-shard
load ratio (max/mean candidates scored per shard, per rebalance window)
under the static equal-width layout vs the evolved one, plus the
rebalance count. On skewed workloads the adaptive ratio should sit well
below the static one; on uniform workloads both hover near 1 with few or
no rebalances.

Serve rows (sjoin-perf-v5, name SERVE-PROB, emitted by bench/serve_load)
carry `sessions` and `offered_rate` plus the per-step latency
percentiles p50_step_ns / p99_step_ns; the sessions=1 row is gated (it
is the scheduler-overhead anchor over a bare engine run) and the sweep
is summarized after the table — aggregate steps/s and the latency
percentiles per (sessions, rate, threads) cell.

Planner rows (sjoin-perf-v4 multi-way rows with the runtime probe
planner + score memos attached) are gated like any other threads=1 row
and summarized after the table: per planner-on row, the steps/sec
speedup over its planner-off twin plus the probe skip rate, probe-cache
hit rate and checkpoint re-plan count. The planner is cost-only by
contract, so a planner pair disagreeing on counted_results in the
current run is a hard failure — that's a correctness bug, not a perf
question.

Batch rows (sjoin-perf-v6: `batch` 0 = scalar per-tuple Score() loop,
1 = batched SoA scoring kernels, the default) are gated like any other
threads=1 row and summarized after the table: per batch-off row, the
ns/step speedup its batch-on twin achieves on the same realizations.
The kernels preserve per-lane operation order by contract, so a batch
pair disagreeing on counted_results in the current run is a hard
failure — that's a correctness bug, not a perf question.

Exit status 1 if any normalized threads=1 ratio exceeds the threshold,
if a baseline row is missing from the current run, or if a planner or
batch pair disagrees on counted_results.
"""

import json
import statistics
import sys


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") not in ("sjoin-perf-v1", "sjoin-perf-v2",
                                 "sjoin-perf-v3", "sjoin-perf-v4",
                                 "sjoin-perf-v5", "sjoin-perf-v6"):
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return {
        (r["name"], r["workload"], r["len"], r.get("shards", 1),
         r.get("adaptive", 0), r.get("threads", 1),
         r.get("planner", 0), r.get("sessions", 1),
         r.get("offered_rate", 0), r.get("batch", 1)): r
        for r in doc["results"]
    }


def describe(key):
    (name, workload, length, shards, adaptive, threads, planner,
     sessions, rate, batch) = key
    suffix = ", adaptive" if adaptive else ""
    suffix += ", planner" if planner else ""
    suffix += ", batch-off" if not batch else ""
    if sessions > 1 or rate > 0:
        suffix += f", sessions={sessions}, rate={rate}"
    return (f"{name} ({workload}, len={length}, shards={shards}, "
            f"threads={threads}{suffix})")


def thread_scaling_summary(rows):
    """Best-threads speedup vs the threads=1 row for each threads sweep."""
    groups = {}
    for key, row in rows.items():
        group_key = key[:5] + key[6:]  # Everything but the threads axis.
        groups.setdefault(group_key, {})[key[5]] = row["ns_per_step"]
    printed_header = False
    for group_key, by_threads in sorted(groups.items()):
        if len(by_threads) < 2 or 1 not in by_threads:
            continue
        if not printed_header:
            print("\nthread scaling (current run, best threads vs threads=1):")
            printed_header = True
        serial = by_threads[1]
        best_threads = min(by_threads, key=lambda t: by_threads[t])
        speedup = serial / by_threads[best_threads]
        (name, workload, length, shards, adaptive, planner, sessions, rate,
         _batch) = group_key
        tag = " adaptive" if adaptive else ""
        tag += " planner" if planner else ""
        if sessions > 1:
            tag += f" n={sessions} rate={rate}"
        print(f"  {name:<18} {workload:<6} len={length:<5} "
              f"shards={shards:<2}{tag} best t={best_threads} "
              f"speedup x{speedup:.2f} "
              f"({serial:.0f} -> {by_threads[best_threads]:.0f} ns/step)")


def skew_summary(rows):
    """Hot-shard load ratio before/after rebalancing, per adaptive row."""
    printed_header = False
    for key, row in sorted(rows.items()):
        if key[4] == 0 or "skew_ratio_static" not in row:
            continue
        if not printed_header:
            print("\nskew balance (current run, max/mean load per shard, "
                  "averaged over rebalance windows):")
            printed_header = True
        name, workload, length, shards, _, threads = key[:6]
        static = row["skew_ratio_static"]
        adaptive = row["skew_ratio_adaptive"]
        print(f"  {name:<18} {workload:<6} len={length:<5} "
              f"s{shards}/t{threads:<2} static x{static:.2f} -> "
              f"adaptive x{adaptive:.2f} "
              f"({row.get('rebalances', 0)} rebalances over "
              f"{row.get('windows', 0)} windows)")


def probe_plan_summary(rows):
    """Planner-on vs planner-off twins: speedup and probe-order stats.

    Returns the number of planner pairs whose counted_results disagree —
    the planner is cost-only by contract, so any disagreement is a
    correctness failure.
    """
    mismatches = 0
    printed_header = False
    for key, row in sorted(rows.items()):
        if key[6] == 0:
            continue
        twin_key = key[:6] + (0,) + key[7:]
        twin = rows.get(twin_key)
        if not printed_header:
            print("\nprobe planner (current run, planner-on vs planner-off "
                  "twin):")
            printed_header = True
        name, workload, length = key[:3]
        line = f"  {name:<18} {workload:<6} len={length:<5} "
        if twin is None:
            print(line + "no planner-off twin in this run")
            continue
        speedup = twin["ns_per_step"] / row["ns_per_step"]
        skip = row.get("probe_skip_rate", 0.0)
        hit = row.get("probe_cache_hit_rate", 0.0)
        replans = row.get("plan_replans", 0)
        line += (f"speedup x{speedup:.2f} "
                 f"({twin['ns_per_step']:.0f} -> {row['ns_per_step']:.0f} "
                 f"ns/step), skip {skip * 100:.1f}%, "
                 f"memo hit {hit * 100:.1f}%, {replans} replans")
        if row["counted_results"] != twin["counted_results"]:
            line += (f"  COUNTED_RESULTS DIVERGE ({twin['counted_results']} "
                     f"vs {row['counted_results']})")
            mismatches += 1
        print(line)
    return mismatches


def batch_summary(rows):
    """Batch-on vs batch-off twins: SoA scoring-kernel speedup per pair.

    Returns the number of batch pairs whose counted_results disagree —
    the kernels preserve per-lane operation order by contract, so any
    disagreement is a correctness failure.
    """
    mismatches = 0
    printed_header = False
    for key, row in sorted(rows.items()):
        if key[9] != 0:
            continue
        twin = rows.get(key[:9] + (1,))
        if not printed_header:
            print("\nbatch scoring (current run, batch-on vs batch-off "
                  "twin):")
            printed_header = True
        name, workload, length = key[:3]
        line = f"  {name:<18} {workload:<6} len={length:<5} "
        if twin is None:
            print(line + "no batch-on twin in this run")
            continue
        speedup = row["ns_per_step"] / twin["ns_per_step"]
        line += (f"speedup x{speedup:.2f} "
                 f"({row['ns_per_step']:.0f} -> {twin['ns_per_step']:.0f} "
                 f"ns/step)")
        if row["counted_results"] != twin["counted_results"]:
            line += (f"  COUNTED_RESULTS DIVERGE ({row['counted_results']} "
                     f"vs {twin['counted_results']})")
            mismatches += 1
        print(line)
    return mismatches


def serve_summary(rows):
    """Serve load sweep: throughput and step-latency tails per cell."""
    printed_header = False
    for key, row in sorted(rows.items(), key=lambda kv: (kv[0][7],
                                                         kv[0][8],
                                                         kv[0][5])):
        if "p50_step_ns" not in row:
            continue
        if not printed_header:
            print("\nserve load sweep (current run, aggregate throughput "
                  "and per-step latency):")
            printed_header = True
        name, _, length, _, _, threads, _, sessions, rate = key[:9]
        print(f"  {name:<18} n={sessions:<5} rate={rate:<3} t={threads} "
              f"len={length:<5} "
              f"{row['steps_per_sec']:>10.0f} steps/s  "
              f"p50 {row['p50_step_ns']:>7.0f} ns  "
              f"p99 {row['p99_step_ns']:>7.0f} ns")


def main(argv):
    threshold = 1.25
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.exit(__doc__)
    baseline = load_rows(paths[0])
    current = load_rows(paths[1])

    missing = sorted(set(baseline) - set(current))
    for key in missing:
        print(f"MISSING  {describe(key)}: "
              "row present in baseline but absent from current run")
    extra = sorted(set(current) - set(baseline))
    for key in extra:
        print(f"note: new row {describe(key)} has no baseline yet")

    matched = sorted(set(baseline) & set(current))
    if not matched:
        sys.exit("no rows in common between baseline and current run")
    ratios = {
        key: current[key]["ns_per_step"] / baseline[key]["ns_per_step"]
        for key in matched
    }
    gated = [key for key in matched if key[5] == 1 and key[7] <= 1]
    if not gated:
        sys.exit("no threads=1 rows in common to gate on")
    median = statistics.median(ratios[key] for key in gated)
    print(f"median current/baseline ns_per_step ratio: {median:.3f} "
          "(machine-speed normalizer, threads=1 sessions<=1 rows)")

    failed = bool(missing)
    for key in matched:
        normalized = ratios[key] / median
        if key[5] != 1 or key[7] > 1:
            verdict = "info"
        elif normalized > threshold:
            verdict = f"REGRESSED >{(threshold - 1) * 100:.0f}%"
            failed = True
        else:
            verdict = "ok"
        tag = "a" if key[4] else ""
        tag += "p" if key[6] else ""
        tag += "nb" if not key[9] else ""  # Scalar (no-batch) scoring.
        serve_cell = f" n={key[7]} rate={key[8]}" if key[7] > 1 else ""
        print(f"{verdict:>14}  {key[0]:<18} {key[1]:<6} len={key[2]:<5} "
              f"s{key[3]}{tag}/t{key[5]:<2} "
              f"ns/step {baseline[key]['ns_per_step']:>12.0f} -> "
              f"{current[key]['ns_per_step']:>12.0f} "
              f"(raw x{ratios[key]:.3f}, normalized x{normalized:.3f})"
              f"{serve_cell}")

    thread_scaling_summary(current)
    skew_summary(current)
    serve_summary(current)
    if probe_plan_summary(current) > 0:
        print("planner pair counted_results mismatch — the probe planner "
              "must be cost-only")
        failed = True
    if batch_summary(current) > 0:
        print("batch pair counted_results mismatch — the SoA scoring "
              "kernels must be bit-identical to the scalar path")
        failed = True

    if failed:
        print("perf regression check FAILED")
        return 1
    print("perf regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
