#ifndef SJOIN_BENCH_HARNESS_RUNNER_H_
#define SJOIN_BENCH_HARNESS_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/configs.h"
#include "sjoin/analysis/summary_stats.h"
#include "sjoin/common/thread_pool.h"

/// \file
/// Shared experiment runner: samples stream pairs (common random numbers
/// across algorithms), runs the paper's algorithm roster, and aggregates
/// the per-run result counts.
///
/// Every (algorithm, run) combination is an independent simulator job: the
/// stream pairs are pre-sampled serially, each job constructs its own
/// policy from its own clones of the stream processes, and each job writes
/// into its own pre-allocated result slot. Executing the jobs on a thread
/// pool therefore produces bit-identical output to serial execution — the
/// aggregation order never depends on scheduling.

namespace sjoin::bench {

/// One algorithm's aggregate over the runs.
struct AlgoResult {
  std::string name;
  RunSummary summary;
};

/// Knobs for a roster execution.
struct RosterOptions {
  std::size_t cache = 10;
  Time len = 1000;
  int runs = 5;
  std::uint64_t seed = 1;
  /// Warm-up: results before this time are not counted. -1 derives
  /// 4 * cache ("no less than four times the cache size", Section 6.2);
  /// sweeps pin it to 4 * max cache so all sizes share a counting window.
  Time warmup = -1;
  /// OPT-offline is O(len * window) per run; skippable for big sweeps.
  bool include_opt = true;
  /// FlowExpect is the expensive yardstick; off by default.
  bool include_flow_expect = false;
  Time flow_expect_lookahead = 5;
  /// Worker threads for the (algorithm, run) jobs: 1 = serial on the
  /// calling thread (the historical behavior), 0 = hardware concurrency,
  /// N = N workers. Results are bit-identical for every value.
  int threads = 1;
};

/// A roster whose jobs have been submitted to a pool but not yet awaited.
/// Move-only; Await() may be called once.
class PendingRoster {
 public:
  PendingRoster();
  PendingRoster(PendingRoster&&) noexcept;
  PendingRoster& operator=(PendingRoster&&) noexcept;
  ~PendingRoster();

  /// Blocks until every job of this roster has finished and returns the
  /// per-algorithm summaries (same order as RunJoinRoster).
  std::vector<AlgoResult> Await();

 private:
  friend PendingRoster EnqueueJoinRoster(const JoinWorkload& workload,
                                         const RosterOptions& options,
                                         ThreadPool& pool);
  struct State;
  std::unique_ptr<State> state_;
};

/// Samples the runs' stream pairs (serially, so inputs are independent of
/// the thread count) and submits one job per (algorithm, run) onto `pool`.
/// `workload` must stay alive until Await() returns; `pool` must outlive
/// the returned PendingRoster. Sweeps use this to keep every sweep point's
/// jobs in flight at once.
PendingRoster EnqueueJoinRoster(const JoinWorkload& workload,
                                const RosterOptions& options,
                                ThreadPool& pool);

/// Runs OPT-offline, FlowExpect (optional), RAND, PROB, LIFE (when
/// applicable) and HEEB on `workload`, every algorithm on the same
/// sampled realizations, counting results produced after a warm-up of
/// 4x the cache size (Section 6.2). Executes on options.threads workers;
/// the output does not depend on the thread count.
std::vector<AlgoResult> RunJoinRoster(const JoinWorkload& workload,
                                      const RosterOptions& options);

/// Prints "label,algo1,algo2,..." header and one CSV row per x value.
/// Used by the sweep figures.
void PrintCsvHeader(const std::string& x_label,
                    const std::vector<AlgoResult>& roster);
void PrintCsvRow(double x, const std::vector<AlgoResult>& roster);

/// Prints one block of results with mean/stddev/min/max per algorithm.
void PrintSummaryBlock(const std::string& title,
                       const std::vector<AlgoResult>& roster);

/// Declarative spec for a figure binary's main(): flag parsing, roster
/// execution and printing live here once, so every roster figure is a
/// handful of lines naming its workloads (Figures 8-12 all ride on it).
struct RosterMainSpec {
  enum class Mode {
    /// One workload, roster per cache size on the shared 1..max_cache
    /// grid, one CSV row per size (Figures 9-12). Flags: --len --runs
    /// --seed --max_cache --threads.
    kCacheSweep,
    /// One roster per workload at a fixed cache size, printed as summary
    /// blocks (Figure 8). Flags: --cache --len --runs --seed --threads,
    /// plus --flowexpect/--lookahead when flow_expect_flags is set.
    kSummary,
  };

  std::string figure_name;
  Mode mode = Mode::kCacheSweep;
  /// One factory per workload. kCacheSweep requires exactly one; the
  /// factory runs once per sweep point because WALK's tables depend on
  /// alpha = cache size.
  std::vector<std::function<JoinWorkload()>> workloads;
  Time default_len = 800;
  int default_runs = 3;
  /// kSummary only.
  std::size_t default_cache = 10;
  bool flow_expect_flags = false;
};

/// Parses flags, runs the rosters described by `spec`, prints, and
/// returns the process exit code. All (run, policy, sweep-point) jobs
/// share one thread pool sized by --threads (0 = hardware concurrency,
/// 1 = serial); output is bit-identical for every thread count.
int RunRosterMain(int argc, char** argv, const RosterMainSpec& spec);

}  // namespace sjoin::bench

#endif  // SJOIN_BENCH_HARNESS_RUNNER_H_
