#ifndef SJOIN_BENCH_HARNESS_RUNNER_H_
#define SJOIN_BENCH_HARNESS_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "harness/configs.h"
#include "sjoin/analysis/summary_stats.h"

/// \file
/// Shared experiment runner: samples stream pairs (common random numbers
/// across algorithms), runs the paper's algorithm roster, and aggregates
/// the per-run result counts.

namespace sjoin::bench {

/// One algorithm's aggregate over the runs.
struct AlgoResult {
  std::string name;
  RunSummary summary;
};

/// Knobs for a roster execution.
struct RosterOptions {
  std::size_t cache = 10;
  Time len = 1000;
  int runs = 5;
  std::uint64_t seed = 1;
  /// Warm-up: results before this time are not counted. -1 derives
  /// 4 * cache ("no less than four times the cache size", Section 6.2);
  /// sweeps pin it to 4 * max cache so all sizes share a counting window.
  Time warmup = -1;
  /// OPT-offline is O(len * window) per run; skippable for big sweeps.
  bool include_opt = true;
  /// FlowExpect is the expensive yardstick; off by default.
  bool include_flow_expect = false;
  Time flow_expect_lookahead = 5;
};

/// Runs OPT-offline, FlowExpect (optional), RAND, PROB, LIFE (when
/// applicable) and HEEB on `workload`, every algorithm on the same
/// sampled realizations, counting results produced after a warm-up of
/// 4x the cache size (Section 6.2).
std::vector<AlgoResult> RunJoinRoster(const JoinWorkload& workload,
                                      const RosterOptions& options);

/// Prints "label,algo1,algo2,..." header and one CSV row per x value.
/// Used by the sweep figures.
void PrintCsvHeader(const std::string& x_label,
                    const std::vector<AlgoResult>& roster);
void PrintCsvRow(double x, const std::vector<AlgoResult>& roster);

/// Prints one block of results with mean/stddev/min/max per algorithm.
void PrintSummaryBlock(const std::string& title,
                       const std::vector<AlgoResult>& roster);

}  // namespace sjoin::bench

#endif  // SJOIN_BENCH_HARNESS_RUNNER_H_
