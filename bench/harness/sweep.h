#ifndef SJOIN_BENCH_HARNESS_SWEEP_H_
#define SJOIN_BENCH_HARNESS_SWEEP_H_

#include <functional>

#include "harness/flags.h"
#include "harness/runner.h"

/// \file
/// Shared cache-size sweep used by Figures 9-12.

namespace sjoin::bench {

/// Runs the roster for cache sizes 1..max_cache (log-ish grid) and prints
/// a CSV series per algorithm. `factory` builds a fresh workload (the
/// processes are stateless, but WALK tables depend on alpha = cache size).
/// All (run, policy, sweep-point) jobs run on one thread pool sized by
/// --threads (default: hardware concurrency; 1 = serial); the CSV output
/// is bit-identical for every thread count.
int RunCacheSweepMain(int argc, char** argv,
                      const std::function<JoinWorkload()>& factory,
                      const char* figure_name);

}  // namespace sjoin::bench

#endif  // SJOIN_BENCH_HARNESS_SWEEP_H_
