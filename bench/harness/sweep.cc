#include "harness/sweep.h"

#include <cstdio>
#include <vector>

namespace sjoin::bench {

int RunCacheSweepMain(int argc, char** argv,
                      const std::function<JoinWorkload()>& factory,
                      const char* figure_name) {
  Flags flags(argc, argv);
  RosterOptions options;
  options.len = flags.GetInt("len", 800);
  options.runs = static_cast<int>(flags.GetInt("runs", 3));
  options.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  std::int64_t max_cache = flags.GetInt("max_cache", 50);
  flags.CheckConsumed();

  std::vector<std::int64_t> caches;
  for (std::int64_t c : {1, 2, 3, 5, 8, 10, 15, 20, 30, 40, 50}) {
    if (c <= max_cache) caches.push_back(c);
  }
  if (caches.empty()) {
    std::fprintf(stderr, "%s: --max_cache must be >= 1\n", figure_name);
    return 2;
  }
  // A shared counting window so sizes are comparable (>= 4x every cache).
  options.warmup = 4 * caches.back();

  std::printf("# %s: average join counts vs memory size (len=%lld "
              "runs=%d)\n",
              figure_name, static_cast<long long>(options.len),
              options.runs);
  bool header_printed = false;
  for (std::int64_t cache : caches) {
    options.cache = static_cast<std::size_t>(cache);
    JoinWorkload workload = factory();
    auto roster = RunJoinRoster(workload, options);
    if (!header_printed) {
      PrintCsvHeader("memory", roster);
      header_printed = true;
    }
    PrintCsvRow(static_cast<double>(cache), roster);
  }
  return 0;
}

}  // namespace sjoin::bench
