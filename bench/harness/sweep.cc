#include "harness/sweep.h"

#include <cstdio>
#include <vector>

#include "sjoin/common/thread_pool.h"

namespace sjoin::bench {

int RunCacheSweepMain(int argc, char** argv,
                      const std::function<JoinWorkload()>& factory,
                      const char* figure_name) {
  Flags flags(argc, argv);
  RosterOptions options;
  options.len = flags.GetInt("len", 800);
  options.runs = static_cast<int>(flags.GetInt("runs", 3));
  options.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  std::int64_t max_cache = flags.GetInt("max_cache", 50);
  int threads = static_cast<int>(flags.GetInt("threads", 0));
  flags.CheckConsumed();

  std::vector<std::int64_t> caches;
  for (std::int64_t c : {1, 2, 3, 5, 8, 10, 15, 20, 30, 40, 50}) {
    if (c <= max_cache) caches.push_back(c);
  }
  if (caches.empty()) {
    std::fprintf(stderr, "%s: --max_cache must be >= 1\n", figure_name);
    return 2;
  }
  // A shared counting window so sizes are comparable (>= 4x every cache).
  options.warmup = 4 * caches.back();

  std::printf("# %s: average join counts vs memory size (len=%lld "
              "runs=%d)\n",
              figure_name, static_cast<long long>(options.len),
              options.runs);

  // All (run, policy, sweep-point) jobs share one pool so the whole sweep
  // stays parallel end to end; rows still print in sweep order, and the
  // CSV is bit-identical for every thread count.
  ThreadPool pool(threads);
  struct Point {
    std::int64_t cache;
    JoinWorkload workload;
    PendingRoster pending;
  };
  std::vector<Point> points;
  points.reserve(caches.size());
  for (std::int64_t cache : caches) {
    // Fresh workload per point: WALK tables depend on alpha = cache size.
    points.push_back({cache, factory(), {}});
  }
  for (Point& point : points) {
    options.cache = static_cast<std::size_t>(point.cache);
    point.pending = EnqueueJoinRoster(point.workload, options, pool);
  }

  bool header_printed = false;
  for (Point& point : points) {
    auto roster = point.pending.Await();
    if (!header_printed) {
      PrintCsvHeader("memory", roster);
      header_printed = true;
    }
    PrintCsvRow(static_cast<double>(point.cache), roster);
  }
  return 0;
}

}  // namespace sjoin::bench
