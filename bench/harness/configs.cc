#include "harness/configs.h"

#include <cmath>
#include <cstdio>

#include "sjoin/core/lifetime_fn.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/random_walk_process.h"
#include "sjoin/stochastic/regime_switching_process.h"
#include "sjoin/stochastic/stationary_process.h"

namespace sjoin::bench {
namespace {

JoinWorkload MakeTrendWorkload(std::string name, double r_sd, double s_sd,
                               double r_lag, bool uniform) {
  JoinWorkload workload;
  workload.name = std::move(name);
  DiscreteDistribution r_noise =
      uniform ? DiscreteDistribution::BoundedUniform(-kRNoiseBound,
                                                     kRNoiseBound)
              : DiscreteDistribution::TruncatedDiscretizedNormal(
                    0.0, r_sd, -kRNoiseBound, kRNoiseBound);
  DiscreteDistribution s_noise =
      uniform ? DiscreteDistribution::BoundedUniform(-kSNoiseBound,
                                                     kSNoiseBound)
              : DiscreteDistribution::TruncatedDiscretizedNormal(
                    0.0, s_sd, -kSNoiseBound, kSNoiseBound);
  workload.r = std::make_unique<LinearTrendProcess>(1.0, -r_lag,
                                                    std::move(r_noise));
  workload.s =
      std::make_unique<LinearTrendProcess>(1.0, 0.0, std::move(s_noise));
  workload.life_window = kRNoiseBound + kSNoiseBound;
  // Section 5.3/5.4: crude average-lifetime estimate (wR + wS) / 2.
  workload.heeb_alpha = ExpLifetime::AlphaForAverageLifetime(
      static_cast<double>(kRNoiseBound + kSNoiseBound) / 2.0);
  workload.heeb_mode = HeebJoinPolicy::Mode::kTimeIncremental;
  workload.heeb_horizon = 150;
  return workload;
}

}  // namespace

JoinWorkload MakeTower(double r_lag, double s_sd_scale, bool equal_streams) {
  // equal_streams: start from identical statistical properties (sd 1 for
  // both) as in the Figure 14 study; r_lag and s_sd_scale then perturb one
  // property at a time. The paper's base TOWER uses sd (1, 2) and lag 1.
  double base_s_sd = equal_streams ? 1.0 : 2.0;
  return MakeTrendWorkload("TOWER", 1.0, base_s_sd * s_sd_scale, r_lag,
                           /*uniform=*/false);
}

JoinWorkload MakeRoof() {
  return MakeTrendWorkload("ROOF", 3.3, 5.0, 1.0, /*uniform=*/false);
}

JoinWorkload MakeFloor() {
  return MakeTrendWorkload("FLOOR", 0.0, 0.0, 1.0, /*uniform=*/true);
}

JoinWorkload MakeZipf(double s) {
  JoinWorkload workload;
  char name[32];
  std::snprintf(name, sizeof(name), "ZIPF%02d",
                static_cast<int>(std::lround(s * 10)));
  workload.name = name;
  // Both streams share the hot head, so hot values both dominate the
  // cache and join often — the per-shard load the rebalancer sees is as
  // skewed as the pmf.
  auto pmf = DiscreteDistribution::Zipf(0, 63, s);
  workload.r = std::make_unique<StationaryProcess>(pmf);
  workload.s = std::make_unique<StationaryProcess>(pmf);
  // No noise-bound window exists for a stationary stream; give LIFE the
  // hot head's expected re-arrival scale instead.
  workload.life_window = 32;
  workload.heeb_alpha = ExpLifetime::AlphaForAverageLifetime(16.0);
  workload.heeb_mode = HeebJoinPolicy::Mode::kTimeIncremental;
  workload.heeb_horizon = 80;
  return workload;
}

JoinWorkload MakeBursty() {
  JoinWorkload workload;
  workload.name = "BURSTY";
  // 60-step bursts concentrated on an 8-value window at the top of the
  // domain, then 140 calm steps spread near-uniformly over all 64 values.
  std::vector<RegimeSwitchingProcess::Phase> phases;
  phases.push_back({DiscreteDistribution::Zipf(48, 55, 1.4), 60});
  phases.push_back({DiscreteDistribution::Zipf(0, 63, 0.2), 140});
  workload.r = std::make_unique<RegimeSwitchingProcess>(phases);
  workload.s = std::make_unique<RegimeSwitchingProcess>(std::move(phases));
  workload.life_window = 32;
  workload.heeb_alpha = ExpLifetime::AlphaForAverageLifetime(16.0);
  workload.heeb_mode = HeebJoinPolicy::Mode::kTimeIncremental;
  workload.heeb_horizon = 80;
  return workload;
}

JoinWorkload MakeRegime() {
  JoinWorkload workload;
  workload.name = "REGIME";
  // The hot window jumps across the domain every 150 steps; a partition
  // balanced for one regime is pinned by the next.
  std::vector<RegimeSwitchingProcess::Phase> phases;
  phases.push_back({DiscreteDistribution::Zipf(0, 15, 1.2), 150});
  phases.push_back({DiscreteDistribution::Zipf(24, 39, 1.2), 150});
  phases.push_back({DiscreteDistribution::Zipf(48, 63, 1.2), 150});
  workload.r = std::make_unique<RegimeSwitchingProcess>(phases);
  workload.s = std::make_unique<RegimeSwitchingProcess>(std::move(phases));
  workload.life_window = 32;
  workload.heeb_alpha = ExpLifetime::AlphaForAverageLifetime(16.0);
  workload.heeb_mode = HeebJoinPolicy::Mode::kTimeIncremental;
  workload.heeb_horizon = 80;
  return workload;
}

JoinWorkload MakeWalk() {
  JoinWorkload workload;
  workload.name = "WALK";
  auto step = DiscreteDistribution::DiscretizedNormal(0.0, 1.0);
  workload.r = std::make_unique<RandomWalkProcess>(step, 0);
  workload.s = std::make_unique<RandomWalkProcess>(step, 0);
  workload.life_window = 0;  // "there is no window" — LIFE inapplicable.
  workload.life_applicable = false;
  // Section 5.5: alpha set to the cache size; callers override per run.
  workload.heeb_alpha = 10.0;
  workload.alpha_tracks_cache = true;
  workload.heeb_mode = HeebJoinPolicy::Mode::kWalkTable;
  workload.heeb_horizon = 80;
  return workload;
}

}  // namespace sjoin::bench
