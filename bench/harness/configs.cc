#include "harness/configs.h"

#include "sjoin/core/lifetime_fn.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/random_walk_process.h"

namespace sjoin::bench {
namespace {

JoinWorkload MakeTrendWorkload(std::string name, double r_sd, double s_sd,
                               double r_lag, bool uniform) {
  JoinWorkload workload;
  workload.name = std::move(name);
  DiscreteDistribution r_noise =
      uniform ? DiscreteDistribution::BoundedUniform(-kRNoiseBound,
                                                     kRNoiseBound)
              : DiscreteDistribution::TruncatedDiscretizedNormal(
                    0.0, r_sd, -kRNoiseBound, kRNoiseBound);
  DiscreteDistribution s_noise =
      uniform ? DiscreteDistribution::BoundedUniform(-kSNoiseBound,
                                                     kSNoiseBound)
              : DiscreteDistribution::TruncatedDiscretizedNormal(
                    0.0, s_sd, -kSNoiseBound, kSNoiseBound);
  workload.r = std::make_unique<LinearTrendProcess>(1.0, -r_lag,
                                                    std::move(r_noise));
  workload.s =
      std::make_unique<LinearTrendProcess>(1.0, 0.0, std::move(s_noise));
  workload.life_window = kRNoiseBound + kSNoiseBound;
  // Section 5.3/5.4: crude average-lifetime estimate (wR + wS) / 2.
  workload.heeb_alpha = ExpLifetime::AlphaForAverageLifetime(
      static_cast<double>(kRNoiseBound + kSNoiseBound) / 2.0);
  workload.heeb_mode = HeebJoinPolicy::Mode::kTimeIncremental;
  workload.heeb_horizon = 150;
  return workload;
}

}  // namespace

JoinWorkload MakeTower(double r_lag, double s_sd_scale, bool equal_streams) {
  // equal_streams: start from identical statistical properties (sd 1 for
  // both) as in the Figure 14 study; r_lag and s_sd_scale then perturb one
  // property at a time. The paper's base TOWER uses sd (1, 2) and lag 1.
  double base_s_sd = equal_streams ? 1.0 : 2.0;
  return MakeTrendWorkload("TOWER", 1.0, base_s_sd * s_sd_scale, r_lag,
                           /*uniform=*/false);
}

JoinWorkload MakeRoof() {
  return MakeTrendWorkload("ROOF", 3.3, 5.0, 1.0, /*uniform=*/false);
}

JoinWorkload MakeFloor() {
  return MakeTrendWorkload("FLOOR", 0.0, 0.0, 1.0, /*uniform=*/true);
}

JoinWorkload MakeWalk() {
  JoinWorkload workload;
  workload.name = "WALK";
  auto step = DiscreteDistribution::DiscretizedNormal(0.0, 1.0);
  workload.r = std::make_unique<RandomWalkProcess>(step, 0);
  workload.s = std::make_unique<RandomWalkProcess>(step, 0);
  workload.life_window = 0;  // "there is no window" — LIFE inapplicable.
  workload.life_applicable = false;
  // Section 5.5: alpha set to the cache size; callers override per run.
  workload.heeb_alpha = 10.0;
  workload.alpha_tracks_cache = true;
  workload.heeb_mode = HeebJoinPolicy::Mode::kWalkTable;
  workload.heeb_horizon = 80;
  return workload;
}

}  // namespace sjoin::bench
