#ifndef SJOIN_BENCH_HARNESS_CONFIGS_H_
#define SJOIN_BENCH_HARNESS_CONFIGS_H_

#include <memory>
#include <string>

#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/stochastic/process.h"

/// \file
/// The paper's experiment configurations (Section 6.1).
///
/// TOWER / ROOF / FLOOR: independent linear trends drifting at speed 1, R
/// lagging one step behind S, zero-mean noise bounded to [-10, 10] for R
/// and [-15, 15] for S. TOWER uses bounded normal noise with sd (1, 2),
/// ROOF with sd (3.3, 5), FLOOR bounded uniform (Figure 7). WALK uses two
/// random walks with discretized N(0, 1) steps.

namespace sjoin::bench {

/// A two-stream joining workload plus the tuning the paper gives each
/// heuristic for it.
struct JoinWorkload {
  std::string name;
  std::unique_ptr<StochasticProcess> r;
  std::unique_ptr<StochasticProcess> s;
  /// Assumed tuple lifetime handed to RAND / PROB / LIFE ("we use the
  /// bound on the noise distribution as the sliding window").
  Time life_window = 0;
  /// L_exp parameter for HEEB (Section 5 guidance per scenario).
  double heeb_alpha = 10.0;
  /// The efficient HEEB mode applicable to this workload.
  HeebJoinPolicy::Mode heeb_mode = HeebJoinPolicy::Mode::kDirect;
  /// Sum-truncation horizon for HEEB.
  Time heeb_horizon = 120;
  /// Whether LIFE is applicable (not for WALK: "there is no window").
  bool life_applicable = true;
  /// Section 5.5: for random walks the paper sets alpha to the cache
  /// size; the runner overrides heeb_alpha per cache size when set.
  bool alpha_tracks_cache = false;
};

/// Noise bounds shared by the trend configurations.
inline constexpr Value kRNoiseBound = 10;
inline constexpr Value kSNoiseBound = 15;

/// TOWER with optional overrides: `r_lag` steps of R lag (paper default 1)
/// and a multiplier on S's noise standard deviation (Figure 14 uses 2 and
/// 4). `equal_streams` makes R and S identical (no lag, same sd), the
/// starting point of the memory-allocation study.
JoinWorkload MakeTower(double r_lag = 1.0, double s_sd_scale = 1.0,
                       bool equal_streams = false);

JoinWorkload MakeRoof();
JoinWorkload MakeFloor();
JoinWorkload MakeWalk();

/// Skewed workloads for the adaptive-sharding study (DESIGN.md §2e) —
/// not from the paper, which only evaluates the trend/walk shapes above.
/// ZIPF: both streams stationary Zipf over a 64-value domain at exponent
/// `s` (0.8 mild, 1.2 a hot head the static hash pins onto one shard).
/// BURSTY: short hot phases of a narrow high-skew window alternating with
/// long calm near-uniform phases. REGIME: the Zipf hot window jumps to a
/// different value range each phase, so a partition balanced for one
/// phase is skewed for the next. All three are independent-step
/// processes, so time-incremental HEEB and the sharded scoring path
/// apply.
JoinWorkload MakeZipf(double s);
JoinWorkload MakeBursty();
JoinWorkload MakeRegime();

}  // namespace sjoin::bench

#endif  // SJOIN_BENCH_HARNESS_CONFIGS_H_
