#include "harness/runner.h"

#include <cstdio>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <utility>

#include "harness/flags.h"

#include "sjoin/common/check.h"
#include "sjoin/common/rng.h"
#include "sjoin/core/flow_expect_policy.h"
#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/policies/life_policy.h"
#include "sjoin/policies/opt_offline_policy.h"
#include "sjoin/policies/prob_policy.h"
#include "sjoin/policies/random_policy.h"
#include "sjoin/stochastic/stream_sampler.h"

namespace sjoin::bench {

/// Everything a roster's in-flight jobs reference. Heap-allocated and
/// owned by the PendingRoster so addresses stay stable while jobs run.
struct PendingRoster::State {
  /// Builds one job's policy. `r` and `s` are that job's private clones of
  /// the workload processes (policies keep raw pointers, and
  /// RandomWalkProcess memoizes convolution powers lazily, so sharing one
  /// instance across concurrent jobs would race).
  using PolicyFactory = std::function<std::unique_ptr<ReplacementPolicy>(
      const StreamPair& pair, const StochasticProcess* r,
      const StochasticProcess* s)>;

  struct Entry {
    std::string name;
    PolicyFactory make;
    std::vector<double> counts;  // One slot per run; no cross-job sharing.
  };

  explicit State(JoinSimulator::Options sim_options) : sim(sim_options) {}

  JoinSimulator sim;
  const JoinWorkload* workload = nullptr;
  std::vector<StreamPair> pairs;
  std::vector<Entry> entries;
  std::vector<std::future<void>> futures;
};

PendingRoster::PendingRoster() = default;
PendingRoster::PendingRoster(PendingRoster&&) noexcept = default;
PendingRoster& PendingRoster::operator=(PendingRoster&&) noexcept = default;
PendingRoster::~PendingRoster() {
  // Jobs write into state_; if a roster is abandoned without Await, wait
  // for them so they cannot outlive their buffers.
  if (state_ != nullptr) {
    for (std::future<void>& future : state_->futures) future.wait();
  }
}

std::vector<AlgoResult> PendingRoster::Await() {
  SJOIN_CHECK_MSG(state_ != nullptr, "Await() called twice or on an empty "
                                     "PendingRoster");
  for (std::future<void>& future : state_->futures) future.get();
  std::vector<AlgoResult> results;
  results.reserve(state_->entries.size());
  for (State::Entry& entry : state_->entries) {
    results.push_back({entry.name, Summarize(entry.counts)});
  }
  state_.reset();
  return results;
}

PendingRoster EnqueueJoinRoster(const JoinWorkload& workload,
                                const RosterOptions& options,
                                ThreadPool& pool) {
  Time warmup = options.warmup >= 0
                    ? options.warmup
                    : static_cast<Time>(4 * options.cache);
  PendingRoster pending;
  pending.state_ = std::make_unique<PendingRoster::State>(
      JoinSimulator::Options{.capacity = options.cache, .warmup = warmup});
  PendingRoster::State& state = *pending.state_;
  state.workload = &workload;

  // Sample all runs up front — serially, with one RNG — so every
  // algorithm, and every thread count, sees identical inputs.
  Rng rng(options.seed);
  state.pairs.reserve(static_cast<std::size_t>(options.runs));
  for (int run = 0; run < options.runs; ++run) {
    state.pairs.push_back(
        SampleStreamPair(*workload.r, *workload.s, options.len, rng));
  }

  auto add = [&](std::string name,
                 PendingRoster::State::PolicyFactory make) {
    state.entries.push_back(
        {std::move(name), std::move(make),
         std::vector<double>(static_cast<std::size_t>(options.runs), 0.0)});
  };
  std::optional<Time> life;
  if (workload.life_window > 0) life = workload.life_window;

  if (options.include_opt) {
    add("OPT-OFFLINE",
        [cache = options.cache](const StreamPair& pair,
                                const StochasticProcess*,
                                const StochasticProcess*) {
          return std::make_unique<OptOfflinePolicy>(pair.r, pair.s, cache);
        });
  }
  if (options.include_flow_expect) {
    add("FLOWEXPECT",
        [lookahead = options.flow_expect_lookahead](
            const StreamPair&, const StochasticProcess* r,
            const StochasticProcess* s) {
          return std::make_unique<FlowExpectPolicy>(
              r, s, FlowExpectPolicy::Options{lookahead});
        });
  }
  add("RAND", [seed = options.seed, life](const StreamPair&,
                                          const StochasticProcess*,
                                          const StochasticProcess*) {
    return std::make_unique<RandomPolicy>(seed + 17, life);
  });
  add("PROB", [life](const StreamPair&, const StochasticProcess*,
                     const StochasticProcess*) {
    return std::make_unique<ProbPolicy>(life);
  });
  if (workload.life_applicable) {
    add("LIFE", [window = workload.life_window](const StreamPair&,
                                                const StochasticProcess*,
                                                const StochasticProcess*) {
      return std::make_unique<LifePolicy>(window);
    });
  }
  HeebJoinPolicy::Options heeb_options;
  heeb_options.mode = workload.heeb_mode;
  heeb_options.alpha = workload.alpha_tracks_cache
                           ? static_cast<double>(options.cache)
                           : workload.heeb_alpha;
  heeb_options.horizon = workload.heeb_horizon;
  add("HEEB", [heeb_options](const StreamPair&, const StochasticProcess* r,
                             const StochasticProcess* s) {
    return std::make_unique<HeebJoinPolicy>(r, s, heeb_options);
  });

  // One job per (algorithm, run); each owns its policy and process clones
  // and writes one pre-allocated slot, so scheduling cannot affect output.
  PendingRoster::State* state_ptr = pending.state_.get();
  state.futures.reserve(state.entries.size() *
                        static_cast<std::size_t>(options.runs));
  for (std::size_t e = 0; e < state.entries.size(); ++e) {
    for (int run = 0; run < options.runs; ++run) {
      state.futures.push_back(pool.Submit([state_ptr, e, run] {
        std::unique_ptr<StochasticProcess> r_clone =
            state_ptr->workload->r->Clone();
        std::unique_ptr<StochasticProcess> s_clone =
            state_ptr->workload->s->Clone();
        PendingRoster::State::Entry& entry = state_ptr->entries[e];
        const StreamPair& pair =
            state_ptr->pairs[static_cast<std::size_t>(run)];
        std::unique_ptr<ReplacementPolicy> policy =
            entry.make(pair, r_clone.get(), s_clone.get());
        entry.counts[static_cast<std::size_t>(run)] = static_cast<double>(
            state_ptr->sim.Run(pair.r, pair.s, *policy).counted_results);
      }));
    }
  }
  return pending;
}

std::vector<AlgoResult> RunJoinRoster(const JoinWorkload& workload,
                                      const RosterOptions& options) {
  ThreadPool pool(options.threads);
  return EnqueueJoinRoster(workload, options, pool).Await();
}

void PrintCsvHeader(const std::string& x_label,
                    const std::vector<AlgoResult>& roster) {
  std::printf("%s", x_label.c_str());
  for (const AlgoResult& result : roster) {
    std::printf(",%s", result.name.c_str());
  }
  std::printf("\n");
}

void PrintCsvRow(double x, const std::vector<AlgoResult>& roster) {
  std::printf("%g", x);
  for (const AlgoResult& result : roster) {
    std::printf(",%.1f", result.summary.mean);
  }
  std::printf("\n");
}

void PrintSummaryBlock(const std::string& title,
                       const std::vector<AlgoResult>& roster) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("%-14s %10s %10s %10s %10s\n", "algorithm", "mean", "stddev",
              "min", "max");
  for (const AlgoResult& result : roster) {
    std::printf("%-14s %10.1f %10.1f %10.1f %10.1f\n", result.name.c_str(),
                result.summary.mean, result.summary.stddev,
                result.summary.min, result.summary.max);
  }
  std::printf("\n");
}

namespace {

int RunSummaryMain(Flags& flags, RosterOptions options,
                   const RosterMainSpec& spec) {
  options.cache = static_cast<std::size_t>(
      flags.GetInt("cache", static_cast<std::int64_t>(spec.default_cache)));
  if (spec.flow_expect_flags) {
    options.include_flow_expect = flags.GetInt("flowexpect", 1) != 0;
    options.flow_expect_lookahead = flags.GetInt("lookahead", 5);
  }
  flags.CheckConsumed();

  std::printf("# %s: average join counts, cache=%zu len=%lld runs=%d\n\n",
              spec.figure_name.c_str(), options.cache,
              static_cast<long long>(options.len), options.runs);
  for (const auto& factory : spec.workloads) {
    JoinWorkload workload = factory();
    auto roster = RunJoinRoster(workload, options);
    PrintSummaryBlock(workload.name, roster);
  }
  return 0;
}

int RunCacheSweepMain(Flags& flags, RosterOptions options,
                      const RosterMainSpec& spec) {
  SJOIN_CHECK_EQ(spec.workloads.size(), 1u);
  std::int64_t max_cache = flags.GetInt("max_cache", 50);
  int threads = static_cast<int>(flags.GetInt("threads", 0));
  flags.CheckConsumed();

  std::vector<std::int64_t> caches;
  for (std::int64_t c : {1, 2, 3, 5, 8, 10, 15, 20, 30, 40, 50}) {
    if (c <= max_cache) caches.push_back(c);
  }
  if (caches.empty()) {
    std::fprintf(stderr, "%s: --max_cache must be >= 1\n",
                 spec.figure_name.c_str());
    return 2;
  }
  // A shared counting window so sizes are comparable (>= 4x every cache).
  options.warmup = 4 * caches.back();

  std::printf("# %s: average join counts vs memory size (len=%lld "
              "runs=%d)\n",
              spec.figure_name.c_str(), static_cast<long long>(options.len),
              options.runs);

  // All (run, policy, sweep-point) jobs share one pool so the whole sweep
  // stays parallel end to end; rows still print in sweep order, and the
  // CSV is bit-identical for every thread count.
  ThreadPool pool(threads);
  struct Point {
    std::int64_t cache;
    JoinWorkload workload;
    PendingRoster pending;
  };
  std::vector<Point> points;
  points.reserve(caches.size());
  for (std::int64_t cache : caches) {
    // Fresh workload per point: WALK tables depend on alpha = cache size.
    points.push_back({cache, spec.workloads.front()(), {}});
  }
  for (Point& point : points) {
    options.cache = static_cast<std::size_t>(point.cache);
    point.pending = EnqueueJoinRoster(point.workload, options, pool);
  }

  bool header_printed = false;
  for (Point& point : points) {
    auto roster = point.pending.Await();
    if (!header_printed) {
      PrintCsvHeader("memory", roster);
      header_printed = true;
    }
    PrintCsvRow(static_cast<double>(point.cache), roster);
  }
  return 0;
}

}  // namespace

int RunRosterMain(int argc, char** argv, const RosterMainSpec& spec) {
  SJOIN_CHECK_GE(spec.workloads.size(), 1u);
  Flags flags(argc, argv);
  RosterOptions options;
  options.len = flags.GetInt("len", spec.default_len);
  options.runs = static_cast<int>(flags.GetInt("runs", spec.default_runs));
  options.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  if (spec.mode == RosterMainSpec::Mode::kSummary) {
    options.threads = static_cast<int>(flags.GetInt("threads", 0));
    return RunSummaryMain(flags, options, spec);
  }
  return RunCacheSweepMain(flags, options, spec);
}

}  // namespace sjoin::bench
