#include "harness/runner.h"

#include <cstdio>
#include <memory>

#include "sjoin/common/rng.h"
#include "sjoin/core/flow_expect_policy.h"
#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/policies/life_policy.h"
#include "sjoin/policies/opt_offline_policy.h"
#include "sjoin/policies/prob_policy.h"
#include "sjoin/policies/random_policy.h"
#include "sjoin/stochastic/stream_sampler.h"

namespace sjoin::bench {

std::vector<AlgoResult> RunJoinRoster(const JoinWorkload& workload,
                                      const RosterOptions& options) {
  // Sample all runs up front so every algorithm sees identical inputs.
  Rng rng(options.seed);
  std::vector<StreamPair> pairs;
  pairs.reserve(static_cast<std::size_t>(options.runs));
  for (int run = 0; run < options.runs; ++run) {
    pairs.push_back(
        SampleStreamPair(*workload.r, *workload.s, options.len, rng));
  }

  Time warmup = options.warmup >= 0
                    ? options.warmup
                    : static_cast<Time>(4 * options.cache);
  JoinSimulator sim({.capacity = options.cache, .warmup = warmup});

  struct Entry {
    std::string name;
    std::vector<double> counts;
  };
  std::vector<Entry> entries;
  auto run_policy = [&](const std::string& name, auto&& make_policy) {
    Entry entry{name, {}};
    entry.counts.reserve(pairs.size());
    for (const StreamPair& pair : pairs) {
      auto policy = make_policy(pair);
      entry.counts.push_back(static_cast<double>(
          sim.Run(pair.r, pair.s, *policy).counted_results));
    }
    entries.push_back(std::move(entry));
  };

  if (options.include_opt) {
    run_policy("OPT-OFFLINE", [&](const StreamPair& pair) {
      return std::make_unique<OptOfflinePolicy>(pair.r, pair.s,
                                                options.cache);
    });
  }
  if (options.include_flow_expect) {
    run_policy("FLOWEXPECT", [&](const StreamPair&) {
      return std::make_unique<FlowExpectPolicy>(
          workload.r.get(), workload.s.get(),
          FlowExpectPolicy::Options{options.flow_expect_lookahead});
    });
  }
  run_policy("RAND", [&](const StreamPair&) {
    std::optional<Time> life;
    if (workload.life_window > 0) life = workload.life_window;
    return std::make_unique<RandomPolicy>(options.seed + 17, life);
  });
  run_policy("PROB", [&](const StreamPair&) {
    std::optional<Time> life;
    if (workload.life_window > 0) life = workload.life_window;
    return std::make_unique<ProbPolicy>(life);
  });
  if (workload.life_applicable) {
    run_policy("LIFE", [&](const StreamPair&) {
      return std::make_unique<LifePolicy>(workload.life_window);
    });
  }
  run_policy("HEEB", [&](const StreamPair&) {
    HeebJoinPolicy::Options heeb_options;
    heeb_options.mode = workload.heeb_mode;
    heeb_options.alpha = workload.alpha_tracks_cache
                             ? static_cast<double>(options.cache)
                             : workload.heeb_alpha;
    heeb_options.horizon = workload.heeb_horizon;
    return std::make_unique<HeebJoinPolicy>(workload.r.get(),
                                            workload.s.get(), heeb_options);
  });

  std::vector<AlgoResult> results;
  results.reserve(entries.size());
  for (Entry& entry : entries) {
    results.push_back({entry.name, Summarize(entry.counts)});
  }
  return results;
}

void PrintCsvHeader(const std::string& x_label,
                    const std::vector<AlgoResult>& roster) {
  std::printf("%s", x_label.c_str());
  for (const AlgoResult& result : roster) {
    std::printf(",%s", result.name.c_str());
  }
  std::printf("\n");
}

void PrintCsvRow(double x, const std::vector<AlgoResult>& roster) {
  std::printf("%g", x);
  for (const AlgoResult& result : roster) {
    std::printf(",%.1f", result.summary.mean);
  }
  std::printf("\n");
}

void PrintSummaryBlock(const std::string& title,
                       const std::vector<AlgoResult>& roster) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("%-14s %10s %10s %10s %10s\n", "algorithm", "mean", "stddev",
              "min", "max");
  for (const AlgoResult& result : roster) {
    std::printf("%-14s %10.1f %10.1f %10.1f %10.1f\n", result.name.c_str(),
                result.summary.mean, result.summary.stddev,
                result.summary.min, result.summary.max);
  }
  std::printf("\n");
}

}  // namespace sjoin::bench
