#include "harness/flags.h"

#include <cstdio>
#include <cstdlib>

namespace sjoin::bench {

Flags::Flags(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "bench";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "%s: expected --name=value, got '%s'\n",
                   program_.c_str(), arg.c_str());
      std::exit(2);
    }
    std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "%s: flag '%s' is missing '=value'\n",
                   program_.c_str(), arg.c_str());
      std::exit(2);
    }
    entries_.push_back({arg.substr(2, eq - 2), arg.substr(eq + 1), false});
  }
}

std::int64_t Flags::GetInt(const std::string& name,
                           std::int64_t default_value) {
  for (Entry& entry : entries_) {
    if (entry.name == name) {
      entry.consumed = true;
      char* end = nullptr;
      std::int64_t value = std::strtoll(entry.value.c_str(), &end, 10);
      if (end == entry.value.c_str() || *end != '\0') {
        std::fprintf(stderr, "%s: --%s=%s is not an integer\n",
                     program_.c_str(), name.c_str(), entry.value.c_str());
        std::exit(2);
      }
      return value;
    }
  }
  return default_value;
}

double Flags::GetDouble(const std::string& name, double default_value) {
  for (Entry& entry : entries_) {
    if (entry.name == name) {
      entry.consumed = true;
      char* end = nullptr;
      double value = std::strtod(entry.value.c_str(), &end);
      if (end == entry.value.c_str() || *end != '\0') {
        std::fprintf(stderr, "%s: --%s=%s is not a number\n",
                     program_.c_str(), name.c_str(), entry.value.c_str());
        std::exit(2);
      }
      return value;
    }
  }
  return default_value;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) {
  for (Entry& entry : entries_) {
    if (entry.name == name) {
      entry.consumed = true;
      return entry.value;
    }
  }
  return default_value;
}

void Flags::CheckConsumed() const {
  bool ok = true;
  for (const Entry& entry : entries_) {
    if (!entry.consumed) {
      std::fprintf(stderr, "%s: unknown flag --%s\n", program_.c_str(),
                   entry.name.c_str());
      ok = false;
    }
  }
  if (!ok) std::exit(2);
}

}  // namespace sjoin::bench
