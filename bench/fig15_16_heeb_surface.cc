// Figures 15-16: the HEEB surface h2(v_x, x_t0) for the REAL AR(1) model —
// the exact (Monte Carlo) surface and its bicubic approximation from 25
// control points (5x5), printed side by side on a grid.
//
// Expected shape: a ridge around the diagonal v ~ x_t0 that leans toward
// the stationary mean (mean reversion), reproduced closely by the
// approximation.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "harness/flags.h"
#include "sjoin/analysis/ar1_fit.h"
#include "sjoin/analysis/melbourne.h"
#include "sjoin/core/model_repo.h"
#include "sjoin/core/precompute.h"
#include "sjoin/stochastic/ar1_process.h"

using namespace sjoin;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 2005));
  double alpha = flags.GetDouble("alpha", 100.0);
  int paths = static_cast<int>(flags.GetInt("paths", 400));
  Value grid_step = flags.GetInt("grid", 20);
  flags.CheckConsumed();

  auto series = SyntheticMelbourneDeciCelsius(3650, seed);
  auto fit = FitAr1(series);
  if (!fit.has_value()) return 1;
  auto [lo_it, hi_it] = std::minmax_element(series.begin(), series.end());
  Value v_min = *lo_it - 20;
  Value v_max = *hi_it + 20;
  Ar1Process model(fit->phi0, fit->phi1, fit->sigma,
                   static_cast<Value>(series.front()));

  Time horizon = static_cast<Time>(4.0 * alpha) + 50;
  // Borrowed from the shared ModelRepo: one build per model key.
  ModelRepo& repo = ModelRepo::Global();
  std::shared_ptr<const HeebSurfaceTable> surface =
      repo.Ar1CachingSurfaceTable(model, alpha, horizon, v_min, v_max, v_min,
                                  v_max, /*x_step=*/10, paths, seed + 7);
  std::shared_ptr<const BicubicSurface> approx = repo.Ar1CachingSurfaceBicubic(
      model, alpha, horizon, v_min, v_max, v_min, v_max, /*x_step=*/10, paths,
      seed + 7, 5, 5);

  std::printf("# Figures 15-16: actual vs bicubic-approximated HEEB "
              "surface (alpha=%g, deci-Celsius domain [%lld, %lld])\n",
              alpha, static_cast<long long>(v_min),
              static_cast<long long>(v_max));
  std::printf("v,x,actual,approx\n");
  double worst = 0.0;
  for (Value v = v_min; v <= v_max; v += grid_step) {
    for (Value x = v_min; x <= v_max; x += grid_step) {
      double actual = surface->At(v, x);
      double approximated =
          approx->At(static_cast<double>(v), static_cast<double>(x));
      worst = std::max(worst, std::fabs(actual - approximated));
      std::printf("%lld,%lld,%.5f,%.5f\n", static_cast<long long>(v),
                  static_cast<long long>(x), actual, approximated);
    }
  }
  std::printf("# max |actual - approx| on printed grid: %.5f\n", worst);
  return 0;
}
