// Figure 6: precomputed h_R curves for the caching problem with a random
// walk reference stream, drift 0 / 2 / 4, steps ~ N(drift, 1).
//
// Prints h_R(v_x - x_t0) for each drift. Expected shape: a symmetric peak
// at offset 0 for zero drift; positive drifts shift preference to the
// right, with secondary bumps near multiples of the drift.

#include <cstdio>

#include "harness/flags.h"
#include "sjoin/core/lifetime_fn.h"
#include "sjoin/core/precompute.h"
#include "sjoin/stochastic/random_walk_process.h"

using namespace sjoin;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  // The paper sets alpha to the cache size (10 in the small-scale runs).
  double alpha = flags.GetDouble("alpha", 10.0);
  Time horizon = flags.GetInt("horizon", 120);
  Value max_offset = flags.GetInt("max_offset", 20);
  flags.CheckConsumed();

  ExpLifetime lifetime(alpha);
  std::vector<double> drifts = {0.0, 2.0, 4.0};
  std::vector<OffsetTable> tables;
  for (double drift : drifts) {
    RandomWalkProcess walk(DiscreteDistribution::DiscretizedNormal(drift,
                                                                   1.0),
                           0);
    tables.push_back(
        PrecomputeWalkCachingHeeb(walk, lifetime, horizon, max_offset));
  }

  std::printf("# Figure 6: h_R(vx - x_t0) for random walk with drift "
              "(alpha=%g, horizon=%lld)\n",
              alpha, static_cast<long long>(horizon));
  std::printf("offset,drift0,drift2,drift4\n");
  for (Value d = -max_offset; d <= max_offset; ++d) {
    std::printf("%lld", static_cast<long long>(d));
    for (const OffsetTable& table : tables) {
      std::printf(",%.6f", table.At(d));
    }
    std::printf("\n");
  }
  return 0;
}
