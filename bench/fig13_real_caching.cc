// Figure 13: the REAL experiment — caching for a temperature reference
// stream against a synthetic energy-consumption relation (one database
// tuple per 0.1 degree Celsius).
//
// Pipeline (Section 6.5): fit AR(1) by conditional MLE on the observed
// series, precompute the HEEB surface h2(v, x_t0) with L_exp(alpha =
// cache size), compress it with a bicubic approximation over 5x5 control
// points, and compare against LFD (offline optimal), RAND, LRU and
// PROB/LFU for memory sizes 10..300.
//
// Expected shape: LFD lowest misses; HEEB leads the online pack, beating
// LRU and LFU by up to ~20% at some sizes; all converge as memory grows.
//
// The Melbourne data set itself is not redistributable; see DESIGN.md §6
// for the calibrated synthetic stand-in.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "harness/flags.h"
#include "sjoin/analysis/ar1_fit.h"
#include "sjoin/analysis/melbourne.h"
#include "sjoin/core/heeb_caching_policy.h"
#include "sjoin/core/model_repo.h"
#include "sjoin/core/precompute.h"
#include "sjoin/engine/cache_simulator.h"
#include "sjoin/policies/lfd_policy.h"
#include "sjoin/policies/lfu_policy.h"
#include "sjoin/policies/lru_policy.h"
#include "sjoin/policies/random_caching_policy.h"
#include "sjoin/stochastic/ar1_process.h"

using namespace sjoin;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  std::int64_t days = flags.GetInt("days", 3650);
  std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 2005));
  int paths = static_cast<int>(flags.GetInt("paths", 250));
  std::int64_t max_memory = flags.GetInt("max_memory", 300);
  int control_points = static_cast<int>(flags.GetInt("control", 5));
  bool exact = flags.GetInt("exact", 0) != 0;
  flags.CheckConsumed();

  auto series =
      SyntheticMelbourneDeciCelsius(static_cast<std::size_t>(days), seed);
  auto fit = FitAr1(series);
  if (!fit.has_value()) {
    std::fprintf(stderr, "AR(1) fit failed\n");
    return 1;
  }
  std::printf("# Figure 13: REAL caching, %lld days\n",
              static_cast<long long>(days));
  std::printf("# fitted AR(1) (deci-Celsius): X_t = %.3f X_t-1 + %.2f + "
              "N(0, %.2f^2)  [Celsius: phi0=%.2f sigma=%.2f]\n",
              fit->phi1, fit->phi0, fit->sigma, fit->phi0 / 10.0,
              fit->sigma / 10.0);

  auto [lo_it, hi_it] = std::minmax_element(series.begin(), series.end());
  Value v_min = *lo_it - 20;
  Value v_max = *hi_it + 20;
  Ar1Process model(fit->phi0, fit->phi1, fit->sigma,
                   static_cast<Value>(series.front()));

  std::vector<std::int64_t> memories;
  for (std::int64_t m : {10, 25, 50, 100, 150, 200, 250, 300}) {
    if (m <= max_memory) memories.push_back(m);
  }

  std::printf("memory,LFD,RAND,LRU,PROB(LFU),HEEB\n");
  for (std::int64_t memory : memories) {
    CacheSimulator sim(
        {.capacity = static_cast<std::size_t>(memory), .warmup = 0});

    LfdCachingPolicy lfd(series);
    RandomCachingPolicy rand(seed + 99);
    LruCachingPolicy lru;
    // "Perfect versions instead of approximations" (Section 6.5): exact
    // frequency/recency bookkeeping, not oracle knowledge of the future.
    LfuCachingPolicy lfu;

    double alpha = static_cast<double>(memory);
    Time horizon = std::min<Time>(4 * memory + 50, 1500);
    // Surface + bicubic borrowed from the shared ModelRepo (one build per
    // distinct (model, alpha, horizon, grid) key).
    ModelRepo& repo = ModelRepo::Global();
    std::shared_ptr<const HeebSurfaceTable> surface =
        repo.Ar1CachingSurfaceTable(model, alpha, horizon, v_min, v_max,
                                    v_min, v_max, /*x_step=*/10, paths,
                                    seed + 7);
    std::shared_ptr<const BicubicSurface> approx =
        repo.Ar1CachingSurfaceBicubic(model, alpha, horizon, v_min, v_max,
                                      v_min, v_max, /*x_step=*/10, paths,
                                      seed + 7, control_points,
                                      control_points);
    HeebCachingPolicy::Options options;
    options.mode = HeebCachingPolicy::Mode::kEvaluator;
    options.alpha = alpha;
    if (exact) {
      options.evaluator = [surface](Value v, Value last) {
        return surface->At(v, last);
      };
    } else {
      options.evaluator = [approx](Value v, Value last) {
        return approx->At(static_cast<double>(v), static_cast<double>(last));
      };
    }
    HeebCachingPolicy heeb(nullptr, options);

    std::printf("%lld,%lld,%lld,%lld,%lld,%lld\n",
                static_cast<long long>(memory),
                static_cast<long long>(sim.Run(series, lfd).misses),
                static_cast<long long>(sim.Run(series, rand).misses),
                static_cast<long long>(sim.Run(series, lru).misses),
                static_cast<long long>(sim.Run(series, lfu).misses),
                static_cast<long long>(sim.Run(series, heeb).misses));
    std::fflush(stdout);
  }
  return 0;
}
