// Figures 17-18: fraction of cache held by stream-0 (R) tuples over time,
// (17) for noise standard-deviation ratios 1:1, 1:2, 1:4 and (18) for R
// lagging S by 1, 2 and 4 steps. Long-run and early-transient views of the
// same memory-allocation behavior as Figure 14.
//
// Expected shape: (17) higher partner variance -> more than half the cache
// goes to R, increasing with the ratio; (18) more lag -> less cache for R,
// decreasing with the lag.

#include <cstdio>
#include <string>
#include <vector>

#include "harness/configs.h"
#include "harness/flags.h"
#include "sjoin/common/rng.h"
#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/stochastic/stream_sampler.h"

using namespace sjoin;
using namespace sjoin::bench;

namespace {

std::vector<double> FractionSeries(const JoinWorkload& workload,
                                   std::size_t cache, Time len,
                                   std::uint64_t seed) {
  HeebJoinPolicy::Options options;
  options.mode = workload.heeb_mode;
  options.alpha = workload.heeb_alpha;
  options.horizon = workload.heeb_horizon;
  HeebJoinPolicy policy(workload.r.get(), workload.s.get(), options);
  Rng rng(seed);
  auto pair = SampleStreamPair(*workload.r, *workload.s, len, rng);
  JoinSimulator sim({.capacity = cache,
                     .warmup = 0,
                     .window = std::nullopt,
                     .track_cache_composition = true});
  return sim.Run(pair.r, pair.s, policy).r_fraction_by_time;
}

void PrintBlock(const char* title,
                const std::vector<std::string>& labels,
                const std::vector<std::vector<double>>& series, Time len,
                Time stride) {
  std::printf("== %s ==\ntime", title);
  for (const std::string& label : labels) {
    std::printf(",%s", label.c_str());
  }
  std::printf("\n");
  for (Time t = stride; t < len; t += stride) {
    std::printf("%lld", static_cast<long long>(t));
    for (const auto& s : series) {
      double sum = 0.0;
      for (Time u = t - stride; u < t; ++u) {
        sum += s[static_cast<std::size_t>(u)];
      }
      std::printf(",%.3f", sum / static_cast<double>(stride));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Time len = flags.GetInt("len", 2000);
  std::size_t cache = static_cast<std::size_t>(flags.GetInt("cache", 10));
  Time stride = flags.GetInt("stride", 100);
  std::uint64_t seed = static_cast<std::uint64_t>(flags.GetInt("seed", 3));
  flags.CheckConsumed();

  std::printf("# Figures 17-18: fraction of cache held by stream 0 (R) "
              "under HEEB\n\n");
  {
    std::vector<std::string> labels = {"sd_1_1", "sd_1_2", "sd_1_4"};
    std::vector<std::vector<double>> series;
    for (double scale : {1.0, 2.0, 4.0}) {
      JoinWorkload workload = MakeTower(0.0, scale, /*equal_streams=*/true);
      series.push_back(FractionSeries(workload, cache, len, seed));
    }
    PrintBlock("Figure 17: variance ratios", labels, series, len, stride);
  }
  {
    std::vector<std::string> labels = {"lag_1", "lag_2", "lag_4"};
    std::vector<std::vector<double>> series;
    for (double lag : {1.0, 2.0, 4.0}) {
      JoinWorkload workload = MakeTower(lag, 1.0, /*equal_streams=*/true);
      series.push_back(FractionSeries(workload, cache, len, seed));
    }
    PrintBlock("Figure 18: stream lags", labels, series, len, stride);
  }
  return 0;
}
