// Figure 7: the S-stream noise pdfs of the TOWER / ROOF / FLOOR
// configurations (bounded normal sd 2, bounded normal sd 5, bounded
// uniform; all on [-15, 15]).

#include <cstdio>

#include "harness/configs.h"
#include "sjoin/stochastic/discrete_distribution.h"

using namespace sjoin;

int main() {
  auto tower = DiscreteDistribution::TruncatedDiscretizedNormal(
      0.0, 2.0, -bench::kSNoiseBound, bench::kSNoiseBound);
  auto roof = DiscreteDistribution::TruncatedDiscretizedNormal(
      0.0, 5.0, -bench::kSNoiseBound, bench::kSNoiseBound);
  auto floor = DiscreteDistribution::BoundedUniform(-bench::kSNoiseBound,
                                                    bench::kSNoiseBound);

  std::printf("# Figure 7: TOWER/ROOF/FLOOR noise pdfs (S stream)\n");
  std::printf("value,TOWER,ROOF,FLOOR\n");
  for (Value v = -bench::kSNoiseBound; v <= bench::kSNoiseBound; ++v) {
    std::printf("%lld,%.6f,%.6f,%.6f\n", static_cast<long long>(v),
                tower.Prob(v), roof.Prob(v), floor.Prob(v));
  }
  return 0;
}
