// Figure 8: all algorithms across the synthetic configurations
// (TOWER, ROOF, FLOOR, WALK) with cache size 10.
//
// Expected shape (Section 6.3): OPT-offline wins everywhere; HEEB beats
// RAND, PROB and LIFE consistently and FlowExpect in most cases; PROB
// suffers most under trends; WALK counts are much lower and noisier.
//
// Paper scale: --runs=50 --len=5000 (FlowExpect gets slow; the paper kept
// the scale small for the same reason).

#include <cstdio>

#include "harness/flags.h"
#include "harness/runner.h"

using namespace sjoin;
using namespace sjoin::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  RosterOptions options;
  options.cache = static_cast<std::size_t>(flags.GetInt("cache", 10));
  options.len = flags.GetInt("len", 1000);
  options.runs = static_cast<int>(flags.GetInt("runs", 5));
  options.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  options.include_flow_expect = flags.GetInt("flowexpect", 1) != 0;
  options.flow_expect_lookahead = flags.GetInt("lookahead", 5);
  options.threads = static_cast<int>(flags.GetInt("threads", 0));
  flags.CheckConsumed();

  std::printf("# Figure 8: average join counts, cache=%zu len=%lld "
              "runs=%d\n\n",
              options.cache, static_cast<long long>(options.len),
              options.runs);

  JoinWorkload workloads[] = {MakeTower(), MakeRoof(), MakeFloor(),
                              MakeWalk()};
  for (const JoinWorkload& workload : workloads) {
    auto roster = RunJoinRoster(workload, options);
    PrintSummaryBlock(workload.name, roster);
  }
  return 0;
}
