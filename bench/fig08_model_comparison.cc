// Figure 8: all algorithms across the synthetic configurations
// (TOWER, ROOF, FLOOR, WALK) with cache size 10.
//
// Expected shape (Section 6.3): OPT-offline wins everywhere; HEEB beats
// RAND, PROB and LIFE consistently and FlowExpect in most cases; PROB
// suffers most under trends; WALK counts are much lower and noisier.
//
// Paper scale: --runs=50 --len=5000 (FlowExpect gets slow; the paper kept
// the scale small for the same reason).

#include "harness/runner.h"

int main(int argc, char** argv) {
  using sjoin::bench::RosterMainSpec;
  RosterMainSpec spec;
  spec.figure_name = "Figure 8";
  spec.mode = RosterMainSpec::Mode::kSummary;
  spec.workloads = {[] { return sjoin::bench::MakeTower(); },
                    [] { return sjoin::bench::MakeRoof(); },
                    [] { return sjoin::bench::MakeFloor(); },
                    [] { return sjoin::bench::MakeWalk(); }};
  spec.default_len = 1000;
  spec.default_runs = 5;
  spec.flow_expect_flags = true;
  return sjoin::bench::RunRosterMain(argc, argv, spec);
}
