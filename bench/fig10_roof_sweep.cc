// Figure 10: ROOF — average join counts vs memory size (1..50).
//
// Expected shape: every algorithm improves with memory and (except WALK)
// converges to OPT-offline; HEEB converges fastest.
// Paper scale: --runs=50 --len=5000.

#include "harness/sweep.h"

int main(int argc, char** argv) {
  return sjoin::bench::RunCacheSweepMain(
      argc, argv, [] { return sjoin::bench::MakeRoof(); }, "Figure 10 (ROOF)");
}
