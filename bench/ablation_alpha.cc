// Ablation: sensitivity of HEEB to the L_exp parameter alpha, and the
// adaptive-alpha variant (the paper's "adjust alpha adaptively" future
// work). Alpha is swept as multiples of the Section 5 tuning rule
// (average-lifetime estimate (wR + wS)/2); the adaptive policy starts from
// a deliberately bad guess.
//
// Expected shape: a broad optimum around the tuned value — in TOWER the
// ECBs are so close to totally ordered (see ablation_dominance) that the
// ranking barely depends on alpha at all; ROOF degrades at small alpha,
// while FLOOR (flat uniform windows) actually prefers shorter effective
// lifetimes. The adaptive variant stays near the tuned value despite a
// bad starting guess.

#include <cstdio>
#include <memory>

#include "harness/configs.h"
#include "harness/flags.h"
#include "sjoin/core/adaptive_heeb_policy.h"
#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/stochastic/stream_sampler.h"

using namespace sjoin;
using namespace sjoin::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Time len = flags.GetInt("len", 1500);
  int runs = static_cast<int>(flags.GetInt("runs", 3));
  std::uint64_t seed = static_cast<std::uint64_t>(flags.GetInt("seed", 13));
  flags.CheckConsumed();

  std::printf("# Ablation: HEEB alpha sensitivity (results per run)\n");
  std::printf("config,x0.1,x0.25,x1,x4,x10,adaptive\n");
  JoinWorkload workloads[] = {MakeTower(), MakeRoof(), MakeFloor()};
  for (JoinWorkload& workload : workloads) {
    Rng rng(seed);
    std::vector<StreamPair> pairs;
    for (int run = 0; run < runs; ++run) {
      pairs.push_back(SampleStreamPair(*workload.r, *workload.s, len, rng));
    }
    JoinSimulator sim({.capacity = 10, .warmup = 40});

    std::printf("%s", workload.name.c_str());
    for (double multiplier : {0.1, 0.25, 1.0, 4.0, 10.0}) {
      HeebJoinPolicy::Options options;
      options.mode = HeebJoinPolicy::Mode::kDirect;
      options.alpha = workload.heeb_alpha * multiplier;
      options.horizon = 200;
      std::int64_t total = 0;
      for (const StreamPair& pair : pairs) {
        HeebJoinPolicy policy(workload.r.get(), workload.s.get(), options);
        total += sim.Run(pair.r, pair.s, policy).counted_results;
      }
      std::printf(",%.1f", static_cast<double>(total) / runs);
    }
    {
      AdaptiveHeebJoinPolicy::Options options;
      options.initial_lifetime = 200.0;  // Bad starting guess.
      options.horizon = 200;
      std::int64_t total = 0;
      for (const StreamPair& pair : pairs) {
        AdaptiveHeebJoinPolicy policy(workload.r.get(), workload.s.get(),
                                      options);
        total += sim.Run(pair.r, pair.s, policy).counted_results;
      }
      std::printf(",%.1f", static_cast<double>(total) / runs);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
