// Microbenchmarks for the min-cost flow substrate: one FlowExpect decision
// as a function of look-ahead l and cache size k (the paper quotes
// O((k+l)^3 l^3 log((k+l)l)) per step for Goldberg's solver; successive
// shortest paths is far cheaper on these small slice graphs), and one
// OPT-offline schedule computation as a function of stream length.

#include <benchmark/benchmark.h>

#include <memory>

#include "sjoin/core/flow_expect_policy.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/policies/opt_offline_policy.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/stream_sampler.h"

namespace sjoin {
namespace {

LinearTrendProcess MakeR() {
  return LinearTrendProcess(
      1.0, -1.0, DiscreteDistribution::BoundedUniform(-10, 10));
}
LinearTrendProcess MakeS() {
  return LinearTrendProcess(1.0, 0.0,
                            DiscreteDistribution::BoundedUniform(-15, 15));
}

void BM_FlowExpectDecision(benchmark::State& state) {
  Time lookahead = state.range(0);
  std::size_t cache = static_cast<std::size_t>(state.range(1));
  LinearTrendProcess r = MakeR();
  LinearTrendProcess s = MakeS();
  Rng rng(1);
  Time len = 80;
  auto pair = SampleStreamPair(r, s, len, rng);
  FlowExpectPolicy policy(&r, &s, {.lookahead = lookahead});
  JoinSimulator sim({.capacity = cache, .warmup = 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.Run(pair.r, pair.s, policy).total_results);
  }
  // Decisions per second.
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_FlowExpectDecision)
    ->Args({3, 10})
    ->Args({5, 10})
    ->Args({10, 10})
    ->Args({5, 30});

void BM_OptOfflineSchedule(benchmark::State& state) {
  Time len = state.range(0);
  LinearTrendProcess r = MakeR();
  LinearTrendProcess s = MakeS();
  Rng rng(2);
  auto pair = SampleStreamPair(r, s, len, rng);
  for (auto _ : state) {
    OptOfflinePolicy policy(pair.r, pair.s, 10);
    benchmark::DoNotOptimize(policy.optimal_benefit());
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_OptOfflineSchedule)->Arg(200)->Arg(1000)->Arg(3000);

}  // namespace
}  // namespace sjoin

BENCHMARK_MAIN();
