// The paper's REAL scenario end to end: a daily temperature stream
// references a database relation storing projected energy consumption per
// 0.1 degree Celsius. We fit an AR(1) model to the observed series,
// precompute the HEEB surface, compress it with bicubic interpolation,
// and drive a cache of database tuples — comparing against LRU, LFU and
// the offline optimum LFD.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "sjoin/analysis/ar1_fit.h"
#include "sjoin/analysis/melbourne.h"
#include "sjoin/core/heeb_caching_policy.h"
#include "sjoin/core/model_repo.h"
#include "sjoin/core/precompute.h"
#include "sjoin/engine/cache_simulator.h"
#include "sjoin/policies/lfd_policy.h"
#include "sjoin/policies/lfu_policy.h"
#include "sjoin/policies/lru_policy.h"
#include "sjoin/stochastic/ar1_process.h"

using namespace sjoin;

int main() {
  // Ten years of synthetic Melbourne-like daily temperatures, 0.1 C units.
  auto temps = SyntheticMelbourneDeciCelsius(3650, 2005);

  // Offline analysis: conditional-MLE AR(1) fit on the observed series.
  auto fit = FitAr1(temps);
  if (!fit.has_value()) {
    std::fprintf(stderr, "series too degenerate to fit\n");
    return 1;
  }
  std::printf("fitted model: X_t = %.2f X_(t-1) + %.1f + N(0, %.1f^2) "
              "(deci-Celsius)\n",
              fit->phi1, fit->phi0, fit->sigma);

  // The HEEB surface h2(v, x_t0) for L_exp(alpha = cache size) and its
  // compact bicubic approximation (5x5 control points) come from the
  // shared ModelRepo: computed once per model key, borrowed const.
  constexpr std::size_t kCacheSize = 120;
  Ar1Process model(fit->phi0, fit->phi1, fit->sigma, temps.front());
  auto [lo, hi] = std::minmax_element(temps.begin(), temps.end());
  std::shared_ptr<const BicubicSurface> compact =
      ModelRepo::Global().Ar1CachingSurfaceBicubic(
          model, static_cast<double>(kCacheSize), /*horizon=*/520, *lo - 20,
          *hi + 20, *lo - 20, *hi + 20, /*x_step=*/10, /*paths=*/400,
          /*seed=*/9, 5, 5);

  HeebCachingPolicy::Options options;
  options.mode = HeebCachingPolicy::Mode::kEvaluator;
  options.alpha = static_cast<double>(kCacheSize);
  options.evaluator = [compact](Value v, Value last) {
    return compact->At(static_cast<double>(v), static_cast<double>(last));
  };
  HeebCachingPolicy heeb(nullptr, options);

  LruCachingPolicy lru;
  LfuCachingPolicy lfu;
  LfdCachingPolicy lfd(temps);

  CacheSimulator sim({.capacity = kCacheSize, .warmup = 0});
  std::printf("cache of %zu database tuples over %zu references:\n",
              kCacheSize, temps.size());
  std::printf("  LFD  (offline optimum): %lld misses\n",
              static_cast<long long>(sim.Run(temps, lfd).misses));
  std::printf("  HEEB (AR(1) surface)  : %lld misses\n",
              static_cast<long long>(sim.Run(temps, heeb).misses));
  std::printf("  LRU                   : %lld misses\n",
              static_cast<long long>(sim.Run(temps, lru).misses));
  std::printf("  LFU                   : %lld misses\n",
              static_cast<long long>(sim.Run(temps, lfu).misses));
  return 0;
}
