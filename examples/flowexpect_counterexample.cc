// Section 3.4's hand-built scenario showing that FlowExpect — which
// optimizes over all *predetermined* sequences of replacement decisions —
// is suboptimal: a strategy that adapts to the value observed at t0+1
// earns strictly more in expectation.
//
//   time   | new R tuple              | new S tuple
//   t0     | -                        | 2
//   t0+1   | 2                        | 3 w.p. 0.5 (- otherwise)
//   t0+2   | 3                        | 1 w.p. 0.8 (- otherwise)
//   t0+3   | 2 w.p. 0.5 (-)          | 1 w.p. 0.8 (- otherwise)
//
// Cache holds one tuple; it currently holds R(1).

#include <cstdio>

#include "sjoin/core/flow_expect_policy.h"
#include "sjoin/stochastic/scripted_process.h"

using namespace sjoin;

int main() {
  // "-" placeholders use values (10..13, -1000) that never match anything.
  std::vector<DiscreteDistribution> r_script;
  r_script.push_back(DiscreteDistribution::PointMass(-1000));
  r_script.push_back(DiscreteDistribution::PointMass(2));
  r_script.push_back(DiscreteDistribution::PointMass(3));
  r_script.push_back(DiscreteDistribution::FromMasses(
      2, {0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.5}));  // {2:.5, 10:.5}
  ScriptedProcess r(r_script);

  std::vector<DiscreteDistribution> s_script;
  s_script.push_back(DiscreteDistribution::PointMass(2));
  s_script.push_back(DiscreteDistribution::FromMasses(
      3, {0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.5}));  // {3:.5, 11:.5}
  s_script.push_back(DiscreteDistribution::FromMasses(
      1, {0.8, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.2}));
  s_script.push_back(DiscreteDistribution::FromMasses(
      1,
      {0.8, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.2}));
  ScriptedProcess s(s_script);

  StreamHistory empty;
  double p_s1_3 = s.Predict(empty, 1).Prob(3);
  double p_s2_1 = s.Predict(empty, 2).Prob(1);
  double p_s3_1 = s.Predict(empty, 3).Prob(1);
  double p_r3_2 = r.Predict(empty, 3).Prob(2);

  std::printf("best predetermined sequences considered by FlowExpect:\n");
  std::printf("  keep R(1) forever          : %.2f\n", p_s2_1 + p_s3_1);
  std::printf("  take S(2), keep it         : %.2f\n", 1.0 + p_r3_2);
  std::printf("  take S(2), switch at t0+1  : %.2f\n", 1.0 + p_s1_3 * 1.0);
  double adaptive = p_s1_3 * (1.0 + 1.0) + (1.0 - p_s1_3) * (1.0 + p_r3_2);
  std::printf("adaptive strategy (switch only if S(3) shows up): %.2f\n\n",
              adaptive);

  FlowExpectPolicy policy(&r, &s, {.lookahead = 3});
  std::vector<Tuple> cached = {{100, StreamSide::kR, 1, -1}};
  std::vector<Tuple> arrivals = {{0, StreamSide::kR, -1000, 0},
                                 {1, StreamSide::kS, 2, 0}};
  StreamHistory history_r({-1000});
  StreamHistory history_s({2});
  PolicyContext ctx;
  ctx.now = 0;
  ctx.capacity = 1;
  ctx.cached = &cached;
  ctx.arrivals = &arrivals;
  ctx.history_r = &history_r;
  ctx.history_s = &history_s;
  auto retained = policy.SelectRetained(ctx);

  std::printf("FlowExpect's decision at t0: keep %s\n",
              retained[0] == 100 ? "the cached R(1)" : "the new S(2)");
  std::printf("  -> it picks the 1.60 sequence, but the adaptive strategy "
              "is worth 1.75: the min-cost flow search space cannot\n"
              "     express decisions conditioned on future observations "
              "(Section 3.4).\n");
  return 0;
}
