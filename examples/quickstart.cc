// Quickstart: join two trending sensor streams with a model-driven HEEB
// cache in ~40 lines of public API.
//
// Two sensors emit readings whose ids drift upward over time (think
// sequence numbers with jitter). We join them on the reading id with a
// small cache and compare HEEB against random eviction and the offline
// optimum.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/policies/opt_offline_policy.h"
#include "sjoin/policies/random_policy.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/stream_sampler.h"

using namespace sjoin;

int main(int argc, char** argv) {
  // Optional: --shards=N spreads each step's probe + scoring work across
  // N value-domain shards, and --threads=M runs those shards on a
  // persistent team of M workers (default 1 = inline; 0 = one per core,
  // up to N). --adaptive_shards additionally lets a deterministic
  // rebalancer move the value->shard ranges to follow skew. The results
  // are exactly the same — sharding, threading and rebalancing are
  // bit-identical by construction — so these flags only change speed.
  int shards = 1;
  int threads = 1;
  bool adaptive_shards = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
      if (shards < 1) shards = 1;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
      if (threads < 0) threads = 0;
    } else if (std::strcmp(argv[i], "--adaptive_shards") == 0) {
      adaptive_shards = true;
    }
  }

  // 1. Describe the streams statistically: ids drift one per tick; sensor
  //    R lags one tick behind S; bounded normal jitter.
  LinearTrendProcess r(1.0, -1.0, DiscreteDistribution::TruncatedDiscretizedNormal(
                                      0.0, 2.0, -10, 10));
  LinearTrendProcess s(1.0, 0.0, DiscreteDistribution::TruncatedDiscretizedNormal(
                                     0.0, 3.0, -15, 15));

  // 2. Sample a realization (in production these arrive from the network).
  Rng rng(42);
  StreamPair pair = SampleStreamPair(r, s, /*len=*/2000, rng);

  // 3. Build a HEEB policy from the stream models. Alpha encodes the
  //    expected lifetime of a cached tuple.
  HeebJoinPolicy::Options options;
  options.mode = HeebJoinPolicy::Mode::kTimeIncremental;
  options.alpha = ExpLifetime::AlphaForAverageLifetime(12.5);
  HeebJoinPolicy heeb(&r, &s, options);

  // 4. Run the join with a 10-tuple cache.
  JoinSimulator sim({.capacity = 10,
                     .warmup = 40,
                     .shards = shards,
                     .threads = threads,
                     .adaptive_shards = adaptive_shards});
  auto heeb_result = sim.Run(pair.r, pair.s, heeb);

  // Baselines: random eviction and the clairvoyant optimum.
  RandomPolicy rand(7, /*assumed_lifetime=*/Time{25});
  auto rand_result = sim.Run(pair.r, pair.s, rand);
  OptOfflinePolicy opt(pair.r, pair.s, 10);
  auto opt_result = sim.Run(pair.r, pair.s, opt);

  std::printf("join results from a 10-tuple cache over %zu ticks:\n",
              pair.r.size());
  std::printf("  HEEB        : %lld\n",
              static_cast<long long>(heeb_result.counted_results));
  std::printf("  RAND        : %lld\n",
              static_cast<long long>(rand_result.counted_results));
  std::printf("  OPT-offline : %lld (upper bound, knows the future)\n",
              static_cast<long long>(opt_result.counted_results));
  return 0;
}
