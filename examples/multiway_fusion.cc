// Multi-way stream fusion (the Appendix C generalization): three sensor
// feeds whose readings drift together; a correlation query joins feed 1
// with both neighbors (a chain join 0-1-2) from one shared cache.
// HEEB sums the expected benefit over each tuple's partner streams.

#include <cstdio>

#include "sjoin/multi/multi_heeb_policy.h"
#include "sjoin/multi/multi_join_simulator.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/stream_sampler.h"

using namespace sjoin;

int main() {
  auto noise = [](double sd, Value bound) {
    return DiscreteDistribution::TruncatedDiscretizedNormal(0.0, sd, -bound,
                                                            bound);
  };
  LinearTrendProcess feed0(1.0, 0.0, noise(2.0, 10));
  LinearTrendProcess feed1(1.0, -1.0, noise(1.5, 10));
  LinearTrendProcess feed2(1.0, -2.0, noise(3.0, 12));

  Rng rng(31);
  std::vector<std::vector<Value>> streams = {
      SampleRealization(feed0, 3000, rng),
      SampleRealization(feed1, 3000, rng),
      SampleRealization(feed2, 3000, rng)};

  // Chain join: feed1 correlates with both neighbors.
  MultiJoinSimulator sim(3, {{0, 1}, {1, 2}}, {.capacity = 12,
                                               .warmup = 100});

  MultiHeebPolicy heeb({&feed0, &feed1, &feed2}, &sim,
                       {.alpha = 10.0, .horizon = 120});
  MultiRandomPolicy rand(9);

  auto heeb_result = sim.Run(streams, heeb);
  auto rand_result = sim.Run(streams, rand);
  std::printf("chain join 0-1-2 over 3000 ticks, shared 12-slot cache:\n");
  std::printf("  MULTI-HEEB: %lld results\n",
              static_cast<long long>(heeb_result.counted_results));
  std::printf("  MULTI-RAND: %lld results\n",
              static_cast<long long>(rand_result.counted_results));
  std::printf("  (feed 1 joins both neighbors, so its tuples carry twice "
              "the expected benefit\n   and HEEB keeps proportionally more "
              "of them.)\n");
  return 0;
}
