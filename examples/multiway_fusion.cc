// Multi-way stream fusion (the Appendix C generalization): N sensor
// feeds whose readings drift together; a correlation query joins them
// along a chain (0-1-2-...) or a star (hub 0) from one shared cache.
// HEEB sums the expected benefit over each tuple's partner streams.
//
// Flags:
//   --streams=N      number of feeds (default 3, minimum 2)
//   --edges=chain    chain topology 0-1, 1-2, ... (default)
//   --edges=star     star topology with feed 0 as the hub
//   --planner=1      attach the runtime probe planner (DESIGN.md §2f):
//                    probe order re-planned from observed selectivities,
//                    empty partners skipped, repeated (partner, value)
//                    probes served from a probe-result cache, plus the
//                    policy's score memo. Results are bit-identical by
//                    construction — only the speed changes — so CI diffs
//                    the planner-on stdout against the planner-off one.
//                    Plan statistics go to stderr to keep stdout clean.
//   --shards=N       request value-domain sharding. Multi-way policies are
//                    serial-only today, so the engine falls back to the
//                    serial executor and says why on stderr
//                    (telemetry.fallback_reason); stdout is unchanged.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "sjoin/multi/multi_heeb_policy.h"
#include "sjoin/multi/multi_join_simulator.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/stream_sampler.h"

using namespace sjoin;

int main(int argc, char** argv) {
  int num_streams = 3;
  bool star = false;
  bool planner = false;
  int shards = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--streams=", 10) == 0) {
      num_streams = std::atoi(argv[i] + 10);
      if (num_streams < 2) num_streams = 2;
    } else if (std::strcmp(argv[i], "--edges=star") == 0) {
      star = true;
    } else if (std::strcmp(argv[i], "--edges=chain") == 0) {
      star = false;
    } else if (std::strncmp(argv[i], "--planner=", 10) == 0) {
      planner = std::atoi(argv[i] + 10) != 0;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
      if (shards < 1) shards = 1;
    }
  }

  auto noise = [](double sd, Value bound) {
    return DiscreteDistribution::TruncatedDiscretizedNormal(0.0, sd, -bound,
                                                            bound);
  };
  // Feeds drift one unit per tick with staggered offsets, so every joined
  // pair overlaps for the whole run.
  std::vector<std::unique_ptr<LinearTrendProcess>> feeds;
  std::vector<const StochasticProcess*> feed_ptrs;
  Rng rng(31);
  std::vector<std::vector<Value>> streams;
  for (int s = 0; s < num_streams; ++s) {
    feeds.push_back(std::make_unique<LinearTrendProcess>(
        1.0, -0.5 * s, noise(2.0, 10)));
    feed_ptrs.push_back(feeds.back().get());
    streams.push_back(SampleRealization(*feeds.back(), 3000, rng));
  }

  std::vector<std::pair<int, int>> edges;
  for (int s = 1; s < num_streams; ++s) {
    edges.push_back(star ? std::make_pair(0, s) : std::make_pair(s - 1, s));
  }

  MultiJoinSimulator sim(num_streams, edges,
                         {.capacity = 12, .warmup = 100, .shards = shards,
                          .planner = planner});

  MultiHeebPolicy heeb(feed_ptrs, &sim,
                       {.alpha = 10.0, .horizon = 120,
                        .use_score_cache = planner});
  MultiRandomPolicy rand(9);

  auto heeb_result = sim.Run(streams, heeb);
  auto rand_result = sim.Run(streams, rand);
  // Results are identical either way, so the serial fallback of a
  // --shards=N run is silent on stdout (which CI diffs); report it on
  // stderr where a misconfigured benchmark will actually see it.
  if (heeb_result.telemetry.fallback_reason != nullptr) {
    std::fprintf(stderr, "note: sharded run fell back to serial: %s\n",
                 heeb_result.telemetry.fallback_reason);
  }
  std::printf("%s join over %d feeds, 3000 ticks, shared 12-slot cache:\n",
              star ? "star" : "chain", num_streams);
  std::printf("  MULTI-HEEB: %lld results\n",
              static_cast<long long>(heeb_result.counted_results));
  std::printf("  MULTI-RAND: %lld results\n",
              static_cast<long long>(rand_result.counted_results));
  if (star) {
    std::printf("  (feed 0 joins every spoke, so its tuples carry %d times "
                "the expected benefit\n   and HEEB keeps proportionally "
                "more of them.)\n",
                num_streams - 1);
  } else {
    std::printf("  (interior feeds join both neighbors, so their tuples "
                "carry twice the expected\n   benefit and HEEB keeps "
                "proportionally more of them.)\n");
  }
  if (planner) {
    const auto& t = heeb_result.telemetry;
    std::fprintf(stderr,
                 "planner: %lld probes, %.1f%% skipped, %.1f%% served from "
                 "the probe cache, %lld replans\n",
                 static_cast<long long>(t.probes),
                 t.probes > 0 ? 100.0 * static_cast<double>(t.probe_skips) /
                                    static_cast<double>(t.probes)
                              : 0.0,
                 t.probes > 0
                     ? 100.0 * static_cast<double>(t.probe_cache_hits) /
                           static_cast<double>(t.probes)
                     : 0.0,
                 static_cast<long long>(t.plan_replans));
  }
  return 0;
}
