// Closing the loop: when the stream models are NOT given, learn them from
// an observed prefix and drive HEEB with the fitted models.
//
// The paper assumes "known or observed statistical properties"; this
// example does the observing: it fits stationary / trend / walk / AR(1)
// candidates on the first quarter of each stream, selects by holdout
// predictive likelihood, and compares HEEB-with-learned-models against
// HEEB-with-true-models and RAND on the remainder.

#include <cstdio>

#include "sjoin/analysis/model_fit.h"
#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/policies/random_policy.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/stream_sampler.h"

using namespace sjoin;

int main() {
  // Ground truth: two drifting streams (unknown to the learner).
  LinearTrendProcess true_r(1.0, -1.0,
                            DiscreteDistribution::TruncatedDiscretizedNormal(
                                0.0, 2.0, -10, 10));
  LinearTrendProcess true_s(1.0, 0.0,
                            DiscreteDistribution::TruncatedDiscretizedNormal(
                                0.0, 3.0, -15, 15));
  Rng rng(77);
  constexpr Time kPrefix = 1000;
  constexpr Time kTotal = 4000;
  auto pair = SampleStreamPair(true_r, true_s, kTotal, rng);

  // Learn a model per stream from the prefix.
  std::vector<Value> r_prefix(pair.r.begin(), pair.r.begin() + kPrefix);
  std::vector<Value> s_prefix(pair.s.begin(), pair.s.begin() + kPrefix);
  auto r_model = SelectModel(r_prefix);
  auto s_model = SelectModel(s_prefix);
  if (!r_model.has_value() || !s_model.has_value()) {
    std::fprintf(stderr, "model selection failed\n");
    return 1;
  }
  std::printf("learned models: R -> %s, S -> %s\n",
              r_model->family.c_str(), s_model->family.c_str());

  JoinSimulator sim({.capacity = 10, .warmup = kPrefix});
  HeebJoinPolicy::Options options;
  options.mode = HeebJoinPolicy::Mode::kDirect;
  options.alpha = ExpLifetime::AlphaForAverageLifetime(12.5);
  options.horizon = 150;

  HeebJoinPolicy learned(r_model->process.get(), s_model->process.get(),
                         options);
  HeebJoinPolicy oracle(&true_r, &true_s, options);
  RandomPolicy rand(5, Time{25});

  std::printf("results after the learning prefix (cache 10, %lld steps "
              "counted):\n",
              static_cast<long long>(kTotal - kPrefix));
  std::printf("  HEEB, learned models: %lld\n",
              static_cast<long long>(
                  sim.Run(pair.r, pair.s, learned).counted_results));
  std::printf("  HEEB, true models   : %lld\n",
              static_cast<long long>(
                  sim.Run(pair.r, pair.s, oracle).counted_results));
  std::printf("  RAND                : %lld\n",
              static_cast<long long>(
                  sim.Run(pair.r, pair.s, rand).counted_results));
  return 0;
}
