// Sliding-window join load shedding (Section 7): tuples participate in
// the join only within a window of w time steps; the cache is smaller
// than the window, so something must be shed. Windowed HEEB weighs
// short-term and long-term benefit; PROB is myopic and LIFE pessimistic.
//
// Includes the paper's x1/x2/x3 example: p=0.50 with 1 step of life left,
// p=0.49 with 50 steps, p=0.01 with 51 steps — HEEB ranks x2 > x1 > x3.

#include <cstdio>

#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/policies/life_policy.h"
#include "sjoin/policies/prob_policy.h"
#include "sjoin/stochastic/stationary_process.h"
#include "sjoin/stochastic/stream_sampler.h"

using namespace sjoin;

int main() {
  // --- The x1/x2/x3 ranking ----------------------------------------------
  std::vector<double> masses(100, 0.0);
  masses[1] = 0.50;   // x1's value.
  masses[2] = 0.49;   // x2's value.
  masses[3] = 0.01;   // x3's value.
  StationaryProcess r(DiscreteDistribution::FromMasses(0, masses));
  StationaryProcess s(DiscreteDistribution::FromMasses(0, masses));

  HeebJoinPolicy::Options options;
  options.alpha = 10.0;
  options.horizon = 200;
  HeebJoinPolicy heeb(&r, &s, options);

  constexpr Time kWindow = 51;
  constexpr Time kNow = 50;
  StreamHistory history_r(std::vector<Value>(kNow + 1, 99));
  StreamHistory history_s(std::vector<Value>(kNow + 1, 99));
  std::vector<Tuple> cached = {{0, StreamSide::kR, 1, 0},
                               {1, StreamSide::kR, 2, 49}};
  std::vector<Tuple> arrivals = {{2, StreamSide::kR, 3, 50},
                                 {3, StreamSide::kS, 99, 50}};
  PolicyContext ctx;
  ctx.now = kNow;
  ctx.capacity = 2;
  ctx.cached = &cached;
  ctx.arrivals = &arrivals;
  ctx.history_r = &history_r;
  ctx.history_s = &history_s;
  ctx.window = kWindow;

  auto retained = heeb.SelectRetained(ctx);
  std::printf("Section 7 example (window %lld): candidates\n"
              "  x1: p=0.50, remaining life 1\n"
              "  x2: p=0.49, remaining life 50\n"
              "  x3: p=0.01, remaining life 51\n",
              static_cast<long long>(kWindow));
  std::printf("windowed HEEB keeps (best first): ");
  for (TupleId id : retained) {
    const char* label = id == 0 ? "x1" : id == 1 ? "x2" : id == 2 ? "x3"
                                                                  : "?";
    std::printf("%s ", label);
  }
  std::printf("\n  -> PROB would keep x1 first; LIFE would keep x3; HEEB "
              "ranks x2 > x1 > x3.\n\n");

  // --- End-to-end windowed shedding ---------------------------------------
  // A zipf-ish stationary workload, window 60, cache 15.
  std::vector<double> zipf(50);
  for (std::size_t i = 0; i < zipf.size(); ++i) {
    zipf[i] = 1.0 / static_cast<double>(i + 1);
  }
  StationaryProcess zr(DiscreteDistribution::FromMasses(0, zipf));
  StationaryProcess zs(DiscreteDistribution::FromMasses(0, zipf));
  Rng rng(23);
  auto pair = SampleStreamPair(zr, zs, 4000, rng);

  JoinSimulator sim({.capacity = 15, .warmup = 200, .window = Time{60}});
  HeebJoinPolicy::Options wopt;
  wopt.alpha = 15.0;  // ~ expected residence of a cached tuple.
  wopt.horizon = 90;
  HeebJoinPolicy windowed_heeb(&zr, &zs, wopt);
  ProbPolicy prob;
  LifePolicy life(60);

  std::printf("windowed join (w=60, cache 15, zipf values):\n");
  std::printf("  HEEB: %lld results\n",
              static_cast<long long>(
                  sim.Run(pair.r, pair.s, windowed_heeb).counted_results));
  std::printf("  PROB: %lld results\n",
              static_cast<long long>(
                  sim.Run(pair.r, pair.s, prob).counted_results));
  std::printf("  LIFE: %lld results\n",
              static_cast<long long>(
                  sim.Run(pair.r, pair.s, life).counted_results));
  return 0;
}
