// Correlating two network monitoring feeds: packet records from two taps
// carry sequence numbers that advance at line rate, but one tap lags and
// the two have different jitter. The example shows (1) dominance tests
// between candidate tuples' expected cumulative benefits and (2) how HEEB
// splits the cache between the two feeds — less memory to the laggard.

#include <cstdio>

#include "sjoin/core/dominance.h"
#include "sjoin/core/ecb.h"
#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/stream_sampler.h"

using namespace sjoin;

int main() {
  // Tap R lags three ticks behind tap S; S is jittier.
  LinearTrendProcess r(1.0, -3.0, DiscreteDistribution::TruncatedDiscretizedNormal(
                                      0.0, 2.0, -8, 8));
  LinearTrendProcess s(1.0, 0.0, DiscreteDistribution::TruncatedDiscretizedNormal(
                                     0.0, 4.0, -12, 12));

  // --- Dominance analysis at time t0 = 1000 -------------------------------
  constexpr Time kNow = 1000;
  constexpr Time kHorizon = 40;
  StreamHistory empty;
  // Candidate R tuples (joining future S arrivals) at several offsets
  // around the current S trend position (= 1000).
  struct Candidate {
    const char* label;
    Value value;
  };
  Candidate candidates[] = {
      {"R seq 985 (far behind)", 985},
      {"R seq 999 (just behind)", 999},
      {"R seq 1008 (well ahead)", 1008},
  };
  TabulatedEcb far = MakeJoiningEcb(s, empty, kNow, 985, kHorizon);
  TabulatedEcb near = MakeJoiningEcb(s, empty, kNow, 999, kHorizon);
  TabulatedEcb ahead = MakeJoiningEcb(s, empty, kNow, 1008, kHorizon);

  auto describe = [](Dominance d) {
    switch (d) {
      case Dominance::kEqual: return "equal";
      case Dominance::kDominates: return "dominates";
      case Dominance::kStrictlyDominates: return "strictly dominates";
      case Dominance::kDominatedBy: return "is dominated by";
      case Dominance::kStrictlyDominatedBy: return "is strictly dominated by";
      case Dominance::kIncomparable: return "is incomparable with";
    }
    return "?";
  };
  std::printf("ECB dominance between candidate tuples at t=%lld:\n",
              static_cast<long long>(kNow));
  std::printf("  '%s' %s '%s'\n", candidates[1].label,
              describe(CompareEcb(near, far, kHorizon)), candidates[0].label);
  std::printf("  '%s' %s '%s'\n", candidates[1].label,
              describe(CompareEcb(near, ahead, kHorizon)),
              candidates[2].label);
  std::printf("  -> comparable pairs have provably optimal evictions "
              "(Theorem 3); incomparable ones need HEEB.\n\n");

  // --- Memory allocation under HEEB ---------------------------------------
  HeebJoinPolicy::Options options;
  options.mode = HeebJoinPolicy::Mode::kTimeIncremental;
  options.alpha = ExpLifetime::AlphaForAverageLifetime(10.0);
  HeebJoinPolicy heeb(&r, &s, options);

  Rng rng(17);
  auto pair = SampleStreamPair(r, s, 3000, rng);
  JoinSimulator sim({.capacity = 12,
                     .warmup = 100,
                     .window = std::nullopt,
                     .track_cache_composition = true});
  auto result = sim.Run(pair.r, pair.s, heeb);

  double fraction = 0.0;
  std::size_t samples = 0;
  for (std::size_t t = 200; t < result.r_fraction_by_time.size(); ++t) {
    fraction += result.r_fraction_by_time[t];
    ++samples;
  }
  fraction /= static_cast<double>(samples);
  std::printf("join results (12-slot cache): %lld\n",
              static_cast<long long>(result.counted_results));
  std::printf("average fraction of cache given to the lagging tap R: "
              "%.2f\n",
              fraction);
  std::printf("  -> the laggard's tuples mostly missed S's window already, "
              "so HEEB spends the memory on S.\n");
  return 0;
}
