// The session-multiplexed join service (DESIGN.md §2g): many concurrent
// two-stream joins, each its own session with its own capacity, policy
// and fairness weight, multiplexed over a small pool of worker engines by
// the serve::SessionScheduler.
//
// The driver plays an open-loop load generator: every tick it offers a
// burst of arrivals to each live session and runs one weighted-round-
// robin round; sessions finish staggered, then the scheduler drains.
// Each session's final result is then checked against a solo batch run
// of the same realization — the scheduler guarantees they are
// bit-identical no matter how sessions interleave or how many worker
// threads execute them, which is why this binary's stdout is a CI golden
// (diffed across --threads values).
//
// Also on display: admission control (opening one session past
// --max-sessions is rejected with a reason) and backpressure (a
// throttled session with a tiny queue sheds offers at the high
// watermark; shed arrivals simply never happened, so its solo reference
// run replays exactly the accepted prefix).
//
// Flags:
//   --sessions=N   concurrent sessions (default 6)
//   --threads=M    worker engines (default 2); results never depend on M
//   --quota=Q      WRR steps per weight unit per round (default 16)
//
// All timing-dependent output is suppressed; stdout is a pure function
// of the flags above minus --threads.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/engine/stream_engine.h"
#include "sjoin/policies/prob_policy.h"
#include "sjoin/policies/random_policy.h"
#include "sjoin/serve/session_scheduler.h"

using namespace sjoin;

namespace {

std::vector<Value> SampleValues(Time len, Value domain, Rng& rng) {
  std::vector<Value> out;
  out.reserve(static_cast<std::size_t>(len));
  for (Time t = 0; t < len; ++t) {
    out.push_back(rng.UniformInt(0, domain - 1));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int num_sessions = 6;
  int threads = 2;
  Time quota = 16;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sessions=", 11) == 0) {
      num_sessions = std::atoi(argv[i] + 11);
      if (num_sessions < 1) num_sessions = 1;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
      if (threads < 1) threads = 1;
    } else if (std::strncmp(argv[i], "--quota=", 8) == 0) {
      quota = std::atoi(argv[i] + 8);
      if (quota < 1) quota = 1;
    }
  }

  // Session s: its own stream realization (length staggered so sessions
  // finish at different times), its own capacity, alternating policy
  // family, and weight 1 or 3 (every third session is "premium").
  struct SessionPlan {
    std::vector<std::vector<Value>> streams;
    std::size_t capacity = 0;
    int weight = 1;
  };
  Rng rng(2005);
  std::vector<SessionPlan> plans;
  std::vector<ProbPolicy> prob_policies(
      static_cast<std::size_t>(num_sessions));
  std::vector<RandomPolicy> random_policies;
  random_policies.reserve(static_cast<std::size_t>(num_sessions));
  for (int s = 0; s < num_sessions; ++s) {
    random_policies.emplace_back(static_cast<std::uint64_t>(40 + s),
                                 std::nullopt);
    SessionPlan plan;
    const Time len = 400 + 70 * (s % 5);
    plan.streams = {SampleValues(len, 12, rng), SampleValues(len, 12, rng)};
    plan.capacity = static_cast<std::size_t>(6 + 4 * (s % 4));
    plan.weight = s % 3 == 0 ? 3 : 1;
    plans.push_back(std::move(plan));
  }

  serve::SessionScheduler::Options options;
  options.max_sessions = static_cast<std::size_t>(num_sessions);
  options.queue_capacity = 256;
  options.quota_unit = quota;
  options.threads = threads;
  serve::SessionScheduler scheduler(StreamTopology::Binary(), options);

  auto policy_for = [&](int s) -> EnginePolicy* {
    static std::deque<BinaryPolicyAdapter> adapters;  // Stable addresses.
    if (s % 2 == 0) {
      adapters.emplace_back(&prob_policies[static_cast<std::size_t>(s)]);
    } else {
      adapters.emplace_back(&random_policies[static_cast<std::size_t>(s)]);
    }
    return &adapters.back();
  };

  std::vector<serve::SessionId> ids;
  for (int s = 0; s < num_sessions; ++s) {
    serve::SessionConfig config;
    config.engine = {.capacity = plans[static_cast<std::size_t>(s)].capacity,
                     .warmup = 50};
    config.policy = policy_for(s);
    config.weight = plans[static_cast<std::size_t>(s)].weight;
    serve::Admission admission = scheduler.Open(config);
    if (!admission.ok()) {
      std::fprintf(stderr, "unexpected reject: %s\n",
                   admission.reject_reason);
      return 1;
    }
    ids.push_back(admission.id);
  }

  // Admission control: the table is full now.
  {
    ProbPolicy extra;
    BinaryPolicyAdapter extra_adapter(&extra);
    serve::SessionConfig config;
    config.engine = {.capacity = 8};
    config.policy = &extra_adapter;
    serve::Admission admission = scheduler.Open(config);
    std::printf("admission past max_sessions: %s\n",
                admission.ok() ? "ACCEPTED (bug)" : admission.reject_reason);
  }

  // Open-loop load: per tick, 24 steps offered to each unfinished
  // session, one round executed. Sessions exhaust their realizations at
  // different ticks and Finish.
  std::vector<Time> offered(static_cast<std::size_t>(num_sessions), 0);
  std::vector<bool> finished(static_cast<std::size_t>(num_sessions), false);
  bool offering = true;
  while (offering) {
    offering = false;
    for (int s = 0; s < num_sessions; ++s) {
      const std::size_t idx = static_cast<std::size_t>(s);
      if (finished[idx]) continue;
      const std::vector<std::vector<Value>>& streams = plans[idx].streams;
      const Time len = static_cast<Time>(streams[0].size());
      const Time take = std::min<Time>(24, len - offered[idx]);
      if (take > 0) {
        std::vector<std::vector<Value>> burst;
        std::vector<const std::vector<Value>*> burst_ptrs;
        for (const std::vector<Value>& stream : streams) {
          burst.emplace_back(
              stream.begin() + static_cast<std::ptrdiff_t>(offered[idx]),
              stream.begin() +
                  static_cast<std::ptrdiff_t>(offered[idx] + take));
        }
        for (const std::vector<Value>& b : burst) burst_ptrs.push_back(&b);
        const std::size_t accepted = scheduler.Offer(ids[idx], burst_ptrs);
        offered[idx] += static_cast<Time>(accepted);
      }
      if (offered[idx] >= len) {
        scheduler.Finish(ids[idx]);
        finished[idx] = true;
      } else {
        offering = true;
      }
    }
    scheduler.RunRound();
  }
  scheduler.Drain();

  // Every session's served result must equal a solo batch run of the
  // same realization under a fresh policy of the same family and seed.
  // `threads` deliberately not printed: CI diffs this stdout across
  // --threads values to pin thread-count independence.
  std::printf("%d sessions served:\n", num_sessions);
  bool all_match = true;
  for (int s = 0; s < num_sessions; ++s) {
    const std::size_t idx = static_cast<std::size_t>(s);
    const SessionPlan& plan = plans[idx];
    StreamEngine solo_engine(StreamTopology::Binary(),
                             {.capacity = plan.capacity, .warmup = 50});
    EngineRunResult solo;
    if (s % 2 == 0) {
      ProbPolicy solo_policy;
      BinaryPolicyAdapter solo_adapter(&solo_policy);
      solo = solo_engine.Run({&plan.streams[0], &plan.streams[1]},
                             solo_adapter);
    } else {
      RandomPolicy solo_policy(static_cast<std::uint64_t>(40 + s),
                               std::nullopt);
      BinaryPolicyAdapter solo_adapter(&solo_policy);
      solo = solo_engine.Run({&plan.streams[0], &plan.streams[1]},
                             solo_adapter);
    }
    const EngineRunResult& served = scheduler.result(ids[idx]);
    const bool match = served.total_results == solo.total_results &&
                       served.counted_results == solo.counted_results;
    all_match = all_match && match;
    std::printf(
        "  session %d (%s, k=%zu, w=%d, %zu steps): served %lld/%lld, "
        "solo %lld/%lld %s\n",
        s, s % 2 == 0 ? "PROB" : "RAND", plan.capacity, plan.weight,
        plan.streams[0].size(),
        static_cast<long long>(served.total_results),
        static_cast<long long>(served.counted_results),
        static_cast<long long>(solo.total_results),
        static_cast<long long>(solo.counted_results),
        match ? "[identical]" : "[MISMATCH]");
  }

  const serve::SchedulerStats& stats = scheduler.stats();
  std::printf("admitted %lld, rejected %lld, closed %lld\n",
              static_cast<long long>(stats.sessions_admitted),
              static_cast<long long>(stats.sessions_rejected),
              static_cast<long long>(stats.sessions_closed));
  std::printf("steps: offered %lld, executed %lld, rounds %lld\n",
              static_cast<long long>(stats.steps_offered),
              static_cast<long long>(stats.steps_executed),
              static_cast<long long>(stats.rounds));

  // Backpressure: a throttled scheduler whose one session has a 32-step
  // queue and a 16-step high watermark. The load loop above would pour
  // 24-step bursts in without stepping; here every second burst lands
  // past the watermark and sheds, and the session's executed stream is
  // the accepted prefix — still bit-identical to a solo run of exactly
  // that prefix.
  {
    serve::SessionScheduler::Options throttled_options;
    throttled_options.max_sessions = 1;
    throttled_options.queue_capacity = 32;
    throttled_options.high_watermark = 16;
    throttled_options.quota_unit = 8;
    throttled_options.threads = threads;
    serve::SessionScheduler throttled(StreamTopology::Binary(),
                                      throttled_options);
    ProbPolicy policy;
    BinaryPolicyAdapter adapter(&policy);
    serve::SessionConfig config;
    config.engine = {.capacity = 10, .warmup = 0};
    config.policy = &adapter;
    serve::Admission admission = throttled.Open(config);
    Rng burst_rng(77);
    std::vector<Value> accepted_r, accepted_s;
    for (int burst = 0; burst < 20; ++burst) {
      std::vector<Value> r = SampleValues(24, 10, burst_rng);
      std::vector<Value> s = SampleValues(24, 10, burst_rng);
      const std::size_t accepted = throttled.Offer(admission.id, {&r, &s});
      accepted_r.insert(accepted_r.end(), r.begin(),
                        r.begin() + static_cast<std::ptrdiff_t>(accepted));
      accepted_s.insert(accepted_s.end(), s.begin(),
                        s.begin() + static_cast<std::ptrdiff_t>(accepted));
      throttled.RunRound();
    }
    throttled.Finish(admission.id);
    throttled.Drain();

    ProbPolicy solo_policy;
    BinaryPolicyAdapter solo_adapter(&solo_policy);
    StreamEngine solo_engine(StreamTopology::Binary(),
                             {.capacity = 10, .warmup = 0});
    EngineRunResult solo =
        solo_engine.Run({&accepted_r, &accepted_s}, solo_adapter);
    const serve::SchedulerStats& tstats = throttled.stats();
    const EngineRunResult& served = throttled.result(admission.id);
    std::printf(
        "backpressure: %lld steps accepted, %lld shed at the watermark; "
        "served %lld results, solo replay of the accepted prefix %lld %s\n",
        static_cast<long long>(tstats.steps_offered),
        static_cast<long long>(tstats.steps_shed),
        static_cast<long long>(served.total_results),
        static_cast<long long>(solo.total_results),
        served.total_results == solo.total_results ? "[identical]"
                                                   : "[MISMATCH]");
    all_match = all_match && served.total_results == solo.total_results;
  }

  return all_match ? 0 : 1;
}
