#include "sjoin/multi/multi_baseline_policies.h"

#include <algorithm>

#include "sjoin/common/check.h"
#include "sjoin/engine/ranked_select.h"
#include "sjoin/engine/stream_tuple.h"

namespace sjoin {
namespace {

/// Folds every history's unseen suffix into per-stream value counts.
/// Histories advance in lockstep (one arrival per stream per step), so one
/// shared consumed cursor covers all of them.
void Fold(const MultiPolicyContext& ctx,
          std::vector<std::unordered_map<Value, std::int64_t>>* counts,
          Time* consumed) {
  const Time seen = static_cast<Time>((*ctx.histories)[0].size());
  while (*consumed < seen) {
    for (std::size_t s = 0; s < counts->size(); ++s) {
      ++(*counts)[s][(*ctx.histories)[s].at(*consumed)];
    }
    ++*consumed;
  }
}

/// Σ over partner streams of the observed relative frequency of `value`,
/// each partner's term routed through a subtotal so a ScoreMemo serves it
/// back bit-identically.
double PartnerFrequencySum(
    const MultiJoinSimulator& simulator,
    const std::vector<std::unordered_map<Value, std::int64_t>>& counts,
    Time consumed, const MultiTuple& tuple, ScoreMemo* memo) {
  double sum = 0.0;
  for (int partner : simulator.PartnersOf(tuple.stream)) {
    double subtotal = 0.0;
    if (memo == nullptr ||
        !memo->Lookup(partner, tuple.value, /*max_dt=*/0, &subtotal)) {
      const auto& partner_counts =
          counts[static_cast<std::size_t>(partner)];
      auto it = partner_counts.find(tuple.value);
      std::int64_t count = it == partner_counts.end() ? 0 : it->second;
      subtotal = consumed == 0 ? 0.0
                               : static_cast<double>(count) /
                                     static_cast<double>(consumed);
      if (memo != nullptr) {
        memo->Store(partner, tuple.value, /*max_dt=*/0, subtotal);
      }
    }
    sum += subtotal;
  }
  return sum;
}

}  // namespace

MultiProbPolicy::MultiProbPolicy(const MultiJoinSimulator* simulator,
                                 Options options)
    : simulator_(simulator), options_(options) {
  SJOIN_CHECK(simulator != nullptr);
}

void MultiProbPolicy::Reset() {
  counts_.assign(static_cast<std::size_t>(simulator_->num_streams()), {});
  consumed_ = 0;
  memo_.Reset(simulator_->num_streams());
}

std::vector<TupleId> MultiProbPolicy::SelectRetained(
    const MultiPolicyContext& ctx) {
  Fold(ctx, &counts_, &consumed_);
  ScoreMemo* memo = options_.use_score_cache ? &memo_ : nullptr;
  if (memo != nullptr) memo->BeginStep();

  auto score = [&](const MultiTuple& tuple) {
    Time age = ctx.now - tuple.arrival;
    bool expired = (options_.assumed_lifetime.has_value() &&
                    age > *options_.assumed_lifetime) ||
                   !InWindow(tuple, ctx.now, ctx.window);
    if (expired) return -1.0;
    return PartnerFrequencySum(*simulator_, counts_, consumed_, tuple, memo);
  };

  std::vector<RankedTuple> ranked;
  ranked.reserve(ctx.cached->size() + ctx.arrivals->size());
  for (const MultiTuple& tuple : *ctx.cached) {
    ranked.push_back({score(tuple), tuple.arrival, tuple.id});
  }
  for (const MultiTuple& tuple : *ctx.arrivals) {
    ranked.push_back({score(tuple), tuple.arrival, tuple.id});
  }
  return KeepBestRanked(std::move(ranked), ctx.capacity);
}

MultiLifePolicy::MultiLifePolicy(const MultiJoinSimulator* simulator,
                                 Options options)
    : simulator_(simulator), options_(options) {
  SJOIN_CHECK(simulator != nullptr);
  SJOIN_CHECK_GE(options_.lifetime, 1);
}

void MultiLifePolicy::Reset() {
  counts_.assign(static_cast<std::size_t>(simulator_->num_streams()), {});
  consumed_ = 0;
  memo_.Reset(simulator_->num_streams());
}

std::vector<TupleId> MultiLifePolicy::SelectRetained(
    const MultiPolicyContext& ctx) {
  Fold(ctx, &counts_, &consumed_);
  ScoreMemo* memo = options_.use_score_cache ? &memo_ : nullptr;
  if (memo != nullptr) memo->BeginStep();

  auto score = [&](const MultiTuple& tuple) {
    Time effective_lifetime = options_.lifetime;
    if (ctx.window.has_value()) {
      effective_lifetime = std::min(effective_lifetime, *ctx.window);
    }
    Time remaining = effective_lifetime - (ctx.now - tuple.arrival);
    if (remaining <= 0) return -1.0;
    double prob =
        PartnerFrequencySum(*simulator_, counts_, consumed_, tuple, memo);
    return prob * static_cast<double>(remaining);
  };

  std::vector<RankedTuple> ranked;
  ranked.reserve(ctx.cached->size() + ctx.arrivals->size());
  for (const MultiTuple& tuple : *ctx.cached) {
    ranked.push_back({score(tuple), tuple.arrival, tuple.id});
  }
  for (const MultiTuple& tuple : *ctx.arrivals) {
    ranked.push_back({score(tuple), tuple.arrival, tuple.id});
  }
  return KeepBestRanked(std::move(ranked), ctx.capacity);
}

}  // namespace sjoin
