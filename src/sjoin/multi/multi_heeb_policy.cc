#include "sjoin/multi/multi_heeb_policy.h"

#include <algorithm>

#include "sjoin/common/check.h"

namespace sjoin {
namespace {

struct Ranked {
  double score;
  Time arrival;
  TupleId id;
};

std::vector<TupleId> KeepBest(std::vector<Ranked> ranked,
                              std::size_t capacity) {
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a,
                                             const Ranked& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.arrival != b.arrival) return a.arrival > b.arrival;
    return a.id > b.id;
  });
  std::size_t keep = std::min(capacity, ranked.size());
  std::vector<TupleId> retained;
  retained.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) retained.push_back(ranked[i].id);
  return retained;
}

}  // namespace

MultiHeebPolicy::MultiHeebPolicy(
    const std::vector<const StochasticProcess*>& processes,
    const MultiJoinSimulator* simulator, Options options)
    : processes_(processes),
      simulator_(simulator),
      options_(options),
      lifetime_(options.alpha) {
  SJOIN_CHECK(simulator != nullptr);
  SJOIN_CHECK_EQ(static_cast<int>(processes_.size()),
                 simulator_->num_streams());
  for (const StochasticProcess* process : processes_) {
    SJOIN_CHECK(process != nullptr);
  }
  SJOIN_CHECK_GE(options_.horizon, 1);
}

std::vector<TupleId> MultiHeebPolicy::SelectRetained(
    const MultiPolicyContext& ctx) {
  int n = simulator_->num_streams();
  // Predictive pmfs per stream for the current step, rebuilt in place.
  predictions_.resize(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    auto& preds = predictions_[static_cast<std::size_t>(s)];
    preds.resize(static_cast<std::size_t>(options_.horizon));
    const StreamHistory& history =
        (*ctx.histories)[static_cast<std::size_t>(s)];
    for (Time dt = 1; dt <= options_.horizon; ++dt) {
      processes_[static_cast<std::size_t>(s)]->PredictInto(
          history, ctx.now + dt,
          &preds[static_cast<std::size_t>(dt - 1)]);
    }
  }

  auto score = [&](const MultiTuple& tuple) {
    Time max_dt = options_.horizon;
    if (ctx.window.has_value()) {
      max_dt = std::min(max_dt, tuple.arrival + *ctx.window - ctx.now);
    }
    double h = 0.0;
    // Appendix C: sum the binary HEEB over all partner streams.
    for (int partner : simulator_->PartnersOf(tuple.stream)) {
      const auto& preds = predictions_[static_cast<std::size_t>(partner)];
      for (Time dt = 1; dt <= max_dt; ++dt) {
        h += preds[static_cast<std::size_t>(dt - 1)].Prob(tuple.value) *
             lifetime_.At(dt);
      }
    }
    return h;
  };

  std::vector<Ranked> ranked;
  ranked.reserve(ctx.cached->size() + ctx.arrivals->size());
  for (const MultiTuple& tuple : *ctx.cached) {
    ranked.push_back({score(tuple), tuple.arrival, tuple.id});
  }
  for (const MultiTuple& tuple : *ctx.arrivals) {
    ranked.push_back({score(tuple), tuple.arrival, tuple.id});
  }
  return KeepBest(std::move(ranked), ctx.capacity);
}

std::vector<TupleId> MultiRandomPolicy::SelectRetained(
    const MultiPolicyContext& ctx) {
  std::vector<Ranked> ranked;
  ranked.reserve(ctx.cached->size() + ctx.arrivals->size());
  for (const MultiTuple& tuple : *ctx.cached) {
    ranked.push_back({rng_.UniformReal(), tuple.arrival, tuple.id});
  }
  for (const MultiTuple& tuple : *ctx.arrivals) {
    ranked.push_back({rng_.UniformReal(), tuple.arrival, tuple.id});
  }
  return KeepBest(std::move(ranked), ctx.capacity);
}

}  // namespace sjoin
