#include "sjoin/multi/multi_heeb_policy.h"

#include <algorithm>

#include "sjoin/common/check.h"
#include "sjoin/engine/ranked_select.h"

namespace sjoin {

MultiHeebPolicy::MultiHeebPolicy(
    const std::vector<const StochasticProcess*>& processes,
    const MultiJoinSimulator* simulator, Options options)
    : processes_(processes),
      simulator_(simulator),
      options_(options),
      lifetime_(options.alpha) {
  SJOIN_CHECK(simulator != nullptr);
  SJOIN_CHECK_EQ(static_cast<int>(processes_.size()),
                 simulator_->num_streams());
  for (const StochasticProcess* process : processes_) {
    SJOIN_CHECK(process != nullptr);
  }
  SJOIN_CHECK_GE(options_.horizon, 1);
}

void MultiHeebPolicy::Reset() {
  memo_.Reset(simulator_->num_streams());
}

std::vector<TupleId> MultiHeebPolicy::SelectRetained(
    const MultiPolicyContext& ctx) {
  // Predictive pmfs per stream for the current step, rebuilt in place.
  RebuildPredictions(processes_, *ctx.histories, ctx.now, options_.horizon,
                     &predictions_);
  ScoreMemo* memo = options_.use_score_cache ? &memo_ : nullptr;
  if (memo != nullptr) memo->BeginStep();

  auto score = [&](const MultiTuple& tuple) {
    Time max_dt = options_.horizon;
    if (ctx.window.has_value()) {
      max_dt = std::min(max_dt, tuple.arrival + *ctx.window - ctx.now);
    }
    double h = 0.0;
    // Appendix C: sum the binary HEEB over all partner streams. Each
    // partner's inner sum goes through a subtotal so the memoized and
    // from-scratch paths round identically.
    for (int partner : simulator_->PartnersOf(tuple.stream)) {
      double subtotal = 0.0;
      if (memo == nullptr ||
          !memo->Lookup(partner, tuple.value, max_dt, &subtotal)) {
        const auto& preds = predictions_[static_cast<std::size_t>(partner)];
        for (Time dt = 1; dt <= max_dt; ++dt) {
          subtotal +=
              preds[static_cast<std::size_t>(dt - 1)].Prob(tuple.value) *
              lifetime_.At(dt);
        }
        if (memo != nullptr) {
          memo->Store(partner, tuple.value, max_dt, subtotal);
        }
      }
      h += subtotal;
    }
    return h;
  };

  std::vector<RankedTuple> ranked;
  ranked.reserve(ctx.cached->size() + ctx.arrivals->size());
  for (const MultiTuple& tuple : *ctx.cached) {
    ranked.push_back({score(tuple), tuple.arrival, tuple.id});
  }
  for (const MultiTuple& tuple : *ctx.arrivals) {
    ranked.push_back({score(tuple), tuple.arrival, tuple.id});
  }
  return KeepBestRanked(std::move(ranked), ctx.capacity);
}

std::vector<TupleId> MultiRandomPolicy::SelectRetained(
    const MultiPolicyContext& ctx) {
  std::vector<RankedTuple> ranked;
  ranked.reserve(ctx.cached->size() + ctx.arrivals->size());
  for (const MultiTuple& tuple : *ctx.cached) {
    ranked.push_back({rng_.UniformReal(), tuple.arrival, tuple.id});
  }
  for (const MultiTuple& tuple : *ctx.arrivals) {
    ranked.push_back({rng_.UniformReal(), tuple.arrival, tuple.id});
  }
  return KeepBestRanked(std::move(ranked), ctx.capacity);
}

}  // namespace sjoin
