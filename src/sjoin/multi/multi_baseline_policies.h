#ifndef SJOIN_MULTI_MULTI_BASELINE_POLICIES_H_
#define SJOIN_MULTI_MULTI_BASELINE_POLICIES_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "sjoin/engine/score_memo.h"
#include "sjoin/multi/multi_join_simulator.h"

/// \file
/// Frequency-heuristic baselines for the multi-join problem, generalizing
/// the binary PROB and LIFE policies (policies/prob_policy.h,
/// policies/life_policy.h) the same way Appendix C generalizes HEEB: a
/// candidate's match probability is the sum over its partner streams of
/// the observed relative frequency of its value on that partner.
///
/// Like MultiHeebPolicy, scoring goes through per-partner subtotals so the
/// per-(partner, value) frequency can be served from a ScoreMemo with
/// bit-identical scores (Options::use_score_cache).

namespace sjoin {

/// PROB for N streams: score = Σ_{p ∈ partners} freq_p(v); tuples past an
/// assumed lifetime or outside the window score -1.
class MultiProbPolicy final : public MultiReplacementPolicy {
 public:
  struct Options {
    /// Tuples older than this score -1 (in addition to window expiry).
    std::optional<Time> assumed_lifetime;
    /// Memoize per-(partner, value) frequency subtotals per step.
    bool use_score_cache = false;
  };

  /// `simulator` supplies the join graph; not owned.
  explicit MultiProbPolicy(const MultiJoinSimulator* simulator,
                           Options options);

  void Reset() override;
  std::vector<TupleId> SelectRetained(const MultiPolicyContext& ctx) override;
  const char* name() const override { return "MULTI-PROB"; }

  const ScoreMemo::Stats& score_cache_stats() const { return memo_.stats(); }

 private:
  double MatchSum(const MultiTuple& tuple, ScoreMemo* memo);
  void FoldHistories(const MultiPolicyContext& ctx);

  const MultiJoinSimulator* simulator_;
  Options options_;
  /// Observed value counts per stream; consumed_ values folded from every
  /// history (streams advance in lockstep, one arrival per step).
  std::vector<std::unordered_map<Value, std::int64_t>> counts_;
  Time consumed_ = 0;
  ScoreMemo memo_;
};

/// LIFE for N streams: score = (Σ_{p ∈ partners} freq_p(v)) * remaining
/// lifetime, remaining = min(lifetime, window) - age, expired -> -1.
class MultiLifePolicy final : public MultiReplacementPolicy {
 public:
  struct Options {
    /// Assumed total lifetime of a tuple, in steps.
    Time lifetime = 100;
    bool use_score_cache = false;
  };

  explicit MultiLifePolicy(const MultiJoinSimulator* simulator,
                           Options options);

  void Reset() override;
  std::vector<TupleId> SelectRetained(const MultiPolicyContext& ctx) override;
  const char* name() const override { return "MULTI-LIFE"; }

  const ScoreMemo::Stats& score_cache_stats() const { return memo_.stats(); }

 private:
  double MatchSum(const MultiTuple& tuple, ScoreMemo* memo);
  void FoldHistories(const MultiPolicyContext& ctx);

  const MultiJoinSimulator* simulator_;
  Options options_;
  std::vector<std::unordered_map<Value, std::int64_t>> counts_;
  Time consumed_ = 0;
  ScoreMemo memo_;
};

}  // namespace sjoin

#endif  // SJOIN_MULTI_MULTI_BASELINE_POLICIES_H_
