#include "sjoin/multi/multi_opt_offline_policy.h"

#include <cmath>
#include <unordered_map>

#include "sjoin/common/check.h"
#include "sjoin/flow/flow_graph.h"
#include "sjoin/flow/min_cost_flow.h"

namespace sjoin {
namespace {

struct TupleChain {
  TupleId id = 0;
  Time arrival = 0;
  NodeId entry_from = -1;
  std::int32_t entry_arc = -1;
  std::vector<NodeId> step_from;
  std::vector<std::int32_t> chain_arcs;
};

}  // namespace

MultiOptOfflinePolicy::MultiOptOfflinePolicy(
    const MultiJoinSimulator* simulator,
    const std::vector<std::vector<Value>>& streams, std::size_t capacity) {
  SJOIN_CHECK(simulator != nullptr);
  SJOIN_CHECK_GE(capacity, 1u);
  int num_streams = simulator->num_streams();
  SJOIN_CHECK_EQ(static_cast<int>(streams.size()), num_streams);
  Time len = static_cast<Time>(streams[0].size());
  schedule_.assign(static_cast<std::size_t>(len), {});
  if (len == 0) return;

  FlowGraph graph;
  NodeId time_first = graph.AddNodes(static_cast<int>(len) + 1);
  auto time_node = [time_first](Time t) {
    return time_first + static_cast<NodeId>(t);
  };
  for (Time t = 0; t < len; ++t) {
    graph.AddArc(time_node(t), time_node(t + 1),
                 static_cast<std::int64_t>(capacity), 0.0);
  }

  std::vector<TupleChain> chains;
  for (int stream = 0; stream < num_streams; ++stream) {
    const std::vector<int>& partners = simulator->PartnersOf(stream);
    for (Time arrival = 0; arrival < len; ++arrival) {
      Value value =
          streams[static_cast<std::size_t>(stream)][static_cast<std::size_t>(
              arrival)];
      // Matches at u count one per matching partner stream.
      std::vector<std::int64_t> matches_at(static_cast<std::size_t>(len),
                                           0);
      Time last_match = -1;
      for (Time u = arrival + 1; u < len; ++u) {
        std::int64_t count = 0;
        for (int partner : partners) {
          if (streams[static_cast<std::size_t>(partner)]
                     [static_cast<std::size_t>(u)] == value) {
            ++count;
          }
        }
        if (count > 0) {
          matches_at[static_cast<std::size_t>(u)] = count;
          last_match = u;
        }
      }
      if (last_match < 0) continue;

      TupleChain chain;
      chain.id = MultiTupleIdAt(num_streams, stream, arrival);
      chain.arrival = arrival;
      for (Time t = arrival; t <= last_match - 1; ++t) {
        chain.step_from.push_back(graph.AddNode());
      }
      chain.entry_from = time_node(arrival);
      chain.entry_arc =
          graph.AddArc(chain.entry_from, chain.step_from.front(), 1, 0.0);
      for (Time t = arrival; t <= last_match - 1; ++t) {
        std::size_t index = static_cast<std::size_t>(t - arrival);
        NodeId node = chain.step_from[index];
        double cost = -static_cast<double>(
            matches_at[static_cast<std::size_t>(t + 1)]);
        graph.AddArc(node, time_node(t + 1), 1, cost);
        if (t + 1 <= last_match - 1) {
          chain.chain_arcs.push_back(
              graph.AddArc(node, chain.step_from[index + 1], 1, cost));
        }
      }
      chains.push_back(std::move(chain));
    }
  }

  MinCostFlowResult result =
      SolveMinCostFlow(graph, time_node(0), time_node(len),
                       static_cast<std::int64_t>(capacity));
  SJOIN_CHECK_EQ(result.flow, static_cast<std::int64_t>(capacity));
  optimal_benefit_ = static_cast<std::int64_t>(std::llround(-result.cost));

  for (const TupleChain& chain : chains) {
    if (graph.FlowOn(chain.entry_from, chain.entry_arc) == 0) continue;
    Time t = chain.arrival;
    schedule_[static_cast<std::size_t>(t)].push_back(chain.id);
    for (std::size_t i = 0; i < chain.chain_arcs.size(); ++i) {
      if (graph.FlowOn(chain.step_from[i], chain.chain_arcs[i]) == 0) break;
      ++t;
      schedule_[static_cast<std::size_t>(t)].push_back(chain.id);
    }
  }
}

std::vector<TupleId> MultiOptOfflinePolicy::SelectRetained(
    const MultiPolicyContext& ctx) {
  SJOIN_CHECK_LT(static_cast<std::size_t>(ctx.now), schedule_.size());
  return schedule_[static_cast<std::size_t>(ctx.now)];
}

}  // namespace sjoin
