#ifndef SJOIN_MULTI_MULTI_OPT_OFFLINE_POLICY_H_
#define SJOIN_MULTI_MULTI_OPT_OFFLINE_POLICY_H_

#include <cstdint>
#include <vector>

#include "sjoin/multi/multi_join_simulator.h"

/// \file
/// Optimal offline schedule for the multi-join problem: the same
/// time-expanded min-cost-flow formulation as the binary OPT-offline
/// (policies/opt_offline_policy.h), except that a tuple's chain arcs earn
/// one unit per *partner-stream* match at the next step — a step can earn
/// several units when multiple partners match simultaneously.

namespace sjoin {

/// Clairvoyant multi-join replacement. Construction solves the flow;
/// SelectRetained replays the schedule.
class MultiOptOfflinePolicy final : public MultiReplacementPolicy {
 public:
  /// `simulator` supplies the join graph (not owned); `streams` are the
  /// full realizations. Regular join semantics only (run it through a
  /// simulator without a sliding window).
  MultiOptOfflinePolicy(const MultiJoinSimulator* simulator,
                        const std::vector<std::vector<Value>>& streams,
                        std::size_t capacity);

  std::vector<TupleId> SelectRetained(const MultiPolicyContext& ctx) override;

  const char* name() const override { return "MULTI-OPT"; }

  /// Optimal number of cache-produced results over the whole run.
  std::int64_t optimal_benefit() const { return optimal_benefit_; }

 private:
  std::vector<std::vector<TupleId>> schedule_;
  std::int64_t optimal_benefit_ = 0;
};

}  // namespace sjoin

#endif  // SJOIN_MULTI_MULTI_OPT_OFFLINE_POLICY_H_
