#ifndef SJOIN_MULTI_MULTI_JOIN_SIMULATOR_H_
#define SJOIN_MULTI_MULTI_JOIN_SIMULATOR_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "sjoin/common/thread_pool.h"
#include "sjoin/common/types.h"
#include "sjoin/engine/step_observer.h"
#include "sjoin/engine/stream_engine.h"
#include "sjoin/engine/stream_tuple.h"
#include "sjoin/stochastic/stream_history.h"

/// \file
/// Multiple binary equijoins over multiple streams — the generalization
/// the paper's Appendix C sketches: "in the case of multiple binary joins,
/// this expected benefit is a summary of each expected benefit of the
/// binary join with one partner stream."
///
/// N streams each emit one tuple per step; a join graph lists the stream
/// pairs that join on value equality; one shared cache of k tuples feeds
/// all the joins. With N = 2 and the single edge (0, 1) this reduces
/// exactly to the binary JoinSimulator (see multi_join_test).
///
/// Since the StreamEngine unification the engine *is* this N-way loop
/// (engine/stream_engine.h); the multi layer's tuple, context and policy
/// types are aliases of the engine's, and MultiJoinSimulator is a façade
/// kept for the historical vector-of-streams API.

namespace sjoin {

/// A tuple from one of N streams.
using MultiTuple = StreamTuple;

/// Ids are deterministic: the tuple of stream s arriving at time t gets
/// id t * num_streams + s.
constexpr TupleId MultiTupleIdAt(int num_streams, int stream, Time t) {
  return StreamTupleIdAt(num_streams, stream, t);
}

/// Step context for a multi-join replacement decision.
using MultiPolicyContext = EngineContext;

/// Replacement policy for the multi-join problem — the engine's single
/// decision interface.
using MultiReplacementPolicy = EnginePolicy;

/// Per-run accounting.
struct MultiJoinRunResult {
  std::int64_t total_results = 0;
  std::int64_t counted_results = 0;
  /// Perf telemetry, collected by the façade's PerfObserver.
  EngineTelemetry telemetry;
};

/// Simulates N streams joined along a join graph with one shared cache.
class MultiJoinSimulator {
 public:
  struct Options {
    std::size_t capacity = 10;
    Time warmup = 0;
    std::optional<Time> window;
    /// Value-domain shards for intra-run parallelism
    /// (engine/sharded_stream_engine.h); results are bit-identical for any
    /// count. <= 1, or a policy without shard scoring, runs serially.
    int shards = 1;
    /// Worker threads for the sharded path; 0 = auto (min(shards,
    /// hardware)), 1 = inline. See ShardedStreamEngine::Options::threads.
    int threads = 0;
    /// Pin sharded-path workers to CPUs (Linux only, best effort).
    bool pin_threads = false;
    /// Legacy thread-count hint for the sharded path (not owned; must
    /// outlive the simulator): when `threads` == 0 a configured pool caps
    /// the persistent worker team at its size.
    ThreadPool* pool = nullptr;
    /// Skew-adaptive sharding (DESIGN.md §2e): deterministic rebalancing
    /// of the value->shard ranges every `adaptive_interval` steps. Results
    /// stay bit-identical; only load balance moves.
    bool adaptive_shards = false;
    Time adaptive_interval = 32;
    /// Runtime probe planning (DESIGN.md §2f): Phase-1 partner probes run
    /// in an order re-planned from observed selectivities at deterministic
    /// checkpoints every `replan_interval` steps, empty partners are
    /// short-circuited, and repeated (partner, value) probes are served
    /// from a probe-result cache. Cost-only — results stay bit-identical;
    /// the run result's telemetry reports probes / skips / cache hits /
    /// replans. Applies to the serial path (all multi policies today).
    bool planner = false;
    Time replan_interval = 64;
  };

  /// `join_edges` lists unordered stream pairs (i != j) that equijoin.
  MultiJoinSimulator(int num_streams,
                     std::vector<std::pair<int, int>> join_edges,
                     Options options);

  /// `streams[s][t]` is stream s's value at time t; all streams must have
  /// equal length. Thread-safe: each call builds its own engine.
  MultiJoinRunResult Run(const std::vector<std::vector<Value>>& streams,
                         MultiReplacementPolicy& policy) const;

  int num_streams() const { return topology_.num_streams(); }
  const std::vector<std::pair<int, int>>& join_edges() const {
    return topology_.join_edges();
  }

  /// Streams that join with `stream` under the join graph.
  const std::vector<int>& PartnersOf(int stream) const {
    return topology_.PartnersOf(stream);
  }

  /// The underlying join graph (for policies that take a StreamTopology,
  /// e.g. EdgeBudgetPolicy).
  const StreamTopology& topology() const { return topology_; }

 private:
  StreamTopology topology_;
  Options options_;
};

}  // namespace sjoin

#endif  // SJOIN_MULTI_MULTI_JOIN_SIMULATOR_H_
