#ifndef SJOIN_MULTI_MULTI_JOIN_SIMULATOR_H_
#define SJOIN_MULTI_MULTI_JOIN_SIMULATOR_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "sjoin/common/types.h"
#include "sjoin/stochastic/stream_history.h"

/// \file
/// Multiple binary equijoins over multiple streams — the generalization
/// the paper's Appendix C sketches: "in the case of multiple binary joins,
/// this expected benefit is a summary of each expected benefit of the
/// binary join with one partner stream."
///
/// N streams each emit one tuple per step; a join graph lists the stream
/// pairs that join on value equality; one shared cache of k tuples feeds
/// all the joins. With N = 2 and the single edge (0, 1) this reduces
/// exactly to the binary JoinSimulator (see multi_join_test).

namespace sjoin {

/// A tuple from one of N streams.
struct MultiTuple {
  TupleId id = 0;
  int stream = 0;
  Value value = 0;
  Time arrival = 0;
};

/// Ids are deterministic: the tuple of stream s arriving at time t gets
/// id t * num_streams + s.
constexpr TupleId MultiTupleIdAt(int num_streams, int stream, Time t) {
  return static_cast<TupleId>(t) * static_cast<TupleId>(num_streams) +
         static_cast<TupleId>(stream);
}

/// Step context for a multi-join replacement decision.
struct MultiPolicyContext {
  Time now = 0;
  std::size_t capacity = 0;
  const std::vector<MultiTuple>* cached = nullptr;
  const std::vector<MultiTuple>* arrivals = nullptr;  // One per stream.
  const std::vector<StreamHistory>* histories = nullptr;
  std::optional<Time> window;
};

/// Replacement policy for the multi-join problem.
class MultiReplacementPolicy {
 public:
  virtual ~MultiReplacementPolicy() = default;
  virtual void Reset() {}
  /// Subset of cached ∪ arrivals ids, size <= capacity.
  virtual std::vector<TupleId> SelectRetained(
      const MultiPolicyContext& ctx) = 0;
  virtual const char* name() const = 0;
};

/// Per-run accounting.
struct MultiJoinRunResult {
  std::int64_t total_results = 0;
  std::int64_t counted_results = 0;
};

/// Simulates N streams joined along a join graph with one shared cache.
class MultiJoinSimulator {
 public:
  struct Options {
    std::size_t capacity = 10;
    Time warmup = 0;
    std::optional<Time> window;
  };

  /// `join_edges` lists unordered stream pairs (i != j) that equijoin.
  MultiJoinSimulator(int num_streams,
                     std::vector<std::pair<int, int>> join_edges,
                     Options options);

  /// `streams[s][t]` is stream s's value at time t; all streams must have
  /// equal length.
  MultiJoinRunResult Run(const std::vector<std::vector<Value>>& streams,
                         MultiReplacementPolicy& policy) const;

  int num_streams() const { return num_streams_; }
  const std::vector<std::pair<int, int>>& join_edges() const {
    return join_edges_;
  }

  /// Streams that join with `stream` under the join graph.
  const std::vector<int>& PartnersOf(int stream) const;

 private:
  int num_streams_;
  std::vector<std::pair<int, int>> join_edges_;
  std::vector<std::vector<int>> partners_;
  Options options_;
};

}  // namespace sjoin

#endif  // SJOIN_MULTI_MULTI_JOIN_SIMULATOR_H_
