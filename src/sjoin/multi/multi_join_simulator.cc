#include "sjoin/multi/multi_join_simulator.h"

#include "sjoin/common/check.h"
#include "sjoin/engine/probe_planner.h"
#include "sjoin/engine/sharded_stream_engine.h"

namespace sjoin {

MultiJoinSimulator::MultiJoinSimulator(
    int num_streams, std::vector<std::pair<int, int>> join_edges,
    Options options)
    : topology_(num_streams, std::move(join_edges)), options_(options) {
  SJOIN_CHECK_GE(options_.capacity, 1u);
  SJOIN_CHECK_GE(options_.shards, 1);
}

MultiJoinRunResult MultiJoinSimulator::Run(
    const std::vector<std::vector<Value>>& streams,
    MultiReplacementPolicy& policy) const {
  SJOIN_CHECK_EQ(static_cast<int>(streams.size()),
                 topology_.num_streams());
  std::vector<const std::vector<Value>*> stream_ptrs;
  stream_ptrs.reserve(streams.size());
  for (const std::vector<Value>& stream : streams) {
    stream_ptrs.push_back(&stream);
  }

  // Per-call planner state keeps Run thread-safe, like the engine itself.
  std::optional<ProbePlanner> planner;
  if (options_.planner) {
    planner.emplace(
        ProbePlanner::Options{.replan_interval = options_.replan_interval});
  }
  ShardedStreamEngine engine(topology_, {.capacity = options_.capacity,
                                         .warmup = options_.warmup,
                                         .window = options_.window,
                                         .shards = options_.shards,
                                         .threads = options_.threads,
                                         .pin_threads = options_.pin_threads,
                                         .pool = options_.pool,
                                         .adaptive = {
                                             .enabled =
                                                 options_.adaptive_shards,
                                             .interval =
                                                 options_.adaptive_interval},
                                         .probe_planner =
                                             planner ? &*planner : nullptr});
  PerfObserver perf;
  EngineRunResult run = engine.Run(stream_ptrs, policy, {&perf});

  MultiJoinRunResult result;
  result.total_results = run.total_results;
  result.counted_results = run.counted_results;
  result.telemetry = perf.telemetry();
  // A run that *asked* for sharding but executed serially (e.g. the
  // policy has no shard scoring) is correct but easy to misread in a
  // benchmark; surface the engine's reason instead of staying silent.
  if (options_.shards > 1) {
    result.telemetry.fallback_reason = engine.fallback_reason();
  }
  return result;
}

}  // namespace sjoin
