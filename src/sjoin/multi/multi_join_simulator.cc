#include "sjoin/multi/multi_join_simulator.h"

#include <unordered_map>
#include <unordered_set>

#include "sjoin/common/check.h"
#include "sjoin/common/validate.h"

namespace sjoin {

MultiJoinSimulator::MultiJoinSimulator(
    int num_streams, std::vector<std::pair<int, int>> join_edges,
    Options options)
    : num_streams_(num_streams),
      join_edges_(std::move(join_edges)),
      partners_(static_cast<std::size_t>(num_streams)),
      options_(options) {
  SJOIN_CHECK_GE(num_streams_, 2);
  SJOIN_CHECK_GE(options_.capacity, 1u);
  SJOIN_CHECK(!join_edges_.empty());
  for (const auto& [a, b] : join_edges_) {
    SJOIN_CHECK_GE(a, 0);
    SJOIN_CHECK_LT(a, num_streams_);
    SJOIN_CHECK_GE(b, 0);
    SJOIN_CHECK_LT(b, num_streams_);
    SJOIN_CHECK_NE(a, b);
    partners_[static_cast<std::size_t>(a)].push_back(b);
    partners_[static_cast<std::size_t>(b)].push_back(a);
  }
}

const std::vector<int>& MultiJoinSimulator::PartnersOf(int stream) const {
  SJOIN_CHECK_GE(stream, 0);
  SJOIN_CHECK_LT(stream, num_streams_);
  return partners_[static_cast<std::size_t>(stream)];
}

MultiJoinRunResult MultiJoinSimulator::Run(
    const std::vector<std::vector<Value>>& streams,
    MultiReplacementPolicy& policy) const {
  SJOIN_CHECK_EQ(static_cast<int>(streams.size()), num_streams_);
  Time len = static_cast<Time>(streams[0].size());
  for (const auto& stream : streams) {
    SJOIN_CHECK_EQ(static_cast<Time>(stream.size()), len);
  }
  policy.Reset();

  MultiJoinRunResult result;
  std::vector<MultiTuple> cache;
  std::vector<StreamHistory> histories(
      static_cast<std::size_t>(num_streams_));
  // Adjacency as a membership matrix for the join test.
  std::vector<std::vector<char>> joins(
      static_cast<std::size_t>(num_streams_),
      std::vector<char>(static_cast<std::size_t>(num_streams_), 0));
  for (const auto& [a, b] : join_edges_) {
    joins[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = 1;
    joins[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = 1;
  }

  // Step-loop scratch, hoisted so the steady state allocates nothing.
  std::vector<MultiTuple> arrivals;
  arrivals.reserve(static_cast<std::size_t>(num_streams_));
  std::vector<MultiTuple> new_cache;
  new_cache.reserve(options_.capacity);
  std::unordered_map<TupleId, MultiTuple> candidates;
  candidates.reserve(options_.capacity +
                     static_cast<std::size_t>(num_streams_));
  std::unordered_set<TupleId> seen;
  seen.reserve(options_.capacity);

  for (Time t = 0; t < len; ++t) {
    arrivals.clear();
    for (int s = 0; s < num_streams_; ++s) {
      arrivals.push_back(
          {MultiTupleIdAt(num_streams_, s, t), s,
           streams[static_cast<std::size_t>(s)][static_cast<std::size_t>(t)],
           t});
    }

    // Phase 1: arrivals join cached tuples of partner streams. Joins among
    // same-step arrivals happen regardless of caching and are excluded,
    // exactly as in the binary simulator.
    std::int64_t produced = 0;
    for (const MultiTuple& cached_tuple : cache) {
      if (options_.window.has_value() &&
          t - cached_tuple.arrival > *options_.window) {
        continue;
      }
      for (const MultiTuple& arrival : arrivals) {
        if (!joins[static_cast<std::size_t>(cached_tuple.stream)]
                  [static_cast<std::size_t>(arrival.stream)]) {
          continue;
        }
        if (cached_tuple.value == arrival.value) ++produced;
      }
    }
    result.total_results += produced;
    if (t >= options_.warmup) result.counted_results += produced;

    // Phase 2: replacement.
    for (int s = 0; s < num_streams_; ++s) {
      histories[static_cast<std::size_t>(s)].Append(
          arrivals[static_cast<std::size_t>(s)].value);
    }
    MultiPolicyContext ctx;
    ctx.now = t;
    ctx.capacity = options_.capacity;
    ctx.cached = &cache;
    ctx.arrivals = &arrivals;
    ctx.histories = &histories;
    ctx.window = options_.window;
    std::vector<TupleId> retained = policy.SelectRetained(ctx);
    SJOIN_CHECK_LE(retained.size(), options_.capacity);

    candidates.clear();
    for (const MultiTuple& tuple : cache) candidates.emplace(tuple.id, tuple);
    for (const MultiTuple& tuple : arrivals) {
      candidates.emplace(tuple.id, tuple);
    }
    new_cache.clear();
    seen.clear();
    for (TupleId id : retained) {
      auto it = candidates.find(id);
      SJOIN_CHECK_MSG(it != candidates.end(),
                      "policy retained a tuple that is not a candidate");
      SJOIN_CHECK_MSG(seen.insert(id).second,
                      "policy retained the same tuple twice");
      new_cache.push_back(it->second);
    }
    cache.swap(new_cache);

    if constexpr (kValidationEnabled) {
      SJOIN_VALIDATE(cache.size() <= options_.capacity);
      for (const MultiTuple& tuple : cache) {
        SJOIN_VALIDATE_MSG(tuple.stream >= 0 && tuple.stream < num_streams_,
                           "cached tuple has an out-of-range stream");
      }
    }
  }
  return result;
}

}  // namespace sjoin
