#ifndef SJOIN_MULTI_MULTI_HEEB_POLICY_H_
#define SJOIN_MULTI_MULTI_HEEB_POLICY_H_

#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/core/lifetime_fn.h"
#include "sjoin/engine/score_memo.h"
#include "sjoin/multi/multi_join_simulator.h"
#include "sjoin/stochastic/process.h"

/// \file
/// HEEB for multiple binary joins (Appendix C): a candidate tuple's
/// expected benefit is the *sum over its partner streams* of the binary
/// HEEB terms,
///   H_x = Σ_{p ∈ partners(stream(x))} Σ_{Δt} Pr{X^p_{t0+Δt} = v_x} L(Δt).
///
/// Scoring accumulates each partner's inner sum into a subtotal and adds
/// the subtotals in partner order, so the subtotal for a (partner, value)
/// pair can be memoized per step (engine/score_memo.h) without changing a
/// single bit of any score — Options::use_score_cache turns that on.

namespace sjoin {

/// Direct-mode multi-join HEEB.
class MultiHeebPolicy final : public MultiReplacementPolicy {
 public:
  struct Options {
    double alpha = 10.0;
    Time horizon = 100;
    /// Memoize per-(partner, value) score subtotals for the step
    /// (bit-identical scores either way; see file comment).
    bool use_score_cache = false;
  };

  /// `processes[s]` models stream s; not owned. `simulator` supplies the
  /// join graph (PartnersOf); not owned.
  MultiHeebPolicy(const std::vector<const StochasticProcess*>& processes,
                  const MultiJoinSimulator* simulator, Options options);

  void Reset() override;

  std::vector<TupleId> SelectRetained(const MultiPolicyContext& ctx) override;

  const char* name() const override { return "MULTI-HEEB"; }

  /// Hit/miss accounting of the score memo (zero when disabled).
  const ScoreMemo::Stats& score_cache_stats() const { return memo_.stats(); }

 private:
  std::vector<const StochasticProcess*> processes_;
  const MultiJoinSimulator* simulator_;
  Options options_;
  ExpLifetime lifetime_;
  // Per-step predictive pmfs, [stream][dt-1]; kept as a member and
  // overwritten in place so the per-step rebuild does not allocate.
  std::vector<std::vector<DiscreteDistribution>> predictions_;
  ScoreMemo memo_;
};

/// Random eviction baseline for the multi-join problem.
class MultiRandomPolicy final : public MultiReplacementPolicy {
 public:
  explicit MultiRandomPolicy(std::uint64_t seed) : rng_(seed), seed_(seed) {}

  void Reset() override { rng_ = Rng(seed_); }

  std::vector<TupleId> SelectRetained(const MultiPolicyContext& ctx) override;

  const char* name() const override { return "MULTI-RAND"; }

 private:
  Rng rng_;
  std::uint64_t seed_;
};

}  // namespace sjoin

#endif  // SJOIN_MULTI_MULTI_HEEB_POLICY_H_
