#include "sjoin/core/heeb.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sjoin/common/check.h"

namespace sjoin {

double HeebFromEcb(const EcbFn& ecb, const LifetimeFn& lifetime,
                   Time horizon) {
  SJOIN_CHECK_GE(horizon, 1);
  double h = ecb.At(1) * lifetime.At(1);
  double prev = ecb.At(1);
  for (Time dt = 2; dt <= horizon; ++dt) {
    double cur = ecb.At(dt);
    h += (cur - prev) * lifetime.At(dt);
    prev = cur;
  }
  return h;
}

double JoiningHeeb(const StochasticProcess& partner,
                   const StreamHistory& partner_history, Time t0, Value v,
                   const LifetimeFn& lifetime, Time horizon) {
  SJOIN_CHECK_GE(horizon, 1);
  double h = 0.0;
  for (Time dt = 1; dt <= horizon; ++dt) {
    h += partner.Predict(partner_history, t0 + dt).Prob(v) *
         lifetime.At(dt);
  }
  return h;
}

double CachingHeeb(const StochasticProcess& reference,
                   const StreamHistory& history, Time t0, Value v,
                   const LifetimeFn& lifetime, Time horizon) {
  SJOIN_CHECK_GE(horizon, 1);
  double h = 0.0;
  double survive = 1.0;  // Pr{no reference during [t0+1, t0+dt-1]}.
  for (Time dt = 1; dt <= horizon; ++dt) {
    double p = reference.Predict(history, t0 + dt).Prob(v);
    h += survive * p * lifetime.At(dt);
    survive *= 1.0 - p;
  }
  return h;
}

void CachingHeebBatch(const StochasticProcess& reference,
                      const StreamHistory& history, Time t0,
                      const Value* values, std::size_t count,
                      const LifetimeFn& lifetime, Time horizon, double* out) {
  SJOIN_CHECK_GE(horizon, 1);
  std::fill(out, out + count, 0.0);
  std::vector<double> survive(count, 1.0);
  DiscreteDistribution pmf;
  for (Time dt = 1; dt <= horizon; ++dt) {
    reference.PredictInto(history, t0 + dt, &pmf);
    const double life = lifetime.At(dt);
    for (std::size_t i = 0; i < count; ++i) {
      const double p = pmf.Prob(values[i]);
      out[i] += survive[i] * p * life;
      survive[i] *= 1.0 - p;
    }
  }
}

Time ExpHorizon(double alpha, double epsilon) {
  SJOIN_CHECK_GT(alpha, 0.0);
  SJOIN_CHECK_GT(epsilon, 0.0);
  double h = alpha * std::log(alpha / epsilon);
  return std::max<Time>(1, static_cast<Time>(std::ceil(h)));
}

}  // namespace sjoin
