#ifndef SJOIN_CORE_ADAPTIVE_HEEB_POLICY_H_
#define SJOIN_CORE_ADAPTIVE_HEEB_POLICY_H_

#include <memory>
#include <unordered_map>

#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/engine/replacement_policy.h"

/// \file
/// Adaptive-alpha HEEB — the technique the paper sketches as future work
/// (Section 5.3): "A more principled technique would be to observe the
/// average lifetime at runtime and adjust alpha adaptively."
///
/// L_exp(alpha) predicts an average cached-tuple lifetime of
/// 1/(1 - e^{-1/alpha}); this policy measures the actual residence time of
/// evicted tuples with an exponential moving average and re-derives alpha
/// whenever the estimate drifts materially, removing HEEB's one hand-tuned
/// parameter.

namespace sjoin {

/// HEEB (direct mode) with runtime-estimated alpha.
class AdaptiveHeebJoinPolicy final : public ReplacementPolicy {
 public:
  struct Options {
    /// Starting lifetime estimate (steps); must be > 1.
    double initial_lifetime = 10.0;
    /// EMA weight of a new residence observation.
    double ema_weight = 0.05;
    /// Rebuild the inner policy when alpha changes by this ratio.
    double rebuild_threshold = 0.2;
    /// Minimum observations before the first adaptation.
    int min_observations = 30;
    /// Sum-truncation horizon for the inner direct-mode HEEB.
    Time horizon = 150;
  };

  /// Processes are not owned and must outlive the policy.
  AdaptiveHeebJoinPolicy(const StochasticProcess* r_process,
                         const StochasticProcess* s_process,
                         Options options);

  void Reset() override;

  std::vector<TupleId> SelectRetained(const PolicyContext& ctx) override;

  const char* name() const override { return "HEEB-ADAPTIVE"; }

  /// Current alpha (for ablation reporting).
  double current_alpha() const { return current_alpha_; }
  /// Current average-lifetime estimate.
  double lifetime_estimate() const { return lifetime_ema_; }

 private:
  void RebuildInner();

  const StochasticProcess* r_process_;
  const StochasticProcess* s_process_;
  Options options_;
  double lifetime_ema_;
  double current_alpha_;
  int observations_ = 0;
  std::unique_ptr<HeebJoinPolicy> inner_;
  // Tuples currently cached (admitted at some step): id -> arrival time.
  std::unordered_map<TupleId, Time> cached_arrivals_;
};

}  // namespace sjoin

#endif  // SJOIN_CORE_ADAPTIVE_HEEB_POLICY_H_
