#include "sjoin/core/model_repo.h"

#include <cstdio>

#include "sjoin/common/check.h"
#include "sjoin/common/validate.h"
#include "sjoin/core/lifetime_fn.h"

namespace sjoin {
namespace {

// %.17g round-trips every double, so keys built from the same parameters
// are byte-identical and keys built from different parameters differ.
void AppendDouble(std::string* key, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *key += buf;
}

void AppendInt(std::string* key, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  *key += buf;
}

// The full step pmf of a walk: support start plus every mass. Both walk
// precomputations depend on the step distribution alone (they tabulate
// over offsets), so the initial value is deliberately absent.
void AppendWalkStep(std::string* key, const RandomWalkProcess& walk) {
  const DiscreteDistribution& step = walk.step();
  *key += "|step=";
  AppendInt(key, step.MinValue());
  for (double mass : step.masses()) {
    *key += ',';
    AppendDouble(key, mass);
  }
}

void AppendAr1(std::string* key, const Ar1Process& reference) {
  *key += "|phi0=";
  AppendDouble(key, reference.phi0());
  *key += "|phi1=";
  AppendDouble(key, reference.phi1());
  *key += "|sigma=";
  AppendDouble(key, reference.sigma());
}

std::string Ar1SurfaceKey(const Ar1Process& reference, double alpha,
                          Time horizon, Value v_min, Value v_max,
                          Value x_min, Value x_max, Value x_step, int paths,
                          std::uint64_t seed) {
  std::string key = "ar1-surface";
  AppendAr1(&key, reference);
  key += "|alpha=";
  AppendDouble(&key, alpha);
  key += "|h=";
  AppendInt(&key, horizon);
  key += "|v=";
  AppendInt(&key, v_min);
  key += ":";
  AppendInt(&key, v_max);
  key += "|x=";
  AppendInt(&key, x_min);
  key += ":";
  AppendInt(&key, x_max);
  key += ":";
  AppendInt(&key, x_step);
  key += "|paths=";
  AppendInt(&key, paths);
  key += "|seed=";
  AppendInt(&key, static_cast<std::int64_t>(seed));
  return key;
}

}  // namespace

ModelRepo& ModelRepo::Global() {
  static ModelRepo* repo = new ModelRepo();
  return *repo;
}

template <typename T>
std::shared_ptr<const T> ModelRepo::GetOrBuild(
    std::unordered_map<std::string, std::shared_ptr<const T>>* map,
    const std::string& key, const std::function<T()>& build) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.lookups;
  auto it = map->find(key);
  if (it != map->end()) {
    ++stats_.hits;
    return it->second;
  }
  // Build under the lock: a concurrent session asking for the same key
  // blocks and then hits, which is what makes construction once-per-key.
  auto built = std::make_shared<const T>(build());
  ++stats_.builds;
  int& count = build_counts_[key];
  ++count;
  if constexpr (kValidationEnabled) {
    SJOIN_CHECK_MSG(count == 1,
                    "ModelRepo built the same model key twice — the cache "
                    "is supposed to make construction once-per-key");
  }
  map->emplace(key, built);
  return built;
}

std::shared_ptr<const OffsetTable> ModelRepo::OffsetTableFor(
    const std::string& key, const std::function<OffsetTable()>& build) {
  return GetOrBuild(&offset_tables_, key, build);
}

std::shared_ptr<const HeebSurfaceTable> ModelRepo::SurfaceFor(
    const std::string& key, const std::function<HeebSurfaceTable()>& build) {
  return GetOrBuild(&surfaces_, key, build);
}

std::shared_ptr<const BicubicSurface> ModelRepo::BicubicFor(
    const std::string& key, const std::function<BicubicSurface()>& build) {
  return GetOrBuild(&bicubics_, key, build);
}

std::shared_ptr<const FlowSliceSkeleton> ModelRepo::FlowSkeletonFor(
    const std::string& key, const std::function<FlowSliceSkeleton()>& build) {
  return GetOrBuild(&flow_skeletons_, key, build);
}

std::shared_ptr<const Ar1Process> ModelRepo::Ar1ProcessFor(
    const std::string& key, const std::function<Ar1Process()>& build) {
  return GetOrBuild(&ar1_processes_, key, build);
}

std::shared_ptr<const OffsetTable> ModelRepo::WalkJoinHeebTable(
    const RandomWalkProcess& partner, double alpha, Time horizon) {
  std::string key = "walk-join-h1";
  AppendWalkStep(&key, partner);
  key += "|alpha=";
  AppendDouble(&key, alpha);
  key += "|h=";
  AppendInt(&key, horizon);
  return OffsetTableFor(key, [&] {
    return PrecomputeWalkJoinHeeb(partner, ExpLifetime(alpha), horizon);
  });
}

std::shared_ptr<const OffsetTable> ModelRepo::WalkCachingHeebTable(
    const RandomWalkProcess& reference, double alpha, Time horizon,
    Value max_abs_offset) {
  std::string key = "walk-caching-h1";
  AppendWalkStep(&key, reference);
  key += "|alpha=";
  AppendDouble(&key, alpha);
  key += "|h=";
  AppendInt(&key, horizon);
  key += "|maxoff=";
  AppendInt(&key, max_abs_offset);
  return OffsetTableFor(key, [&] {
    return PrecomputeWalkCachingHeeb(reference, ExpLifetime(alpha), horizon,
                                     max_abs_offset);
  });
}

std::shared_ptr<const HeebSurfaceTable> ModelRepo::Ar1CachingSurfaceTable(
    const Ar1Process& reference, double alpha, Time horizon, Value v_min,
    Value v_max, Value x_min, Value x_max, Value x_step, int paths,
    std::uint64_t seed) {
  std::string key = Ar1SurfaceKey(reference, alpha, horizon, v_min, v_max,
                                  x_min, x_max, x_step, paths, seed);
  return SurfaceFor(key, [&] {
    return PrecomputeAr1CachingSurface(reference, ExpLifetime(alpha), horizon,
                                       v_min, v_max, x_min, x_max, x_step,
                                       paths, seed);
  });
}

std::shared_ptr<const BicubicSurface> ModelRepo::Ar1CachingSurfaceBicubic(
    const Ar1Process& reference, double alpha, Time horizon, Value v_min,
    Value v_max, Value x_min, Value x_max, Value x_step, int paths,
    std::uint64_t seed, int nx, int ny) {
  // Resolve the surface dependency first (outside this call's GetOrBuild,
  // which holds the repo lock): if the bicubic is cached this is a cheap
  // hit, and if not the surface gets built and shared either way.
  std::shared_ptr<const HeebSurfaceTable> surface = Ar1CachingSurfaceTable(
      reference, alpha, horizon, v_min, v_max, x_min, x_max, x_step, paths,
      seed);
  std::string key = Ar1SurfaceKey(reference, alpha, horizon, v_min, v_max,
                                  x_min, x_max, x_step, paths, seed);
  key += "|bicubic=";
  AppendInt(&key, nx);
  key += "x";
  AppendInt(&key, ny);
  return BicubicFor(
      key, [&] { return ApproximateSurfaceBicubic(*surface, nx, ny); });
}

int ModelRepo::BuildCount(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = build_counts_.find(key);
  return it == build_counts_.end() ? 0 : it->second;
}

ModelRepo::Stats ModelRepo::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ModelRepo::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats();
  build_counts_.clear();
  offset_tables_.clear();
  surfaces_.clear();
  bicubics_.clear();
  flow_skeletons_.clear();
  ar1_processes_.clear();
}

}  // namespace sjoin
