#include "sjoin/core/dominance.h"

#include <algorithm>
#include <queue>

#include "sjoin/common/check.h"

namespace sjoin {

Dominance CompareEcb(const EcbFn& a, const EcbFn& b, Time horizon,
                     double tolerance) {
  SJOIN_CHECK_GE(horizon, 1);
  bool a_ge_everywhere = true;
  bool b_ge_everywhere = true;
  bool a_gt_everywhere = true;
  bool b_gt_everywhere = true;
  bool any_difference = false;
  for (Time dt = 1; dt <= horizon; ++dt) {
    double va = a.At(dt);
    double vb = b.At(dt);
    if (va > vb + tolerance) {
      b_ge_everywhere = false;
      b_gt_everywhere = false;
      any_difference = true;
    } else if (vb > va + tolerance) {
      a_ge_everywhere = false;
      a_gt_everywhere = false;
      any_difference = true;
    } else {
      a_gt_everywhere = false;
      b_gt_everywhere = false;
    }
  }
  if (!any_difference) return Dominance::kEqual;
  if (a_gt_everywhere) return Dominance::kStrictlyDominates;
  if (b_gt_everywhere) return Dominance::kStrictlyDominatedBy;
  if (a_ge_everywhere) return Dominance::kDominates;
  if (b_ge_everywhere) return Dominance::kDominatedBy;
  return Dominance::kIncomparable;
}

bool MeansDominates(Dominance result) {
  return result == Dominance::kEqual || result == Dominance::kDominates ||
         result == Dominance::kStrictlyDominates;
}

std::vector<std::size_t> FindDominatedSubset(
    const std::vector<const EcbFn*>& candidates, std::size_t max_discard,
    Time horizon, double tolerance) {
  std::size_t n = candidates.size();
  if (n == 0 || max_discard == 0) return {};

  // dominates[u][v]: candidate u's ECB dominates candidate v's.
  std::vector<std::vector<char>> dominates(n, std::vector<char>(n, 0));
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u == v) continue;
      dominates[u][v] = MeansDominates(
          CompareEcb(*candidates[u], *candidates[v], horizon, tolerance));
    }
  }

  // Forcing closure of v: the minimal set containing v that is closed
  // under "if x is in V and y does not dominate x, then y is in V".
  auto closure_of = [&](std::size_t v) {
    std::vector<char> in_closure(n, 0);
    std::queue<std::size_t> frontier;
    in_closure[v] = 1;
    frontier.push(v);
    while (!frontier.empty()) {
      std::size_t x = frontier.front();
      frontier.pop();
      for (std::size_t y = 0; y < n; ++y) {
        if (y == x || in_closure[y]) continue;
        if (!dominates[y][x]) {
          in_closure[y] = 1;
          frontier.push(y);
        }
      }
    }
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < n; ++i) {
      if (in_closure[i]) members.push_back(i);
    }
    return members;
  };

  struct Closure {
    std::vector<std::size_t> members;
  };
  std::vector<Closure> closures;
  closures.reserve(n);
  for (std::size_t v = 0; v < n; ++v) closures.push_back({closure_of(v)});
  std::sort(closures.begin(), closures.end(),
            [](const Closure& a, const Closure& b) {
              return a.members.size() < b.members.size();
            });

  // Greedily union the smallest closures while the union fits.
  std::vector<char> selected(n, 0);
  std::size_t selected_count = 0;
  for (const Closure& closure : closures) {
    std::size_t added = 0;
    for (std::size_t member : closure.members) {
      if (!selected[member]) ++added;
    }
    if (added == 0 || selected_count + added > max_discard) continue;
    for (std::size_t member : closure.members) {
      if (!selected[member]) {
        selected[member] = 1;
        ++selected_count;
      }
    }
  }
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < n; ++i) {
    if (selected[i]) result.push_back(i);
  }
  return result;
}

}  // namespace sjoin
