#include "sjoin/core/case_study_ecbs.h"

#include <algorithm>
#include <cmath>

#include "sjoin/common/check.h"

namespace sjoin {

OfflineJoiningEcb::OfflineJoiningEcb(std::vector<Time> occurrences_in)
    : occurrences_in_(std::move(occurrences_in)) {
  for (std::size_t i = 0; i < occurrences_in_.size(); ++i) {
    SJOIN_CHECK_GE(occurrences_in_[i], 1);
    if (i > 0) SJOIN_CHECK_GT(occurrences_in_[i], occurrences_in_[i - 1]);
  }
}

double OfflineJoiningEcb::At(Time dt) const {
  SJOIN_CHECK_GE(dt, 1);
  // Number of occurrences within dt steps.
  auto it = std::upper_bound(occurrences_in_.begin(), occurrences_in_.end(),
                             dt);
  return static_cast<double>(it - occurrences_in_.begin());
}

StationaryJoiningEcb::StationaryJoiningEcb(double match_probability)
    : match_probability_(match_probability) {
  SJOIN_CHECK_GE(match_probability, 0.0);
  SJOIN_CHECK_LE(match_probability, 1.0);
}

StationaryCachingEcb::StationaryCachingEcb(double reference_probability)
    : reference_probability_(reference_probability) {
  SJOIN_CHECK_GE(reference_probability, 0.0);
  SJOIN_CHECK_LE(reference_probability, 1.0);
}

double StationaryCachingEcb::At(Time dt) const {
  SJOIN_CHECK_GE(dt, 1);
  return 1.0 - std::pow(1.0 - reference_probability_,
                        static_cast<double>(dt));
}

TrendUniformJoiningEcb::TrendUniformJoiningEcb(Value offset, Value w)
    : offset_(offset), w_(w) {
  SJOIN_CHECK_GE(w, 0);
}

double TrendUniformJoiningEcb::At(Time dt) const {
  SJOIN_CHECK_GE(dt, 1);
  // The partner matches at look-ahead u iff u is within [offset - w,
  // offset + w]; the match probability is 1/(2w+1) at each such step.
  Time lo = std::max<Time>(1, offset_ - w_);
  Time hi = offset_ + w_;
  if (hi < lo) return 0.0;
  Time count = std::max<Time>(0, std::min(dt, hi) - lo + 1);
  return static_cast<double>(count) / static_cast<double>(2 * w_ + 1);
}

}  // namespace sjoin
