#ifndef SJOIN_CORE_MODEL_REPO_H_
#define SJOIN_CORE_MODEL_REPO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sjoin/approx/bicubic_surface.h"
#include "sjoin/common/types.h"
#include "sjoin/core/precompute.h"
#include "sjoin/flow/flow_graph.h"
#include "sjoin/stochastic/ar1_process.h"
#include "sjoin/stochastic/random_walk_process.h"

/// \file
/// Content-addressed repository of immutable, shareable model state.
///
/// Every precomputed model artifact — h1 offset tables, h2 caching
/// surfaces and their bicubic compressions, fitted AR(1) processes, and
/// FlowExpect slice-graph skeletons — is a pure function of its
/// parameters. A batch simulator could afford to rebuild them per run; a
/// service multiplexing thousands of sessions cannot, and does not need
/// to: the repo builds each artifact once, keyed by a string that encodes
/// exactly the parameters the artifact depends on, and hands out
/// `shared_ptr<const T>` borrows. Policies migrate from own-your-tables
/// to borrow-from-repo; a policy with a custom (non-introspectable)
/// lifetime function simply builds privately, outside the repo.
///
/// Thread safety: all methods are safe to call concurrently. The repo
/// holds its mutex across a build, so two sessions racing to construct
/// the same model key serialize and the loser gets the winner's table —
/// construction happens exactly once per distinct key for the life of the
/// repo (model_repo_test pins this with the build counters; under
/// SJOIN_VALIDATE a second build of any key aborts). Build callbacks must
/// not call back into the same repo.

namespace sjoin {

/// The immutable part of one FlowExpect slice graph for a fixed
/// (lookahead, candidate count) shape: nodes, arcs (with placeholder
/// costs) and the arc handles cost-rewriting needs. Policies copy the
/// graph into a private working copy — the solver rewrites costs and
/// capacities in place — but the skeleton build, whose node/arc insertion
/// order must exactly mirror the naive oracle's cold build, happens once
/// per shape process-wide.
struct FlowSliceSkeleton {
  struct ArcRef {
    NodeId from = 0;
    std::int32_t index = 0;
  };
  FlowGraph graph;
  std::vector<std::int32_t> source_arcs;  // Per candidate, for FlowOn.
  std::vector<ArcRef> det_arcs;           // Slice-major, candidate-minor.
  std::vector<ArcRef> undet_arcs;  // Slice-major, (arrival, side)-minor.
};

/// Shared cache of immutable model artifacts, keyed by content.
class ModelRepo {
 public:
  struct Stats {
    std::int64_t lookups = 0;  // GetOrBuild-style calls.
    std::int64_t hits = 0;     // Lookups answered from the cache.
    std::int64_t builds = 0;   // Artifacts constructed; == distinct keys.
  };

  ModelRepo() = default;
  ModelRepo(const ModelRepo&) = delete;
  ModelRepo& operator=(const ModelRepo&) = delete;

  /// The process-wide repo that policies default to. Never destroyed
  /// (intentionally leaked: policies may hold borrows at exit).
  static ModelRepo& Global();

  // Generic content-addressed entries: returns the artifact stored under
  // `key`, invoking `build` exactly once per distinct key.
  std::shared_ptr<const OffsetTable> OffsetTableFor(
      const std::string& key, const std::function<OffsetTable()>& build);
  std::shared_ptr<const HeebSurfaceTable> SurfaceFor(
      const std::string& key, const std::function<HeebSurfaceTable()>& build);
  std::shared_ptr<const BicubicSurface> BicubicFor(
      const std::string& key, const std::function<BicubicSurface()>& build);
  std::shared_ptr<const FlowSliceSkeleton> FlowSkeletonFor(
      const std::string& key,
      const std::function<FlowSliceSkeleton()>& build);
  std::shared_ptr<const Ar1Process> Ar1ProcessFor(
      const std::string& key, const std::function<Ar1Process()>& build);

  // Typed wrappers for the canonical L_exp(alpha) artifacts. Keys encode
  // exactly what the tables depend on: the step pmf (not the walk's
  // initial value — both precomputations are offset-based), alpha, the
  // horizon, and for the Monte Carlo surface the grid and sampling
  // parameters.

  /// h1 for the joining problem against a random-walk partner
  /// (PrecomputeWalkJoinHeeb with L_exp(alpha)).
  std::shared_ptr<const OffsetTable> WalkJoinHeebTable(
      const RandomWalkProcess& partner, double alpha, Time horizon);

  /// h1 for the caching problem with a random-walk reference
  /// (PrecomputeWalkCachingHeeb with L_exp(alpha)).
  std::shared_ptr<const OffsetTable> WalkCachingHeebTable(
      const RandomWalkProcess& reference, double alpha, Time horizon,
      Value max_abs_offset);

  /// The exact AR(1) caching surface h2 (PrecomputeAr1CachingSurface with
  /// L_exp(alpha)).
  std::shared_ptr<const HeebSurfaceTable> Ar1CachingSurfaceTable(
      const Ar1Process& reference, double alpha, Time horizon, Value v_min,
      Value v_max, Value x_min, Value x_max, Value x_step, int paths,
      std::uint64_t seed);

  /// The nx-by-ny bicubic compression of the surface above. Resolves the
  /// surface dependency through the repo, so the exact table is shared
  /// too.
  std::shared_ptr<const BicubicSurface> Ar1CachingSurfaceBicubic(
      const Ar1Process& reference, double alpha, Time horizon, Value v_min,
      Value v_max, Value x_min, Value x_max, Value x_step, int paths,
      std::uint64_t seed, int nx, int ny);

  /// Times one artifact under `key` has been constructed (0 or, barring
  /// Clear(), 1). The once-per-key acceptance tests read this.
  int BuildCount(const std::string& key) const;

  Stats stats() const;

  /// Drops every cached artifact and every counter. Outstanding borrows
  /// stay valid (shared_ptr). Test-only.
  void Clear();

 private:
  template <typename T>
  std::shared_ptr<const T> GetOrBuild(
      std::unordered_map<std::string, std::shared_ptr<const T>>* map,
      const std::string& key, const std::function<T()>& build);

  mutable std::mutex mu_;
  Stats stats_;
  std::unordered_map<std::string, int> build_counts_;
  std::unordered_map<std::string, std::shared_ptr<const OffsetTable>>
      offset_tables_;
  std::unordered_map<std::string, std::shared_ptr<const HeebSurfaceTable>>
      surfaces_;
  std::unordered_map<std::string, std::shared_ptr<const BicubicSurface>>
      bicubics_;
  std::unordered_map<std::string, std::shared_ptr<const FlowSliceSkeleton>>
      flow_skeletons_;
  std::unordered_map<std::string, std::shared_ptr<const Ar1Process>>
      ar1_processes_;
};

}  // namespace sjoin

#endif  // SJOIN_CORE_MODEL_REPO_H_
