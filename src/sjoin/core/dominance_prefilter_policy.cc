#include "sjoin/core/dominance_prefilter_policy.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "sjoin/common/check.h"
#include "sjoin/core/dominance.h"
#include "sjoin/core/ecb.h"
#include "sjoin/engine/tuple.h"

namespace sjoin {

DominancePrefilterPolicy::DominancePrefilterPolicy(
    const StochasticProcess* r_process, const StochasticProcess* s_process,
    ReplacementPolicy* fallback, Options options)
    : r_process_(r_process),
      s_process_(s_process),
      fallback_(fallback),
      options_(options) {
  SJOIN_CHECK(r_process != nullptr && s_process != nullptr);
  SJOIN_CHECK(fallback != nullptr);
  SJOIN_CHECK_GE(options_.horizon, 1);
}

void DominancePrefilterPolicy::Reset() {
  fallback_->Reset();
  decisions_by_dominance_ = 0;
  total_decisions_ = 0;
}

std::vector<TupleId> DominancePrefilterPolicy::SelectRetained(
    const PolicyContext& ctx) {
  std::vector<Tuple> candidates;
  candidates.reserve(ctx.cached->size() + ctx.arrivals->size());
  for (const Tuple& t : *ctx.cached) candidates.push_back(t);
  for (const Tuple& t : *ctx.arrivals) candidates.push_back(t);
  if (candidates.size() <= ctx.capacity) {
    std::vector<TupleId> all;
    for (const Tuple& t : candidates) all.push_back(t.id);
    return all;
  }
  ++total_decisions_;
  std::size_t discards = candidates.size() - ctx.capacity;

  // Tabulate (windowed) ECBs for every candidate.
  std::vector<TabulatedEcb> ecbs;
  ecbs.reserve(candidates.size());
  for (const Tuple& tuple : candidates) {
    const StochasticProcess* partner =
        tuple.side == StreamSide::kR ? s_process_ : r_process_;
    const StreamHistory* partner_history =
        tuple.side == StreamSide::kR ? ctx.history_s : ctx.history_r;
    TabulatedEcb base = MakeJoiningEcb(*partner, *partner_history, ctx.now,
                                       tuple.value, options_.horizon);
    if (ctx.window.has_value()) {
      ecbs.push_back(MakeWindowedEcb(base, tuple.arrival, ctx.now,
                                     *ctx.window, options_.horizon));
    } else {
      ecbs.push_back(std::move(base));
    }
  }
  std::vector<const EcbFn*> ecb_ptrs;
  ecb_ptrs.reserve(ecbs.size());
  for (const TabulatedEcb& ecb : ecbs) ecb_ptrs.push_back(&ecb);

  std::vector<std::size_t> dominated =
      FindDominatedSubset(ecb_ptrs, discards, options_.horizon);
  if (dominated.size() == discards) {
    // Corollary 2: discarding this subset is optimal; skip the heuristic.
    ++decisions_by_dominance_;
    std::unordered_set<std::size_t> drop(dominated.begin(),
                                         dominated.end());
    std::vector<TupleId> retained;
    retained.reserve(ctx.capacity);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (drop.count(i) == 0) retained.push_back(candidates[i].id);
    }
    return retained;
  }
  return fallback_->SelectRetained(ctx);
}

}  // namespace sjoin
