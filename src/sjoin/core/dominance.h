#ifndef SJOIN_CORE_DOMINANCE_H_
#define SJOIN_CORE_DOMINANCE_H_

#include <vector>

#include "sjoin/common/types.h"
#include "sjoin/core/ecb.h"

/// \file
/// ECB dominance tests (Section 4.2).
///
/// B_x dominates B_y when B_x(Δt) >= B_y(Δt) for all Δt >= 1 (strongly,
/// when strict everywhere). Theorem 3: if B_x dominates B_y, some optimal
/// algorithm keeps x or discards y now; under strong dominance, every
/// optimal algorithm does. Corollary 2 lifts this to dominated subsets.

namespace sjoin {

/// Outcome of comparing two ECBs over a finite horizon.
enum class Dominance {
  kEqual,                  // Curves coincide (within tolerance).
  kDominates,              // a >= b everywhere, > somewhere or equal.
  kStrictlyDominates,      // a > b everywhere.
  kDominatedBy,            // b dominates a.
  kStrictlyDominatedBy,    // b strictly dominates a.
  kIncomparable,           // Curves cross.
};

/// Compares a and b pointwise over Δt in [1, horizon].
Dominance CompareEcb(const EcbFn& a, const EcbFn& b, Time horizon,
                     double tolerance = 1e-12);

/// True when `result` means "a dominates b" (including equality and strict
/// dominance) — the hypothesis of Theorem 3(1).
bool MeansDominates(Dominance result);

/// Finds a dominated subset (Corollary 2): a set V of at most
/// `max_discard` candidate indices such that every candidate outside V
/// dominates every candidate inside V; discarding V is optimal when at
/// least |V| tuples must be discarded.
///
/// Algorithm: build the "forcing" relation — if u fails to dominate v,
/// then v's membership in V forces u's — take per-candidate closures, and
/// greedily union the smallest closures that fit. The result is always a
/// valid dominated subset; it is maximal in the common cases (and exactly
/// reproduces the w/x/y/z example of Section 4.2) though not guaranteed
/// maximum in adversarial configurations.
std::vector<std::size_t> FindDominatedSubset(
    const std::vector<const EcbFn*>& candidates, std::size_t max_discard,
    Time horizon, double tolerance = 1e-12);

}  // namespace sjoin

#endif  // SJOIN_CORE_DOMINANCE_H_
