#include "sjoin/core/adaptive_heeb_policy.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "sjoin/common/check.h"
#include "sjoin/core/lifetime_fn.h"

namespace sjoin {

AdaptiveHeebJoinPolicy::AdaptiveHeebJoinPolicy(
    const StochasticProcess* r_process, const StochasticProcess* s_process,
    Options options)
    : r_process_(r_process),
      s_process_(s_process),
      options_(options),
      lifetime_ema_(options.initial_lifetime),
      current_alpha_(
          ExpLifetime::AlphaForAverageLifetime(options.initial_lifetime)) {
  SJOIN_CHECK(r_process != nullptr && s_process != nullptr);
  SJOIN_CHECK_GT(options_.initial_lifetime, 1.0);
  SJOIN_CHECK_GT(options_.ema_weight, 0.0);
  SJOIN_CHECK_LE(options_.ema_weight, 1.0);
  RebuildInner();
}

void AdaptiveHeebJoinPolicy::RebuildInner() {
  HeebJoinPolicy::Options inner_options;
  inner_options.mode = HeebJoinPolicy::Mode::kDirect;
  inner_options.alpha = current_alpha_;
  inner_options.horizon = options_.horizon;
  inner_ = std::make_unique<HeebJoinPolicy>(r_process_, s_process_,
                                            inner_options);
}

void AdaptiveHeebJoinPolicy::Reset() {
  lifetime_ema_ = options_.initial_lifetime;
  current_alpha_ =
      ExpLifetime::AlphaForAverageLifetime(options_.initial_lifetime);
  observations_ = 0;
  cached_arrivals_.clear();
  RebuildInner();
  inner_->Reset();
}

std::vector<TupleId> AdaptiveHeebJoinPolicy::SelectRetained(
    const PolicyContext& ctx) {
  std::vector<TupleId> retained = inner_->SelectRetained(ctx);

  // Observe residence times of evicted tuples (tuples that were admitted
  // at some earlier step and are not retained now). Arrivals discarded
  // on the spot were never cached and do not count toward the average
  // cached-tuple lifetime.
  std::unordered_set<TupleId> retained_set(retained.begin(), retained.end());
  for (const Tuple& tuple : *ctx.cached) {
    if (retained_set.count(tuple.id) > 0) continue;
    auto it = cached_arrivals_.find(tuple.id);
    Time admitted_at = it != cached_arrivals_.end() ? it->second
                                                    : tuple.arrival;
    double residence =
        static_cast<double>(std::max<Time>(1, ctx.now - admitted_at));
    lifetime_ema_ = (1.0 - options_.ema_weight) * lifetime_ema_ +
                    options_.ema_weight * residence;
    ++observations_;
    if (it != cached_arrivals_.end()) cached_arrivals_.erase(it);
  }
  for (const Tuple& tuple : *ctx.arrivals) {
    if (retained_set.count(tuple.id) > 0) {
      cached_arrivals_.emplace(tuple.id, ctx.now);
    }
  }

  if (observations_ >= options_.min_observations) {
    double target_alpha = ExpLifetime::AlphaForAverageLifetime(
        std::max(1.5, lifetime_ema_));
    if (std::fabs(target_alpha - current_alpha_) >
        options_.rebuild_threshold * current_alpha_) {
      current_alpha_ = target_alpha;
      RebuildInner();
    }
  }
  return retained;
}

}  // namespace sjoin
