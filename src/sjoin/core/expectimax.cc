#include "sjoin/core/expectimax.h"

#include <algorithm>
#include <limits>
#include <map>

#include "sjoin/common/check.h"
#include "sjoin/common/math_util.h"
#include "sjoin/engine/tuple.h"

namespace sjoin {
namespace {

// Sentinel for "the stream produced nothing this step" (empty pmf) and for
// history slots before the evaluated window. Never matches a real value.
constexpr Value kSilent = std::numeric_limits<Value>::min() / 2;

using CacheState = std::vector<std::pair<int, Value>>;  // (side idx, value).

// Enumerated support of a stream at time t: (value, probability) pairs;
// a silent step is the single outcome (kSilent, 1).
std::vector<std::pair<Value, double>> SupportAt(
    const StochasticProcess& process, Time t) {
  StreamHistory empty;
  DiscreteDistribution pmf = process.Predict(empty, t);
  std::vector<std::pair<Value, double>> support;
  if (pmf.IsEmpty()) {
    support.push_back({kSilent, 1.0});
    return support;
  }
  for (Value v = pmf.MinValue(); v <= pmf.MaxValue(); ++v) {
    double p = pmf.Prob(v);
    if (p > kProbEpsilon) support.push_back({v, p});
  }
  return support;
}

std::int64_t Matches(const CacheState& cache, Value vr, Value vs) {
  std::int64_t count = 0;
  for (const auto& [side, value] : cache) {
    if (side == SideIndex(StreamSide::kS) && value == vr && vr != kSilent) {
      ++count;
    }
    if (side == SideIndex(StreamSide::kR) && value == vs && vs != kSilent) {
      ++count;
    }
  }
  return count;
}

// Enumerates all retained subsets of `pool` with size <= capacity, sorted
// canonical cache states, de-duplicated.
std::vector<CacheState> RetainedChoices(const CacheState& pool,
                                        std::size_t capacity) {
  int n = static_cast<int>(pool.size());
  SJOIN_CHECK_LE(n, 20);
  std::vector<CacheState> choices;
  for (int mask = 0; mask < (1 << n); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcount(
            static_cast<unsigned>(mask))) > capacity) {
      continue;
    }
    CacheState retained;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) retained.push_back(pool[static_cast<std::size_t>(i)]);
    }
    std::sort(retained.begin(), retained.end());
    choices.push_back(std::move(retained));
  }
  std::sort(choices.begin(), choices.end());
  choices.erase(std::unique(choices.begin(), choices.end()),
                choices.end());
  return choices;
}

class Solver {
 public:
  Solver(const StochasticProcess& r, const StochasticProcess& s, Time t0,
         const ExpectimaxOptions& options)
      : r_(r), s_(s), t0_(t0), options_(options) {}

  // Optimal expected benefit of arrivals at [t, t0 + horizon] given the
  // cache selected at t - 1.
  double Value(Time t, const CacheState& cache) {
    if (t > t0_ + options_.horizon) return 0.0;
    auto key = std::make_pair(t, cache);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    double total = 0.0;
    for (const auto& [vr, pr] : SupportAt(r_, t)) {
      for (const auto& [vs, ps] : SupportAt(s_, t)) {
        double benefit = static_cast<double>(Matches(cache, vr, vs));
        CacheState pool = cache;
        if (vr != kSilent) pool.push_back({SideIndex(StreamSide::kR), vr});
        if (vs != kSilent) pool.push_back({SideIndex(StreamSide::kS), vs});
        double best = 0.0;
        if (t < t0_ + options_.horizon) {
          best = -1.0;
          for (const CacheState& retained :
               RetainedChoices(pool, options_.capacity)) {
            best = std::max(best, Value(t + 1, retained));
          }
        }
        total += pr * ps * (benefit + std::max(best, 0.0));
      }
    }
    memo_.emplace(std::move(key), total);
    return total;
  }

 private:
  const StochasticProcess& r_;
  const StochasticProcess& s_;
  Time t0_;
  ExpectimaxOptions options_;
  std::map<std::pair<Time, CacheState>, double> memo_;
};

}  // namespace

ExpectimaxResult SolveExpectimax(
    const StochasticProcess& r_process, const StochasticProcess& s_process,
    Time t0, const std::vector<ExpectimaxCandidate>& candidates,
    const ExpectimaxOptions& options) {
  SJOIN_CHECK_MSG(r_process.IsIndependent() && s_process.IsIndependent(),
                  "expectimax requires independent per-step variables");
  SJOIN_CHECK_GE(options.horizon, 1);
  SJOIN_CHECK_GE(options.capacity, 1u);
  Solver solver(r_process, s_process, t0, options);

  ExpectimaxResult result;
  result.value = -1.0;
  int n = static_cast<int>(candidates.size());
  SJOIN_CHECK_LE(n, 20);
  for (int mask = 0; mask < (1 << n); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcount(
            static_cast<unsigned>(mask))) > options.capacity) {
      continue;
    }
    CacheState retained;
    std::vector<std::size_t> indices;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) {
        retained.push_back(
            {SideIndex(candidates[static_cast<std::size_t>(i)].side),
             candidates[static_cast<std::size_t>(i)].value});
        indices.push_back(static_cast<std::size_t>(i));
      }
    }
    std::sort(retained.begin(), retained.end());
    double value = solver.Value(t0 + 1, retained);
    if (value > result.value + 1e-12) {
      result.value = value;
      result.optimal_first_decisions.clear();
      result.optimal_first_decisions.push_back(indices);
    } else if (value > result.value - 1e-12) {
      result.optimal_first_decisions.push_back(indices);
    }
  }
  return result;
}

namespace {

class PolicyEvaluator {
 public:
  PolicyEvaluator(const StochasticProcess& r, const StochasticProcess& s,
                  Time t0, const ExpectimaxOptions& options,
                  ReplacementPolicy& policy)
      : r_(r), s_(s), t0_(t0), options_(options), policy_(policy) {}

  double Run(const std::vector<ExpectimaxCandidate>& candidates) {
    // Histories up to and including t0; earlier values (and the t0
    // arrivals, which the candidate list already carries) are sentinels —
    // model-driven policies only consult histories through Predict().
    StreamHistory history_r(std::vector<Value>(
        static_cast<std::size_t>(t0_) + 1, kSilent));
    StreamHistory history_s(std::vector<Value>(
        static_cast<std::size_t>(t0_) + 1, kSilent));
    std::vector<Tuple> cached;
    std::vector<Tuple> arrivals;  // Root: candidates act as the arrivals.
    TupleId next_id = 0;
    for (const ExpectimaxCandidate& candidate : candidates) {
      arrivals.push_back({next_id++, candidate.side, candidate.value, t0_});
    }
    std::vector<Tuple> retained =
        Decide(t0_, cached, arrivals, history_r, history_s);
    return Walk(t0_ + 1, retained, history_r, history_s);
  }

 private:
  std::vector<Tuple> Decide(Time now, const std::vector<Tuple>& cached,
                            const std::vector<Tuple>& arrivals,
                            const StreamHistory& history_r,
                            const StreamHistory& history_s) {
    PolicyContext ctx;
    ctx.now = now;
    ctx.capacity = options_.capacity;
    ctx.cached = &cached;
    ctx.arrivals = &arrivals;
    ctx.history_r = &history_r;
    ctx.history_s = &history_s;
    std::vector<TupleId> ids = policy_.SelectRetained(ctx);
    SJOIN_CHECK_LE(ids.size(), options_.capacity);
    std::vector<Tuple> retained;
    for (TupleId id : ids) {
      bool found = false;
      for (const Tuple& tuple : cached) {
        if (tuple.id == id) {
          retained.push_back(tuple);
          found = true;
        }
      }
      for (const Tuple& tuple : arrivals) {
        if (tuple.id == id) {
          retained.push_back(tuple);
          found = true;
        }
      }
      SJOIN_CHECK_MSG(found, "policy retained an unknown tuple");
    }
    return retained;
  }

  double Walk(Time t, const std::vector<Tuple>& cache,
              const StreamHistory& history_r,
              const StreamHistory& history_s) {
    if (t > t0_ + options_.horizon) return 0.0;
    double total = 0.0;
    for (const auto& [vr, pr] : SupportAt(r_, t)) {
      for (const auto& [vs, ps] : SupportAt(s_, t)) {
        std::int64_t benefit = 0;
        for (const Tuple& tuple : cache) {
          if (tuple.side == StreamSide::kS && tuple.value == vr &&
              vr != kSilent) {
            ++benefit;
          }
          if (tuple.side == StreamSide::kR && tuple.value == vs &&
              vs != kSilent) {
            ++benefit;
          }
        }
        StreamHistory next_r = history_r;
        StreamHistory next_s = history_s;
        next_r.Append(vr);
        next_s.Append(vs);
        std::vector<Tuple> arrivals;
        if (vr != kSilent) {
          arrivals.push_back({TupleIdAt(StreamSide::kR, t) + 1000,
                              StreamSide::kR, vr, t});
        }
        if (vs != kSilent) {
          arrivals.push_back({TupleIdAt(StreamSide::kS, t) + 1000,
                              StreamSide::kS, vs, t});
        }
        std::vector<Tuple> retained =
            Decide(t, cache, arrivals, next_r, next_s);
        total += pr * ps *
                 (static_cast<double>(benefit) +
                  Walk(t + 1, retained, next_r, next_s));
      }
    }
    return total;
  }

  const StochasticProcess& r_;
  const StochasticProcess& s_;
  Time t0_;
  ExpectimaxOptions options_;
  ReplacementPolicy& policy_;
};

}  // namespace

double EvaluatePolicyExpectation(
    const StochasticProcess& r_process, const StochasticProcess& s_process,
    Time t0, const std::vector<ExpectimaxCandidate>& candidates,
    const ExpectimaxOptions& options, ReplacementPolicy& policy) {
  SJOIN_CHECK_MSG(r_process.IsIndependent() && s_process.IsIndependent(),
                  "policy evaluation requires independent variables");
  policy.Reset();
  PolicyEvaluator evaluator(r_process, s_process, t0, options, policy);
  return evaluator.Run(candidates);
}

}  // namespace sjoin
