#include "sjoin/core/table_io.h"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <vector>

namespace sjoin {
namespace {

constexpr char kOffsetMagic[] = "sjoin-offset-table-v1";
constexpr char kSurfaceMagic[] = "sjoin-surface-table-v1";

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

bool SaveOffsetTable(const OffsetTable& table, const std::string& path) {
  File file(std::fopen(path.c_str(), "w"));
  if (file == nullptr) return false;
  std::fprintf(file.get(), "%s\n%" PRId64 " %zu\n", kOffsetMagic,
               static_cast<std::int64_t>(table.min_offset()),
               table.values().size());
  for (double v : table.values()) {
    std::fprintf(file.get(), "%.17g\n", v);
  }
  return std::ferror(file.get()) == 0;
}

std::optional<OffsetTable> LoadOffsetTable(const std::string& path) {
  File file(std::fopen(path.c_str(), "r"));
  if (file == nullptr) return std::nullopt;
  char magic[64] = {0};
  if (std::fscanf(file.get(), "%63s", magic) != 1 ||
      std::string(magic) != kOffsetMagic) {
    return std::nullopt;
  }
  std::int64_t min_offset = 0;
  std::size_t n = 0;
  if (std::fscanf(file.get(), "%" SCNd64 " %zu", &min_offset, &n) != 2 ||
      n == 0 || n > (1u << 24)) {
    return std::nullopt;
  }
  std::vector<double> values(n);
  for (double& v : values) {
    if (std::fscanf(file.get(), "%lg", &v) != 1) return std::nullopt;
  }
  return OffsetTable(min_offset, std::move(values));
}

bool SaveSurfaceTable(const HeebSurfaceTable& table,
                      const std::string& path) {
  File file(std::fopen(path.c_str(), "w"));
  if (file == nullptr) return false;
  std::fprintf(file.get(), "%s\n%" PRId64 " %" PRId64 " %" PRId64
               " %" PRId64 " %zu\n",
               kSurfaceMagic, static_cast<std::int64_t>(table.v_min()),
               static_cast<std::int64_t>(table.v_max()),
               static_cast<std::int64_t>(table.x_min()),
               static_cast<std::int64_t>(table.x_step()),
               table.num_columns());
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    const std::vector<double>& column = table.column(c);
    for (std::size_t i = 0; i < column.size(); ++i) {
      std::fprintf(file.get(), "%.17g%c", column[i],
                   i + 1 == column.size() ? '\n' : ' ');
    }
  }
  return std::ferror(file.get()) == 0;
}

std::optional<HeebSurfaceTable> LoadSurfaceTable(const std::string& path) {
  File file(std::fopen(path.c_str(), "r"));
  if (file == nullptr) return std::nullopt;
  char magic[64] = {0};
  if (std::fscanf(file.get(), "%63s", magic) != 1 ||
      std::string(magic) != kSurfaceMagic) {
    return std::nullopt;
  }
  std::int64_t v_min = 0, v_max = 0, x_min = 0, x_step = 0;
  std::size_t ncols = 0;
  if (std::fscanf(file.get(), "%" SCNd64 " %" SCNd64 " %" SCNd64
                  " %" SCNd64 " %zu",
                  &v_min, &v_max, &x_min, &x_step, &ncols) != 5) {
    return std::nullopt;
  }
  if (v_max < v_min || x_step <= 0 || ncols == 0 || ncols > (1u << 20) ||
      v_max - v_min > (1 << 24)) {
    return std::nullopt;
  }
  std::size_t rows = static_cast<std::size_t>(v_max - v_min + 1);
  if (rows * ncols > (1u << 26)) return std::nullopt;  // ~0.5 GiB cap.
  std::vector<std::vector<double>> columns(ncols,
                                           std::vector<double>(rows));
  for (auto& column : columns) {
    for (double& v : column) {
      if (std::fscanf(file.get(), "%lg", &v) != 1) return std::nullopt;
    }
  }
  return HeebSurfaceTable(v_min, v_max, x_min, x_step, std::move(columns));
}

}  // namespace sjoin
