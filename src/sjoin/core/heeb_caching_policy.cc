#include "sjoin/core/heeb_caching_policy.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sjoin/common/check.h"
#include "sjoin/core/heeb.h"
#include "sjoin/core/model_repo.h"
#include "sjoin/stochastic/random_walk_process.h"

namespace sjoin {

HeebCachingPolicy::HeebCachingPolicy(const StochasticProcess* reference,
                                     Options options)
    : reference_(reference),
      options_(std::move(options)),
      exp_lifetime_(options_.alpha),
      horizon_(options_.horizon > 0 ? options_.horizon
                                    : ExpHorizon(options_.alpha)) {
  switch (options_.mode) {
    case Mode::kDirect:
      SJOIN_CHECK(reference_ != nullptr);
      break;
    case Mode::kTimeIncremental:
      SJOIN_CHECK(reference_ != nullptr);
      SJOIN_CHECK_MSG(reference_->IsIndependent(),
                      "incremental caching HEEB requires independent "
                      "reference variables");
      SJOIN_CHECK_MSG(options_.lifetime == nullptr,
                      "incremental caching HEEB is defined for L_exp only");
      break;
    case Mode::kWalkTable: {
      const auto* walk = dynamic_cast<const RandomWalkProcess*>(reference_);
      SJOIN_CHECK_MSG(walk != nullptr,
                      "walk-table caching HEEB requires a random-walk "
                      "reference");
      if (options_.lifetime == nullptr) {
        ModelRepo& repo =
            options_.repo != nullptr ? *options_.repo : ModelRepo::Global();
        walk_table_ = repo.WalkCachingHeebTable(
            *walk, options_.alpha, horizon_, options_.walk_max_offset);
      } else {
        // A caller-supplied lifetime has no content-addressable identity;
        // build privately rather than risk key collisions in the repo.
        walk_table_ = std::make_shared<const OffsetTable>(
            PrecomputeWalkCachingHeeb(*walk, *options_.lifetime, horizon_,
                                      options_.walk_max_offset));
      }
      break;
    }
    case Mode::kEvaluator:
      SJOIN_CHECK_MSG(options_.evaluator != nullptr,
                      "kEvaluator requires an evaluator function");
      break;
  }
}

void HeebCachingPolicy::Reset() {
  cached_h_.clear();
  state_time_ = -1;
}

double HeebCachingPolicy::DirectScore(Value v,
                                      const CachingContext& ctx) const {
  const LifetimeFn& lifetime =
      options_.lifetime != nullptr
          ? *options_.lifetime
          : static_cast<const LifetimeFn&>(exp_lifetime_);
  return CachingHeeb(*reference_, *ctx.history, ctx.now, v, lifetime,
                     horizon_);
}

void HeebCachingPolicy::ScoreBatchInto(const CandidateBatch& batch,
                                       const CachingContext& ctx,
                                       double* out) {
  switch (options_.mode) {
    case Mode::kDirect: {
      const LifetimeFn& lifetime =
          options_.lifetime != nullptr
              ? *options_.lifetime
              : static_cast<const LifetimeFn&>(exp_lifetime_);
      CachingHeebBatch(*reference_, *ctx.history, ctx.now, batch.values,
                       batch.size, lifetime, horizon_, out);
      return;
    }
    case Mode::kWalkTable: {
      const OffsetTable& table = *walk_table_;
      const double* data = table.values().data();
      const Value size = static_cast<Value>(table.values().size());
      // At(v - last) indexes values()[v - last - min_offset]; fold the
      // two subtractions into one base.
      const Value base = ctx.history->back() + table.min_offset();
      for (std::size_t i = 0; i < batch.size; ++i) {
        const Value off = batch.values[i] - base;
        out[i] = off >= 0 && off < size
                     ? data[static_cast<std::size_t>(off)]
                     : 0.0;
      }
      return;
    }
    case Mode::kEvaluator:
    case Mode::kTimeIncremental:
      // Not batch-scorable (see BatchScorable); per-lane fallback keeps
      // any direct caller correct.
      ScoredCachingPolicy::ScoreBatchInto(batch, ctx, out);
      return;
  }
}

double HeebCachingPolicy::Score(Value v, const CachingContext& ctx) {
  switch (options_.mode) {
    case Mode::kDirect:
      return DirectScore(v, ctx);
    case Mode::kWalkTable:
      return walk_table_->At(v - ctx.history->back());
    case Mode::kEvaluator:
      return options_.evaluator(v, ctx.history->back());
    case Mode::kTimeIncremental: {
      // Corollary 4: advance the stored H values to the current time:
      // H_t = (e^{1/alpha} H_{t-1} - P_t) / (1 - P_t), P_t = Pr{X_t = v}.
      if (state_time_ >= 0 && state_time_ < ctx.now) {
        Time gap = ctx.now - state_time_;
        double e = std::exp(1.0 / options_.alpha);
        for (auto& [value, state] : cached_h_) {
          state.updates_since_refresh += gap;
          if (state.updates_since_refresh >= options_.refresh_interval) {
            // Re-anchor: the recurrence is an unstable iteration whose
            // error grows by e^{1/alpha}/(1-p) per step.
            state.h = DirectScore(value, ctx);
            state.updates_since_refresh = 0;
            continue;
          }
          bool reanchored = false;
          for (Time t = state_time_ + 1; t <= ctx.now; ++t) {
            double p = reference_->Predict(*ctx.history, t).Prob(value);
            if (p >= 1.0 - 1e-9) {
              // Deterministic reference (p = 1): the recurrence divides by
              // zero; recompute directly instead.
              state.h = DirectScore(value, ctx);
              state.updates_since_refresh = 0;
              reanchored = true;
              break;
            }
            state.h = (e * state.h - p) / (1.0 - p);
            if (state.h < 0.0) state.h = 0.0;  // Guard truncation drift.
          }
          if (reanchored) continue;
        }
        // Drop values no longer cached (and not the current candidate).
        std::vector<Value> stale;
        for (const auto& [value, state] : cached_h_) {
          (void)state;
          if (value == ctx.referenced) continue;
          if (std::find(ctx.cached->begin(), ctx.cached->end(), value) ==
              ctx.cached->end()) {
            stale.push_back(value);
          }
        }
        for (Value value : stale) cached_h_.erase(value);
      }
      state_time_ = ctx.now;
      auto it = cached_h_.find(v);
      if (it != cached_h_.end()) return it->second.h;
      double h = DirectScore(v, ctx);
      cached_h_[v] = IncrementalState{h, 0};
      return h;
    }
  }
  return 0.0;
}

}  // namespace sjoin
