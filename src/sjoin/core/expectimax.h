#ifndef SJOIN_CORE_EXPECTIMAX_H_
#define SJOIN_CORE_EXPECTIMAX_H_

#include <utility>
#include <vector>

#include "sjoin/engine/replacement_policy.h"
#include "sjoin/stochastic/process.h"

/// \file
/// Exact adaptive-optimal replacement for *tiny* instances, by expectimax
/// search over all observation outcomes and all replacement choices.
///
/// Section 3.4 observes that an optimal algorithm "would need to consider
/// all strategies that make conditional decisions based on the join
/// attribute values of new tuples observed at runtime" — an enormous
/// space. For small supports, short horizons and tiny caches it *is*
/// enumerable, which gives the library a ground-truth oracle: tests use it
/// to certify Theorem 3's dominance rule on random instances, to measure
/// FlowExpect's suboptimality gap (the 1.75-vs-1.60 example), and to
/// upper-bound every policy's exact expected performance.
///
/// Requires processes whose per-step variables are independent
/// (IsIndependent()), e.g. ScriptedProcess; the expectimax recursion
/// conditions only on time, not on observed values.

namespace sjoin {

/// A candidate tuple at the root decision.
struct ExpectimaxCandidate {
  StreamSide side = StreamSide::kR;
  Value value = 0;
};

/// Search bounds.
struct ExpectimaxOptions {
  /// Benefits are counted over [t0+1, t0+horizon].
  Time horizon = 3;
  /// Cache capacity.
  std::size_t capacity = 1;
};

/// Result of the root search.
struct ExpectimaxResult {
  /// Optimal expected benefit with fully adaptive future decisions.
  double value = 0.0;
  /// Every retained subset (indices into `candidates`, ascending) that
  /// attains the optimum at the root decision.
  std::vector<std::vector<std::size_t>> optimal_first_decisions;
};

/// Solves the tiny instance exactly. `candidates` is K ∪ N at time t0 (the
/// arrivals at t0 are already observed; their values are in the list).
/// Cost grows as (support^2 * subsets)^horizon — keep everything small.
ExpectimaxResult SolveExpectimax(const StochasticProcess& r_process,
                                 const StochasticProcess& s_process,
                                 Time t0,
                                 const std::vector<ExpectimaxCandidate>& candidates,
                                 const ExpectimaxOptions& options);

/// Exact expected benefit of a concrete policy on the same tiny instance:
/// drives `policy` through every arrival sequence of length `horizon`
/// (product of the supports), weighting by probability. The policy is
/// Reset() first; histories are materialized so model-driven policies
/// (HEEB, FlowExpect) work unmodified. By definition this is bounded above
/// by SolveExpectimax(...).value.
double EvaluatePolicyExpectation(
    const StochasticProcess& r_process, const StochasticProcess& s_process,
    Time t0, const std::vector<ExpectimaxCandidate>& candidates,
    const ExpectimaxOptions& options, ReplacementPolicy& policy);

}  // namespace sjoin

#endif  // SJOIN_CORE_EXPECTIMAX_H_
