#include "sjoin/core/ecb.h"

#include <algorithm>

#include "sjoin/common/check.h"

namespace sjoin {

TabulatedEcb::TabulatedEcb(std::vector<double> cumulative)
    : cumulative_(std::move(cumulative)) {
  SJOIN_CHECK(!cumulative_.empty());
  for (std::size_t i = 1; i < cumulative_.size(); ++i) {
    SJOIN_CHECK_GE(cumulative_[i], cumulative_[i - 1] - 1e-12);
  }
}

double TabulatedEcb::At(Time dt) const {
  SJOIN_CHECK_GE(dt, 1);
  std::size_t index = static_cast<std::size_t>(dt - 1);
  if (index >= cumulative_.size()) return cumulative_.back();
  return cumulative_[index];
}

TabulatedEcb MakeJoiningEcb(const StochasticProcess& partner,
                            const StreamHistory& partner_history, Time t0,
                            Value v, Time horizon) {
  SJOIN_CHECK_GE(horizon, 1);
  std::vector<double> cumulative;
  cumulative.reserve(static_cast<std::size_t>(horizon));
  // PredictInto reuses one pmf buffer across the horizon instead of
  // allocating a fresh distribution per step; same doubles either way.
  DiscreteDistribution pmf;
  double sum = 0.0;
  for (Time dt = 1; dt <= horizon; ++dt) {
    partner.PredictInto(partner_history, t0 + dt, &pmf);
    sum += pmf.Prob(v);
    cumulative.push_back(sum);
  }
  return TabulatedEcb(std::move(cumulative));
}

TabulatedEcb MakeCachingEcb(const StochasticProcess& reference,
                            const StreamHistory& history, Time t0, Value v,
                            Time horizon) {
  SJOIN_CHECK_GE(horizon, 1);
  std::vector<double> cumulative;
  cumulative.reserve(static_cast<std::size_t>(horizon));
  DiscreteDistribution pmf;
  double survive = 1.0;  // Pr{not referenced during [t0+1, t0+dt]}.
  for (Time dt = 1; dt <= horizon; ++dt) {
    reference.PredictInto(history, t0 + dt, &pmf);
    survive *= 1.0 - pmf.Prob(v);
    cumulative.push_back(1.0 - survive);
  }
  return TabulatedEcb(std::move(cumulative));
}

TabulatedEcb MakeWindowedEcb(const EcbFn& base, Time arrival, Time now,
                             Time window, Time horizon) {
  SJOIN_CHECK_GE(horizon, 1);
  SJOIN_CHECK_GE(window, 0);
  std::vector<double> cumulative(static_cast<std::size_t>(horizon), 0.0);
  Time remaining = arrival + window - now;
  if (remaining > 0) {
    double cap = base.At(std::min(remaining, horizon));
    for (Time dt = 1; dt <= horizon; ++dt) {
      cumulative[static_cast<std::size_t>(dt - 1)] =
          std::min(base.At(dt), cap);
    }
  }
  return TabulatedEcb(std::move(cumulative));
}

}  // namespace sjoin
