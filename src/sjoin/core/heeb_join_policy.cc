#include "sjoin/core/heeb_join_policy.h"

#include <cmath>
#include <cstdlib>

#include "sjoin/common/check.h"
#include "sjoin/core/heeb.h"
#include "sjoin/core/model_repo.h"
#include "sjoin/engine/scoring_batch.h"

namespace sjoin {

HeebJoinPolicy::HeebJoinPolicy(const StochasticProcess* r_process,
                               const StochasticProcess* s_process,
                               Options options)
    : r_process_(r_process),
      s_process_(s_process),
      options_(options),
      exp_lifetime_(options.alpha),
      horizon_(options.horizon > 0 ? options.horizon
                                   : ExpHorizon(options.alpha)) {
  SJOIN_CHECK(r_process != nullptr && s_process != nullptr);
  if (options_.mode == Mode::kTimeIncremental ||
      options_.mode == Mode::kValueIncremental) {
    SJOIN_CHECK_MSG(r_process_->IsIndependent() &&
                        s_process_->IsIndependent(),
                    "incremental HEEB requires independent stream variables");
    SJOIN_CHECK_MSG(options_.lifetime == nullptr,
                    "incremental HEEB is defined for L_exp only");
  }
  if (options_.mode == Mode::kValueIncremental) {
    for (const StochasticProcess* p : {r_process_, s_process_}) {
      const auto* trend = dynamic_cast<const LinearTrendProcess*>(p);
      SJOIN_CHECK_MSG(trend != nullptr,
                      "value-incremental HEEB requires linear-trend streams");
      SJOIN_CHECK_MSG(trend->slope() == std::floor(trend->slope()) &&
                          trend->slope() != 0.0,
                      "value-incremental HEEB requires a non-zero integer "
                      "slope");
    }
  }
  if (options_.mode == Mode::kWalkTable) {
    ModelRepo& repo =
        options_.repo != nullptr ? *options_.repo : ModelRepo::Global();
    for (StreamSide side : {StreamSide::kR, StreamSide::kS}) {
      const auto* walk =
          dynamic_cast<const RandomWalkProcess*>(process(Partner(side)));
      SJOIN_CHECK_MSG(walk != nullptr,
                      "walk-table HEEB requires random-walk streams");
      if (options_.lifetime == nullptr) {
        walk_table_[SideIndex(side)] =
            repo.WalkJoinHeebTable(*walk, options_.alpha, horizon_);
      } else {
        // A caller-supplied lifetime has no content-addressable identity;
        // build privately rather than risk key collisions in the repo.
        walk_table_[SideIndex(side)] = std::make_shared<const OffsetTable>(
            PrecomputeWalkJoinHeeb(*walk, *options_.lifetime, horizon_));
      }
    }
  }
  const LifetimeFn& lifetime =
      options_.lifetime != nullptr
          ? *options_.lifetime
          : static_cast<const LifetimeFn&>(exp_lifetime_);
  lifetime_flat_.reserve(static_cast<std::size_t>(horizon_));
  for (Time dt = 1; dt <= horizon_; ++dt) {
    lifetime_flat_.push_back(lifetime.At(dt));
  }
}

void HeebJoinPolicy::Reset() {
  predictions_[0].clear();
  predictions_[1].clear();
  predictions_time_ = -1;
  flat_time_ = -1;
  slots_.clear();
  slot_index_.clear();
  last_step_time_ = -1;
}

HeebJoinPolicy::CachedState* HeebJoinPolicy::FindState(TupleId id) {
  auto it = slot_index_.find(id);
  return it == slot_index_.end() ? nullptr : &slots_[it->second];
}

void HeebJoinPolicy::InsertState(const Tuple& tuple, double h) {
  slot_index_.emplace(tuple.id, slots_.size());
  slots_.push_back(
      CachedState{h, tuple.id, tuple.side, tuple.value, tuple.arrival, 0});
}

void HeebJoinPolicy::EraseState(TupleId id) {
  auto it = slot_index_.find(id);
  if (it == slot_index_.end()) return;
  std::size_t pos = it->second;
  slot_index_.erase(it);
  if (pos + 1 != slots_.size()) {
    // Swap-with-last; re-point the moved slot's index entry.
    slots_[pos] = slots_.back();
    slot_index_[slots_[pos].id] = pos;
  }
  slots_.pop_back();
}

void HeebJoinPolicy::BeginStep(const PolicyContext& ctx) {
  if (options_.mode == Mode::kWalkTable) return;

  if (options_.mode == Mode::kDirect ||
      options_.mode == Mode::kTimeIncremental) {
    // Arrivals are scored with direct sums; build this step's predictions.
    // kValueIncremental builds them lazily only when its transfer falls
    // back to a direct sum (see EnsurePredictions).
    EnsurePredictions(ctx);
  }

  if (options_.mode == Mode::kTimeIncremental ||
      options_.mode == Mode::kValueIncremental) {
    SJOIN_CHECK_MSG(!ctx.window.has_value() ||
                        options_.mode == Mode::kTimeIncremental,
                    "value-incremental HEEB does not support sliding "
                    "windows; use kDirect or kTimeIncremental");
    // Corollary 3: advance every cached H from the previous step's time to
    // now: H_t = e^{1/alpha} H_{t-1} - Pr{X^partner_t = v}. The sweep
    // walks the flat slot array in storage order; each entry's update is
    // independent, so the order only affects memory access, not results.
    if (last_step_time_ >= 0) {
      Time gap = ctx.now - last_step_time_;
      double e = std::exp(1.0 / options_.alpha);
      for (CachedState& state : slots_) {
        state.updates_since_refresh += gap;
        if (state.updates_since_refresh >= options_.refresh_interval) {
          // Re-anchor: the recurrence is an unstable iteration whose error
          // grows by e^{1/alpha} per step.
          Tuple proxy{0, state.side, state.value, state.arrival};
          state.h = DirectScore(proxy, ctx);
          state.updates_since_refresh = 0;
          continue;
        }
        for (Time step = 1; step <= gap; ++step) {
          double p = PartnerProbAt(state.side, state.value,
                                   last_step_time_ + step, ctx);
          state.h = e * state.h - p;
          if (state.h < 0.0) state.h = 0.0;  // Guard truncation drift.
        }
      }
    }
    last_step_time_ = ctx.now;
  }
}

bool HeebJoinPolicy::ShardBeginStep(const PolicyContext& ctx,
                                    std::vector<TupleId>* decided) {
  (void)decided;
  if (options_.mode == Mode::kWalkTable) return true;  // Pure lookups.
  if (options_.mode == Mode::kDirect) {
    EnsurePredictions(ctx);
    return true;
  }

  SJOIN_CHECK_MSG(!ctx.window.has_value() ||
                      options_.mode == Mode::kTimeIncremental,
                  "value-incremental HEEB does not support sliding "
                  "windows; use kDirect or kTimeIncremental");
  if (options_.mode == Mode::kTimeIncremental) EnsurePredictions(ctx);

  shard_gap_ = last_step_time_ >= 0 ? ctx.now - last_step_time_ : 0;
  shard_e_ = std::exp(1.0 / options_.alpha);
  if (shard_gap_ > 0) {
    // Entries crossing the refresh interval re-anchor with DirectScore,
    // which reads this step's predictions; build them up front so the
    // parallel phase never mutates shared state.
    for (const CachedState& state : slots_) {
      if (state.updates_since_refresh + shard_gap_ >=
          options_.refresh_interval) {
        EnsurePredictions(ctx);
        break;
      }
    }
    // One partner pmf per (cached side, elapsed step), shared by every
    // entry of that side during the lazy advance.
    for (StreamSide side : {StreamSide::kR, StreamSide::kS}) {
      StreamSide partner = Partner(side);
      auto& pmfs = advance_pmfs_[SideIndex(side)];
      pmfs.resize(static_cast<std::size_t>(shard_gap_));
      for (Time step = 1; step <= shard_gap_; ++step) {
        process(partner)->PredictInto(
            *history(partner, ctx), last_step_time_ + step,
            &pmfs[static_cast<std::size_t>(step - 1)]);
      }
    }
  }
  last_step_time_ = ctx.now;
  return true;
}

std::optional<ShardKey> HeebJoinPolicy::ShardScoreCached(
    const Tuple& tuple, const PolicyContext& ctx, ShardScratch* scratch) {
  if (options_.mode != Mode::kTimeIncremental &&
      options_.mode != Mode::kValueIncremental) {
    return ScoredPolicy::ShardScoreCached(tuple, ctx, scratch);
  }
  (void)scratch;
  // Lazy Corollary 3 advance: each entry is owned by exactly one shard
  // (shards partition the value domain and an entry's value is fixed), so
  // mutating it here is race-free; the shared pmfs and predictions are
  // read-only during this phase.
  CachedState* state = FindState(tuple.id);
  SJOIN_CHECK_MSG(state != nullptr,
                  "cached tuple without incremental HEEB state");
  if (shard_gap_ > 0) {
    state->updates_since_refresh += shard_gap_;
    if (state->updates_since_refresh >= options_.refresh_interval) {
      SJOIN_CHECK_EQ(predictions_time_, ctx.now);  // Built in ShardBeginStep.
      Tuple proxy{0, state->side, state->value, state->arrival};
      state->h = DirectScore(proxy, ctx);
      state->updates_since_refresh = 0;
    } else {
      const auto& pmfs = advance_pmfs_[SideIndex(state->side)];
      for (Time step = 1; step <= shard_gap_; ++step) {
        double p =
            pmfs[static_cast<std::size_t>(step - 1)].Prob(state->value);
        state->h = shard_e_ * state->h - p;
        if (state->h < 0.0) state->h = 0.0;  // Guard truncation drift.
      }
    }
  }
  // Same window guard as Score(); the entry advances either way, exactly
  // like the serial BeginStep sweep runs before Score's window check.
  double score =
      ctx.window.has_value() && !InWindow(tuple, ctx.now, ctx.window)
          ? 0.0
          : state->h;
  return ShardKey{score, tuple.arrival, tuple.id};
}

void HeebJoinPolicy::ShardScoreCachedBatch(const CandidateBatch& batch,
                                           const PolicyContext& ctx,
                                           ShardScratch* scratch,
                                           double* score_scratch,
                                           ShardKey* out) {
  if (options_.mode != Mode::kTimeIncremental &&
      options_.mode != Mode::kValueIncremental) {
    ScoredPolicy::ShardScoreCachedBatch(batch, ctx, scratch, score_scratch,
                                        out);
    return;
  }
  (void)scratch;
  (void)score_scratch;
  // The lane loop is ShardScoreCached's body over the shard's cached run:
  // advance-in-place, then window-guard the advanced h. Lane order matches
  // the scalar per-tuple order, and every slot is touched by exactly one
  // shard, so the advance stays race-free and bit-identical.
  const bool windowed = ctx.window.has_value();
  const Time w = windowed ? *ctx.window : 0;
  for (std::size_t i = 0; i < batch.size; ++i) {
    CachedState* state = FindState(batch.ids[i]);
    SJOIN_CHECK_MSG(state != nullptr,
                    "cached tuple without incremental HEEB state");
    if (shard_gap_ > 0) {
      state->updates_since_refresh += shard_gap_;
      if (state->updates_since_refresh >= options_.refresh_interval) {
        SJOIN_CHECK_EQ(predictions_time_, ctx.now);
        Tuple proxy{0, state->side, state->value, state->arrival};
        state->h = DirectScore(proxy, ctx);
        state->updates_since_refresh = 0;
      } else {
        const auto& pmfs = advance_pmfs_[SideIndex(state->side)];
        for (Time step = 1; step <= shard_gap_; ++step) {
          double p =
              pmfs[static_cast<std::size_t>(step - 1)].Prob(state->value);
          state->h = shard_e_ * state->h - p;
          if (state->h < 0.0) state->h = 0.0;
        }
      }
    }
    double score =
        windowed && ctx.now - batch.arrivals[i] > w ? 0.0 : state->h;
    out[i] = ShardKey{score, batch.arrivals[i],
                      static_cast<std::int64_t>(batch.ids[i])};
  }
}

double HeebJoinPolicy::PartnerProbAt(StreamSide side, Value v, Time t,
                                     const PolicyContext& ctx) const {
  StreamSide partner = Partner(side);
  return process(partner)->Predict(*history(partner, ctx), t).Prob(v);
}

void HeebJoinPolicy::EnsurePredictions(const PolicyContext& ctx) {
  const bool want_flat =
      options_.mode == Mode::kDirect && ScoringBatchEnabled();
  if (predictions_time_ == ctx.now &&
      (!want_flat || flat_time_ == ctx.now)) {
    return;
  }
  for (StreamSide side : {StreamSide::kR, StreamSide::kS}) {
    auto& preds = predictions_[SideIndex(side)];
    // Overwrite last step's pmfs in place: PredictInto reuses each slot's
    // mass buffer, so the rebuild is allocation-free in steady state.
    preds.resize(static_cast<std::size_t>(horizon_));
    for (Time dt = 1; dt <= horizon_; ++dt) {
      process(side)->PredictInto(*history(side, ctx), ctx.now + dt,
                                 &preds[static_cast<std::size_t>(dt - 1)]);
    }
  }
  predictions_time_ = ctx.now;
  if (want_flat) FlattenPredictions();
}

void HeebJoinPolicy::FlattenPredictions() {
  for (int s = 0; s < 2; ++s) {
    const auto& preds = predictions_[s];
    FlatPmfs& fp = flat_predictions_[s];
    fp.masses.clear();
    fp.offset.resize(preds.size());
    fp.min.resize(preds.size());
    fp.size.resize(preds.size());
    for (std::size_t k = 0; k < preds.size(); ++k) {
      const DiscreteDistribution& pmf = preds[k];
      fp.offset[k] = fp.masses.size();
      fp.min[k] = pmf.IsEmpty() ? 0 : pmf.MinValue();
      fp.size[k] = static_cast<Value>(pmf.SupportSize());
      fp.masses.insert(fp.masses.end(), pmf.masses().begin(),
                       pmf.masses().end());
    }
  }
  flat_time_ = predictions_time_;
}

double HeebJoinPolicy::DirectScore(const Tuple& tuple,
                                   const PolicyContext& ctx) {
  EnsurePredictions(ctx);
  const LifetimeFn& lifetime =
      options_.lifetime != nullptr
          ? *options_.lifetime
          : static_cast<const LifetimeFn&>(exp_lifetime_);
  Time max_dt = horizon_;
  if (ctx.window.has_value()) {
    // Section 7: contributions stop once the tuple leaves the window.
    Time remaining = tuple.arrival + *ctx.window - ctx.now;
    if (remaining < max_dt) max_dt = remaining;
  }
  const auto& partner_preds = predictions_[SideIndex(Partner(tuple.side))];
  double h = 0.0;
  for (Time dt = 1; dt <= max_dt; ++dt) {
    h += partner_preds[static_cast<std::size_t>(dt - 1)].Prob(tuple.value) *
         lifetime.At(dt);
  }
  return h;
}

void HeebJoinPolicy::DirectBatch(const CandidateBatch& batch,
                                 const PolicyContext& ctx, double* out) {
  // BeginStep / ShardBeginStep built and flattened this step's
  // predictions; this may run inside the parallel phase, so it must not
  // rebuild them here.
  SJOIN_CHECK_EQ(flat_time_, ctx.now);
  const bool windowed = ctx.window.has_value();
  const Time w = windowed ? *ctx.window : 0;
  for (std::size_t i = 0; i < batch.size; ++i) {
    if (windowed && ctx.now - batch.arrivals[i] > w) {
      out[i] = 0.0;
      continue;
    }
    Time max_dt = horizon_;
    if (windowed) {
      Time remaining = batch.arrivals[i] + w - ctx.now;
      if (remaining < max_dt) max_dt = remaining;
    }
    const FlatPmfs& fp = flat_predictions_[SideIndex(
        Partner(static_cast<StreamSide>(batch.sides[i])))];
    const Value v = batch.values[i];
    // Same dt-ascending p * L summation as DirectScore; the gather reads
    // the identical doubles Prob() would return (exact 0.0 off-support).
    double h = 0.0;
    for (Time dt = 1; dt <= max_dt; ++dt) {
      const std::size_t k = static_cast<std::size_t>(dt - 1);
      const Value off = v - fp.min[k];
      const double p =
          off >= 0 && off < fp.size[k]
              ? fp.masses[fp.offset[k] + static_cast<std::size_t>(off)]
              : 0.0;
      h += p * lifetime_flat_[k];
    }
    out[i] = h;
  }
}

void HeebJoinPolicy::WalkTableBatch(const CandidateBatch& batch,
                                    const PolicyContext& ctx,
                                    double* out) const {
  // Hoist the per-side table spans and partner anchors out of the lane
  // loop; Score() re-derives the anchor per tuple.
  const double* data[2];
  Value base[2];
  Value size[2];
  for (StreamSide side : {StreamSide::kR, StreamSide::kS}) {
    const int s = SideIndex(side);
    const OffsetTable& table = *walk_table_[s];
    data[s] = table.values().data();
    size[s] = static_cast<Value>(table.values().size());
    StreamSide partner = Partner(side);
    const StreamHistory* partner_history = history(partner, ctx);
    const auto* walk =
        static_cast<const RandomWalkProcess*>(process(partner));
    const Value last = partner_history->empty() ? walk->initial_value()
                                                : partner_history->back();
    // At(v - last) indexes values()[v - last - min_offset]; fold the two
    // subtractions into one per-side base.
    base[s] = last + table.min_offset();
  }
  const bool windowed = ctx.window.has_value();
  const Time w = windowed ? *ctx.window : 0;
  for (std::size_t i = 0; i < batch.size; ++i) {
    if (windowed && ctx.now - batch.arrivals[i] > w) {
      out[i] = 0.0;
      continue;
    }
    const int s = batch.sides[i];
    const Value off = batch.values[i] - base[s];
    out[i] = off >= 0 && off < size[s]
                 ? data[s][static_cast<std::size_t>(off)]
                 : 0.0;
  }
}

void HeebJoinPolicy::ScoreBatchInto(const CandidateBatch& batch,
                                    const PolicyContext& ctx, double* out) {
  switch (options_.mode) {
    case Mode::kDirect:
      DirectBatch(batch, ctx, out);
      return;
    case Mode::kWalkTable:
      WalkTableBatch(batch, ctx, out);
      return;
    case Mode::kTimeIncremental:
    case Mode::kValueIncremental:
      // Find-or-insert state mutation defines the per-candidate order;
      // run the scalar path lane by lane.
      ScoredPolicy::ScoreBatchInto(batch, ctx, out);
      return;
  }
}

double HeebJoinPolicy::ValueIncrementalScore(const Tuple& tuple,
                                             const PolicyContext& ctx) {
  // Find the cached tuple of the same side with the nearest value. The
  // argmin tie-breaks by (distance, value, id): slot storage order differs
  // between the serial and sharded erase paths, so ties must not resolve
  // by scan order.
  const CachedState* nearest = nullptr;
  Value best_distance = 0;
  for (const CachedState& state : slots_) {
    if (state.side != tuple.side) continue;
    Value distance = std::llabs(state.value - tuple.value);
    if (nearest == nullptr || distance < best_distance ||
        (distance == best_distance &&
         (state.value < nearest->value ||
          (state.value == nearest->value && state.id < nearest->id)))) {
      nearest = &state;
      best_distance = distance;
    }
  }
  if (nearest == nullptr) return DirectScore(tuple, ctx);

  const auto* partner_trend = dynamic_cast<const LinearTrendProcess*>(
      process(Partner(tuple.side)));
  Value slope = static_cast<Value>(partner_trend->slope());
  Value diff = nearest->value - tuple.value;
  if (diff % slope != 0) return DirectScore(tuple, ctx);

  // Corollary 5: H_{v,t0} = H_{v',t'} with t' = t0 + (v' - v)/a. Walk the
  // nearest tuple's H from t0 to t' with (inverse) Corollary 3 updates.
  Time t_prime = ctx.now + diff / slope;
  double h = nearest->h;
  double e = std::exp(1.0 / options_.alpha);
  if (t_prime > ctx.now) {
    for (Time t = ctx.now + 1; t <= t_prime; ++t) {
      h = e * h - PartnerProbAt(tuple.side, nearest->value, t, ctx);
      if (h < 0.0) h = 0.0;
    }
  } else {
    for (Time t = ctx.now; t > t_prime; --t) {
      h = (h + PartnerProbAt(tuple.side, nearest->value, t, ctx)) / e;
    }
  }
  return h;
}

double HeebJoinPolicy::Score(const Tuple& tuple, const PolicyContext& ctx) {
  if (ctx.window.has_value() && !InWindow(tuple, ctx.now, ctx.window)) {
    return 0.0;
  }
  switch (options_.mode) {
    case Mode::kDirect:
      return DirectScore(tuple, ctx);
    case Mode::kWalkTable: {
      const StreamHistory* partner_history =
          history(Partner(tuple.side), ctx);
      const auto* walk = static_cast<const RandomWalkProcess*>(
          process(Partner(tuple.side)));
      Value last = partner_history->empty() ? walk->initial_value()
                                            : partner_history->back();
      return walk_table_[SideIndex(tuple.side)]->At(tuple.value - last);
    }
    case Mode::kTimeIncremental:
    case Mode::kValueIncremental: {
      if (const CachedState* state = FindState(tuple.id)) return state->h;
      double h = options_.mode == Mode::kTimeIncremental
                     ? DirectScore(tuple, ctx)
                     : ValueIncrementalScore(tuple, ctx);
      InsertState(tuple, h);
      return h;
    }
  }
  return 0.0;
}

void HeebJoinPolicy::ShardEndStep(const PolicyContext& ctx,
                                  const std::vector<TupleId>& retained,
                                  const std::vector<TupleId>& evicted) {
  (void)ctx;
  (void)retained;
  if (options_.mode != Mode::kTimeIncremental &&
      options_.mode != Mode::kValueIncremental) {
    return;
  }
  // Slot state holds exactly the candidate ids at this point (last step's
  // retained set plus this step's scored arrivals), so erasing the evicted
  // ids leaves precisely the retained ones — the same post-state EndStep
  // reaches by walking every slot against a retained hash set.
  for (TupleId id : evicted) EraseState(id);
}

void HeebJoinPolicy::EndStep(const PolicyContext& ctx,
                             const std::vector<TupleId>& retained) {
  (void)ctx;
  if (options_.mode != Mode::kTimeIncremental &&
      options_.mode != Mode::kValueIncremental) {
    return;
  }
  // Drop state for evicted tuples in place — no per-step rebuild. This
  // also erases entries created for arrivals that were scored but never
  // retained, so they cannot accumulate across steps. EraseState swaps
  // the last slot into the hole, so the swapped-in slot is re-examined
  // before advancing.
  retained_scratch_.clear();
  retained_scratch_.insert(retained.begin(), retained.end());
  for (std::size_t i = 0; i < slots_.size();) {
    if (retained_scratch_.contains(slots_[i].id)) {
      ++i;
    } else {
      EraseState(slots_[i].id);
    }
  }
}

}  // namespace sjoin
