#ifndef SJOIN_CORE_CASE_STUDY_ECBS_H_
#define SJOIN_CORE_CASE_STUDY_ECBS_H_

#include <vector>

#include "sjoin/common/types.h"
#include "sjoin/core/ecb.h"

/// \file
/// Closed-form ECBs for the case studies of Section 5 (and Appendix O).
///
/// The generic tabulation in ecb.h computes these numerically from any
/// process; the classes here are the paper's analytical forms. They are
/// exact (no horizon truncation), cheap to evaluate, and used both by the
/// scenario-specialized optimal policies and by tests that pin the generic
/// machinery against the closed forms.

namespace sjoin {

/// Section 5.1, caching: a single step from 0 to 1 at the tuple's next
/// reference distance. next_reference_in <= 0 means "never referenced
/// again" (ECB identically zero).
class OfflineCachingEcb final : public EcbFn {
 public:
  explicit OfflineCachingEcb(Time next_reference_in)
      : next_reference_in_(next_reference_in) {}

  double At(Time dt) const override {
    if (next_reference_in_ <= 0) return 0.0;
    return dt >= next_reference_in_ ? 1.0 : 0.0;
  }

 private:
  Time next_reference_in_;
};

/// Section 5.1, joining: one unit step per future occurrence of the
/// tuple's value in the partner stream. `occurrences_in` holds the
/// forward distances (>= 1), ascending.
class OfflineJoiningEcb final : public EcbFn {
 public:
  explicit OfflineJoiningEcb(std::vector<Time> occurrences_in);

  double At(Time dt) const override;

 private:
  std::vector<Time> occurrences_in_;
};

/// Section 5.2, joining: B(dt) = p * dt.
class StationaryJoiningEcb final : public EcbFn {
 public:
  explicit StationaryJoiningEcb(double match_probability);

  double At(Time dt) const override {
    return match_probability_ * static_cast<double>(dt);
  }

 private:
  double match_probability_;
};

/// Section 5.2, caching: B(dt) = 1 - (1 - p)^dt.
class StationaryCachingEcb final : public EcbFn {
 public:
  explicit StationaryCachingEcb(double reference_probability);

  double At(Time dt) const override;

 private:
  double reference_probability_;
};

/// Section 5.3 / Appendix O, joining under linear trend f(t) = t0 + dt
/// with bounded uniform noise on [-w, w] in the partner stream: the
/// five-category piecewise-linear ECB of a tuple with value v at current
/// time t0. Covers both R-side (categories R1/R2) and S-side (S1/S2/S3)
/// tuples; which categories apply follows from v - t0 and the two bounds.
class TrendUniformJoiningEcb final : public EcbFn {
 public:
  /// `offset` = v - f(t0) where f is the *partner's* trend; `w` is the
  /// partner's noise half-width.
  TrendUniformJoiningEcb(Value offset, Value w);

  double At(Time dt) const override;

 private:
  Value offset_;
  Value w_;
};

}  // namespace sjoin

#endif  // SJOIN_CORE_CASE_STUDY_ECBS_H_
