#include "sjoin/core/precompute.h"

#include <algorithm>
#include <cmath>

#include "sjoin/common/check.h"

namespace sjoin {

OffsetTable::OffsetTable(Value min_offset, std::vector<double> values)
    : min_offset_(min_offset), values_(std::move(values)) {
  SJOIN_CHECK(!values_.empty());
}

double OffsetTable::At(Value offset) const {
  if (offset < min_offset_) return 0.0;
  std::size_t index = static_cast<std::size_t>(offset - min_offset_);
  if (index >= values_.size()) return 0.0;
  return values_[index];
}

OffsetTable PrecomputeWalkJoinHeeb(const RandomWalkProcess& partner,
                                   const LifetimeFn& lifetime, Time horizon) {
  SJOIN_CHECK_GE(horizon, 1);
  // The widest support is the horizon-fold convolution.
  const DiscreteDistribution& widest = partner.StepSum(horizon);
  Value min_offset = widest.MinValue();
  Value max_offset = widest.MaxValue();
  std::vector<double> values(
      static_cast<std::size_t>(max_offset - min_offset + 1), 0.0);
  for (Time dt = 1; dt <= horizon; ++dt) {
    const DiscreteDistribution& sum = partner.StepSum(dt);
    double l = lifetime.At(dt);
    for (Value d = sum.MinValue(); d <= sum.MaxValue(); ++d) {
      values[static_cast<std::size_t>(d - min_offset)] += sum.Prob(d) * l;
    }
  }
  return OffsetTable(min_offset, std::move(values));
}

OffsetTable PrecomputeWalkCachingHeeb(const RandomWalkProcess& reference,
                                      const LifetimeFn& lifetime,
                                      Time horizon, Value max_abs_offset) {
  SJOIN_CHECK_GE(horizon, 1);
  SJOIN_CHECK_GE(max_abs_offset, 0);
  const DiscreteDistribution& step = reference.step();
  std::vector<double> result(
      static_cast<std::size_t>(2 * max_abs_offset + 1), 0.0);

  // Absorbing DP per target offset d: propagate the offset distribution,
  // harvesting (and removing) the mass that lands on d each step.
  for (Value d = -max_abs_offset; d <= max_abs_offset; ++d) {
    // dist[i] = Pr{offset == lo + i and d not yet visited}.
    Value lo = 0;
    std::vector<double> dist = {1.0};
    double h = 0.0;
    for (Time dt = 1; dt <= horizon; ++dt) {
      // Convolve with the step distribution.
      Value new_lo = lo + step.MinValue();
      std::size_t new_size =
          dist.size() + static_cast<std::size_t>(step.MaxValue() -
                                                 step.MinValue());
      std::vector<double> next(new_size, 0.0);
      for (std::size_t i = 0; i < dist.size(); ++i) {
        if (dist[i] == 0.0) continue;
        for (Value sv = step.MinValue(); sv <= step.MaxValue(); ++sv) {
          next[i + static_cast<std::size_t>(sv - step.MinValue())] +=
              dist[i] * step.Prob(sv);
        }
      }
      lo = new_lo;
      dist = std::move(next);
      // Absorb the mass that first reaches offset d now.
      if (d >= lo && d < lo + static_cast<Value>(dist.size())) {
        std::size_t di = static_cast<std::size_t>(d - lo);
        h += dist[di] * lifetime.At(dt);
        dist[di] = 0.0;
      }
    }
    result[static_cast<std::size_t>(d + max_abs_offset)] = h;
  }
  return OffsetTable(-max_abs_offset, std::move(result));
}

StepSampler MakeAr1StepSampler(const Ar1Process& process) {
  double phi0 = process.phi0();
  double phi1 = process.phi1();
  double sigma = process.sigma();
  return [phi0, phi1, sigma](Value last, Rng& rng) {
    double next =
        phi0 + phi1 * static_cast<double>(last) + sigma * rng.StandardNormal();
    return static_cast<Value>(std::llround(next));
  };
}

StepSampler MakeWalkStepSampler(const RandomWalkProcess& process) {
  DiscreteDistribution step = process.step();
  return [step](Value last, Rng& rng) { return last + step.Sample(rng); };
}

HeebSurfaceTable::HeebSurfaceTable(Value v_min, Value v_max, Value x_min,
                                   Value x_step,
                                   std::vector<std::vector<double>> columns)
    : v_min_(v_min), v_max_(v_max), x_min_(x_min), x_step_(x_step),
      columns_(std::move(columns)) {
  SJOIN_CHECK_LE(v_min_, v_max_);
  SJOIN_CHECK_GT(x_step_, 0);
  SJOIN_CHECK_GE(columns_.size(), 1u);
  for (const auto& column : columns_) {
    SJOIN_CHECK_EQ(column.size(),
                   static_cast<std::size_t>(v_max_ - v_min_ + 1));
  }
}

double HeebSurfaceTable::At(Value v, Value x) const {
  if (v < v_min_ || v > v_max_) return 0.0;
  std::size_t row = static_cast<std::size_t>(v - v_min_);
  double pos = static_cast<double>(x - x_min_) / static_cast<double>(x_step_);
  pos = std::clamp(pos, 0.0, static_cast<double>(columns_.size() - 1));
  std::size_t left = static_cast<std::size_t>(std::floor(pos));
  if (left >= columns_.size() - 1) return columns_.back()[row];
  double frac = pos - static_cast<double>(left);
  return (1.0 - frac) * columns_[left][row] +
         frac * columns_[left + 1][row];
}

std::vector<double> MonteCarloCachingHeebColumn(
    const StepSampler& sampler, Value start, Value v_min, Value v_max,
    const LifetimeFn& lifetime, Time horizon, int paths, Rng& rng) {
  SJOIN_CHECK_LE(v_min, v_max);
  SJOIN_CHECK_GE(paths, 1);
  SJOIN_CHECK_GE(horizon, 1);
  std::size_t domain = static_cast<std::size_t>(v_max - v_min + 1);
  std::vector<double> accum(domain, 0.0);
  // Generation-stamped visited flags avoid re-clearing per path.
  std::vector<int> visited_gen(domain, -1);
  // Precompute L(Δt) once.
  std::vector<double> l(static_cast<std::size_t>(horizon) + 1, 0.0);
  for (Time dt = 1; dt <= horizon; ++dt) {
    l[static_cast<std::size_t>(dt)] = lifetime.At(dt);
  }
  for (int path = 0; path < paths; ++path) {
    Value current = start;
    for (Time dt = 1; dt <= horizon; ++dt) {
      current = sampler(current, rng);
      if (current < v_min || current > v_max) continue;
      std::size_t index = static_cast<std::size_t>(current - v_min);
      if (visited_gen[index] == path) continue;
      visited_gen[index] = path;
      accum[index] += l[static_cast<std::size_t>(dt)];
    }
  }
  for (double& a : accum) a /= static_cast<double>(paths);
  return accum;
}

HeebSurfaceTable PrecomputeAr1CachingSurface(const Ar1Process& reference,
                                             const LifetimeFn& lifetime,
                                             Time horizon, Value v_min,
                                             Value v_max, Value x_min,
                                             Value x_max, Value x_step,
                                             int paths, std::uint64_t seed) {
  SJOIN_CHECK_LE(x_min, x_max);
  SJOIN_CHECK_GT(x_step, 0);
  StepSampler sampler = MakeAr1StepSampler(reference);
  Rng rng(seed);
  std::vector<std::vector<double>> columns;
  for (Value x = x_min; x <= x_max; x += x_step) {
    columns.push_back(MonteCarloCachingHeebColumn(
        sampler, x, v_min, v_max, lifetime, horizon, paths, rng));
  }
  return HeebSurfaceTable(v_min, v_max, x_min, x_step, std::move(columns));
}

BicubicSurface ApproximateSurfaceBicubic(const HeebSurfaceTable& table,
                                         int nx, int ny) {
  SJOIN_CHECK_GE(nx, 2);
  SJOIN_CHECK_GE(ny, 2);
  // x axis of the bicubic = tuple value v; y axis = current value x_t0.
  double v0 = static_cast<double>(table.v_min());
  double v_span = static_cast<double>(table.v_max() - table.v_min());
  double x0 = static_cast<double>(table.x_min());
  double x_span = static_cast<double>(table.x_step()) *
                  static_cast<double>(table.num_columns() - 1);
  double dv = v_span / static_cast<double>(nx - 1);
  double dx = x_span / static_cast<double>(ny - 1);
  std::vector<double> control;
  control.reserve(static_cast<std::size_t>(nx) *
                  static_cast<std::size_t>(ny));
  for (int i = 0; i < nx; ++i) {
    Value v = static_cast<Value>(
        std::llround(v0 + dv * static_cast<double>(i)));
    for (int j = 0; j < ny; ++j) {
      Value x = static_cast<Value>(
          std::llround(x0 + dx * static_cast<double>(j)));
      control.push_back(table.At(v, x));
    }
  }
  return BicubicSurface(v0, dv, nx, x0, dx, ny, std::move(control));
}

}  // namespace sjoin
