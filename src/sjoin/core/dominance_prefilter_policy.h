#ifndef SJOIN_CORE_DOMINANCE_PREFILTER_POLICY_H_
#define SJOIN_CORE_DOMINANCE_PREFILTER_POLICY_H_

#include <cstdint>

#include "sjoin/engine/replacement_policy.h"
#include "sjoin/stochastic/process.h"

/// \file
/// Corollary 2 as a runnable policy: before consulting a heuristic, test
/// whether the tuples to be discarded can be chosen as a *dominated
/// subset* of the candidates — in which case the choice is provably
/// optimal and no heuristic is needed. Only when the ECBs are too
/// entangled does the fallback heuristic decide.
///
/// The exposed counters measure how often dominance alone settles the
/// decision in a given scenario (Section 5 predicts: always, for offline /
/// stationary / right-bounded-trend caching; often not, for crossing-ECB
/// scenarios like TOWER or drifting walks).

namespace sjoin {

/// Dominance-first replacement policy for the joining problem.
class DominancePrefilterPolicy final : public ReplacementPolicy {
 public:
  struct Options {
    /// Horizon over which ECBs are tabulated and compared.
    Time horizon = 60;
  };

  /// Wraps `fallback` (not owned, must outlive this policy). Processes are
  /// the stream models used to tabulate ECBs. The fallback is only invoked
  /// on steps dominance cannot settle, so it must not rely on seeing every
  /// step (use HEEB in kDirect mode or another stateless policy, not the
  /// incremental modes).
  DominancePrefilterPolicy(const StochasticProcess* r_process,
                           const StochasticProcess* s_process,
                           ReplacementPolicy* fallback, Options options);

  void Reset() override;

  std::vector<TupleId> SelectRetained(const PolicyContext& ctx) override;

  const char* name() const override { return "DOMINANCE+FALLBACK"; }

  /// Decisions fully resolved by a dominated subset / total decisions.
  std::int64_t decisions_by_dominance() const {
    return decisions_by_dominance_;
  }
  std::int64_t total_decisions() const { return total_decisions_; }

 private:
  const StochasticProcess* r_process_;
  const StochasticProcess* s_process_;
  ReplacementPolicy* fallback_;
  Options options_;
  std::int64_t decisions_by_dominance_ = 0;
  std::int64_t total_decisions_ = 0;
};

}  // namespace sjoin

#endif  // SJOIN_CORE_DOMINANCE_PREFILTER_POLICY_H_
