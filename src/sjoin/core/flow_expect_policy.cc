#include "sjoin/core/flow_expect_policy.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "sjoin/common/check.h"
#include "sjoin/core/dominance.h"
#include "sjoin/core/model_repo.h"

namespace sjoin {

FlowExpectPolicy::FlowExpectPolicy(const StochasticProcess* r_process,
                                   const StochasticProcess* s_process,
                                   Options options)
    : r_process_(r_process), s_process_(s_process), options_(options) {
  SJOIN_CHECK(r_process != nullptr && s_process != nullptr);
  SJOIN_CHECK_GE(options_.lookahead, 1);
}

void FlowExpectPolicy::Reset() { templates_.clear(); }

void FlowExpectPolicy::ComputePredictions(const PolicyContext& ctx) {
  // Predictive pmfs pred_[side][j] for X^side_{t0+j}, j = 1..l, written
  // into retained buffers (PredictInto is bit-identical to Predict).
  Time t0 = ctx.now;
  Time l = options_.lookahead;
  for (StreamSide side : {StreamSide::kR, StreamSide::kS}) {
    const StochasticProcess* process =
        side == StreamSide::kR ? r_process_ : s_process_;
    const StreamHistory* history =
        side == StreamSide::kR ? ctx.history_r : ctx.history_s;
    auto& out = pred_[SideIndex(side)];
    out.resize(static_cast<std::size_t>(l) + 1);
    for (Time j = 1; j <= l; ++j) {
      process->PredictInto(*history, t0 + j,
                           &out[static_cast<std::size_t>(j)]);
    }
  }
}

void FlowExpectPolicy::ComputeBenefits(const PolicyContext& ctx) {
  // benefits_[c*l + j]: expected benefit of keeping candidate c through
  // time t0+j+1 — the (negated) cost of its slice-j horizontal arc.
  Time t0 = ctx.now;
  Time l = options_.lookahead;
  benefits_.resize(candidates_.size() * static_cast<std::size_t>(l));
  for (std::size_t c = 0; c < candidates_.size(); ++c) {
    const Tuple& tuple = candidates_[c];
    const auto& partner = pred_[SideIndex(Partner(tuple.side))];
    for (Time j = 0; j < l; ++j) {
      double p = partner[static_cast<std::size_t>(j + 1)].Prob(tuple.value);
      if (ctx.window.has_value() &&
          (t0 + j + 1) - tuple.arrival > *ctx.window) {
        p = 0.0;  // Sliding-window semantics: expired tuples join nothing.
      }
      benefits_[c * static_cast<std::size_t>(l) +
                static_cast<std::size_t>(j)] = p;
    }
  }
}

void FlowExpectPolicy::PruneDominated(const PolicyContext& ctx) {
  // Theorem 3 over the lookahead horizon: a candidate whose cumulative
  // benefit curve B_c(m) = sum_{j<m} benefits_[c][j] is dominated by every
  // retained candidate's curve can be discarded without changing the
  // optimal flow cost. FindDominatedSubset guarantees exactly that shape
  // of discard set, and chains in the slice graph are interchangeable
  // (entered only at the source, identical hand-off arcs), so any flow
  // unit on a discarded chain moves to an unused dominating chain with no
  // benefit loss.
  const Time l = options_.lookahead;
  const std::size_t n_c = candidates_.size();
  const std::size_t max_discard = n_c - ctx.capacity;
  curves_.clear();
  curves_.reserve(n_c);
  for (std::size_t c = 0; c < n_c; ++c) {
    std::vector<double> cumulative(static_cast<std::size_t>(l));
    double sum = 0.0;
    for (Time j = 0; j < l; ++j) {
      sum += benefits_[c * static_cast<std::size_t>(l) +
                       static_cast<std::size_t>(j)];
      cumulative[static_cast<std::size_t>(j)] = sum;
    }
    curves_.emplace_back(std::move(cumulative));
  }
  curve_ptrs_.clear();
  curve_ptrs_.reserve(n_c);
  for (const TabulatedEcb& curve : curves_) curve_ptrs_.push_back(&curve);
  std::vector<std::size_t> dominated =
      FindDominatedSubset(curve_ptrs_, max_discard, l);
  if (dominated.empty()) return;

  // Compact candidates_ and their benefit rows (dominated is ascending).
  std::size_t next_dominated = 0;
  std::size_t write = 0;
  for (std::size_t c = 0; c < n_c; ++c) {
    if (next_dominated < dominated.size() && dominated[next_dominated] == c) {
      ++next_dominated;
      continue;
    }
    if (write != c) {
      candidates_[write] = candidates_[c];
      for (Time j = 0; j < l; ++j) {
        benefits_[write * static_cast<std::size_t>(l) +
                  static_cast<std::size_t>(j)] =
            benefits_[c * static_cast<std::size_t>(l) +
                      static_cast<std::size_t>(j)];
      }
    }
    ++write;
  }
  candidates_.resize(write);
  benefits_.resize(write * static_cast<std::size_t>(l));
}

namespace {

// Builds the skeleton slice graph for one (lookahead, candidate count)
// shape. Invoked through the ModelRepo, so the build runs once per shape
// process-wide no matter how many policies (sessions) use it.
FlowSliceSkeleton BuildFlowSliceSkeleton(Time l, int n_c) {
  FlowSliceSkeleton tpl;

  // Node and arc insertion order must exactly mirror the naive oracle's
  // cold build: adjacency order decides tie-breaks inside the solver.
  FlowGraph& graph = tpl.graph;
  NodeId source = graph.AddNode();
  NodeId sink = graph.AddNode();
  std::vector<NodeId> slice_base(static_cast<std::size_t>(l));
  for (Time j = 0; j < l; ++j) {
    slice_base[static_cast<std::size_t>(j)] =
        graph.AddNodes(n_c + 2 * static_cast<int>(j));
  }
  auto det_node = [&](Time j, int c) {
    return slice_base[static_cast<std::size_t>(j)] + static_cast<NodeId>(c);
  };
  auto undet_node = [&](Time j, Time j_arrived, StreamSide side) {
    return slice_base[static_cast<std::size_t>(j)] +
           static_cast<NodeId>(n_c) +
           static_cast<NodeId>(2 * (j_arrived - 1)) +
           static_cast<NodeId>(SideIndex(side));
  };

  tpl.source_arcs.reserve(static_cast<std::size_t>(n_c));
  for (int c = 0; c < n_c; ++c) {
    tpl.source_arcs.push_back(graph.AddArc(source, det_node(0, c), 1, 0.0));
  }

  // Benefit arcs get placeholder costs; SelectRetained rewrites them every
  // step before solving.
  for (Time j = 0; j < l; ++j) {
    bool last_slice = (j == l - 1);
    for (int c = 0; c < n_c; ++c) {
      NodeId from = det_node(j, c);
      NodeId to = last_slice ? sink : det_node(j + 1, c);
      tpl.det_arcs.push_back({from, graph.AddArc(from, to, 1, 0.0)});
    }
    for (Time j_arrived = 1; j_arrived <= j; ++j_arrived) {
      for (StreamSide side : {StreamSide::kR, StreamSide::kS}) {
        NodeId from = undet_node(j, j_arrived, side);
        NodeId to = last_slice ? sink : undet_node(j + 1, j_arrived, side);
        tpl.undet_arcs.push_back({from, graph.AddArc(from, to, 1, 0.0)});
      }
    }
    // Non-horizontal arcs within slice j (j >= 1): every duplicate node may
    // hand its slot to one of the two tuples arriving at t0+j. Costs are
    // always zero, so no handles are kept.
    if (j >= 1) {
      for (StreamSide new_side : {StreamSide::kR, StreamSide::kS}) {
        NodeId new_node = undet_node(j, j, new_side);
        for (int c = 0; c < n_c; ++c) {
          graph.AddArc(det_node(j, c), new_node, 1, 0.0);
        }
        for (Time j_arrived = 1; j_arrived < j; ++j_arrived) {
          for (StreamSide side : {StreamSide::kR, StreamSide::kS}) {
            graph.AddArc(undet_node(j, j_arrived, side), new_node, 1, 0.0);
          }
        }
      }
    }
  }
  return tpl;
}

}  // namespace

FlowExpectPolicy::GraphTemplate& FlowExpectPolicy::TemplateFor(int n_c) {
  std::unique_ptr<GraphTemplate>& slot = templates_[n_c];
  if (slot != nullptr) return *slot;
  slot = std::make_unique<GraphTemplate>();
  GraphTemplate& tpl = *slot;
  Time l = options_.lookahead;
  ModelRepo& repo =
      options_.repo != nullptr ? *options_.repo : ModelRepo::Global();
  char key[64];
  std::snprintf(key, sizeof(key), "flow-slice|l=%lld|nc=%d",
                static_cast<long long>(l), n_c);
  tpl.skeleton =
      repo.FlowSkeletonFor(key, [&] { return BuildFlowSliceSkeleton(l, n_c); });
  // Private working copy: SelectRetained rewrites its costs/capacities in
  // place every step, while the skeleton stays immutable and shared.
  tpl.graph = tpl.skeleton->graph;
  return tpl;
}

std::vector<TupleId> FlowExpectPolicy::SelectRetained(
    const PolicyContext& ctx) {
  // Candidate tuples: cache contents plus the two arrivals (all determined
  // nodes of the first slice).
  candidates_.clear();
  candidates_.reserve(ctx.cached->size() + ctx.arrivals->size());
  for (const Tuple& t : *ctx.cached) candidates_.push_back(t);
  for (const Tuple& t : *ctx.arrivals) candidates_.push_back(t);
  if (candidates_.size() <= ctx.capacity) {
    std::vector<TupleId> all;
    all.reserve(candidates_.size());
    for (const Tuple& t : candidates_) all.push_back(t.id);
    return all;
  }

  Time l = options_.lookahead;
  ComputePredictions(ctx);
  ComputeBenefits(ctx);

  if (options_.dominance_prune) {
    PruneDominated(ctx);
    if (candidates_.size() <= ctx.capacity) {
      std::vector<TupleId> all;
      all.reserve(candidates_.size());
      for (const Tuple& t : candidates_) all.push_back(t.id);
      return all;
    }
  }

  const int n_c = static_cast<int>(candidates_.size());
  GraphTemplate& tpl = TemplateFor(n_c);
  tpl.graph.ResetUnitCapacities();

  // Expected benefit of an undetermined node (side, arrival offset
  // j_arrived) kept through t0+j+1.
  auto undet_benefit = [&](StreamSide side, Time j_arrived, Time j) {
    if (ctx.window.has_value() && (j + 1) - j_arrived > *ctx.window) {
      return 0.0;
    }
    const auto& own = pred_[SideIndex(side)];
    const auto& partner = pred_[SideIndex(Partner(side))];
    return own[static_cast<std::size_t>(j_arrived)].OverlapProb(
        partner[static_cast<std::size_t>(j + 1)]);
  };

  // Rewrite benefit-arc costs in the same slice-major order the handles
  // were recorded in.
  std::size_t det_next = 0;
  std::size_t undet_next = 0;
  for (Time j = 0; j < l; ++j) {
    for (int c = 0; c < n_c; ++c, ++det_next) {
      const FlowSliceSkeleton::ArcRef& ref = tpl.skeleton->det_arcs[det_next];
      tpl.graph.SetArcCost(
          ref.from, ref.index,
          -benefits_[static_cast<std::size_t>(c) *
                         static_cast<std::size_t>(l) +
                     static_cast<std::size_t>(j)]);
    }
    for (Time j_arrived = 1; j_arrived <= j; ++j_arrived) {
      for (StreamSide side : {StreamSide::kR, StreamSide::kS}) {
        const FlowSliceSkeleton::ArcRef& ref =
            tpl.skeleton->undet_arcs[undet_next++];
        tpl.graph.SetArcCost(ref.from, ref.index,
                             -undet_benefit(side, j_arrived, j));
      }
    }
  }

  NodeId source = 0;
  NodeId sink = 1;
  std::int64_t target = static_cast<std::int64_t>(ctx.capacity);
  MinCostFlowSolver::SolveOptions solve_options;
  solve_options.topology_unchanged = tpl.solved_before;
  MinCostFlowResult result =
      tpl.solver.Solve(tpl.graph, source, sink, target, solve_options);
  tpl.solved_before = true;
  SJOIN_CHECK_EQ(result.flow, target);

  // The decision at t0: candidates whose source arc carries flow stay.
  std::vector<TupleId> retained;
  retained.reserve(ctx.capacity);
  for (int c = 0; c < n_c; ++c) {
    if (tpl.graph.FlowOn(
            source, tpl.skeleton->source_arcs[static_cast<std::size_t>(c)]) >
        0) {
      retained.push_back(candidates_[static_cast<std::size_t>(c)].id);
    }
  }
  return retained;
}

}  // namespace sjoin
