#ifndef SJOIN_CORE_PRECOMPUTE_H_
#define SJOIN_CORE_PRECOMPUTE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sjoin/approx/bicubic_surface.h"
#include "sjoin/common/rng.h"
#include "sjoin/common/types.h"
#include "sjoin/core/lifetime_fn.h"
#include "sjoin/stochastic/ar1_process.h"
#include "sjoin/stochastic/random_walk_process.h"

/// \file
/// Precomputation of HEEB functions (Section 4.4.3 / Theorem 5).
///
/// For streams of the form X_t = phi0 + phi1 X_{t-1} + Y_t, H_x is a
/// time-independent function of (v_x, x_t0) — a surface h2 — and for
/// phi1 = 1 (random walk with drift) a function of v_x - x_t0 alone — a
/// curve h1. These can be computed offline once and evaluated cheaply at
/// runtime; the paper stores a compact bicubic approximation of h2
/// (Figures 15-16) and plots h1 for several drifts (Figure 6).

namespace sjoin {

/// A function of the integer offset d = v_x - x_t0, tabulated over a
/// contiguous range; evaluates to 0 outside it.
class OffsetTable {
 public:
  OffsetTable(Value min_offset, std::vector<double> values);

  double At(Value offset) const;

  Value min_offset() const { return min_offset_; }
  Value max_offset() const {
    return min_offset_ + static_cast<Value>(values_.size()) - 1;
  }
  const std::vector<double>& values() const { return values_; }

 private:
  Value min_offset_;
  std::vector<double> values_;
};

/// h1 for the *joining* problem against a random-walk partner:
/// h1(d) = Σ_{Δt=1..horizon} Pr{walk moves by exactly d in Δt steps} L(Δt).
/// (Theorem 5(2) with the joining HEEB form.)
OffsetTable PrecomputeWalkJoinHeeb(const RandomWalkProcess& partner,
                                   const LifetimeFn& lifetime, Time horizon);

/// h1 for the *caching* problem with a random-walk reference stream:
/// h1(d) = Σ_{Δt} Pr{first passage through offset d at step Δt} L(Δt),
/// computed by exact absorbing dynamic programming over the step
/// distribution. Tabulated for |d| <= max_abs_offset. (Figure 6.)
OffsetTable PrecomputeWalkCachingHeeb(const RandomWalkProcess& reference,
                                      const LifetimeFn& lifetime,
                                      Time horizon, Value max_abs_offset);

/// One-step sampler of a history-dependent process: next value given the
/// last. Used by the Monte Carlo first-passage estimator below.
using StepSampler = std::function<Value(Value last, Rng& rng)>;

/// Fast step samplers for the two history-dependent models.
StepSampler MakeAr1StepSampler(const Ar1Process& process);
StepSampler MakeWalkStepSampler(const RandomWalkProcess& process);

/// The caching-HEEB surface h2 tabulated over columns of current value x
/// (spaced x_step apart) by rows of tuple value v. Evaluation is exact in
/// v and linear between x columns.
class HeebSurfaceTable {
 public:
  HeebSurfaceTable(Value v_min, Value v_max, Value x_min, Value x_step,
                   std::vector<std::vector<double>> columns);

  /// h2(v, x); clamps x to the column range, returns 0 for v outside
  /// [v_min, v_max].
  double At(Value v, Value x) const;

  Value v_min() const { return v_min_; }
  Value v_max() const { return v_max_; }
  Value x_min() const { return x_min_; }
  Value x_step() const { return x_step_; }
  std::size_t num_columns() const { return columns_.size(); }
  const std::vector<double>& column(std::size_t i) const {
    return columns_[i];
  }

 private:
  Value v_min_;
  Value v_max_;
  Value x_min_;
  Value x_step_;
  std::vector<std::vector<double>> columns_;
};

/// Monte Carlo estimate of one surface column: from current value x,
/// simulate `paths` trajectories of `horizon` steps and average L(first
/// hit time of v) per v. Deterministic in `rng`'s state.
std::vector<double> MonteCarloCachingHeebColumn(
    const StepSampler& sampler, Value start, Value v_min, Value v_max,
    const LifetimeFn& lifetime, Time horizon, int paths, Rng& rng);

/// Precomputes the full caching-HEEB surface for an AR(1) reference stream
/// (the REAL experiment). Columns at x = x_min, x_min + x_step, ..., up to
/// x_max.
HeebSurfaceTable PrecomputeAr1CachingSurface(const Ar1Process& reference,
                                             const LifetimeFn& lifetime,
                                             Time horizon, Value v_min,
                                             Value v_max, Value x_min,
                                             Value x_max, Value x_step,
                                             int paths, std::uint64_t seed);

/// Compresses a surface table into a bicubic approximation with nx-by-ny
/// control points spanning its domain (the paper uses 5x5 = 25 control
/// points, Figure 16).
BicubicSurface ApproximateSurfaceBicubic(const HeebSurfaceTable& table,
                                         int nx, int ny);

}  // namespace sjoin

#endif  // SJOIN_CORE_PRECOMPUTE_H_
