#ifndef SJOIN_CORE_TABLE_IO_H_
#define SJOIN_CORE_TABLE_IO_H_

#include <optional>
#include <string>

#include "sjoin/core/precompute.h"

/// \file
/// Serialization of precomputed HEEB tables.
///
/// The point of Theorem 5's precomputation is to do the expensive work
/// offline "and store a compact, approximate representation online". These
/// helpers persist the h1 offset tables and h2 surface tables to a simple
/// line-oriented text format so a deployment can compute them once per
/// stream model and ship them to the online system.
///
/// Format (h1):   sjoin-offset-table-v1\n min_offset n\n v0 v1 ... vn-1\n
/// Format (h2):   sjoin-surface-table-v1\n v_min v_max x_min x_step ncols\n
///                one line of (v_max - v_min + 1) values per column.

namespace sjoin {

/// Writes `table` to `path`. Returns false on I/O failure.
bool SaveOffsetTable(const OffsetTable& table, const std::string& path);

/// Reads an offset table; nullopt on I/O or format errors.
std::optional<OffsetTable> LoadOffsetTable(const std::string& path);

/// Writes `table` to `path`. Returns false on I/O failure.
bool SaveSurfaceTable(const HeebSurfaceTable& table,
                      const std::string& path);

/// Reads a surface table; nullopt on I/O or format errors.
std::optional<HeebSurfaceTable> LoadSurfaceTable(const std::string& path);

}  // namespace sjoin

#endif  // SJOIN_CORE_TABLE_IO_H_
