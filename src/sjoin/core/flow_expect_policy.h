#ifndef SJOIN_CORE_FLOW_EXPECT_POLICY_H_
#define SJOIN_CORE_FLOW_EXPECT_POLICY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "sjoin/core/ecb.h"
#include "sjoin/engine/replacement_policy.h"
#include "sjoin/flow/flow_graph.h"
#include "sjoin/flow/min_cost_flow.h"
#include "sjoin/stochastic/discrete_distribution.h"
#include "sjoin/stochastic/process.h"

/// \file
/// FlowExpect (Section 3): at every step, build the slice graph of all
/// predetermined replacement-decision sequences over a look-ahead of l
/// steps, with arc costs equal to negated *expected* benefits, solve the
/// min-cost flow of size k, and follow the decision the optimal flow makes
/// at the current time.
///
/// FlowExpect is expensive — Theta((k+l) l) nodes per step — and, as the
/// paper shows with a counter-example (Section 3.4), not optimal even for
/// unbounded l, because min-cost flow cannot represent strategies whose
/// future decisions depend on values observed later. It remains a strong
/// yardstick for heuristics.
///
/// This implementation keeps the per-step decision allocation-free once
/// warm: the slice graph for a fixed (candidate count, lookahead) shape is
/// built once and only its benefit-arc costs are rewritten each step, a
/// persistent MinCostFlowSolver reuses its workspaces and cached
/// topological order, predictions go through PredictInto, and an optional
/// Theorem 3 dominance prefilter shrinks (often eliminates) the solve.
/// Every fast path is differentially tested against the naive
/// rebuild-everything oracle in src/sjoin/testing/naive_flow_expect.h —
/// retained sets must match bit-for-bit, tie-breaks included.

namespace sjoin {

class ModelRepo;
struct FlowSliceSkeleton;

/// Online look-ahead policy via expected-cost min-cost flow.
class FlowExpectPolicy final : public ReplacementPolicy {
 public:
  struct Options {
    /// Look-ahead distance l >= 1 (benefits are counted at t0+1..t0+l).
    Time lookahead = 5;
    /// Theorem 3 prefilter: discard candidates whose cumulative expected
    /// benefit curve over the lookahead is dominated by every other
    /// candidate's before building the slice graph. An exchange argument
    /// shows the pruned optimum equals the full optimum (each discarded
    /// chain's flow can be moved to an unused dominating chain at no
    /// extra cost); when enough candidates are dominated the flow solve
    /// disappears entirely. The differential suite compares both settings
    /// against the oracle.
    bool dominance_prune = true;
    /// The repo slice-graph skeletons are borrowed from (not owned);
    /// nullptr = ModelRepo::Global(). Skeletons depend only on
    /// (lookahead, candidate count), so every FlowExpect policy in the
    /// process shares one build per shape; each policy keeps a private
    /// working copy of the graph, whose costs it rewrites per step.
    ModelRepo* repo = nullptr;
  };

  /// Processes are not owned and must outlive the policy.
  FlowExpectPolicy(const StochasticProcess* r_process,
                   const StochasticProcess* s_process, Options options);

  std::vector<TupleId> SelectRetained(const PolicyContext& ctx) override;

  /// Drops the cached graph templates (they carry no numeric state, so
  /// this only affects memory, never decisions).
  void Reset() override;

  const char* name() const override { return "FLOWEXPECT"; }

 private:
  /// Working state over one shared slice-graph skeleton (one candidate
  /// count): the skeleton — nodes, arcs, and the arc handles — is built
  /// once process-wide in the ModelRepo; this policy's private `graph`
  /// copy has its capacities reset and benefit-arc costs rewritten in
  /// place each step. The per-template solver caches the graph's
  /// topological order across steps.
  struct GraphTemplate {
    std::shared_ptr<const FlowSliceSkeleton> skeleton;
    FlowGraph graph;  // Mutable copy of skeleton->graph.
    MinCostFlowSolver solver;
    bool solved_before = false;
  };

  void ComputePredictions(const PolicyContext& ctx);
  void ComputeBenefits(const PolicyContext& ctx);
  void PruneDominated(const PolicyContext& ctx);
  GraphTemplate& TemplateFor(int n_c);

  const StochasticProcess* r_process_;
  const StochasticProcess* s_process_;
  Options options_;

  // Per-step buffers, reused across calls.
  std::vector<Tuple> candidates_;
  std::vector<DiscreteDistribution> pred_[2];
  std::vector<double> benefits_;  // benefits_[c * lookahead + j].
  std::vector<TabulatedEcb> curves_;
  std::vector<const EcbFn*> curve_ptrs_;
  std::map<int, std::unique_ptr<GraphTemplate>> templates_;
};

}  // namespace sjoin

#endif  // SJOIN_CORE_FLOW_EXPECT_POLICY_H_
