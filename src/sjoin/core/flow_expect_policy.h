#ifndef SJOIN_CORE_FLOW_EXPECT_POLICY_H_
#define SJOIN_CORE_FLOW_EXPECT_POLICY_H_

#include <vector>

#include "sjoin/engine/replacement_policy.h"
#include "sjoin/stochastic/process.h"

/// \file
/// FlowExpect (Section 3): at every step, build the slice graph of all
/// predetermined replacement-decision sequences over a look-ahead of l
/// steps, with arc costs equal to negated *expected* benefits, solve the
/// min-cost flow of size k, and follow the decision the optimal flow makes
/// at the current time.
///
/// FlowExpect is expensive — Theta((k+l) l) nodes per step — and, as the
/// paper shows with a counter-example (Section 3.4), not optimal even for
/// unbounded l, because min-cost flow cannot represent strategies whose
/// future decisions depend on values observed later. It remains a strong
/// yardstick for heuristics.

namespace sjoin {

/// Online look-ahead policy via expected-cost min-cost flow.
class FlowExpectPolicy final : public ReplacementPolicy {
 public:
  struct Options {
    /// Look-ahead distance l >= 1 (benefits are counted at t0+1..t0+l).
    Time lookahead = 5;
  };

  /// Processes are not owned and must outlive the policy.
  FlowExpectPolicy(const StochasticProcess* r_process,
                   const StochasticProcess* s_process, Options options);

  std::vector<TupleId> SelectRetained(const PolicyContext& ctx) override;

  const char* name() const override { return "FLOWEXPECT"; }

 private:
  const StochasticProcess* r_process_;
  const StochasticProcess* s_process_;
  Options options_;
};

}  // namespace sjoin

#endif  // SJOIN_CORE_FLOW_EXPECT_POLICY_H_
