#ifndef SJOIN_CORE_LIFETIME_FN_H_
#define SJOIN_CORE_LIFETIME_FN_H_

#include <memory>

#include "sjoin/common/types.h"

/// \file
/// Lifetime estimators L_x(Δt) for HEEB (Section 4.3).
///
/// L_x(Δt) estimates the probability that a cached tuple x is still cached
/// Δt steps from now. A good choice satisfies the five properties of
/// Section 4.3 (values in [0,1], non-increasing, summable enough for H_x
/// to converge, dominance-monotone, non-trivial). The paper's instances:
///
///   L_fixed  = 1 for Δt <= ΔT, else 0   -> H = B(ΔT)
///   L_inf    = 1 (caching only)         -> H = lim B(Δt)
///   L_inv    = 1/Δt (caching only)      -> expected inverse waiting time
///   L_exp    = e^{-Δt/α}                -> the paper's choice; enables
///                                          incremental computation.

namespace sjoin {

/// Estimated probability of remaining cached Δt steps from now.
class LifetimeFn {
 public:
  virtual ~LifetimeFn() = default;

  /// L(Δt) for Δt >= 1.
  virtual double At(Time dt) const = 0;
};

/// L_fixed: all tuples assumed replaced exactly after ΔT steps.
class FixedLifetime final : public LifetimeFn {
 public:
  explicit FixedLifetime(Time delta_t) : delta_t_(delta_t) {}
  double At(Time dt) const override { return dt <= delta_t_ ? 1.0 : 0.0; }

 private:
  Time delta_t_;
};

/// L_inf: tuples never leave the cache (converges for caching problems,
/// where B is bounded by 1; not for joining in general).
class InfiniteLifetime final : public LifetimeFn {
 public:
  double At(Time dt) const override {
    (void)dt;
    return 1.0;
  }
};

/// L_inv: H becomes the expected inverse waiting time (caching only).
class InverseLifetime final : public LifetimeFn {
 public:
  double At(Time dt) const override {
    return 1.0 / static_cast<double>(dt);
  }
};

/// L_exp: exponentially decaying survival, the paper's default. α should
/// be chosen so that 1/(1 - e^{-1/α}) matches the expected average
/// lifetime of a cached tuple (Section 4.3).
class ExpLifetime final : public LifetimeFn {
 public:
  explicit ExpLifetime(double alpha);
  double At(Time dt) const override;

  double alpha() const { return alpha_; }

  /// The α whose L_exp predicts the given average cached lifetime:
  /// solves 1/(1 - e^{-1/α}) = lifetime.
  static double AlphaForAverageLifetime(double lifetime);

 private:
  double alpha_;
};

/// Sliding-window modification (Section 7): L drops to zero once the tuple
/// leaves the window, i.e. for Δt > remaining_life.
class WindowedLifetime final : public LifetimeFn {
 public:
  /// `base` is not owned and must outlive this object.
  WindowedLifetime(const LifetimeFn* base, Time remaining_life)
      : base_(base), remaining_life_(remaining_life) {}

  double At(Time dt) const override {
    return dt <= remaining_life_ ? base_->At(dt) : 0.0;
  }

 private:
  const LifetimeFn* base_;
  Time remaining_life_;
};

}  // namespace sjoin

#endif  // SJOIN_CORE_LIFETIME_FN_H_
