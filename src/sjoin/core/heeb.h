#ifndef SJOIN_CORE_HEEB_H_
#define SJOIN_CORE_HEEB_H_

#include "sjoin/common/types.h"
#include "sjoin/core/ecb.h"
#include "sjoin/core/lifetime_fn.h"
#include "sjoin/stochastic/process.h"
#include "sjoin/stochastic/stream_history.h"

/// \file
/// The Heuristic of Estimated Expected Benefit, H_x (Section 4.3).
///
/// H_x = B_x(1) L_x(1) + Σ_{Δt>=2} (B_x(Δt) - B_x(Δt-1)) L_x(Δt):
/// the expected total benefit of caching x, weighting the benefit earned
/// at each future step by the estimated probability that x is still cached
/// then. Tuples with the lowest H are discarded. These free functions give
/// the definitional computations; the policies in heeb_policy.h /
/// heeb_caching_policy.h apply them with the efficient implementations of
/// Section 4.4.

namespace sjoin {

/// H from an explicit ECB and lifetime function — the literal Section 4.3
/// definition, truncated at `horizon`.
double HeebFromEcb(const EcbFn& ecb, const LifetimeFn& lifetime,
                   Time horizon);

/// Joining form (Lemma 1 applied to the definition):
/// H = Σ_{Δt=1..horizon} Pr{X^partner_{t0+Δt} = v | x̄} L(Δt).
double JoiningHeeb(const StochasticProcess& partner,
                   const StreamHistory& partner_history, Time t0, Value v,
                   const LifetimeFn& lifetime, Time horizon);

/// Caching form (Corollary 1 applied to the definition):
/// H = Σ Pr{(X_{t0+Δt} = v) ∩ (no earlier reference) | x̄} L(Δt),
/// computed with per-step marginals — exact for independent-step reference
/// processes. For history-dependent references use the first-passage
/// computations in precompute.h.
double CachingHeeb(const StochasticProcess& reference,
                   const StreamHistory& history, Time t0, Value v,
                   const LifetimeFn& lifetime, Time horizon);

/// Batched caching form: scores `count` values against the same reference
/// and history in one pass. One predictive pmf per step is shared across
/// every lane (PredictInto — allocation-free in steady state) instead of
/// one Predict per (value, step) as the scalar loop pays. Each lane
/// accumulates in the same dt-ascending order with the same operations as
/// CachingHeeb, so out[i] is bit-identical to
/// CachingHeeb(reference, history, t0, values[i], lifetime, horizon).
void CachingHeebBatch(const StochasticProcess& reference,
                      const StreamHistory& history, Time t0,
                      const Value* values, std::size_t count,
                      const LifetimeFn& lifetime, Time horizon, double* out);

/// A horizon beyond which L_exp(α) contributions are below `epsilon` even
/// for per-step probability 1; α ln(α/ε) rounded up, at least 1.
Time ExpHorizon(double alpha, double epsilon = 1e-9);

}  // namespace sjoin

#endif  // SJOIN_CORE_HEEB_H_
