#include "sjoin/core/lifetime_fn.h"

#include <cmath>

#include "sjoin/common/check.h"

namespace sjoin {

ExpLifetime::ExpLifetime(double alpha) : alpha_(alpha) {
  SJOIN_CHECK_GT(alpha, 0.0);
}

double ExpLifetime::At(Time dt) const {
  return std::exp(-static_cast<double>(dt) / alpha_);
}

double ExpLifetime::AlphaForAverageLifetime(double lifetime) {
  SJOIN_CHECK_GT(lifetime, 1.0);
  // 1/(1 - e^{-1/alpha}) = lifetime  =>  alpha = -1 / ln(1 - 1/lifetime).
  return -1.0 / std::log(1.0 - 1.0 / lifetime);
}

}  // namespace sjoin
