#ifndef SJOIN_CORE_HEEB_JOIN_POLICY_H_
#define SJOIN_CORE_HEEB_JOIN_POLICY_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sjoin/core/lifetime_fn.h"
#include "sjoin/core/precompute.h"
#include "sjoin/engine/scored_policy.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/process.h"
#include "sjoin/stochastic/random_walk_process.h"

/// \file
/// HEEB for the joining problem (Sections 4.3-4.4).
///
/// Scores every candidate tuple x by
///   H_x = Σ_{Δt>=1} Pr{X^partner_{t0+Δt} = v_x | x̄_t0} · L_x(Δt)
/// and discards the lowest-scored candidates. Several computation modes
/// implement the efficiency techniques of Section 4.4; all modes agree
/// with the direct definition (see heeb_policy_test).

namespace sjoin {

class ModelRepo;

/// HEEB replacement policy for two-stream joins.
class HeebJoinPolicy final : public ScoredPolicy {
 public:
  enum class Mode {
    /// Direct truncated sum each step. Works with any processes and any
    /// lifetime function; the universal fallback.
    kDirect,
    /// Corollary 3: H updates in O(1) per cached tuple per step. Requires
    /// L_exp and independent per-step stream variables; new arrivals are
    /// scored with the direct sum. Supports sliding windows: the window
    /// cap is a fixed absolute time (arrival + w), so the recurrence is
    /// unchanged — only the arrival-time sum is truncated (Section 7:
    /// "time-incremental computation requires very little modification").
    kTimeIncremental,
    /// Corollary 5 on top of Corollary 3: new arrivals inherit H from the
    /// cached tuple with the nearest value, shifted along the trend.
    /// Requires L_exp and LinearTrendProcess streams with equal non-zero
    /// integer slope.
    kValueIncremental,
    /// Theorem 5(2): both streams are random walks; h1 offset tables are
    /// precomputed at construction and scoring is a table lookup.
    kWalkTable,
  };

  struct Options {
    Mode mode = Mode::kDirect;
    /// L_exp parameter. Section 5 guidance: match the expected average
    /// lifetime of a cached tuple via ExpLifetime::AlphaForAverageLifetime.
    double alpha = 10.0;
    /// Truncation horizon for sums and tables; 0 derives it from alpha.
    Time horizon = 0;
    /// Optional custom lifetime function (kDirect only; not owned). When
    /// null, L_exp(alpha) is used.
    const LifetimeFn* lifetime = nullptr;
    /// Incremental modes only: recompute H directly after this many
    /// incremental updates. The Corollary 3 recurrence amplifies numeric
    /// error by e^{1/alpha} per step (an unstable fixed-point iteration),
    /// so long-cached tuples need periodic re-anchoring.
    Time refresh_interval = 64;
    /// kWalkTable: the repo the h1 tables are borrowed from (not owned);
    /// nullptr = ModelRepo::Global(). A custom `lifetime` is not
    /// content-addressable, so it forces a private build instead.
    ModelRepo* repo = nullptr;
  };

  /// Processes are not owned and must outlive the policy.
  HeebJoinPolicy(const StochasticProcess* r_process,
                 const StochasticProcess* s_process, Options options);

  void Reset() override;

  const char* name() const override { return "HEEB"; }

  // Sharded execution (see scored_policy.h). All four modes are
  // score-decomposable. The incremental modes replace BeginStep's eager
  // Corollary 3 sweep with a lazy per-tuple advance inside the parallel
  // scoring phase, driven by per-step partner pmfs that ShardBeginStep
  // builds once and shares across every cached tuple of a side — the
  // serial sweep re-predicts that same pmf once per tuple, which is the
  // dominant cost the sharded hot path removes. Results are bit-identical
  // (PredictInto matches Predict bitwise; the advance arithmetic is
  // unchanged).
  bool ShardBeginStep(const PolicyContext& ctx,
                      std::vector<TupleId>* decided) override;
  std::optional<ShardKey> ShardScoreCached(const Tuple& tuple,
                                           const PolicyContext& ctx,
                                           ShardScratch* scratch) override;
  /// Batched shard scoring. Direct and walk-table modes route through the
  /// stateless ScoreBatchInto kernels; the incremental modes run the same
  /// lazy Corollary 3 advance as ShardScoreCached lane by lane over the
  /// flat slot state (each slot is owned by exactly one shard, so the
  /// mutation stays race-free).
  void ShardScoreCachedBatch(const CandidateBatch& batch,
                             const PolicyContext& ctx, ShardScratch* scratch,
                             double* score_scratch, ShardKey* out) override;
  /// Drops incremental state for exactly the evicted ids — O(evicted),
  /// where the serial EndStep pays an O(cache) retained-set walk.
  void ShardEndStep(const PolicyContext& ctx,
                    const std::vector<TupleId>& retained,
                    const std::vector<TupleId>& evicted) override;

 protected:
  bool ShardScorable() const override { return true; }
  bool BatchScorable() const override { return true; }
  void BeginStep(const PolicyContext& ctx) override;
  double Score(const Tuple& tuple, const PolicyContext& ctx) override;
  /// Batched scoring kernels. kWalkTable gathers from the per-side h1
  /// tables with the partner anchor hoisted out of the lane loop;
  /// kDirect walks the flattened predictions (one contiguous mass array
  /// per side) in the same dt-ascending per-lane order as DirectScore, so
  /// scores are bit-identical to the scalar path. The incremental modes
  /// fall back to per-lane Score() — their find-or-insert state mutation
  /// defines the scoring order.
  void ScoreBatchInto(const CandidateBatch& batch, const PolicyContext& ctx,
                      double* out) override;
  void EndStep(const PolicyContext& ctx,
               const std::vector<TupleId>& retained) override;

 private:
  const StochasticProcess* process(StreamSide side) const {
    return side == StreamSide::kR ? r_process_ : s_process_;
  }
  const StreamHistory* history(StreamSide side,
                               const PolicyContext& ctx) const {
    return side == StreamSide::kR ? ctx.history_r : ctx.history_s;
  }

  /// Direct truncated-sum H for a tuple, honoring the sliding window.
  double DirectScore(const Tuple& tuple, const PolicyContext& ctx);

  /// Builds this step's predictive pmfs if not already current. In
  /// kDirect with batch scoring enabled, also flattens them for the
  /// batch kernel (serial call sites only; the parallel phase reads).
  void EnsurePredictions(const PolicyContext& ctx);

  /// Copies predictions_ into the contiguous per-side layout the kDirect
  /// batch kernel gathers from.
  void FlattenPredictions();

  /// Probability that the partner of `side` produces `v` at time `t`.
  double PartnerProbAt(StreamSide side, Value v, Time t,
                       const PolicyContext& ctx) const;

  /// Corollary 5 transfer for a new arrival (kValueIncremental).
  double ValueIncrementalScore(const Tuple& tuple, const PolicyContext& ctx);

  /// ScoreBatchInto bodies for the stateless modes.
  void DirectBatch(const CandidateBatch& batch, const PolicyContext& ctx,
                   double* out);
  void WalkTableBatch(const CandidateBatch& batch, const PolicyContext& ctx,
                      double* out) const;

  const StochasticProcess* r_process_;
  const StochasticProcess* s_process_;
  Options options_;
  ExpLifetime exp_lifetime_;
  Time horizon_;

  // kDirect / arrival scoring: partner predictive pmfs for the current
  // step, indexed [stream][dt-1].
  std::vector<DiscreteDistribution> predictions_[2];
  Time predictions_time_ = -1;

  // kDirect batch kernel: predictions_ flattened to one contiguous mass
  // array per side plus per-dt (offset, support min, support size) so the
  // hot loop is a bounds-checked gather with no pointer chasing. Rebuilt
  // by FlattenPredictions whenever predictions_ changes.
  struct FlatPmfs {
    std::vector<double> masses;       // Concatenated per-dt mass buffers.
    std::vector<std::size_t> offset;  // Start of dt's masses, per dt.
    std::vector<Value> min;           // Support min per dt (0 if empty).
    std::vector<Value> size;          // Support size per dt.
  };
  FlatPmfs flat_predictions_[2];
  Time flat_time_ = -1;
  // L(dt) for dt = 1..horizon_, precomputed at construction. The kernel
  // reads these instead of calling lifetime.At per (lane, dt); the values
  // are the same doubles, so sums stay bit-identical.
  std::vector<double> lifetime_flat_;

  // Incremental modes: H values of cached tuples in a flat slot array
  // (the hot BeginStep sweep walks contiguous memory), with a side index
  // mapping tuple id -> slot. Erasure is swap-with-last, so slot order is
  // arbitrary — every cross-slot decision (the Corollary 5 donor search)
  // must therefore be order-independent.
  struct CachedState {
    double h = 0.0;
    TupleId id = 0;
    StreamSide side = StreamSide::kR;
    Value value = 0;
    Time arrival = 0;
    Time updates_since_refresh = 0;
  };
  CachedState* FindState(TupleId id);
  void InsertState(const Tuple& tuple, double h);
  void EraseState(TupleId id);
  std::vector<CachedState> slots_;
  std::unordered_map<TupleId, std::size_t> slot_index_;
  Time last_step_time_ = -1;
  // EndStep scratch (reused across steps to avoid reallocation).
  std::unordered_set<TupleId> retained_scratch_;

  // Sharded incremental advance: elapsed steps since the previous decision
  // and the shared per-(cached side, elapsed step) partner pmfs the lazy
  // Corollary 3 advance reads. Written in ShardBeginStep (serial), read
  // only during the parallel scoring phase.
  Time shard_gap_ = 0;
  double shard_e_ = 1.0;
  std::vector<DiscreteDistribution> advance_pmfs_[2];

  // kWalkTable: per-side lookup tables (indexed by the side of the cached
  // tuple; the table is built from the partner's walk). Borrowed from the
  // ModelRepo — const-shared with every other policy on the same model.
  std::shared_ptr<const OffsetTable> walk_table_[2];
};

}  // namespace sjoin

#endif  // SJOIN_CORE_HEEB_JOIN_POLICY_H_
