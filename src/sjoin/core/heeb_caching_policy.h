#ifndef SJOIN_CORE_HEEB_CACHING_POLICY_H_
#define SJOIN_CORE_HEEB_CACHING_POLICY_H_

#include <functional>
#include <memory>
#include <unordered_map>

#include "sjoin/core/lifetime_fn.h"
#include "sjoin/core/precompute.h"
#include "sjoin/engine/scored_caching_policy.h"
#include "sjoin/stochastic/process.h"

/// \file
/// HEEB for the caching problem (Sections 4.3-4.4, via the reduction of
/// Section 2). The caching H_x weights first-reference probabilities:
///   H_x = Σ_{Δt} Pr{(X_{t0+Δt}=v_x) ∩ (∩_{t0<t<t0+Δt} X_t != v_x)} L(Δt).

namespace sjoin {

class ModelRepo;

/// HEEB replacement policy for stream-references-database caching.
class HeebCachingPolicy final : public ScoredCachingPolicy {
 public:
  enum class Mode {
    /// Direct truncated sum with per-step marginals; exact for
    /// independent-step reference processes (offline / stationary / trend).
    kDirect,
    /// Corollary 4: O(1) update per cached value per step. L_exp +
    /// independent reference variables.
    kTimeIncremental,
    /// Theorem 5(2) + first-passage DP: random-walk reference; h1 offset
    /// table precomputed at construction (Figure 6).
    kWalkTable,
    /// Externally precomputed evaluator h(v, x_t0) — e.g. the exact AR(1)
    /// surface table or its bicubic approximation (Figures 13, 15, 16).
    kEvaluator,
  };

  struct Options {
    Mode mode = Mode::kDirect;
    double alpha = 10.0;
    Time horizon = 0;  // 0 = derive from alpha.
    const LifetimeFn* lifetime = nullptr;  // kDirect only; not owned.
    /// kWalkTable: table half-width (offsets considered).
    Value walk_max_offset = 64;
    /// kEvaluator: h(v, last observed reference value).
    std::function<double(Value v, Value last)> evaluator;
    /// kTimeIncremental: recompute H directly after this many incremental
    /// updates. The Corollary 4 recurrence amplifies numeric error by
    /// e^{1/alpha}/(1-p) per step (an unstable fixed-point iteration), so
    /// long-cached tuples need periodic re-anchoring.
    Time refresh_interval = 24;
    /// kWalkTable: the repo the h1 table is borrowed from (not owned);
    /// nullptr = ModelRepo::Global(). A custom `lifetime` forces a
    /// private build instead.
    ModelRepo* repo = nullptr;
  };

  /// `reference` is not owned; required for all modes except kEvaluator.
  HeebCachingPolicy(const StochasticProcess* reference, Options options);

  void Reset() override;

  const char* name() const override { return "HEEB"; }

  /// kDirect and kWalkTable score through read-only state (the direct sum
  /// and the precomputed offset table). kTimeIncremental advances and
  /// inserts incremental state inside Score, and kEvaluator runs a user
  /// function of unknown thread safety — both stay serial.
  bool ShardScorable() const override {
    return options_.mode == Mode::kDirect ||
           options_.mode == Mode::kWalkTable;
  }

 protected:
  double Score(Value v, const CachingContext& ctx) override;
  /// Batched kernels for the stateless modes: kDirect shares one
  /// predictive pmf per step across every lane (CachingHeebBatch) where
  /// the scalar loop re-predicts per (value, step); kWalkTable gathers
  /// from the h1 offset table with the reference anchor hoisted out of
  /// the lane loop. Scores are bit-identical to Score().
  bool BatchScorable() const override {
    return options_.mode == Mode::kDirect ||
           options_.mode == Mode::kWalkTable;
  }
  void ScoreBatchInto(const CandidateBatch& batch, const CachingContext& ctx,
                      double* out) override;

 private:
  double DirectScore(Value v, const CachingContext& ctx) const;

  const StochasticProcess* reference_;
  Options options_;
  ExpLifetime exp_lifetime_;
  Time horizon_;
  // Borrowed from the ModelRepo — const-shared with every other policy on
  // the same model.
  std::shared_ptr<const OffsetTable> walk_table_;

  // kTimeIncremental state: H per cached value at time state_time_.
  struct IncrementalState {
    double h = 0.0;
    Time updates_since_refresh = 0;
  };
  std::unordered_map<Value, IncrementalState> cached_h_;
  Time state_time_ = -1;
};

}  // namespace sjoin

#endif  // SJOIN_CORE_HEEB_CACHING_POLICY_H_
