#ifndef SJOIN_FLOW_MIN_COST_FLOW_H_
#define SJOIN_FLOW_MIN_COST_FLOW_H_

#include <cstdint>

#include "sjoin/flow/flow_graph.h"

/// \file
/// Min-cost flow via successive shortest paths with node potentials.
///
/// The paper uses Goldberg's cost-scaling solver [9]; this repository
/// substitutes the successive-shortest-path algorithm (optimal and integral
/// for integer capacities, which is all we need — see DESIGN.md §6).
/// Initial potentials are computed by Bellman-Ford so that arbitrary
/// negative-cost arcs are handled; subsequent iterations run Dijkstra on
/// reduced costs. All the graphs built by this library are time-expanded
/// DAGs, for which Bellman-Ford converges in a handful of passes.

namespace sjoin {

/// Result of a min-cost flow computation.
struct MinCostFlowResult {
  /// Units of flow actually routed (== requested unless the network cannot
  /// carry that much).
  std::int64_t flow = 0;
  /// Total cost of the routed flow.
  double cost = 0.0;
};

/// Routes up to `target_flow` units from `source` to `sink` at minimum cost,
/// mutating the residual capacities inside `graph` (query per-arc flow with
/// FlowGraph::FlowOn afterwards).
///
/// Precondition: the graph has no negative-cost *cycle* (time-expanded DAGs
/// trivially satisfy this).
MinCostFlowResult SolveMinCostFlow(FlowGraph& graph, NodeId source,
                                   NodeId sink, std::int64_t target_flow);

}  // namespace sjoin

#endif  // SJOIN_FLOW_MIN_COST_FLOW_H_
