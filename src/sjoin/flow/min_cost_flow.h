#ifndef SJOIN_FLOW_MIN_COST_FLOW_H_
#define SJOIN_FLOW_MIN_COST_FLOW_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "sjoin/flow/flow_graph.h"

/// \file
/// Min-cost flow via successive shortest paths with node potentials.
///
/// The paper uses Goldberg's cost-scaling solver [9]; this repository
/// substitutes a successive-shortest-path solver (optimal and integral for
/// integer capacities, which is all we need — see DESIGN.md §6), organised
/// as primal-dual *phases*: each phase computes shortest reduced-cost
/// distances with Dijkstra (stopping as soon as the sink is settled), then
/// pushes a blocking flow over the tight arcs of that distance labelling,
/// so one Dijkstra typically serves many flow units.
///
/// Initial potentials come from a single relaxation pass in topological
/// order when the positive-capacity graph is a DAG — the common case, since
/// both OPT-offline and FlowExpect build time-expanded slice graphs — with
/// an SPFA fallback for cyclic inputs.
///
/// `MinCostFlowSolver` owns every workspace (distances, parents, heap, DFS
/// stack, topological order), so repeated solves allocate nothing once
/// warm. The free function `SolveMinCostFlow` remains as a thin wrapper for
/// one-shot callers.

namespace sjoin {

/// Result of a min-cost flow computation.
struct MinCostFlowResult {
  /// Units of flow actually routed (== requested unless the network cannot
  /// carry that much).
  std::int64_t flow = 0;
  /// Total cost of the routed flow.
  double cost = 0.0;
};

/// Reusable min-cost-flow kernel. A single instance may solve any sequence
/// of graphs; workspaces grow to the largest graph seen and are reused.
class MinCostFlowSolver {
 public:
  struct SolveOptions {
    /// Set when the graph has the same nodes, arcs, and adjacency order as
    /// this solver's previous Solve() call and only costs / capacities were
    /// rewritten (the FlowExpect template path). Reuses the cached
    /// topological order instead of recomputing it.
    bool topology_unchanged = false;
    /// Optional caller-known topological order of the forward-arc graph
    /// (every node exactly once, every forward arc going left to right).
    /// Not owned; must stay alive through the call. Ignored when
    /// `topology_unchanged` reuses the cached order.
    const std::vector<NodeId>* topological_order = nullptr;
  };

  /// Routes up to `target_flow` units from `source` to `sink` at minimum
  /// cost, mutating the residual capacities inside `graph` (query per-arc
  /// flow with FlowGraph::FlowOn afterwards). Deterministic: identical
  /// graphs (same insertion order) produce identical flows, including
  /// tie-breaks.
  ///
  /// Precondition: the graph has no negative-cost *cycle* (time-expanded
  /// DAGs trivially satisfy this).
  MinCostFlowResult Solve(FlowGraph& graph, NodeId source, NodeId sink,
                          std::int64_t target_flow,
                          const SolveOptions& options);
  MinCostFlowResult Solve(FlowGraph& graph, NodeId source, NodeId sink,
                          std::int64_t target_flow) {
    return Solve(graph, source, sink, target_flow, SolveOptions());
  }

 private:
  struct PathStep {
    NodeId node = -1;       // Predecessor node.
    std::int32_t arc = -1;  // Index of the arc taken within node's adjacency.
  };

  void InitPotentials(const FlowGraph& graph, NodeId source,
                      const SolveOptions& options);
  bool ComputeTopologicalOrder(const FlowGraph& graph);
  void SpfaPotentials(const FlowGraph& graph, NodeId source);

  // Workspaces, sized to the current graph by Solve().
  std::vector<double> potential_;
  std::vector<double> dist_;
  std::vector<PathStep> parent_;
  std::vector<std::pair<double, NodeId>> heap_;
  std::vector<NodeId> topo_order_;
  std::vector<std::int32_t> indegree_;  // Kahn scratch.
  std::vector<std::int32_t> dfs_arc_;   // Per-node current-arc iterator.
  std::vector<char> on_path_;           // Cycle guard for the blocking DFS.
  std::vector<PathStep> dfs_path_;      // Arcs of the current DFS descent.
  std::vector<char> in_queue_;          // SPFA scratch.
  bool has_topo_order_ = false;
};

/// Routes up to `target_flow` units from `source` to `sink` at minimum cost
/// using a throwaway MinCostFlowSolver. Hot paths that solve repeatedly
/// should hold a solver instance instead.
MinCostFlowResult SolveMinCostFlow(FlowGraph& graph, NodeId source,
                                   NodeId sink, std::int64_t target_flow);

}  // namespace sjoin

#endif  // SJOIN_FLOW_MIN_COST_FLOW_H_
