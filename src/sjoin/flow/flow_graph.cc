#include "sjoin/flow/flow_graph.h"

#include "sjoin/common/check.h"

namespace sjoin {

NodeId FlowGraph::AddNode() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

NodeId FlowGraph::AddNodes(int count) {
  SJOIN_CHECK_GE(count, 1);
  NodeId first = static_cast<NodeId>(adjacency_.size());
  adjacency_.resize(adjacency_.size() + static_cast<std::size_t>(count));
  return first;
}

std::int32_t FlowGraph::AddArc(NodeId from, NodeId to, std::int64_t capacity,
                               double cost) {
  SJOIN_CHECK_GE(from, 0);
  SJOIN_CHECK_LT(from, NumNodes());
  SJOIN_CHECK_GE(to, 0);
  SJOIN_CHECK_LT(to, NumNodes());
  SJOIN_CHECK_GE(capacity, 0);
  auto& fwd_list = adjacency_[static_cast<std::size_t>(from)];
  auto& rev_list = adjacency_[static_cast<std::size_t>(to)];
  std::int32_t fwd_index = static_cast<std::int32_t>(fwd_list.size());
  std::int32_t rev_index = static_cast<std::int32_t>(rev_list.size());
  // Self-loops would make fwd/rev indices collide; they are never useful in
  // a flow network, so forbid them.
  SJOIN_CHECK_NE(from, to);
  fwd_list.push_back(Arc{to, rev_index, capacity, cost, /*is_forward=*/true});
  rev_list.push_back(Arc{from, fwd_index, 0, -cost, /*is_forward=*/false});
  return fwd_index;
}

void FlowGraph::ResetUnitCapacities() {
  for (auto& list : adjacency_) {
    for (Arc& arc : list) {
      arc.capacity = arc.is_forward ? 1 : 0;
    }
  }
}

void FlowGraph::SetArcCost(NodeId from, std::int32_t arc_index, double cost) {
  Arc& arc = adjacency_[static_cast<std::size_t>(from)]
                       [static_cast<std::size_t>(arc_index)];
  SJOIN_CHECK(arc.is_forward);
  arc.cost = cost;
  adjacency_[static_cast<std::size_t>(arc.to)]
            [static_cast<std::size_t>(arc.rev)].cost = -cost;
}

std::int64_t FlowGraph::FlowOn(NodeId from, std::int32_t arc_index) const {
  const Arc& arc = adjacency_[static_cast<std::size_t>(from)]
                             [static_cast<std::size_t>(arc_index)];
  SJOIN_CHECK(arc.is_forward);
  const Arc& twin = adjacency_[static_cast<std::size_t>(arc.to)]
                              [static_cast<std::size_t>(arc.rev)];
  return twin.capacity;
}

}  // namespace sjoin
