#include "sjoin/flow/min_cost_flow.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "sjoin/common/check.h"
#include "sjoin/common/validate.h"

namespace sjoin {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Tolerance for floating-point reduced costs: rounding can make a reduced
// cost infinitesimally negative; clamping keeps Dijkstra correct.
constexpr double kReducedCostSlack = 1e-9;

// Queue-based Bellman-Ford (SPFA) distances from `source` over arcs with
// positive residual capacity. Our graphs are DAG-structured, so this
// converges in few passes even with many negative arcs.
std::vector<double> BellmanFordDistances(const FlowGraph& graph,
                                         NodeId source) {
  int n = graph.NumNodes();
  std::vector<double> dist(static_cast<std::size_t>(n), kInf);
  std::vector<char> in_queue(static_cast<std::size_t>(n), 0);
  std::deque<NodeId> queue;
  dist[static_cast<std::size_t>(source)] = 0.0;
  queue.push_back(source);
  in_queue[static_cast<std::size_t>(source)] = 1;
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    in_queue[static_cast<std::size_t>(u)] = 0;
    double du = dist[static_cast<std::size_t>(u)];
    for (const FlowGraph::Arc& arc : graph.AdjacencyOf(u)) {
      if (arc.capacity <= 0) continue;
      double nd = du + arc.cost;
      if (nd < dist[static_cast<std::size_t>(arc.to)] - 1e-15) {
        dist[static_cast<std::size_t>(arc.to)] = nd;
        if (!in_queue[static_cast<std::size_t>(arc.to)]) {
          in_queue[static_cast<std::size_t>(arc.to)] = 1;
          queue.push_back(arc.to);
        }
      }
    }
  }
  return dist;
}

struct PathStep {
  NodeId node = -1;        // Predecessor node.
  std::int32_t arc = -1;   // Index of the arc taken within node's adjacency.
};

}  // namespace

MinCostFlowResult SolveMinCostFlow(FlowGraph& graph, NodeId source,
                                   NodeId sink, std::int64_t target_flow) {
  SJOIN_CHECK_GE(target_flow, 0);
  SJOIN_CHECK_NE(source, sink);
  int n = graph.NumNodes();
  std::vector<double> potential = BellmanFordDistances(graph, source);
  // Nodes unreachable from the source can never appear on an augmenting
  // path; give them a finite potential so arithmetic below stays finite.
  double max_finite = 0.0;
  for (double d : potential) {
    if (d != kInf) max_finite = std::max(max_finite, d);
  }
  for (double& d : potential) {
    if (d == kInf) d = max_finite;
  }

  MinCostFlowResult result;
  std::vector<double> dist(static_cast<std::size_t>(n));
  std::vector<PathStep> parent(static_cast<std::size_t>(n));
  using QueueEntry = std::pair<double, NodeId>;

  while (result.flow < target_flow) {
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(parent.begin(), parent.end(), PathStep{});
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        frontier;
    dist[static_cast<std::size_t>(source)] = 0.0;
    frontier.push({0.0, source});
    while (!frontier.empty()) {
      auto [du, u] = frontier.top();
      frontier.pop();
      if (du > dist[static_cast<std::size_t>(u)] + 1e-15) continue;
      const auto& arcs = graph.AdjacencyOf(u);
      for (std::int32_t i = 0; i < static_cast<std::int32_t>(arcs.size());
           ++i) {
        const FlowGraph::Arc& arc = arcs[static_cast<std::size_t>(i)];
        if (arc.capacity <= 0) continue;
        double reduced = arc.cost + potential[static_cast<std::size_t>(u)] -
                         potential[static_cast<std::size_t>(arc.to)];
        SJOIN_CHECK_GE(reduced, -kReducedCostSlack * 1e3);
        if (reduced < 0.0) reduced = 0.0;
        double nd = du + reduced;
        if (nd < dist[static_cast<std::size_t>(arc.to)] - 1e-15) {
          dist[static_cast<std::size_t>(arc.to)] = nd;
          parent[static_cast<std::size_t>(arc.to)] = PathStep{u, i};
          frontier.push({nd, arc.to});
        }
      }
    }
    if (dist[static_cast<std::size_t>(sink)] == kInf) break;  // Saturated.

    // Bottleneck along the augmenting path.
    std::int64_t push = target_flow - result.flow;
    for (NodeId v = sink; v != source;
         v = parent[static_cast<std::size_t>(v)].node) {
      const PathStep& step = parent[static_cast<std::size_t>(v)];
      SJOIN_CHECK_GE(step.node, 0);
      const FlowGraph::Arc& arc =
          graph.AdjacencyOf(step.node)[static_cast<std::size_t>(step.arc)];
      push = std::min(push, arc.capacity);
    }
    SJOIN_CHECK_GT(push, 0);

    // Apply the augmentation, accumulating true (non-reduced) arc costs.
    for (NodeId v = sink; v != source;
         v = parent[static_cast<std::size_t>(v)].node) {
      const PathStep& step = parent[static_cast<std::size_t>(v)];
      FlowGraph::Arc& arc =
          graph.AdjacencyOf(step.node)[static_cast<std::size_t>(step.arc)];
      FlowGraph::Arc& twin =
          graph.AdjacencyOf(arc.to)[static_cast<std::size_t>(arc.rev)];
      arc.capacity -= push;
      twin.capacity += push;
      result.cost += arc.cost * static_cast<double>(push);
    }
    result.flow += push;

    // Johnson re-weighting keeps reduced costs non-negative next round.
    double dsink = dist[static_cast<std::size_t>(sink)];
    for (int v = 0; v < n; ++v) {
      potential[static_cast<std::size_t>(v)] +=
          std::min(dist[static_cast<std::size_t>(v)], dsink);
    }
  }

  if constexpr (kValidationEnabled) {
    // Flow conservation: the routed flow leaves the source, enters the
    // sink, and balances at every other node.
    std::vector<std::int64_t> net(static_cast<std::size_t>(n), 0);
    for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
      const auto& arcs = graph.AdjacencyOf(u);
      for (std::int32_t i = 0; i < static_cast<std::int32_t>(arcs.size());
           ++i) {
        if (!arcs[static_cast<std::size_t>(i)].is_forward) continue;
        std::int64_t flow = graph.FlowOn(u, i);
        SJOIN_VALIDATE_MSG(flow >= 0, "negative flow on a forward arc");
        net[static_cast<std::size_t>(u)] += flow;
        net[static_cast<std::size_t>(
            arcs[static_cast<std::size_t>(i)].to)] -= flow;
      }
    }
    for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
      std::int64_t expected =
          u == source ? result.flow : (u == sink ? -result.flow : 0);
      SJOIN_VALIDATE_MSG(net[static_cast<std::size_t>(u)] == expected,
                         "flow not conserved at a node");
    }
  }
  return result;
}

}  // namespace sjoin
