#include "sjoin/flow/min_cost_flow.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <limits>
#include <vector>

#include "sjoin/common/check.h"
#include "sjoin/common/validate.h"

namespace sjoin {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Tolerance for floating-point reduced costs: rounding can make a reduced
// cost infinitesimally negative; clamping keeps Dijkstra correct.
constexpr double kReducedCostSlack = 1e-9;

}  // namespace

bool MinCostFlowSolver::ComputeTopologicalOrder(const FlowGraph& graph) {
  const int n = graph.NumNodes();
  indegree_.assign(static_cast<std::size_t>(n), 0);
  for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
    for (const FlowGraph::Arc& arc : graph.AdjacencyOf(u)) {
      if (arc.capacity <= 0) continue;
      ++indegree_[static_cast<std::size_t>(arc.to)];
    }
  }
  // Kahn's algorithm; topo_order_ doubles as the FIFO queue. Seeding in
  // node-id order makes the order a deterministic function of the graph.
  topo_order_.clear();
  for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
    if (indegree_[static_cast<std::size_t>(u)] == 0) topo_order_.push_back(u);
  }
  for (std::size_t head = 0; head < topo_order_.size(); ++head) {
    NodeId u = topo_order_[head];
    for (const FlowGraph::Arc& arc : graph.AdjacencyOf(u)) {
      if (arc.capacity <= 0) continue;
      if (--indegree_[static_cast<std::size_t>(arc.to)] == 0) {
        topo_order_.push_back(arc.to);
      }
    }
  }
  return topo_order_.size() == static_cast<std::size_t>(n);
}

void MinCostFlowSolver::SpfaPotentials(const FlowGraph& graph,
                                       NodeId source) {
  // Queue-based Bellman-Ford (SPFA) over arcs with positive residual
  // capacity; only used when those arcs form a cycle (never the case for
  // the time-expanded DAGs this library builds, but callers may hand us
  // arbitrary graphs).
  const int n = graph.NumNodes();
  potential_.assign(static_cast<std::size_t>(n), kInf);
  in_queue_.assign(static_cast<std::size_t>(n), 0);
  std::deque<NodeId> queue;
  potential_[static_cast<std::size_t>(source)] = 0.0;
  queue.push_back(source);
  in_queue_[static_cast<std::size_t>(source)] = 1;
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    in_queue_[static_cast<std::size_t>(u)] = 0;
    double du = potential_[static_cast<std::size_t>(u)];
    for (const FlowGraph::Arc& arc : graph.AdjacencyOf(u)) {
      if (arc.capacity <= 0) continue;
      double nd = du + arc.cost;
      if (nd < potential_[static_cast<std::size_t>(arc.to)] - 1e-15) {
        potential_[static_cast<std::size_t>(arc.to)] = nd;
        if (!in_queue_[static_cast<std::size_t>(arc.to)]) {
          in_queue_[static_cast<std::size_t>(arc.to)] = 1;
          queue.push_back(arc.to);
        }
      }
    }
  }
}

void MinCostFlowSolver::InitPotentials(const FlowGraph& graph, NodeId source,
                                       const SolveOptions& options) {
  const int n = graph.NumNodes();
  bool have_order = false;
  if (options.topology_unchanged && has_topo_order_ &&
      topo_order_.size() == static_cast<std::size_t>(n)) {
    have_order = true;
  } else if (options.topological_order != nullptr) {
    SJOIN_CHECK_EQ(static_cast<int>(options.topological_order->size()), n);
    topo_order_ = *options.topological_order;
    if constexpr (kValidationEnabled) {
      // The order must be a permutation with every positive-capacity arc
      // pointing left to right.
      std::vector<std::int32_t> position(static_cast<std::size_t>(n), -1);
      for (std::size_t i = 0; i < topo_order_.size(); ++i) {
        NodeId u = topo_order_[i];
        SJOIN_VALIDATE_MSG(u >= 0 && u < static_cast<NodeId>(n) &&
                               position[static_cast<std::size_t>(u)] < 0,
                           "topological order is not a permutation");
        position[static_cast<std::size_t>(u)] = static_cast<std::int32_t>(i);
      }
      for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
        for (const FlowGraph::Arc& arc : graph.AdjacencyOf(u)) {
          if (arc.capacity <= 0) continue;
          SJOIN_VALIDATE_MSG(position[static_cast<std::size_t>(u)] <
                                 position[static_cast<std::size_t>(arc.to)],
                             "arc violates the supplied topological order");
        }
      }
    }
    have_order = true;
  } else {
    have_order = ComputeTopologicalOrder(graph);
  }
  has_topo_order_ = have_order;

  if (!have_order) {
    SpfaPotentials(graph, source);
  } else {
    // One relaxation pass in topological order computes exact shortest
    // distances; the resulting values do not depend on which valid order
    // was used (each node takes the min over its already-final
    // predecessors).
    potential_.assign(static_cast<std::size_t>(n), kInf);
    potential_[static_cast<std::size_t>(source)] = 0.0;
    for (NodeId u : topo_order_) {
      double du = potential_[static_cast<std::size_t>(u)];
      if (du == kInf) continue;
      for (const FlowGraph::Arc& arc : graph.AdjacencyOf(u)) {
        if (arc.capacity <= 0) continue;
        double nd = du + arc.cost;
        if (nd < potential_[static_cast<std::size_t>(arc.to)]) {
          potential_[static_cast<std::size_t>(arc.to)] = nd;
        }
      }
    }
  }

  // Nodes unreachable from the source can never appear on an augmenting
  // path; give them a finite potential so arithmetic below stays finite.
  double max_finite = 0.0;
  for (double d : potential_) {
    if (d != kInf) max_finite = std::max(max_finite, d);
  }
  for (double& d : potential_) {
    if (d == kInf) d = max_finite;
  }
}

MinCostFlowResult MinCostFlowSolver::Solve(FlowGraph& graph, NodeId source,
                                           NodeId sink,
                                           std::int64_t target_flow,
                                           const SolveOptions& options) {
  SJOIN_CHECK_GE(target_flow, 0);
  SJOIN_CHECK_NE(source, sink);
  const int n = graph.NumNodes();
  InitPotentials(graph, source, options);

  MinCostFlowResult result;
  dist_.resize(static_cast<std::size_t>(n));
  parent_.resize(static_cast<std::size_t>(n));
  dfs_arc_.resize(static_cast<std::size_t>(n));
  using QueueEntry = std::pair<double, NodeId>;

  auto arc_of = [&graph](const PathStep& step) -> FlowGraph::Arc& {
    return graph.AdjacencyOf(step.node)[static_cast<std::size_t>(step.arc)];
  };

  while (result.flow < target_flow) {
    // Dijkstra on reduced costs. Stopping at the first sink settlement is
    // safe: every unfinalized label is >= dist(sink), so the phase-end
    // potential update treats them exactly as if they had been capped.
    std::fill(dist_.begin(), dist_.end(), kInf);
    std::fill(parent_.begin(), parent_.end(), PathStep{});
    heap_.clear();
    dist_[static_cast<std::size_t>(source)] = 0.0;
    heap_.push_back({0.0, source});
    double dsink = kInf;
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<QueueEntry>());
      auto [du, u] = heap_.back();
      heap_.pop_back();
      if (du > dist_[static_cast<std::size_t>(u)] + 1e-15) continue;
      if (u == sink) {
        dsink = du;
        break;
      }
      const auto& arcs = graph.AdjacencyOf(u);
      for (std::int32_t i = 0; i < static_cast<std::int32_t>(arcs.size());
           ++i) {
        const FlowGraph::Arc& arc = arcs[static_cast<std::size_t>(i)];
        if (arc.capacity <= 0) continue;
        double reduced = arc.cost + potential_[static_cast<std::size_t>(u)] -
                         potential_[static_cast<std::size_t>(arc.to)];
        SJOIN_CHECK_GE(reduced, -kReducedCostSlack * 1e3);
        if (reduced < 0.0) reduced = 0.0;
        double nd = du + reduced;
        if (nd < dist_[static_cast<std::size_t>(arc.to)] - 1e-15) {
          dist_[static_cast<std::size_t>(arc.to)] = nd;
          parent_[static_cast<std::size_t>(arc.to)] = PathStep{u, i};
          heap_.push_back({nd, arc.to});
          std::push_heap(heap_.begin(), heap_.end(),
                         std::greater<QueueEntry>());
        }
      }
    }
    if (dsink == kInf) break;  // Saturated.

    // Blocking flow over the tight arcs of this labelling (an arc is tight
    // when relaxing it reproduces the head's label bit-for-bit). Each node
    // keeps a current-arc iterator, so the phase scans every adjacency at
    // most once; on-path marks stop zero-reduced-cost residual cycles.
    std::int64_t phase_flow = 0;
    std::fill(dfs_arc_.begin(), dfs_arc_.end(), 0);
    on_path_.assign(static_cast<std::size_t>(n), 0);
    dfs_path_.clear();
    on_path_[static_cast<std::size_t>(source)] = 1;
    NodeId u = source;
    while (true) {
      if (u == sink) {
        std::int64_t push = target_flow - result.flow;
        for (const PathStep& step : dfs_path_) {
          push = std::min(push, arc_of(step).capacity);
        }
        SJOIN_CHECK_GT(push, 0);
        for (const PathStep& step : dfs_path_) {
          FlowGraph::Arc& arc = arc_of(step);
          FlowGraph::Arc& twin =
              graph.AdjacencyOf(arc.to)[static_cast<std::size_t>(arc.rev)];
          arc.capacity -= push;
          twin.capacity += push;
          result.cost += arc.cost * static_cast<double>(push);
        }
        result.flow += push;
        phase_flow += push;
        if (result.flow == target_flow) break;
        // Retreat to just before the shallowest saturated path arc; the
        // unsaturated prefix stays in place for the next descent.
        std::size_t keep = 0;
        while (keep < dfs_path_.size() &&
               arc_of(dfs_path_[keep]).capacity > 0) {
          ++keep;
        }
        for (std::size_t i = keep; i < dfs_path_.size(); ++i) {
          on_path_[static_cast<std::size_t>(arc_of(dfs_path_[i]).to)] = 0;
        }
        dfs_path_.resize(keep);
        u = keep == 0 ? source : arc_of(dfs_path_[keep - 1]).to;
        continue;
      }
      const auto& arcs = graph.AdjacencyOf(u);
      std::int32_t& it = dfs_arc_[static_cast<std::size_t>(u)];
      std::int32_t found = -1;
      while (it < static_cast<std::int32_t>(arcs.size())) {
        const FlowGraph::Arc& arc = arcs[static_cast<std::size_t>(it)];
        if (arc.capacity > 0 &&
            !on_path_[static_cast<std::size_t>(arc.to)] &&
            dist_[static_cast<std::size_t>(arc.to)] != kInf) {
          double reduced =
              arc.cost + potential_[static_cast<std::size_t>(u)] -
              potential_[static_cast<std::size_t>(arc.to)];
          if (reduced < 0.0) reduced = 0.0;
          if (dist_[static_cast<std::size_t>(u)] + reduced ==
              dist_[static_cast<std::size_t>(arc.to)]) {
            found = it;
            break;
          }
        }
        ++it;
      }
      if (found >= 0) {
        dfs_path_.push_back(PathStep{u, found});
        NodeId to = arcs[static_cast<std::size_t>(found)].to;
        on_path_[static_cast<std::size_t>(to)] = 1;
        u = to;
      } else if (u == source) {
        break;  // Phase exhausted.
      } else {
        // Dead end: retire the arc that led here and back up.
        on_path_[static_cast<std::size_t>(u)] = 0;
        PathStep last = dfs_path_.back();
        dfs_path_.pop_back();
        ++dfs_arc_[static_cast<std::size_t>(last.node)];
        u = last.node;
      }
    }

    if (phase_flow == 0) {
      // Sub-epsilon label drift can make a parent arc miss the bit-exact
      // tightness test; fall back to one augmentation along the Dijkstra
      // parent chain (whose capacities are untouched — the phase pushed
      // nothing), which is exactly the classic per-unit step.
      std::int64_t push = target_flow - result.flow;
      for (NodeId v = sink; v != source;
           v = parent_[static_cast<std::size_t>(v)].node) {
        const PathStep& step = parent_[static_cast<std::size_t>(v)];
        SJOIN_CHECK_GE(step.node, 0);
        push = std::min(push, arc_of(step).capacity);
      }
      SJOIN_CHECK_GT(push, 0);
      for (NodeId v = sink; v != source;
           v = parent_[static_cast<std::size_t>(v)].node) {
        const PathStep& step = parent_[static_cast<std::size_t>(v)];
        FlowGraph::Arc& arc = arc_of(step);
        FlowGraph::Arc& twin =
            graph.AdjacencyOf(arc.to)[static_cast<std::size_t>(arc.rev)];
        arc.capacity -= push;
        twin.capacity += push;
        result.cost += arc.cost * static_cast<double>(push);
      }
      result.flow += push;
    }

    // Johnson re-weighting keeps reduced costs non-negative next round.
    for (int v = 0; v < n; ++v) {
      potential_[static_cast<std::size_t>(v)] +=
          std::min(dist_[static_cast<std::size_t>(v)], dsink);
    }
  }

  if constexpr (kValidationEnabled) {
    // Flow conservation: the routed flow leaves the source, enters the
    // sink, and balances at every other node.
    std::vector<std::int64_t> net(static_cast<std::size_t>(n), 0);
    for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
      const auto& arcs = graph.AdjacencyOf(u);
      for (std::int32_t i = 0; i < static_cast<std::int32_t>(arcs.size());
           ++i) {
        if (!arcs[static_cast<std::size_t>(i)].is_forward) continue;
        std::int64_t flow = graph.FlowOn(u, i);
        SJOIN_VALIDATE_MSG(flow >= 0, "negative flow on a forward arc");
        net[static_cast<std::size_t>(u)] += flow;
        net[static_cast<std::size_t>(
            arcs[static_cast<std::size_t>(i)].to)] -= flow;
      }
    }
    for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
      std::int64_t expected =
          u == source ? result.flow : (u == sink ? -result.flow : 0);
      SJOIN_VALIDATE_MSG(net[static_cast<std::size_t>(u)] == expected,
                         "flow not conserved at a node");
    }
  }
  return result;
}

MinCostFlowResult SolveMinCostFlow(FlowGraph& graph, NodeId source,
                                   NodeId sink, std::int64_t target_flow) {
  MinCostFlowSolver solver;
  return solver.Solve(graph, source, sink, target_flow);
}

}  // namespace sjoin
