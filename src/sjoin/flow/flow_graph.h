#ifndef SJOIN_FLOW_FLOW_GRAPH_H_
#define SJOIN_FLOW_FLOW_GRAPH_H_

#include <cstdint>
#include <vector>

/// \file
/// Directed graph with arc capacities and (possibly negative) real costs,
/// stored as adjacency lists of paired forward/residual arcs.
///
/// Both OPT-offline and FlowExpect (Section 3) reduce replacement-decision
/// search to min-cost flow on such graphs; costs are negated (expected)
/// benefits, so negative costs are the common case.

namespace sjoin {

/// Node handle.
using NodeId = std::int32_t;

/// A flow network under construction / being solved. Adding an arc also adds
/// its residual twin with zero capacity.
class FlowGraph {
 public:
  struct Arc {
    NodeId to = 0;
    std::int32_t rev = 0;  // Index of the twin arc within adjacency_[to].
    std::int64_t capacity = 0;
    double cost = 0.0;
    bool is_forward = false;  // False for residual twins.
  };

  /// Adds a node and returns its id.
  NodeId AddNode();

  /// Adds `count` nodes; returns the id of the first.
  NodeId AddNodes(int count);

  /// Adds a forward arc and its zero-capacity residual twin. Returns the
  /// index of the forward arc within `from`'s adjacency list, usable with
  /// FlowOn().
  std::int32_t AddArc(NodeId from, NodeId to, std::int64_t capacity,
                      double cost);

  int NumNodes() const { return static_cast<int>(adjacency_.size()); }

  std::vector<Arc>& AdjacencyOf(NodeId node) {
    return adjacency_[static_cast<std::size_t>(node)];
  }
  const std::vector<Arc>& AdjacencyOf(NodeId node) const {
    return adjacency_[static_cast<std::size_t>(node)];
  }

  /// Flow pushed on a forward arc identified by (from, arc_index): the
  /// residual twin's remaining capacity.
  std::int64_t FlowOn(NodeId from, std::int32_t arc_index) const;

  /// Restores every forward arc to unit capacity and every residual twin
  /// to zero, undoing a previous solve. For template graphs (FlowExpect)
  /// whose forward arcs are all unit-capacity, this plus SetArcCost makes
  /// the graph reusable across steps without rebuilding it.
  void ResetUnitCapacities();

  /// Rewrites the cost of the forward arc identified by (from, arc_index);
  /// its residual twin gets the negated cost.
  void SetArcCost(NodeId from, std::int32_t arc_index, double cost);

 private:
  std::vector<std::vector<Arc>> adjacency_;
};

}  // namespace sjoin

#endif  // SJOIN_FLOW_FLOW_GRAPH_H_
