#include "sjoin/approx/cubic_curve.h"

#include <algorithm>
#include <cmath>

#include "sjoin/common/check.h"

namespace sjoin {

double CatmullRom(double p0, double p1, double p2, double p3, double u) {
  double u2 = u * u;
  double u3 = u2 * u;
  return 0.5 * ((2.0 * p1) + (-p0 + p2) * u +
                (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3) * u2 +
                (-p0 + 3.0 * p1 - 3.0 * p2 + p3) * u3);
}

CubicCurve::CubicCurve(double x0, double dx, std::vector<double> control_values)
    : x0_(x0), dx_(dx), values_(std::move(control_values)) {
  SJOIN_CHECK_GT(dx, 0.0);
  SJOIN_CHECK_GE(values_.size(), 2u);
}

double CubicCurve::At(double x) const {
  std::size_t n = values_.size();
  double pos = (x - x0_) / dx_;
  pos = std::clamp(pos, 0.0, static_cast<double>(n - 1));
  std::size_t i = static_cast<std::size_t>(std::floor(pos));
  if (i >= n - 1) i = n - 2;
  double u = pos - static_cast<double>(i);
  // Virtual boundary neighbors by linear reflection, so that linear
  // control data is reproduced exactly across the whole domain.
  double p1 = values_[i];
  double p2 = values_[i + 1];
  double p0 = i == 0 ? 2.0 * values_[0] - values_[1] : values_[i - 1];
  double p3 = i + 2 > n - 1 ? 2.0 * values_[n - 1] - values_[n - 2]
                            : values_[i + 2];
  return CatmullRom(p0, p1, p2, p3, u);
}

}  // namespace sjoin
