#include "sjoin/approx/bicubic_surface.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "sjoin/approx/cubic_curve.h"
#include "sjoin/common/check.h"

namespace sjoin {

BicubicSurface::BicubicSurface(double x0, double dx, int nx, double y0,
                               double dy, int ny, std::vector<double> control)
    : x0_(x0), dx_(dx), nx_(nx), y0_(y0), dy_(dy), ny_(ny),
      control_(std::move(control)) {
  SJOIN_CHECK_GE(nx_, 2);
  SJOIN_CHECK_GE(ny_, 2);
  SJOIN_CHECK_GT(dx_, 0.0);
  SJOIN_CHECK_GT(dy_, 0.0);
  SJOIN_CHECK_EQ(control_.size(),
                 static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_));
}

double BicubicSurface::ControlAt(int i, int j) const {
  SJOIN_CHECK_GE(i, 0);
  SJOIN_CHECK_LT(i, nx_);
  SJOIN_CHECK_GE(j, 0);
  SJOIN_CHECK_LT(j, ny_);
  return control_[static_cast<std::size_t>(i) * static_cast<std::size_t>(ny_) +
                  static_cast<std::size_t>(j)];
}

double BicubicSurface::At(double x, double y) const {
  double px = std::clamp((x - x0_) / dx_, 0.0, static_cast<double>(nx_ - 1));
  double py = std::clamp((y - y0_) / dy_, 0.0, static_cast<double>(ny_ - 1));
  int i = std::min(static_cast<int>(std::floor(px)), nx_ - 2);
  int j = std::min(static_cast<int>(std::floor(py)), ny_ - 2);
  double u = px - static_cast<double>(i);
  double v = py - static_cast<double>(j);

  // Virtual boundary neighbors by linear reflection (per axis), so linear
  // control data is reproduced exactly across the whole domain. Offsets
  // only ever step one cell outside the grid.
  std::function<double(int, int)> extended = [&](int ii, int jj) -> double {
    if (ii < 0) return 2.0 * extended(0, jj) - extended(1, jj);
    if (ii > nx_ - 1) {
      return 2.0 * extended(nx_ - 1, jj) - extended(nx_ - 2, jj);
    }
    if (jj < 0) return 2.0 * extended(ii, 0) - extended(ii, 1);
    if (jj > ny_ - 1) {
      return 2.0 * extended(ii, ny_ - 1) - extended(ii, ny_ - 2);
    }
    return ControlAt(ii, jj);
  };

  // Interpolate along y for the four relevant rows, then along x.
  double rows[4];
  for (int di = -1; di <= 2; ++di) {
    rows[di + 1] = CatmullRom(extended(i + di, j - 1), extended(i + di, j),
                              extended(i + di, j + 1),
                              extended(i + di, j + 2), v);
  }
  return CatmullRom(rows[0], rows[1], rows[2], rows[3], u);
}

}  // namespace sjoin
