#ifndef SJOIN_APPROX_BICUBIC_SURFACE_H_
#define SJOIN_APPROX_BICUBIC_SURFACE_H_

#include <vector>

/// \file
/// Bicubic interpolation over a uniform 2-D control grid.
///
/// The REAL experiment (Section 6.5) precomputes the HEEB surface
/// h2(v_x, x_t0) for an AR(1) reference stream and stores "bicubic
/// interpolation of 25 control points equally spaced over the domain"
/// (Figures 15-16). This class is that compact representation.

namespace sjoin {

/// Catmull-Rom bicubic surface over control values z[i][j] at
/// (x0 + i*dx, y0 + j*dy). Evaluation clamps to the grid domain and is
/// exact at control points.
class BicubicSurface {
 public:
  /// `control` is row-major: control[i * ny + j] = z at (x_i, y_j).
  /// Requires nx, ny >= 2 and positive spacings.
  BicubicSurface(double x0, double dx, int nx, double y0, double dy, int ny,
                 std::vector<double> control);

  /// Interpolated value at (x, y), clamped to the domain.
  double At(double x, double y) const;

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  double x0() const { return x0_; }
  double y0() const { return y0_; }
  double dx() const { return dx_; }
  double dy() const { return dy_; }

  /// Control value z at grid index (i, j).
  double ControlAt(int i, int j) const;

 private:
  double x0_, dx_;
  int nx_;
  double y0_, dy_;
  int ny_;
  std::vector<double> control_;
};

}  // namespace sjoin

#endif  // SJOIN_APPROX_BICUBIC_SURFACE_H_
