#ifndef SJOIN_APPROX_CUBIC_CURVE_H_
#define SJOIN_APPROX_CUBIC_CURVE_H_

#include <vector>

/// \file
/// 1-D piecewise-cubic (Catmull-Rom) interpolation over a uniform grid of
/// control points. Used to store a compact approximation of the
/// precomputed HEEB function h1 for random walks (Theorem 5(2)).

namespace sjoin {

/// Interpolates control values placed at x0, x0 + dx, ..., x0 + (n-1)dx.
/// Evaluation clamps to the grid domain. Exact at control points.
class CubicCurve {
 public:
  /// Requires at least two control points and dx > 0.
  CubicCurve(double x0, double dx, std::vector<double> control_values);

  /// Interpolated value at x (clamped to [x0, x0 + (n-1)dx]).
  double At(double x) const;

  double x0() const { return x0_; }
  double dx() const { return dx_; }
  std::size_t num_points() const { return values_.size(); }

 private:
  double x0_;
  double dx_;
  std::vector<double> values_;
};

/// Catmull-Rom basis evaluation given the four neighboring control values
/// p0..p3 and the fractional position u in [0, 1] between p1 and p2.
double CatmullRom(double p0, double p1, double p2, double p3, double u);

}  // namespace sjoin

#endif  // SJOIN_APPROX_CUBIC_CURVE_H_
