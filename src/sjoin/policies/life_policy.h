#ifndef SJOIN_POLICIES_LIFE_POLICY_H_
#define SJOIN_POLICIES_LIFE_POLICY_H_

#include <unordered_map>

#include "sjoin/engine/scored_policy.h"

/// \file
/// LIFE [Das, Gehrke, Riedewald 2003] — rank tuples by estimated match
/// probability times remaining lifetime.
///
/// LIFE needs a notion of tuple lifetime. The paper's experiments derive it
/// from the sliding window (or, for the trend configurations, from the
/// noise bound): a tuple that arrived at time a has remaining lifetime
/// max(0, lifetime - (now - a)). Section 7 shows why p(x)·l(x) can be too
/// pessimistic: it assumes nothing better will arrive during the tuple's
/// whole remaining life.

namespace sjoin {

/// Probability x lifetime eviction.
class LifePolicy final : public ScoredPolicy {
 public:
  /// `lifetime`: assumed total lifetime of a tuple, in time steps. When the
  /// simulator runs with sliding-window semantics, the effective lifetime
  /// is the smaller of this and the window.
  explicit LifePolicy(Time lifetime) : lifetime_(lifetime) {}

  void Reset() override;

  const char* name() const override { return "LIFE"; }

 protected:
  /// BeginStep folds the new observations; Score is then a read-only
  /// frequency lookup, safe to run from parallel shards.
  bool ShardScorable() const override { return true; }
  /// Batch kernel: effective lifetime, partner tables, and consumed
  /// counts are hoisted, leaving one hash probe per lane.
  bool BatchScorable() const override { return true; }
  void BeginStep(const PolicyContext& ctx) override;
  double Score(const Tuple& tuple, const PolicyContext& ctx) override;
  void ScoreBatchInto(const CandidateBatch& batch, const PolicyContext& ctx,
                      double* out) override;

 private:
  Time lifetime_;
  std::unordered_map<Value, std::int64_t> counts_[2];
  Time consumed_r_ = 0;
  Time consumed_s_ = 0;
};

}  // namespace sjoin

#endif  // SJOIN_POLICIES_LIFE_POLICY_H_
