#include "sjoin/policies/opt_offline_policy.h"

#include <cmath>
#include <unordered_map>

#include "sjoin/common/check.h"
#include "sjoin/engine/tuple.h"
#include "sjoin/flow/flow_graph.h"
#include "sjoin/flow/min_cost_flow.h"

namespace sjoin {
namespace {

/// Bookkeeping for one tuple's chain in the flow graph.
struct TupleChain {
  TupleId id = 0;
  Time arrival = 0;
  Time last_match = 0;  // Last partner match time (> arrival).
  // Arc handles (from-node, index within its adjacency list).
  NodeId entry_from = -1;
  std::int32_t entry_arc = -1;
  std::vector<NodeId> step_from;          // Node of X_t for each t.
  std::vector<std::int32_t> chain_arcs;   // X_t -> X_{t+1} (may be -1 tail).
};

}  // namespace

OptOfflinePolicy::OptOfflinePolicy(const std::vector<Value>& r,
                                   const std::vector<Value>& s,
                                   std::size_t capacity,
                                   std::optional<Time> window) {
  SJOIN_CHECK_EQ(r.size(), s.size());
  SJOIN_CHECK_GE(capacity, 1u);
  Time len = static_cast<Time>(r.size());
  schedule_.assign(static_cast<std::size_t>(len), {});
  if (len == 0) return;

  // Index partner occurrences by value for fast match-time lookup.
  std::unordered_map<Value, std::vector<Time>> r_times;
  std::unordered_map<Value, std::vector<Time>> s_times;
  for (Time t = 0; t < len; ++t) {
    r_times[r[static_cast<std::size_t>(t)]].push_back(t);
    s_times[s[static_cast<std::size_t>(t)]].push_back(t);
  }

  FlowGraph graph;
  // Time chain nodes T_0 .. T_len.
  NodeId time_first = graph.AddNodes(static_cast<int>(len) + 1);
  auto time_node = [time_first](Time t) {
    return time_first + static_cast<NodeId>(t);
  };
  for (Time t = 0; t < len; ++t) {
    graph.AddArc(time_node(t), time_node(t + 1),
                 static_cast<std::int64_t>(capacity), 0.0);
  }

  // One chain per tuple with at least one future match.
  std::vector<TupleChain> chains;
  auto add_chain = [&](StreamSide side, Time arrival, Value value) {
    const auto& partner_times =
        side == StreamSide::kR ? s_times : r_times;
    auto it = partner_times.find(value);
    if (it == partner_times.end()) return;
    // Match times strictly after arrival (and within the window if any).
    std::vector<Time> matches;
    for (Time u : it->second) {
      if (u <= arrival) continue;
      if (window.has_value() && u - arrival > *window) break;
      matches.push_back(u);
    }
    if (matches.empty()) return;
    TupleChain chain;
    chain.id = TupleIdAt(side, arrival);
    chain.arrival = arrival;
    chain.last_match = matches.back();

    // Nodes X_t for t in [arrival, last_match - 1]; x in K_t earns benefit
    // at t+1 when the partner matches.
    std::size_t match_cursor = 0;
    for (Time t = arrival; t <= chain.last_match - 1; ++t) {
      chain.step_from.push_back(graph.AddNode());
    }
    chain.entry_from = time_node(arrival);
    chain.entry_arc =
        graph.AddArc(chain.entry_from, chain.step_from.front(), 1, 0.0);
    for (Time t = arrival; t <= chain.last_match - 1; ++t) {
      std::size_t index = static_cast<std::size_t>(t - arrival);
      NodeId node = chain.step_from[index];
      // Does the partner match at t + 1?
      while (match_cursor < matches.size() && matches[match_cursor] <= t) {
        ++match_cursor;
      }
      double cost = (match_cursor < matches.size() &&
                     matches[match_cursor] == t + 1)
                        ? -1.0
                        : 0.0;
      // Exit: the slot frees at step t+1 (benefit at t+1 still earned).
      graph.AddArc(node, time_node(t + 1), 1, cost);
      // Continue holding the tuple through step t+1.
      if (t + 1 <= chain.last_match - 1) {
        chain.chain_arcs.push_back(
            graph.AddArc(node, chain.step_from[index + 1], 1, cost));
      }
    }
    chains.push_back(std::move(chain));
  };

  for (Time t = 0; t < len; ++t) {
    add_chain(StreamSide::kR, t, r[static_cast<std::size_t>(t)]);
    add_chain(StreamSide::kS, t, s[static_cast<std::size_t>(t)]);
  }

  MinCostFlowResult result =
      SolveMinCostFlow(graph, time_node(0), time_node(len),
                       static_cast<std::int64_t>(capacity));
  SJOIN_CHECK_EQ(result.flow, static_cast<std::int64_t>(capacity));
  optimal_benefit_ = static_cast<std::int64_t>(std::llround(-result.cost));

  // Decode the schedule: a tuple is cached at steps [arrival, e] where e is
  // the last chain node its flow unit traverses.
  for (const TupleChain& chain : chains) {
    if (graph.FlowOn(chain.entry_from, chain.entry_arc) == 0) continue;
    Time t = chain.arrival;
    schedule_[static_cast<std::size_t>(t)].push_back(chain.id);
    for (std::size_t i = 0; i < chain.chain_arcs.size(); ++i) {
      if (graph.FlowOn(chain.step_from[i], chain.chain_arcs[i]) == 0) break;
      ++t;
      schedule_[static_cast<std::size_t>(t)].push_back(chain.id);
    }
  }
}

std::vector<TupleId> OptOfflinePolicy::SelectRetained(
    const PolicyContext& ctx) {
  SJOIN_CHECK_LT(static_cast<std::size_t>(ctx.now), schedule_.size());
  return schedule_[static_cast<std::size_t>(ctx.now)];
}

}  // namespace sjoin
