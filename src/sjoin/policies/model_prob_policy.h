#ifndef SJOIN_POLICIES_MODEL_PROB_POLICY_H_
#define SJOIN_POLICIES_MODEL_PROB_POLICY_H_

#include "sjoin/engine/scored_caching_policy.h"
#include "sjoin/engine/scored_policy.h"
#include "sjoin/stochastic/process.h"

/// \file
/// Model-driven PROB (Section 5.2): keep the tuples whose join attribute
/// values are most likely to appear next in the partner stream, using the
/// *model's* predictive distribution rather than observed frequencies.
///
/// For stationary independent streams this is exactly the policy the
/// framework proves optimal (the joining analogue of A0); for other
/// processes it is the one-step-greedy baseline, which HEEB generalizes by
/// weighting the whole future.

namespace sjoin {

/// One-step model-probability eviction for the joining problem.
class ModelProbPolicy final : public ScoredPolicy {
 public:
  /// Processes are not owned and must outlive the policy.
  ModelProbPolicy(const StochasticProcess* r_process,
                  const StochasticProcess* s_process)
      : r_process_(r_process), s_process_(s_process) {}

  const char* name() const override { return "MODEL-PROB"; }

 protected:
  void BeginStep(const PolicyContext& ctx) override;
  double Score(const Tuple& tuple, const PolicyContext& ctx) override;

 private:
  const StochasticProcess* r_process_;
  const StochasticProcess* s_process_;
  // Next-step predictive pmfs, refreshed per step.
  DiscreteDistribution next_[2];
};

/// The caching analogue — the A0 algorithm of [Aho, Denning, Ullman 1971]:
/// evict the database tuple with the lowest (model) reference probability.
/// Optimal for (almost) stationary reference streams (Section 5.2).
class A0CachingPolicy final : public ScoredCachingPolicy {
 public:
  explicit A0CachingPolicy(const StochasticProcess* reference)
      : reference_(reference) {}

  const char* name() const override { return "A0"; }

 protected:
  double Score(Value v, const CachingContext& ctx) override {
    return reference_->Predict(*ctx.history, ctx.now + 1).Prob(v);
  }

 private:
  const StochasticProcess* reference_;
};

}  // namespace sjoin

#endif  // SJOIN_POLICIES_MODEL_PROB_POLICY_H_
