#include "sjoin/policies/prob_policy.h"

namespace sjoin {

void ProbPolicy::Reset() {
  counts_[0].clear();
  counts_[1].clear();
  consumed_r_ = 0;
  consumed_s_ = 0;
}

void ProbPolicy::BeginStep(const PolicyContext& ctx) {
  // Fold newly observed values into the frequency tables.
  while (consumed_r_ < ctx.history_r->size()) {
    ++counts_[SideIndex(StreamSide::kR)][ctx.history_r->at(consumed_r_)];
    ++consumed_r_;
  }
  while (consumed_s_ < ctx.history_s->size()) {
    ++counts_[SideIndex(StreamSide::kS)][ctx.history_s->at(consumed_s_)];
    ++consumed_s_;
  }
}

double ProbPolicy::Score(const Tuple& tuple, const PolicyContext& ctx) {
  Time age = ctx.now - tuple.arrival;
  bool expired =
      (assumed_lifetime_.has_value() && age > *assumed_lifetime_) ||
      !InWindow(tuple, ctx.now, ctx.window);
  if (expired) return -1.0;
  const auto& partner_counts = counts_[SideIndex(Partner(tuple.side))];
  auto it = partner_counts.find(tuple.value);
  std::int64_t count = it == partner_counts.end() ? 0 : it->second;
  Time seen = tuple.side == StreamSide::kR ? consumed_s_ : consumed_r_;
  if (seen == 0) return 0.0;
  return static_cast<double>(count) / static_cast<double>(seen);
}

}  // namespace sjoin
