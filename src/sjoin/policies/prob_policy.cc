#include "sjoin/policies/prob_policy.h"

namespace sjoin {

void ProbPolicy::Reset() {
  counts_[0].clear();
  counts_[1].clear();
  consumed_r_ = 0;
  consumed_s_ = 0;
}

void ProbPolicy::BeginStep(const PolicyContext& ctx) {
  // Fold newly observed values into the frequency tables.
  while (consumed_r_ < ctx.history_r->size()) {
    ++counts_[SideIndex(StreamSide::kR)][ctx.history_r->at(consumed_r_)];
    ++consumed_r_;
  }
  while (consumed_s_ < ctx.history_s->size()) {
    ++counts_[SideIndex(StreamSide::kS)][ctx.history_s->at(consumed_s_)];
    ++consumed_s_;
  }
}

double ProbPolicy::Score(const Tuple& tuple, const PolicyContext& ctx) {
  Time age = ctx.now - tuple.arrival;
  bool expired =
      (assumed_lifetime_.has_value() && age > *assumed_lifetime_) ||
      !InWindow(tuple, ctx.now, ctx.window);
  if (expired) return -1.0;
  const auto& partner_counts = counts_[SideIndex(Partner(tuple.side))];
  auto it = partner_counts.find(tuple.value);
  std::int64_t count = it == partner_counts.end() ? 0 : it->second;
  Time seen = tuple.side == StreamSide::kR ? consumed_s_ : consumed_r_;
  if (seen == 0) return 0.0;
  return static_cast<double>(count) / static_cast<double>(seen);
}

void ProbPolicy::ScoreBatchInto(const CandidateBatch& batch,
                                const PolicyContext& ctx, double* out) {
  const bool windowed = ctx.window.has_value();
  const Time w = windowed ? *ctx.window : 0;
  const bool has_life = assumed_lifetime_.has_value();
  const Time life = has_life ? *assumed_lifetime_ : 0;
  // Per-side partner tables and consumed counts, hoisted; the quotient is
  // the same division Score() performs.
  const std::unordered_map<Value, std::int64_t>* partner_counts[2] = {
      &counts_[SideIndex(Partner(StreamSide::kR))],
      &counts_[SideIndex(Partner(StreamSide::kS))]};
  const Time seen[2] = {consumed_s_, consumed_r_};
  for (std::size_t i = 0; i < batch.size; ++i) {
    const Time age = ctx.now - batch.arrivals[i];
    if ((has_life && age > life) || (windowed && age > w)) {
      out[i] = -1.0;
      continue;
    }
    const int s = batch.sides[i];
    if (seen[s] == 0) {
      out[i] = 0.0;
      continue;
    }
    auto it = partner_counts[s]->find(batch.values[i]);
    const std::int64_t count =
        it == partner_counts[s]->end() ? 0 : it->second;
    out[i] = static_cast<double>(count) / static_cast<double>(seen[s]);
  }
}

}  // namespace sjoin
