#ifndef SJOIN_POLICIES_SCENARIO_OPTIMAL_POLICIES_H_
#define SJOIN_POLICIES_SCENARIO_OPTIMAL_POLICIES_H_

#include <cstdlib>

#include "sjoin/engine/scored_caching_policy.h"

/// \file
/// Caching policies whose optimality the framework *derives* for specific
/// scenarios via ECB dominance (Section 5). Each is a one-liner once the
/// dominance analysis identifies the total order on candidates.

namespace sjoin {

/// Section 5.3 (linear trend, noise bounded on the right): the reference
/// window only moves forward, so the tuple with the smallest join
/// attribute value falls out of reach first — discarding it is optimal
/// for any non-decreasing trend.
class SmallestValueCachingPolicy final : public ScoredCachingPolicy {
 public:
  const char* name() const override { return "SMALLEST-VALUE"; }

 protected:
  double Score(Value v, const CachingContext& ctx) override {
    (void)ctx;
    return static_cast<double>(v);
  }
};

/// Section 5.5 (zero-drift random walk, symmetric unimodal steps): all
/// ECBs are comparable and ranked by distance from the current position;
/// discarding the farthest tuple is optimal.
class DistanceCachingPolicy final : public ScoredCachingPolicy {
 public:
  const char* name() const override { return "NEAREST"; }

 protected:
  double Score(Value v, const CachingContext& ctx) override {
    return -static_cast<double>(std::llabs(v - ctx.history->back()));
  }
};

}  // namespace sjoin

#endif  // SJOIN_POLICIES_SCENARIO_OPTIMAL_POLICIES_H_
