#include "sjoin/policies/lfd_policy.h"

#include <algorithm>

namespace sjoin {

LfdCachingPolicy::LfdCachingPolicy(const std::vector<Value>& full_sequence) {
  for (Time t = 0; t < static_cast<Time>(full_sequence.size()); ++t) {
    reference_times_[full_sequence[static_cast<std::size_t>(t)]].push_back(t);
  }
}

double LfdCachingPolicy::Score(Value v, const CachingContext& ctx) {
  auto it = reference_times_.find(v);
  if (it == reference_times_.end()) return 0.0;  // Never referenced at all.
  const std::vector<Time>& times = it->second;
  auto next = std::upper_bound(times.begin(), times.end(), ctx.now);
  if (next == times.end()) return 0.0;  // Never referenced again.
  // Sooner next reference => higher score (evict the farthest).
  return 1.0 / static_cast<double>(*next - ctx.now);
}

}  // namespace sjoin
