#ifndef SJOIN_POLICIES_OPT_OFFLINE_POLICY_H_
#define SJOIN_POLICIES_OPT_OFFLINE_POLICY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "sjoin/engine/replacement_policy.h"

/// \file
/// OPT-offline [Das, Gehrke, Riedewald 2003] — the optimal offline cache
/// schedule for the MAX-subset joining problem, computed once with full
/// knowledge of both streams by solving a min-cost network flow.
///
/// Rather than materializing the paper's O((k+l)·l)-node slice graph for
/// the whole stream length, this implementation uses the equivalent
/// compressed time-expanded form: k units of "slot" flow travel along a
/// time chain; each tuple contributes a chain of per-step nodes spanning
/// its useful life (arrival to last future match), entered only at its
/// arrival; arcs leaving a tuple node at step t carry cost -1 when the
/// partner stream matches the tuple at t+1. A min-cost integral flow of
/// value k is exactly an optimal replacement schedule.

namespace sjoin {

/// Optimal offline joining policy. Construction solves the flow problem;
/// SelectRetained replays the schedule.
class OptOfflinePolicy final : public ReplacementPolicy {
 public:
  /// `r` and `s` are the full realizations; `capacity` is the cache size.
  /// `window`, if set, restricts matches to sliding-window semantics.
  OptOfflinePolicy(const std::vector<Value>& r, const std::vector<Value>& s,
                   std::size_t capacity,
                   std::optional<Time> window = std::nullopt);

  std::vector<TupleId> SelectRetained(const PolicyContext& ctx) override;

  const char* name() const override { return "OPT-OFFLINE"; }

  /// Optimal number of cache-produced results (the negated flow cost);
  /// matches what JoinSimulator counts with warmup 0.
  std::int64_t optimal_benefit() const { return optimal_benefit_; }

 private:
  /// schedule_[t] = ids retained at the end of step t.
  std::vector<std::vector<TupleId>> schedule_;
  std::int64_t optimal_benefit_ = 0;
};

}  // namespace sjoin

#endif  // SJOIN_POLICIES_OPT_OFFLINE_POLICY_H_
