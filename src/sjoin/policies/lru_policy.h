#ifndef SJOIN_POLICIES_LRU_POLICY_H_
#define SJOIN_POLICIES_LRU_POLICY_H_

#include <unordered_map>

#include "sjoin/engine/scored_caching_policy.h"

/// \file
/// LRU — evict the least recently referenced database tuple. A classic
/// approximation of the A0 algorithm [Aho, Denning, Ullman 1971]; compared
/// against HEEB on the REAL workload (Figure 13).

namespace sjoin {

/// Least-recently-used caching policy ("perfect" recency bookkeeping).
class LruCachingPolicy final : public ScoredCachingPolicy {
 public:
  void Reset() override { last_reference_.clear(); }

  void Observe(const CachingContext& ctx) override {
    last_reference_[ctx.referenced] = ctx.now;
  }

  const char* name() const override { return "LRU"; }

  /// Observe mutates; Score is a read-only recency lookup.
  bool ShardScorable() const override { return true; }

 protected:
  double Score(Value v, const CachingContext& ctx) override {
    (void)ctx;
    auto it = last_reference_.find(v);
    return it == last_reference_.end()
               ? -1.0
               : static_cast<double>(it->second);
  }

 private:
  std::unordered_map<Value, Time> last_reference_;
};

}  // namespace sjoin

#endif  // SJOIN_POLICIES_LRU_POLICY_H_
