#include "sjoin/policies/lfu_policy.h"

namespace sjoin {

PerfectLfuCachingPolicy::PerfectLfuCachingPolicy(
    const std::vector<Value>& full_sequence) {
  if (full_sequence.empty()) return;
  for (Value v : full_sequence) frequency_[v] += 1.0;
  for (auto& [value, count] : frequency_) {
    (void)value;
    count /= static_cast<double>(full_sequence.size());
  }
}

}  // namespace sjoin
