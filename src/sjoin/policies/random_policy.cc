#include "sjoin/policies/random_policy.h"

namespace sjoin {

double RandomPolicy::Score(const Tuple& tuple, const PolicyContext& ctx) {
  Time age = ctx.now - tuple.arrival;
  bool expired =
      (assumed_lifetime_.has_value() && age > *assumed_lifetime_) ||
      !InWindow(tuple, ctx.now, ctx.window);
  // Expired tuples rank strictly below all live tuples; among live tuples
  // (and among expired ones) the ordering is uniformly random.
  double base = expired ? 0.0 : 1.0;
  return base + rng_.UniformReal();
}

}  // namespace sjoin
