#ifndef SJOIN_POLICIES_RANDOM_POLICY_H_
#define SJOIN_POLICIES_RANDOM_POLICY_H_

#include <optional>

#include "sjoin/common/rng.h"
#include "sjoin/engine/scored_policy.h"

/// \file
/// RAND — discard tuples uniformly at random (Section 6.2).
///
/// Following the paper's experimental setup, RAND can be made aware of an
/// assumed tuple lifetime ("sliding window"): tuples whose age exceeds it
/// are discarded first, since they can no longer contribute results.

namespace sjoin {

/// Random eviction, optionally lifetime-aware.
class RandomPolicy final : public ScoredPolicy {
 public:
  /// `assumed_lifetime`: if set, tuples older than this many steps score
  /// below every live tuple and are discarded first (the paper derives it
  /// from the noise bound in the TOWER/ROOF/FLOOR configurations).
  explicit RandomPolicy(std::uint64_t seed,
                        std::optional<Time> assumed_lifetime = std::nullopt)
      : rng_(seed), seed_(seed), assumed_lifetime_(assumed_lifetime) {}

  void Reset() override { rng_ = Rng(seed_); }

  const char* name() const override { return "RAND"; }

 protected:
  double Score(const Tuple& tuple, const PolicyContext& ctx) override;

 private:
  Rng rng_;
  std::uint64_t seed_;
  std::optional<Time> assumed_lifetime_;
};

}  // namespace sjoin

#endif  // SJOIN_POLICIES_RANDOM_POLICY_H_
