#ifndef SJOIN_POLICIES_PROB_POLICY_H_
#define SJOIN_POLICIES_PROB_POLICY_H_

#include <optional>
#include <unordered_map>

#include "sjoin/engine/scored_policy.h"

/// \file
/// PROB [Das, Gehrke, Riedewald 2003] — keep the tuples whose join
/// attribute values appear most frequently in the partner stream.
///
/// The original heuristic estimates the match probability from the
/// observed past; the paper shows (Section 5.2) that with stationary
/// independent streams this is optimal, while with trends it fails because
/// "new arrivals tend to be least frequently joined in the past"
/// (Section 6.3). Like RAND, it can be made lifetime-aware so expired
/// tuples go first.

namespace sjoin {

/// Frequency-based eviction.
class ProbPolicy final : public ScoredPolicy {
 public:
  explicit ProbPolicy(std::optional<Time> assumed_lifetime = std::nullopt)
      : assumed_lifetime_(assumed_lifetime) {}

  void Reset() override;

  const char* name() const override { return "PROB"; }

 protected:
  /// BeginStep folds the new observations; Score is then a read-only
  /// frequency lookup, safe to run from parallel shards.
  bool ShardScorable() const override { return true; }
  /// Batch kernel: the partner table pointer and consumed count are
  /// hoisted per side, leaving one hash probe per lane.
  bool BatchScorable() const override { return true; }
  void BeginStep(const PolicyContext& ctx) override;
  double Score(const Tuple& tuple, const PolicyContext& ctx) override;
  void ScoreBatchInto(const CandidateBatch& batch, const PolicyContext& ctx,
                      double* out) override;

 private:
  std::optional<Time> assumed_lifetime_;
  // Observed value frequencies per stream (index by SideIndex).
  std::unordered_map<Value, std::int64_t> counts_[2];
  Time consumed_r_ = 0;
  Time consumed_s_ = 0;
};

}  // namespace sjoin

#endif  // SJOIN_POLICIES_PROB_POLICY_H_
