#ifndef SJOIN_POLICIES_EDGE_BUDGET_POLICY_H_
#define SJOIN_POLICIES_EDGE_BUDGET_POLICY_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sjoin/core/lifetime_fn.h"
#include "sjoin/engine/ranked_select.h"
#include "sjoin/engine/score_memo.h"
#include "sjoin/engine/stream_engine.h"
#include "sjoin/stochastic/process.h"

/// \file
/// Per-edge cache budgeting for the multi-join problem (DESIGN.md §2f) —
/// the ECB/HEEB extension the paper never did: instead of ranking every
/// candidate by its *summed* expected benefit (Appendix C), split the
/// total capacity k across the join edges in proportion to each edge's
/// observed expected-benefit mass, and let each edge retain its own best
/// incident tuples under its budget.
///
/// The per-edge score of a tuple x on edge e = (a, b) is exactly the
/// binary HEEB term against the opposite stream, Σ_Δt Pr{X^p = v_x} L(Δt)
/// — the same per-partner subtotal MultiHeebPolicy computes, so the two
/// policies share the ScoreMemo machinery. Budgets follow a deterministic
/// reallocation schedule: every `realloc_interval` steps the per-edge
/// benefit mass accumulated since the last checkpoint is folded into a
/// decayed counter and k is re-apportioned by largest remainder (ties on
/// the edge index). Between checkpoints budgets are frozen, so — like the
/// probe planner and the PR 7 rebalancer — the whole schedule is a pure
/// function of the observed prefix of the run and replays identically.

namespace sjoin {

/// Shared-cache replacement with per-edge budgets.
class EdgeBudgetPolicy final : public EnginePolicy {
 public:
  struct Options {
    /// ExpLifetime decay for the per-edge HEEB term.
    double alpha = 10.0;
    /// Prediction horizon for the per-edge HEEB term.
    Time horizon = 100;
    /// Steps between budget reallocation checkpoints; >= 1.
    Time realloc_interval = 64;
    /// Multiplier applied to the accumulated benefit mass per checkpoint.
    double decay = 0.5;
    /// Memoize per-(partner, value) HEEB subtotals per step.
    bool use_score_cache = false;
  };

  /// `processes[s]` models stream s; `topology` supplies the join edges.
  /// Neither is owned; both must outlive the policy.
  EdgeBudgetPolicy(const std::vector<const StochasticProcess*>& processes,
                   const StreamTopology* topology, Options options);

  void Reset() override;
  std::vector<TupleId> SelectRetained(const EngineContext& ctx) override;
  const char* name() const override { return "EDGE-BUDGET"; }

  /// Current per-edge budgets (index-aligned with topology join_edges).
  const std::vector<std::size_t>& budgets() const { return budgets_; }
  /// Reallocation checkpoints reached so far.
  std::int64_t realloc_checkpoints() const { return realloc_checkpoints_; }
  const ScoreMemo::Stats& score_cache_stats() const { return memo_.stats(); }

 private:
  /// Largest-remainder apportionment of `total` over `weights` (equal
  /// split, ties to lower indexes, when every weight is zero).
  static void Apportion(std::size_t total,
                        const std::vector<double>& weights,
                        std::vector<std::size_t>* out);

  /// The binary HEEB subtotal of `value` against `partner`, memoized.
  double PartnerSubtotal(int partner, Value value, Time max_dt,
                         ScoreMemo* memo);

  std::vector<const StochasticProcess*> processes_;
  const StreamTopology* topology_;
  Options options_;
  ExpLifetime lifetime_;

  std::vector<std::vector<DiscreteDistribution>> predictions_;
  ScoreMemo memo_;

  /// Benefit mass per edge: decayed history + the current window.
  std::vector<double> decayed_mass_;
  std::vector<double> window_mass_;
  std::vector<std::size_t> budgets_;
  std::int64_t realloc_checkpoints_ = 0;

  // Per-step scratch, hoisted.
  std::vector<std::vector<RankedTuple>> edge_ranked_;
  std::vector<RankedTuple> total_ranked_;
  std::unordered_set<TupleId> claimed_;
};

}  // namespace sjoin

#endif  // SJOIN_POLICIES_EDGE_BUDGET_POLICY_H_
