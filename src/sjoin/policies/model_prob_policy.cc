#include "sjoin/policies/model_prob_policy.h"

namespace sjoin {

void ModelProbPolicy::BeginStep(const PolicyContext& ctx) {
  next_[SideIndex(StreamSide::kR)] =
      r_process_->Predict(*ctx.history_r, ctx.now + 1);
  next_[SideIndex(StreamSide::kS)] =
      s_process_->Predict(*ctx.history_s, ctx.now + 1);
}

double ModelProbPolicy::Score(const Tuple& tuple, const PolicyContext& ctx) {
  if (!InWindow(tuple, ctx.now, ctx.window)) return -1.0;
  return next_[SideIndex(Partner(tuple.side))].Prob(tuple.value);
}

}  // namespace sjoin
