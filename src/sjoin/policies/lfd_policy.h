#ifndef SJOIN_POLICIES_LFD_POLICY_H_
#define SJOIN_POLICIES_LFD_POLICY_H_

#include <unordered_map>
#include <vector>

#include "sjoin/engine/scored_caching_policy.h"

/// \file
/// LFD (Longest Forward Distance) — Belady's optimal offline caching policy
/// [Belady 1966]: evict the tuple whose next reference is farthest in the
/// future. Section 5.1 rederives its optimality from ECB dominance; the
/// REAL experiment (Figure 13) uses it as the offline yardstick.

namespace sjoin {

/// Offline optimal caching policy; requires the full reference sequence.
class LfdCachingPolicy final : public ScoredCachingPolicy {
 public:
  explicit LfdCachingPolicy(const std::vector<Value>& full_sequence);

  const char* name() const override { return "LFD"; }

  /// The reference times are frozen at construction; Score is a read-only
  /// binary search.
  bool ShardScorable() const override { return true; }

 protected:
  double Score(Value v, const CachingContext& ctx) override;

 private:
  /// Reference times per value, ascending.
  std::unordered_map<Value, std::vector<Time>> reference_times_;
};

}  // namespace sjoin

#endif  // SJOIN_POLICIES_LFD_POLICY_H_
