#include "sjoin/policies/life_policy.h"

#include <algorithm>

namespace sjoin {

void LifePolicy::Reset() {
  counts_[0].clear();
  counts_[1].clear();
  consumed_r_ = 0;
  consumed_s_ = 0;
}

void LifePolicy::BeginStep(const PolicyContext& ctx) {
  while (consumed_r_ < ctx.history_r->size()) {
    ++counts_[SideIndex(StreamSide::kR)][ctx.history_r->at(consumed_r_)];
    ++consumed_r_;
  }
  while (consumed_s_ < ctx.history_s->size()) {
    ++counts_[SideIndex(StreamSide::kS)][ctx.history_s->at(consumed_s_)];
    ++consumed_s_;
  }
}

double LifePolicy::Score(const Tuple& tuple, const PolicyContext& ctx) {
  Time effective_lifetime = lifetime_;
  if (ctx.window.has_value()) {
    effective_lifetime = std::min(effective_lifetime, *ctx.window);
  }
  Time remaining = effective_lifetime - (ctx.now - tuple.arrival);
  if (remaining <= 0) return -1.0;

  const auto& partner_counts = counts_[SideIndex(Partner(tuple.side))];
  auto it = partner_counts.find(tuple.value);
  std::int64_t count = it == partner_counts.end() ? 0 : it->second;
  Time seen = tuple.side == StreamSide::kR ? consumed_s_ : consumed_r_;
  double prob = seen == 0 ? 0.0
                          : static_cast<double>(count) /
                                static_cast<double>(seen);
  return prob * static_cast<double>(remaining);
}

void LifePolicy::ScoreBatchInto(const CandidateBatch& batch,
                                const PolicyContext& ctx, double* out) {
  Time effective_lifetime = lifetime_;
  if (ctx.window.has_value()) {
    effective_lifetime = std::min(effective_lifetime, *ctx.window);
  }
  const std::unordered_map<Value, std::int64_t>* partner_counts[2] = {
      &counts_[SideIndex(Partner(StreamSide::kR))],
      &counts_[SideIndex(Partner(StreamSide::kS))]};
  const Time seen[2] = {consumed_s_, consumed_r_};
  for (std::size_t i = 0; i < batch.size; ++i) {
    const Time remaining =
        effective_lifetime - (ctx.now - batch.arrivals[i]);
    if (remaining <= 0) {
      out[i] = -1.0;
      continue;
    }
    const int s = batch.sides[i];
    auto it = partner_counts[s]->find(batch.values[i]);
    const std::int64_t count =
        it == partner_counts[s]->end() ? 0 : it->second;
    const double prob = seen[s] == 0 ? 0.0
                                     : static_cast<double>(count) /
                                           static_cast<double>(seen[s]);
    out[i] = prob * static_cast<double>(remaining);
  }
}

}  // namespace sjoin
