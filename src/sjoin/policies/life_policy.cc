#include "sjoin/policies/life_policy.h"

#include <algorithm>

namespace sjoin {

void LifePolicy::Reset() {
  counts_[0].clear();
  counts_[1].clear();
  consumed_r_ = 0;
  consumed_s_ = 0;
}

void LifePolicy::BeginStep(const PolicyContext& ctx) {
  while (consumed_r_ < ctx.history_r->size()) {
    ++counts_[SideIndex(StreamSide::kR)][ctx.history_r->at(consumed_r_)];
    ++consumed_r_;
  }
  while (consumed_s_ < ctx.history_s->size()) {
    ++counts_[SideIndex(StreamSide::kS)][ctx.history_s->at(consumed_s_)];
    ++consumed_s_;
  }
}

double LifePolicy::Score(const Tuple& tuple, const PolicyContext& ctx) {
  Time effective_lifetime = lifetime_;
  if (ctx.window.has_value()) {
    effective_lifetime = std::min(effective_lifetime, *ctx.window);
  }
  Time remaining = effective_lifetime - (ctx.now - tuple.arrival);
  if (remaining <= 0) return -1.0;

  const auto& partner_counts = counts_[SideIndex(Partner(tuple.side))];
  auto it = partner_counts.find(tuple.value);
  std::int64_t count = it == partner_counts.end() ? 0 : it->second;
  Time seen = tuple.side == StreamSide::kR ? consumed_s_ : consumed_r_;
  double prob = seen == 0 ? 0.0
                          : static_cast<double>(count) /
                                static_cast<double>(seen);
  return prob * static_cast<double>(remaining);
}

}  // namespace sjoin
