#ifndef SJOIN_POLICIES_RANDOM_CACHING_POLICY_H_
#define SJOIN_POLICIES_RANDOM_CACHING_POLICY_H_

#include "sjoin/common/rng.h"
#include "sjoin/engine/scored_caching_policy.h"

/// \file
/// RAND for the caching problem — evict a uniformly random tuple. The
/// oblivious baseline of the REAL experiment (Figure 13).

namespace sjoin {

/// Random caching eviction; the fetched tuple is always admitted.
class RandomCachingPolicy final : public ScoredCachingPolicy {
 public:
  explicit RandomCachingPolicy(std::uint64_t seed)
      : rng_(seed), seed_(seed) {}

  void Reset() override { rng_ = Rng(seed_); }

  const char* name() const override { return "RAND"; }

 protected:
  double Score(Value v, const CachingContext& ctx) override {
    // Admit the newly fetched tuple; evict uniformly among the rest.
    if (v == ctx.referenced) return 2.0;
    return rng_.UniformReal();
  }

 private:
  Rng rng_;
  std::uint64_t seed_;
};

}  // namespace sjoin

#endif  // SJOIN_POLICIES_RANDOM_CACHING_POLICY_H_
