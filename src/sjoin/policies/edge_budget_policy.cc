#include "sjoin/policies/edge_budget_policy.h"

#include <algorithm>
#include <cmath>

#include "sjoin/common/check.h"

namespace sjoin {

EdgeBudgetPolicy::EdgeBudgetPolicy(
    const std::vector<const StochasticProcess*>& processes,
    const StreamTopology* topology, Options options)
    : processes_(processes),
      topology_(topology),
      options_(options),
      lifetime_(options.alpha) {
  SJOIN_CHECK(topology != nullptr);
  SJOIN_CHECK_EQ(static_cast<int>(processes_.size()),
                 topology_->num_streams());
  for (const StochasticProcess* process : processes_) {
    SJOIN_CHECK(process != nullptr);
  }
  SJOIN_CHECK_GE(options_.horizon, 1);
  SJOIN_CHECK_GE(options_.realloc_interval, 1);
  SJOIN_CHECK(options_.decay > 0.0 && options_.decay <= 1.0);
}

void EdgeBudgetPolicy::Reset() {
  const std::size_t edges = topology_->join_edges().size();
  decayed_mass_.assign(edges, 0.0);
  window_mass_.assign(edges, 0.0);
  budgets_.clear();  // Re-apportioned on the first step.
  realloc_checkpoints_ = 0;
  memo_.Reset(topology_->num_streams());
  edge_ranked_.assign(edges, {});
}

void EdgeBudgetPolicy::Apportion(std::size_t total,
                                 const std::vector<double>& weights,
                                 std::vector<std::size_t>* out) {
  const std::size_t m = weights.size();
  out->assign(m, 0);
  double sum = 0.0;
  for (double w : weights) sum += w;
  if (!(sum > 0.0)) {
    // Cold start / all-zero mass: equal split, remainder to low indexes.
    for (std::size_t e = 0; e < m; ++e) {
      (*out)[e] = total / m + (e < total % m ? 1 : 0);
    }
    return;
  }
  std::size_t assigned = 0;
  std::vector<std::pair<double, std::size_t>> remainders;
  remainders.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    double quota = static_cast<double>(total) * weights[e] / sum;
    auto floor_quota = static_cast<std::size_t>(std::floor(quota));
    (*out)[e] = floor_quota;
    assigned += floor_quota;
    remainders.push_back({quota - std::floor(quota), e});
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const std::pair<double, std::size_t>& a,
               const std::pair<double, std::size_t>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (std::size_t i = 0; assigned < total && i < remainders.size(); ++i) {
    ++(*out)[remainders[i].second];
    ++assigned;
  }
}

double EdgeBudgetPolicy::PartnerSubtotal(int partner, Value value,
                                         Time max_dt, ScoreMemo* memo) {
  double subtotal = 0.0;
  if (memo != nullptr && memo->Lookup(partner, value, max_dt, &subtotal)) {
    return subtotal;
  }
  const auto& preds = predictions_[static_cast<std::size_t>(partner)];
  for (Time dt = 1; dt <= max_dt; ++dt) {
    subtotal += preds[static_cast<std::size_t>(dt - 1)].Prob(value) *
                lifetime_.At(dt);
  }
  if (memo != nullptr) memo->Store(partner, value, max_dt, subtotal);
  return subtotal;
}

std::vector<TupleId> EdgeBudgetPolicy::SelectRetained(
    const EngineContext& ctx) {
  const auto& edges = topology_->join_edges();
  RebuildPredictions(processes_, *ctx.histories, ctx.now, options_.horizon,
                     &predictions_);
  ScoreMemo* memo = options_.use_score_cache ? &memo_ : nullptr;
  if (memo != nullptr) memo->BeginStep();

  // Deterministic reallocation schedule: budgets change only at fixed
  // checkpoints (and once at the cold start), from decayed mass only.
  if (budgets_.empty()) {
    Apportion(ctx.capacity, decayed_mass_, &budgets_);
  }
  if (ctx.now > 0 && ctx.now % options_.realloc_interval == 0) {
    ++realloc_checkpoints_;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      decayed_mass_[e] =
          decayed_mass_[e] * options_.decay + window_mass_[e];
      window_mass_[e] = 0.0;
    }
    Apportion(ctx.capacity, decayed_mass_, &budgets_);
  }

  // Score every candidate on every incident edge. The per-edge score is
  // the binary HEEB term against the edge's opposite stream; the summed
  // score (for the spill ranking) adds the same subtotals in edge order.
  for (auto& ranked : edge_ranked_) ranked.clear();
  total_ranked_.clear();
  auto consider = [&](const StreamTuple& tuple) {
    Time max_dt = options_.horizon;
    if (ctx.window.has_value()) {
      max_dt = std::min(max_dt, tuple.arrival + *ctx.window - ctx.now);
    }
    if (max_dt < 0) max_dt = 0;
    double total_score = 0.0;
    bool incident = false;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      int partner;
      if (edges[e].first == tuple.stream) {
        partner = edges[e].second;
      } else if (edges[e].second == tuple.stream) {
        partner = edges[e].first;
      } else {
        continue;
      }
      incident = true;
      double h = PartnerSubtotal(partner, tuple.value, max_dt, memo);
      window_mass_[e] += h;
      edge_ranked_[e].push_back({h, tuple.arrival, tuple.id});
      total_score += h;
    }
    if (incident) {
      total_ranked_.push_back({total_score, tuple.arrival, tuple.id});
    }
  };
  for (const StreamTuple& tuple : *ctx.cached) consider(tuple);
  for (const StreamTuple& tuple : *ctx.arrivals) consider(tuple);

  // Each edge claims its best incident tuples under its budget (edges in
  // index order; a tuple claimed by an earlier edge does not consume a
  // later edge's budget slot — it is simply skipped). Whatever capacity
  // the edges leave unused spills to the best remaining tuples by summed
  // score. Every ordering here is the strict (score, arrival, id) order
  // from rank_order.h, so the retained set is a total function of the
  // scores.
  const auto better = RankedTupleBetter;
  claimed_.clear();
  std::vector<TupleId> retained;
  retained.reserve(ctx.capacity);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    auto& ranked = edge_ranked_[e];
    std::sort(ranked.begin(), ranked.end(), better);
    std::size_t taken = 0;
    for (const RankedTuple& entry : ranked) {
      if (taken >= budgets_[e] || retained.size() >= ctx.capacity) break;
      if (!claimed_.insert(entry.id).second) continue;
      retained.push_back(entry.id);
      ++taken;
    }
  }
  std::sort(total_ranked_.begin(), total_ranked_.end(), better);
  for (const RankedTuple& entry : total_ranked_) {
    if (retained.size() >= ctx.capacity) break;
    if (!claimed_.insert(entry.id).second) continue;
    retained.push_back(entry.id);
  }
  return retained;
}

}  // namespace sjoin
