#ifndef SJOIN_POLICIES_LFU_POLICY_H_
#define SJOIN_POLICIES_LFU_POLICY_H_

#include <unordered_map>
#include <vector>

#include "sjoin/engine/scored_caching_policy.h"

/// \file
/// LFU / PROB for the caching problem — evict the least frequently
/// referenced database tuple.
///
/// Section 5.2 proves that evicting the tuple with the lowest reference
/// probability is optimal for stationary independent reference streams
/// (this is the A0 algorithm of [Aho, Denning, Ullman 1971]); LFU is the
/// empirical approximation. The paper's Figure 13 runs the "perfect"
/// version, which ranks by the true long-run frequency of each value over
/// the whole reference sequence rather than the frequency observed so far.

namespace sjoin {

/// LFU on frequencies observed so far.
class LfuCachingPolicy final : public ScoredCachingPolicy {
 public:
  void Reset() override { counts_.clear(); }

  void Observe(const CachingContext& ctx) override {
    ++counts_[ctx.referenced];
  }

  const char* name() const override { return "LFU"; }

  /// Observe mutates; Score is a read-only frequency lookup.
  bool ShardScorable() const override { return true; }

 protected:
  double Score(Value v, const CachingContext& ctx) override {
    (void)ctx;
    auto it = counts_.find(v);
    return it == counts_.end() ? 0.0 : static_cast<double>(it->second);
  }

 private:
  std::unordered_map<Value, std::int64_t> counts_;
};

/// "Perfect" LFU / PROB: ranks by the value frequencies of the complete
/// reference sequence, supplied up front (offline knowledge, like the
/// paper's Figure 13 baselines).
class PerfectLfuCachingPolicy final : public ScoredCachingPolicy {
 public:
  explicit PerfectLfuCachingPolicy(const std::vector<Value>& full_sequence);

  const char* name() const override { return "PROB(LFU)"; }

  /// The frequency table is frozen at construction; Score is read-only.
  bool ShardScorable() const override { return true; }

 protected:
  double Score(Value v, const CachingContext& ctx) override {
    (void)ctx;
    auto it = frequency_.find(v);
    return it == frequency_.end() ? 0.0 : it->second;
  }

 private:
  std::unordered_map<Value, double> frequency_;
};

}  // namespace sjoin

#endif  // SJOIN_POLICIES_LFU_POLICY_H_
