#include "sjoin/serve/session_scheduler.h"

#include <algorithm>

#include "sjoin/common/check.h"
#include "sjoin/common/stopwatch.h"

namespace sjoin {
namespace serve {

SessionScheduler::SessionScheduler(StreamTopology topology, Options options)
    : topology_(std::move(topology)),
      options_(options),
      pool_(std::max(options.threads, 1)) {
  SJOIN_CHECK_GE(options_.max_sessions, 1u);
  SJOIN_CHECK_GE(options_.queue_capacity, 1u);
  SJOIN_CHECK_GE(options_.quota_unit, 1);
  if (options_.high_watermark == 0 ||
      options_.high_watermark > options_.queue_capacity) {
    options_.high_watermark = options_.queue_capacity;
  }
  const int threads = std::max(options_.threads, 1);
  engines_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    // Worker engines are interchangeable executors; per-session options
    // are bound at Open, so the engine's own Options are irrelevant.
    engines_.push_back(
        std::make_unique<StreamEngine>(topology_, StreamEngine::Options{}));
  }
  worker_items_.resize(static_cast<std::size_t>(threads));
  worker_latencies_.resize(static_cast<std::size_t>(threads));
}

SessionScheduler::~SessionScheduler() = default;

SessionScheduler::Session& SessionScheduler::Live(SessionId id) {
  SJOIN_CHECK_GE(id, 0);
  SJOIN_CHECK_LT(static_cast<std::size_t>(id), sessions_.size());
  return sessions_[static_cast<std::size_t>(id)];
}

const SessionScheduler::Session& SessionScheduler::Live(SessionId id) const {
  SJOIN_CHECK_GE(id, 0);
  SJOIN_CHECK_LT(static_cast<std::size_t>(id), sessions_.size());
  return sessions_[static_cast<std::size_t>(id)];
}

Admission SessionScheduler::Open(const SessionConfig& config) {
  Admission admission;
  if (live_sessions_ >= options_.max_sessions) {
    admission.reject_reason = "session table is full (max_sessions)";
  } else if (config.policy == nullptr) {
    admission.reject_reason = "config.policy is null";
  } else if (config.weight < 1) {
    admission.reject_reason = "config.weight must be >= 1";
  } else if (config.engine.capacity < 1) {
    admission.reject_reason = "config.engine.capacity must be >= 1";
  }
  if (!admission.ok()) {
    ++stats_.sessions_rejected;
    return admission;
  }

  sessions_.emplace_back();
  Session& session = sessions_.back();
  session.config = config;
  session.queued.resize(static_cast<std::size_t>(topology_.num_streams()));
  session.batch.resize(session.queued.size());
  engines_[0]->Open(session.state, config.engine, *config.policy,
                    config.observers);
  ++live_sessions_;
  ++stats_.sessions_admitted;
  admission.id = static_cast<SessionId>(sessions_.size() - 1);
  return admission;
}

std::size_t SessionScheduler::Offer(
    SessionId id, const std::vector<const std::vector<Value>*>& rows) {
  Session& session = Live(id);
  SJOIN_CHECK_MSG(!session.closed && !session.finishing,
                  "Offer on a finished session");
  SJOIN_CHECK_EQ(rows.size(), session.queued.size());
  const std::size_t steps = rows.empty() ? 0 : rows[0]->size();
  for (const std::vector<Value>* row : rows) {
    SJOIN_CHECK(row != nullptr);
    SJOIN_CHECK_EQ(row->size(), steps);
  }

  const std::size_t backlog = session.queued[0].size();
  std::size_t accepted = 0;
  if (backlog < options_.high_watermark) {
    accepted = std::min(steps, options_.queue_capacity - backlog);
  }
  // else: at or past the watermark — shed the whole offer. Backpressure
  // is all-or-prefix, never reordering: what is accepted is always a
  // prefix of the offer, so the executed stream is a prefix of the
  // offered one and stays bit-comparable to a solo run of that prefix.
  for (std::size_t s = 0; s < rows.size(); ++s) {
    session.queued[s].insert(session.queued[s].end(), rows[s]->begin(),
                             rows[s]->begin() +
                                 static_cast<std::ptrdiff_t>(accepted));
  }
  stats_.steps_offered += static_cast<std::int64_t>(accepted);
  stats_.steps_shed += static_cast<std::int64_t>(steps - accepted);
  return accepted;
}

void SessionScheduler::Finish(SessionId id) {
  Session& session = Live(id);
  if (!session.closed) session.finishing = true;
}

void SessionScheduler::RunWorkItem(StreamEngine& engine, const WorkItem& item,
                                   std::vector<SliceLatency>* latencies) {
  Session& session = *item.session;
  if (item.take > 0) {
    const std::size_t take = static_cast<std::size_t>(item.take);
    std::vector<const std::vector<Value>*> batch_ptrs;
    batch_ptrs.reserve(session.batch.size());
    for (std::size_t s = 0; s < session.queued.size(); ++s) {
      std::deque<Value>& queue = session.queued[s];
      session.batch[s].assign(queue.begin(),
                              queue.begin() +
                                  static_cast<std::ptrdiff_t>(take));
      queue.erase(queue.begin(), queue.begin() +
                                     static_cast<std::ptrdiff_t>(take));
      batch_ptrs.push_back(&session.batch[s]);
    }
    Stopwatch stopwatch;
    engine.Advance(session.state, batch_ptrs);
    latencies->push_back(
        {item.id, item.take, stopwatch.ElapsedNs()});
  }
  if (item.close_after && session.queued[0].empty()) {
    session.final_result = engine.Close(session.state);
    session.closed = true;
  }
}

std::int64_t SessionScheduler::RunRound() {
  // Plan the round serially: the ready list, each session's quota slice
  // and the session -> worker assignment are all deterministic functions
  // of the queue state, independent of thread count and timing.
  const std::size_t workers = worker_items_.size();
  for (std::vector<WorkItem>& items : worker_items_) items.clear();
  std::int64_t planned = 0;
  std::size_t ready = 0;
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    Session& session = sessions_[i];
    if (session.closed) continue;
    const std::size_t backlog = session.queued[0].size();
    const Time quota =
        options_.quota_unit * static_cast<Time>(session.config.weight);
    const Time take =
        std::min<Time>(quota, static_cast<Time>(backlog));
    // A finishing session closes only once its whole queue has executed;
    // with a backlog above quota it advances now and closes in a later
    // round.
    const bool close_after =
        session.finishing && backlog == static_cast<std::size_t>(take);
    if (take == 0 && !close_after) continue;
    WorkItem item;
    item.session = &session;
    item.id = static_cast<SessionId>(i);
    item.take = take;
    item.close_after = close_after;
    worker_items_[ready % workers].push_back(item);
    ++ready;
    planned += take;
  }
  if (ready == 0) return 0;

  // Execute: worker w drains its own item list on its own engine,
  // touching only its sessions and its latency buffer. A size-1 pool
  // runs this inline on the driver thread.
  TaskGroup group(pool_);
  for (std::size_t w = 0; w < workers; ++w) {
    if (worker_items_[w].empty()) continue;
    group.Run([this, w] {
      std::vector<SliceLatency>& latencies = worker_latencies_[w];
      for (const WorkItem& item : worker_items_[w]) {
        RunWorkItem(*engines_[w], item, &latencies);
      }
    });
  }
  group.Wait();

  // Fold thread-local accounting back in deterministic worker order.
  for (std::size_t w = 0; w < workers; ++w) {
    for (const SliceLatency& sample : worker_latencies_[w]) {
      slice_latencies_.push_back(sample);
    }
    worker_latencies_[w].clear();
    for (const WorkItem& item : worker_items_[w]) {
      if (item.session->closed) {
        ++stats_.sessions_closed;
        --live_sessions_;
      }
    }
  }
  stats_.steps_executed += planned;
  ++stats_.rounds;
  return planned;
}

void SessionScheduler::Drain() {
  while (live_sessions_ > 0) {
    const std::int64_t executed = RunRound();
    if (executed > 0) continue;
    // A zero-step round may still have closed drained sessions; stall
    // only when nothing closed either.
    bool progressed = false;
    for (const Session& session : sessions_) {
      if (!session.closed && session.finishing &&
          session.queued[0].empty()) {
        progressed = true;  // Will close next round.
      }
    }
    SJOIN_CHECK_MSG(progressed || live_sessions_ == 0,
                    "SessionScheduler::Drain stalled: a live session has "
                    "no queued work and was never Finish()ed");
  }
}

bool SessionScheduler::closed(SessionId id) const {
  return Live(id).closed;
}

const EngineRunResult& SessionScheduler::result(SessionId id) const {
  const Session& session = Live(id);
  SJOIN_CHECK_MSG(session.closed, "result() before the session closed");
  return session.final_result;
}

std::size_t SessionScheduler::queued_steps(SessionId id) const {
  return Live(id).queued[0].size();
}

}  // namespace serve
}  // namespace sjoin
