#ifndef SJOIN_SERVE_SESSION_SCHEDULER_H_
#define SJOIN_SERVE_SESSION_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sjoin/common/thread_pool.h"
#include "sjoin/common/types.h"
#include "sjoin/engine/stream_engine.h"

/// \file
/// The session-multiplexed join service (DESIGN.md §2g).
///
/// A batch simulator owns one run from first arrival to last; a service
/// multiplexes many concurrent joins whose arrivals trickle in. The
/// SessionScheduler is the piece in between: it admits sessions into a
/// bounded table, buffers their arrivals in bounded per-session queues,
/// and drains those queues through the Layer-2 session lifecycle
/// (StreamEngine::Open / Advance / Close) in weighted-round-robin rounds
/// executed by a pool of worker engines.
///
/// The correctness contract is inherited, not re-proven: Run() is
/// implemented as Open + Advance + Close, so a session advanced in
/// scheduler-chosen slices is bit-identical to a solo batch run of the
/// same realization under the same policy — no matter how many sessions
/// interleave, what quotas slice them, or how many worker threads execute
/// them (serve_differential pins this). The scheduler adds only policy-
/// free concerns: admission, backpressure, fairness, and latency
/// accounting.
///
/// Threading model: single driver, parallel rounds. All public methods
/// are driver-thread-only (externally serialized); RunRound() internally
/// fans the ready sessions out over `threads` workers, each with its own
/// StreamEngine (sessions opened serially are engine-portable, so any
/// worker may run any session's next slice). Workers touch disjoint
/// sessions and thread-local accounting, so results are independent of
/// the thread count and of which worker ran what.

namespace sjoin {
namespace serve {

/// Index into the scheduler's session table.
using SessionId = std::int32_t;

/// Everything one session needs: its engine options (capacity, warmup,
/// window — per session, not per scheduler), its replacement policy, its
/// observers, and its fairness weight. Policy and observers are borrowed,
/// must outlive the session, and must not be shared with another open
/// session (policies are stateful).
struct SessionConfig {
  StreamEngine::Options engine;
  EnginePolicy* policy = nullptr;
  std::vector<StepObserver*> observers;
  /// Weighted-round-robin weight: a weight-w session may execute up to
  /// w * quota_unit steps per round.
  int weight = 1;
};

/// Admission-control outcome. `reject_reason` is a static string (same
/// style as EngineTelemetry::fallback_reason): null on success.
struct Admission {
  SessionId id = -1;
  const char* reject_reason = nullptr;

  bool ok() const { return reject_reason == nullptr; }
};

/// Driver-visible accounting, all deterministic except nothing — these
/// are counts, not clocks.
struct SchedulerStats {
  std::int64_t sessions_admitted = 0;
  std::int64_t sessions_rejected = 0;
  std::int64_t sessions_closed = 0;
  /// Steps accepted into queues by Offer.
  std::int64_t steps_offered = 0;
  /// Steps refused by Offer: the suffix over queue_capacity plus whole
  /// offers shed at the high watermark.
  std::int64_t steps_shed = 0;
  /// Steps executed by RunRound.
  std::int64_t steps_executed = 0;
  std::int64_t rounds = 0;
};

/// One Advance slice's latency: `ns` wall nanoseconds for `steps` steps
/// of session `session`. Percentile reducers weight by `steps` to get
/// per-step latency. The (session, steps) multiset is independent of the
/// thread count — only `ns` varies.
struct SliceLatency {
  SessionId session = 0;
  Time steps = 0;
  std::int64_t ns = 0;
};

/// Multiplexes bounded sessions over a pool of worker engines.
class SessionScheduler {
 public:
  struct Options {
    /// Admission bound: Open rejects when this many sessions are live
    /// (admitted and not yet closed).
    std::size_t max_sessions = 1024;
    /// Per-session arrival-queue bound, in steps. Offer truncates to the
    /// free space.
    std::size_t queue_capacity = 4096;
    /// Backpressure threshold: an Offer arriving when the session already
    /// holds at least this many queued steps is shed whole (accepts 0).
    /// 0 means "use queue_capacity" (shedding only when full).
    std::size_t high_watermark = 0;
    /// Steps per unit of session weight per round.
    Time quota_unit = 32;
    /// Worker engines executing a round; 1 runs rounds inline on the
    /// driver thread.
    int threads = 1;
  };

  /// All sessions of a scheduler share one topology (worker engines are
  /// built once); per-session shapes go in SessionConfig::engine.
  SessionScheduler(StreamTopology topology, Options options);
  ~SessionScheduler();

  SessionScheduler(const SessionScheduler&) = delete;
  SessionScheduler& operator=(const SessionScheduler&) = delete;

  /// Admission control: binds `config`, opens the session (the policy
  /// resets, observers get OnRunBegin with length -1) and returns its id
  /// — or a reject reason, leaving all state untouched. Ids index the
  /// session table and are never reused; closed sessions keep their
  /// results readable but stop counting against max_sessions.
  Admission Open(const SessionConfig& config);

  /// Offers `rows[0]->size()` steps of arrivals to an open session
  /// (`rows[s]` extends stream s; one pointer per topology stream, equal
  /// lengths). Accepts a prefix bounded by queue capacity — zero when the
  /// high watermark sheds the offer — and returns how many steps were
  /// accepted. The values are copied; the caller's buffers are free
  /// immediately.
  std::size_t Offer(SessionId id,
                    const std::vector<const std::vector<Value>*>& rows);

  /// Declares end-of-stream: no further Offer calls. The session closes
  /// (observers get OnRunEnd) in the first round that finds its queue
  /// empty. Idempotent.
  void Finish(SessionId id);

  /// Executes one weighted-round-robin round: every session with queued
  /// arrivals advances by at most weight * quota_unit steps, in parallel
  /// across the worker engines; finished sessions whose queues ran dry
  /// close. Returns the number of steps executed.
  std::int64_t RunRound();

  /// Runs rounds until every admitted session has closed. Every live
  /// session must already be Finish()ed or become so via queued work —
  /// a stalled round with an unfinished session aborts (the alternative
  /// is an infinite loop).
  void Drain();

  bool closed(SessionId id) const;
  /// Final result of a closed session (aborts if still open).
  const EngineRunResult& result(SessionId id) const;
  /// Queued steps not yet executed.
  std::size_t queued_steps(SessionId id) const;

  const SchedulerStats& stats() const { return stats_; }
  /// One entry per Advance slice, in deterministic (round, session) order.
  const std::vector<SliceLatency>& slice_latencies() const {
    return slice_latencies_;
  }
  int num_streams() const { return topology_.num_streams(); }

 private:
  struct Session {
    SessionConfig config;
    SessionState state;
    /// Per-stream queued arrivals; all deques stay equal-length.
    std::vector<std::deque<Value>> queued;
    bool finishing = false;
    bool closed = false;
    EngineRunResult final_result;
    /// Reused contiguous staging for one Advance slice.
    std::vector<std::vector<Value>> batch;
  };

  /// What one worker does to one ready session in a round: advance by
  /// `take`, then close if drained. Runs on a worker thread; touches only
  /// the session and the worker's thread-local accounting.
  struct WorkItem {
    Session* session = nullptr;
    SessionId id = 0;
    Time take = 0;
    bool close_after = false;
  };

  Session& Live(SessionId id);
  const Session& Live(SessionId id) const;
  static void RunWorkItem(StreamEngine& engine, const WorkItem& item,
                          std::vector<SliceLatency>* latencies);

  StreamTopology topology_;
  Options options_;
  /// One engine per worker; engines_[0] doubles as the open/close engine.
  std::vector<std::unique_ptr<StreamEngine>> engines_;
  ThreadPool pool_;
  /// Stable addresses: workers hold Session* across a round.
  std::deque<Session> sessions_;
  std::size_t live_sessions_ = 0;
  SchedulerStats stats_;
  std::vector<SliceLatency> slice_latencies_;
  /// Per-worker scratch reused across rounds.
  std::vector<std::vector<WorkItem>> worker_items_;
  std::vector<std::vector<SliceLatency>> worker_latencies_;
};

}  // namespace serve
}  // namespace sjoin

#endif  // SJOIN_SERVE_SESSION_SCHEDULER_H_
