#include "sjoin/stochastic/random_walk_process.h"

#include "sjoin/common/check.h"

namespace sjoin {

DiscreteDistribution RandomWalkProcess::Predict(const StreamHistory& history,
                                                Time t) const {
  SJOIN_CHECK_GE(t, history.size());
  Value last = history.empty() ? initial_value_ : history.back();
  Time last_time = history.size() - 1;  // -1 for the initial value.
  Time steps = t - last_time;
  SJOIN_CHECK_GE(steps, 1);
  return StepSum(steps).ShiftedBy(last);
}

void RandomWalkProcess::PredictInto(const StreamHistory& history, Time t,
                                    DiscreteDistribution* out) const {
  SJOIN_CHECK_GE(t, history.size());
  Value last = history.empty() ? initial_value_ : history.back();
  Time last_time = history.size() - 1;  // -1 for the initial value.
  Time steps = t - last_time;
  SJOIN_CHECK_GE(steps, 1);
  out->AssignShiftedCopy(StepSum(steps), last);
}

const DiscreteDistribution& RandomWalkProcess::StepSum(Time n) const {
  SJOIN_CHECK_GE(n, 1);
  if (step_powers_.empty()) step_powers_.push_back(step_);
  while (static_cast<Time>(step_powers_.size()) < n) {
    step_powers_.push_back(step_powers_.back().Convolve(step_));
  }
  return step_powers_[static_cast<std::size_t>(n - 1)];
}

}  // namespace sjoin
