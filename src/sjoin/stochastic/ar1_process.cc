#include "sjoin/stochastic/ar1_process.h"

#include <cmath>

#include "sjoin/common/check.h"

namespace sjoin {

Ar1Process::Ar1Process(double phi0, double phi1, double sigma,
                       Value initial_value)
    : phi0_(phi0), phi1_(phi1), sigma_(sigma), initial_value_(initial_value) {
  SJOIN_CHECK_GT(sigma, 0.0);
  SJOIN_CHECK_NE(phi1, 0.0);
}

DiscreteDistribution Ar1Process::Predict(const StreamHistory& history,
                                         Time t) const {
  SJOIN_CHECK_GE(t, history.size());
  Value last = history.empty() ? initial_value_ : history.back();
  Time last_time = history.size() - 1;
  return PredictFrom(last, t - last_time);
}

DiscreteDistribution Ar1Process::PredictFrom(Value last, Time steps) const {
  SJOIN_CHECK_GE(steps, 1);
  double mean = ConditionalMean(static_cast<double>(last), steps);
  double sd = ConditionalSigma(steps);
  return DiscreteDistribution::DiscretizedNormal(mean, sd);
}

double Ar1Process::ConditionalMean(double last, Time steps) const {
  double phi1_pow = std::pow(phi1_, static_cast<double>(steps));
  if (phi1_ == 1.0) {
    return last + phi0_ * static_cast<double>(steps);
  }
  return phi1_pow * last + phi0_ * (1.0 - phi1_pow) / (1.0 - phi1_);
}

double Ar1Process::ConditionalSigma(Time steps) const {
  if (phi1_ == 1.0) {
    return sigma_ * std::sqrt(static_cast<double>(steps));
  }
  double phi1_sq = phi1_ * phi1_;
  double phi1_sq_pow = std::pow(phi1_sq, static_cast<double>(steps));
  return sigma_ * std::sqrt((1.0 - phi1_sq_pow) / (1.0 - phi1_sq));
}

double Ar1Process::StationaryMean() const {
  SJOIN_CHECK_LT(std::fabs(phi1_), 1.0);
  return phi0_ / (1.0 - phi1_);
}

}  // namespace sjoin
