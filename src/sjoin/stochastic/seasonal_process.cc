#include "sjoin/stochastic/seasonal_process.h"

#include <cmath>
#include <numbers>

#include "sjoin/common/check.h"

namespace sjoin {

SeasonalProcess::SeasonalProcess(double mean, double amplitude,
                                 double period, double phase,
                                 DiscreteDistribution noise)
    : mean_(mean), amplitude_(amplitude), period_(period), phase_(phase),
      noise_(std::move(noise)) {
  SJOIN_CHECK_GT(period, 0.0);
}

Value SeasonalProcess::TrendAt(Time t) const {
  double angle =
      2.0 * std::numbers::pi * static_cast<double>(t) / period_ + phase_;
  return static_cast<Value>(
      std::llround(mean_ + amplitude_ * std::sin(angle)));
}

}  // namespace sjoin
