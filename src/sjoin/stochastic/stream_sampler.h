#ifndef SJOIN_STOCHASTIC_STREAM_SAMPLER_H_
#define SJOIN_STOCHASTIC_STREAM_SAMPLER_H_

#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/stochastic/process.h"

/// \file
/// Realization generation for experiments.

namespace sjoin {

/// Draws a length-`len` realization of `process`, one value per time step
/// starting at t = 0, conditioning each draw on the values drawn so far.
std::vector<Value> SampleRealization(const StochasticProcess& process,
                                     Time len, Rng& rng);

/// A pair of realizations for a two-stream joining experiment. The streams
/// are sampled independently (the paper's experiment configurations all use
/// independent R and S processes).
struct StreamPair {
  std::vector<Value> r;
  std::vector<Value> s;
};

StreamPair SampleStreamPair(const StochasticProcess& r_process,
                            const StochasticProcess& s_process, Time len,
                            Rng& rng);

}  // namespace sjoin

#endif  // SJOIN_STOCHASTIC_STREAM_SAMPLER_H_
