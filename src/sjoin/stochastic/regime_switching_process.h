#ifndef SJOIN_STOCHASTIC_REGIME_SWITCHING_PROCESS_H_
#define SJOIN_STOCHASTIC_REGIME_SWITCHING_PROCESS_H_

#include <memory>
#include <vector>

#include "sjoin/stochastic/process.h"

/// \file
/// A deterministic-schedule regime process: time is divided into phases,
/// each with its own per-step pmf, and the schedule cycles.
///
/// This is the skew workhorse for the adaptive-sharding work. With a hot
/// Zipf phase alternating against a calm wide phase it models bursty
/// arrivals; with several Zipf phases whose hot windows sit at different
/// values it models a regime switch that moves the hot set mid-run — the
/// workload a static value-domain partition cannot follow. Like
/// SeasonalProcess the per-step variables are mutually independent (the
/// phase is a function of t alone, never of the history), so HEEB's
/// time-incremental mode and the sharded scoring path both apply.

namespace sjoin {

/// Cycles through phases of (pmf, duration); X_t ~ pmf of the phase
/// containing t mod cycle_length.
class RegimeSwitchingProcess final : public StochasticProcess {
 public:
  struct Phase {
    DiscreteDistribution pmf;
    Time duration = 1;  ///< Steps this phase lasts; > 0.
  };

  /// At least one phase; every duration > 0, every pmf non-empty.
  explicit RegimeSwitchingProcess(std::vector<Phase> phases);

  DiscreteDistribution Predict(const StreamHistory& history,
                               Time t) const override {
    (void)history;
    return PhaseAt(t).pmf;
  }

  void PredictInto(const StreamHistory& history, Time t,
                   DiscreteDistribution* out) const override {
    (void)history;
    out->AssignShiftedCopy(PhaseAt(t).pmf, 0);
  }

  bool IsIndependent() const override { return true; }

  std::unique_ptr<StochasticProcess> Clone() const override {
    return std::make_unique<RegimeSwitchingProcess>(phases_);
  }

  /// The phase active at time t (cycling schedule).
  const Phase& PhaseAt(Time t) const;

  const std::vector<Phase>& phases() const { return phases_; }
  Time cycle_length() const { return cycle_length_; }

 private:
  std::vector<Phase> phases_;
  /// phase_start_[i] = sum of durations before phase i; back() = cycle.
  std::vector<Time> phase_start_;
  Time cycle_length_ = 0;
};

}  // namespace sjoin

#endif  // SJOIN_STOCHASTIC_REGIME_SWITCHING_PROCESS_H_
