#ifndef SJOIN_STOCHASTIC_AR1_PROCESS_H_
#define SJOIN_STOCHASTIC_AR1_PROCESS_H_

#include <memory>

#include "sjoin/stochastic/process.h"

/// \file
/// AR(1) process with Gaussian noise — Section 4.4.3 / 5.5 / 6.5 (REAL).
///
/// X_t = phi0 + phi1 * X_{t-1} + Y_t with Y_t ~ N(0, sigma^2) i.i.d.
/// Values live on the integer grid (the REAL experiment uses 0.1 degree
/// Celsius units). For |phi1| < 1 the Δ-step conditional law has the closed
/// form N(mu_Δ, s_Δ^2) with
///   mu_Δ  = phi1^Δ x + phi0 (1 - phi1^Δ) / (1 - phi1)
///   s_Δ^2 = sigma^2 (1 - phi1^{2Δ}) / (1 - phi1^2),
/// which we discretize. phi1 = 1 degenerates to a random walk with drift
/// (mu_Δ = x + Δ phi0, s_Δ^2 = Δ sigma^2), matching Theorem 5(2).

namespace sjoin {

/// First-order autoregressive process.
class Ar1Process final : public StochasticProcess {
 public:
  /// `initial_value` plays the role of X_{-1}. For |phi1| < 1, a natural
  /// choice is the stationary mean phi0 / (1 - phi1).
  Ar1Process(double phi0, double phi1, double sigma, Value initial_value);

  DiscreteDistribution Predict(const StreamHistory& history,
                               Time t) const override;

  /// Conditional law of X_{last_time + steps} given X_{last_time} = last.
  DiscreteDistribution PredictFrom(Value last, Time steps) const;

  bool IsIndependent() const override { return false; }

  std::unique_ptr<StochasticProcess> Clone() const override {
    return std::make_unique<Ar1Process>(phi0_, phi1_, sigma_, initial_value_);
  }

  /// Conditional mean / stddev after `steps` steps from value `last`.
  double ConditionalMean(double last, Time steps) const;
  double ConditionalSigma(Time steps) const;

  /// Stationary mean phi0 / (1 - phi1); requires |phi1| < 1.
  double StationaryMean() const;

  double phi0() const { return phi0_; }
  double phi1() const { return phi1_; }
  double sigma() const { return sigma_; }
  Value initial_value() const { return initial_value_; }

 private:
  double phi0_;
  double phi1_;
  double sigma_;
  Value initial_value_;
};

}  // namespace sjoin

#endif  // SJOIN_STOCHASTIC_AR1_PROCESS_H_
