#ifndef SJOIN_STOCHASTIC_SCRIPTED_PROCESS_H_
#define SJOIN_STOCHASTIC_SCRIPTED_PROCESS_H_

#include <memory>
#include <vector>

#include "sjoin/stochastic/process.h"

/// \file
/// An independent process with an arbitrary pmf per time step.
///
/// Useful for hand-constructed scenarios such as the FlowExpect
/// suboptimality example of Section 3.4, where specific probabilistic
/// futures ("2 with probability 0.5, '-' otherwise") are prescribed per
/// time step.

namespace sjoin {

/// Independent, per-step scripted distributions. Queries beyond the script
/// return the empty distribution (a tuple that joins nothing).
class ScriptedProcess final : public StochasticProcess {
 public:
  explicit ScriptedProcess(std::vector<DiscreteDistribution> per_time)
      : per_time_(std::move(per_time)) {}

  DiscreteDistribution Predict(const StreamHistory& history,
                               Time t) const override {
    (void)history;
    if (t < 0 || t >= static_cast<Time>(per_time_.size())) {
      return DiscreteDistribution();
    }
    return per_time_[static_cast<std::size_t>(t)];
  }

  bool IsIndependent() const override { return true; }

  std::unique_ptr<StochasticProcess> Clone() const override {
    return std::make_unique<ScriptedProcess>(per_time_);
  }

 private:
  std::vector<DiscreteDistribution> per_time_;
};

}  // namespace sjoin

#endif  // SJOIN_STOCHASTIC_SCRIPTED_PROCESS_H_
