#ifndef SJOIN_STOCHASTIC_LINEAR_TREND_PROCESS_H_
#define SJOIN_STOCHASTIC_LINEAR_TREND_PROCESS_H_

#include <memory>

#include "sjoin/stochastic/process.h"

/// \file
/// Deterministic trend plus i.i.d. noise — Sections 5.3 and 5.4.
///
/// X_t = f(t) + Y_t with f(t) = round(slope * t + intercept) and Y_t i.i.d.
/// zero-mean integer noise. The TOWER / ROOF configurations use bounded
/// discretized-normal noise; FLOOR uses bounded uniform noise (Section 6.1).
/// The per-step variables are independent, so the time- and
/// value-incremental HEEB computations of Section 4.4 apply, and
/// Corollary 5's frame-of-reference shift holds for slope != 0.

namespace sjoin {

/// Linearly drifting "reference window" process.
class LinearTrendProcess final : public StochasticProcess {
 public:
  /// `noise` must be a zero-mean pmf; the paper's configurations use noise
  /// bounded within [-w, w].
  LinearTrendProcess(double slope, double intercept,
                     DiscreteDistribution noise)
      : slope_(slope), intercept_(intercept), noise_(std::move(noise)) {}

  DiscreteDistribution Predict(const StreamHistory& history,
                               Time t) const override {
    (void)history;
    return noise_.ShiftedBy(TrendAt(t));
  }

  void PredictInto(const StreamHistory& history, Time t,
                   DiscreteDistribution* out) const override {
    (void)history;
    out->AssignShiftedCopy(noise_, TrendAt(t));
  }

  bool IsIndependent() const override { return true; }

  std::unique_ptr<StochasticProcess> Clone() const override {
    return std::make_unique<LinearTrendProcess>(slope_, intercept_, noise_);
  }

  /// The integer trend value f(t).
  Value TrendAt(Time t) const;

  double slope() const { return slope_; }
  double intercept() const { return intercept_; }
  const DiscreteDistribution& noise() const { return noise_; }

 private:
  double slope_;
  double intercept_;
  DiscreteDistribution noise_;
};

}  // namespace sjoin

#endif  // SJOIN_STOCHASTIC_LINEAR_TREND_PROCESS_H_
