#ifndef SJOIN_STOCHASTIC_RANDOM_WALK_PROCESS_H_
#define SJOIN_STOCHASTIC_RANDOM_WALK_PROCESS_H_

#include <memory>
#include <vector>

#include "sjoin/stochastic/process.h"

/// \file
/// Random walk with drift — Section 5.5.
///
/// X_t = X_{t-1} + D_t with i.i.d. integer step distribution D (which may
/// have non-zero mean: the paper's "drift"). The multi-step predictive
/// distribution is the Δ-fold convolution of the step distribution shifted
/// by the last observed value; convolution powers are memoized since every
/// HEEB / FlowExpect query at the same look-ahead reuses them.

namespace sjoin {

/// Integer-valued random walk.
class RandomWalkProcess final : public StochasticProcess {
 public:
  /// `step` is the per-step increment pmf (the WALK configuration uses a
  /// discretized N(drift, 1)). `initial_value` is the walk position at the
  /// fictitious time -1, i.e. X_0 = initial_value + D_0.
  RandomWalkProcess(DiscreteDistribution step, Value initial_value)
      : step_(std::move(step)), initial_value_(initial_value) {}

  DiscreteDistribution Predict(const StreamHistory& history,
                               Time t) const override;

  void PredictInto(const StreamHistory& history, Time t,
                   DiscreteDistribution* out) const override;

  bool IsIndependent() const override { return false; }

  std::unique_ptr<StochasticProcess> Clone() const override {
    return std::make_unique<RandomWalkProcess>(step_, initial_value_);
  }

  /// Distribution of the sum of `n` i.i.d. steps (n >= 1). Cached.
  const DiscreteDistribution& StepSum(Time n) const;

  const DiscreteDistribution& step() const { return step_; }
  Value initial_value() const { return initial_value_; }

 private:
  DiscreteDistribution step_;
  Value initial_value_;
  // Memoized convolution powers: step_powers_[i] is the (i+1)-fold
  // convolution of step_. Grown lazily; the process is logically immutable.
  mutable std::vector<DiscreteDistribution> step_powers_;
};

}  // namespace sjoin

#endif  // SJOIN_STOCHASTIC_RANDOM_WALK_PROCESS_H_
