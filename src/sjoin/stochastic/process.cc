#include "sjoin/stochastic/process.h"

namespace sjoin {

Value StochasticProcess::SampleNext(const StreamHistory& history,
                                    Rng& rng) const {
  return Predict(history, history.size()).Sample(rng);
}

}  // namespace sjoin
