#include "sjoin/stochastic/process.h"

namespace sjoin {

Value StochasticProcess::SampleNext(const StreamHistory& history,
                                    Rng& rng) const {
  return Predict(history, history.size()).Sample(rng);
}

void StochasticProcess::PredictInto(const StreamHistory& history, Time t,
                                    DiscreteDistribution* out) const {
  *out = Predict(history, t);
}

}  // namespace sjoin
