#ifndef SJOIN_STOCHASTIC_OFFLINE_PROCESS_H_
#define SJOIN_STOCHASTIC_OFFLINE_PROCESS_H_

#include <memory>
#include <vector>

#include "sjoin/stochastic/process.h"

/// \file
/// Deterministic ("offline") streams — Section 5.1.
///
/// When the full value sequence is known in advance, the stream is the
/// degenerate independent process Pr{X_t = a_t} = 1. This scenario connects
/// the framework to the classic offline results: the caching ECB becomes a
/// single-step function and dominance recovers Belady's LFD policy; the
/// joining problem degenerates FlowExpect into OPT-offline.

namespace sjoin {

/// A process that deterministically produces a fixed sequence. Queries past
/// the end of the sequence return the empty distribution (a value that joins
/// with nothing — the paper's "−" tuples).
class OfflineProcess final : public StochasticProcess {
 public:
  explicit OfflineProcess(std::vector<Value> sequence)
      : sequence_(std::move(sequence)) {}

  DiscreteDistribution Predict(const StreamHistory& history,
                               Time t) const override;

  Value SampleNext(const StreamHistory& history, Rng& rng) const override;

  bool IsIndependent() const override { return true; }

  std::unique_ptr<StochasticProcess> Clone() const override {
    return std::make_unique<OfflineProcess>(sequence_);
  }

  const std::vector<Value>& sequence() const { return sequence_; }

 private:
  std::vector<Value> sequence_;
};

}  // namespace sjoin

#endif  // SJOIN_STOCHASTIC_OFFLINE_PROCESS_H_
