#ifndef SJOIN_STOCHASTIC_STREAM_HISTORY_H_
#define SJOIN_STOCHASTIC_STREAM_HISTORY_H_

#include <vector>

#include "sjoin/common/check.h"
#include "sjoin/common/types.h"

/// \file
/// Observed realization of one stream up to the current time.
///
/// The paper writes this as x̄_{t0}, "the history of all streams observed by
/// the algorithm up to the current time t0". Processes condition their
/// predictive distributions on it.

namespace sjoin {

/// Values observed at times 0, 1, ..., size() - 1.
class StreamHistory {
 public:
  StreamHistory() = default;

  /// Builds a history from a full realization prefix.
  explicit StreamHistory(std::vector<Value> values)
      : values_(std::move(values)) {}

  /// Appends the value observed at time size().
  void Append(Value v) { values_.push_back(v); }

  /// Number of observed time steps; the next arrival is at time size().
  Time size() const { return static_cast<Time>(values_.size()); }

  bool empty() const { return values_.empty(); }

  /// Value observed at time t (0 <= t < size()).
  Value at(Time t) const {
    SJOIN_CHECK_GE(t, 0);
    SJOIN_CHECK_LT(t, size());
    return values_[static_cast<std::size_t>(t)];
  }

  /// Most recent observation. Must not be empty.
  Value back() const {
    SJOIN_CHECK(!values_.empty());
    return values_.back();
  }

  const std::vector<Value>& values() const { return values_; }

 private:
  std::vector<Value> values_;
};

}  // namespace sjoin

#endif  // SJOIN_STOCHASTIC_STREAM_HISTORY_H_
