#ifndef SJOIN_STOCHASTIC_SEASONAL_PROCESS_H_
#define SJOIN_STOCHASTIC_SEASONAL_PROCESS_H_

#include <memory>

#include "sjoin/stochastic/process.h"

/// \file
/// Periodic trend plus i.i.d. noise: X_t = round(mean + amplitude *
/// sin(2*pi*t / period + phase)) + Y_t.
///
/// The paper's framework covers any deterministic trend ("the analysis
/// holds for any non-decreasing trend function f(t), including nonlinear
/// ones" — and the generic ECB machinery does not even need monotonicity).
/// A seasonal process exercises exactly that: the reference window sweeps
/// back and forth, so neither LFU-style frequency ranking nor
/// smallest-value eviction is right, while HEEB's direct mode handles it
/// unchanged. Also models the deterministic component of daily-temperature
/// style workloads.

namespace sjoin {

/// Sinusoidal trend with independent per-step noise.
class SeasonalProcess final : public StochasticProcess {
 public:
  /// `noise` must be a zero-mean pmf; `period` > 0.
  SeasonalProcess(double mean, double amplitude, double period, double phase,
                  DiscreteDistribution noise);

  DiscreteDistribution Predict(const StreamHistory& history,
                               Time t) const override {
    (void)history;
    return noise_.ShiftedBy(TrendAt(t));
  }

  bool IsIndependent() const override { return true; }

  std::unique_ptr<StochasticProcess> Clone() const override {
    return std::make_unique<SeasonalProcess>(mean_, amplitude_, period_,
                                             phase_, noise_);
  }

  /// The integer trend value at time t.
  Value TrendAt(Time t) const;

  double mean() const { return mean_; }
  double amplitude() const { return amplitude_; }
  double period() const { return period_; }
  const DiscreteDistribution& noise() const { return noise_; }

 private:
  double mean_;
  double amplitude_;
  double period_;
  double phase_;
  DiscreteDistribution noise_;
};

}  // namespace sjoin

#endif  // SJOIN_STOCHASTIC_SEASONAL_PROCESS_H_
