#include "sjoin/stochastic/stream_sampler.h"

#include "sjoin/stochastic/stream_history.h"

namespace sjoin {

std::vector<Value> SampleRealization(const StochasticProcess& process,
                                     Time len, Rng& rng) {
  StreamHistory history;
  std::vector<Value> values;
  values.reserve(static_cast<std::size_t>(len));
  for (Time t = 0; t < len; ++t) {
    Value v = process.SampleNext(history, rng);
    history.Append(v);
    values.push_back(v);
  }
  return values;
}

StreamPair SampleStreamPair(const StochasticProcess& r_process,
                            const StochasticProcess& s_process, Time len,
                            Rng& rng) {
  StreamPair pair;
  pair.r = SampleRealization(r_process, len, rng);
  pair.s = SampleRealization(s_process, len, rng);
  return pair;
}

}  // namespace sjoin
