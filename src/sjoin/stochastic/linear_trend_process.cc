#include "sjoin/stochastic/linear_trend_process.h"

#include <cmath>

namespace sjoin {

Value LinearTrendProcess::TrendAt(Time t) const {
  return static_cast<Value>(
      std::llround(slope_ * static_cast<double>(t) + intercept_));
}

}  // namespace sjoin
