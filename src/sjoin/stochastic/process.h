#ifndef SJOIN_STOCHASTIC_PROCESS_H_
#define SJOIN_STOCHASTIC_PROCESS_H_

#include <memory>

#include "sjoin/common/rng.h"
#include "sjoin/common/types.h"
#include "sjoin/stochastic/discrete_distribution.h"
#include "sjoin/stochastic/stream_history.h"

/// \file
/// The stochastic-process abstraction of Section 2.
///
/// Each input stream S is a discrete-time stochastic process
/// {X_t^S | t = 0, 1, ...} of join-attribute values. Replacement policies
/// receive the process descriptions ("known or observed statistical
/// properties of input streams") and query predictive distributions
/// Pr{X_t = v | x̄_{t0}} through this interface.

namespace sjoin {

/// Abstract stream model. Implementations are immutable and cheap to share;
/// a policy and a simulator may hold the same process object.
class StochasticProcess {
 public:
  virtual ~StochasticProcess() = default;

  /// Predictive pmf of X_t conditioned on the observed history. Requires
  /// t >= history.size() (the value at times < size() is already observed).
  /// Implementations may also be queried with shorter histories than the
  /// true one when a policy deliberately conditions on less information.
  virtual DiscreteDistribution Predict(const StreamHistory& history,
                                       Time t) const = 0;

  /// Predict() writing into an existing distribution. Semantically
  /// identical to `*out = Predict(history, t)`; hot callers (HEEB rebuilds
  /// horizon-many pmfs per step) use it so implementations can reuse
  /// `out`'s buffer instead of allocating. The default delegates to
  /// Predict(); processes whose pmf is a shift of a stored one override it
  /// allocation-free.
  virtual void PredictInto(const StreamHistory& history, Time t,
                           DiscreteDistribution* out) const;

  /// Draws the value at time history.size() (the next arrival) and is used
  /// by samplers to generate realizations. The default draws from
  /// Predict(history, history.size()).
  virtual Value SampleNext(const StreamHistory& history, Rng& rng) const;

  /// True when the per-step random variables are mutually independent, so
  /// Predict ignores the history. Enables the time- and value-incremental
  /// HEEB computations of Section 4.4.
  virtual bool IsIndependent() const = 0;

  virtual std::unique_ptr<StochasticProcess> Clone() const = 0;
};

}  // namespace sjoin

#endif  // SJOIN_STOCHASTIC_PROCESS_H_
