#include "sjoin/stochastic/discrete_distribution.h"

#include <algorithm>
#include <cmath>

#include "sjoin/common/check.h"
#include "sjoin/common/math_util.h"
#include "sjoin/common/validate.h"

namespace sjoin {

DiscreteDistribution DiscreteDistribution::FromMasses(
    Value min_value, std::vector<double> masses) {
  for (double m : masses) SJOIN_CHECK_GE(m, 0.0);
  DiscreteDistribution d(min_value, std::move(masses));
  d.Normalize();
  return d;
}

DiscreteDistribution DiscreteDistribution::PointMass(Value v) {
  return DiscreteDistribution(v, {1.0});
}

DiscreteDistribution DiscreteDistribution::BoundedUniform(Value lo, Value hi) {
  SJOIN_CHECK_LE(lo, hi);
  std::size_t n = static_cast<std::size_t>(hi - lo + 1);
  return DiscreteDistribution(lo,
                              std::vector<double>(n, 1.0 / static_cast<double>(n)));
}

DiscreteDistribution DiscreteDistribution::Zipf(Value lo, Value hi,
                                                double exponent) {
  SJOIN_CHECK_LE(lo, hi);
  SJOIN_CHECK_GE(exponent, 0.0);
  std::size_t n = static_cast<std::size_t>(hi - lo + 1);
  std::vector<double> masses;
  masses.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    masses.push_back(std::pow(static_cast<double>(i + 1), -exponent));
  }
  DiscreteDistribution d(lo, std::move(masses));
  d.Normalize();
  return d;
}

DiscreteDistribution DiscreteDistribution::DiscretizedNormal(double mean,
                                                             double sigma,
                                                             double tail_eps) {
  SJOIN_CHECK_GT(sigma, 0.0);
  // Cover enough standard deviations that the excluded tail mass is below
  // tail_eps on each side.
  double half_width = sigma * 8.0;
  while (NormalCdf(-half_width / sigma) > tail_eps) half_width += sigma;
  Value lo = static_cast<Value>(std::floor(mean - half_width));
  Value hi = static_cast<Value>(std::ceil(mean + half_width));
  return TruncatedDiscretizedNormal(mean, sigma, lo, hi);
}

DiscreteDistribution DiscreteDistribution::TruncatedDiscretizedNormal(
    double mean, double sigma, Value lo, Value hi) {
  SJOIN_CHECK_LE(lo, hi);
  SJOIN_CHECK_GT(sigma, 0.0);
  std::vector<double> masses;
  masses.reserve(static_cast<std::size_t>(hi - lo + 1));
  for (Value v = lo; v <= hi; ++v) {
    masses.push_back(DiscretizedNormalMass(mean, sigma, v));
  }
  DiscreteDistribution d(lo, std::move(masses));
  d.Normalize();
  return d;
}

double DiscreteDistribution::Prob(Value v) const {
  if (masses_.empty() || v < min_value_) return 0.0;
  std::size_t index = static_cast<std::size_t>(v - min_value_);
  if (index >= masses_.size()) return 0.0;
  return masses_[index];
}

Value DiscreteDistribution::MinValue() const {
  SJOIN_CHECK(!masses_.empty());
  return min_value_;
}

Value DiscreteDistribution::MaxValue() const {
  SJOIN_CHECK(!masses_.empty());
  return min_value_ + static_cast<Value>(masses_.size()) - 1;
}

double DiscreteDistribution::Mean() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < masses_.size(); ++i) {
    sum += masses_[i] * static_cast<double>(min_value_ + static_cast<Value>(i));
  }
  return sum;
}

double DiscreteDistribution::Variance() const {
  double mean = Mean();
  double sum = 0.0;
  for (std::size_t i = 0; i < masses_.size(); ++i) {
    double x = static_cast<double>(min_value_ + static_cast<Value>(i));
    sum += masses_[i] * (x - mean) * (x - mean);
  }
  return sum;
}

double DiscreteDistribution::TotalMass() const {
  double sum = 0.0;
  for (double m : masses_) sum += m;
  return sum;
}

DiscreteDistribution DiscreteDistribution::ShiftedBy(Value delta) const {
  return DiscreteDistribution(min_value_ + delta, masses_);
}

DiscreteDistribution DiscreteDistribution::Convolve(
    const DiscreteDistribution& other) const {
  if (masses_.empty() || other.masses_.empty()) return DiscreteDistribution();
  std::vector<double> result(masses_.size() + other.masses_.size() - 1, 0.0);
  for (std::size_t i = 0; i < masses_.size(); ++i) {
    if (masses_[i] == 0.0) continue;
    for (std::size_t j = 0; j < other.masses_.size(); ++j) {
      result[i + j] += masses_[i] * other.masses_[j];
    }
  }
  return DiscreteDistribution(min_value_ + other.min_value_,
                              std::move(result));
}

double DiscreteDistribution::OverlapProb(
    const DiscreteDistribution& other) const {
  if (masses_.empty() || other.masses_.empty()) return 0.0;
  Value lo = std::max(min_value_, other.min_value_);
  Value hi = std::min(min_value_ + static_cast<Value>(masses_.size()) - 1,
                      other.min_value_ +
                          static_cast<Value>(other.masses_.size()) - 1);
  double sum = 0.0;
  for (Value v = lo; v <= hi; ++v) sum += Prob(v) * other.Prob(v);
  return sum;
}

Value DiscreteDistribution::Sample(Rng& rng) const {
  SJOIN_CHECK(!masses_.empty());
  double u = rng.UniformReal();
  double acc = 0.0;
  for (std::size_t i = 0; i < masses_.size(); ++i) {
    acc += masses_[i];
    if (u < acc) return min_value_ + static_cast<Value>(i);
  }
  // Floating-point slack: return the highest value with positive mass.
  for (std::size_t i = masses_.size(); i-- > 0;) {
    if (masses_[i] > 0.0) return min_value_ + static_cast<Value>(i);
  }
  return min_value_;
}

void DiscreteDistribution::Normalize() {
  double total = TotalMass();
  if (total <= 0.0) {
    masses_.clear();
    min_value_ = 0;
    return;
  }
  for (double& m : masses_) m /= total;
  if constexpr (kValidationEnabled) {
    SJOIN_VALIDATE_MSG(std::abs(TotalMass() - 1.0) < 1e-9,
                       "normalized pmf does not sum to 1");
  }
}

}  // namespace sjoin
