#include "sjoin/stochastic/offline_process.h"

#include "sjoin/common/check.h"

namespace sjoin {

DiscreteDistribution OfflineProcess::Predict(const StreamHistory& history,
                                             Time t) const {
  (void)history;
  SJOIN_CHECK_GE(t, 0);
  if (t >= static_cast<Time>(sequence_.size())) return DiscreteDistribution();
  return DiscreteDistribution::PointMass(
      sequence_[static_cast<std::size_t>(t)]);
}

Value OfflineProcess::SampleNext(const StreamHistory& history,
                                 Rng& rng) const {
  (void)rng;
  Time t = history.size();
  SJOIN_CHECK_LT(t, static_cast<Time>(sequence_.size()));
  return sequence_[static_cast<std::size_t>(t)];
}

}  // namespace sjoin
