#ifndef SJOIN_STOCHASTIC_DISCRETE_DISTRIBUTION_H_
#define SJOIN_STOCHASTIC_DISCRETE_DISTRIBUTION_H_

#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/common/types.h"

/// \file
/// Probability mass functions over integer join-attribute values.
///
/// The paper models every stream as a discrete-time process whose
/// join-attribute values are discrete random variables (Section 2).
/// DiscreteDistribution is the concrete pmf representation used throughout:
/// prediction (Pr{X_t = v | history}), ECB computation (Lemma 1), expected
/// costs in the FlowExpect graph, and stream sampling all consume it.

namespace sjoin {

/// An immutable-after-construction pmf over a contiguous integer support
/// [min_value, min_value + size - 1]. Entries may be zero inside the range;
/// values outside the range have probability exactly zero.
class DiscreteDistribution {
 public:
  /// An empty distribution (no support, all probabilities zero). Useful as
  /// a sentinel for "stream produces a non-joining tuple".
  DiscreteDistribution() = default;

  /// Builds a pmf with the given support start and masses. Masses must be
  /// non-negative; they are normalized to sum to one unless all are zero.
  static DiscreteDistribution FromMasses(Value min_value,
                                         std::vector<double> masses);

  /// All mass on a single value.
  static DiscreteDistribution PointMass(Value v);

  /// Uniform over the inclusive integer range [lo, hi].
  static DiscreteDistribution BoundedUniform(Value lo, Value hi);

  /// Zipf(s) over the inclusive range [lo, hi]: the mass of lo + i is
  /// proportional to (i + 1)^-s. s = 0 degenerates to BoundedUniform;
  /// larger exponents concentrate mass on the first few values — the
  /// skewed value-popularity model the adaptive sharding work rebalances
  /// against.
  static DiscreteDistribution Zipf(Value lo, Value hi, double exponent);

  /// Normal(mean, sigma^2) discretized to the integer grid (mass of v is
  /// P(v - 0.5 < X <= v + 0.5)), truncated where the mass drops below
  /// `tail_eps`, and renormalized.
  static DiscreteDistribution DiscretizedNormal(double mean, double sigma,
                                                double tail_eps = 1e-10);

  /// Normal(mean, sigma^2) discretized to integers and truncated to the
  /// inclusive range [lo, hi], then renormalized. This is the paper's
  /// "bounded normal noise" (Section 5.4 / Figure 7).
  static DiscreteDistribution TruncatedDiscretizedNormal(double mean,
                                                         double sigma,
                                                         Value lo, Value hi);

  /// Probability of value v (zero outside the support range).
  double Prob(Value v) const;

  /// True if the distribution has no support at all.
  bool IsEmpty() const { return masses_.empty(); }

  /// Lowest / highest value of the stored support range. Must not be empty.
  Value MinValue() const;
  Value MaxValue() const;

  /// Number of stored support slots (MaxValue - MinValue + 1).
  std::size_t SupportSize() const { return masses_.size(); }

  /// Expectation and variance of the distribution. Empty => 0.
  double Mean() const;
  double Variance() const;

  /// Total stored mass; 1 after normalization (0 for the empty pmf).
  double TotalMass() const;

  /// Distribution of X + delta.
  DiscreteDistribution ShiftedBy(Value delta) const;

  /// Makes *this the distribution of X_src + delta, reusing the existing
  /// masses buffer (no allocation once its capacity suffices). This is the
  /// mutation path behind StochasticProcess::PredictInto, which HEEB's
  /// per-step prediction rebuild runs through.
  void AssignShiftedCopy(const DiscreteDistribution& src, Value delta) {
    if (&src == this) {
      min_value_ += delta;
      return;
    }
    min_value_ = src.min_value_ + delta;
    masses_.assign(src.masses_.begin(), src.masses_.end());
  }

  /// Distribution of X + Y for independent X (this) and Y (other).
  DiscreteDistribution Convolve(const DiscreteDistribution& other) const;

  /// Sum over v of Prob(v) * other.Prob(v); the probability that two
  /// independent draws coincide. Used for FlowExpect's undetermined-node
  /// arcs (Section 3.1).
  double OverlapProb(const DiscreteDistribution& other) const;

  /// Draws a value according to the pmf. Must not be empty.
  Value Sample(Rng& rng) const;

  /// Access to raw masses (for plotting pdfs, e.g. Figure 7).
  const std::vector<double>& masses() const { return masses_; }

 private:
  DiscreteDistribution(Value min_value, std::vector<double> masses)
      : min_value_(min_value), masses_(std::move(masses)) {}

  void Normalize();

  Value min_value_ = 0;
  std::vector<double> masses_;
};

}  // namespace sjoin

#endif  // SJOIN_STOCHASTIC_DISCRETE_DISTRIBUTION_H_
