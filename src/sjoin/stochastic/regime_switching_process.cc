#include "sjoin/stochastic/regime_switching_process.h"

#include "sjoin/common/check.h"

namespace sjoin {

RegimeSwitchingProcess::RegimeSwitchingProcess(std::vector<Phase> phases)
    : phases_(std::move(phases)) {
  SJOIN_CHECK(!phases_.empty());
  phase_start_.reserve(phases_.size() + 1);
  phase_start_.push_back(0);
  for (const Phase& phase : phases_) {
    SJOIN_CHECK_GT(phase.duration, 0);
    SJOIN_CHECK(!phase.pmf.IsEmpty());
    phase_start_.push_back(phase_start_.back() + phase.duration);
  }
  cycle_length_ = phase_start_.back();
}

const RegimeSwitchingProcess::Phase& RegimeSwitchingProcess::PhaseAt(
    Time t) const {
  SJOIN_CHECK_GE(t, 0);
  const Time offset = t % cycle_length_;
  // Phase counts are tiny (a handful per process); a linear walk beats a
  // binary search at this size.
  std::size_t phase = 0;
  while (phase_start_[phase + 1] <= offset) ++phase;
  return phases_[phase];
}

}  // namespace sjoin
