#ifndef SJOIN_STOCHASTIC_STATIONARY_PROCESS_H_
#define SJOIN_STOCHASTIC_STATIONARY_PROCESS_H_

#include <memory>

#include "sjoin/stochastic/process.h"

/// \file
/// Stationary, independent streams — Section 5.2.
///
/// A time-invariant pmf p(v) = Pr{X_t = v} for all t, with independent
/// draws. In this scenario the framework proves PROB optimal for joining
/// and A0/LFU optimal for caching; it is the implicit assumption behind
/// most classic replacement heuristics.

namespace sjoin {

/// Independent identically distributed values at every time step.
class StationaryProcess final : public StochasticProcess {
 public:
  explicit StationaryProcess(DiscreteDistribution dist)
      : dist_(std::move(dist)) {}

  DiscreteDistribution Predict(const StreamHistory& history,
                               Time t) const override {
    (void)history;
    (void)t;
    return dist_;
  }

  bool IsIndependent() const override { return true; }

  std::unique_ptr<StochasticProcess> Clone() const override {
    return std::make_unique<StationaryProcess>(dist_);
  }

  const DiscreteDistribution& distribution() const { return dist_; }

 private:
  DiscreteDistribution dist_;
};

}  // namespace sjoin

#endif  // SJOIN_STOCHASTIC_STATIONARY_PROCESS_H_
