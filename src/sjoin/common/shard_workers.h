#ifndef SJOIN_COMMON_SHARD_WORKERS_H_
#define SJOIN_COMMON_SHARD_WORKERS_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

/// \file
/// Persistent fork-join workers for per-step parallel sections.
///
/// ThreadPool + TaskGroup is the right shape for coarse jobs (one
/// simulator run per task) but wrong for a step loop that fans out every
/// few microseconds: each step would pay task allocation, queue mutex
/// traffic and a condvar wake per shard. ShardWorkers instead keeps one
/// long-lived thread per worker and drives every step with a single
/// epoch-ticket release — the driver publishes a function pointer, bumps
/// an atomic epoch, and each worker runs its slice of the epoch, spinning
/// briefly (or parking when idle) between steps. Nothing in the per-epoch
/// protocol allocates, locks or wakes in the common case.
///
/// Each worker also owns a ShardArena, a monotonic scratch arena the
/// driver carves per-step buffers from (scored runs, merge outputs).
/// Arena blocks are cache-line aligned and worker-private, so per-shard
/// scratch never false-shares across workers and steady-state steps touch
/// no allocator at all.

namespace sjoin {

/// A monotonic bump allocator for per-step scratch.
///
/// Allocations live until Reset(); Reset() rewinds to empty without
/// releasing memory. Reserve() the worst case up front and the steady
/// state never grows — growth_events() counts the times it did anyway
/// (each new block), which the sharded engine's validation build asserts
/// stays flat across steps.
///
/// Not thread-safe: one arena belongs to one worker, and the driver only
/// carves from it between epochs (while that worker is quiescent).
class ShardArena {
 public:
  ShardArena() = default;
  ShardArena(const ShardArena&) = delete;
  ShardArena& operator=(const ShardArena&) = delete;

  /// Ensures at least `bytes` of total capacity (one growth event when it
  /// actually grows). Call at setup, before taking the growth baseline.
  void Reserve(std::size_t bytes);

  /// Rewinds every block to empty; all outstanding allocations die.
  void Reset();

  /// `count` default-uninitialized Ts, alive until Reset(). T must be
  /// trivially destructible — nothing is ever destroyed.
  template <typename T>
  T* AllocArray(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(AllocBytes(count * sizeof(T), alignof(T)));
  }

  /// Total bytes across blocks / bytes handed out since the last Reset.
  std::size_t capacity() const;
  std::size_t used() const;

  /// Number of block allocations ever (Reserve or overflow growth).
  std::int64_t growth_events() const { return growth_events_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> storage;
    std::byte* base = nullptr;  // storage aligned up to a cache line.
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void* AllocBytes(std::size_t bytes, std::size_t align);
  Block& NewBlock(std::size_t min_bytes);

  std::vector<Block> blocks_;
  std::size_t current_ = 0;  // Index of the block being bumped.
  std::int64_t growth_events_ = 0;
};

/// A fixed team of persistent workers driven by an epoch ticket.
///
/// RunEpoch(fn, ctx) runs fn(ctx, w) once for every worker w in
/// [0, num_workers) and returns when all slices finished. Worker 0 is the
/// *calling* thread — a team of W spawns W - 1 threads, and a team of 1
/// spawns none (RunEpoch degenerates to a plain call, preserving the
/// serial code path exactly). Slices must only touch worker-local state
/// plus read-only shared state; the epoch release/acquire pair makes the
/// driver's pre-epoch writes visible to every slice and every slice's
/// writes visible to the driver after RunEpoch returns.
///
/// Exceptions thrown by a slice are latched per worker and rethrown by
/// RunEpoch — the lowest-indexed worker's error wins, deterministically —
/// after every slice finished; the team stays usable afterwards.
class ShardWorkers {
 public:
  /// What an epoch does, for telemetry only: per-kind counters let tests
  /// assert that e.g. the sharded engine's rare cache-migration epochs
  /// actually ran (or stayed at zero) without instrumenting the hot loop.
  /// The kind never changes scheduling — every epoch runs the same way.
  enum class EpochKind { kGeneric = 0, kStep, kMerge, kMigration };
  static constexpr int kNumEpochKinds = 4;

  struct Options {
    /// Team size, >= 1. 1 = inline (no threads spawned).
    int workers = 1;
    /// Best-effort pthread affinity for the spawned workers: worker w
    /// pins to CPU w % hardware_concurrency (Linux only, ignored
    /// elsewhere). Worker 0 is the caller and is never pinned.
    bool pin_threads = false;
  };

  explicit ShardWorkers(Options options);
  ~ShardWorkers();

  ShardWorkers(const ShardWorkers&) = delete;
  ShardWorkers& operator=(const ShardWorkers&) = delete;

  using EpochFn = void (*)(void* ctx, int worker);

  /// Runs one epoch; see the class comment. Not reentrant: one driver
  /// thread, no overlapping calls. `kind` only feeds the epochs() counters.
  void RunEpoch(EpochFn fn, void* ctx, EpochKind kind = EpochKind::kGeneric);

  /// Epochs run so far, per kind / total. Driver-thread reads only.
  std::int64_t epochs(EpochKind kind) const {
    return epoch_counts_[static_cast<int>(kind)];
  }
  std::int64_t total_epochs() const {
    std::int64_t total = 0;
    for (std::int64_t count : epoch_counts_) total += count;
    return total;
  }

  /// Batch hints: between BeginBatch and EndBatch workers expect the next
  /// epoch imminently and spin longer before parking; outside a batch
  /// they park almost immediately. Purely a latency/CPU trade — never
  /// affects results.
  void BeginBatch() { in_batch_.store(true, std::memory_order_relaxed); }
  void EndBatch() { in_batch_.store(false, std::memory_order_relaxed); }

  /// Worker w's scratch arena. The driver may use it only while w is
  /// quiescent (outside RunEpoch); slice w may use it during its slice.
  ShardArena& arena(int worker);

  int num_workers() const { return options_.workers; }
  const Options& options() const { return options_; }

 private:
  /// Cache-line sized/aligned so one worker's completion counter never
  /// false-shares with another's (the driver spins on these).
  struct alignas(64) WorkerState {
    std::atomic<std::uint64_t> done_epoch{0};
    std::exception_ptr error;
    ShardArena arena;
    std::thread thread;  // Unset for worker 0 (the caller).
  };

  void WorkerLoop(int worker);

  Options options_;
  std::unique_ptr<WorkerState[]> states_;

  /// The ticket. fn_/ctx_ are plain: the driver writes them before the
  /// epoch release and never while any worker is active, so the
  /// release/acquire on epoch_ (and done_epoch_ on the way back) orders
  /// every access.
  std::atomic<std::uint64_t> epoch_{0};
  EpochFn fn_ = nullptr;
  void* ctx_ = nullptr;
  std::int64_t epoch_counts_[kNumEpochKinds] = {};

  std::atomic<bool> stopping_{false};
  std::atomic<bool> in_batch_{false};
  /// Workers parked on wake_ (Dekker-style handshake with RunEpoch's
  /// epoch bump; both sides are seq_cst so a parking worker either sees
  /// the new epoch or is seen by the driver and notified).
  std::atomic<int> parked_{0};
  std::mutex mutex_;
  std::condition_variable wake_;
};

}  // namespace sjoin

#endif  // SJOIN_COMMON_SHARD_WORKERS_H_
