#include "sjoin/common/json_writer.h"

#include <cmath>
#include <cstdio>

namespace sjoin {

void JsonWriter::Comma() {
  if (first_.empty()) return;
  if (!first_.back()) out_ += ',';
  first_.back() = false;
}

void JsonWriter::Prefix() {
  if (pending_value_) {
    pending_value_ = false;  // Value slot of a preceding Key().
    return;
  }
  Comma();
}

void JsonWriter::AppendQuoted(std::string_view text) {
  out_ += '"';
  for (char c : text) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

void JsonWriter::Key(std::string_view name) {
  Comma();
  AppendQuoted(name);
  out_ += ':';
  pending_value_ = true;
}

void JsonWriter::String(std::string_view value) {
  Prefix();
  AppendQuoted(value);
}

void JsonWriter::Int(std::int64_t value) {
  Prefix();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  Prefix();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  Prefix();
  out_ += value ? "true" : "false";
}

namespace {

/// Recursive-descent validator over [pos, text.size()).
class Validator {
 public:
  explicit Validator(const std::string& text) : text_(text) {}

  bool ValidateDocument() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Expect(',')) return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Expect(',')) return false;
    }
  }

  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() || !IsHex(text_[pos_++])) return false;
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
    }
    return false;
  }

  bool Number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!DigitRun()) return false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!DigitRun()) return false;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!DigitRun()) return false;
    }
    return pos_ > start;
  }

  bool DigitRun() {
    std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  static bool IsHex(char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
           (c >= 'A' && c <= 'F');
  }

  bool Peek(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Expect(char c) { return Peek(c); }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonParses(const std::string& text) {
  return Validator(text).ValidateDocument();
}

}  // namespace sjoin
