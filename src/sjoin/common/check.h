#ifndef SJOIN_COMMON_CHECK_H_
#define SJOIN_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// CHECK-style invariant macros.
///
/// The library does not use C++ exceptions. Programmer errors (violated
/// preconditions, broken internal invariants) abort the process with a
/// source location and message; recoverable runtime conditions are
/// reported through return values (std::optional / status-like types).

namespace sjoin::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "SJOIN_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, (msg != nullptr && msg[0] != '\0') ? " — " : "",
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace sjoin::internal

/// Aborts with a diagnostic if `condition` is false. Always evaluated,
/// including in release builds: simulator correctness depends on these
/// invariants and the cost is negligible at this scale.
#define SJOIN_CHECK(condition)                                              \
  do {                                                                      \
    if (!(condition)) {                                                     \
      ::sjoin::internal::CheckFailed(__FILE__, __LINE__, #condition, "");   \
    }                                                                       \
  } while (false)

/// SJOIN_CHECK with an explanatory message (a plain C string literal).
#define SJOIN_CHECK_MSG(condition, msg)                                     \
  do {                                                                      \
    if (!(condition)) {                                                     \
      ::sjoin::internal::CheckFailed(__FILE__, __LINE__, #condition, msg);  \
    }                                                                       \
  } while (false)

/// Binary comparison checks; print both operand expressions on failure.
#define SJOIN_CHECK_EQ(a, b) SJOIN_CHECK((a) == (b))
#define SJOIN_CHECK_NE(a, b) SJOIN_CHECK((a) != (b))
#define SJOIN_CHECK_LT(a, b) SJOIN_CHECK((a) < (b))
#define SJOIN_CHECK_LE(a, b) SJOIN_CHECK((a) <= (b))
#define SJOIN_CHECK_GT(a, b) SJOIN_CHECK((a) > (b))
#define SJOIN_CHECK_GE(a, b) SJOIN_CHECK((a) >= (b))

#endif  // SJOIN_COMMON_CHECK_H_
