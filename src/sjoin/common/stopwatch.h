#ifndef SJOIN_COMMON_STOPWATCH_H_
#define SJOIN_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

/// \file
/// Monotonic wall-clock timer for the perf-telemetry harness
/// (bench/perf_smoke.cc and friends).

namespace sjoin {

/// Measures elapsed wall time on the steady (monotonic) clock.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  std::int64_t ElapsedNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNs()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sjoin

#endif  // SJOIN_COMMON_STOPWATCH_H_
