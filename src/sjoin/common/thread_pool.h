#ifndef SJOIN_COMMON_THREAD_POOL_H_
#define SJOIN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

/// \file
/// Fixed-size thread pool for the embarrassingly parallel work in this
/// repo: benchmark rosters and sweeps dispatch independent
/// (run, policy, sweep-point) simulator jobs onto one pool.
///
/// Deliberately work-stealing-free: a single mutex-guarded FIFO queue is
/// plenty at the granularity of one simulator run per task, and it keeps
/// the scheduler simple enough to validate under TSan. Tasks communicate
/// results through the buffers they capture, so execution order never
/// affects output; the harness exploits this to make parallel runs
/// bit-identical to serial ones.

namespace sjoin {

/// A fixed set of worker threads consuming a FIFO task queue.
///
/// A pool of size 1 spawns no workers at all: Submit executes the task
/// inline on the calling thread, so `--threads=1` reproduces the
/// historical serial code paths exactly (same thread, same order).
class ThreadPool {
 public:
  /// `num_threads` == 0 uses DefaultThreads() (hardware concurrency).
  explicit ThreadPool(int num_threads = 0);

  /// Drains the queue, then joins the workers. Every submitted task runs.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` and returns a future that becomes ready when it
  /// finishes. The library itself never throws, but tasks may run user
  /// code (e.g. test assertions) that does; anything thrown inside the
  /// task is captured and rethrown from future.get().
  std::future<void> Submit(std::function<void()> task);

  int num_threads() const { return num_threads_; }

  /// std::thread::hardware_concurrency with a floor of 1.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  int num_threads_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Structured fan-out helper for fine-grained parallel sections (the
/// sharded engine's per-step probe/score tasks). Run() enqueues a task on
/// the pool; Wait() blocks until every task of the group has finished and
/// rethrows the first exception any of them threw.
///
/// Unlike raw Submit(), whose per-task futures callers routinely discard,
/// a group never loses a task's exception: the task body is wrapped so a
/// throw is latched into the group before the worker moves on. In
/// particular a task that throws while its pool is being destroyed (the
/// destructor drains the queue, so queued tasks still run) surfaces at the
/// next Wait() instead of vanishing inside an abandoned future — shutdown
/// can no longer swallow errors or terminate the process.
///
/// Works with inline (size-1) pools, where Run() executes the task on the
/// calling thread and Wait() never blocks. A group is reusable: after
/// Wait() returns (or throws) it is empty and ready for the next batch.
class TaskGroup {
 public:
  /// `pool` is borrowed and must outlive every Run() call. Wait() itself
  /// never touches the pool, so a group may outlive its pool once all its
  /// tasks are queued — the pool destructor runs them, and their errors
  /// still surface at Wait().
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}

  /// Blocks until in-flight tasks finish. An unobserved task exception is
  /// dropped here (call Wait() to observe it); never throws.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `task`; returns as soon as it is queued (inline pools run it
  /// in place before returning).
  void Run(std::function<void()> task);

  /// Blocks until every Run() task has finished, then rethrows the first
  /// exception recorded by any of them ("first" in completion order —
  /// tasks run concurrently, so no submission-order guarantee is made).
  void Wait();

 private:
  ThreadPool& pool_;
  std::mutex mutex_;
  std::condition_variable done_;
  std::size_t pending_ = 0;
  std::exception_ptr first_error_;
};

/// Runs body(i) for every i in [begin, end) on the pool, splitting the
/// range into contiguous chunks (at most 4 per worker so uneven bodies
/// still balance). Blocks until every iteration has finished; if any
/// bodies threw, rethrows the first (in chunk order) afterwards.
void ParallelFor(ThreadPool& pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body);

}  // namespace sjoin

#endif  // SJOIN_COMMON_THREAD_POOL_H_
