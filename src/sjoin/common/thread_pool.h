#ifndef SJOIN_COMMON_THREAD_POOL_H_
#define SJOIN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

/// \file
/// Fixed-size thread pool for the embarrassingly parallel work in this
/// repo: benchmark rosters and sweeps dispatch independent
/// (run, policy, sweep-point) simulator jobs onto one pool.
///
/// Deliberately work-stealing-free: a single mutex-guarded FIFO queue is
/// plenty at the granularity of one simulator run per task, and it keeps
/// the scheduler simple enough to validate under TSan. Tasks communicate
/// results through the buffers they capture, so execution order never
/// affects output; the harness exploits this to make parallel runs
/// bit-identical to serial ones.

namespace sjoin {

/// A fixed set of worker threads consuming a FIFO task queue.
///
/// A pool of size 1 spawns no workers at all: Submit executes the task
/// inline on the calling thread, so `--threads=1` reproduces the
/// historical serial code paths exactly (same thread, same order).
class ThreadPool {
 public:
  /// `num_threads` == 0 uses DefaultThreads() (hardware concurrency).
  explicit ThreadPool(int num_threads = 0);

  /// Drains the queue, then joins the workers. Every submitted task runs.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` and returns a future that becomes ready when it
  /// finishes. The library itself never throws, but tasks may run user
  /// code (e.g. test assertions) that does; anything thrown inside the
  /// task is captured and rethrown from future.get().
  std::future<void> Submit(std::function<void()> task);

  int num_threads() const { return num_threads_; }

  /// std::thread::hardware_concurrency with a floor of 1.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  int num_threads_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs body(i) for every i in [begin, end) on the pool, splitting the
/// range into contiguous chunks (at most 4 per worker so uneven bodies
/// still balance). Blocks until every iteration has finished; if any
/// bodies threw, rethrows the first (in chunk order) afterwards.
void ParallelFor(ThreadPool& pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body);

}  // namespace sjoin

#endif  // SJOIN_COMMON_THREAD_POOL_H_
