#ifndef SJOIN_COMMON_THREAD_POOL_H_
#define SJOIN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

/// \file
/// Fixed-size thread pool for the embarrassingly parallel work in this
/// repo: benchmark rosters and sweeps dispatch independent
/// (run, policy, sweep-point) simulator jobs onto one pool. (The sharded
/// engine's per-step fan-out uses the persistent ShardWorkers team in
/// shard_workers.h instead — a pool queue is the wrong shape at that
/// granularity.)
///
/// Deliberately work-stealing-free: a single mutex-guarded FIFO queue is
/// plenty at the granularity of one simulator run per task, and it keeps
/// the scheduler simple enough to validate under TSan. Tasks communicate
/// results through the buffers they capture, so execution order never
/// affects output; the harness exploits this to make parallel runs
/// bit-identical to serial ones.

namespace sjoin {

/// A fixed set of worker threads consuming a FIFO task queue.
///
/// A pool of size 1 spawns no workers at all: Submit executes the task
/// inline on the calling thread, so `--threads=1` reproduces the
/// historical serial code paths exactly (same thread, same order).
class ThreadPool {
 public:
  /// `num_threads` == 0 uses DefaultThreads() (hardware concurrency).
  explicit ThreadPool(int num_threads = 0);

  /// Drains the queue, then joins the workers. Every submitted task runs.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` and returns a future that becomes ready when it
  /// finishes. The library itself never throws, but tasks may run user
  /// code (e.g. test assertions) that does; anything thrown inside the
  /// task is captured and rethrown from future.get().
  std::future<void> Submit(std::function<void()> task);

  /// Fire-and-forget fast path: enqueues fn(ctx) with no future, no
  /// promise and no closure allocation — the queue node holds the two
  /// raw pointers. `fn` must not let exceptions escape (there is nowhere
  /// to route them; TaskGroup latches its tasks' errors before this
  /// layer) and `ctx` must stay valid until the task has run. Inline
  /// (size-1) pools call fn(ctx) before returning.
  void SubmitPlain(void (*fn)(void*), void* ctx);

  int num_threads() const { return num_threads_; }

  /// std::thread::hardware_concurrency with a floor of 1.
  static int DefaultThreads();

 private:
  /// Exactly one shape is engaged: a packaged task (Submit) or a plain
  /// function-pointer task (SubmitPlain, fn != nullptr).
  struct QueueItem {
    std::packaged_task<void()> packaged;
    void (*fn)(void*) = nullptr;
    void* ctx = nullptr;

    void operator()() {
      if (fn != nullptr) {
        fn(ctx);
      } else {
        packaged();
      }
    }
  };

  void WorkerLoop();

  int num_threads_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<QueueItem> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Structured fan-out helper for parallel sections. Run() enqueues a task
/// on the pool; Wait() blocks until every task of the group has finished
/// and rethrows the first exception any of them threw.
///
/// Unlike raw Submit(), whose per-task futures callers routinely discard,
/// a group never loses a task's exception: the task runs inside a wrapper
/// that latches a throw into the group before the worker moves on. In
/// particular a task that throws while its pool is being destroyed (the
/// destructor drains the queue, so queued tasks still run) surfaces at the
/// next Wait() instead of vanishing inside an abandoned future — shutdown
/// can no longer swallow errors or terminate the process.
///
/// Submission is allocation-light: each task moves into a reusable slot
/// (the group's submission buffer, rewound whenever the group drains) and
/// reaches the pool through SubmitPlain — no packaged_task, no promise,
/// no extra closure per task. A task's captures are kept alive until its
/// slot is reused or the group dies, not destroyed at task completion.
///
/// Works with inline (size-1) pools, where Run() executes the task on the
/// calling thread and Wait() never blocks. A group is reusable: after
/// Wait() returns (or throws) it is empty and ready for the next batch.
class TaskGroup {
 public:
  /// `pool` is borrowed and must outlive every Run() call. Wait() itself
  /// never touches the pool, so a group may outlive its pool once all its
  /// tasks are queued — the pool destructor runs them, and their errors
  /// still surface at Wait().
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}

  /// Blocks until in-flight tasks finish. An unobserved task exception is
  /// dropped here (call Wait() to observe it); never throws.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `task`; returns as soon as it is queued (inline pools run it
  /// in place before returning).
  void Run(std::function<void()> task);

  /// Blocks until every Run() task has finished, then rethrows the first
  /// exception recorded by any of them ("first" in completion order —
  /// tasks run concurrently, so no submission-order guarantee is made).
  void Wait();

 private:
  /// One entry of the reusable submission buffer. Slots live in a deque
  /// so their addresses stay stable while new ones are appended (workers
  /// hold raw slot pointers through SubmitPlain).
  struct Slot {
    TaskGroup* group = nullptr;
    std::function<void()> work;
  };

  static void InvokeSlot(void* raw);

  ThreadPool& pool_;
  std::mutex mutex_;
  std::condition_variable done_;
  std::size_t pending_ = 0;
  std::exception_ptr first_error_;
  std::deque<Slot> slots_;
  std::size_t next_slot_ = 0;
};

/// Runs body(i) for every i in [begin, end) on the pool, splitting the
/// range into contiguous chunks (at most 4 per worker so uneven bodies
/// still balance). Blocks until every iteration has finished; if any
/// bodies threw, rethrows the first (in chunk order) afterwards.
void ParallelFor(ThreadPool& pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body);

}  // namespace sjoin

#endif  // SJOIN_COMMON_THREAD_POOL_H_
