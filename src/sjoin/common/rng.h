#ifndef SJOIN_COMMON_RNG_H_
#define SJOIN_COMMON_RNG_H_

#include <cstdint>
#include <random>

/// \file
/// Deterministic random number generation.
///
/// All randomness in the library flows through Rng so that simulations are
/// reproducible from a single seed. Benchmarks derive per-run seeds from a
/// base seed plus the run index; tests use fixed seeds.

namespace sjoin {

/// A seeded pseudo-random generator with the handful of draw shapes the
/// library needs. Thin wrapper over std::mt19937_64; copyable so that a
/// simulation state (including its RNG) can be snapshotted.
class Rng {
 public:
  /// Creates a generator with the given seed. Equal seeds produce equal
  /// streams of draws.
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double UniformReal();

  /// Standard normal draw.
  double StandardNormal();

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t UniformIndex(std::size_t n);

  /// Derives an independent generator; used to give each simulation run its
  /// own stream of draws without correlating runs.
  Rng Fork();

  /// Access to the raw engine for std::shuffle and friends.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sjoin

#endif  // SJOIN_COMMON_RNG_H_
