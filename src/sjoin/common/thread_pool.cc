#include "sjoin/common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "sjoin/common/check.h"

namespace sjoin {

int ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads == 0 ? DefaultThreads() : num_threads) {
  SJOIN_CHECK_GE(num_threads_, 1);
  if (num_threads_ == 1) return;  // Inline mode: no workers.
  workers_.reserve(static_cast<std::size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // A task that submits more work while the pool shuts down can race the
  // workers' final drain. Run any leftovers here, after the join, so the
  // "every submitted task runs" guarantee holds and no future is left with
  // a broken promise; packaged_task captures anything a Submit task
  // throws, and plain tasks never throw, so nothing escapes the
  // destructor.
  while (!queue_.empty()) {
    QueueItem item = std::move(queue_.front());
    queue_.pop_front();
    item();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (workers_.empty()) {
    packaged();  // Single-threaded pools run serially on the caller.
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back({std::move(packaged), nullptr, nullptr});
  }
  wake_.notify_one();
  return future;
}

void ThreadPool::SubmitPlain(void (*fn)(void*), void* ctx) {
  SJOIN_CHECK(fn != nullptr);
  if (workers_.empty()) {
    fn(ctx);  // Single-threaded pools run serially on the caller.
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back({std::packaged_task<void()>(), fn, ctx});
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueueItem item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained.
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    item();  // packaged_task routes exceptions; plain tasks don't throw.
  }
}

TaskGroup::~TaskGroup() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::Run(std::function<void()> task) {
  Slot* slot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // The buffer rewinds whenever the group has fully drained, so a
    // reused group recycles the same slots (and their std::function
    // buffers) batch after batch.
    if (pending_ == 0) next_slot_ = 0;
    if (next_slot_ == slots_.size()) slots_.emplace_back();
    slot = &slots_[next_slot_++];
    ++pending_;
  }
  slot->group = this;
  // Move-assignment reuses the slot's existing callable storage where the
  // implementation allows; no wrapper closure, no packaged_task.
  slot->work = std::move(task);
  pool_.SubmitPlain(&TaskGroup::InvokeSlot, slot);
}

void TaskGroup::InvokeSlot(void* raw) {
  Slot* slot = static_cast<Slot*>(raw);
  TaskGroup* group = slot->group;
  try {
    slot->work();
  } catch (...) {
    std::lock_guard<std::mutex> lock(group->mutex_);
    if (group->first_error_ == nullptr) {
      group->first_error_ = std::current_exception();
    }
  }
  // After this decrement the slot may be reused (or the group destroyed);
  // touch only `group` beyond it.
  std::lock_guard<std::mutex> lock(group->mutex_);
  if (--group->pending_ == 0) group->done_.notify_all();
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ParallelFor(ThreadPool& pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  std::size_t n = end - begin;
  std::size_t chunks =
      std::min(n, static_cast<std::size_t>(pool.num_threads()) * 4);
  // Errors are recorded per chunk (not latched into the group) so the
  // chunk-order rethrow contract survives the TaskGroup rewrite.
  std::vector<std::exception_ptr> errors(chunks);
  TaskGroup group(pool);
  for (std::size_t c = 0; c < chunks; ++c) {
    std::size_t lo = begin + n * c / chunks;
    std::size_t hi = begin + n * (c + 1) / chunks;
    std::exception_ptr* error = &errors[c];
    group.Run([lo, hi, &body, error] {
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        *error = std::current_exception();
      }
    });
  }
  // Wait for every chunk before rethrowing: no task may outlive the call,
  // since `body` is borrowed from the caller's stack.
  group.Wait();
  for (std::exception_ptr& error : errors) {
    if (error != nullptr) std::rethrow_exception(error);
  }
}

}  // namespace sjoin
