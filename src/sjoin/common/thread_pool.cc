#include "sjoin/common/thread_pool.h"

#include <algorithm>
#include <exception>

#include "sjoin/common/check.h"

namespace sjoin {

int ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads == 0 ? DefaultThreads() : num_threads) {
  SJOIN_CHECK_GE(num_threads_, 1);
  if (num_threads_ == 1) return;  // Inline mode: no workers.
  workers_.reserve(static_cast<std::size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // A task that submits more work while the pool shuts down can race the
  // workers' final drain. Run any leftovers here, after the join, so the
  // "every submitted task runs" guarantee holds and no future is left with
  // a broken promise; packaged_task captures anything the task throws, so
  // nothing can escape the destructor.
  while (!queue_.empty()) {
    std::packaged_task<void()> task = std::move(queue_.front());
    queue_.pop_front();
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (workers_.empty()) {
    packaged();  // Single-threaded pools run serially on the caller.
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  wake_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task routes exceptions into the future.
  }
}

TaskGroup::~TaskGroup() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::Run(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  // The future is deliberately discarded: the wrapper latches exceptions
  // into the group itself, so nothing observable is lost with it.
  pool_.Submit([this, task = std::move(task)]() mutable {
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (--pending_ == 0) done_.notify_all();
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ParallelFor(ThreadPool& pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  std::size_t n = end - begin;
  std::size_t chunks =
      std::min(n, static_cast<std::size_t>(pool.num_threads()) * 4);
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    std::size_t lo = begin + n * c / chunks;
    std::size_t hi = begin + n * (c + 1) / chunks;
    futures.push_back(pool.Submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  // Wait for every chunk before rethrowing: no task may outlive the call,
  // since `body` is borrowed from the caller's stack.
  std::exception_ptr first;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (first == nullptr) first = std::current_exception();
    }
  }
  if (first != nullptr) std::rethrow_exception(first);
}

}  // namespace sjoin
