#ifndef SJOIN_COMMON_TYPES_H_
#define SJOIN_COMMON_TYPES_H_

#include <cstdint>

/// \file
/// Fundamental scalar types shared across the library.

namespace sjoin {

/// Discrete time step. The paper models streams as discrete-time stochastic
/// processes {X_t | t = 0, 1, ...}; we allow negative values internally for
/// "before the simulation started" sentinels.
using Time = std::int64_t;

/// Join attribute value. All processes in the paper have integer-valued
/// (or integer-discretized) join attributes; real-valued domains such as
/// temperatures are scaled to a fixed-point integer grid by the caller
/// (the REAL experiment uses 0.1 degree Celsius per unit, as in the paper).
using Value = std::int64_t;

/// Unique identity of a tuple within one simulation. Tuples with equal join
/// attribute values are still distinct (Section 2 of the paper).
using TupleId = std::uint64_t;

/// Identifies which of the two input streams a tuple came from.
enum class StreamSide : std::uint8_t {
  kR = 0,
  kS = 1,
};

/// The partner of a stream side: R joins with S and vice versa.
constexpr StreamSide Partner(StreamSide side) {
  return side == StreamSide::kR ? StreamSide::kS : StreamSide::kR;
}

/// Index (0 or 1) for array storage keyed by side.
constexpr int SideIndex(StreamSide side) { return static_cast<int>(side); }

/// Printable name for diagnostics.
constexpr const char* SideName(StreamSide side) {
  return side == StreamSide::kR ? "R" : "S";
}

}  // namespace sjoin

#endif  // SJOIN_COMMON_TYPES_H_
