#include "sjoin/common/shard_workers.h"

#include <algorithm>

#include "sjoin/common/check.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace sjoin {
namespace {

constexpr std::size_t kBlockAlign = 64;
constexpr std::size_t kMinBlockBytes = 4096;

/// Spin budgets. Inside a batch a worker expects the next epoch within
/// the driver's short serial epilogue, so it burns a brief relax spin and
/// a few scheduler yields before parking; outside a batch it parks almost
/// immediately. The yields matter on oversubscribed machines (more
/// workers than cores): a pure relax spin there would steal cycles from
/// the thread actually doing work.
constexpr int kHotRelaxSpins = 2048;
constexpr int kHotYieldSpins = 64;
constexpr int kIdleRelaxSpins = 64;
constexpr int kDriverRelaxSpins = 1024;

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

void PinToCpu(int worker) {
#if defined(__linux__)
  const unsigned ncpu = std::thread::hardware_concurrency();
  if (ncpu == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(worker) % ncpu, &set);
  // Best effort: a restricted affinity mask (cgroups, taskset) can make
  // this fail, and the team works fine unpinned.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)worker;
#endif
}

}  // namespace

ShardArena::Block& ShardArena::NewBlock(std::size_t min_bytes) {
  Block block;
  block.size = std::max({min_bytes, capacity() * 2, kMinBlockBytes});
  block.storage = std::make_unique<std::byte[]>(block.size + kBlockAlign);
  auto raw = reinterpret_cast<std::uintptr_t>(block.storage.get());
  block.base = block.storage.get() +
               ((kBlockAlign - raw % kBlockAlign) % kBlockAlign);
  blocks_.push_back(std::move(block));
  ++growth_events_;
  return blocks_.back();
}

void* ShardArena::AllocBytes(std::size_t bytes, std::size_t align) {
  for (; current_ < blocks_.size(); ++current_) {
    Block& block = blocks_[current_];
    const std::size_t aligned = (block.used + align - 1) / align * align;
    if (aligned + bytes <= block.size) {
      block.used = aligned + bytes;
      return block.base + aligned;
    }
  }
  Block& block = NewBlock(bytes);
  current_ = blocks_.size() - 1;
  block.used = bytes;
  return block.base;
}

void ShardArena::Reserve(std::size_t bytes) {
  if (capacity() >= bytes) return;
  // One contiguous block sized for the whole shortfall, so the steady
  // state bumps within a single block.
  NewBlock(bytes - capacity());
}

void ShardArena::Reset() {
  for (Block& block : blocks_) block.used = 0;
  current_ = 0;
}

std::size_t ShardArena::capacity() const {
  std::size_t total = 0;
  for (const Block& block : blocks_) total += block.size;
  return total;
}

std::size_t ShardArena::used() const {
  std::size_t total = 0;
  for (const Block& block : blocks_) total += block.used;
  return total;
}

ShardWorkers::ShardWorkers(Options options) : options_(options) {
  SJOIN_CHECK_GE(options_.workers, 1);
  states_ = std::make_unique<WorkerState[]>(
      static_cast<std::size_t>(options_.workers));
  for (int w = 1; w < options_.workers; ++w) {
    states_[w].thread = std::thread([this, w] { WorkerLoop(w); });
  }
}

ShardWorkers::~ShardWorkers() {
  if (options_.workers > 1) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_.store(true, std::memory_order_seq_cst);
    }
    wake_.notify_all();
    for (int w = 1; w < options_.workers; ++w) states_[w].thread.join();
  }
}

ShardArena& ShardWorkers::arena(int worker) {
  SJOIN_CHECK_GE(worker, 0);
  SJOIN_CHECK_LT(worker, options_.workers);
  return states_[worker].arena;
}

void ShardWorkers::RunEpoch(EpochFn fn, void* ctx, EpochKind kind) {
  SJOIN_CHECK(fn != nullptr);
  ++epoch_counts_[static_cast<int>(kind)];
  if (options_.workers == 1) {
    fn(ctx, 0);
    return;
  }
  fn_ = fn;
  ctx_ = ctx;
  const std::uint64_t target =
      epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  if (parked_.load(std::memory_order_seq_cst) > 0) {
    // The empty critical section orders the notify after any in-progress
    // park (a parking worker holds the mutex from its parked_ increment
    // until the wait releases it).
    { std::lock_guard<std::mutex> lock(mutex_); }
    wake_.notify_all();
  }

  // Worker 0 is this thread: do our slice while the team does theirs.
  std::exception_ptr caller_error;
  try {
    fn(ctx, 0);
  } catch (...) {
    caller_error = std::current_exception();
  }

  for (int w = 1; w < options_.workers; ++w) {
    WorkerState& state = states_[w];
    int relax = kDriverRelaxSpins;
    while (state.done_epoch.load(std::memory_order_acquire) < target) {
      if (relax-- > 0) {
        CpuRelax();
      } else {
        std::this_thread::yield();
      }
    }
  }

  // Deterministic propagation: the lowest-indexed worker's error wins.
  std::exception_ptr first = caller_error;
  for (int w = 1; w < options_.workers; ++w) {
    WorkerState& state = states_[w];
    if (state.error != nullptr) {
      if (first == nullptr) first = state.error;
      state.error = nullptr;
    }
  }
  if (first != nullptr) std::rethrow_exception(first);
}

void ShardWorkers::WorkerLoop(int worker) {
  if (options_.pin_threads) PinToCpu(worker);
  WorkerState& state = states_[worker];
  std::uint64_t seen = 0;
  for (;;) {
    const bool hot = in_batch_.load(std::memory_order_relaxed);
    int relax = hot ? kHotRelaxSpins : kIdleRelaxSpins;
    int yields = hot ? kHotYieldSpins : 0;
    std::uint64_t target;
    for (;;) {
      target = epoch_.load(std::memory_order_acquire);
      if (target != seen) break;
      if (stopping_.load(std::memory_order_acquire)) return;
      if (relax-- > 0) {
        CpuRelax();
      } else if (yields-- > 0) {
        std::this_thread::yield();
      } else {
        std::unique_lock<std::mutex> lock(mutex_);
        parked_.fetch_add(1, std::memory_order_seq_cst);
        if (epoch_.load(std::memory_order_seq_cst) == seen &&
            !stopping_.load(std::memory_order_relaxed)) {
          wake_.wait(lock, [this, seen] {
            return epoch_.load(std::memory_order_relaxed) != seen ||
                   stopping_.load(std::memory_order_relaxed);
          });
        }
        parked_.fetch_sub(1, std::memory_order_relaxed);
        relax = kIdleRelaxSpins;  // Re-check and likely run immediately.
        yields = 0;
      }
    }
    seen = target;
    try {
      fn_(ctx_, worker);
    } catch (...) {
      state.error = std::current_exception();
    }
    state.done_epoch.store(seen, std::memory_order_release);
  }
}

}  // namespace sjoin
