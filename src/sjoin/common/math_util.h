#ifndef SJOIN_COMMON_MATH_UTIL_H_
#define SJOIN_COMMON_MATH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <vector>

/// \file
/// Small numeric helpers shared across modules.

namespace sjoin {

/// Tolerance used when comparing probabilities and expected benefits.
inline constexpr double kProbEpsilon = 1e-12;

/// True if |a - b| <= tol.
inline bool ApproxEqual(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol;
}

/// Standard normal density.
double NormalPdf(double x);

/// Standard normal CDF.
double NormalCdf(double x);

/// Probability mass that a N(mean, sigma^2) variable, discretized to the
/// integer grid by rounding, assigns to integer v: P(v-0.5 < X <= v+0.5).
double DiscretizedNormalMass(double mean, double sigma, std::int64_t v);

/// Sample mean of a vector. Returns 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Sample variance (denominator n). Returns 0 for inputs of size < 2.
double Variance(const std::vector<double>& xs);

}  // namespace sjoin

#endif  // SJOIN_COMMON_MATH_UTIL_H_
