#ifndef SJOIN_COMMON_VALIDATE_H_
#define SJOIN_COMMON_VALIDATE_H_

#include "sjoin/common/check.h"

/// \file
/// Opt-in internal invariant hooks.
///
/// SJOIN_CHECK guards cheap, always-on preconditions. SJOIN_VALIDATE is for
/// the expensive cross-checks that re-derive internal state from first
/// principles (re-scanning the cache to verify an incremental index,
/// checking flow conservation over a whole graph). They are compiled away
/// unless the build defines SJOIN_VALIDATE_ENABLED (CMake option
/// -DSJOIN_VALIDATE=ON; the sanitizer CI jobs turn it on), so Release hot
/// paths pay nothing.
///
/// Usage: wrap multi-statement validation blocks in
/// `if constexpr (kValidationEnabled) { ... }` so the compiler still
/// type-checks them in every build, and assert with SJOIN_VALIDATE /
/// SJOIN_VALIDATE_MSG inside.

namespace sjoin {

#if defined(SJOIN_VALIDATE_ENABLED)
inline constexpr bool kValidationEnabled = true;
#else
inline constexpr bool kValidationEnabled = false;
#endif

}  // namespace sjoin

#if defined(SJOIN_VALIDATE_ENABLED)
#define SJOIN_VALIDATE(condition) SJOIN_CHECK(condition)
#define SJOIN_VALIDATE_MSG(condition, msg) SJOIN_CHECK_MSG(condition, msg)
#else
/// No-ops that still syntax-check their arguments without evaluating them.
#define SJOIN_VALIDATE(condition) \
  do {                            \
    (void)sizeof((condition));    \
  } while (false)
#define SJOIN_VALIDATE_MSG(condition, msg) \
  do {                                     \
    (void)sizeof((condition));             \
    (void)sizeof(msg);                     \
  } while (false)
#endif

#endif  // SJOIN_COMMON_VALIDATE_H_
