#include "sjoin/common/math_util.h"

#include <numbers>

namespace sjoin {

double NormalPdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * std::numbers::pi);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::numbers::sqrt2); }

double DiscretizedNormalMass(double mean, double sigma, std::int64_t v) {
  if (sigma <= 0.0) {
    // Degenerate: all mass on the nearest integer to the mean.
    return (std::llround(mean) == v) ? 1.0 : 0.0;
  }
  double lo = (static_cast<double>(v) - 0.5 - mean) / sigma;
  double hi = (static_cast<double>(v) + 0.5 - mean) / sigma;
  return NormalCdf(hi) - NormalCdf(lo);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size());
}

}  // namespace sjoin
