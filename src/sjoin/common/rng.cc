#include "sjoin/common/rng.h"

#include "sjoin/common/check.h"

namespace sjoin {

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  SJOIN_CHECK_LE(lo, hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformReal() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Rng::StandardNormal() {
  std::normal_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

std::size_t Rng::UniformIndex(std::size_t n) {
  SJOIN_CHECK_GT(n, 0u);
  std::uniform_int_distribution<std::size_t> dist(0, n - 1);
  return dist(engine_);
}

Rng Rng::Fork() {
  // Two draws decorrelate the child from subsequent parent output.
  std::uint64_t a = engine_();
  std::uint64_t b = engine_();
  return Rng(a ^ (b << 1) ^ 0x9e3779b97f4a7c15ULL);
}

}  // namespace sjoin
