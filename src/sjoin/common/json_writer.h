#ifndef SJOIN_COMMON_JSON_WRITER_H_
#define SJOIN_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// \file
/// Minimal JSON emission and validation for the BENCH_*.json perf
/// telemetry files. Not a general JSON library: just enough structure to
/// write the perf schema and to smoke-check that an emitted file parses.

namespace sjoin {

/// Streaming JSON writer building a string. Usage mirrors the document
/// structure: BeginObject / Key / scalar / EndObject, with arrays via
/// BeginArray / EndArray. Commas and quoting are handled internally; the
/// caller is responsible for well-formed nesting (checked in debug via
/// the final str() being validated by callers/tests, not here).
class JsonWriter {
 public:
  void BeginObject() { Prefix(); out_ += '{'; first_.push_back(true); }
  void EndObject() { out_ += '}'; first_.pop_back(); }
  void BeginArray() { Prefix(); out_ += '['; first_.push_back(true); }
  void EndArray() { out_ += ']'; first_.pop_back(); }

  /// Starts an object member; the next value call supplies its value.
  void Key(std::string_view name);

  void String(std::string_view value);
  void Int(std::int64_t value);
  /// Non-finite doubles are emitted as null (JSON has no NaN/inf).
  void Double(double value);
  void Bool(bool value);

  const std::string& str() const { return out_; }

 private:
  /// Emits the separating comma (if needed) before a member or element.
  void Comma();
  /// Called before any value: consumes a pending key's slot or separates
  /// an array element.
  void Prefix();
  void AppendQuoted(std::string_view text);

  std::string out_;
  std::vector<char> first_;
  bool pending_value_ = false;
};

/// True iff `text` is exactly one syntactically valid JSON value (with
/// optional surrounding whitespace). Used by tests to validate emitted
/// telemetry files without a JSON dependency.
bool JsonParses(const std::string& text);

}  // namespace sjoin

#endif  // SJOIN_COMMON_JSON_WRITER_H_
