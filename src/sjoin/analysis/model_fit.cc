#include "sjoin/analysis/model_fit.h"

#include <algorithm>
#include <cmath>

#include "sjoin/analysis/ar1_fit.h"
#include "sjoin/common/check.h"
#include "sjoin/stochastic/ar1_process.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/random_walk_process.h"
#include "sjoin/stochastic/stationary_process.h"

namespace sjoin {

DiscreteDistribution EmpiricalPmf(const std::vector<Value>& sample,
                                  double smoothing, Value pad) {
  if (sample.empty()) return DiscreteDistribution();
  auto [lo_it, hi_it] = std::minmax_element(sample.begin(), sample.end());
  Value lo = *lo_it - pad;
  Value hi = *hi_it + pad;
  std::vector<double> masses(static_cast<std::size_t>(hi - lo + 1),
                             smoothing);
  for (Value v : sample) {
    masses[static_cast<std::size_t>(v - lo)] += 1.0;
  }
  return DiscreteDistribution::FromMasses(lo, std::move(masses));
}

std::unique_ptr<StochasticProcess> FitStationaryProcess(
    const std::vector<Value>& series) {
  if (series.empty()) return nullptr;
  return std::make_unique<StationaryProcess>(EmpiricalPmf(series));
}

std::unique_ptr<StochasticProcess> FitTrendProcess(
    const std::vector<Value>& series) {
  std::size_t n = series.size();
  if (n < 3) return nullptr;
  // OLS of X_t on t.
  double sum_t = 0.0, sum_x = 0.0, sum_tt = 0.0, sum_tx = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    double td = static_cast<double>(t);
    double xd = static_cast<double>(series[t]);
    sum_t += td;
    sum_x += xd;
    sum_tt += td * td;
    sum_tx += td * xd;
  }
  double denom = sum_tt - sum_t * sum_t / static_cast<double>(n);
  if (denom <= 0.0) return nullptr;
  double slope = (sum_tx - sum_t * sum_x / static_cast<double>(n)) / denom;
  double intercept =
      (sum_x - slope * sum_t) / static_cast<double>(n);
  // Residuals against the *rounded* trend the process will use.
  LinearTrendProcess skeleton(slope, intercept, DiscreteDistribution::PointMass(0));
  std::vector<Value> residuals;
  residuals.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    residuals.push_back(series[t] - skeleton.TrendAt(static_cast<Time>(t)));
  }
  return std::make_unique<LinearTrendProcess>(slope, intercept,
                                              EmpiricalPmf(residuals));
}

std::unique_ptr<StochasticProcess> FitWalkProcess(
    const std::vector<Value>& series) {
  if (series.size() < 2) return nullptr;
  std::vector<Value> steps;
  steps.reserve(series.size() - 1);
  for (std::size_t t = 1; t < series.size(); ++t) {
    steps.push_back(series[t] - series[t - 1]);
  }
  return std::make_unique<RandomWalkProcess>(EmpiricalPmf(steps),
                                             series.front());
}

std::unique_ptr<StochasticProcess> FitAr1Process(
    const std::vector<Value>& series) {
  auto fit = FitAr1(series);
  if (!fit.has_value()) return nullptr;
  if (fit->sigma <= 0.0 || std::fabs(fit->phi1) > 1.5 ||
      fit->phi1 == 0.0) {
    return nullptr;
  }
  return std::make_unique<Ar1Process>(fit->phi0, fit->phi1, fit->sigma,
                                      series.front());
}

double OneStepLogLikelihood(const StochasticProcess& model,
                            const std::vector<Value>& series, Time start,
                            double floor_prob) {
  SJOIN_CHECK_GE(start, 1);
  SJOIN_CHECK_LT(static_cast<std::size_t>(start), series.size());
  double total = 0.0;
  Time count = 0;
  StreamHistory history(std::vector<Value>(
      series.begin(), series.begin() + static_cast<std::ptrdiff_t>(start)));
  for (Time t = start; t < static_cast<Time>(series.size()); ++t) {
    double p = model.Predict(history, t).Prob(
        series[static_cast<std::size_t>(t)]);
    total += std::log(std::max(p, floor_prob));
    history.Append(series[static_cast<std::size_t>(t)]);
    ++count;
  }
  return total / static_cast<double>(count);
}

std::optional<SelectedModel> SelectModel(const std::vector<Value>& series,
                                         double holdout_fraction) {
  SJOIN_CHECK_GT(holdout_fraction, 0.0);
  SJOIN_CHECK_LT(holdout_fraction, 1.0);
  if (series.size() < 8) return std::nullopt;
  Time split = static_cast<Time>(
      static_cast<double>(series.size()) * (1.0 - holdout_fraction));
  split = std::max<Time>(split, 4);
  std::vector<Value> prefix(series.begin(),
                            series.begin() + static_cast<std::ptrdiff_t>(split));

  struct Entry {
    std::string family;
    std::unique_ptr<StochasticProcess> process;
  };
  std::vector<Entry> entries;
  if (auto p = FitStationaryProcess(prefix)) {
    entries.push_back({"stationary", std::move(p)});
  }
  if (auto p = FitTrendProcess(prefix)) {
    entries.push_back({"trend", std::move(p)});
  }
  if (auto p = FitWalkProcess(prefix)) {
    entries.push_back({"walk", std::move(p)});
  }
  if (auto p = FitAr1Process(prefix)) {
    entries.push_back({"ar1", std::move(p)});
  }
  if (entries.empty()) return std::nullopt;

  std::optional<SelectedModel> best;
  for (Entry& entry : entries) {
    double ll = OneStepLogLikelihood(*entry.process, series, split);
    if (!best.has_value() || ll > best->holdout_log_likelihood) {
      best = SelectedModel{entry.family, std::move(entry.process), ll};
    }
  }
  return best;
}

}  // namespace sjoin
