#ifndef SJOIN_ANALYSIS_AR1_FIT_H_
#define SJOIN_ANALYSIS_AR1_FIT_H_

#include <optional>
#include <vector>

#include "sjoin/common/types.h"

/// \file
/// AR(1) parameter estimation.
///
/// The REAL experiment (Section 6.5) performs "a standard MLE procedure
/// offline" on the temperature series to obtain X_t = phi1 X_{t-1} + phi0
/// + Y_t. Conditional maximum likelihood for a Gaussian AR(1) coincides
/// with ordinary least squares of X_t on X_{t-1}, which is what this
/// module implements.

namespace sjoin {

/// Fitted AR(1) model X_t = phi0 + phi1 * X_{t-1} + N(0, sigma^2).
struct Ar1Fit {
  double phi0 = 0.0;
  double phi1 = 0.0;
  double sigma = 0.0;
};

/// Fits an AR(1) by conditional MLE (least squares). Returns nullopt when
/// the series is too short (< 3 points) or has zero lag-variance.
std::optional<Ar1Fit> FitAr1(const std::vector<double>& series);

/// Convenience overload for integer-valued series.
std::optional<Ar1Fit> FitAr1(const std::vector<Value>& series);

}  // namespace sjoin

#endif  // SJOIN_ANALYSIS_AR1_FIT_H_
