#include "sjoin/analysis/ar1_fit.h"

#include <cmath>

namespace sjoin {

std::optional<Ar1Fit> FitAr1(const std::vector<double>& series) {
  std::size_t n = series.size();
  if (n < 3) return std::nullopt;
  // Regress X_t on X_{t-1} over t = 1..n-1.
  double sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_xy = 0.0;
  std::size_t m = n - 1;
  for (std::size_t t = 1; t < n; ++t) {
    double x = series[t - 1];
    double y = series[t];
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
  }
  double denom = sum_xx - sum_x * sum_x / static_cast<double>(m);
  if (denom <= 0.0) return std::nullopt;
  Ar1Fit fit;
  fit.phi1 = (sum_xy - sum_x * sum_y / static_cast<double>(m)) / denom;
  fit.phi0 = (sum_y - fit.phi1 * sum_x) / static_cast<double>(m);
  double rss = 0.0;
  for (std::size_t t = 1; t < n; ++t) {
    double resid = series[t] - fit.phi0 - fit.phi1 * series[t - 1];
    rss += resid * resid;
  }
  fit.sigma = std::sqrt(rss / static_cast<double>(m));
  return fit;
}

std::optional<Ar1Fit> FitAr1(const std::vector<Value>& series) {
  std::vector<double> doubles;
  doubles.reserve(series.size());
  for (Value v : series) doubles.push_back(static_cast<double>(v));
  return FitAr1(doubles);
}

}  // namespace sjoin
