#include "sjoin/analysis/melbourne.h"

#include <cmath>
#include <numbers>

#include "sjoin/common/rng.h"

namespace sjoin {

std::vector<Value> SyntheticMelbourneDeciCelsius(std::size_t days,
                                                 std::uint64_t seed) {
  // Calibration (degrees Celsius): mean 20.0, annual sinusoid amplitude
  // 2.2, AR(1) disturbance with rho = 0.70 and innovation sd 4.2. A raw
  // conditional-MLE AR(1) fit on this series lands near the paper's
  // X_t = 0.72 X_{t-1} + 5.59 + Y_t, sd(Y) = 4.22 (see analysis tests).
  // The weights between the seasonal and AR components are chosen so the
  // fitted AR(1) is close to correctly specified — consistent with the
  // paper's observation that HEEB driven by this fit beats LRU/LFU on the
  // real data (a strongly seasonal series with a weak AR component would
  // match the fitted parameters but contradict that observed outcome).
  constexpr double kMeanC = 20.0;
  constexpr double kAmplitudeC = 2.2;
  constexpr double kRho = 0.70;
  constexpr double kInnovationSdC = 4.2;
  constexpr double kDaysPerYear = 365.25;

  Rng rng(seed);
  std::vector<Value> series;
  series.reserve(days);
  double disturbance = 0.0;
  for (std::size_t t = 0; t < days; ++t) {
    disturbance = kRho * disturbance + kInnovationSdC * rng.StandardNormal();
    double seasonal =
        kAmplitudeC *
        std::sin(2.0 * std::numbers::pi * static_cast<double>(t) /
                 kDaysPerYear);
    double celsius = kMeanC + seasonal + disturbance;
    series.push_back(static_cast<Value>(std::llround(celsius * 10.0)));
  }
  return series;
}

}  // namespace sjoin
