#ifndef SJOIN_ANALYSIS_MELBOURNE_H_
#define SJOIN_ANALYSIS_MELBOURNE_H_

#include <cstdint>
#include <vector>

#include "sjoin/common/types.h"

/// \file
/// Synthetic stand-in for the paper's REAL data set.
///
/// The paper uses the Melbourne daily-temperature series from StatSci.org
/// (10 years, 3650 values) and fits the AR(1) model
/// X_t = 0.72 X_{t-1} + 5.59 + Y_t with sd(Y) = 4.22 (degrees Celsius).
/// That file is not redistributable here, so we synthesize a series with
/// the same structure — an annual sinusoid plus an AR(1) disturbance,
/// calibrated so the conditional-MLE AR(1) fit on the raw series lands
/// near the paper's parameters (see DESIGN.md §6). The downstream
/// experiment (fit -> HEEB surface precompute -> bicubic approximation ->
/// cache simulation) exercises exactly the paper's code path; only the
/// byte-identical inputs differ.

namespace sjoin {

/// Generates `days` of synthetic Melbourne-like daily temperatures in
/// 0.1 degree Celsius units (the granularity at which the paper's database
/// relation stores one tuple per temperature). Deterministic in `seed`.
std::vector<Value> SyntheticMelbourneDeciCelsius(std::size_t days,
                                                 std::uint64_t seed);

}  // namespace sjoin

#endif  // SJOIN_ANALYSIS_MELBOURNE_H_
