#ifndef SJOIN_ANALYSIS_MODEL_FIT_H_
#define SJOIN_ANALYSIS_MODEL_FIT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sjoin/common/types.h"
#include "sjoin/stochastic/process.h"

/// \file
/// Estimating stream models from observed prefixes.
///
/// The paper treats identifying statistical properties as an orthogonal
/// problem ("time series data analysis is an established field"); a usable
/// library still needs the basic fitters so HEEB / FlowExpect can be driven
/// from data alone. This module fits each process family the library
/// supports and selects among them by one-step-ahead predictive
/// log-likelihood on a holdout suffix.

namespace sjoin {

/// Empirical pmf of a sample of integer values, with Laplace smoothing
/// `smoothing` added to every bin of [min - pad, max + pad]. Returns an
/// empty distribution for an empty sample.
DiscreteDistribution EmpiricalPmf(const std::vector<Value>& sample,
                                  double smoothing = 0.5, Value pad = 2);

/// Fits a StationaryProcess (i.i.d. draws from the empirical pmf).
std::unique_ptr<StochasticProcess> FitStationaryProcess(
    const std::vector<Value>& series);

/// Fits a LinearTrendProcess: OLS of X_t on t for the trend, empirical pmf
/// of the de-trended residuals for the noise. Returns nullptr for series
/// shorter than 3.
std::unique_ptr<StochasticProcess> FitTrendProcess(
    const std::vector<Value>& series);

/// Fits a RandomWalkProcess: empirical pmf of the first differences.
/// Returns nullptr for series shorter than 2.
std::unique_ptr<StochasticProcess> FitWalkProcess(
    const std::vector<Value>& series);

/// Fits an Ar1Process by conditional MLE (see ar1_fit.h). Returns nullptr
/// when the fit is degenerate or explosive (|phi1| > 1.5).
std::unique_ptr<StochasticProcess> FitAr1Process(
    const std::vector<Value>& series);

/// Average one-step-ahead predictive log-likelihood of `model` on
/// `series[start..]`, conditioning on the true history at each step.
/// Steps where the model assigns zero mass contribute log(floor_prob).
double OneStepLogLikelihood(const StochasticProcess& model,
                            const std::vector<Value>& series, Time start,
                            double floor_prob = 1e-9);

/// A fitted model with its selection diagnostics.
struct SelectedModel {
  std::string family;  // "stationary", "trend", "walk", "ar1".
  std::unique_ptr<StochasticProcess> process;
  double holdout_log_likelihood = 0.0;
};

/// Fits every family on the first (1 - holdout_fraction) of the series and
/// returns the one with the best predictive log-likelihood on the rest.
/// Returns nullopt when the series is too short for any family.
std::optional<SelectedModel> SelectModel(const std::vector<Value>& series,
                                         double holdout_fraction = 0.25);

}  // namespace sjoin

#endif  // SJOIN_ANALYSIS_MODEL_FIT_H_
