#include "sjoin/analysis/summary_stats.h"

#include <algorithm>
#include <cmath>

#include "sjoin/common/math_util.h"

namespace sjoin {

double Autocorrelation(const std::vector<double>& series, std::size_t lag) {
  std::size_t n = series.size();
  if (n < 2 || lag >= n) return 0.0;
  double mean = Mean(series);
  double denom = 0.0;
  for (double x : series) denom += (x - mean) * (x - mean);
  if (denom <= 0.0) return 0.0;
  double numer = 0.0;
  for (std::size_t t = lag; t < n; ++t) {
    numer += (series[t] - mean) * (series[t - lag] - mean);
  }
  return numer / denom;
}

RunSummary Summarize(const std::vector<double>& runs) {
  RunSummary summary;
  if (runs.empty()) return summary;
  summary.mean = Mean(runs);
  summary.stddev = std::sqrt(Variance(runs));
  auto [lo, hi] = std::minmax_element(runs.begin(), runs.end());
  summary.min = *lo;
  summary.max = *hi;
  return summary;
}

}  // namespace sjoin
