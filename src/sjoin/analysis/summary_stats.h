#ifndef SJOIN_ANALYSIS_SUMMARY_STATS_H_
#define SJOIN_ANALYSIS_SUMMARY_STATS_H_

#include <vector>

#include "sjoin/common/types.h"

/// \file
/// Descriptive statistics used by the experiment harness and tests.

namespace sjoin {

/// Lag-k sample autocorrelation of a series (0 for degenerate inputs).
double Autocorrelation(const std::vector<double>& series, std::size_t lag);

/// Summary of repeated experiment runs.
struct RunSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Aggregates per-run results (e.g. join counts across the paper's 50 runs).
RunSummary Summarize(const std::vector<double>& runs);

}  // namespace sjoin

#endif  // SJOIN_ANALYSIS_SUMMARY_STATS_H_
