#include "sjoin/engine/score_memo.h"

#include "sjoin/common/check.h"

namespace sjoin {

void ScoreMemo::Reset(int num_streams) {
  SJOIN_CHECK_GE(num_streams, 1);
  memo_.assign(static_cast<std::size_t>(num_streams), {});
  epoch_ = 0;
  stats_ = Stats();
}

void ScoreMemo::BeginStep() { ++epoch_; }

bool ScoreMemo::Lookup(int partner, Value value, Time max_dt, double* out) {
  auto& per_partner = memo_[static_cast<std::size_t>(partner)];
  auto it = per_partner.find(value);
  if (it == per_partner.end() || it->second.epoch != epoch_ ||
      it->second.max_dt != max_dt) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  *out = it->second.subtotal;
  return true;
}

void ScoreMemo::Store(int partner, Value value, Time max_dt,
                      double subtotal) {
  memo_[static_cast<std::size_t>(partner)][value] = {epoch_, max_dt,
                                                     subtotal};
}

void RebuildPredictions(
    const std::vector<const StochasticProcess*>& processes,
    const std::vector<StreamHistory>& histories, Time now, Time horizon,
    std::vector<std::vector<DiscreteDistribution>>* predictions) {
  const auto n = processes.size();
  SJOIN_CHECK_EQ(histories.size(), n);
  predictions->resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    auto& preds = (*predictions)[s];
    preds.resize(static_cast<std::size_t>(horizon));
    for (Time dt = 1; dt <= horizon; ++dt) {
      processes[s]->PredictInto(histories[s], now + dt,
                                &preds[static_cast<std::size_t>(dt - 1)]);
    }
  }
}

}  // namespace sjoin
