#include "sjoin/engine/join_simulator.h"

#include "sjoin/common/check.h"
#include "sjoin/engine/sharded_stream_engine.h"

namespace sjoin {

JoinSimulator::JoinSimulator(Options options) : options_(options) {
  SJOIN_CHECK_GE(options_.capacity, 1u);
  SJOIN_CHECK_GE(options_.warmup, 0);
  if (options_.window.has_value()) SJOIN_CHECK_GE(*options_.window, 0);
  SJOIN_CHECK_GE(options_.shards, 1);
}

JoinRunResult JoinSimulator::Run(const std::vector<Value>& r,
                                 const std::vector<Value>& s,
                                 ReplacementPolicy& policy) const {
  SJOIN_CHECK_EQ(r.size(), s.size());

  ShardedStreamEngine engine(StreamTopology::Binary(),
                             {.capacity = options_.capacity,
                              .warmup = options_.warmup,
                              .window = options_.window,
                              .shards = options_.shards,
                              .threads = options_.threads,
                              .pin_threads = options_.pin_threads,
                              .pool = options_.pool,
                              .adaptive = {.enabled = options_.adaptive_shards,
                                           .interval =
                                               options_.adaptive_interval}});
  BinaryPolicyAdapter adapter(&policy);

  JoinRunResult result;
  PerfObserver perf;
  CacheCompositionObserver composition(/*stream=*/0,
                                       &result.r_fraction_by_time);
  std::vector<StepObserver*> observers{&perf};
  if (options_.track_cache_composition) observers.push_back(&composition);

  EngineRunResult run = engine.Run({&r, &s}, adapter, observers);
  result.total_results = run.total_results;
  result.counted_results = run.counted_results;
  result.telemetry = perf.telemetry();
  result.adaptive = engine.adaptive_stats();
  return result;
}

}  // namespace sjoin
