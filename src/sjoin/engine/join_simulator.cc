#include "sjoin/engine/join_simulator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "sjoin/common/check.h"
#include "sjoin/stochastic/stream_history.h"

namespace sjoin {

JoinSimulator::JoinSimulator(Options options) : options_(options) {
  SJOIN_CHECK_GE(options_.capacity, 1u);
  SJOIN_CHECK_GE(options_.warmup, 0);
  if (options_.window.has_value()) SJOIN_CHECK_GE(*options_.window, 0);
}

JoinRunResult JoinSimulator::Run(const std::vector<Value>& r,
                                 const std::vector<Value>& s,
                                 ReplacementPolicy& policy) const {
  SJOIN_CHECK_EQ(r.size(), s.size());
  policy.Reset();

  JoinRunResult result;
  std::vector<Tuple> cache;
  cache.reserve(options_.capacity);
  StreamHistory history_r;
  StreamHistory history_s;
  TupleId next_id = 0;

  Time len = static_cast<Time>(r.size());
  for (Time t = 0; t < len; ++t) {
    Tuple r_tuple{next_id++, StreamSide::kR,
                  r[static_cast<std::size_t>(t)], t};
    Tuple s_tuple{next_id++, StreamSide::kS,
                  s[static_cast<std::size_t>(t)], t};

    // Phase 1: arrivals join with the cache chosen at the previous step.
    std::int64_t produced = 0;
    for (const Tuple& cached : cache) {
      if (!InWindow(cached, t, options_.window)) continue;
      if (cached.side == StreamSide::kS && cached.value == r_tuple.value) {
        ++produced;
      }
      if (cached.side == StreamSide::kR && cached.value == s_tuple.value) {
        ++produced;
      }
    }
    result.total_results += produced;
    if (t >= options_.warmup) result.counted_results += produced;

    // Phase 2: the policy picks the new cache content.
    history_r.Append(r_tuple.value);
    history_s.Append(s_tuple.value);
    std::vector<Tuple> arrivals = {r_tuple, s_tuple};
    PolicyContext ctx;
    ctx.now = t;
    ctx.capacity = options_.capacity;
    ctx.cached = &cache;
    ctx.arrivals = &arrivals;
    ctx.history_r = &history_r;
    ctx.history_s = &history_s;
    ctx.window = options_.window;

    std::vector<TupleId> retained = policy.SelectRetained(ctx);
    SJOIN_CHECK_LE(retained.size(), options_.capacity);

    std::unordered_map<TupleId, Tuple> candidates;
    candidates.reserve(cache.size() + arrivals.size());
    for (const Tuple& tuple : cache) candidates.emplace(tuple.id, tuple);
    for (const Tuple& tuple : arrivals) candidates.emplace(tuple.id, tuple);

    std::vector<Tuple> new_cache;
    new_cache.reserve(retained.size());
    std::unordered_set<TupleId> seen;
    for (TupleId id : retained) {
      auto it = candidates.find(id);
      SJOIN_CHECK_MSG(it != candidates.end(),
                      "policy retained a tuple that is not a candidate");
      SJOIN_CHECK_MSG(seen.insert(id).second,
                      "policy retained the same tuple twice");
      new_cache.push_back(it->second);
    }
    cache = std::move(new_cache);

    if (options_.track_cache_composition) {
      std::size_t r_count = 0;
      for (const Tuple& tuple : cache) {
        if (tuple.side == StreamSide::kR) ++r_count;
      }
      result.r_fraction_by_time.push_back(
          cache.empty() ? 0.0
                        : static_cast<double>(r_count) /
                              static_cast<double>(cache.size()));
    }
  }
  return result;
}

}  // namespace sjoin
