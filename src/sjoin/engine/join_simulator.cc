#include "sjoin/engine/join_simulator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "sjoin/common/check.h"
#include "sjoin/common/validate.h"
#include "sjoin/stochastic/stream_history.h"

namespace sjoin {
namespace {

/// Below this capacity the Phase-1 linear probe beats the hash index (two
/// comparisons per cached tuple vs. hash lookups plus index upkeep).
constexpr std::size_t kValueIndexMinCapacity = 32;

}  // namespace

JoinSimulator::JoinSimulator(Options options) : options_(options) {
  SJOIN_CHECK_GE(options_.capacity, 1u);
  SJOIN_CHECK_GE(options_.warmup, 0);
  if (options_.window.has_value()) SJOIN_CHECK_GE(*options_.window, 0);
}

JoinRunResult JoinSimulator::Run(const std::vector<Value>& r,
                                 const std::vector<Value>& s,
                                 ReplacementPolicy& policy) const {
  SJOIN_CHECK_EQ(r.size(), s.size());
  policy.Reset();

  JoinRunResult result;
  std::vector<Tuple> cache;
  cache.reserve(options_.capacity);
  StreamHistory history_r;
  StreamHistory history_s;
  TupleId next_id = 0;

  // Step-loop scratch, hoisted so the steady state allocates nothing.
  std::vector<Tuple> arrivals;
  arrivals.reserve(2);
  std::vector<Tuple> new_cache;
  new_cache.reserve(options_.capacity);
  std::unordered_map<TupleId, Tuple> candidates;
  candidates.reserve(options_.capacity + 2);
  std::unordered_set<TupleId> retained_set;
  retained_set.reserve(options_.capacity + 2);

  // Large caches probe arrivals against per-side value -> count indexes of
  // the cached tuples, maintained with the <= 2 insertions and evictions a
  // step can make, instead of scanning the whole cache. Windowed runs
  // expire tuples by age, which the value counts cannot see, so they keep
  // the linear probe; so do tiny caches, where the scan is cheaper.
  const bool use_value_index = !options_.window.has_value() &&
                               options_.capacity >= kValueIndexMinCapacity;
  std::unordered_map<Value, std::int64_t> cached_values[2];
  if (use_value_index) {
    cached_values[0].reserve(options_.capacity);
    cached_values[1].reserve(options_.capacity);
  }

  Time len = static_cast<Time>(r.size());
  for (Time t = 0; t < len; ++t) {
    Tuple r_tuple{next_id++, StreamSide::kR,
                  r[static_cast<std::size_t>(t)], t};
    Tuple s_tuple{next_id++, StreamSide::kS,
                  s[static_cast<std::size_t>(t)], t};

    // Phase 1: arrivals join with the cache chosen at the previous step.
    std::int64_t produced = 0;
    if (use_value_index) {
      auto count_of = [](const std::unordered_map<Value, std::int64_t>& index,
                         Value v) -> std::int64_t {
        auto it = index.find(v);
        return it == index.end() ? 0 : it->second;
      };
      produced =
          count_of(cached_values[SideIndex(StreamSide::kS)], r_tuple.value) +
          count_of(cached_values[SideIndex(StreamSide::kR)], s_tuple.value);
    } else {
      for (const Tuple& cached : cache) {
        if (!InWindow(cached, t, options_.window)) continue;
        if (cached.side == StreamSide::kS &&
            cached.value == r_tuple.value) {
          ++produced;
        }
        if (cached.side == StreamSide::kR &&
            cached.value == s_tuple.value) {
          ++produced;
        }
      }
    }
    result.total_results += produced;
    if (t >= options_.warmup) result.counted_results += produced;

    // Phase 2: the policy picks the new cache content.
    history_r.Append(r_tuple.value);
    history_s.Append(s_tuple.value);
    arrivals.clear();
    arrivals.push_back(r_tuple);
    arrivals.push_back(s_tuple);
    PolicyContext ctx;
    ctx.now = t;
    ctx.capacity = options_.capacity;
    ctx.cached = &cache;
    ctx.arrivals = &arrivals;
    ctx.history_r = &history_r;
    ctx.history_s = &history_s;
    ctx.window = options_.window;

    std::vector<TupleId> retained = policy.SelectRetained(ctx);
    SJOIN_CHECK_LE(retained.size(), options_.capacity);

    candidates.clear();
    for (const Tuple& tuple : cache) candidates.emplace(tuple.id, tuple);
    for (const Tuple& tuple : arrivals) candidates.emplace(tuple.id, tuple);
    result.peak_candidates = std::max(
        result.peak_candidates, static_cast<std::int64_t>(candidates.size()));

    new_cache.clear();
    retained_set.clear();
    for (TupleId id : retained) {
      auto it = candidates.find(id);
      SJOIN_CHECK_MSG(it != candidates.end(),
                      "policy retained a tuple that is not a candidate");
      SJOIN_CHECK_MSG(retained_set.insert(id).second,
                      "policy retained the same tuple twice");
      new_cache.push_back(it->second);
    }

    if (use_value_index) {
      for (const Tuple& tuple : cache) {
        if (retained_set.contains(tuple.id)) continue;  // Still cached.
        auto& index = cached_values[SideIndex(tuple.side)];
        auto it = index.find(tuple.value);
        if (--it->second == 0) index.erase(it);
      }
      for (const Tuple& tuple : arrivals) {
        if (retained_set.contains(tuple.id)) {
          ++cached_values[SideIndex(tuple.side)][tuple.value];
        }
      }
    }
    cache.swap(new_cache);

    if constexpr (kValidationEnabled) {
      SJOIN_VALIDATE(cache.size() <= options_.capacity);
      if (use_value_index) {
        // The incrementally-maintained value -> count indexes must match a
        // from-scratch recount of the cache.
        std::unordered_map<Value, std::int64_t> recount[2];
        for (const Tuple& tuple : cache) {
          ++recount[SideIndex(tuple.side)][tuple.value];
        }
        SJOIN_VALIDATE_MSG(recount[0] == cached_values[0] &&
                               recount[1] == cached_values[1],
                           "value index out of sync with cache contents");
      }
    }

    if (options_.track_cache_composition) {
      std::size_t r_count = 0;
      for (const Tuple& tuple : cache) {
        if (tuple.side == StreamSide::kR) ++r_count;
      }
      result.r_fraction_by_time.push_back(
          cache.empty() ? 0.0
                        : static_cast<double>(r_count) /
                              static_cast<double>(cache.size()));
    }
  }
  return result;
}

}  // namespace sjoin
