#ifndef SJOIN_ENGINE_CACHE_SIMULATOR_H_
#define SJOIN_ENGINE_CACHE_SIMULATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "sjoin/common/thread_pool.h"
#include "sjoin/common/types.h"
#include "sjoin/engine/caching_policy.h"
#include "sjoin/engine/replacement_policy.h"
#include "sjoin/engine/step_observer.h"

/// \file
/// Simulator of the caching problem (stream x database-relation join with
/// demand fetching, Section 2). Every reference that is not served from the
/// cache is a miss; after a miss the fetched tuple may be cached.
///
/// Since the StreamEngine unification this class is a façade over the
/// Theorem 1 reduction: the reference sequence is transformed into the
/// (R', S') stream pair (engine/reduction.h) and run on the same engine
/// as the joining problem; hits are exactly the engine's result count.
/// The differential suites pin this equivalence bit-for-bit against a
/// frozen copy of the pre-engine direct caching loop.

namespace sjoin {

/// Per-run accounting for the caching problem.
struct CacheRunResult {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  /// Hits/misses at times >= warmup.
  std::int64_t counted_hits = 0;
  std::int64_t counted_misses = 0;
  /// Perf telemetry (peak candidate set, steps, wall time) — the same
  /// struct JoinRunResult carries, collected by the façade's PerfObserver.
  EngineTelemetry telemetry;
};

/// Runs one caching experiment.
class CacheSimulator {
 public:
  struct Options {
    std::size_t capacity = 10;
    Time warmup = 0;
    /// Sliding-window length (Section 7 carried through the reduction):
    /// a cached tuple older than the window no longer serves hits until
    /// refetched; every hit refreshes its age. nullopt = classic caching.
    std::optional<Time> window;
    /// Value-domain shards for intra-run parallelism
    /// (engine/sharded_stream_engine.h); results are bit-identical for any
    /// count. <= 1, or a policy without shard scoring, runs serially.
    int shards = 1;
    /// Worker threads for the sharded path; 0 = auto (min(shards,
    /// hardware)), 1 = inline. See ShardedStreamEngine::Options::threads.
    int threads = 0;
    /// Pin sharded-path workers to CPUs (Linux only, best effort).
    bool pin_threads = false;
    /// Legacy thread-count hint for the sharded path (not owned; must
    /// outlive the simulator): when `threads` == 0 a configured pool caps
    /// the persistent worker team at its size.
    ThreadPool* pool = nullptr;
    /// Skew-adaptive sharding (DESIGN.md §2e): deterministic rebalancing
    /// of the value->shard ranges every `adaptive_interval` steps. Results
    /// stay bit-identical; only load balance moves.
    bool adaptive_shards = false;
    Time adaptive_interval = 32;
  };

  explicit CacheSimulator(Options options);

  /// Simulates the reference sequence under `policy`. Calls policy.Reset().
  CacheRunResult Run(const std::vector<Value>& references,
                     CachingPolicy& policy) const;

  /// Runs the caching problem under a joining-problem policy: the policy
  /// sees the Theorem 1 transformed streams (the fresh supply tuple
  /// arrives alongside each reference) and its join results are the hit
  /// count. This is the inverse direction of the unification — joining
  /// policies (RAND, PROB, ...) serving the caching problem through the
  /// same engine code path.
  CacheRunResult RunJoinPolicy(const std::vector<Value>& references,
                               ReplacementPolicy& policy) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace sjoin

#endif  // SJOIN_ENGINE_CACHE_SIMULATOR_H_
