#ifndef SJOIN_ENGINE_CACHE_SIMULATOR_H_
#define SJOIN_ENGINE_CACHE_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "sjoin/common/types.h"
#include "sjoin/engine/caching_policy.h"

/// \file
/// Simulator of the caching problem (stream x database-relation join with
/// demand fetching, Section 2). Every reference that is not served from the
/// cache is a miss; after a miss the fetched tuple may be cached.

namespace sjoin {

/// Per-run accounting for the caching problem.
struct CacheRunResult {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  /// Hits/misses at times >= warmup.
  std::int64_t counted_hits = 0;
  std::int64_t counted_misses = 0;
};

/// Runs one caching experiment.
class CacheSimulator {
 public:
  struct Options {
    std::size_t capacity = 10;
    Time warmup = 0;
  };

  explicit CacheSimulator(Options options);

  /// Simulates the reference sequence under `policy`. Calls policy.Reset().
  CacheRunResult Run(const std::vector<Value>& references,
                     CachingPolicy& policy) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace sjoin

#endif  // SJOIN_ENGINE_CACHE_SIMULATOR_H_
