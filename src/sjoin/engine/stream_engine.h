#ifndef SJOIN_ENGINE_STREAM_ENGINE_H_
#define SJOIN_ENGINE_STREAM_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sjoin/common/types.h"
#include "sjoin/engine/candidate_batch.h"
#include "sjoin/engine/partition_map.h"
#include "sjoin/engine/replacement_policy.h"
#include "sjoin/engine/step_observer.h"
#include "sjoin/engine/stream_tuple.h"
#include "sjoin/stochastic/stream_history.h"

/// \file
/// The unified step-loop core behind every simulator in the repo.
///
/// One engine, parameterized by a StreamTopology, runs the two-stream
/// joining problem (Section 2), the N-way multi-join generalization
/// (Appendix C), and — through the Theorem 1 reduction — the caching
/// problem. Each step: (Phase 1) the arrivals join the cache selected at
/// the previous step, partition-locally when the value index is engaged;
/// (Phase 2) the policy picks the new cache from cached ∪ arrivals.
/// Everything that merely watches a run (telemetry, composition tracking,
/// validation, score traces) attaches as a StepObserver chain.
///
/// `JoinSimulator`, `CacheSimulator` and `MultiJoinSimulator` are thin
/// façades over this class, kept for API stability; constructing the
/// engine directly is equally supported (the differential suites run both
/// ways in CI).

namespace sjoin {

class ProbePlanner;
class ShardedStreamEngine;
struct SessionState;

/// The join graph: N streams plus the unordered stream pairs that equijoin.
class StreamTopology {
 public:
  /// `join_edges` lists unordered stream pairs that equijoin. Each pair
  /// must name two distinct in-range streams, and no unordered pair may
  /// appear twice — a duplicate or mirrored edge ((a,b) next to (b,a))
  /// would silently double-count every match on that edge.
  StreamTopology(int num_streams,
                 std::vector<std::pair<int, int>> join_edges);

  /// The classic two-stream topology: R (stream 0) joins S (stream 1).
  static StreamTopology Binary();

  int num_streams() const { return num_streams_; }
  const std::vector<std::pair<int, int>>& join_edges() const {
    return join_edges_;
  }

  /// Streams that join with `stream` under the join graph.
  const std::vector<int>& PartnersOf(int stream) const;

  /// True when streams `a` and `b` equijoin.
  bool Joins(int a, int b) const {
    return joins_[static_cast<std::size_t>(a)]
                 [static_cast<std::size_t>(b)] != 0;
  }

 private:
  int num_streams_;
  std::vector<std::pair<int, int>> join_edges_;
  std::vector<std::vector<int>> partners_;
  /// Adjacency as a membership matrix for the Phase-1 join test.
  std::vector<std::vector<char>> joins_;
};

/// Step context for an engine replacement decision. For N = 2 this is
/// field-for-field the information of the binary PolicyContext
/// (histories[0] = R, histories[1] = S).
struct EngineContext {
  Time now = 0;
  std::size_t capacity = 0;
  const std::vector<StreamTuple>* cached = nullptr;
  const std::vector<StreamTuple>* arrivals = nullptr;  // One per stream.
  const std::vector<StreamHistory>* histories = nullptr;
  std::optional<Time> window;
  /// SoA view of this step's candidates in scalar scoring order (cached
  /// then arrivals), or null when the engine did not build one. Borrowed;
  /// valid only for the duration of the SelectRetained call.
  const CandidateBatch* batch = nullptr;
};

/// Engine-level mirror of PolicyShardScoring (replacement_policy.h): the
/// per-step protocol ShardedStreamEngine drives instead of SelectRetained.
/// Same four phases, same ShardKey merge-order contract — see the binary
/// interface for the full documentation; only the tuple type differs.
class EngineShardScoring {
 public:
  virtual ~EngineShardScoring() = default;

  /// Serial step prologue. Returns false when the step is fully decided
  /// (`*decided` then holds the retained ids and no scoring happens).
  virtual bool ShardBeginStep(const EngineContext& ctx,
                              std::vector<TupleId>* decided) = 0;

  /// Per-shard scratch factory; nullptr when no scratch is needed.
  virtual std::unique_ptr<ShardScratch> MakeShardScratch() {
    return nullptr;
  }

  /// Thread-safe merge key for a cached tuple; nullopt excludes it.
  virtual std::optional<ShardKey> ShardScoreCached(
      const StreamTuple& tuple, const EngineContext& ctx,
      ShardScratch* scratch) = 0;

  /// True when ShardScoreCachedBatch may replace the per-tuple loop for
  /// whole shard runs (requires: no tuple is ever excluded via nullopt).
  /// Queried once per Run, at entry.
  virtual bool ShardBatchScorable() const { return false; }

  /// Batched counterpart of ShardScoreCached over one shard's cached run;
  /// bit-identical to the per-tuple calls. `score_scratch` is a
  /// caller-provided buffer of batch.size doubles (arena-carved per
  /// shard). The default loops ShardScoreCached.
  virtual void ShardScoreCachedBatch(const CandidateBatch& batch,
                                     const EngineContext& ctx,
                                     ShardScratch* scratch,
                                     double* score_scratch, ShardKey* out);

  /// Serial (post-barrier, arrival-order) key for an arrival.
  virtual std::optional<ShardKey> ShardScoreArrival(
      const StreamTuple& tuple, const EngineContext& ctx) = 0;

  /// Serial step epilogue with the merged retained set and its complement:
  /// `evicted` holds every candidate id (cached or arrival) that was NOT
  /// retained. The sharded engine gets this list for free from the merge
  /// leftovers, so policies can drop per-tuple state in O(evicted) instead
  /// of re-deriving the complement with an O(cache) retained-set walk.
  virtual void ShardEndStep(const EngineContext& ctx,
                            const std::vector<TupleId>& retained,
                            const std::vector<TupleId>& evicted) = 0;
};

/// Replacement policy for the engine: the single decision interface every
/// simulator now funnels into. Binary ReplacementPolicy implementations
/// attach through BinaryPolicyAdapter; CachingPolicy implementations
/// attach through the Theorem 1 reduction (engine/reduction.h) followed by
/// the same adapter.
class EnginePolicy {
 public:
  virtual ~EnginePolicy() = default;
  virtual void Reset() {}
  /// Subset of cached ∪ arrivals ids, size <= capacity.
  virtual std::vector<TupleId> SelectRetained(const EngineContext& ctx) = 0;
  /// Non-null iff the policy can run sharded; queried by
  /// ShardedStreamEngine once per Run, at entry. Default: serial only.
  virtual EngineShardScoring* shard_scoring() { return nullptr; }
  /// True when the policy consumes EngineContext::batch (so the engine
  /// should spend the per-step gather building it). Queried at Open.
  virtual bool WantsCandidateBatch() const { return false; }
  virtual const char* name() const = 0;
};

/// Per-run accounting of the engine loop. Telemetry (peak candidates,
/// ns/step) is an observer concern — attach a PerfObserver.
struct EngineRunResult {
  /// Result tuples produced from the cache over the whole run.
  std::int64_t total_results = 0;
  /// Result tuples produced at times >= warmup (the paper's metric).
  std::int64_t counted_results = 0;
};

/// The unified step-loop core.
class StreamEngine {
 public:
  struct Options {
    /// Cache capacity k.
    std::size_t capacity = 10;
    /// Results produced before this time are not counted.
    Time warmup = 0;
    /// Sliding-window length (Section 7); nullopt = regular join.
    std::optional<Time> window;
    /// Value-domain partitioning for the Phase-1 index (not owned; must
    /// outlive the engine). nullptr = single partition. Any PartitionMap
    /// yields identical results; partitions only shape the index layout.
    const PartitionMap* partitions = nullptr;
    /// Runtime probe planning for Phase 1 (engine/probe_planner.h): probe
    /// order re-planned from observed selectivities at deterministic
    /// checkpoints, empty-partner probes short-circuited, repeated
    /// (partner, value) probes served from a memo. Cost-only — results are
    /// bit-identical to the fixed-order loop. Not owned; must outlive the
    /// Run. nullptr = naive probe order.
    ProbePlanner* probe_planner = nullptr;
  };

  /// Below this capacity the Phase-1 linear probe beats the hash index
  /// (two comparisons per cached tuple vs. hash lookups plus index
  /// upkeep). The serial and sharded engines engage the value index under
  /// the same criteria.
  static constexpr std::size_t kValueIndexMinCapacity = 32;

  StreamEngine(StreamTopology topology, Options options);

  /// Simulates one realization (`streams[s]` is stream s's values; all
  /// equal length, one pointer per topology stream, none null) under
  /// `policy`. Calls policy.Reset() first, then drives `observers` in
  /// order around every step. Reuses internal buffers: a StreamEngine
  /// instance is cheap to Run repeatedly but not concurrently — the
  /// thread-safe façades construct one engine per call instead.
  ///
  /// Implemented as exactly Open + Advance + Close over a private
  /// session, so batch and incremental execution are bit-identical by
  /// construction.
  EngineRunResult Run(const std::vector<const std::vector<Value>*>& streams,
                      EnginePolicy& policy,
                      const std::vector<StepObserver*>& observers = {});

  // --- Incremental session lifecycle --------------------------------
  //
  // A session carries everything a run accumulates between steps
  // (SessionState below); the engine is a stateless executor over it.
  // Any engine with an equal topology may execute a session's next
  // Advance (one call at a time — the engine's step scratch is not
  // reentrant), which is what lets the serve layer multiplex thousands
  // of sessions over an engine per worker thread.

  /// Opens `session` for incremental execution under `options` (which
  /// override the engine's own): resets all per-run state, calls
  /// policy.Reset(), binds the observer chain and delivers OnRunBegin
  /// with length = -1 (unknown — arrivals have not happened yet).
  /// `policy`, `observers`, `options.partitions` and
  /// `options.probe_planner` are borrowed and must outlive the session.
  /// Neither a policy instance nor a planner may serve two sessions that
  /// are open at the same time. A closed SessionState can be reopened;
  /// its buffers are reused.
  void Open(SessionState& session, const Options& options,
            EnginePolicy& policy, std::vector<StepObserver*> observers = {});

  /// Advances an open session by `batch[0]->size()` steps (one pointer
  /// per topology stream, none null, all equal length; length zero is a
  /// no-op). `batch[s]` extends stream s: step times continue at
  /// `session.now`, so warmup and windows keep their absolute meaning.
  void Advance(SessionState& session,
               const std::vector<const std::vector<Value>*>& batch);

  /// Progress so far. The engine buffers nothing between steps — arrival
  /// queueing lives in serve::SessionScheduler, which drains its queues
  /// through Advance — so Drain is a read, kept for lifecycle symmetry.
  const EngineRunResult& Drain(const SessionState& session) const;

  /// Delivers OnRunEnd (length = steps actually executed), marks the
  /// session closed and returns its final result.
  EngineRunResult Close(SessionState& session);

  const StreamTopology& topology() const { return topology_; }
  const Options& options() const { return options_; }

 private:
  /// Open with a length already known (batch Run): OnRunBegin reports it
  /// instead of the incremental -1 sentinel.
  void OpenWithLength(SessionState& session, const Options& options,
                      EnginePolicy& policy,
                      std::vector<StepObserver*> observers,
                      Time known_length);

  StreamTopology topology_;
  Options options_;

  /// Session backing Run(); lazily built, reused across calls so the
  /// historical "cheap to Run repeatedly" contract still holds.
  std::unique_ptr<SessionState> run_session_;

  // Per-step scratch (cleared or rebuilt every step), hoisted so the
  // steady state allocates nothing. This is what makes an engine cheap
  // to share across sessions — and what makes Advance non-reentrant.
  std::vector<StreamTuple> new_cache_;
  std::vector<StreamTuple> arrivals_;
  std::unordered_map<TupleId, StreamTuple> candidates_;
  std::unordered_set<TupleId> retained_set_;
  // SoA lanes of the per-step CandidateBatch (cached then arrivals),
  // rebuilt each step for sessions whose policy wants the batch.
  std::vector<Value> batch_values_;
  std::vector<Time> batch_arrivals_;
  std::vector<std::uint8_t> batch_sides_;
  std::vector<TupleId> batch_ids_;
};

/// Everything a run accumulates between steps — the engine's former
/// per-run members, carved out so one engine can execute any number of
/// interleaved sessions. Plain data; the executing engine owns all the
/// invariants. Callers treat it as an opaque token between lifecycle
/// calls, except for the cheap reads (`now`, `result`, `is_open`).
///
/// A session opened by StreamEngine (or by ShardedStreamEngine's serial
/// fallback) is engine-portable. A session opened on the sharded path
/// pins to its opening engine — the slot, worker and arena structures
/// backing it are engine-resident (`sharded_owner` below).
struct SessionState {
  /// True between Open and Close.
  bool open = false;
  /// Time of the next step == steps executed so far.
  Time now = 0;
  /// Results accumulated so far; what Drain reports mid-session.
  EngineRunResult result;

  bool is_open() const { return open; }

  // Bindings fixed at Open. None owned; all must outlive the session.
  EnginePolicy* policy = nullptr;
  std::vector<StepObserver*> observers;
  StreamEngine::Options options;
  /// Resolved partition map: options.partitions, or the process-wide
  /// trivial partition when that is null.
  const PartitionMap* partitions = nullptr;
  /// Phase-1 index decision, taken once at Open (same criteria as the
  /// batch run: no window, capacity >= kValueIndexMinCapacity).
  bool use_value_index = false;
  /// Build the per-step CandidateBatch for the policy; decided once at
  /// Open (batching enabled and the policy wants it), so a mid-session
  /// flip of the process-wide switch cannot change the session's path.
  bool batch_scoring = false;

  // The join state proper: the cache selected at the previous step, each
  // stream's value history, and the Phase-1 acceleration structures.
  std::vector<StreamTuple> cache;
  std::vector<StreamHistory> histories;
  /// Value -> cached-tuple count, per (partition, stream).
  std::vector<std::vector<std::unordered_map<Value, std::int64_t>>>
      value_index;
  /// Cached tuples per stream; maintained only when a probe planner is
  /// attached (backs its empty-partner short-circuit).
  std::vector<std::int64_t> stream_counts;

  // Set only when a ShardedStreamEngine opened this session on its
  // sharded path: that engine must execute every later lifecycle call
  // (its shard slots live in the engine, keyed to this session).
  ShardedStreamEngine* sharded_owner = nullptr;
  EngineShardScoring* scoring = nullptr;
  /// Every attached observer tolerates deferred scalar-only delivery
  /// (StepObserver::AllowsBatchedSteps), decided once at Open.
  bool batched_observers = false;
};

/// Adapts a binary ReplacementPolicy to the engine interface for
/// two-stream topologies: stream 0 plays R, stream 1 plays S, and ids pass
/// through unchanged (StreamTupleIdAt(2, s, t) == TupleIdAt(side, t)), so
/// the policy's view is bit-identical to the pre-engine JoinSimulator's.
class BinaryPolicyAdapter final : public EnginePolicy,
                                  public EngineShardScoring {
 public:
  /// `policy` is not owned and must outlive the adapter.
  explicit BinaryPolicyAdapter(ReplacementPolicy* policy)
      : policy_(policy) {}

  void Reset() override;
  std::vector<TupleId> SelectRetained(const EngineContext& ctx) override;
  const char* name() const override { return policy_->name(); }

  /// Batch-building decision passes through to the wrapped policy.
  bool WantsCandidateBatch() const override {
    return policy_->WantsCandidateBatch();
  }

  /// Sharded when the wrapped binary policy is: ShardBeginStep builds the
  /// Tuple mirrors (stable through the step), the per-tuple calls convert
  /// StreamTuple -> Tuple on the stack and delegate.
  EngineShardScoring* shard_scoring() override;
  bool ShardBeginStep(const EngineContext& ctx,
                      std::vector<TupleId>* decided) override;
  std::unique_ptr<ShardScratch> MakeShardScratch() override;
  std::optional<ShardKey> ShardScoreCached(const StreamTuple& tuple,
                                           const EngineContext& ctx,
                                           ShardScratch* scratch) override;
  std::optional<ShardKey> ShardScoreArrival(
      const StreamTuple& tuple, const EngineContext& ctx) override;
  void ShardEndStep(const EngineContext& ctx,
                    const std::vector<TupleId>& retained,
                    const std::vector<TupleId>& evicted) override;
  /// Batch shard scoring delegates to the wrapped policy's kernel; the
  /// SoA lanes pass through unchanged (side == stream index for binary).
  bool ShardBatchScorable() const override;
  void ShardScoreCachedBatch(const CandidateBatch& batch,
                             const EngineContext& ctx, ShardScratch* scratch,
                             double* score_scratch, ShardKey* out) override;

 private:
  /// Rebuilds cached_/arrivals_/binary_ctx_ from the engine context.
  void BuildBinaryContext(const EngineContext& ctx);

  ReplacementPolicy* policy_;
  // Mirrors of the engine's cache/arrivals in binary Tuple form, reused
  // across steps.
  std::vector<Tuple> cached_;
  std::vector<Tuple> arrivals_;
  /// Points into cached_/arrivals_; stable for the duration of one step of
  /// the sharded protocol (rebuilt by ShardBeginStep).
  PolicyContext binary_ctx_;
  /// Wrapped policy's shard interface; set by shard_scoring().
  PolicyShardScoring* binary_shard_ = nullptr;
};

}  // namespace sjoin

#endif  // SJOIN_ENGINE_STREAM_ENGINE_H_
