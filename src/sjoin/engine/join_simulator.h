#ifndef SJOIN_ENGINE_JOIN_SIMULATOR_H_
#define SJOIN_ENGINE_JOIN_SIMULATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "sjoin/common/thread_pool.h"
#include "sjoin/common/types.h"
#include "sjoin/engine/partition_map.h"
#include "sjoin/engine/replacement_policy.h"
#include "sjoin/engine/step_observer.h"
#include "sjoin/engine/tuple.h"

/// \file
/// Discrete-time simulator of the two-stream joining problem (Section 2).
///
/// At every time step each stream produces one tuple. Arrivals first join
/// with the cache selected at the previous step (this is exactly the
/// performance definition f(A, N) of Section 3.3), then the policy picks the
/// new cache content from the old cache plus the two arrivals. Joins between
/// the two same-time arrivals are produced regardless of any replacement
/// decision and are therefore excluded from the score, as in the paper.
///
/// Since the StreamEngine unification this class is a thin façade: it
/// instantiates the engine on the binary topology, adapts the policy with
/// BinaryPolicyAdapter, and attaches the standard observers. It is kept
/// because its Value-vector API is what the experiments, tests and
/// examples speak; constructing StreamEngine directly is equivalent (the
/// differential suites run both ways in CI).

namespace sjoin {

/// Per-run accounting.
struct JoinRunResult {
  /// Result tuples produced from the cache over the whole run.
  std::int64_t total_results = 0;
  /// Result tuples produced at times >= warmup (the paper's metric).
  std::int64_t counted_results = 0;
  /// When Options::track_cache_composition is set: fraction of cache slots
  /// holding R tuples after each step (Figures 14, 17, 18).
  std::vector<double> r_fraction_by_time;
  /// Perf telemetry (peak candidate set, steps, wall time), collected by
  /// the façade's PerfObserver; the same struct CacheRunResult carries.
  EngineTelemetry telemetry;
  /// Skew/rebalance telemetry when the run used adaptive sharding
  /// (Options::adaptive_shards); all-zero otherwise.
  AdaptiveShardStats adaptive;
};

/// Runs one joining experiment.
class JoinSimulator {
 public:
  struct Options {
    /// Cache capacity k.
    std::size_t capacity = 10;
    /// Results produced before this time are not counted (the paper uses a
    /// warm-up of at least 4x the cache size).
    Time warmup = 0;
    /// Sliding-window length (Section 7); nullopt = regular join semantics.
    std::optional<Time> window;
    /// Record the per-step fraction of R tuples in the cache.
    bool track_cache_composition = false;
    /// Value-domain shards for intra-run parallelism
    /// (engine/sharded_stream_engine.h); results are bit-identical for any
    /// count. <= 1, or a policy without shard scoring, runs serially.
    int shards = 1;
    /// Worker threads for the sharded path; 0 = auto (min(shards,
    /// hardware)), 1 = inline. See ShardedStreamEngine::Options::threads.
    int threads = 0;
    /// Pin sharded-path workers to CPUs (Linux only, best effort).
    bool pin_threads = false;
    /// Legacy thread-count hint for the sharded path (not owned; must
    /// outlive the simulator): when `threads` == 0 a configured pool caps
    /// the persistent worker team at its size.
    ThreadPool* pool = nullptr;
    /// Skew-adaptive sharding: replace the static value hash with an
    /// AdaptivePartitionMap whose deterministic rebalancer moves shard
    /// ranges every `adaptive_interval` steps (DESIGN.md §2e). Results
    /// stay bit-identical to static/serial runs; only load balance moves.
    bool adaptive_shards = false;
    Time adaptive_interval = 32;
  };

  explicit JoinSimulator(Options options);

  /// Simulates the realization pair (r[t], s[t] for t = 0..len-1) under
  /// `policy`. Calls policy.Reset() first. Thread-safe: each call builds
  /// its own engine, so one JoinSimulator may serve concurrent runs (the
  /// parallel bench harness relies on this).
  JoinRunResult Run(const std::vector<Value>& r, const std::vector<Value>& s,
                    ReplacementPolicy& policy) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace sjoin

#endif  // SJOIN_ENGINE_JOIN_SIMULATOR_H_
