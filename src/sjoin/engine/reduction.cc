#include "sjoin/engine/reduction.h"

#include <algorithm>
#include <unordered_map>

#include "sjoin/common/check.h"

namespace sjoin {

CachingReduction::CachingReduction(std::vector<Value> references)
    : references_(std::move(references)) {
  r_stream_.reserve(references_.size());
  s_stream_.reserve(references_.size());
  std::unordered_map<Value, std::int64_t> occurrences;
  auto intern = [this](Value v, std::int64_t occurrence) -> Value {
    auto [it, inserted] =
        encode_.try_emplace({v, occurrence},
                            static_cast<Value>(decode_.size()));
    if (inserted) decode_.push_back({v, occurrence});
    return it->second;
  };
  for (Value v : references_) {
    std::int64_t seen = occurrences[v]++;
    // The (seen+1)-th occurrence of v becomes (v, seen) in R' and
    // (v, seen + 1) in S'.
    r_stream_.push_back(intern(v, seen));
    s_stream_.push_back(intern(v, seen + 1));
  }
}

Value CachingReduction::Encode(Value v, std::int64_t occurrence) const {
  auto it = encode_.find({v, occurrence});
  SJOIN_CHECK_MSG(it != encode_.end(), "pair never occurs in the reduction");
  return it->second;
}

std::pair<Value, std::int64_t> CachingReduction::Decode(Value encoded) const {
  SJOIN_CHECK_GE(encoded, 0);
  SJOIN_CHECK_LT(encoded, static_cast<Value>(decode_.size()));
  return decode_[static_cast<std::size_t>(encoded)];
}

void ReductionJoinPolicy::Reset() {
  caching_policy_->Reset();
  reference_history_ = StreamHistory();
}

void ReductionJoinPolicy::PrepareStep(const PolicyContext& ctx) {
  SJOIN_CHECK_EQ(ctx.arrivals->size(), 2u);
  // Identify the arrivals: exactly one R' and one S' tuple.
  const Tuple* r_arrival = nullptr;
  const Tuple* s_arrival = nullptr;
  for (const Tuple& tuple : *ctx.arrivals) {
    if (tuple.side == StreamSide::kR) r_arrival = &tuple;
    if (tuple.side == StreamSide::kS) s_arrival = &tuple;
  }
  SJOIN_CHECK(r_arrival != nullptr && s_arrival != nullptr);
  s_arrival_id_ = s_arrival->id;

  auto [ref_value, ref_occurrence] = reduction_->Decode(r_arrival->value);
  (void)ref_occurrence;
  ref_value_ = ref_value;
  reference_history_.Append(ref_value_);

  // Decode the cached supply tuples: original value -> joining tuple. A
  // reasonable policy keeps at most one supply tuple per original value.
  cached_by_value_.clear();
  cached_values_.clear();
  cached_values_.reserve(ctx.cached->size());
  for (const Tuple& tuple : *ctx.cached) {
    SJOIN_CHECK_MSG(tuple.side == StreamSide::kS,
                    "reasonable policy never caches reference tuples");
    auto [v, occurrence] = reduction_->Decode(tuple.value);
    (void)occurrence;
    SJOIN_CHECK_MSG(cached_by_value_.emplace(v, &tuple).second,
                    "multiple supply tuples cached for one value");
    cached_values_.push_back(v);
  }

  // A windowed hit additionally requires the cached supply tuple to still
  // be inside the window — the same predicate the engine's Phase-1 probe
  // applies, so Theorem 1's hits == results stays exact under windows.
  auto cached_it = cached_by_value_.find(ref_value_);
  hit_ = cached_it != cached_by_value_.end() &&
         InWindow(*cached_it->second, ctx.now, ctx.window);

  // On a windowed miss the referenced value may still sit in the cache as
  // an expired entry. Expiry is monotone (only a hit refreshes, and an
  // expired entry can never hit), so that copy is dead weight; drop it
  // from the candidate set so the policy sees the referenced value once —
  // as the demand-fetched candidate — never as cached and referenced at
  // the same time.
  dropped_id_ = -1;
  if (!hit_ && cached_it != cached_by_value_.end()) {
    dropped_id_ = cached_it->second->id;
    cached_values_.erase(std::find(cached_values_.begin(),
                                   cached_values_.end(), ref_value_));
  }

  caching_ctx_.now = ctx.now;
  caching_ctx_.capacity = ctx.capacity;
  caching_ctx_.cached = &cached_values_;
  caching_ctx_.referenced = ref_value_;
  caching_ctx_.hit = hit_;
  caching_ctx_.history = &reference_history_;
  caching_policy_->Observe(caching_ctx_);
}

std::vector<TupleId> ReductionJoinPolicy::SelectRetained(
    const PolicyContext& ctx) {
  PrepareStep(ctx);

  std::vector<Value> retained_values;
  if (hit_) {
    // Cache state is unchanged in the caching problem; in the joining
    // problem the dead tuple s_(v,i) is swapped for fresh s_(v,i+1).
    retained_values = cached_values_;
  } else {
    retained_values = caching_policy_->SelectRetained(caching_ctx_);
  }

  std::vector<TupleId> retained_ids;
  retained_ids.reserve(retained_values.size());
  for (Value v : retained_values) {
    if (v == ref_value_) {
      // The freshest supply tuple for the referenced value is the arrival.
      retained_ids.push_back(s_arrival_id_);
    } else {
      auto it = cached_by_value_.find(v);
      SJOIN_CHECK_MSG(it != cached_by_value_.end(),
                      "policy retained a value that is not a candidate");
      retained_ids.push_back(it->second->id);
    }
  }
  return retained_ids;
}

PolicyShardScoring* ReductionJoinPolicy::shard_scoring() {
  auto* scored = dynamic_cast<ScoredCachingPolicy*>(caching_policy_);
  if (scored == nullptr || !scored->ShardScorable() ||
      scored->has_score_observer()) {
    return nullptr;
  }
  shard_caching_ = scored;
  return this;
}

bool ReductionJoinPolicy::ShardBeginStep(const PolicyContext& ctx,
                                         std::vector<TupleId>* decided) {
  PrepareStep(ctx);
  if (!hit_) return true;  // Miss: rank the candidates shard-locally.
  // Hit: the caching problem keeps its cache verbatim; the joining side
  // swaps the dead tuple s_(v,i) for the fresh arrival s_(v,i+1). Nothing
  // is ranked, so the whole step is decided here.
  decided->clear();
  decided->reserve(cached_values_.size());
  for (Value v : cached_values_) {
    decided->push_back(v == ref_value_ ? s_arrival_id_
                                       : cached_by_value_.at(v)->id);
  }
  return false;
}

std::optional<ShardKey> ReductionJoinPolicy::ShardScoreCached(
    const Tuple& tuple, const PolicyContext& ctx, ShardScratch* scratch) {
  (void)ctx;
  (void)scratch;
  // The expired copy of the referenced value was dropped from the
  // candidate set (see PrepareStep); it must not be retained.
  if (tuple.id == dropped_id_) return std::nullopt;
  // Decode is a bounds-checked vector lookup — thread-safe. Cached
  // candidates are never the referenced value on the miss path, so
  // is-referenced (the major tie-break) is always 0 here.
  Value v = reduction_->Decode(tuple.value).first;
  return ShardKey{shard_caching_->ShardScore(v, caching_ctx_), 0, v};
}

std::optional<ShardKey> ReductionJoinPolicy::ShardScoreArrival(
    const Tuple& tuple, const PolicyContext& ctx) {
  (void)ctx;
  // Reference tuples are never cached (the "reasonable policy" rule);
  // the supply arrival carries the demand-fetched referenced value.
  if (tuple.side == StreamSide::kR) return std::nullopt;
  return ShardKey{shard_caching_->ShardScore(ref_value_, caching_ctx_), 1,
                  ref_value_};
}

void ReductionJoinPolicy::ShardEndStep(const PolicyContext& ctx,
                                       const std::vector<TupleId>& retained,
                                       const std::vector<TupleId>& evicted) {
  (void)ctx;
  (void)retained;  // SelectRetained has no epilogue to mirror.
  (void)evicted;
}

}  // namespace sjoin
