#include "sjoin/engine/reduction.h"

#include <algorithm>
#include <unordered_map>

#include "sjoin/common/check.h"

namespace sjoin {

CachingReduction::CachingReduction(std::vector<Value> references)
    : references_(std::move(references)) {
  r_stream_.reserve(references_.size());
  s_stream_.reserve(references_.size());
  std::unordered_map<Value, std::int64_t> occurrences;
  auto intern = [this](Value v, std::int64_t occurrence) -> Value {
    auto [it, inserted] =
        encode_.try_emplace({v, occurrence},
                            static_cast<Value>(decode_.size()));
    if (inserted) decode_.push_back({v, occurrence});
    return it->second;
  };
  for (Value v : references_) {
    std::int64_t seen = occurrences[v]++;
    // The (seen+1)-th occurrence of v becomes (v, seen) in R' and
    // (v, seen + 1) in S'.
    r_stream_.push_back(intern(v, seen));
    s_stream_.push_back(intern(v, seen + 1));
  }
}

Value CachingReduction::Encode(Value v, std::int64_t occurrence) const {
  auto it = encode_.find({v, occurrence});
  SJOIN_CHECK_MSG(it != encode_.end(), "pair never occurs in the reduction");
  return it->second;
}

std::pair<Value, std::int64_t> CachingReduction::Decode(Value encoded) const {
  SJOIN_CHECK_GE(encoded, 0);
  SJOIN_CHECK_LT(encoded, static_cast<Value>(decode_.size()));
  return decode_[static_cast<std::size_t>(encoded)];
}

void ReductionJoinPolicy::Reset() {
  caching_policy_->Reset();
  reference_history_ = StreamHistory();
}

std::vector<TupleId> ReductionJoinPolicy::SelectRetained(
    const PolicyContext& ctx) {
  SJOIN_CHECK_EQ(ctx.arrivals->size(), 2u);
  // Identify the arrivals: exactly one R' and one S' tuple.
  const Tuple* r_arrival = nullptr;
  const Tuple* s_arrival = nullptr;
  for (const Tuple& tuple : *ctx.arrivals) {
    if (tuple.side == StreamSide::kR) r_arrival = &tuple;
    if (tuple.side == StreamSide::kS) s_arrival = &tuple;
  }
  SJOIN_CHECK(r_arrival != nullptr && s_arrival != nullptr);

  auto [ref_value, ref_occurrence] = reduction_->Decode(r_arrival->value);
  reference_history_.Append(ref_value);

  // Decode the cached supply tuples: original value -> joining tuple. A
  // reasonable policy keeps at most one supply tuple per original value.
  std::unordered_map<Value, const Tuple*> cached_by_value;
  std::vector<Value> cached_values;
  cached_values.reserve(ctx.cached->size());
  for (const Tuple& tuple : *ctx.cached) {
    SJOIN_CHECK_MSG(tuple.side == StreamSide::kS,
                    "reasonable policy never caches reference tuples");
    auto [v, occurrence] = reduction_->Decode(tuple.value);
    (void)occurrence;
    SJOIN_CHECK_MSG(cached_by_value.emplace(v, &tuple).second,
                    "multiple supply tuples cached for one value");
    cached_values.push_back(v);
  }

  // A windowed hit additionally requires the cached supply tuple to still
  // be inside the window — the same predicate the engine's Phase-1 probe
  // applies, so Theorem 1's hits == results stays exact under windows.
  auto cached_it = cached_by_value.find(ref_value);
  bool hit = cached_it != cached_by_value.end() &&
             InWindow(*cached_it->second, ctx.now, ctx.window);

  // On a windowed miss the referenced value may still sit in the cache as
  // an expired entry. Expiry is monotone (only a hit refreshes, and an
  // expired entry can never hit), so that copy is dead weight; drop it
  // from the candidate set so the policy sees the referenced value once —
  // as the demand-fetched candidate — never as cached and referenced at
  // the same time.
  if (!hit && cached_it != cached_by_value.end()) {
    cached_values.erase(
        std::find(cached_values.begin(), cached_values.end(), ref_value));
  }

  CachingContext caching_ctx;
  caching_ctx.now = ctx.now;
  caching_ctx.capacity = ctx.capacity;
  caching_ctx.cached = &cached_values;
  caching_ctx.referenced = ref_value;
  caching_ctx.hit = hit;
  caching_ctx.history = &reference_history_;
  caching_policy_->Observe(caching_ctx);

  std::vector<Value> retained_values;
  if (hit) {
    // Cache state is unchanged in the caching problem; in the joining
    // problem the dead tuple s_(v,i) is swapped for fresh s_(v,i+1).
    retained_values = cached_values;
  } else {
    retained_values = caching_policy_->SelectRetained(caching_ctx);
  }

  std::vector<TupleId> retained_ids;
  retained_ids.reserve(retained_values.size());
  for (Value v : retained_values) {
    if (v == ref_value) {
      // The freshest supply tuple for the referenced value is the arrival.
      retained_ids.push_back(s_arrival->id);
    } else {
      auto it = cached_by_value.find(v);
      SJOIN_CHECK_MSG(it != cached_by_value.end(),
                      "policy retained a value that is not a candidate");
      retained_ids.push_back(it->second->id);
    }
  }
  return retained_ids;
}

}  // namespace sjoin
