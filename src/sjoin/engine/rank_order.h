#ifndef SJOIN_ENGINE_RANK_ORDER_H_
#define SJOIN_ENGINE_RANK_ORDER_H_

/// \file
/// The repo-wide strict (score desc, major desc, minor desc) total order.
///
/// Every comparison sort in the retention path — the serial ScoredPolicy
/// selection, the sharded engine's per-shard runs and k-way merge, the
/// multi-way policies' ranked top-k, and the edge-budget spill — must rank
/// candidates by exactly the same order, or shard counts and policy
/// implementations would stop being bit-identical. This header is that
/// order's single definition; call sites bind (major, minor) to
/// (arrival time, tuple id) for the joining problem and to
/// (is-referenced, original value) for the Theorem 1 caching reduction.
///
/// With distinct `minor` values (tuple ids are unique; so are cached
/// values in the caching problem) the order is strict and total, which is
/// what makes top-k selection a pure function of the scores.

namespace sjoin {

/// True when (score_a, major_a, minor_a) ranks strictly better than
/// (score_b, major_b, minor_b): score descending, then major descending,
/// then minor descending. `Major` and `Minor` are any ordered integer
/// types; signedness must match between the two operands (the template
/// keeps Time/TupleId call sites from converting implicitly).
template <typename Major, typename Minor>
inline bool RankOrderBetter(double score_a, Major major_a, Minor minor_a,
                            double score_b, Major major_b, Minor minor_b) {
  if (score_a != score_b) return score_a > score_b;
  if (major_a != major_b) return major_a > major_b;
  return minor_a > minor_b;
}

}  // namespace sjoin

#endif  // SJOIN_ENGINE_RANK_ORDER_H_
