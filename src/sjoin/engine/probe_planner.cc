#include "sjoin/engine/probe_planner.h"

#include <algorithm>

#include "sjoin/common/check.h"
#include "sjoin/engine/stream_engine.h"

namespace sjoin {

ProbePlanner::ProbePlanner(Options options) : options_(options) {
  SJOIN_CHECK_GE(options_.replan_interval, 1);
  SJOIN_CHECK(options_.decay > 0.0 && options_.decay <= 1.0);
}

void ProbePlanner::BeginRun(const StreamTopology& topology,
                            bool memo_across_steps) {
  num_streams_ = topology.num_streams();
  memo_across_steps_ = memo_across_steps;
  const auto n = static_cast<std::size_t>(num_streams_);
  decayed_.assign(n * n, EdgeCounter());
  window_.assign(n * n, EdgeCounter());
  plans_.assign(n, {});
  for (int s = 0; s < num_streams_; ++s) {
    plans_[static_cast<std::size_t>(s)] = topology.PartnersOf(s);
  }
  memo_.assign(n, {});
  stats_ = ProbePlanStats();
  step_stats_ = ProbePlanStats();
}

void ProbePlanner::BeginStep(Time now) {
  step_stats_ = ProbePlanStats();
  if (!memo_across_steps_) {
    for (auto& per_partner : memo_) per_partner.clear();
  }
  if (now > 0 && now % options_.replan_interval == 0) {
    ++stats_.checkpoints;
    ++step_stats_.checkpoints;
    Replan();
  }
}

void ProbePlanner::Replan() {
  for (std::size_t cell = 0; cell < decayed_.size(); ++cell) {
    decayed_[cell].probes =
        decayed_[cell].probes * options_.decay + window_[cell].probes;
    decayed_[cell].matches =
        decayed_[cell].matches * options_.decay + window_[cell].matches;
    window_[cell] = EdgeCounter();
  }
  bool changed = false;
  for (int s = 0; s < num_streams_; ++s) {
    auto& plan = plans_[static_cast<std::size_t>(s)];
    if (plan.size() < 2) continue;
    rank_scratch_.clear();
    for (int partner : plan) {
      const EdgeCounter& cell = decayed_[CellOf(s, partner)];
      double rate =
          cell.probes > 0.0 ? cell.matches / cell.probes : 0.0;
      rank_scratch_.push_back({rate, partner});
    }
    // Highest observed match rate first; ties (including the all-zero
    // cold start) break on the partner index so the plan is a total
    // function of the counters.
    std::sort(rank_scratch_.begin(), rank_scratch_.end(),
              [](const std::pair<double, int>& a,
                 const std::pair<double, int>& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    for (std::size_t i = 0; i < plan.size(); ++i) {
      if (plan[i] != rank_scratch_[i].second) {
        plan[i] = rank_scratch_[i].second;
        changed = true;
      }
    }
  }
  if (changed) {
    ++stats_.replans;
    ++step_stats_.replans;
  }
}

bool ProbePlanner::LookupCount(int partner, Value value,
                               std::int64_t* count) const {
  const auto& per_partner = memo_[static_cast<std::size_t>(partner)];
  auto it = per_partner.find(value);
  if (it == per_partner.end()) return false;
  *count = it->second;
  return true;
}

void ProbePlanner::StoreCount(int partner, Value value, std::int64_t count) {
  memo_[static_cast<std::size_t>(partner)][value] = count;
}

void ProbePlanner::ObserveProbe(int stream, int partner, std::int64_t matches,
                                ProbeKind kind) {
  EdgeCounter& cell = window_[CellOf(stream, partner)];
  cell.probes += 1.0;
  cell.matches += static_cast<double>(matches);
  ++stats_.probes;
  ++step_stats_.probes;
  switch (kind) {
    case ProbeKind::kSkipped:
      ++stats_.skipped;
      ++step_stats_.skipped;
      break;
    case ProbeKind::kMemoHit:
      ++stats_.cache_hits;
      ++step_stats_.cache_hits;
      break;
    case ProbeKind::kEvaluated:
      ++stats_.evaluated;
      ++step_stats_.evaluated;
      break;
  }
}

void ProbePlanner::OnCacheChange(int stream, Value value) {
  memo_[static_cast<std::size_t>(stream)].erase(value);
}

}  // namespace sjoin
