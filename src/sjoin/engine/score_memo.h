#ifndef SJOIN_ENGINE_SCORE_MEMO_H_
#define SJOIN_ENGINE_SCORE_MEMO_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sjoin/common/types.h"
#include "sjoin/stochastic/process.h"
#include "sjoin/stochastic/stream_history.h"

/// \file
/// Per-step memo of per-partner score subtotals (DESIGN.md §2f).
///
/// Every multi-way policy scores a candidate as a *sum over its partner
/// streams* of a per-partner subtotal that depends only on (partner,
/// value[, score horizon]) — for HEEB the Appendix C inner sum
/// Σ_Δt Pr{X^p = v} L(Δt), for PROB/LIFE the partner match frequency. The
/// N-way loop recomputes that subtotal for every candidate touching the
/// same (partner, value) pair; with a drifting value domain much narrower
/// than the candidate set, most lookups repeat. ScoreMemo caches the
/// subtotal for one step (predictions change every step, so entries are
/// epoch-stamped and die at BeginStep).
///
/// Bit-identity: policies must compute the subtotal per partner and sum
/// the subtotals in fixed partner order whether or not the memo is
/// attached. A memoized subtotal is the stored double itself, so serving
/// it back is exact — cached-on and cached-off runs score every tuple
/// bit-identically, which the multi_planner differential suite checks.

namespace sjoin {

/// One-step memo: (partner stream, value, horizon) -> score subtotal.
/// Not thread-safe; multi-way policies run serial-only.
class ScoreMemo {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
  };

  /// Sizes the memo for `num_streams` partner slots and clears everything
  /// (call from policy Reset / first step).
  void Reset(int num_streams);

  /// Invalidates every entry (constant time: bumps the epoch stamp).
  void BeginStep();

  /// True and `*out` filled when (partner, value) was stored this step
  /// with the same `max_dt`.
  bool Lookup(int partner, Value value, Time max_dt, double* out);

  /// Stores this step's subtotal for (partner, value, max_dt).
  void Store(int partner, Value value, Time max_dt, double subtotal);

  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    std::uint64_t epoch = 0;
    Time max_dt = 0;
    double subtotal = 0.0;
  };

  std::uint64_t epoch_ = 0;
  std::vector<std::unordered_map<Value, Entry>> memo_;
  Stats stats_;
};

/// Rebuilds `(*predictions)[s][dt-1]` = stream s's predictive pmf for time
/// `now + dt`, dt = 1..horizon, in place (PredictInto reuses each slot's
/// buffer, so the steady state allocates nothing). Shared by every policy
/// that scores against partner predictions.
void RebuildPredictions(
    const std::vector<const StochasticProcess*>& processes,
    const std::vector<StreamHistory>& histories, Time now, Time horizon,
    std::vector<std::vector<DiscreteDistribution>>* predictions);

}  // namespace sjoin

#endif  // SJOIN_ENGINE_SCORE_MEMO_H_
