#ifndef SJOIN_ENGINE_STREAM_TUPLE_H_
#define SJOIN_ENGINE_STREAM_TUPLE_H_

#include <optional>

#include "sjoin/common/types.h"

/// \file
/// A tuple from one of N streams, as seen by the unified StreamEngine.
///
/// The binary `Tuple` (engine/tuple.h) predates the engine and survives as
/// the policy-facing type of the two-stream problem; `StreamTuple` is the
/// engine-native generalization. For N = 2 the two id conventions coincide
/// (StreamTupleIdAt(2, s, t) == TupleIdAt(side, t)), which is what lets
/// binary policies run under the engine without id translation.

namespace sjoin {

/// One tuple from stream `stream` of an N-stream topology.
struct StreamTuple {
  TupleId id = 0;
  int stream = 0;
  Value value = 0;
  Time arrival = 0;
};

/// Ids are deterministic: the tuple of stream s arriving at time t gets
/// id t * num_streams + s. Offline policies (OPT-offline) rely on this to
/// pre-compute schedules in terms of ids.
constexpr TupleId StreamTupleIdAt(int num_streams, int stream, Time t) {
  return static_cast<TupleId>(t) * static_cast<TupleId>(num_streams) +
         static_cast<TupleId>(stream);
}

/// True if `tuple` is still inside the sliding window at time `now`
/// (always true for regular join semantics).
inline bool InWindow(const StreamTuple& tuple, Time now,
                     const std::optional<Time>& window) {
  return !window.has_value() || now - tuple.arrival <= *window;
}

}  // namespace sjoin

#endif  // SJOIN_ENGINE_STREAM_TUPLE_H_
