#ifndef SJOIN_ENGINE_SCORING_BATCH_H_
#define SJOIN_ENGINE_SCORING_BATCH_H_

/// \file
/// Process-wide switch for the batched SoA scoring kernels. Batching is on
/// by default; setting the environment variable SJOIN_BATCH_SCORING=0
/// disables it (any other value, or unset, leaves it on). Tests and
/// benchmarks flip the switch programmatically for A/B comparisons — the
/// kernels are bit-identical to the scalar path, so the flag must never
/// change results, only speed.
///
/// The flag may only be written at serial points (no engine mid-step, no
/// live shard epoch): engines snapshot it when a run opens, and the serial
/// scoring path reads it between steps.

namespace sjoin {

/// Current state of the batch-scoring switch.
bool ScoringBatchEnabled();

/// Overrides the switch. Call only from serial code (test/bench setup).
void SetScoringBatchEnabled(bool enabled);

/// RAII override for A/B tests: forces the switch for the scope's lifetime
/// and restores the previous state on destruction.
class ScopedScoringBatch {
 public:
  explicit ScopedScoringBatch(bool enabled);
  ~ScopedScoringBatch();

  ScopedScoringBatch(const ScopedScoringBatch&) = delete;
  ScopedScoringBatch& operator=(const ScopedScoringBatch&) = delete;

 private:
  bool previous_;
};

}  // namespace sjoin

#endif  // SJOIN_ENGINE_SCORING_BATCH_H_
