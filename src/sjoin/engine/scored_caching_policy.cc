#include "sjoin/engine/scored_caching_policy.h"

#include <algorithm>

#include "sjoin/common/check.h"
#include "sjoin/engine/rank_order.h"
#include "sjoin/engine/scoring_batch.h"

namespace sjoin {

std::vector<Value> ScoredCachingPolicy::SelectRetained(
    const CachingContext& ctx) {
  struct Candidate {
    double score;
    bool is_referenced;
    Value value;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(ctx.cached->size() + 1);
  // Observer branch hoisted out of the loop, as in ScoredPolicy: observer
  // runs stay on the scalar path, observer-free runs use the batch kernel
  // when the subclass has one.
  if (score_observer_) {
    for (Value v : *ctx.cached) {
      double score = Score(v, ctx);
      score_observer_(v, score);
      candidates.push_back({score, v == ctx.referenced, v});
    }
    if (!ctx.hit) {
      double score = Score(ctx.referenced, ctx);
      score_observer_(ctx.referenced, score);
      candidates.push_back({score, true, ctx.referenced});
    }
  } else if (ScoringBatchEnabled() && BatchScorable()) {
    // Values-only SoA batch: cached values in cache order, then the
    // referenced value on a miss — the scalar scoring order.
    batch_values_.assign(ctx.cached->begin(), ctx.cached->end());
    if (!ctx.hit) batch_values_.push_back(ctx.referenced);
    batch_scores_.resize(batch_values_.size());
    CandidateBatch batch;
    batch.size = batch_values_.size();
    batch.values = batch_values_.data();
    ScoreBatchInto(batch, ctx, batch_scores_.data());
    for (std::size_t i = 0; i < ctx.cached->size(); ++i) {
      candidates.push_back(
          {batch_scores_[i], batch_values_[i] == ctx.referenced,
           batch_values_[i]});
    }
    if (!ctx.hit) {
      candidates.push_back({batch_scores_.back(), true, ctx.referenced});
    }
  } else {
    for (Value v : *ctx.cached) {
      candidates.push_back({Score(v, ctx), v == ctx.referenced, v});
    }
    if (!ctx.hit) {
      candidates.push_back({Score(ctx.referenced, ctx), true, ctx.referenced});
    }
  }
  auto better = [](const Candidate& a, const Candidate& b) {
    // rank_order.h with (major, minor) = (is-referenced, value),
    // the ShardKey mapping of the Theorem 1 reduction.
    return RankOrderBetter(a.score, static_cast<int>(a.is_referenced),
                           a.value, b.score,
                           static_cast<int>(b.is_referenced), b.value);
  };
  // nth_element + prefix sort: the order is strict and total (values are
  // unique within cached ∪ {referenced}), so the sorted prefix equals the
  // former full sort's prefix.
  std::size_t keep = std::min(ctx.capacity, candidates.size());
  if (keep < candidates.size()) {
    std::nth_element(candidates.begin(), candidates.begin() + keep,
                     candidates.end(), better);
  }
  std::sort(candidates.begin(), candidates.begin() + keep, better);
  std::vector<Value> retained;
  retained.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    retained.push_back(candidates[i].value);
  }
  return retained;
}

void ScoredCachingPolicy::ScoreBatchInto(const CandidateBatch& batch,
                                         const CachingContext& ctx,
                                         double* out) {
  for (std::size_t i = 0; i < batch.size; ++i) {
    out[i] = Score(batch.values[i], ctx);
  }
}

}  // namespace sjoin
