#include "sjoin/engine/scored_caching_policy.h"

#include <algorithm>

#include "sjoin/common/check.h"
#include "sjoin/engine/rank_order.h"

namespace sjoin {

std::vector<Value> ScoredCachingPolicy::SelectRetained(
    const CachingContext& ctx) {
  struct Candidate {
    double score;
    bool is_referenced;
    Value value;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(ctx.cached->size() + 1);
  for (Value v : *ctx.cached) {
    double score = Score(v, ctx);
    if (score_observer_) score_observer_(v, score);
    candidates.push_back({score, v == ctx.referenced, v});
  }
  if (!ctx.hit) {
    double score = Score(ctx.referenced, ctx);
    if (score_observer_) score_observer_(ctx.referenced, score);
    candidates.push_back({score, true, ctx.referenced});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              // rank_order.h with (major, minor) = (is-referenced, value),
              // the ShardKey mapping of the Theorem 1 reduction.
              return RankOrderBetter(a.score, static_cast<int>(a.is_referenced),
                                     a.value, b.score,
                                     static_cast<int>(b.is_referenced),
                                     b.value);
            });
  std::size_t keep = std::min(ctx.capacity, candidates.size());
  std::vector<Value> retained;
  retained.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    retained.push_back(candidates[i].value);
  }
  return retained;
}

}  // namespace sjoin
