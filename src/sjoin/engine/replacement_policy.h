#ifndef SJOIN_ENGINE_REPLACEMENT_POLICY_H_
#define SJOIN_ENGINE_REPLACEMENT_POLICY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sjoin/common/types.h"
#include "sjoin/engine/candidate_batch.h"
#include "sjoin/engine/rank_order.h"
#include "sjoin/engine/tuple.h"
#include "sjoin/stochastic/stream_history.h"

/// \file
/// The replacement-decision interface for the joining problem.
///
/// Mirrors Section 3.3's definition of an algorithm A: inputs are K (the
/// cached tuples), N (the newly arrived tuples), H (the full arrival
/// history), and the policy's own statistical knowledge; the output is the
/// new cache content, a subset of K ∪ N.

namespace sjoin {

/// Everything a policy may inspect when making the decision at one step.
struct PolicyContext {
  /// Time of the new arrivals.
  Time now = 0;
  /// Cache capacity k.
  std::size_t capacity = 0;
  /// Tuples currently cached (the K of Section 3.3). Size <= capacity.
  const std::vector<Tuple>* cached = nullptr;
  /// Tuples that just arrived at `now` (the N of Section 3.3).
  const std::vector<Tuple>* arrivals = nullptr;
  /// Observed values of streams R and S, inclusive of time `now`.
  const StreamHistory* history_r = nullptr;
  const StreamHistory* history_s = nullptr;
  /// Sliding-window length w (Section 7): a tuple that arrived at time a
  /// participates in joins only while now - a <= w. nullopt = regular join.
  std::optional<Time> window;
  /// SoA view of this step's candidates in scalar scoring order (cached
  /// then arrivals), or null when the engine did not build one. Borrowed;
  /// valid only for the duration of the SelectRetained call.
  const CandidateBatch* batch = nullptr;
};

/// Merge key of one candidate tuple under sharded execution.
///
/// Shards score their candidates independently and sort them by this key;
/// the engine then merges the per-shard sorted runs and keeps the global
/// top k. The key induces the same strict total order the serial selection
/// sorts by — score descending, then `major` descending, then `minor`
/// descending — so the merged prefix is bit-identical to the serial
/// result. ScoredPolicy maps (major, minor) = (arrival time, tuple id);
/// the Theorem 1 reduction maps them to (is-referenced, original value),
/// matching ScoredCachingPolicy's tie-break.
struct ShardKey {
  double score = 0.0;
  std::int64_t major = 0;
  std::int64_t minor = 0;
};

/// Strict weak ordering of ShardKeys, best first: the rank_order.h total
/// order, which makes the k-way merge deterministic and exact.
inline bool ShardKeyBetter(const ShardKey& a, const ShardKey& b) {
  return RankOrderBetter(a.score, a.major, a.minor, b.score, b.major,
                         b.minor);
}

/// Per-shard scratch space owned by the policy (prediction buffers, ...).
/// The sharded engine allocates one per shard via MakeShardScratch() and
/// hands it back on every scoring call from that shard, so scoring can
/// stay allocation-free without sharing mutable state across threads.
class ShardScratch {
 public:
  virtual ~ShardScratch() = default;
};

/// Optional sharded-scoring protocol a ReplacementPolicy can expose
/// through shard_scoring().
///
/// Per step the engine calls, in order:
///   1. ShardBeginStep — serial; per-step state refresh. May decide the
///      whole step (return false) to skip scoring, e.g. the reduction's
///      cache-hit fast path.
///   2. ShardScoreCached — concurrent, one call per cached tuple, each
///      tuple scored from the shard that owns its value. Must not touch
///      state shared across shards except read-only step state prepared
///      in ShardBeginStep.
///   3. ShardScoreArrival — serial (after a barrier), in arrival order;
///      may mutate policy state (HEEB inserts incremental state here).
///   4. ShardEndStep — serial, with the merged retained set and the
///      evicted ids (candidates \ retained, free from the merge
///      leftovers) so per-tuple state drops in O(evicted).
///
/// A nullopt from either scoring call excludes the tuple from retention
/// entirely (the reduction uses this for reference-stream tuples, which a
/// reasonable policy never caches).
class PolicyShardScoring {
 public:
  virtual ~PolicyShardScoring() = default;

  /// Serial per-step preparation. Returning false means the step is fully
  /// decided: `*decided` holds the retained ids and no scoring happens.
  virtual bool ShardBeginStep(const PolicyContext& ctx,
                              std::vector<TupleId>* decided) = 0;

  /// Scratch for one shard; nullptr when the policy needs none.
  virtual std::unique_ptr<ShardScratch> MakeShardScratch() {
    return nullptr;
  }

  /// Thread-safe scoring of one cached tuple.
  virtual std::optional<ShardKey> ShardScoreCached(
      const Tuple& tuple, const PolicyContext& ctx,
      ShardScratch* scratch) = 0;

  /// True when ShardScoreCachedBatch may replace the per-tuple
  /// ShardScoreCached loop for whole shard runs. Batch-scorable policies
  /// must never exclude a cached tuple (no nullopt lanes). Queried once
  /// per Run, at entry.
  virtual bool ShardBatchScorable() const { return false; }

  /// Batched counterpart of ShardScoreCached: scores every lane of the
  /// shard's cached run into out[i], bit-identical to the per-tuple calls.
  /// `score_scratch` is a caller-provided buffer of batch.size doubles
  /// (arena-carved per shard, so kernels stay allocation-free and
  /// thread-confined). The default loops ShardScoreCached.
  virtual void ShardScoreCachedBatch(const CandidateBatch& batch,
                                     const PolicyContext& ctx,
                                     ShardScratch* scratch,
                                     double* score_scratch, ShardKey* out) {
    (void)score_scratch;
    for (std::size_t i = 0; i < batch.size; ++i) {
      Tuple tuple{batch.ids[i], static_cast<StreamSide>(batch.sides[i]),
                  batch.values[i], batch.arrivals[i]};
      out[i] = *ShardScoreCached(tuple, ctx, scratch);
    }
  }

  /// Serial scoring of one arrival.
  virtual std::optional<ShardKey> ShardScoreArrival(
      const Tuple& tuple, const PolicyContext& ctx) = 0;

  /// Serial step epilogue. `evicted` is candidates \ retained.
  virtual void ShardEndStep(const PolicyContext& ctx,
                            const std::vector<TupleId>& retained,
                            const std::vector<TupleId>& evicted) = 0;
};

/// A cache replacement policy for the joining problem.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Clears per-run state; called by the simulator before each run.
  virtual void Reset() {}

  /// Returns the ids of tuples to retain: a subset of the ids in
  /// ctx.cached ∪ ctx.arrivals with size <= ctx.capacity. The simulator
  /// validates the result.
  virtual std::vector<TupleId> SelectRetained(const PolicyContext& ctx) = 0;

  /// Non-null when the policy can score candidates shard-locally with
  /// results bit-identical to SelectRetained; the sharded engine then uses
  /// the PolicyShardScoring protocol instead. Policies whose decisions are
  /// not score-decomposable (FlowExpect, OPT-offline, RAND's sequential
  /// RNG draws) keep the nullptr default and fall back to the serial path.
  /// Queried once per Run, at entry.
  virtual PolicyShardScoring* shard_scoring() { return nullptr; }

  /// True when the policy consumes PolicyContext::batch (so the engine
  /// should spend the per-step gather building it). Queried at Open.
  virtual bool WantsCandidateBatch() const { return false; }

  /// Human-readable policy name for experiment reports.
  virtual const char* name() const = 0;
};

/// True if `tuple` is still inside the sliding window at time `now`
/// (always true for regular join semantics).
inline bool InWindow(const Tuple& tuple, Time now,
                     const std::optional<Time>& window) {
  return !window.has_value() || now - tuple.arrival <= *window;
}

}  // namespace sjoin

#endif  // SJOIN_ENGINE_REPLACEMENT_POLICY_H_
