#ifndef SJOIN_ENGINE_REPLACEMENT_POLICY_H_
#define SJOIN_ENGINE_REPLACEMENT_POLICY_H_

#include <optional>
#include <vector>

#include "sjoin/common/types.h"
#include "sjoin/engine/tuple.h"
#include "sjoin/stochastic/stream_history.h"

/// \file
/// The replacement-decision interface for the joining problem.
///
/// Mirrors Section 3.3's definition of an algorithm A: inputs are K (the
/// cached tuples), N (the newly arrived tuples), H (the full arrival
/// history), and the policy's own statistical knowledge; the output is the
/// new cache content, a subset of K ∪ N.

namespace sjoin {

/// Everything a policy may inspect when making the decision at one step.
struct PolicyContext {
  /// Time of the new arrivals.
  Time now = 0;
  /// Cache capacity k.
  std::size_t capacity = 0;
  /// Tuples currently cached (the K of Section 3.3). Size <= capacity.
  const std::vector<Tuple>* cached = nullptr;
  /// Tuples that just arrived at `now` (the N of Section 3.3).
  const std::vector<Tuple>* arrivals = nullptr;
  /// Observed values of streams R and S, inclusive of time `now`.
  const StreamHistory* history_r = nullptr;
  const StreamHistory* history_s = nullptr;
  /// Sliding-window length w (Section 7): a tuple that arrived at time a
  /// participates in joins only while now - a <= w. nullopt = regular join.
  std::optional<Time> window;
};

/// A cache replacement policy for the joining problem.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Clears per-run state; called by the simulator before each run.
  virtual void Reset() {}

  /// Returns the ids of tuples to retain: a subset of the ids in
  /// ctx.cached ∪ ctx.arrivals with size <= ctx.capacity. The simulator
  /// validates the result.
  virtual std::vector<TupleId> SelectRetained(const PolicyContext& ctx) = 0;

  /// Human-readable policy name for experiment reports.
  virtual const char* name() const = 0;
};

/// True if `tuple` is still inside the sliding window at time `now`
/// (always true for regular join semantics).
inline bool InWindow(const Tuple& tuple, Time now,
                     const std::optional<Time>& window) {
  return !window.has_value() || now - tuple.arrival <= *window;
}

}  // namespace sjoin

#endif  // SJOIN_ENGINE_REPLACEMENT_POLICY_H_
