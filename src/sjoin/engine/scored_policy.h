#ifndef SJOIN_ENGINE_SCORED_POLICY_H_
#define SJOIN_ENGINE_SCORED_POLICY_H_

#include <functional>
#include <utility>
#include <vector>

#include "sjoin/engine/ranked_select.h"
#include "sjoin/engine/replacement_policy.h"

/// \file
/// Base class for "rank and keep the best" policies.
///
/// Almost every policy in the paper — RAND, PROB, LIFE, HEEB, and the
/// caching heuristics — assigns each candidate tuple a desirability score
/// and discards the lowest-scored candidates. This base implements the
/// selection; subclasses provide the score.

namespace sjoin {

/// Keeps the `capacity` highest-scored candidates (cached ∪ arrivals).
/// Ties are broken in favor of the most recent arrival, then by id, so runs
/// are deterministic.
///
/// Score-ranked selection is exactly a global top-k, so it decomposes over
/// value-domain shards: this base also implements PolicyShardScoring, with
/// defaults that express a policy whose Score() is read-only between
/// BeginStep() and EndStep(). Subclasses opt in by overriding
/// ShardScorable() to return true once their Score() is safe to call
/// concurrently for distinct cached tuples; stateful subclasses (HEEB's
/// incremental modes) additionally override the shard hooks they need.
class ScoredPolicy : public ReplacementPolicy, public PolicyShardScoring {
 public:
  std::vector<TupleId> SelectRetained(const PolicyContext& ctx) final;

  /// Returns this when the subclass opted in via ShardScorable() and no
  /// score observer is installed (the observer contract — every score, in
  /// serial step order — is only honored by the serial path).
  PolicyShardScoring* shard_scoring() final;

  /// The serial engine builds the per-step SoA batch exactly when the
  /// subclass has a batch kernel to consume it.
  bool WantsCandidateBatch() const final { return BatchScorable(); }

  /// Verification hook: when set, receives every candidate's score exactly
  /// as SelectRetained computes it. The differential harness uses this to
  /// compare scoring implementations in lockstep on a shared cache
  /// trajectory; it costs one branch per candidate when unset.
  using ScoreObserver = std::function<void(const Tuple&, double)>;
  void set_score_observer(ScoreObserver observer) {
    score_observer_ = std::move(observer);
  }

  // PolicyShardScoring. The defaults delegate to BeginStep/Score/EndStep
  // and map the merge key to (score, arrival, id) — the serial sort order.
  bool ShardBeginStep(const PolicyContext& ctx,
                      std::vector<TupleId>* decided) override;
  std::optional<ShardKey> ShardScoreCached(const Tuple& tuple,
                                           const PolicyContext& ctx,
                                           ShardScratch* scratch) override;
  std::optional<ShardKey> ShardScoreArrival(const Tuple& tuple,
                                            const PolicyContext& ctx) override;
  void ShardEndStep(const PolicyContext& ctx,
                    const std::vector<TupleId>& retained,
                    const std::vector<TupleId>& evicted) override;
  /// Batch shard scoring rides the same opt-ins: a policy whose Score()
  /// is shard-safe and which has a batch kernel can score whole cached
  /// runs per shard. ScoredPolicy never excludes candidates, so the
  /// no-nullopt batch contract holds for every subclass.
  bool ShardBatchScorable() const override {
    return ShardScorable() && BatchScorable();
  }
  void ShardScoreCachedBatch(const CandidateBatch& batch,
                             const PolicyContext& ctx, ShardScratch* scratch,
                             double* score_scratch, ShardKey* out) override;

 protected:
  /// Sharded-execution opt-in: return true when Score() may be called
  /// concurrently for distinct cached tuples after BeginStep() (or after
  /// an overridden ShardBeginStep()). Default false: serial fallback.
  virtual bool ShardScorable() const { return false; }

  /// Called once per step before any Score() calls; lets subclasses refresh
  /// per-step state (frequency tables, incremental HEEB values, ...).
  virtual void BeginStep(const PolicyContext& ctx) { (void)ctx; }

  /// Desirability of keeping `tuple`; higher is better.
  virtual double Score(const Tuple& tuple, const PolicyContext& ctx) = 0;

  /// Batched-kernel opt-in: return true when ScoreBatchInto() produces
  /// scores bit-identical to per-lane Score() calls in lane order.
  /// Queried per step on the serial path and per Run on the sharded path.
  virtual bool BatchScorable() const { return false; }

  /// Scores every batch lane into out[i]. Kernels vectorize across
  /// candidates: each lane keeps the scalar path's per-tuple operation
  /// order, so results are bitwise equal to Score(). The default is the
  /// per-lane loop.
  virtual void ScoreBatchInto(const CandidateBatch& batch,
                              const PolicyContext& ctx, double* out);

  /// Called with the final retained set; lets subclasses drop state for
  /// evicted tuples.
  virtual void EndStep(const PolicyContext& ctx,
                       const std::vector<TupleId>& retained) {
    (void)ctx;
    (void)retained;
  }

 private:
  ScoreObserver score_observer_;
  // Per-step scratch reused across SelectRetained calls so the hot loop
  // stays allocation-free after warm-up.
  std::vector<RankedTuple> ranked_scratch_;
  std::vector<double> score_scratch_;
};

}  // namespace sjoin

#endif  // SJOIN_ENGINE_SCORED_POLICY_H_
