#ifndef SJOIN_ENGINE_SCORED_POLICY_H_
#define SJOIN_ENGINE_SCORED_POLICY_H_

#include <functional>
#include <utility>
#include <vector>

#include "sjoin/engine/replacement_policy.h"

/// \file
/// Base class for "rank and keep the best" policies.
///
/// Almost every policy in the paper — RAND, PROB, LIFE, HEEB, and the
/// caching heuristics — assigns each candidate tuple a desirability score
/// and discards the lowest-scored candidates. This base implements the
/// selection; subclasses provide the score.

namespace sjoin {

/// Keeps the `capacity` highest-scored candidates (cached ∪ arrivals).
/// Ties are broken in favor of the most recent arrival, then by id, so runs
/// are deterministic.
class ScoredPolicy : public ReplacementPolicy {
 public:
  std::vector<TupleId> SelectRetained(const PolicyContext& ctx) final;

  /// Verification hook: when set, receives every candidate's score exactly
  /// as SelectRetained computes it. The differential harness uses this to
  /// compare scoring implementations in lockstep on a shared cache
  /// trajectory; it costs one branch per candidate when unset.
  using ScoreObserver = std::function<void(const Tuple&, double)>;
  void set_score_observer(ScoreObserver observer) {
    score_observer_ = std::move(observer);
  }

 protected:
  /// Called once per step before any Score() calls; lets subclasses refresh
  /// per-step state (frequency tables, incremental HEEB values, ...).
  virtual void BeginStep(const PolicyContext& ctx) { (void)ctx; }

  /// Desirability of keeping `tuple`; higher is better.
  virtual double Score(const Tuple& tuple, const PolicyContext& ctx) = 0;

  /// Called with the final retained set; lets subclasses drop state for
  /// evicted tuples.
  virtual void EndStep(const PolicyContext& ctx,
                       const std::vector<TupleId>& retained) {
    (void)ctx;
    (void)retained;
  }

 private:
  ScoreObserver score_observer_;
};

}  // namespace sjoin

#endif  // SJOIN_ENGINE_SCORED_POLICY_H_
