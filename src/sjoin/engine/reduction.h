#ifndef SJOIN_ENGINE_REDUCTION_H_
#define SJOIN_ENGINE_REDUCTION_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sjoin/common/types.h"
#include "sjoin/engine/caching_policy.h"
#include "sjoin/engine/replacement_policy.h"
#include "sjoin/engine/scored_caching_policy.h"
#include "sjoin/stochastic/stream_history.h"

/// \file
/// The caching → joining reduction of Section 2 / Theorem 1.
///
/// Given a reference sequence R, construct a "supply" stream S carrying the
/// joining database tuples, with join attribute values tweaked so that
/// neither stream contains duplicates: the i-th occurrence of value v
/// becomes the pair (v, i-1) in R and (v, i) in S. Running the joining
/// problem on (R', S') under a reasonable policy produces exactly as many
/// result tuples as the original caching problem produces hits.
///
/// This adapter is not just a theorem check: since the StreamEngine
/// unification, CacheSimulator itself runs through it, so every caching
/// policy executes on the same step loop as the joining policies.

namespace sjoin {

/// Builds and owns the transformed streams. Pairs (v, i) are interned into
/// fresh scalar Values so the generic joining machinery applies unchanged.
class CachingReduction {
 public:
  explicit CachingReduction(std::vector<Value> references);

  /// Encoded transformed streams, one entry per original reference.
  const std::vector<Value>& r_stream() const { return r_stream_; }
  const std::vector<Value>& s_stream() const { return s_stream_; }

  /// Original reference sequence.
  const std::vector<Value>& references() const { return references_; }

  /// Encoded id of pair (v, occurrence); aborts if the pair never occurs in
  /// either transformed stream.
  Value Encode(Value v, std::int64_t occurrence) const;

  /// Inverse of Encode.
  std::pair<Value, std::int64_t> Decode(Value encoded) const;

 private:
  std::vector<Value> references_;
  std::vector<Value> r_stream_;
  std::vector<Value> s_stream_;
  std::map<std::pair<Value, std::int64_t>, Value> encode_;
  std::vector<std::pair<Value, std::int64_t>> decode_;
};

/// Adapts a caching policy to the joining problem over the transformed
/// streams, following the "reasonable policy" discipline of Theorem 1:
/// reference-stream tuples are never cached, and the superseded supply
/// tuple s_(v,i) is replaced by s_(v,i+1) when the latter arrives.
///
/// Window-aware: under a sliding window, a cached supply tuple whose age
/// exceeds the window no longer serves hits (the cached copy has gone
/// stale, TTL semantics); the caching policy then sees a miss and decides
/// whether to refetch. A hit swaps in the fresh supply arrival, so every
/// hit refreshes the TTL — exactly the joining-side window semantics of
/// Section 7 carried through the reduction.
class ReductionJoinPolicy final : public ReplacementPolicy,
                                  public PolicyShardScoring {
 public:
  /// Neither pointer is owned; both must outlive the policy.
  ReductionJoinPolicy(const CachingReduction* reduction,
                      CachingPolicy* caching_policy)
      : reduction_(reduction), caching_policy_(caching_policy) {}

  void Reset() override;

  std::vector<TupleId> SelectRetained(const PolicyContext& ctx) override;

  /// Sharded execution, available when the caching policy is a
  /// shard-scorable ScoredCachingPolicy without a score observer. A hit is
  /// fully decided in ShardBeginStep (cache order is preserved, nothing is
  /// ranked); on a miss the candidates are scored shard-locally with merge
  /// keys (score, is-referenced, original value) — exactly the caching
  /// comparator, so the merged top-k is bit-identical to SelectRetained.
  PolicyShardScoring* shard_scoring() override;
  bool ShardBeginStep(const PolicyContext& ctx,
                      std::vector<TupleId>* decided) override;
  std::optional<ShardKey> ShardScoreCached(const Tuple& tuple,
                                           const PolicyContext& ctx,
                                           ShardScratch* scratch) override;
  std::optional<ShardKey> ShardScoreArrival(const Tuple& tuple,
                                            const PolicyContext& ctx) override;
  void ShardEndStep(const PolicyContext& ctx,
                    const std::vector<TupleId>& retained,
                    const std::vector<TupleId>& evicted) override;

  const char* name() const override { return "REDUCED"; }

 private:
  /// Shared step prefix of SelectRetained and ShardBeginStep: decodes the
  /// arrivals and the cached supply tuples, determines hit/miss, drops the
  /// dead expired copy on a windowed miss, and notifies the caching policy
  /// — leaving the members below describing the step.
  void PrepareStep(const PolicyContext& ctx);

  const CachingReduction* reduction_;
  CachingPolicy* caching_policy_;
  StreamHistory reference_history_;

  // Step state filled by PrepareStep (reused across steps).
  std::unordered_map<Value, const Tuple*> cached_by_value_;
  std::vector<Value> cached_values_;
  CachingContext caching_ctx_;
  Value ref_value_ = 0;
  bool hit_ = false;
  TupleId s_arrival_id_ = 0;
  /// Id of the expired cached copy dropped from the candidate set on a
  /// windowed miss; -1 when none.
  TupleId dropped_id_ = -1;
  /// Caching policy when it supports sharded scoring (set by
  /// shard_scoring()).
  ScoredCachingPolicy* shard_caching_ = nullptr;
};

}  // namespace sjoin

#endif  // SJOIN_ENGINE_REDUCTION_H_
