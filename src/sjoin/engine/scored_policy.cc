#include "sjoin/engine/scored_policy.h"

#include <algorithm>

#include "sjoin/common/check.h"
#include "sjoin/engine/rank_order.h"
#include "sjoin/engine/scoring_batch.h"

namespace sjoin {

std::vector<TupleId> ScoredPolicy::SelectRetained(const PolicyContext& ctx) {
  BeginStep(ctx);
  const std::size_t total = ctx.cached->size() + ctx.arrivals->size();
  ranked_scratch_.clear();
  ranked_scratch_.reserve(total);
  // The observer branch is hoisted out of the candidate loop: an
  // observer-installed run takes the scalar per-tuple path (the observer
  // contract is every score, in serial step order), an observer-free run
  // takes the batch kernel when one is available, and the remaining scalar
  // loop carries no branch per candidate.
  if (score_observer_) {
    for (const Tuple& t : *ctx.cached) {
      double score = Score(t, ctx);
      score_observer_(t, score);
      ranked_scratch_.push_back({score, t.arrival, t.id});
    }
    for (const Tuple& t : *ctx.arrivals) {
      double score = Score(t, ctx);
      score_observer_(t, score);
      ranked_scratch_.push_back({score, t.arrival, t.id});
    }
  } else if (ctx.batch != nullptr && ScoringBatchEnabled() &&
             BatchScorable()) {
    // One fused kernel call over the SoA view; lane order is the scalar
    // scoring order, so the scores are bitwise equal to the loops below.
    SJOIN_CHECK_EQ(ctx.batch->size, total);
    score_scratch_.resize(total);
    ScoreBatchInto(*ctx.batch, ctx, score_scratch_.data());
    for (std::size_t i = 0; i < total; ++i) {
      ranked_scratch_.push_back(
          {score_scratch_[i], ctx.batch->arrivals[i], ctx.batch->ids[i]});
    }
  } else {
    for (const Tuple& t : *ctx.cached) {
      ranked_scratch_.push_back({Score(t, ctx), t.arrival, t.id});
    }
    for (const Tuple& t : *ctx.arrivals) {
      ranked_scratch_.push_back({Score(t, ctx), t.arrival, t.id});
    }
  }
  // Top-k selection: partition the best `keep` to the front, sort only
  // that prefix. The rank order is strict and total (ids are unique), so
  // the prefix is exactly what the former full sort produced.
  std::size_t keep = std::min(ctx.capacity, ranked_scratch_.size());
  if (keep < ranked_scratch_.size()) {
    std::nth_element(ranked_scratch_.begin(), ranked_scratch_.begin() + keep,
                     ranked_scratch_.end(), RankedTupleBetter);
  }
  std::sort(ranked_scratch_.begin(), ranked_scratch_.begin() + keep,
            RankedTupleBetter);
  std::vector<TupleId> retained;
  retained.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    retained.push_back(ranked_scratch_[i].id);
  }
  EndStep(ctx, retained);
  return retained;
}

PolicyShardScoring* ScoredPolicy::shard_scoring() {
  if (!ShardScorable() || score_observer_) return nullptr;
  return this;
}

bool ScoredPolicy::ShardBeginStep(const PolicyContext& ctx,
                                  std::vector<TupleId>* decided) {
  (void)decided;
  BeginStep(ctx);
  return true;
}

std::optional<ShardKey> ScoredPolicy::ShardScoreCached(
    const Tuple& tuple, const PolicyContext& ctx, ShardScratch* scratch) {
  (void)scratch;
  return ShardKey{Score(tuple, ctx), tuple.arrival, tuple.id};
}

std::optional<ShardKey> ScoredPolicy::ShardScoreArrival(
    const Tuple& tuple, const PolicyContext& ctx) {
  return ShardKey{Score(tuple, ctx), tuple.arrival, tuple.id};
}

void ScoredPolicy::ShardEndStep(const PolicyContext& ctx,
                                const std::vector<TupleId>& retained,
                                const std::vector<TupleId>& evicted) {
  (void)evicted;
  EndStep(ctx, retained);
}

void ScoredPolicy::ShardScoreCachedBatch(const CandidateBatch& batch,
                                         const PolicyContext& ctx,
                                         ShardScratch* scratch,
                                         double* score_scratch,
                                         ShardKey* out) {
  (void)scratch;
  ScoreBatchInto(batch, ctx, score_scratch);
  for (std::size_t i = 0; i < batch.size; ++i) {
    out[i] = ShardKey{score_scratch[i], batch.arrivals[i],
                      static_cast<std::int64_t>(batch.ids[i])};
  }
}

void ScoredPolicy::ScoreBatchInto(const CandidateBatch& batch,
                                  const PolicyContext& ctx, double* out) {
  for (std::size_t i = 0; i < batch.size; ++i) {
    Tuple tuple{batch.ids[i], static_cast<StreamSide>(batch.sides[i]),
                batch.values[i], batch.arrivals[i]};
    out[i] = Score(tuple, ctx);
  }
}

}  // namespace sjoin
