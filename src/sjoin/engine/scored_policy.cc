#include "sjoin/engine/scored_policy.h"

#include <algorithm>

#include "sjoin/common/check.h"
#include "sjoin/engine/rank_order.h"

namespace sjoin {

std::vector<TupleId> ScoredPolicy::SelectRetained(const PolicyContext& ctx) {
  BeginStep(ctx);
  struct Candidate {
    double score;
    Time arrival;
    TupleId id;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(ctx.cached->size() + ctx.arrivals->size());
  for (const Tuple& t : *ctx.cached) {
    double score = Score(t, ctx);
    if (score_observer_) score_observer_(t, score);
    candidates.push_back({score, t.arrival, t.id});
  }
  for (const Tuple& t : *ctx.arrivals) {
    double score = Score(t, ctx);
    if (score_observer_) score_observer_(t, score);
    candidates.push_back({score, t.arrival, t.id});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return RankOrderBetter(a.score, a.arrival, a.id, b.score,
                                     b.arrival, b.id);
            });
  std::size_t keep = std::min(ctx.capacity, candidates.size());
  std::vector<TupleId> retained;
  retained.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) retained.push_back(candidates[i].id);
  EndStep(ctx, retained);
  return retained;
}

PolicyShardScoring* ScoredPolicy::shard_scoring() {
  if (!ShardScorable() || score_observer_) return nullptr;
  return this;
}

bool ScoredPolicy::ShardBeginStep(const PolicyContext& ctx,
                                  std::vector<TupleId>* decided) {
  (void)decided;
  BeginStep(ctx);
  return true;
}

std::optional<ShardKey> ScoredPolicy::ShardScoreCached(
    const Tuple& tuple, const PolicyContext& ctx, ShardScratch* scratch) {
  (void)scratch;
  return ShardKey{Score(tuple, ctx), tuple.arrival, tuple.id};
}

std::optional<ShardKey> ScoredPolicy::ShardScoreArrival(
    const Tuple& tuple, const PolicyContext& ctx) {
  return ShardKey{Score(tuple, ctx), tuple.arrival, tuple.id};
}

void ScoredPolicy::ShardEndStep(const PolicyContext& ctx,
                                const std::vector<TupleId>& retained,
                                const std::vector<TupleId>& evicted) {
  (void)evicted;
  EndStep(ctx, retained);
}

}  // namespace sjoin
