#ifndef SJOIN_ENGINE_PARTITION_MAP_H_
#define SJOIN_ENGINE_PARTITION_MAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sjoin/common/types.h"

/// \file
/// Value-domain partitioning seam for the StreamEngine.
///
/// Equijoins only match tuples with equal join-attribute values, so any
/// partition of the value domain splits the cache index into independent
/// shards: an arrival only ever probes the shard its own value maps to.
/// The engine keeps its value -> count index per (partition, stream) and
/// probes partition-locally, which is exactly the structure a sharded /
/// parallel cache needs (cf. PanJoin's partition-based design).
///
/// Three maps live here: the trivial SinglePartition, the static
/// HashPartition the sharded engine defaults to, and AdaptivePartitionMap —
/// a stateful, versioned range map over a fixed micro-bucket space with a
/// deterministic load-driven rebalancer (split the hottest range, coalesce
/// the coldest adjacent pair). Rebalancing never changes join output: the
/// sharded engine's merge is ordered by (score, arrival, id) only, so the
/// grouping of values into shards is invisible in the results.

namespace sjoin {

/// Maps join-attribute values to partition indexes in [0, num_partitions).
/// Implementations must be pure functions of the value: equal values map
/// to equal partitions, or equijoin results would be lost.
class PartitionMap {
 public:
  virtual ~PartitionMap() = default;

  virtual std::size_t num_partitions() const = 0;

  /// Partition of `value`; must be < num_partitions().
  virtual std::size_t PartitionOf(Value value) const = 0;
};

/// The trivial partitioning: every value in one shard. Engine default.
class SinglePartition final : public PartitionMap {
 public:
  std::size_t num_partitions() const override { return 1; }
  std::size_t PartitionOf(Value value) const override {
    (void)value;
    return 0;
  }
};

/// Hashes values onto a fixed number of shards. Exists so tests (and the
/// follow-up sharding work) can exercise the partition-local index path;
/// results are identical to SinglePartition by construction.
class HashPartition final : public PartitionMap {
 public:
  explicit HashPartition(std::size_t num_partitions)
      : num_partitions_(num_partitions == 0 ? 1 : num_partitions) {}

  std::size_t num_partitions() const override { return num_partitions_; }
  std::size_t PartitionOf(Value value) const override {
    // Splitmix-style scramble so adjacent values spread across shards.
    auto x = static_cast<std::uint64_t>(value) * 0x9E3779B97F4A7C15ull;
    x ^= x >> 32;
    return static_cast<std::size_t>(x % num_partitions_);
  }

 private:
  std::size_t num_partitions_;
};

/// Aggregate skew/rebalance telemetry for one adaptive run, filled in by
/// the sharded engine and surfaced through the simulator façades. Ratios
/// are max/mean candidates scored per shard, summed over rebalance
/// windows: `static_ratio_sum` evaluates each window's bucket loads under
/// the never-rebalanced equal-width map, `adaptive_ratio_sum` under the
/// map as evolved so far — divide both by `windows` to compare.
struct AdaptiveShardStats {
  std::int64_t windows = 0;     ///< Rebalance checkpoints evaluated.
  std::int64_t rebalances = 0;  ///< Checkpoints that changed the map.
  std::uint64_t map_version = 0;
  int partitions = 0;  ///< Shard count (fixed; ranges move, not count).
  double static_ratio_sum = 0.0;
  double adaptive_ratio_sum = 0.0;
};

/// A stateful, versioned range map over a fixed power-of-two micro-bucket
/// space, with a deterministic load-driven rebalancer.
///
/// Values hash (splitmix scramble) into `num_buckets` micro-buckets; each
/// of the `partitions` shards owns a contiguous bucket range, given by
/// `bounds()` (bounds()[p] .. bounds()[p+1]). The shard *count* never
/// changes — only the range boundaries move — so the sharded engine's slot
/// and worker shapes stay fixed across a run.
///
/// Rebalance(bucket_load, now) is a pure function of the accumulated
/// per-bucket load counters (no wall clock, no randomness): when the
/// hottest range's load exceeds `imbalance_ratio` times the mean it
/// coalesces the coldest adjacent pair of ranges and splits the hottest
/// range at its load-weighted midpoint — one versioned action, recorded in
/// history() so reruns can be checked for identical rebalance schedules.
/// Equal inputs always produce equal actions, which is what makes the
/// adaptive engine differentially testable against the serial one.
class AdaptivePartitionMap final : public PartitionMap {
 public:
  struct Options {
    /// Shard count; fixed for the map's lifetime. >= 1.
    int partitions = 1;
    /// Micro-bucket count; rounded up to a power of two and to at least
    /// 4x partitions so every range spans multiple buckets initially.
    int num_buckets = 256;
    /// Rebalance triggers when max range load > ratio * mean range load.
    double imbalance_ratio = 1.5;
  };

  /// One applied rebalance: ranges `coalesced_left` and `coalesced_left+1`
  /// merged (dropping bucket boundary `removed_boundary`), then pre-merge
  /// range `split_partition` (or the merged range, when the hottest range
  /// took part in the merge) split at the new boundary `split_boundary`.
  /// Loads are the window's evidence, kept so scripted-history unit tests
  /// and rerun-determinism checks can compare full decisions, not just
  /// boundary outcomes.
  struct RebalanceAction {
    std::uint64_t version = 0;  ///< Map version after applying.
    Time step = 0;              ///< Checkpoint step that triggered it.
    int coalesced_left = 0;
    std::size_t removed_boundary = 0;
    int split_partition = 0;
    std::size_t split_boundary = 0;
    std::int64_t hot_load = 0;
    std::int64_t cold_load = 0;
    std::int64_t total_load = 0;

    friend bool operator==(const RebalanceAction&,
                           const RebalanceAction&) = default;
  };

  explicit AdaptivePartitionMap(Options options);

  std::size_t num_partitions() const override { return bounds_.size() - 1; }
  std::size_t PartitionOf(Value value) const override {
    return bucket_to_partition_[BucketOf(value)];
  }

  /// Micro-bucket of `value`, in [0, num_buckets()).
  std::size_t BucketOf(Value value) const {
    auto x = static_cast<std::uint64_t>(value) * 0x9E3779B97F4A7C15ull;
    x ^= x >> 32;
    return static_cast<std::size_t>(x) & bucket_mask_;
  }

  std::size_t num_buckets() const { return bucket_mask_ + 1; }

  /// Range boundaries, size num_partitions() + 1, strictly increasing,
  /// bounds()[0] == 0 and bounds().back() == num_buckets().
  const std::vector<std::size_t>& bounds() const { return bounds_; }

  /// Considers one rebalance against the accumulated per-bucket loads
  /// (size num_buckets()); returns true when the map changed. Callers
  /// zero the counters per window; the decision is a pure function of
  /// (current bounds, bucket_load, now).
  bool Rebalance(const std::vector<std::int64_t>& bucket_load, Time now);

  /// max/mean range load under the current bounds / under the initial
  /// equal-width bounds. 1.0 when the window saw no load.
  double LoadRatio(const std::vector<std::int64_t>& bucket_load) const;
  double StaticLoadRatio(const std::vector<std::int64_t>& bucket_load) const;

  /// Number of rebalances applied since construction / Reset.
  std::uint64_t version() const { return version_; }
  const std::vector<RebalanceAction>& history() const { return history_; }

  /// Back to the initial equal-width bounds, version 0, empty history.
  void Reset();

 private:
  double RangeLoadRatio(const std::vector<std::int64_t>& bucket_load,
                        const std::vector<std::size_t>& bounds) const;
  void RebuildBucketTable();

  Options options_;
  std::size_t bucket_mask_ = 0;
  std::vector<std::size_t> bounds_;
  std::vector<std::size_t> initial_bounds_;
  std::vector<std::size_t> bucket_to_partition_;
  std::uint64_t version_ = 0;
  std::vector<RebalanceAction> history_;

  /// Scratch for Rebalance (per-range load sums); member so steady-state
  /// checkpoints allocate nothing.
  std::vector<std::int64_t> range_load_;
};

}  // namespace sjoin

#endif  // SJOIN_ENGINE_PARTITION_MAP_H_
