#ifndef SJOIN_ENGINE_PARTITION_MAP_H_
#define SJOIN_ENGINE_PARTITION_MAP_H_

#include <cstddef>
#include <cstdint>

#include "sjoin/common/types.h"

/// \file
/// Value-domain partitioning seam for the StreamEngine.
///
/// Equijoins only match tuples with equal join-attribute values, so any
/// partition of the value domain splits the cache index into independent
/// shards: an arrival only ever probes the shard its own value maps to.
/// The engine keeps its value -> count index per (partition, stream) and
/// probes partition-locally, which is exactly the structure a sharded /
/// parallel cache needs (cf. PanJoin's partition-based design). This PR
/// ships the seam plus the single-partition default; a follow-up can plug
/// in range or hash maps without touching the step loop.

namespace sjoin {

/// Maps join-attribute values to partition indexes in [0, num_partitions).
/// Implementations must be pure functions of the value: equal values map
/// to equal partitions, or equijoin results would be lost.
class PartitionMap {
 public:
  virtual ~PartitionMap() = default;

  virtual std::size_t num_partitions() const = 0;

  /// Partition of `value`; must be < num_partitions().
  virtual std::size_t PartitionOf(Value value) const = 0;
};

/// The trivial partitioning: every value in one shard. Engine default.
class SinglePartition final : public PartitionMap {
 public:
  std::size_t num_partitions() const override { return 1; }
  std::size_t PartitionOf(Value value) const override {
    (void)value;
    return 0;
  }
};

/// Hashes values onto a fixed number of shards. Exists so tests (and the
/// follow-up sharding work) can exercise the partition-local index path;
/// results are identical to SinglePartition by construction.
class HashPartition final : public PartitionMap {
 public:
  explicit HashPartition(std::size_t num_partitions)
      : num_partitions_(num_partitions == 0 ? 1 : num_partitions) {}

  std::size_t num_partitions() const override { return num_partitions_; }
  std::size_t PartitionOf(Value value) const override {
    // Splitmix-style scramble so adjacent values spread across shards.
    auto x = static_cast<std::uint64_t>(value) * 0x9E3779B97F4A7C15ull;
    x ^= x >> 32;
    return static_cast<std::size_t>(x % num_partitions_);
  }

 private:
  std::size_t num_partitions_;
};

}  // namespace sjoin

#endif  // SJOIN_ENGINE_PARTITION_MAP_H_
