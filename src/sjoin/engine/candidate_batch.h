#ifndef SJOIN_ENGINE_CANDIDATE_BATCH_H_
#define SJOIN_ENGINE_CANDIDATE_BATCH_H_

#include <cstddef>
#include <cstdint>

#include "sjoin/common/types.h"

/// \file
/// Structure-of-arrays view over one step's retention candidates. The
/// engines gather the candidate tuples into contiguous per-field spans —
/// once per step in the serial engine, once per shard run in the sharded
/// engine (carved from the worker arenas) — so batch-scorable policies can
/// score whole runs with one fused kernel call instead of one virtual
/// Score() per tuple. The spans are borrowed: they stay valid only for the
/// duration of the SelectRetained / shard-scoring call they are passed to.

namespace sjoin {

/// SoA view of a candidate run. Lane i describes one candidate; the lane
/// order is the scalar scoring order (cached tuples first, then arrivals,
/// for the serial engine; the shard's cached run for the sharded engine),
/// so per-lane results line up with the per-tuple path bit for bit.
struct CandidateBatch {
  std::size_t size = 0;
  /// Join attribute value per lane.
  const Value* values = nullptr;
  /// Arrival time per lane.
  const Time* arrivals = nullptr;
  /// Stream index per lane (== SideIndex(side) for binary topologies).
  /// Null for caching batches, whose candidates are bare values.
  const std::uint8_t* sides = nullptr;
  /// Tuple identity per lane. Null for caching batches.
  const TupleId* ids = nullptr;
};

}  // namespace sjoin

#endif  // SJOIN_ENGINE_CANDIDATE_BATCH_H_
