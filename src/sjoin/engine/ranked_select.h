#ifndef SJOIN_ENGINE_RANKED_SELECT_H_
#define SJOIN_ENGINE_RANKED_SELECT_H_

#include <algorithm>
#include <vector>

#include "sjoin/common/types.h"
#include "sjoin/engine/rank_order.h"

/// \file
/// The multi-way policies' shared top-k selection under the strict
/// (score desc, arrival desc, id desc) order — the rank_order.h total
/// order the sharded engine's merge also uses, so every comparison sort
/// yields the same unique retained sequence.

namespace sjoin {

/// One scored retention candidate.
struct RankedTuple {
  double score = 0.0;
  Time arrival = 0;
  TupleId id = 0;
};

/// The rank_order.h strict total order over RankedTuples.
inline bool RankedTupleBetter(const RankedTuple& a, const RankedTuple& b) {
  return RankOrderBetter(a.score, a.arrival, a.id, b.score, b.arrival, b.id);
}

/// Best `capacity` ids, ranked by (score desc, arrival desc, id desc).
/// nth_element partitions the best `keep` candidates to the front, then
/// only that prefix is sorted: under a strict total order (ids are unique)
/// the partition point is unique, so the sorted prefix is exactly the
/// prefix a full sort would produce — at O(n + k log k) instead of
/// O(n log n).
inline std::vector<TupleId> KeepBestRanked(std::vector<RankedTuple> ranked,
                                           std::size_t capacity) {
  std::size_t keep = std::min(capacity, ranked.size());
  if (keep < ranked.size()) {
    std::nth_element(ranked.begin(), ranked.begin() + keep, ranked.end(),
                     RankedTupleBetter);
  }
  std::sort(ranked.begin(), ranked.begin() + keep, RankedTupleBetter);
  std::vector<TupleId> retained;
  retained.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) retained.push_back(ranked[i].id);
  return retained;
}

}  // namespace sjoin

#endif  // SJOIN_ENGINE_RANKED_SELECT_H_
