#ifndef SJOIN_ENGINE_TUPLE_H_
#define SJOIN_ENGINE_TUPLE_H_

#include "sjoin/common/types.h"

/// \file
/// A stream tuple as seen by the join engine and replacement policies.

namespace sjoin {

/// One tuple from one of the two input streams. Tuples with equal join
/// attribute values are distinct objects (Section 2); `id` is unique within
/// a simulation run.
struct Tuple {
  TupleId id = 0;
  StreamSide side = StreamSide::kR;
  Value value = 0;
  Time arrival = 0;
};

/// JoinSimulator assigns ids deterministically: the R tuple arriving at
/// time t gets id 2t and the S tuple gets 2t + 1. Offline policies
/// (OPT-offline) rely on this to pre-compute schedules in terms of ids.
constexpr TupleId TupleIdAt(StreamSide side, Time t) {
  return static_cast<TupleId>(2 * t) + (side == StreamSide::kS ? 1 : 0);
}

}  // namespace sjoin

#endif  // SJOIN_ENGINE_TUPLE_H_
