#include "sjoin/engine/sharded_stream_engine.h"

#include <algorithm>
#include <utility>

#include "sjoin/common/check.h"
#include "sjoin/common/validate.h"

namespace sjoin {

ShardedStreamEngine::ShardedStreamEngine(StreamTopology topology,
                                         Options options)
    : options_(options),
      serial_(std::move(topology),
              StreamEngine::Options{options.capacity, options.warmup,
                                    options.window, nullptr}),
      partition_(static_cast<std::size_t>(
          options.shards > 1 ? options.shards : 1)) {
  SJOIN_CHECK_GE(options_.shards, 1);
}

void ShardedStreamEngine::SortRun(std::vector<ScoredEntry>& run) {
  if (run.size() > 64) {
    std::sort(run.begin(), run.end(),
              [](const ScoredEntry& a, const ScoredEntry& b) {
                return ShardKeyBetter(a.key, b.key);
              });
    return;
  }
  for (std::size_t i = 1; i < run.size(); ++i) {
    ScoredEntry entry = run[i];
    std::size_t j = i;
    while (j > 0 && ShardKeyBetter(entry.key, run[j - 1].key)) {
      run[j] = run[j - 1];
      --j;
    }
    run[j] = entry;
  }
}

int ShardedStreamEngine::DefaultThreads(int shards) {
  if (shards <= 1) return 1;
  return std::min(shards, ThreadPool::DefaultThreads());
}

int ShardedStreamEngine::effective_threads() const {
  if (options_.shards <= 1) return 1;
  if (options_.pool != nullptr) return options_.pool->num_threads();
  return DefaultThreads(options_.shards);
}

EngineRunResult ShardedStreamEngine::Run(
    const std::vector<const std::vector<Value>*>& streams,
    EnginePolicy& policy, const std::vector<StepObserver*>& observers) {
  // The serial/sharded decision is taken here, once per run: sharding
  // needs a score-decomposable policy and more than one shard. Either
  // executor produces bit-identical results.
  EngineShardScoring* scoring =
      options_.shards > 1 ? policy.shard_scoring() : nullptr;
  if (scoring == nullptr) return serial_.Run(streams, policy, observers);
  return RunSharded(streams, policy, *scoring, observers);
}

EngineRunResult ShardedStreamEngine::RunSharded(
    const std::vector<const std::vector<Value>*>& streams,
    EnginePolicy& policy, EngineShardScoring& scoring,
    const std::vector<StepObserver*>& observers) {
  const StreamTopology& topology = serial_.topology();
  const int n = topology.num_streams();
  SJOIN_CHECK_EQ(static_cast<int>(streams.size()), n);
  for (const std::vector<Value>* stream : streams) {
    SJOIN_CHECK(stream != nullptr);
  }
  const Time len = static_cast<Time>(streams[0]->size());
  for (const std::vector<Value>* stream : streams) {
    SJOIN_CHECK_EQ(static_cast<Time>(stream->size()), len);
  }
  policy.Reset();

  // With a single worker the pool round-trips (task allocation, queue
  // mutex, wake) buy nothing: run the per-shard tasks inline on this
  // thread instead. The execution order over shards is the same either
  // way and tasks only touch their own slot, so results are unchanged.
  const int threads = effective_threads();
  if (threads > 1 && options_.pool == nullptr && owned_pool_ == nullptr) {
    owned_pool_ =
        std::make_unique<ThreadPool>(DefaultThreads(options_.shards));
  }
  ThreadPool* pool = options_.pool != nullptr ? options_.pool
                     : owned_pool_ != nullptr ? owned_pool_.get()
                                              : nullptr;
  std::optional<TaskGroup> group;
  if (threads > 1 && pool != nullptr) group.emplace(*pool);

  const auto num_shards = static_cast<std::size_t>(options_.shards);
  const bool use_value_index =
      !options_.window.has_value() &&
      options_.capacity >= StreamEngine::kValueIndexMinCapacity;

  slots_.clear();
  slots_.resize(num_shards);
  for (ShardSlot& slot : slots_) {
    slot.cache.reserve(options_.capacity);
    slot.value_index.assign(static_cast<std::size_t>(n), {});
    slot.scored.reserve(options_.capacity + static_cast<std::size_t>(n));
    slot.scratch = scoring.MakeShardScratch();
  }
  cache_.clear();
  cache_.reserve(options_.capacity);
  new_cache_.reserve(options_.capacity);
  arrivals_.reserve(static_cast<std::size_t>(n));
  histories_.assign(static_cast<std::size_t>(n), StreamHistory());
  arrival_scored_.reserve(static_cast<std::size_t>(n));
  retained_.reserve(options_.capacity);
  retained_set_.reserve(options_.capacity + static_cast<std::size_t>(n));
  // At most num_shards + 1 runs enter the cascade, so it performs at most
  // num_shards pairwise merges per step.
  if (merge_tmp_.size() < num_shards) merge_tmp_.resize(num_shards);
  merge_runs_.reserve(num_shards + 1);
  next_runs_.reserve(num_shards + 1);

  EngineRunView run_view;
  run_view.topology = &topology;
  run_view.capacity = options_.capacity;
  run_view.warmup = options_.warmup;
  run_view.window = options_.window;
  run_view.length = len;
  for (StepObserver* observer : observers) observer->OnRunBegin(run_view);
  // An observer that disables sharded scoring during OnRunBegin (e.g. a
  // ScoreTraceObserver installing a score observer) would invalidate the
  // decision already taken above; fail loudly instead of racing.
  SJOIN_CHECK_MSG(policy.shard_scoring() != nullptr,
                  "an observer disabled sharded scoring after the engine "
                  "committed to it; run score tracers with shards = 1");

  EngineRunResult result;
  for (Time t = 0; t < len; ++t) {
    arrivals_.clear();
    for (int s = 0; s < n; ++s) {
      arrivals_.push_back(
          {StreamTupleIdAt(n, s, t), s,
           (*streams[static_cast<std::size_t>(s)])
               [static_cast<std::size_t>(t)],
           t});
    }
    for (int s = 0; s < n; ++s) {
      histories_[static_cast<std::size_t>(s)].Append(
          arrivals_[static_cast<std::size_t>(s)].value);
    }

    EngineContext ctx;
    ctx.now = t;
    ctx.capacity = options_.capacity;
    ctx.cached = &cache_;
    ctx.arrivals = &arrivals_;
    ctx.histories = &histories_;
    ctx.window = options_.window;

    decided_.clear();
    const bool scored_step = scoring.ShardBeginStep(ctx, &decided_);

    std::int64_t produced = 0;
    retained_.clear();
    new_cache_.clear();
    if (scored_step) {
      // Fused per-shard task: Phase-1 probes for the arrivals this shard
      // owns, then merge keys for the shard's cached tuples, then the
      // shard-local sort. Each task touches only its own slot (plus
      // read-only step state), so the reduction over slot counters after
      // the barrier needs no locks.
      const auto shard_task = [this, &ctx, &scoring, &topology,
                               use_value_index, t](std::size_t shard) {
        ShardSlot& slot = slots_[shard];
        slot.produced = 0;
        slot.scored.clear();
        slot.dropped.clear();
        for (const StreamTuple& arrival : arrivals_) {
          if (ShardOf(arrival.value) != shard) continue;
          if (use_value_index) {
            for (int partner : topology.PartnersOf(arrival.stream)) {
              const auto& index =
                  slot.value_index[static_cast<std::size_t>(partner)];
              auto it = index.find(arrival.value);
              if (it != index.end()) slot.produced += it->second;
            }
          } else {
            for (const StreamTuple& cached : slot.cache) {
              if (!InWindow(cached, t, ctx.window)) continue;
              if (cached.value != arrival.value) continue;
              if (topology.Joins(cached.stream, arrival.stream)) {
                ++slot.produced;
              }
            }
          }
        }
        for (const StreamTuple& cached : slot.cache) {
          std::optional<ShardKey> key =
              scoring.ShardScoreCached(cached, ctx, slot.scratch.get());
          if (key.has_value()) {
            slot.scored.push_back({*key, cached});
          } else {
            slot.dropped.push_back(cached);
          }
        }
        SortRun(slot.scored);
      };
      if (group.has_value()) {
        for (std::size_t shard = 0; shard < num_shards; ++shard) {
          group->Run([&shard_task, shard] { shard_task(shard); });
        }
        group->Wait();
      } else {
        for (std::size_t shard = 0; shard < num_shards; ++shard) {
          shard_task(shard);
        }
      }
      for (const ShardSlot& slot : slots_) produced += slot.produced;

      // Arrivals are scored serially, in arrival order: policies may
      // mutate state here (HEEB inserts incremental entries).
      arrival_scored_.clear();
      for (const StreamTuple& arrival : arrivals_) {
        std::optional<ShardKey> key = scoring.ShardScoreArrival(arrival, ctx);
        if (key.has_value()) arrival_scored_.push_back({*key, arrival});
      }
      SortRun(arrival_scored_);

      // Global merge of the shard runs plus the arrival run: a balanced
      // cascade of pairwise std::merge calls, ~log2(shards + 1) levels of
      // tight two-way merges instead of a (shards + 1)-wide head scan per
      // pop. std::merge is stable and the keys form a strict total order
      // (unique minors), so the merged sequence is exactly the serial
      // engine's sorted candidate order — same retained prefix, same
      // cache order.
      merge_runs_.clear();
      for (ShardSlot& slot : slots_) {
        if (!slot.scored.empty()) merge_runs_.push_back(&slot.scored);
      }
      if (!arrival_scored_.empty()) merge_runs_.push_back(&arrival_scored_);
      std::size_t tmp_used = 0;
      while (merge_runs_.size() > 1) {
        next_runs_.clear();
        for (std::size_t i = 0; i + 1 < merge_runs_.size(); i += 2) {
          const std::vector<ScoredEntry>& a = *merge_runs_[i];
          const std::vector<ScoredEntry>& b = *merge_runs_[i + 1];
          // merge_tmp_ was pre-sized to num_shards at run setup, so taking
          // the next scratch vector never reallocates the pool (pointers
          // in merge_runs_ stay valid).
          std::vector<ScoredEntry>& out = merge_tmp_[tmp_used++];
          out.clear();
          out.reserve(a.size() + b.size());
          std::merge(a.begin(), a.end(), b.begin(), b.end(),
                     std::back_inserter(out),
                     [](const ScoredEntry& x, const ScoredEntry& y) {
                       return ShardKeyBetter(x.key, y.key);
                     });
          next_runs_.push_back(&out);
        }
        if (merge_runs_.size() % 2 == 1) {
          next_runs_.push_back(merge_runs_.back());
        }
        merge_runs_.swap(next_runs_);
      }
      const std::vector<ScoredEntry>& merged =
          merge_runs_.empty() ? arrival_scored_ : *merge_runs_.front();

      // Commit. The merged prefix is the retained set and the suffix is
      // the eviction list — no retained-set hashing anywhere. A candidate
      // is an arrival iff its arrival stamp is this step (cached tuples
      // were admitted strictly earlier), which is what decides the index
      // delta direction. Rebuilding every shard cache from the retained
      // prefix keeps slots in globally sorted order — that is what makes
      // next step's runs nearly sorted for SortRun.
      evicted_.clear();
      const std::size_t keep = std::min(options_.capacity, merged.size());
      for (std::size_t i = 0; i < keep; ++i) {
        const StreamTuple& tuple = merged[i].tuple;
        retained_.push_back(tuple.id);
        new_cache_.push_back(tuple);
        if (use_value_index && tuple.arrival == t) {
          ++slots_[ShardOf(tuple.value)]
                .value_index[static_cast<std::size_t>(tuple.stream)]
                            [tuple.value];
        }
      }
      const auto evict = [this, use_value_index, t](const StreamTuple& tuple) {
        evicted_.push_back(tuple.id);
        if (!use_value_index || tuple.arrival == t) return;  // Never indexed.
        ShardSlot& slot = slots_[ShardOf(tuple.value)];
        auto& index =
            slot.value_index[static_cast<std::size_t>(tuple.stream)];
        auto it = index.find(tuple.value);
        if (--it->second == 0) index.erase(it);
      };
      for (std::size_t i = keep; i < merged.size(); ++i) {
        evict(merged[i].tuple);
      }
      for (ShardSlot& slot : slots_) {
        for (const StreamTuple& tuple : slot.dropped) evict(tuple);
      }
      // Arrivals the policy scored as nullopt were never retention
      // candidates, but they still belong to candidates \ retained.
      if (arrival_scored_.size() < arrivals_.size()) {
        for (const StreamTuple& arrival : arrivals_) {
          bool scored = false;
          for (const ScoredEntry& entry : arrival_scored_) {
            if (entry.tuple.id == arrival.id) {
              scored = true;
              break;
            }
          }
          if (!scored) evicted_.push_back(arrival.id);
        }
      }
      for (ShardSlot& slot : slots_) slot.cache.clear();
      for (const StreamTuple& tuple : new_cache_) {
        slots_[ShardOf(tuple.value)].cache.push_back(tuple);
      }
    } else {
      // Decided step (e.g. the reduction's cache-hit fast path): nothing
      // is scored; probe inline over the shard structures and validate the
      // decided ids the way the serial engine validates SelectRetained.
      for (const StreamTuple& arrival : arrivals_) {
        const ShardSlot& slot = slots_[ShardOf(arrival.value)];
        if (use_value_index) {
          for (int partner : topology.PartnersOf(arrival.stream)) {
            const auto& index =
                slot.value_index[static_cast<std::size_t>(partner)];
            auto it = index.find(arrival.value);
            if (it != index.end()) produced += it->second;
          }
        } else {
          for (const StreamTuple& cached : slot.cache) {
            if (!InWindow(cached, t, options_.window)) continue;
            if (cached.value != arrival.value) continue;
            if (topology.Joins(cached.stream, arrival.stream)) ++produced;
          }
        }
      }
      SJOIN_CHECK_LE(decided_.size(), options_.capacity);
      candidates_.clear();
      for (const StreamTuple& tuple : cache_) {
        candidates_.emplace(tuple.id, tuple);
      }
      for (const StreamTuple& tuple : arrivals_) {
        candidates_.emplace(tuple.id, tuple);
      }
      retained_set_.clear();
      for (TupleId id : decided_) {
        auto it = candidates_.find(id);
        SJOIN_CHECK_MSG(it != candidates_.end(),
                        "policy decided a tuple that is not a candidate");
        SJOIN_CHECK_MSG(retained_set_.insert(id).second,
                        "policy decided the same tuple twice");
        retained_.push_back(id);
        new_cache_.push_back(it->second);
      }

      // Commit for a decided step: incremental swap-remove against the
      // retained set (decided steps retain almost everything, so a full
      // rebuild would be wasted work).
      retained_set_.clear();
      for (TupleId id : retained_) retained_set_.insert(id);
      evicted_.clear();
      for (ShardSlot& slot : slots_) {
        for (std::size_t i = 0; i < slot.cache.size();) {
          const StreamTuple& tuple = slot.cache[i];
          if (retained_set_.contains(tuple.id)) {
            ++i;
            continue;
          }
          evicted_.push_back(tuple.id);
          if (use_value_index) {
            auto& index =
                slot.value_index[static_cast<std::size_t>(tuple.stream)];
            auto it = index.find(tuple.value);
            if (--it->second == 0) index.erase(it);
          }
          slot.cache[i] = slot.cache.back();
          slot.cache.pop_back();
        }
      }
      for (const StreamTuple& arrival : arrivals_) {
        if (!retained_set_.contains(arrival.id)) {
          evicted_.push_back(arrival.id);
          continue;
        }
        ShardSlot& slot = slots_[ShardOf(arrival.value)];
        slot.cache.push_back(arrival);
        if (use_value_index) {
          ++slot.value_index[static_cast<std::size_t>(arrival.stream)]
                            [arrival.value];
        }
      }
    }

    result.total_results += produced;
    const bool counted = t >= options_.warmup;
    if (counted) result.counted_results += produced;
    // Cache and arrival ids never collide (arrival ids are minted this
    // step), so the candidate-set size is just the sum.
    const std::size_t num_candidates = cache_.size() + arrivals_.size();
    cache_.swap(new_cache_);

    scoring.ShardEndStep(ctx, retained_, evicted_);

    if constexpr (kValidationEnabled) {
      SJOIN_VALIDATE(cache_.size() <= options_.capacity);
      // The shard caches must partition the global cache by value shard,
      // and each shard index must match a from-scratch recount.
      std::size_t sharded_total = 0;
      for (std::size_t shard = 0; shard < num_shards; ++shard) {
        const ShardSlot& slot = slots_[shard];
        sharded_total += slot.cache.size();
        std::vector<std::unordered_map<Value, std::int64_t>> recount(
            static_cast<std::size_t>(n));
        for (const StreamTuple& tuple : slot.cache) {
          SJOIN_VALIDATE_MSG(ShardOf(tuple.value) == shard,
                             "cached tuple stored in the wrong shard");
          ++recount[static_cast<std::size_t>(tuple.stream)][tuple.value];
        }
        if (use_value_index) {
          SJOIN_VALIDATE_MSG(recount == slot.value_index,
                             "shard value index out of sync with its cache");
        }
      }
      SJOIN_VALIDATE_MSG(sharded_total == cache_.size(),
                         "shard caches out of sync with the merged cache");
      for (const StreamTuple& tuple : cache_) {
        const std::vector<StreamTuple>& shard_cache =
            slots_[ShardOf(tuple.value)].cache;
        SJOIN_VALIDATE_MSG(
            std::any_of(shard_cache.begin(), shard_cache.end(),
                        [&tuple](const StreamTuple& other) {
                          return other.id == tuple.id;
                        }),
            "merged cache tuple missing from its shard");
      }
    }

    EngineStepView step_view;
    step_view.now = t;
    step_view.produced = produced;
    step_view.counted = counted;
    step_view.num_candidates = num_candidates;
    step_view.cache = &cache_;
    step_view.arrivals = &arrivals_;
    step_view.retained = &retained_;
    for (StepObserver* observer : observers) observer->OnStep(step_view);
  }
  for (StepObserver* observer : observers) observer->OnRunEnd(run_view);
  return result;
}

}  // namespace sjoin
