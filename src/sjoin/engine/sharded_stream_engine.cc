#include "sjoin/engine/sharded_stream_engine.h"

#include <algorithm>
#include <utility>

#include "sjoin/common/check.h"
#include "sjoin/common/validate.h"
#include "sjoin/engine/scoring_batch.h"

namespace sjoin {
namespace {

/// Steps per observer batch when every attached observer allows deferred
/// delivery: the engine buffers that many scalar step views before
/// synchronizing with the observer chain, keeping the workers hot across
/// the whole batch.
constexpr std::size_t kStepBatchSteps = 64;

/// A merge-cascade level fans out to the workers only past this many
/// total entries; below it the driver merges inline — the epoch ticket is
/// cheap, but not two-cache-misses cheap. The threshold affects timing
/// only, never output: every merge order yields the same sequence.
constexpr std::size_t kParallelMergeMinEntries = 4096;

}  // namespace

ShardedStreamEngine::ShardedStreamEngine(StreamTopology topology,
                                         Options options)
    : options_(options),
      serial_(std::move(topology),
              StreamEngine::Options{options.capacity, options.warmup,
                                    options.window, nullptr,
                                    options.probe_planner}),
      partition_(static_cast<std::size_t>(
          options.shards > 1 ? options.shards : 1)) {
  SJOIN_CHECK_GE(options_.shards, 1);
  SJOIN_CHECK_GE(options_.threads, 0);
}

void ShardedStreamEngine::SortRun(ScoredEntry* run, std::size_t size) {
  if (size > 64) {
    std::sort(run, run + size, [](const ScoredEntry& a, const ScoredEntry& b) {
      return ShardKeyBetter(a.key, b.key);
    });
    return;
  }
  for (std::size_t i = 1; i < size; ++i) {
    ScoredEntry entry = run[i];
    std::size_t j = i;
    while (j > 0 && ShardKeyBetter(entry.key, run[j - 1].key)) {
      run[j] = run[j - 1];
      --j;
    }
    run[j] = entry;
  }
}

int ShardedStreamEngine::DefaultThreads(int shards) {
  if (shards <= 1) return 1;
  return std::min(shards, ThreadPool::DefaultThreads());
}

int ShardedStreamEngine::effective_threads() const {
  if (options_.shards <= 1) return 1;
  if (options_.threads > 0) return options_.threads;
  if (options_.pool != nullptr) {
    return std::min(options_.pool->num_threads(), options_.shards);
  }
  return DefaultThreads(options_.shards);
}

std::int64_t ShardedStreamEngine::ArenaGrowthEvents() const {
  if (workers_ == nullptr) return 0;
  std::int64_t total = 0;
  for (int w = 0; w < workers_->num_workers(); ++w) {
    total += const_cast<ShardWorkers*>(workers_.get())->arena(w)
                 .growth_events();
  }
  return total;
}

EngineShardScoring* ShardedStreamEngine::DecideScoring(
    EnginePolicy& policy) {
  // Sharding needs a score-decomposable policy and more than one shard.
  // Either executor produces bit-identical results, which is exactly why
  // the fallback must leave a trace: a "sharded" benchmark or serve run
  // that quietly measured the serial path would report the wrong thing
  // while producing the right numbers.
  if (options_.shards <= 1) {
    fallback_reason_ = "shards <= 1: sharding not requested";
    return nullptr;
  }
  EngineShardScoring* scoring = policy.shard_scoring();
  if (scoring == nullptr) {
    fallback_reason_ = "policy is serial-only (no shard scoring)";
    return nullptr;
  }
  fallback_reason_ = nullptr;
  return scoring;
}

EngineRunResult ShardedStreamEngine::Run(
    const std::vector<const std::vector<Value>*>& streams,
    EnginePolicy& policy, const std::vector<StepObserver*>& observers) {
  // The serial/sharded decision is taken here, once per run.
  EngineShardScoring* scoring = DecideScoring(policy);
  if (scoring == nullptr) {
    adaptive_run_ = false;  // This run partitions nothing.
    adaptive_stats_ = {};
    return serial_.Run(streams, policy, observers);
  }
  const int n = serial_.topology().num_streams();
  SJOIN_CHECK_EQ(static_cast<int>(streams.size()), n);
  for (const std::vector<Value>* stream : streams) {
    SJOIN_CHECK(stream != nullptr);
  }
  const Time len = static_cast<Time>(streams[0]->size());
  for (const std::vector<Value>* stream : streams) {
    SJOIN_CHECK_EQ(static_cast<Time>(stream->size()), len);
  }
  if (run_session_ == nullptr) {
    run_session_ = std::make_unique<SessionState>();
  }
  OpenSharded(*run_session_, policy, *scoring, observers, len);
  AdvanceSharded(*run_session_, streams);
  return CloseSharded(*run_session_);
}

void ShardedStreamEngine::Open(SessionState& session, EnginePolicy& policy,
                               std::vector<StepObserver*> observers) {
  EngineShardScoring* scoring = DecideScoring(policy);
  if (scoring == nullptr) {
    adaptive_run_ = false;
    adaptive_stats_ = {};
    serial_.Open(session, serial_.options(), policy, std::move(observers));
    return;
  }
  OpenSharded(session, policy, *scoring, std::move(observers),
              /*known_length=*/-1);
}

void ShardedStreamEngine::Advance(
    SessionState& session,
    const std::vector<const std::vector<Value>*>& batch) {
  if (session.sharded_owner == nullptr) {
    serial_.Advance(session, batch);
    return;
  }
  SJOIN_CHECK_MSG(session.sharded_owner == this,
                  "sharded session advanced by an engine that did not "
                  "open it");
  AdvanceSharded(session, batch);
}

const EngineRunResult& ShardedStreamEngine::Drain(
    const SessionState& session) const {
  SJOIN_CHECK_MSG(session.open, "Drain on a session that is not open");
  return session.result;
}

EngineRunResult ShardedStreamEngine::Close(SessionState& session) {
  if (session.sharded_owner == nullptr) {
    return serial_.Close(session);
  }
  SJOIN_CHECK_MSG(session.sharded_owner == this,
                  "sharded session closed by an engine that did not "
                  "open it");
  return CloseSharded(session);
}

void ShardedStreamEngine::ProcessShard(const StepEpochContext& step,
                                       std::size_t shard) {
  const StreamTopology& topology = serial_.topology();
  ShardSlot& slot = slots_[shard];
  slot.produced = 0;
  for (const StreamTuple& arrival : arrivals_) {
    if (ShardOf(arrival.value) != shard) continue;
    if (step.use_value_index) {
      for (int partner : topology.PartnersOf(arrival.stream)) {
        const auto& index = slot.value_index[static_cast<std::size_t>(partner)];
        auto it = index.find(arrival.value);
        if (it != index.end()) slot.produced += it->second;
      }
    } else {
      for (const StreamTuple& cached : slot.cache) {
        if (!InWindow(cached, step.now, step.ctx->window)) continue;
        if (cached.value != arrival.value) continue;
        if (topology.Joins(cached.stream, arrival.stream)) {
          ++slot.produced;
        }
      }
    }
  }
  if (adaptive_run_) {
    // Per-bucket load evidence for the rebalancer: every cached tuple this
    // shard scores this step. This worker owns every bucket of this shard,
    // so the counter writes are race-free and their sums thread-count
    // independent.
    for (const StreamTuple& cached : slot.cache) {
      ++bucket_load_[adaptive_map_->BucketOf(cached.value)];
    }
  }
  if (run_batch_scoring_ && !slot.cache.empty()) {
    // Batch path: gather the shard's cached run into SoA lanes and score
    // it with one fused kernel call. ShardBatchScorable policies never
    // exclude cached tuples, so every lane lands in scored and dropped
    // stays empty.
    const std::size_t lanes = slot.cache.size();
    for (std::size_t i = 0; i < lanes; ++i) {
      const StreamTuple& cached = slot.cache[i];
      slot.batch_values[i] = cached.value;
      slot.batch_arrivals[i] = cached.arrival;
      slot.batch_sides[i] = static_cast<std::uint8_t>(cached.stream);
      slot.batch_ids[i] = cached.id;
    }
    CandidateBatch batch;
    batch.size = lanes;
    batch.values = slot.batch_values;
    batch.arrivals = slot.batch_arrivals;
    batch.sides = slot.batch_sides;
    batch.ids = slot.batch_ids;
    step.scoring->ShardScoreCachedBatch(batch, *step.ctx, slot.scratch.get(),
                                        slot.batch_scores, slot.batch_keys);
    for (std::size_t i = 0; i < lanes; ++i) {
      slot.scored[slot.scored_size++] = {slot.batch_keys[i], slot.cache[i]};
    }
  } else {
    for (const StreamTuple& cached : slot.cache) {
      std::optional<ShardKey> key =
          step.scoring->ShardScoreCached(cached, *step.ctx,
                                         slot.scratch.get());
      if (key.has_value()) {
        slot.scored[slot.scored_size++] = {*key, cached};
      } else {
        slot.dropped[slot.dropped_size++] = cached;
      }
    }
  }
  SortRun(slot.scored, slot.scored_size);
}

void ShardedStreamEngine::RunShardSlice(const StepEpochContext& step,
                                        int worker) {
  const int workers = workers_->num_workers();
  ShardArena& arena = workers_->arena(worker);
  const auto num_shards = static_cast<std::size_t>(options_.shards);
  // Carve this slice's scratch on the worker itself (first touch is
  // worker-local) — every cached tuple lands in exactly one of
  // scored/dropped, so cache.size() bounds both.
  for (std::size_t shard = static_cast<std::size_t>(worker);
       shard < num_shards; shard += static_cast<std::size_t>(workers)) {
    ShardSlot& slot = slots_[shard];
    slot.scored = arena.AllocArray<ScoredEntry>(slot.cache.size());
    slot.scored_size = 0;
    slot.dropped = arena.AllocArray<StreamTuple>(slot.cache.size());
    slot.dropped_size = 0;
    if (run_batch_scoring_) {
      const std::size_t lanes = slot.cache.size();
      slot.batch_values = arena.AllocArray<Value>(lanes);
      slot.batch_arrivals = arena.AllocArray<Time>(lanes);
      slot.batch_sides = arena.AllocArray<std::uint8_t>(lanes);
      slot.batch_ids = arena.AllocArray<TupleId>(lanes);
      slot.batch_scores = arena.AllocArray<double>(lanes);
      slot.batch_keys = arena.AllocArray<ShardKey>(lanes);
    }
    ProcessShard(step, shard);
  }
}

void ShardedStreamEngine::MergePair(const MergeJob& job) {
  std::merge(job.a.data, job.a.data + job.a.size, job.b.data,
             job.b.data + job.b.size, job.out,
             [](const ScoredEntry& x, const ScoredEntry& y) {
               return ShardKeyBetter(x.key, y.key);
             });
}

void ShardedStreamEngine::RunMergeSlice(int worker) {
  const int workers = workers_->num_workers();
  for (std::size_t j = static_cast<std::size_t>(worker);
       j < merge_jobs_.size(); j += static_cast<std::size_t>(workers)) {
    MergePair(merge_jobs_[j]);
  }
}

void ShardedStreamEngine::ShardsEpochThunk(void* raw, int worker) {
  auto* step = static_cast<StepEpochContext*>(raw);
  step->engine->RunShardSlice(*step, worker);
}

void ShardedStreamEngine::MergeEpochThunk(void* raw, int worker) {
  static_cast<ShardedStreamEngine*>(raw)->RunMergeSlice(worker);
}

void ShardedStreamEngine::MigrationEpochThunk(void* raw, int worker) {
  static_cast<ShardedStreamEngine*>(raw)->RunMigrationSlice(worker);
}

void ShardedStreamEngine::RunMigrationSlice(int worker) {
  const int workers = workers_->num_workers();
  for (std::size_t shard = static_cast<std::size_t>(worker);
       shard < slots_.size(); shard += static_cast<std::size_t>(workers)) {
    ShardSlot& slot = slots_[shard];
    slot.cache.clear();
    for (auto& index : slot.value_index) index.clear();
    // The global cache keeps the merged (serial) order, so rebuilding a
    // slot as its subsequence preserves the nearly-sorted-runs property
    // the next step's SortRun relies on.
    for (const StreamTuple& tuple : cache_) {
      if (ShardOf(tuple.value) != shard) continue;
      slot.cache.push_back(tuple);
      if (run_use_value_index_) {
        ++slot.value_index[static_cast<std::size_t>(tuple.stream)]
                          [tuple.value];
      }
    }
  }
}

void ShardedStreamEngine::MigrateSlots() {
  // The map moved: cached tuples may now belong to different shards.
  // Rebuild every slot from the merged global cache — one migration epoch,
  // each worker rebuilding the slots it owns. Rare (at most one per
  // rebalance interval) and O(shards x cache / workers), so correctness
  // beats cleverness here.
  workers_->RunEpoch(&ShardedStreamEngine::MigrationEpochThunk, this,
                     ShardWorkers::EpochKind::kMigration);
}

void ShardedStreamEngine::RebalanceCheckpoint(Time now) {
  ++adaptive_stats_.windows;
  adaptive_stats_.static_ratio_sum +=
      adaptive_map_->StaticLoadRatio(bucket_load_);
  adaptive_stats_.adaptive_ratio_sum += adaptive_map_->LoadRatio(bucket_load_);
  if (adaptive_map_->Rebalance(bucket_load_, now)) {
    ++adaptive_stats_.rebalances;
    MigrateSlots();
  }
  adaptive_stats_.map_version = adaptive_map_->version();
  std::fill(bucket_load_.begin(), bucket_load_.end(), std::int64_t{0});
}

void ShardedStreamEngine::FlushPendingViews(
    const std::vector<StepObserver*>& observers) {
  for (const EngineStepView& view : pending_views_) {
    for (StepObserver* observer : observers) observer->OnStep(view);
  }
  pending_views_.clear();
}

void ShardedStreamEngine::OpenSharded(SessionState& session,
                                      EnginePolicy& policy,
                                      EngineShardScoring& scoring,
                                      std::vector<StepObserver*> observers,
                                      Time known_length) {
  const StreamTopology& topology = serial_.topology();
  const int n = topology.num_streams();
  SJOIN_CHECK_MSG(!session.open, "Open on a session that is already open");
  SJOIN_CHECK_MSG(!sharded_session_open_,
                  "only one sharded session may be open per engine (its "
                  "slot and arena state is engine-resident)");
  sharded_session_open_ = true;

  session.open = true;
  session.now = 0;
  session.result = EngineRunResult();
  session.policy = &policy;
  session.observers = std::move(observers);
  session.options =
      StreamEngine::Options{options_.capacity, options_.warmup,
                            options_.window, nullptr, nullptr};
  session.partitions = nullptr;
  session.sharded_owner = this;
  session.scoring = &scoring;

  policy.Reset();

  // The persistent team is rebuilt only when its shape changes, so
  // repeated runs (benchmark loops) spawn no threads after the first.
  const int threads = effective_threads();
  if (workers_ == nullptr || workers_->num_workers() != threads ||
      workers_->options().pin_threads != options_.pin_threads) {
    workers_ = std::make_unique<ShardWorkers>(ShardWorkers::Options{
        .workers = threads, .pin_threads = options_.pin_threads});
  }

  const auto num_shards = static_cast<std::size_t>(options_.shards);
  const bool use_value_index =
      !options_.window.has_value() &&
      options_.capacity >= StreamEngine::kValueIndexMinCapacity;
  run_use_value_index_ = use_value_index;
  // Batch-kernel decision, once per Open: the process-wide switch is read
  // here (serial code) and never again from worker threads, so a
  // mid-session flip cannot desynchronize shards.
  run_batch_scoring_ = ScoringBatchEnabled() && scoring.ShardBatchScorable();

  // Adaptive partitioning: the map is constructed once (the shard count
  // and bucket space are per-engine constants) and Reset() per run, so
  // equal runs replay an identical rebalance history.
  adaptive_run_ = options_.adaptive.enabled;
  adaptive_stats_ = {};
  if (adaptive_run_) {
    if (adaptive_map_ == nullptr) {
      adaptive_map_ = std::make_unique<AdaptivePartitionMap>(
          AdaptivePartitionMap::Options{
              .partitions = options_.shards,
              .num_buckets = options_.adaptive.num_buckets,
              .imbalance_ratio = options_.adaptive.imbalance_ratio});
    } else {
      adaptive_map_->Reset();
    }
    bucket_load_.assign(adaptive_map_->num_buckets(), 0);
    adaptive_stats_.partitions = options_.shards;
  }

  slots_.clear();
  slots_.resize(num_shards);
  for (ShardSlot& slot : slots_) {
    slot.cache.reserve(options_.capacity);
    slot.value_index.assign(static_cast<std::size_t>(n), {});
    slot.scratch = scoring.MakeShardScratch();
  }
  cache_.clear();
  cache_.reserve(options_.capacity);
  new_cache_.reserve(options_.capacity);
  arrivals_.reserve(static_cast<std::size_t>(n));
  histories_.assign(static_cast<std::size_t>(n), StreamHistory());
  arrival_scored_.reserve(static_cast<std::size_t>(n));
  retained_.reserve(options_.capacity + static_cast<std::size_t>(n));
  evicted_.reserve(options_.capacity + static_cast<std::size_t>(n));
  decided_.reserve(options_.capacity + static_cast<std::size_t>(n));
  retained_set_.reserve(options_.capacity + static_cast<std::size_t>(n));
  // At most num_shards + 1 runs enter the cascade, so it performs at most
  // num_shards pairwise merges per step across ceil(log2) levels.
  std::size_t levels = 0;
  for (std::size_t runs = num_shards + 1; runs > 1; runs = (runs + 1) / 2) {
    ++levels;
  }
  merge_runs_.reserve(num_shards + 1);
  next_runs_.reserve(num_shards + 1);
  merge_jobs_.reserve((num_shards + 2) / 2);
  pending_views_.reserve(kStepBatchSteps);

  // Worst-case per-step arena demand per worker: a worker's shards
  // partition at most the whole cache (capacity scored entries + capacity
  // dropped tuples), and each cascade level can hand one worker every
  // merge output (capacity + n entries total per level). Reserving that
  // up front makes steady-state steps allocation-free, which the
  // validation build asserts via the growth-event baseline.
  // Batch runs additionally carve per-shard SoA lanes and kernel scratch
  // (six spans per shard, capacity lanes total across a worker's shards).
  const std::size_t batch_lane_bytes =
      run_batch_scoring_
          ? options_.capacity *
                    (sizeof(Value) + sizeof(Time) + sizeof(std::uint8_t) +
                     sizeof(TupleId) + sizeof(double) + sizeof(ShardKey)) +
                6 * num_shards * 64
          : 0;
  const std::size_t arena_bytes =
      (options_.capacity + levels * (options_.capacity +
                                     static_cast<std::size_t>(n))) *
          sizeof(ScoredEntry) +
      options_.capacity * sizeof(StreamTuple) +
      (2 * num_shards + 2 * levels + 8) * 64 + batch_lane_bytes;
  for (int w = 0; w < threads; ++w) {
    workers_->arena(w).Reserve(arena_bytes);
  }
  arena_growth_baseline_ = ArenaGrowthEvents();

  session.use_value_index = use_value_index;

  EngineRunView run_view;
  run_view.topology = &topology;
  run_view.capacity = options_.capacity;
  run_view.warmup = options_.warmup;
  run_view.window = options_.window;
  run_view.length = known_length;
  for (StepObserver* observer : session.observers) {
    observer->OnRunBegin(run_view);
  }
  // An observer that disables sharded scoring during OnRunBegin (e.g. a
  // ScoreTraceObserver installing a score observer) would invalidate the
  // decision already taken above; fail loudly instead of racing.
  SJOIN_CHECK_MSG(policy.shard_scoring() != nullptr,
                  "an observer disabled sharded scoring after the engine "
                  "committed to it; run score tracers with shards = 1");

  // Batched multi-step execution: when every attached observer tolerates
  // deferred, scalar-only delivery, the engine synchronizes with the
  // chain once per kStepBatchSteps instead of every step (the views are
  // buffered in order, with the pointer fields null) and at Advance
  // boundaries. Any other observer keeps the classic step-synchronous
  // protocol.
  session.batched_observers = true;
  for (StepObserver* observer : session.observers) {
    session.batched_observers =
        session.batched_observers && observer->AllowsBatchedSteps();
  }
}

void ShardedStreamEngine::AdvanceSharded(
    SessionState& session,
    const std::vector<const std::vector<Value>*>& batch) {
  SJOIN_CHECK_MSG(session.open, "Advance on a session that is not open");
  const StreamTopology& topology = serial_.topology();
  const int n = topology.num_streams();
  SJOIN_CHECK_EQ(static_cast<int>(batch.size()), n);
  for (const std::vector<Value>* stream : batch) {
    SJOIN_CHECK(stream != nullptr);
  }
  const Time steps = static_cast<Time>(batch[0]->size());
  for (const std::vector<Value>* stream : batch) {
    SJOIN_CHECK_EQ(static_cast<Time>(stream->size()), steps);
  }

  EngineShardScoring& scoring = *session.scoring;
  const std::vector<StepObserver*>& observers = session.observers;
  const bool batch_ok = session.batched_observers;
  const bool use_value_index = run_use_value_index_;
  const int threads = workers_->num_workers();
  const auto num_shards = static_cast<std::size_t>(options_.shards);
  const Time rebalance_interval =
      std::max<Time>(options_.adaptive.interval, 1);

  workers_->BeginBatch();
  for (Time i = 0; i < steps; ++i) {
    const Time t = session.now;
    arrivals_.clear();
    for (int s = 0; s < n; ++s) {
      arrivals_.push_back(
          {StreamTupleIdAt(n, s, t), s,
           (*batch[static_cast<std::size_t>(s)])
               [static_cast<std::size_t>(i)],
           t});
    }
    for (int s = 0; s < n; ++s) {
      histories_[static_cast<std::size_t>(s)].Append(
          arrivals_[static_cast<std::size_t>(s)].value);
    }

    EngineContext ctx;
    ctx.now = t;
    ctx.capacity = options_.capacity;
    ctx.cached = &cache_;
    ctx.arrivals = &arrivals_;
    ctx.histories = &histories_;
    ctx.window = options_.window;

    decided_.clear();
    const bool scored_step = scoring.ShardBeginStep(ctx, &decided_);

    std::int64_t produced = 0;
    retained_.clear();
    new_cache_.clear();
    if (scored_step) {
      // One epoch over the persistent team: worker w runs Phase-1 probes,
      // cached scoring and the shard-local sort for every shard s with
      // s % workers == w, carving the shard's scored/dropped runs from
      // its own arena. Slices touch only their own slots (plus read-only
      // step state), so the post-epoch reduction needs no locks.
      for (int w = 0; w < threads; ++w) workers_->arena(w).Reset();
      StepEpochContext step;
      step.engine = this;
      step.ctx = &ctx;
      step.scoring = &scoring;
      step.now = t;
      step.use_value_index = use_value_index;
      workers_->RunEpoch(&ShardedStreamEngine::ShardsEpochThunk, &step,
                         ShardWorkers::EpochKind::kStep);
      for (const ShardSlot& slot : slots_) produced += slot.produced;

      // Arrivals are scored serially, in arrival order: policies may
      // mutate state here (HEEB inserts incremental entries).
      arrival_scored_.clear();
      for (const StreamTuple& arrival : arrivals_) {
        if (adaptive_run_) {
          ++bucket_load_[adaptive_map_->BucketOf(arrival.value)];
        }
        std::optional<ShardKey> key = scoring.ShardScoreArrival(arrival, ctx);
        if (key.has_value()) arrival_scored_.push_back({*key, arrival});
      }
      SortRun(arrival_scored_.data(), arrival_scored_.size());

      // Global merge of the shard runs plus the arrival run: a balanced
      // cascade of pairwise merges, ~log2(shards + 1) levels of tight
      // two-way merges instead of a (shards + 1)-wide head scan per pop.
      // Levels with enough work fan their independent pairs back out to
      // the workers (outputs are arena spans, job j on worker j % team).
      // std::merge is stable and the keys form a strict total order
      // (unique minors), so every merge shape — serial, parallel, any
      // pairing — yields exactly the serial engine's sorted candidate
      // order: same retained prefix, same cache order.
      merge_runs_.clear();
      for (ShardSlot& slot : slots_) {
        if (slot.scored_size > 0) {
          merge_runs_.push_back({slot.scored, slot.scored_size});
        }
      }
      if (!arrival_scored_.empty()) {
        merge_runs_.push_back(
            {arrival_scored_.data(), arrival_scored_.size()});
      }
      while (merge_runs_.size() > 1) {
        next_runs_.clear();
        merge_jobs_.clear();
        std::size_t level_entries = 0;
        for (std::size_t i = 0; i + 1 < merge_runs_.size(); i += 2) {
          const MergeRun& a = merge_runs_[i];
          const MergeRun& b = merge_runs_[i + 1];
          ScoredEntry* out =
              workers_->arena(static_cast<int>(merge_jobs_.size()) % threads)
                  .AllocArray<ScoredEntry>(a.size + b.size);
          merge_jobs_.push_back({a, b, out});
          next_runs_.push_back({out, a.size + b.size});
          level_entries += a.size + b.size;
        }
        if (merge_runs_.size() % 2 == 1) {
          next_runs_.push_back(merge_runs_.back());
        }
        if (threads > 1 && merge_jobs_.size() >= 2 &&
            level_entries >= kParallelMergeMinEntries) {
          workers_->RunEpoch(&ShardedStreamEngine::MergeEpochThunk, this,
                             ShardWorkers::EpochKind::kMerge);
        } else {
          for (const MergeJob& job : merge_jobs_) MergePair(job);
        }
        merge_runs_.swap(next_runs_);
      }
      const MergeRun merged =
          merge_runs_.empty()
              ? MergeRun{arrival_scored_.data(), arrival_scored_.size()}
              : merge_runs_.front();

      // Commit. The merged prefix is the retained set and the suffix is
      // the eviction list — no retained-set hashing anywhere. A candidate
      // is an arrival iff its arrival stamp is this step (cached tuples
      // were admitted strictly earlier), which is what decides the index
      // delta direction. Rebuilding every shard cache from the retained
      // prefix keeps slots in globally sorted order — that is what makes
      // next step's runs nearly sorted for SortRun.
      evicted_.clear();
      const std::size_t keep = std::min(options_.capacity, merged.size);
      for (std::size_t i = 0; i < keep; ++i) {
        const StreamTuple& tuple = merged.data[i].tuple;
        retained_.push_back(tuple.id);
        new_cache_.push_back(tuple);
        if (use_value_index && tuple.arrival == t) {
          ++slots_[ShardOf(tuple.value)]
                .value_index[static_cast<std::size_t>(tuple.stream)]
                            [tuple.value];
        }
      }
      const auto evict = [this, use_value_index, t](const StreamTuple& tuple) {
        evicted_.push_back(tuple.id);
        if (!use_value_index || tuple.arrival == t) return;  // Never indexed.
        ShardSlot& slot = slots_[ShardOf(tuple.value)];
        auto& index =
            slot.value_index[static_cast<std::size_t>(tuple.stream)];
        auto it = index.find(tuple.value);
        if (--it->second == 0) index.erase(it);
      };
      for (std::size_t i = keep; i < merged.size; ++i) {
        evict(merged.data[i].tuple);
      }
      for (ShardSlot& slot : slots_) {
        for (std::size_t i = 0; i < slot.dropped_size; ++i) {
          evict(slot.dropped[i]);
        }
      }
      // Arrivals the policy scored as nullopt were never retention
      // candidates, but they still belong to candidates \ retained.
      if (arrival_scored_.size() < arrivals_.size()) {
        for (const StreamTuple& arrival : arrivals_) {
          bool scored = false;
          for (const ScoredEntry& entry : arrival_scored_) {
            if (entry.tuple.id == arrival.id) {
              scored = true;
              break;
            }
          }
          if (!scored) evicted_.push_back(arrival.id);
        }
      }
      for (ShardSlot& slot : slots_) slot.cache.clear();
      for (const StreamTuple& tuple : new_cache_) {
        slots_[ShardOf(tuple.value)].cache.push_back(tuple);
      }
    } else {
      // Decided step (e.g. the reduction's cache-hit fast path): nothing
      // is scored; probe inline over the shard structures and validate the
      // decided ids the way the serial engine validates SelectRetained.
      for (const StreamTuple& arrival : arrivals_) {
        const ShardSlot& slot = slots_[ShardOf(arrival.value)];
        if (use_value_index) {
          for (int partner : topology.PartnersOf(arrival.stream)) {
            const auto& index =
                slot.value_index[static_cast<std::size_t>(partner)];
            auto it = index.find(arrival.value);
            if (it != index.end()) produced += it->second;
          }
        } else {
          for (const StreamTuple& cached : slot.cache) {
            if (!InWindow(cached, t, options_.window)) continue;
            if (cached.value != arrival.value) continue;
            if (topology.Joins(cached.stream, arrival.stream)) ++produced;
          }
        }
      }
      SJOIN_CHECK_LE(decided_.size(), options_.capacity);
      candidates_.clear();
      for (const StreamTuple& tuple : cache_) {
        candidates_.emplace(tuple.id, tuple);
      }
      for (const StreamTuple& tuple : arrivals_) {
        candidates_.emplace(tuple.id, tuple);
      }
      retained_set_.clear();
      for (TupleId id : decided_) {
        auto it = candidates_.find(id);
        SJOIN_CHECK_MSG(it != candidates_.end(),
                        "policy decided a tuple that is not a candidate");
        SJOIN_CHECK_MSG(retained_set_.insert(id).second,
                        "policy decided the same tuple twice");
        retained_.push_back(id);
        new_cache_.push_back(it->second);
      }

      // Commit for a decided step: incremental swap-remove against the
      // retained set (decided steps retain almost everything, so a full
      // rebuild would be wasted work).
      retained_set_.clear();
      for (TupleId id : retained_) retained_set_.insert(id);
      evicted_.clear();
      for (ShardSlot& slot : slots_) {
        for (std::size_t i = 0; i < slot.cache.size();) {
          const StreamTuple& tuple = slot.cache[i];
          if (retained_set_.contains(tuple.id)) {
            ++i;
            continue;
          }
          evicted_.push_back(tuple.id);
          if (use_value_index) {
            auto& index =
                slot.value_index[static_cast<std::size_t>(tuple.stream)];
            auto it = index.find(tuple.value);
            if (--it->second == 0) index.erase(it);
          }
          slot.cache[i] = slot.cache.back();
          slot.cache.pop_back();
        }
      }
      for (const StreamTuple& arrival : arrivals_) {
        if (!retained_set_.contains(arrival.id)) {
          evicted_.push_back(arrival.id);
          continue;
        }
        ShardSlot& slot = slots_[ShardOf(arrival.value)];
        slot.cache.push_back(arrival);
        if (use_value_index) {
          ++slot.value_index[static_cast<std::size_t>(arrival.stream)]
                            [arrival.value];
        }
      }
    }

    session.result.total_results += produced;
    const bool counted = t >= options_.warmup;
    if (counted) session.result.counted_results += produced;
    // Cache and arrival ids never collide (arrival ids are minted this
    // step), so the candidate-set size is just the sum.
    const std::size_t num_candidates = cache_.size() + arrivals_.size();
    cache_.swap(new_cache_);

    scoring.ShardEndStep(ctx, retained_, evicted_);

    if constexpr (kValidationEnabled) {
      SJOIN_VALIDATE(cache_.size() <= options_.capacity);
      // The scored-step hot loop must never fall back to heap growth:
      // the arenas were reserved for the worst case at run setup.
      SJOIN_VALIDATE_MSG(ArenaGrowthEvents() == arena_growth_baseline_,
                         "per-step scratch outgrew the reserved arenas");
      // The shard caches must partition the global cache by value shard,
      // and each shard index must match a from-scratch recount.
      std::size_t sharded_total = 0;
      for (std::size_t shard = 0; shard < num_shards; ++shard) {
        const ShardSlot& slot = slots_[shard];
        sharded_total += slot.cache.size();
        std::vector<std::unordered_map<Value, std::int64_t>> recount(
            static_cast<std::size_t>(n));
        for (const StreamTuple& tuple : slot.cache) {
          SJOIN_VALIDATE_MSG(ShardOf(tuple.value) == shard,
                             "cached tuple stored in the wrong shard");
          ++recount[static_cast<std::size_t>(tuple.stream)][tuple.value];
        }
        if (use_value_index) {
          SJOIN_VALIDATE_MSG(recount == slot.value_index,
                             "shard value index out of sync with its cache");
        }
      }
      SJOIN_VALIDATE_MSG(sharded_total == cache_.size(),
                         "shard caches out of sync with the merged cache");
      for (const StreamTuple& tuple : cache_) {
        const std::vector<StreamTuple>& shard_cache =
            slots_[ShardOf(tuple.value)].cache;
        SJOIN_VALIDATE_MSG(
            std::any_of(shard_cache.begin(), shard_cache.end(),
                        [&tuple](const StreamTuple& other) {
                          return other.id == tuple.id;
                        }),
            "merged cache tuple missing from its shard");
      }
    }

    EngineStepView step_view;
    step_view.now = t;
    step_view.produced = produced;
    step_view.counted = counted;
    step_view.num_candidates = num_candidates;
    if (batch_ok) {
      if (!observers.empty()) {
        pending_views_.push_back(step_view);
        if (pending_views_.size() >= kStepBatchSteps) {
          FlushPendingViews(observers);
        }
      }
    } else {
      step_view.cache = &cache_;
      step_view.arrivals = &arrivals_;
      step_view.retained = &retained_;
      for (StepObserver* observer : observers) observer->OnStep(step_view);
    }

    // Step boundary: consider a rebalance. Never affects this step's
    // (already delivered) views, and the decision depends only on the
    // accumulated bucket loads — no clock, no randomness — so reruns
    // replay the same version history.
    if (adaptive_run_ && (t + 1) % rebalance_interval == 0) {
      RebalanceCheckpoint(t);
    }
    session.now = t + 1;
  }
  FlushPendingViews(observers);
  workers_->EndBatch();
}

EngineRunResult ShardedStreamEngine::CloseSharded(SessionState& session) {
  SJOIN_CHECK_MSG(session.open, "Close on a session that is not open");
  FlushPendingViews(session.observers);
  EngineRunView run_view;
  run_view.topology = &serial_.topology();
  run_view.capacity = options_.capacity;
  run_view.warmup = options_.warmup;
  run_view.window = options_.window;
  run_view.length = session.now;
  for (StepObserver* observer : session.observers) {
    observer->OnRunEnd(run_view);
  }
  session.open = false;
  session.policy = nullptr;
  session.scoring = nullptr;
  session.sharded_owner = nullptr;
  session.observers.clear();
  sharded_session_open_ = false;
  return session.result;
}

}  // namespace sjoin
