#include "sjoin/engine/scoring_batch.h"

#include <cstdlib>
#include <string_view>

namespace sjoin {
namespace {

bool DefaultFromEnv() {
  const char* env = std::getenv("SJOIN_BATCH_SCORING");
  if (env == nullptr || *env == '\0') return true;
  return std::string_view(env) != "0";
}

bool& Flag() {
  static bool flag = DefaultFromEnv();
  return flag;
}

}  // namespace

bool ScoringBatchEnabled() { return Flag(); }

void SetScoringBatchEnabled(bool enabled) { Flag() = enabled; }

ScopedScoringBatch::ScopedScoringBatch(bool enabled) : previous_(Flag()) {
  Flag() = enabled;
}

ScopedScoringBatch::~ScopedScoringBatch() { Flag() = previous_; }

}  // namespace sjoin
