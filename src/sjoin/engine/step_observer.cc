#include "sjoin/engine/step_observer.h"

#include <algorithm>
#include <unordered_set>

#include "sjoin/common/check.h"
#include "sjoin/engine/scored_policy.h"
#include "sjoin/engine/stream_engine.h"

namespace sjoin {

void PerfObserver::OnRunBegin(const EngineRunView& run) {
  (void)run;
  telemetry_ = EngineTelemetry();
  stopwatch_.Restart();
}

void PerfObserver::OnStep(const EngineStepView& step) {
  ++telemetry_.steps;
  telemetry_.peak_candidates =
      std::max(telemetry_.peak_candidates,
               static_cast<std::int64_t>(step.num_candidates));
  telemetry_.probes += step.probes;
  telemetry_.probe_skips += step.probe_skips;
  telemetry_.probe_cache_hits += step.probe_cache_hits;
  telemetry_.plan_replans += step.plan_replans;
}

void PerfObserver::OnRunEnd(const EngineRunView& run) {
  (void)run;
  telemetry_.run_ns = stopwatch_.ElapsedNs();
}

void CacheCompositionObserver::OnStep(const EngineStepView& step) {
  std::size_t count = 0;
  for (const StreamTuple& tuple : *step.cache) {
    if (tuple.stream == stream_) ++count;
  }
  out_->push_back(step.cache->empty()
                      ? 0.0
                      : static_cast<double>(count) /
                            static_cast<double>(step.cache->size()));
}

void ValidationObserver::OnRunBegin(const EngineRunView& run) {
  capacity_ = run.capacity;
  num_streams_ = run.topology->num_streams();
}

void ValidationObserver::OnStep(const EngineStepView& step) {
  SJOIN_CHECK_LE(step.cache->size(), capacity_);
  SJOIN_CHECK_LE(step.retained->size(), capacity_);
  std::unordered_set<TupleId> ids;
  for (const StreamTuple& tuple : *step.cache) {
    SJOIN_CHECK_MSG(ids.insert(tuple.id).second,
                    "cache holds the same tuple twice");
    SJOIN_CHECK_MSG(tuple.stream >= 0 && tuple.stream < num_streams_,
                    "cached tuple has an out-of-range stream");
  }
}

void ScoreTraceObserver::OnRunBegin(const EngineRunView& run) {
  (void)run;
  samples_.clear();
  current_step_ = 0;
  policy_->set_score_observer([this](const Tuple& tuple, double score) {
    samples_.push_back({current_step_, tuple.id, score});
  });
}

void ScoreTraceObserver::OnStep(const EngineStepView& step) {
  // Scores for the decision at `step.now` have already fired; label the
  // next batch with the following step.
  current_step_ = step.now + 1;
}

void ScoreTraceObserver::OnRunEnd(const EngineRunView& run) {
  (void)run;
  policy_->set_score_observer(nullptr);
}

}  // namespace sjoin
