#ifndef SJOIN_ENGINE_SCORED_CACHING_POLICY_H_
#define SJOIN_ENGINE_SCORED_CACHING_POLICY_H_

#include <functional>
#include <utility>
#include <vector>

#include "sjoin/engine/caching_policy.h"
#include "sjoin/engine/candidate_batch.h"

/// \file
/// Base class for score-ranked caching policies (LRU, LFU, LFD, HEEB, ...).

namespace sjoin {

/// Keeps the `capacity` highest-scored database tuples out of
/// cached ∪ {referenced}. Ties break toward the referenced (newest) value,
/// then toward larger values, for determinism.
class ScoredCachingPolicy : public CachingPolicy {
 public:
  std::vector<Value> SelectRetained(const CachingContext& ctx) final;

  /// Sharded-execution opt-in mirroring ScoredPolicy::ShardScorable: true
  /// when Score() is safe to call concurrently for distinct values between
  /// two Observe()/SelectRetained() calls. The Theorem 1 reduction adapter
  /// consults this to decide whether the caching policy can score miss
  /// candidates from parallel shards (HEEB's time-incremental caching mode
  /// mutates inside Score(), so it stays serial).
  virtual bool ShardScorable() const { return false; }

  /// Scoring entry for the reduction's sharded hooks; identical to the
  /// Score() that SelectRetained uses.
  double ShardScore(Value v, const CachingContext& ctx) {
    return Score(v, ctx);
  }

  bool has_score_observer() const {
    return static_cast<bool>(score_observer_);
  }

  /// Verification hook mirroring ScoredPolicy::set_score_observer: when
  /// set, receives every candidate value's score as SelectRetained
  /// computes it.
  using ScoreObserver = std::function<void(Value, double)>;
  void set_score_observer(ScoreObserver observer) {
    score_observer_ = std::move(observer);
  }

 protected:
  /// Desirability of keeping the database tuple with value `v`.
  virtual double Score(Value v, const CachingContext& ctx) = 0;

  /// Batched-kernel opt-in mirroring ScoredPolicy::BatchScorable: true
  /// when ScoreBatchInto() matches per-lane Score() calls bit for bit.
  virtual bool BatchScorable() const { return false; }

  /// Scores every lane of a values-only batch (batch.values/batch.size;
  /// sides/arrivals/ids are null) into out[i]. Default: per-lane Score().
  virtual void ScoreBatchInto(const CandidateBatch& batch,
                              const CachingContext& ctx, double* out);

 private:
  ScoreObserver score_observer_;
  // Per-call scratch reused across SelectRetained calls: the candidate
  // value lanes (cached ∪ {referenced on a miss}) and their scores.
  std::vector<Value> batch_values_;
  std::vector<double> batch_scores_;
};

}  // namespace sjoin

#endif  // SJOIN_ENGINE_SCORED_CACHING_POLICY_H_
