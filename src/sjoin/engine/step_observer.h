#ifndef SJOIN_ENGINE_STEP_OBSERVER_H_
#define SJOIN_ENGINE_STEP_OBSERVER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "sjoin/common/stopwatch.h"
#include "sjoin/common/types.h"
#include "sjoin/engine/stream_tuple.h"

/// \file
/// The StreamEngine's composable instrumentation chain.
///
/// Every ad-hoc hook the three pre-engine simulators grew — the
/// `track_cache_composition` option, `peak_candidates` telemetry, ns/step
/// timing, validation invariants — is expressed as a StepObserver attached
/// to a run. The engine itself only joins and replaces; everything that
/// merely *watches* a run lives here, so new instrumentation composes
/// instead of widening Options structs.

namespace sjoin {

class StreamTopology;
class ScoredPolicy;

/// Perf telemetry shared by every façade's run result. `run_ns` is wall
/// time and is never compared by differential suites; `peak_candidates`
/// and `steps` are deterministic and are.
struct EngineTelemetry {
  /// Largest candidate set (cache plus arrivals) handed to the policy in
  /// any step; perf telemetry for BENCH_perf.json.
  std::int64_t peak_candidates = 0;
  /// Steps executed (== stream length).
  std::int64_t steps = 0;
  /// Wall time of the engine loop, monotonic clock.
  std::int64_t run_ns = 0;
  /// Probe-plan accounting (engine/probe_planner.h); all zero unless the
  /// run attached a ProbePlanner. Deterministic, like peak_candidates.
  std::int64_t probes = 0;
  std::int64_t probe_skips = 0;
  std::int64_t probe_cache_hits = 0;
  std::int64_t plan_replans = 0;
  /// Null when the run executed as configured. A sharded configuration
  /// that fell back to the serial executor (results are identical, so
  /// the fallback is otherwise silent) records the static reason string
  /// here — filled by façades from
  /// ShardedStreamEngine::fallback_reason(), not by PerfObserver.
  const char* fallback_reason = nullptr;
};

/// Run-constant facts, handed to OnRunBegin / OnRunEnd.
struct EngineRunView {
  const StreamTopology* topology = nullptr;
  std::size_t capacity = 0;
  Time warmup = 0;
  std::optional<Time> window;
  /// At OnRunBegin: total steps when known up front (batch Run), or -1
  /// for an incrementally advanced session, whose length is unknown
  /// until it closes. At OnRunEnd: steps actually executed.
  Time length = 0;
};

/// One step's outcome, handed to OnStep after replacement has settled.
struct EngineStepView {
  Time now = 0;
  /// Result tuples produced by this step's Phase-1 probes.
  std::int64_t produced = 0;
  /// True when now >= warmup (the step counts toward the paper's metric).
  bool counted = false;
  /// Size of the candidate set (previous cache plus arrivals) the policy
  /// chose from this step.
  std::size_t num_candidates = 0;
  /// This step's probe-plan accounting (zero without a ProbePlanner):
  /// probes considered, short-circuited, served from the probe-result
  /// cache, and whether a checkpoint re-plan changed an order.
  std::int64_t probes = 0;
  std::int64_t probe_skips = 0;
  std::int64_t probe_cache_hits = 0;
  std::int64_t plan_replans = 0;
  /// Cache content after replacement.
  const std::vector<StreamTuple>* cache = nullptr;
  /// This step's arrivals, one per stream.
  const std::vector<StreamTuple>* arrivals = nullptr;
  /// Ids the policy retained, in policy order.
  const std::vector<TupleId>* retained = nullptr;
};

/// Interface for run instrumentation. Observers are invoked in attachment
/// order; they must not mutate engine state.
class StepObserver {
 public:
  virtual ~StepObserver() = default;
  virtual void OnRunBegin(const EngineRunView& run) { (void)run; }
  virtual void OnStep(const EngineStepView& step) { (void)step; }
  virtual void OnRunEnd(const EngineRunView& run) { (void)run; }

  /// Observer-compatibility query for batched multi-step execution: an
  /// observer returning true promises its OnStep reads only the scalar
  /// fields of EngineStepView (now / produced / counted / num_candidates /
  /// the probe-plan counters) and tolerates deferred delivery — engines running batched steps
  /// (ShardedStreamEngine) buffer such views and deliver them, in order,
  /// at batch boundaries with the pointer fields null. The default false
  /// keeps the classic protocol: OnStep fires inside the step with every
  /// pointer valid. Deferral never changes what is delivered, only when.
  virtual bool AllowsBatchedSteps() const { return false; }
};

/// Collects EngineTelemetry (peak candidate set, step count, wall time).
/// The façades attach one to every run.
class PerfObserver final : public StepObserver {
 public:
  void OnRunBegin(const EngineRunView& run) override;
  void OnStep(const EngineStepView& step) override;
  void OnRunEnd(const EngineRunView& run) override;
  /// Telemetry is pure scalar aggregation, so deferred delivery yields
  /// identical results (run_ns brackets the whole run either way).
  bool AllowsBatchedSteps() const override { return true; }

  const EngineTelemetry& telemetry() const { return telemetry_; }

 private:
  EngineTelemetry telemetry_;
  Stopwatch stopwatch_;
};

/// Appends, per step, the fraction of cache slots holding tuples of
/// `stream` (empty cache counts as 0). Replaces JoinSimulator's old
/// `track_cache_composition` option; Figures 14, 17 and 18 attach it with
/// stream 0 (= R).
class CacheCompositionObserver final : public StepObserver {
 public:
  /// `out` is not owned and must outlive the run.
  CacheCompositionObserver(int stream, std::vector<double>* out)
      : stream_(stream), out_(out) {}

  void OnStep(const EngineStepView& step) override;

 private:
  int stream_;
  std::vector<double>* out_;
};

/// Re-checks the engine's own replacement invariants from outside the
/// loop: capacity bound, unique ids, streams within topology range,
/// retained ⊆ candidates. The engine attaches one automatically when the
/// build enables SJOIN_VALIDATE; tests can attach it explicitly.
class ValidationObserver final : public StepObserver {
 public:
  void OnRunBegin(const EngineRunView& run) override;
  void OnStep(const EngineStepView& step) override;

 private:
  std::size_t capacity_ = 0;
  int num_streams_ = 0;
};

/// One observed (step, tuple, score) triple.
struct ScoreSample {
  Time step = 0;
  TupleId id = 0;
  double score = 0.0;
};

/// Bridges ScoredPolicy's score-observer hook into the observer chain: on
/// OnRunBegin it installs a recorder on the policy, and it timestamps each
/// score with the step being decided. Score callbacks for the decision at
/// time t fire between OnStep(t-1) and OnStep(t), so the recorder labels
/// them with the step counter *before* it is advanced by OnStep.
class ScoreTraceObserver final : public StepObserver {
 public:
  /// `policy` is not owned; its score observer is replaced for the run
  /// and cleared at OnRunEnd.
  explicit ScoreTraceObserver(ScoredPolicy* policy) : policy_(policy) {}

  void OnRunBegin(const EngineRunView& run) override;
  void OnStep(const EngineStepView& step) override;
  void OnRunEnd(const EngineRunView& run) override;

  const std::vector<ScoreSample>& samples() const { return samples_; }

 private:
  ScoredPolicy* policy_;
  std::vector<ScoreSample> samples_;
  Time current_step_ = 0;
};

}  // namespace sjoin

#endif  // SJOIN_ENGINE_STEP_OBSERVER_H_
