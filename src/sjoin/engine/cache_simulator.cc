#include "sjoin/engine/cache_simulator.h"

#include "sjoin/common/check.h"
#include "sjoin/engine/reduction.h"
#include "sjoin/engine/sharded_stream_engine.h"

namespace sjoin {
namespace {

/// Shared tail of Run / RunJoinPolicy: drive the transformed streams
/// through the engine and translate result counts back into hit/miss
/// accounting (Theorem 1: one result tuple per hit, and only hits produce
/// results — supply tuples never join anything but their own next
/// reference).
CacheRunResult RunReduced(const CacheSimulator::Options& options,
                          const CachingReduction& reduction,
                          ReplacementPolicy& policy) {
  ShardedStreamEngine engine(StreamTopology::Binary(),
                             {.capacity = options.capacity,
                              .warmup = options.warmup,
                              .window = options.window,
                              .shards = options.shards,
                              .threads = options.threads,
                              .pin_threads = options.pin_threads,
                              .pool = options.pool,
                              .adaptive = {.enabled = options.adaptive_shards,
                                           .interval =
                                               options.adaptive_interval}});
  BinaryPolicyAdapter adapter(&policy);
  PerfObserver perf;
  EngineRunResult run = engine.Run(
      {&reduction.r_stream(), &reduction.s_stream()}, adapter, {&perf});

  CacheRunResult result;
  result.hits = run.total_results;
  result.counted_hits = run.counted_results;
  const Time len = static_cast<Time>(reduction.references().size());
  const Time counted_steps =
      len > options.warmup ? len - options.warmup : 0;
  result.misses = len - result.hits;
  result.counted_misses = counted_steps - result.counted_hits;
  result.telemetry = perf.telemetry();
  return result;
}

}  // namespace

CacheSimulator::CacheSimulator(Options options) : options_(options) {
  SJOIN_CHECK_GE(options_.capacity, 1u);
  SJOIN_CHECK_GE(options_.warmup, 0);
  if (options_.window.has_value()) SJOIN_CHECK_GE(*options_.window, 0);
  SJOIN_CHECK_GE(options_.shards, 1);
}

CacheRunResult CacheSimulator::Run(const std::vector<Value>& references,
                                   CachingPolicy& policy) const {
  CachingReduction reduction(references);
  ReductionJoinPolicy join_policy(&reduction, &policy);
  return RunReduced(options_, reduction, join_policy);
}

CacheRunResult CacheSimulator::RunJoinPolicy(
    const std::vector<Value>& references, ReplacementPolicy& policy) const {
  CachingReduction reduction(references);
  return RunReduced(options_, reduction, policy);
}

}  // namespace sjoin
