#include "sjoin/engine/cache_simulator.h"

#include <algorithm>
#include <unordered_set>

#include "sjoin/common/check.h"
#include "sjoin/common/validate.h"
#include "sjoin/stochastic/stream_history.h"

namespace sjoin {

CacheSimulator::CacheSimulator(Options options) : options_(options) {
  SJOIN_CHECK_GE(options_.capacity, 1u);
  SJOIN_CHECK_GE(options_.warmup, 0);
}

CacheRunResult CacheSimulator::Run(const std::vector<Value>& references,
                                   CachingPolicy& policy) const {
  policy.Reset();

  CacheRunResult result;
  std::vector<Value> cache;
  cache.reserve(options_.capacity);
  StreamHistory history;

  for (Time t = 0; t < static_cast<Time>(references.size()); ++t) {
    Value v = references[static_cast<std::size_t>(t)];
    history.Append(v);
    bool hit = std::find(cache.begin(), cache.end(), v) != cache.end();
    if (hit) {
      ++result.hits;
      if (t >= options_.warmup) ++result.counted_hits;
    } else {
      ++result.misses;
      if (t >= options_.warmup) ++result.counted_misses;
    }

    CachingContext ctx;
    ctx.now = t;
    ctx.capacity = options_.capacity;
    ctx.cached = &cache;
    ctx.referenced = v;
    ctx.hit = hit;
    ctx.history = &history;
    policy.Observe(ctx);

    if (!hit) {
      std::vector<Value> retained = policy.SelectRetained(ctx);
      SJOIN_CHECK_LE(retained.size(), options_.capacity);
      std::unordered_set<Value> allowed(cache.begin(), cache.end());
      allowed.insert(v);
      std::unordered_set<Value> seen;
      for (Value kept : retained) {
        SJOIN_CHECK_MSG(allowed.count(kept) > 0,
                        "policy retained a value that is not a candidate");
        SJOIN_CHECK_MSG(seen.insert(kept).second,
                        "policy retained the same value twice");
      }
      cache = std::move(retained);
    }

    if constexpr (kValidationEnabled) {
      SJOIN_VALIDATE(cache.size() <= options_.capacity);
      std::unordered_set<Value> unique(cache.begin(), cache.end());
      SJOIN_VALIDATE_MSG(unique.size() == cache.size(),
                         "cache holds duplicate values");
    }
  }
  return result;
}

}  // namespace sjoin
