#ifndef SJOIN_ENGINE_CACHING_POLICY_H_
#define SJOIN_ENGINE_CACHING_POLICY_H_

#include <vector>

#include "sjoin/common/types.h"
#include "sjoin/stochastic/stream_history.h"

/// \file
/// The replacement-decision interface for the caching problem (Section 2):
/// a reference stream joins a database relation; the cache holds database
/// tuples (at most one per join attribute value); the goal is to maximize
/// hits.

namespace sjoin {

/// Step context for a caching decision.
struct CachingContext {
  /// Time of the current reference.
  Time now = 0;
  /// Cache capacity.
  std::size_t capacity = 0;
  /// Join attribute values of the cached database tuples.
  const std::vector<Value>* cached = nullptr;
  /// The value referenced at `now`. On a miss the joining database tuple
  /// has been demand-fetched and is a candidate for caching.
  Value referenced = 0;
  /// True if `referenced` was in the cache (no replacement is required, but
  /// the policy is still notified so it can update recency/frequency state).
  bool hit = false;
  /// Observed reference stream, inclusive of time `now`.
  const StreamHistory* history = nullptr;
};

/// A cache replacement policy for the caching problem.
class CachingPolicy {
 public:
  virtual ~CachingPolicy() = default;

  /// Clears per-run state.
  virtual void Reset() {}

  /// On a miss: returns the values to retain, a subset of
  /// ctx.cached ∪ {ctx.referenced} of size <= ctx.capacity (the fetched
  /// tuple may be left uncached). On a hit the returned set must equal the
  /// cached set; the default simulator only calls this on misses but still
  /// calls Observe() on every reference.
  virtual std::vector<Value> SelectRetained(const CachingContext& ctx) = 0;

  /// Notification of every reference (hit or miss) before any replacement
  /// decision; lets stateful policies (LRU, LFU) update bookkeeping.
  virtual void Observe(const CachingContext& ctx) { (void)ctx; }

  virtual const char* name() const = 0;
};

}  // namespace sjoin

#endif  // SJOIN_ENGINE_CACHING_POLICY_H_
