#include "sjoin/engine/stream_engine.h"

#include <algorithm>

#include "sjoin/common/check.h"
#include "sjoin/common/validate.h"
#include "sjoin/engine/probe_planner.h"

namespace sjoin {

StreamTopology::StreamTopology(int num_streams,
                               std::vector<std::pair<int, int>> join_edges)
    : num_streams_(num_streams),
      join_edges_(std::move(join_edges)),
      partners_(static_cast<std::size_t>(num_streams)),
      joins_(static_cast<std::size_t>(num_streams),
             std::vector<char>(static_cast<std::size_t>(num_streams), 0)) {
  SJOIN_CHECK_GE(num_streams_, 2);
  SJOIN_CHECK(!join_edges_.empty());
  for (const auto& [a, b] : join_edges_) {
    SJOIN_CHECK_GE(a, 0);
    SJOIN_CHECK_LT(a, num_streams_);
    SJOIN_CHECK_GE(b, 0);
    SJOIN_CHECK_LT(b, num_streams_);
    SJOIN_CHECK_NE(a, b);
    SJOIN_CHECK_MSG(joins_[static_cast<std::size_t>(a)]
                          [static_cast<std::size_t>(b)] == 0,
                    "duplicate or mirrored join edge would double-count "
                    "every match on it");
    partners_[static_cast<std::size_t>(a)].push_back(b);
    partners_[static_cast<std::size_t>(b)].push_back(a);
    joins_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = 1;
    joins_[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = 1;
  }
}

StreamTopology StreamTopology::Binary() {
  return StreamTopology(2, {{0, 1}});
}

const std::vector<int>& StreamTopology::PartnersOf(int stream) const {
  SJOIN_CHECK_GE(stream, 0);
  SJOIN_CHECK_LT(stream, num_streams_);
  return partners_[static_cast<std::size_t>(stream)];
}

StreamEngine::StreamEngine(StreamTopology topology, Options options)
    : topology_(std::move(topology)), options_(options) {
  SJOIN_CHECK_GE(options_.capacity, 1u);
  SJOIN_CHECK_GE(options_.warmup, 0);
  if (options_.window.has_value()) SJOIN_CHECK_GE(*options_.window, 0);
  const auto n = static_cast<std::size_t>(topology_.num_streams());
  cache_.reserve(options_.capacity);
  new_cache_.reserve(options_.capacity);
  arrivals_.reserve(n);
  candidates_.reserve(options_.capacity + n);
  retained_set_.reserve(options_.capacity + n);
}

EngineRunResult StreamEngine::Run(
    const std::vector<const std::vector<Value>*>& streams,
    EnginePolicy& policy, const std::vector<StepObserver*>& observers) {
  const int n = topology_.num_streams();
  SJOIN_CHECK_EQ(static_cast<int>(streams.size()), n);
  for (const std::vector<Value>* stream : streams) {
    SJOIN_CHECK(stream != nullptr);
  }
  const Time len = static_cast<Time>(streams[0]->size());
  for (const std::vector<Value>* stream : streams) {
    SJOIN_CHECK_EQ(static_cast<Time>(stream->size()), len);
  }
  policy.Reset();

  const PartitionMap* partitions =
      options_.partitions != nullptr ? options_.partitions
                                     : &single_partition_;
  const std::size_t num_partitions = partitions->num_partitions();
  SJOIN_CHECK_GE(num_partitions, 1u);

  cache_.clear();
  histories_.assign(static_cast<std::size_t>(n), StreamHistory());

  // Large caches probe arrivals against per-(partition, stream)
  // value -> count indexes of the cached tuples, maintained with the <= N
  // insertions and evictions a step can make, instead of scanning the
  // whole cache. An arrival only probes its own value's partition, which
  // is the seam a sharded cache exploits. Windowed runs expire tuples by
  // age, which the value counts cannot see, so they keep the linear
  // probe; so do tiny caches, where the scan is cheaper.
  const bool use_value_index = !options_.window.has_value() &&
                               options_.capacity >= kValueIndexMinCapacity;
  if (use_value_index) {
    value_index_.assign(
        num_partitions,
        std::vector<std::unordered_map<Value, std::int64_t>>(
            static_cast<std::size_t>(n)));
  } else {
    value_index_.clear();
  }

  // Probe planning (engine/probe_planner.h): probe order, short-circuits
  // and the (partner, value) probe-result memo are cost-only, so the
  // planned Phase 1 below produces the same integer sum as the naive loop
  // in any mode. The memo survives across steps only when no window can
  // expire tuples behind its back.
  ProbePlanner* planner = options_.probe_planner;
  if (planner != nullptr) {
    planner->BeginRun(topology_,
                      /*memo_across_steps=*/!options_.window.has_value());
    stream_counts_.assign(static_cast<std::size_t>(n), 0);
  }

  EngineRunView run_view;
  run_view.topology = &topology_;
  run_view.capacity = options_.capacity;
  run_view.warmup = options_.warmup;
  run_view.window = options_.window;
  run_view.length = len;
  for (StepObserver* observer : observers) observer->OnRunBegin(run_view);

  EngineRunResult result;
  for (Time t = 0; t < len; ++t) {
    arrivals_.clear();
    for (int s = 0; s < n; ++s) {
      arrivals_.push_back(
          {StreamTupleIdAt(n, s, t), s,
           (*streams[static_cast<std::size_t>(s)])
               [static_cast<std::size_t>(t)],
           t});
    }

    // Phase 1: arrivals join cached tuples of partner streams. Joins
    // among same-step arrivals happen regardless of caching and are
    // excluded, as in the paper.
    std::int64_t produced = 0;
    if (planner != nullptr) {
      planner->BeginStep(t);
      for (const StreamTuple& arrival : arrivals_) {
        for (int partner : planner->PlanFor(arrival.stream)) {
          if (stream_counts_[static_cast<std::size_t>(partner)] == 0) {
            planner->ObserveProbe(arrival.stream, partner, 0,
                                  ProbeKind::kSkipped);
            continue;
          }
          std::int64_t matches = 0;
          if (planner->LookupCount(partner, arrival.value, &matches)) {
            planner->ObserveProbe(arrival.stream, partner, matches,
                                  ProbeKind::kMemoHit);
          } else {
            if (use_value_index) {
              const auto& index =
                  value_index_[partitions->PartitionOf(arrival.value)]
                              [static_cast<std::size_t>(partner)];
              auto it = index.find(arrival.value);
              if (it != index.end()) matches = it->second;
            } else {
              for (const StreamTuple& cached : cache_) {
                if (cached.stream == partner &&
                    cached.value == arrival.value &&
                    InWindow(cached, t, options_.window)) {
                  ++matches;
                }
              }
            }
            planner->StoreCount(partner, arrival.value, matches);
            planner->ObserveProbe(arrival.stream, partner, matches,
                                  ProbeKind::kEvaluated);
          }
          produced += matches;
        }
      }
    } else if (use_value_index) {
      for (const StreamTuple& arrival : arrivals_) {
        const auto& shard = value_index_[partitions->PartitionOf(
            arrival.value)];
        for (int partner : topology_.PartnersOf(arrival.stream)) {
          const auto& index = shard[static_cast<std::size_t>(partner)];
          auto it = index.find(arrival.value);
          if (it != index.end()) produced += it->second;
        }
      }
    } else {
      for (const StreamTuple& cached : cache_) {
        if (!InWindow(cached, t, options_.window)) continue;
        for (const StreamTuple& arrival : arrivals_) {
          if (!topology_.Joins(cached.stream, arrival.stream)) continue;
          if (cached.value == arrival.value) ++produced;
        }
      }
    }
    result.total_results += produced;
    const bool counted = t >= options_.warmup;
    if (counted) result.counted_results += produced;

    // Phase 2: the policy picks the new cache content.
    for (int s = 0; s < n; ++s) {
      histories_[static_cast<std::size_t>(s)].Append(
          arrivals_[static_cast<std::size_t>(s)].value);
    }
    EngineContext ctx;
    ctx.now = t;
    ctx.capacity = options_.capacity;
    ctx.cached = &cache_;
    ctx.arrivals = &arrivals_;
    ctx.histories = &histories_;
    ctx.window = options_.window;
    std::vector<TupleId> retained = policy.SelectRetained(ctx);
    SJOIN_CHECK_LE(retained.size(), options_.capacity);

    candidates_.clear();
    for (const StreamTuple& tuple : cache_) {
      candidates_.emplace(tuple.id, tuple);
    }
    for (const StreamTuple& tuple : arrivals_) {
      candidates_.emplace(tuple.id, tuple);
    }
    const std::size_t num_candidates = candidates_.size();

    new_cache_.clear();
    retained_set_.clear();
    for (TupleId id : retained) {
      auto it = candidates_.find(id);
      SJOIN_CHECK_MSG(it != candidates_.end(),
                      "policy retained a tuple that is not a candidate");
      SJOIN_CHECK_MSG(retained_set_.insert(id).second,
                      "policy retained the same tuple twice");
      new_cache_.push_back(it->second);
    }

    if (use_value_index || planner != nullptr) {
      for (const StreamTuple& tuple : cache_) {
        if (retained_set_.contains(tuple.id)) continue;  // Still cached.
        if (use_value_index) {
          auto& index = value_index_[partitions->PartitionOf(tuple.value)]
                                    [static_cast<std::size_t>(tuple.stream)];
          auto it = index.find(tuple.value);
          if (--it->second == 0) index.erase(it);
        }
        if (planner != nullptr) {
          --stream_counts_[static_cast<std::size_t>(tuple.stream)];
          planner->OnCacheChange(tuple.stream, tuple.value);
        }
      }
      for (const StreamTuple& tuple : arrivals_) {
        if (retained_set_.contains(tuple.id)) {
          if (use_value_index) {
            ++value_index_[partitions->PartitionOf(tuple.value)]
                          [static_cast<std::size_t>(tuple.stream)]
                          [tuple.value];
          }
          if (planner != nullptr) {
            ++stream_counts_[static_cast<std::size_t>(tuple.stream)];
            planner->OnCacheChange(tuple.stream, tuple.value);
          }
        }
      }
    }
    cache_.swap(new_cache_);

    if constexpr (kValidationEnabled) {
      SJOIN_VALIDATE(cache_.size() <= options_.capacity);
      for (const StreamTuple& tuple : cache_) {
        SJOIN_VALIDATE_MSG(tuple.stream >= 0 && tuple.stream < n,
                           "cached tuple has an out-of-range stream");
      }
      if (use_value_index) {
        // The incrementally-maintained value -> count indexes must match
        // a from-scratch recount of the cache.
        decltype(value_index_) recount(
            num_partitions,
            std::vector<std::unordered_map<Value, std::int64_t>>(
                static_cast<std::size_t>(n)));
        for (const StreamTuple& tuple : cache_) {
          ++recount[partitions->PartitionOf(tuple.value)]
                   [static_cast<std::size_t>(tuple.stream)][tuple.value];
        }
        SJOIN_VALIDATE_MSG(recount == value_index_,
                           "value index out of sync with cache contents");
      }
      if (planner != nullptr) {
        std::vector<std::int64_t> recount(static_cast<std::size_t>(n), 0);
        for (const StreamTuple& tuple : cache_) {
          ++recount[static_cast<std::size_t>(tuple.stream)];
        }
        SJOIN_VALIDATE_MSG(recount == stream_counts_,
                           "per-stream counts out of sync with cache");
        // Wherever the probe memo still holds an entry after the commit's
        // invalidations, it must equal a fresh count of the cache
        // (cross-step entries survive only in unwindowed runs, where age
        // cannot expire tuples behind the memo's back).
        if (!options_.window.has_value()) {
          for (const StreamTuple& tuple : cache_) {
            std::int64_t memoized = 0;
            if (!planner->LookupCount(tuple.stream, tuple.value,
                                      &memoized)) {
              continue;
            }
            std::int64_t fresh = 0;
            for (const StreamTuple& other : cache_) {
              if (other.stream == tuple.stream &&
                  other.value == tuple.value) {
                ++fresh;
              }
            }
            SJOIN_VALIDATE_MSG(memoized == fresh,
                               "probe memo out of sync with cache");
          }
        }
      }
    }

    EngineStepView step_view;
    step_view.now = t;
    step_view.produced = produced;
    step_view.counted = counted;
    step_view.num_candidates = num_candidates;
    if (planner != nullptr) {
      const ProbePlanStats& plan = planner->step_stats();
      step_view.probes = plan.probes;
      step_view.probe_skips = plan.skipped;
      step_view.probe_cache_hits = plan.cache_hits;
      step_view.plan_replans = plan.replans;
    }
    step_view.cache = &cache_;
    step_view.arrivals = &arrivals_;
    step_view.retained = &retained;
    for (StepObserver* observer : observers) observer->OnStep(step_view);
  }
  for (StepObserver* observer : observers) observer->OnRunEnd(run_view);
  return result;
}

void BinaryPolicyAdapter::Reset() { policy_->Reset(); }

void BinaryPolicyAdapter::BuildBinaryContext(const EngineContext& ctx) {
  cached_.clear();
  arrivals_.clear();
  for (const StreamTuple& tuple : *ctx.cached) {
    cached_.push_back({tuple.id, static_cast<StreamSide>(tuple.stream),
                       tuple.value, tuple.arrival});
  }
  for (const StreamTuple& tuple : *ctx.arrivals) {
    arrivals_.push_back({tuple.id, static_cast<StreamSide>(tuple.stream),
                         tuple.value, tuple.arrival});
  }
  binary_ctx_.now = ctx.now;
  binary_ctx_.capacity = ctx.capacity;
  binary_ctx_.cached = &cached_;
  binary_ctx_.arrivals = &arrivals_;
  binary_ctx_.history_r = &(*ctx.histories)[0];
  binary_ctx_.history_s = &(*ctx.histories)[1];
  binary_ctx_.window = ctx.window;
}

std::vector<TupleId> BinaryPolicyAdapter::SelectRetained(
    const EngineContext& ctx) {
  BuildBinaryContext(ctx);
  return policy_->SelectRetained(binary_ctx_);
}

EngineShardScoring* BinaryPolicyAdapter::shard_scoring() {
  binary_shard_ = policy_->shard_scoring();
  return binary_shard_ != nullptr ? this : nullptr;
}

bool BinaryPolicyAdapter::ShardBeginStep(const EngineContext& ctx,
                                         std::vector<TupleId>* decided) {
  BuildBinaryContext(ctx);
  return binary_shard_->ShardBeginStep(binary_ctx_, decided);
}

std::unique_ptr<ShardScratch> BinaryPolicyAdapter::MakeShardScratch() {
  return binary_shard_->MakeShardScratch();
}

std::optional<ShardKey> BinaryPolicyAdapter::ShardScoreCached(
    const StreamTuple& tuple, const EngineContext& ctx,
    ShardScratch* scratch) {
  (void)ctx;  // binary_ctx_ carries the step context.
  Tuple binary{tuple.id, static_cast<StreamSide>(tuple.stream), tuple.value,
               tuple.arrival};
  return binary_shard_->ShardScoreCached(binary, binary_ctx_, scratch);
}

std::optional<ShardKey> BinaryPolicyAdapter::ShardScoreArrival(
    const StreamTuple& tuple, const EngineContext& ctx) {
  (void)ctx;
  Tuple binary{tuple.id, static_cast<StreamSide>(tuple.stream), tuple.value,
               tuple.arrival};
  return binary_shard_->ShardScoreArrival(binary, binary_ctx_);
}

void BinaryPolicyAdapter::ShardEndStep(const EngineContext& ctx,
                                       const std::vector<TupleId>& retained,
                                       const std::vector<TupleId>& evicted) {
  (void)ctx;
  binary_shard_->ShardEndStep(binary_ctx_, retained, evicted);
}

}  // namespace sjoin
