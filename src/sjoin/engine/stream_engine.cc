#include "sjoin/engine/stream_engine.h"

#include <algorithm>

#include "sjoin/common/check.h"
#include "sjoin/common/validate.h"
#include "sjoin/engine/probe_planner.h"
#include "sjoin/engine/scoring_batch.h"

namespace sjoin {

StreamTopology::StreamTopology(int num_streams,
                               std::vector<std::pair<int, int>> join_edges)
    : num_streams_(num_streams),
      join_edges_(std::move(join_edges)),
      partners_(static_cast<std::size_t>(num_streams)),
      joins_(static_cast<std::size_t>(num_streams),
             std::vector<char>(static_cast<std::size_t>(num_streams), 0)) {
  SJOIN_CHECK_GE(num_streams_, 2);
  SJOIN_CHECK(!join_edges_.empty());
  for (const auto& [a, b] : join_edges_) {
    SJOIN_CHECK_GE(a, 0);
    SJOIN_CHECK_LT(a, num_streams_);
    SJOIN_CHECK_GE(b, 0);
    SJOIN_CHECK_LT(b, num_streams_);
    SJOIN_CHECK_NE(a, b);
    SJOIN_CHECK_MSG(joins_[static_cast<std::size_t>(a)]
                          [static_cast<std::size_t>(b)] == 0,
                    "duplicate or mirrored join edge would double-count "
                    "every match on it");
    partners_[static_cast<std::size_t>(a)].push_back(b);
    partners_[static_cast<std::size_t>(b)].push_back(a);
    joins_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = 1;
    joins_[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = 1;
  }
}

StreamTopology StreamTopology::Binary() {
  return StreamTopology(2, {{0, 1}});
}

const std::vector<int>& StreamTopology::PartnersOf(int stream) const {
  SJOIN_CHECK_GE(stream, 0);
  SJOIN_CHECK_LT(stream, num_streams_);
  return partners_[static_cast<std::size_t>(stream)];
}

namespace {

/// Default partition map for sessions that configure none. A process-wide
/// constant (SinglePartition is stateless), so sessions stay portable
/// across engines instead of dangling on the engine that opened them.
const PartitionMap& SharedSinglePartition() {
  static const SinglePartition kSingle;
  return kSingle;
}

}  // namespace

StreamEngine::StreamEngine(StreamTopology topology, Options options)
    : topology_(std::move(topology)), options_(options) {
  SJOIN_CHECK_GE(options_.capacity, 1u);
  SJOIN_CHECK_GE(options_.warmup, 0);
  if (options_.window.has_value()) SJOIN_CHECK_GE(*options_.window, 0);
  const auto n = static_cast<std::size_t>(topology_.num_streams());
  new_cache_.reserve(options_.capacity);
  arrivals_.reserve(n);
  candidates_.reserve(options_.capacity + n);
  retained_set_.reserve(options_.capacity + n);
}

EngineRunResult StreamEngine::Run(
    const std::vector<const std::vector<Value>*>& streams,
    EnginePolicy& policy, const std::vector<StepObserver*>& observers) {
  const int n = topology_.num_streams();
  SJOIN_CHECK_EQ(static_cast<int>(streams.size()), n);
  for (const std::vector<Value>* stream : streams) {
    SJOIN_CHECK(stream != nullptr);
  }
  const Time len = static_cast<Time>(streams[0]->size());
  for (const std::vector<Value>* stream : streams) {
    SJOIN_CHECK_EQ(static_cast<Time>(stream->size()), len);
  }
  if (run_session_ == nullptr) {
    run_session_ = std::make_unique<SessionState>();
  }
  OpenWithLength(*run_session_, options_, policy, observers, len);
  Advance(*run_session_, streams);
  return Close(*run_session_);
}

void StreamEngine::Open(SessionState& session, const Options& options,
                        EnginePolicy& policy,
                        std::vector<StepObserver*> observers) {
  OpenWithLength(session, options, policy, std::move(observers),
                 /*known_length=*/-1);
}

void StreamEngine::OpenWithLength(SessionState& session,
                                  const Options& options,
                                  EnginePolicy& policy,
                                  std::vector<StepObserver*> observers,
                                  Time known_length) {
  SJOIN_CHECK_MSG(!session.open, "Open on a session that is already open");
  SJOIN_CHECK_GE(options.capacity, 1u);
  SJOIN_CHECK_GE(options.warmup, 0);
  if (options.window.has_value()) SJOIN_CHECK_GE(*options.window, 0);
  const auto n = static_cast<std::size_t>(topology_.num_streams());

  session.open = true;
  session.now = 0;
  session.result = EngineRunResult();
  session.policy = &policy;
  session.observers = std::move(observers);
  session.options = options;
  session.sharded_owner = nullptr;
  session.scoring = nullptr;
  session.batched_observers = false;
  session.batch_scoring = ScoringBatchEnabled() && policy.WantsCandidateBatch();

  policy.Reset();

  session.partitions = options.partitions != nullptr
                           ? options.partitions
                           : &SharedSinglePartition();
  const std::size_t num_partitions = session.partitions->num_partitions();
  SJOIN_CHECK_GE(num_partitions, 1u);

  session.cache.clear();
  session.cache.reserve(options.capacity);
  session.histories.assign(n, StreamHistory());

  // Large caches probe arrivals against per-(partition, stream)
  // value -> count indexes of the cached tuples, maintained with the <= N
  // insertions and evictions a step can make, instead of scanning the
  // whole cache. An arrival only probes its own value's partition, which
  // is the seam a sharded cache exploits. Windowed runs expire tuples by
  // age, which the value counts cannot see, so they keep the linear
  // probe; so do tiny caches, where the scan is cheaper.
  session.use_value_index = !options.window.has_value() &&
                            options.capacity >= kValueIndexMinCapacity;
  if (session.use_value_index) {
    session.value_index.assign(
        num_partitions,
        std::vector<std::unordered_map<Value, std::int64_t>>(n));
  } else {
    session.value_index.clear();
  }

  // Probe planning (engine/probe_planner.h): probe order, short-circuits
  // and the (partner, value) probe-result memo are cost-only, so the
  // planned Phase 1 below produces the same integer sum as the naive loop
  // in any mode. The memo survives across steps only when no window can
  // expire tuples behind its back.
  ProbePlanner* planner = options.probe_planner;
  if (planner != nullptr) {
    planner->BeginRun(topology_,
                      /*memo_across_steps=*/!options.window.has_value());
    session.stream_counts.assign(n, 0);
  }

  EngineRunView run_view;
  run_view.topology = &topology_;
  run_view.capacity = options.capacity;
  run_view.warmup = options.warmup;
  run_view.window = options.window;
  run_view.length = known_length;
  for (StepObserver* observer : session.observers) {
    observer->OnRunBegin(run_view);
  }
}

void StreamEngine::Advance(
    SessionState& session,
    const std::vector<const std::vector<Value>*>& batch) {
  SJOIN_CHECK_MSG(session.open, "Advance on a session that is not open");
  SJOIN_CHECK_MSG(session.sharded_owner == nullptr,
                  "sharded sessions advance through their owning engine");
  const int n = topology_.num_streams();
  SJOIN_CHECK_EQ(static_cast<int>(batch.size()), n);
  for (const std::vector<Value>* stream : batch) {
    SJOIN_CHECK(stream != nullptr);
  }
  const Time steps = static_cast<Time>(batch[0]->size());
  for (const std::vector<Value>* stream : batch) {
    SJOIN_CHECK_EQ(static_cast<Time>(stream->size()), steps);
  }

  const Options& opts = session.options;
  const PartitionMap* partitions = session.partitions;
  const bool use_value_index = session.use_value_index;
  ProbePlanner* planner = opts.probe_planner;
  EnginePolicy& policy = *session.policy;

  for (Time i = 0; i < steps; ++i) {
    const Time t = session.now;
    arrivals_.clear();
    for (int s = 0; s < n; ++s) {
      arrivals_.push_back(
          {StreamTupleIdAt(n, s, t), s,
           (*batch[static_cast<std::size_t>(s)])
               [static_cast<std::size_t>(i)],
           t});
    }

    // Phase 1: arrivals join cached tuples of partner streams. Joins
    // among same-step arrivals happen regardless of caching and are
    // excluded, as in the paper.
    std::int64_t produced = 0;
    if (planner != nullptr) {
      planner->BeginStep(t);
      for (const StreamTuple& arrival : arrivals_) {
        for (int partner : planner->PlanFor(arrival.stream)) {
          if (session.stream_counts[static_cast<std::size_t>(partner)] ==
              0) {
            planner->ObserveProbe(arrival.stream, partner, 0,
                                  ProbeKind::kSkipped);
            continue;
          }
          std::int64_t matches = 0;
          if (planner->LookupCount(partner, arrival.value, &matches)) {
            planner->ObserveProbe(arrival.stream, partner, matches,
                                  ProbeKind::kMemoHit);
          } else {
            if (use_value_index) {
              const auto& index =
                  session.value_index[partitions->PartitionOf(
                      arrival.value)][static_cast<std::size_t>(partner)];
              auto it = index.find(arrival.value);
              if (it != index.end()) matches = it->second;
            } else {
              for (const StreamTuple& cached : session.cache) {
                if (cached.stream == partner &&
                    cached.value == arrival.value &&
                    InWindow(cached, t, opts.window)) {
                  ++matches;
                }
              }
            }
            planner->StoreCount(partner, arrival.value, matches);
            planner->ObserveProbe(arrival.stream, partner, matches,
                                  ProbeKind::kEvaluated);
          }
          produced += matches;
        }
      }
    } else if (use_value_index) {
      for (const StreamTuple& arrival : arrivals_) {
        const auto& shard = session.value_index[partitions->PartitionOf(
            arrival.value)];
        for (int partner : topology_.PartnersOf(arrival.stream)) {
          const auto& index = shard[static_cast<std::size_t>(partner)];
          auto it = index.find(arrival.value);
          if (it != index.end()) produced += it->second;
        }
      }
    } else {
      for (const StreamTuple& cached : session.cache) {
        if (!InWindow(cached, t, opts.window)) continue;
        for (const StreamTuple& arrival : arrivals_) {
          if (!topology_.Joins(cached.stream, arrival.stream)) continue;
          if (cached.value == arrival.value) ++produced;
        }
      }
    }
    session.result.total_results += produced;
    const bool counted = t >= opts.warmup;
    if (counted) session.result.counted_results += produced;

    // Phase 2: the policy picks the new cache content.
    for (int s = 0; s < n; ++s) {
      session.histories[static_cast<std::size_t>(s)].Append(
          arrivals_[static_cast<std::size_t>(s)].value);
    }
    EngineContext ctx;
    ctx.now = t;
    ctx.capacity = opts.capacity;
    ctx.cached = &session.cache;
    ctx.arrivals = &arrivals_;
    ctx.histories = &session.histories;
    ctx.window = opts.window;
    CandidateBatch batch_view;
    if (session.batch_scoring) {
      // Gather the step's candidates into SoA lanes, in the scalar
      // scoring order (cached then arrivals), for the policy's batch
      // kernel. The vectors are engine scratch: capacity + n lanes,
      // allocation-free after warm-up.
      const std::size_t total = session.cache.size() + arrivals_.size();
      batch_values_.resize(total);
      batch_arrivals_.resize(total);
      batch_sides_.resize(total);
      batch_ids_.resize(total);
      std::size_t lane = 0;
      for (const StreamTuple& tuple : session.cache) {
        batch_values_[lane] = tuple.value;
        batch_arrivals_[lane] = tuple.arrival;
        batch_sides_[lane] = static_cast<std::uint8_t>(tuple.stream);
        batch_ids_[lane] = tuple.id;
        ++lane;
      }
      for (const StreamTuple& tuple : arrivals_) {
        batch_values_[lane] = tuple.value;
        batch_arrivals_[lane] = tuple.arrival;
        batch_sides_[lane] = static_cast<std::uint8_t>(tuple.stream);
        batch_ids_[lane] = tuple.id;
        ++lane;
      }
      batch_view.size = total;
      batch_view.values = batch_values_.data();
      batch_view.arrivals = batch_arrivals_.data();
      batch_view.sides = batch_sides_.data();
      batch_view.ids = batch_ids_.data();
      ctx.batch = &batch_view;
    }
    std::vector<TupleId> retained = policy.SelectRetained(ctx);
    SJOIN_CHECK_LE(retained.size(), opts.capacity);

    candidates_.clear();
    for (const StreamTuple& tuple : session.cache) {
      candidates_.emplace(tuple.id, tuple);
    }
    for (const StreamTuple& tuple : arrivals_) {
      candidates_.emplace(tuple.id, tuple);
    }
    const std::size_t num_candidates = candidates_.size();

    new_cache_.clear();
    retained_set_.clear();
    for (TupleId id : retained) {
      auto it = candidates_.find(id);
      SJOIN_CHECK_MSG(it != candidates_.end(),
                      "policy retained a tuple that is not a candidate");
      SJOIN_CHECK_MSG(retained_set_.insert(id).second,
                      "policy retained the same tuple twice");
      new_cache_.push_back(it->second);
    }

    if (use_value_index || planner != nullptr) {
      for (const StreamTuple& tuple : session.cache) {
        if (retained_set_.contains(tuple.id)) continue;  // Still cached.
        if (use_value_index) {
          auto& index =
              session.value_index[partitions->PartitionOf(tuple.value)]
                                 [static_cast<std::size_t>(tuple.stream)];
          auto it = index.find(tuple.value);
          if (--it->second == 0) index.erase(it);
        }
        if (planner != nullptr) {
          --session.stream_counts[static_cast<std::size_t>(tuple.stream)];
          planner->OnCacheChange(tuple.stream, tuple.value);
        }
      }
      for (const StreamTuple& tuple : arrivals_) {
        if (retained_set_.contains(tuple.id)) {
          if (use_value_index) {
            ++session.value_index[partitions->PartitionOf(tuple.value)]
                                 [static_cast<std::size_t>(tuple.stream)]
                                 [tuple.value];
          }
          if (planner != nullptr) {
            ++session
                  .stream_counts[static_cast<std::size_t>(tuple.stream)];
            planner->OnCacheChange(tuple.stream, tuple.value);
          }
        }
      }
    }
    session.cache.swap(new_cache_);

    if constexpr (kValidationEnabled) {
      SJOIN_VALIDATE(session.cache.size() <= opts.capacity);
      for (const StreamTuple& tuple : session.cache) {
        SJOIN_VALIDATE_MSG(tuple.stream >= 0 && tuple.stream < n,
                           "cached tuple has an out-of-range stream");
      }
      if (use_value_index) {
        // The incrementally-maintained value -> count indexes must match
        // a from-scratch recount of the cache.
        decltype(session.value_index) recount(
            partitions->num_partitions(),
            std::vector<std::unordered_map<Value, std::int64_t>>(
                static_cast<std::size_t>(n)));
        for (const StreamTuple& tuple : session.cache) {
          ++recount[partitions->PartitionOf(tuple.value)]
                   [static_cast<std::size_t>(tuple.stream)][tuple.value];
        }
        SJOIN_VALIDATE_MSG(recount == session.value_index,
                           "value index out of sync with cache contents");
      }
      if (planner != nullptr) {
        std::vector<std::int64_t> recount(static_cast<std::size_t>(n), 0);
        for (const StreamTuple& tuple : session.cache) {
          ++recount[static_cast<std::size_t>(tuple.stream)];
        }
        SJOIN_VALIDATE_MSG(recount == session.stream_counts,
                           "per-stream counts out of sync with cache");
        // Wherever the probe memo still holds an entry after the commit's
        // invalidations, it must equal a fresh count of the cache
        // (cross-step entries survive only in unwindowed runs, where age
        // cannot expire tuples behind the memo's back).
        if (!opts.window.has_value()) {
          for (const StreamTuple& tuple : session.cache) {
            std::int64_t memoized = 0;
            if (!planner->LookupCount(tuple.stream, tuple.value,
                                      &memoized)) {
              continue;
            }
            std::int64_t fresh = 0;
            for (const StreamTuple& other : session.cache) {
              if (other.stream == tuple.stream &&
                  other.value == tuple.value) {
                ++fresh;
              }
            }
            SJOIN_VALIDATE_MSG(memoized == fresh,
                               "probe memo out of sync with cache");
          }
        }
      }
    }

    EngineStepView step_view;
    step_view.now = t;
    step_view.produced = produced;
    step_view.counted = counted;
    step_view.num_candidates = num_candidates;
    if (planner != nullptr) {
      const ProbePlanStats& plan = planner->step_stats();
      step_view.probes = plan.probes;
      step_view.probe_skips = plan.skipped;
      step_view.probe_cache_hits = plan.cache_hits;
      step_view.plan_replans = plan.replans;
    }
    step_view.cache = &session.cache;
    step_view.arrivals = &arrivals_;
    step_view.retained = &retained;
    for (StepObserver* observer : session.observers) {
      observer->OnStep(step_view);
    }
    session.now = t + 1;
  }
}

const EngineRunResult& StreamEngine::Drain(
    const SessionState& session) const {
  SJOIN_CHECK_MSG(session.open, "Drain on a session that is not open");
  return session.result;
}

EngineRunResult StreamEngine::Close(SessionState& session) {
  SJOIN_CHECK_MSG(session.open, "Close on a session that is not open");
  SJOIN_CHECK_MSG(session.sharded_owner == nullptr,
                  "sharded sessions close through their owning engine");
  EngineRunView run_view;
  run_view.topology = &topology_;
  run_view.capacity = session.options.capacity;
  run_view.warmup = session.options.warmup;
  run_view.window = session.options.window;
  run_view.length = session.now;
  for (StepObserver* observer : session.observers) {
    observer->OnRunEnd(run_view);
  }
  session.open = false;
  session.policy = nullptr;
  session.observers.clear();
  return session.result;
}

void EngineShardScoring::ShardScoreCachedBatch(const CandidateBatch& batch,
                                               const EngineContext& ctx,
                                               ShardScratch* scratch,
                                               double* score_scratch,
                                               ShardKey* out) {
  (void)score_scratch;
  for (std::size_t i = 0; i < batch.size; ++i) {
    StreamTuple tuple{batch.ids[i], static_cast<int>(batch.sides[i]),
                      batch.values[i], batch.arrivals[i]};
    // Batch-scorable policies never exclude cached tuples, so the
    // per-tuple key is always present.
    out[i] = *ShardScoreCached(tuple, ctx, scratch);
  }
}

void BinaryPolicyAdapter::Reset() { policy_->Reset(); }

void BinaryPolicyAdapter::BuildBinaryContext(const EngineContext& ctx) {
  cached_.clear();
  arrivals_.clear();
  for (const StreamTuple& tuple : *ctx.cached) {
    cached_.push_back({tuple.id, static_cast<StreamSide>(tuple.stream),
                       tuple.value, tuple.arrival});
  }
  for (const StreamTuple& tuple : *ctx.arrivals) {
    arrivals_.push_back({tuple.id, static_cast<StreamSide>(tuple.stream),
                         tuple.value, tuple.arrival});
  }
  binary_ctx_.now = ctx.now;
  binary_ctx_.capacity = ctx.capacity;
  binary_ctx_.cached = &cached_;
  binary_ctx_.arrivals = &arrivals_;
  binary_ctx_.history_r = &(*ctx.histories)[0];
  binary_ctx_.history_s = &(*ctx.histories)[1];
  binary_ctx_.window = ctx.window;
  // The SoA lanes pass through unchanged: stream index == SideIndex for
  // binary topologies, and the mirrors above preserve candidate order.
  binary_ctx_.batch = ctx.batch;
}

std::vector<TupleId> BinaryPolicyAdapter::SelectRetained(
    const EngineContext& ctx) {
  BuildBinaryContext(ctx);
  return policy_->SelectRetained(binary_ctx_);
}

EngineShardScoring* BinaryPolicyAdapter::shard_scoring() {
  binary_shard_ = policy_->shard_scoring();
  return binary_shard_ != nullptr ? this : nullptr;
}

bool BinaryPolicyAdapter::ShardBeginStep(const EngineContext& ctx,
                                         std::vector<TupleId>* decided) {
  BuildBinaryContext(ctx);
  return binary_shard_->ShardBeginStep(binary_ctx_, decided);
}

std::unique_ptr<ShardScratch> BinaryPolicyAdapter::MakeShardScratch() {
  return binary_shard_->MakeShardScratch();
}

std::optional<ShardKey> BinaryPolicyAdapter::ShardScoreCached(
    const StreamTuple& tuple, const EngineContext& ctx,
    ShardScratch* scratch) {
  (void)ctx;  // binary_ctx_ carries the step context.
  Tuple binary{tuple.id, static_cast<StreamSide>(tuple.stream), tuple.value,
               tuple.arrival};
  return binary_shard_->ShardScoreCached(binary, binary_ctx_, scratch);
}

std::optional<ShardKey> BinaryPolicyAdapter::ShardScoreArrival(
    const StreamTuple& tuple, const EngineContext& ctx) {
  (void)ctx;
  Tuple binary{tuple.id, static_cast<StreamSide>(tuple.stream), tuple.value,
               tuple.arrival};
  return binary_shard_->ShardScoreArrival(binary, binary_ctx_);
}

void BinaryPolicyAdapter::ShardEndStep(const EngineContext& ctx,
                                       const std::vector<TupleId>& retained,
                                       const std::vector<TupleId>& evicted) {
  (void)ctx;
  binary_shard_->ShardEndStep(binary_ctx_, retained, evicted);
}

bool BinaryPolicyAdapter::ShardBatchScorable() const {
  return binary_shard_ != nullptr && binary_shard_->ShardBatchScorable();
}

void BinaryPolicyAdapter::ShardScoreCachedBatch(const CandidateBatch& batch,
                                                const EngineContext& ctx,
                                                ShardScratch* scratch,
                                                double* score_scratch,
                                                ShardKey* out) {
  (void)ctx;  // binary_ctx_ carries the step context.
  binary_shard_->ShardScoreCachedBatch(batch, binary_ctx_, scratch,
                                       score_scratch, out);
}

}  // namespace sjoin
