#ifndef SJOIN_ENGINE_SHARDED_STREAM_ENGINE_H_
#define SJOIN_ENGINE_SHARDED_STREAM_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sjoin/common/shard_workers.h"
#include "sjoin/common/thread_pool.h"
#include "sjoin/common/types.h"
#include "sjoin/engine/partition_map.h"
#include "sjoin/engine/replacement_policy.h"
#include "sjoin/engine/step_observer.h"
#include "sjoin/engine/stream_engine.h"
#include "sjoin/engine/stream_tuple.h"
#include "sjoin/stochastic/stream_history.h"

/// \file
/// Intra-run value-domain parallelism over the StreamEngine step loop.
///
/// Equijoins only match equal values, so hashing the value domain onto N
/// shards splits both Phase 1 and the scoring half of Phase 2 into
/// independent per-shard work: an arrival probes exactly the shard its
/// value maps to, and a score-decomposable policy (EngineShardScoring)
/// ranks each shard's cached tuples locally. A deterministic merge of the
/// per-shard sorted runs plus the (serially scored) arrivals then selects
/// the global top-k. Because the merge comparator is the policy's own
/// strict total order, the merged prefix equals the serial engine's sorted
/// prefix — retained sets, result counts, telemetry and observer views are
/// bit-identical to StreamEngine for any shard count and any thread count.
///
/// Execution model (see DESIGN.md §2d): shards are distributed round-robin
/// over a team of persistent ShardWorkers driven by an epoch ticket — one
/// atomic release per parallel section instead of per-step task
/// submission. Per-step scratch (scored runs, merge outputs) comes from
/// each worker's monotonic arena, reset every step, so the scored-step
/// hot loop performs no heap allocation; the pairwise merge cascade runs
/// its independent pairs on the same workers. Observers that declare
/// AllowsBatchedSteps() have their OnStep views buffered and delivered at
/// batch boundaries, letting the engine keep workers hot across a batch.
///
/// Policies that cannot decompose (shard_scoring() == nullptr) or runs
/// with shards <= 1 fall back to a plain StreamEngine behind the same API.

namespace sjoin {

/// StreamEngine with a sharded step loop. Same Run contract as
/// StreamEngine: cheap to Run repeatedly, not concurrently.
class ShardedStreamEngine {
 public:
  /// Skew-adaptive sharding (DESIGN.md §2e). When enabled (and the run is
  /// sharded), the static hash partition is replaced by an
  /// AdaptivePartitionMap: the engine counts candidates scored per
  /// micro-bucket and, every `interval` steps, lets the map's
  /// deterministic rebalancer move range boundaries (coalesce the coldest
  /// adjacent pair, split the hottest range) before migrating cached
  /// tuples to their new shards on a dedicated worker epoch. Join output
  /// is bit-identical to the static and serial engines for any setting
  /// here — the merge order never depends on the partitioning — so these
  /// knobs trade only load balance.
  struct AdaptiveOptions {
    bool enabled = false;
    /// Steps between rebalance checkpoints; >= 1.
    Time interval = 32;
    /// Micro-buckets in the hashed value space (rounded up to a power of
    /// two, at least 4x shards).
    int num_buckets = 256;
    /// Rebalance when max/mean per-shard load exceeds this ratio.
    double imbalance_ratio = 1.5;
  };

  struct Options {
    /// Cache capacity k.
    std::size_t capacity = 10;
    /// Results produced before this time are not counted.
    Time warmup = 0;
    /// Sliding-window length (Section 7); nullopt = regular join.
    std::optional<Time> window;
    /// Value-domain shards. <= 1 runs the serial StreamEngine.
    int shards = 1;
    /// Worker threads for the sharded path. 0 = auto
    /// (min(shards, hardware)); 1 runs every shard inline on the caller;
    /// values above `shards` spawn extra workers that own no shards
    /// (harmless, so a benchmark matrix can sweep threads independently).
    int threads = 0;
    /// Pin spawned workers to CPUs (worker w -> CPU w mod hardware);
    /// Linux only, best effort, never affects results.
    bool pin_threads = false;
    /// Legacy thread-count hint (not owned; may be null). The sharded
    /// step no longer executes on a ThreadPool — persistent per-shard
    /// workers own it — but when `threads` == 0 a configured pool still
    /// caps the worker count at its size, so existing callers keep the
    /// thread budget they configured.
    ThreadPool* pool = nullptr;
    /// Skew-adaptive partitioning; see AdaptiveOptions.
    AdaptiveOptions adaptive;
    /// Runtime probe planning for the serial path (engine/probe_planner.h;
    /// not owned, must outlive every Run). Today every multi-way policy is
    /// serial-only, so this reaches the planner's target workloads; a
    /// genuinely sharded run (score-decomposable policy, shards > 1)
    /// ignores it — per-shard Phase 1 already probes exactly one value's
    /// partition, and its plan stats stay zero.
    ProbePlanner* probe_planner = nullptr;
  };

  ShardedStreamEngine(StreamTopology topology, Options options);

  /// Same contract and observer protocol as StreamEngine::Run. Whether the
  /// run executes sharded is decided here, once, from
  /// `policy.shard_scoring()`; a serial run delegates to an internal
  /// StreamEngine outright (identical results either way). Like the serial
  /// engine, implemented as Open + Advance + Close over a private session.
  EngineRunResult Run(const std::vector<const std::vector<Value>*>& streams,
                      EnginePolicy& policy,
                      const std::vector<StepObserver*>& observers = {});

  // --- Incremental session lifecycle --------------------------------
  //
  // Mirrors StreamEngine's. The serial/sharded decision is taken once,
  // at Open, exactly as in Run(). A serial fallback opens an
  // engine-portable session on the internal StreamEngine (the engine's
  // own capacity/warmup/window apply). A sharded session pins to this
  // engine — the slot, worker and arena structures backing it are
  // engine-resident — and at most one sharded session may be open per
  // engine at a time. Either way, slicing a stream into any pattern of
  // Advance batches reproduces the batch Run bit for bit.

  void Open(SessionState& session, EnginePolicy& policy,
            std::vector<StepObserver*> observers = {});
  void Advance(SessionState& session,
               const std::vector<const std::vector<Value>*>& batch);
  const EngineRunResult& Drain(const SessionState& session) const;
  EngineRunResult Close(SessionState& session);

  /// Why the most recent Run/Open on this engine fell back to the serial
  /// executor; nullptr when it genuinely ran sharded. The fallback is
  /// silent by design (results are identical), so façades surface this
  /// through telemetry instead of letting a sharded benchmark quietly
  /// measure the serial path.
  const char* fallback_reason() const { return fallback_reason_; }

  const StreamTopology& topology() const { return serial_.topology(); }
  const Options& options() const { return options_; }

  /// Worker-team size the sharded path runs with: `threads` when set,
  /// else the configured pool's size capped at `shards`, else
  /// DefaultThreads(shards). 1 when shards <= 1.
  int effective_threads() const;

  /// effective_threads() of a default-constructed engine at `shards`,
  /// without building one (for benchmark metadata).
  static int DefaultThreads(int shards);

  /// Skew/rebalance telemetry of the last Run; all-zero when that run was
  /// not adaptive (serial fallback, shards <= 1, or adaptive disabled).
  const AdaptiveShardStats& adaptive_stats() const { return adaptive_stats_; }

  /// The adaptive map as left by the last adaptive Run — version(),
  /// history() and bounds() back the rerun-determinism tests. Null until
  /// the engine has run adaptively at least once.
  const AdaptivePartitionMap* adaptive_map() const {
    return adaptive_map_.get();
  }

  /// Worker-team telemetry (per-kind epoch counters) for tests; null
  /// before the first sharded run.
  const ShardWorkers* workers() const { return workers_.get(); }

 private:
  /// A retention candidate paired with its policy merge key.
  struct ScoredEntry {
    ShardKey key;
    StreamTuple tuple;
  };

  /// A sorted run entering the merge cascade (arena- or vector-backed).
  struct MergeRun {
    const ScoredEntry* data = nullptr;
    std::size_t size = 0;
  };

  /// One pairwise merge of a cascade level; out has room for both inputs.
  struct MergeJob {
    MergeRun a;
    MergeRun b;
    ScoredEntry* out = nullptr;
  };

  /// One value-domain shard: the slice of the cache whose values hash
  /// here, its Phase-1 index, and this step's scored run. Cache-line
  /// aligned so per-shard writes from different workers never false-share;
  /// the scored/dropped runs live in the owning worker's arena.
  struct alignas(64) ShardSlot {
    std::vector<StreamTuple> cache;
    /// Value -> cached-tuple count, per stream; engaged under the same
    /// criteria as the serial engine's index.
    std::vector<std::unordered_map<Value, std::int64_t>> value_index;
    /// This step's (merge key, tuple) run, sorted best-first. Arena span
    /// carved by the driver before the epoch (capacity cache.size()).
    ScoredEntry* scored = nullptr;
    std::size_t scored_size = 0;
    /// Cached tuples the policy scored as nullopt this step (e.g. the
    /// reduction's dead copy): evicted unconditionally, tracked only for
    /// the index decrement. Arena span, capacity cache.size().
    StreamTuple* dropped = nullptr;
    std::size_t dropped_size = 0;
    std::unique_ptr<ShardScratch> scratch;
    /// Phase-1 results produced by this shard's probes this step.
    std::int64_t produced = 0;
    /// SoA lanes + kernel scratch for batch scoring of this shard's cached
    /// run; arena spans carved with scored/dropped (capacity cache.size())
    /// only when the run batch-scores.
    Value* batch_values = nullptr;
    Time* batch_arrivals = nullptr;
    std::uint8_t* batch_sides = nullptr;
    TupleId* batch_ids = nullptr;
    double* batch_scores = nullptr;
    ShardKey* batch_keys = nullptr;
  };

  /// Pre-epoch driver context handed to the type-erased epoch thunks.
  struct StepEpochContext {
    ShardedStreamEngine* engine = nullptr;
    const EngineContext* ctx = nullptr;
    EngineShardScoring* scoring = nullptr;
    Time now = 0;
    bool use_value_index = false;
  };

  /// The once-per-run (or once-per-Open) executor decision: non-null iff
  /// the policy decomposes and shards > 1. Records fallback_reason_.
  EngineShardScoring* DecideScoring(EnginePolicy& policy);

  /// Sharded-path lifecycle backing both Run and the public session API.
  void OpenSharded(SessionState& session, EnginePolicy& policy,
                   EngineShardScoring& scoring,
                   std::vector<StepObserver*> observers, Time known_length);
  void AdvanceSharded(SessionState& session,
                      const std::vector<const std::vector<Value>*>& batch);
  EngineRunResult CloseSharded(SessionState& session);
  /// Delivers the buffered scalar step views, in order.
  void FlushPendingViews(const std::vector<StepObserver*>& observers);

  /// Worker w's slice of the probe/score epoch: every shard s with
  /// s % workers == w, in shard order.
  void RunShardSlice(const StepEpochContext& step, int worker);
  /// One shard's probes + cached scoring + run sort (worker context).
  void ProcessShard(const StepEpochContext& step, std::size_t shard);
  /// Worker w's slice of a merge-cascade level.
  void RunMergeSlice(int worker);
  static void MergePair(const MergeJob& job);

  /// Type-erased trampolines handed to ShardWorkers::RunEpoch.
  static void ShardsEpochThunk(void* raw, int worker);
  static void MergeEpochThunk(void* raw, int worker);
  static void MigrationEpochThunk(void* raw, int worker);

  /// One rebalance checkpoint: record the window's skew ratios, let the
  /// adaptive map consider a rebalance against the accumulated bucket
  /// loads, migrate on change, zero the window counters.
  void RebalanceCheckpoint(Time now);
  /// Rebuilds every shard's cache slice and Phase-1 index from the merged
  /// global cache after the map moved (one kMigration worker epoch).
  void MigrateSlots();
  /// Worker w's migration slice: rebuild every slot s with
  /// s % workers == w.
  void RunMigrationSlice(int worker);

  /// Sorts a scored run best-first. Shard runs enter nearly sorted (the
  /// commit rebuilds shard caches in merged order, and score advancement
  /// rarely reorders neighbours), so small runs use insertion sort;
  /// larger runs take introsort. Any comparison sort yields the same
  /// unique order — the keys are a strict total order.
  static void SortRun(ScoredEntry* run, std::size_t size);

  std::size_t ShardOf(Value value) const {
    return adaptive_run_ ? adaptive_map_->PartitionOf(value)
                         : partition_.PartitionOf(value);
  }

  /// Sum of growth_events() over the team's arenas (validation hook).
  std::int64_t ArenaGrowthEvents() const;

  Options options_;
  /// Serial engine: fallback executor and the topology/option holder.
  StreamEngine serial_;
  HashPartition partition_;
  /// Why the last Run/Open fell back to serial (static string), or null.
  const char* fallback_reason_ = nullptr;
  /// Guards the engine-resident sharded-run state below: only one sharded
  /// session (Run included) may be open at a time.
  bool sharded_session_open_ = false;
  /// Session backing the sharded path of Run(); reused across calls.
  std::unique_ptr<SessionState> run_session_;
  /// Adaptive range map; constructed lazily on the first adaptive run and
  /// Reset() at the start of every later one (rerun determinism).
  std::unique_ptr<AdaptivePartitionMap> adaptive_map_;
  /// Whether the *current/last* run partitions through adaptive_map_.
  bool adaptive_run_ = false;
  bool run_use_value_index_ = false;
  /// Whether the current/last sharded run scores cached runs through the
  /// policy's batch kernel; decided once at OpenSharded from the
  /// process-wide switch and the scoring's ShardBatchScorable().
  bool run_batch_scoring_ = false;
  /// Candidates scored per micro-bucket since the last checkpoint. Each
  /// bucket belongs to exactly one shard, and each shard to exactly one
  /// worker per epoch, so workers write disjoint counters — sums are
  /// deterministic for any thread count.
  std::vector<std::int64_t> bucket_load_;
  AdaptiveShardStats adaptive_stats_;
  /// Persistent worker team, rebuilt only when the team shape changes;
  /// reused across Run() calls so steady-state runs spawn no threads.
  std::unique_ptr<ShardWorkers> workers_;

  // Sharded-run state, hoisted so the steady state allocates nothing.
  std::vector<ShardSlot> slots_;
  std::vector<StreamTuple> cache_;  // Global cache, merged (serial) order.
  std::vector<StreamTuple> new_cache_;
  std::vector<StreamTuple> arrivals_;
  std::vector<StreamHistory> histories_;
  std::vector<ScoredEntry> arrival_scored_;
  std::vector<TupleId> decided_;
  std::vector<TupleId> retained_;
  std::vector<TupleId> evicted_;  // candidates \ retained, per step.
  // Merge-cascade state: the current level's sorted runs, the next
  // level's, and the level's pairwise jobs (outputs are arena spans).
  std::vector<MergeRun> merge_runs_;
  std::vector<MergeRun> next_runs_;
  std::vector<MergeJob> merge_jobs_;
  // Deferred observer views for batched delivery (scalar fields only).
  std::vector<EngineStepView> pending_views_;
  std::unordered_map<TupleId, StreamTuple> candidates_;
  std::unordered_set<TupleId> retained_set_;
  std::int64_t arena_growth_baseline_ = 0;
};

}  // namespace sjoin

#endif  // SJOIN_ENGINE_SHARDED_STREAM_ENGINE_H_
