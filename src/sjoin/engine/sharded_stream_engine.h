#ifndef SJOIN_ENGINE_SHARDED_STREAM_ENGINE_H_
#define SJOIN_ENGINE_SHARDED_STREAM_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sjoin/common/thread_pool.h"
#include "sjoin/common/types.h"
#include "sjoin/engine/partition_map.h"
#include "sjoin/engine/replacement_policy.h"
#include "sjoin/engine/step_observer.h"
#include "sjoin/engine/stream_engine.h"
#include "sjoin/engine/stream_tuple.h"
#include "sjoin/stochastic/stream_history.h"

/// \file
/// Intra-run value-domain parallelism over the StreamEngine step loop.
///
/// Equijoins only match equal values, so hashing the value domain onto N
/// shards splits both Phase 1 and the scoring half of Phase 2 into
/// independent per-shard work: an arrival probes exactly the shard its
/// value maps to, and a score-decomposable policy (EngineShardScoring)
/// ranks each shard's cached tuples locally. A deterministic merge of the
/// per-shard sorted runs plus the (serially scored) arrivals then selects
/// the global top-k. Because the merge comparator is the policy's own
/// strict total order, the merged prefix equals the serial engine's sorted
/// prefix — retained sets, result counts, telemetry and observer views are
/// bit-identical to StreamEngine for any shard count.
///
/// Policies that cannot decompose (shard_scoring() == nullptr) or runs
/// with shards <= 1 fall back to a plain StreamEngine behind the same API.

namespace sjoin {

/// StreamEngine with a sharded step loop. Same Run contract as
/// StreamEngine: cheap to Run repeatedly, not concurrently.
class ShardedStreamEngine {
 public:
  struct Options {
    /// Cache capacity k.
    std::size_t capacity = 10;
    /// Results produced before this time are not counted.
    Time warmup = 0;
    /// Sliding-window length (Section 7); nullopt = regular join.
    std::optional<Time> window;
    /// Value-domain shards. <= 1 runs the serial StreamEngine.
    int shards = 1;
    /// Worker pool for the per-shard tasks (not owned; must outlive the
    /// engine). nullptr = the engine lazily owns a pool of
    /// min(shards, ThreadPool::DefaultThreads()) threads.
    ThreadPool* pool = nullptr;
  };

  ShardedStreamEngine(StreamTopology topology, Options options);

  /// Same contract and observer protocol as StreamEngine::Run. Whether the
  /// run executes sharded is decided here, once, from
  /// `policy.shard_scoring()`; a serial run delegates to an internal
  /// StreamEngine outright (identical results either way).
  EngineRunResult Run(const std::vector<const std::vector<Value>*>& streams,
                      EnginePolicy& policy,
                      const std::vector<StepObserver*>& observers = {});

  const StreamTopology& topology() const { return serial_.topology(); }
  const Options& options() const { return options_; }

  /// Threads the sharded path runs on: the configured pool's size, or what
  /// a lazily owned pool would get. 1 when shards <= 1.
  int effective_threads() const;

  /// effective_threads() of a default-constructed engine at `shards`,
  /// without building one (for benchmark metadata).
  static int DefaultThreads(int shards);

 private:
  /// A retention candidate paired with its policy merge key.
  struct ScoredEntry {
    ShardKey key;
    StreamTuple tuple;
  };

  /// One value-domain shard: the slice of the cache whose values hash
  /// here, its Phase-1 index, and this step's scored run. Cache-line
  /// aligned so per-shard writes from different workers never false-share.
  struct alignas(64) ShardSlot {
    std::vector<StreamTuple> cache;
    /// Value -> cached-tuple count, per stream; engaged under the same
    /// criteria as the serial engine's index.
    std::vector<std::unordered_map<Value, std::int64_t>> value_index;
    /// This step's (merge key, tuple) run, sorted best-first.
    std::vector<ScoredEntry> scored;
    /// Cached tuples the policy scored as nullopt this step (e.g. the
    /// reduction's dead copy): evicted unconditionally, tracked only for
    /// the index decrement.
    std::vector<StreamTuple> dropped;
    std::unique_ptr<ShardScratch> scratch;
    /// Phase-1 results produced by this shard's probes this step.
    std::int64_t produced = 0;
  };

  EngineRunResult RunSharded(
      const std::vector<const std::vector<Value>*>& streams,
      EnginePolicy& policy, EngineShardScoring& scoring,
      const std::vector<StepObserver*>& observers);

  /// Sorts a scored run best-first. Shard runs enter nearly sorted (the
  /// commit rebuilds shard caches in merged order, and score advancement
  /// rarely reorders neighbours), so small runs use insertion sort;
  /// larger runs take introsort. Any comparison sort yields the same
  /// unique order — the keys are a strict total order.
  static void SortRun(std::vector<ScoredEntry>& run);

  std::size_t ShardOf(Value value) const {
    return partition_.PartitionOf(value);
  }

  Options options_;
  /// Serial engine: fallback executor and the topology/option holder.
  StreamEngine serial_;
  HashPartition partition_;
  std::unique_ptr<ThreadPool> owned_pool_;

  // Sharded-run state, hoisted so the steady state allocates nothing.
  std::vector<ShardSlot> slots_;
  std::vector<StreamTuple> cache_;  // Global cache, merged (serial) order.
  std::vector<StreamTuple> new_cache_;
  std::vector<StreamTuple> arrivals_;
  std::vector<StreamHistory> histories_;
  std::vector<ScoredEntry> arrival_scored_;
  std::vector<TupleId> decided_;
  std::vector<TupleId> retained_;
  std::vector<TupleId> evicted_;  // candidates \ retained, per step.
  // Merge-cascade state: the current level's sorted runs, the next
  // level's, and the reused scratch vectors the pairwise merges write
  // into (pre-sized to the shard count so pointers into it stay stable).
  std::vector<const std::vector<ScoredEntry>*> merge_runs_;
  std::vector<const std::vector<ScoredEntry>*> next_runs_;
  std::vector<std::vector<ScoredEntry>> merge_tmp_;
  std::unordered_map<TupleId, StreamTuple> candidates_;
  std::unordered_set<TupleId> retained_set_;
};

}  // namespace sjoin

#endif  // SJOIN_ENGINE_SHARDED_STREAM_ENGINE_H_
