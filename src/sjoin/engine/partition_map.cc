#include "sjoin/engine/partition_map.h"

#include <algorithm>

#include "sjoin/common/check.h"

namespace sjoin {

AdaptivePartitionMap::AdaptivePartitionMap(Options options)
    : options_(options) {
  if (options_.partitions < 1) options_.partitions = 1;
  const auto partitions = static_cast<std::size_t>(options_.partitions);

  // Power-of-two bucket count, at least 4 buckets per initial range so the
  // first few splits have somewhere to cut.
  std::size_t buckets = options_.num_buckets > 0
                            ? static_cast<std::size_t>(options_.num_buckets)
                            : std::size_t{1};
  buckets = std::max(buckets, 4 * partitions);
  std::size_t rounded = 1;
  while (rounded < buckets) rounded <<= 1;
  bucket_mask_ = rounded - 1;

  initial_bounds_.resize(partitions + 1);
  for (std::size_t p = 0; p <= partitions; ++p) {
    initial_bounds_[p] = p * rounded / partitions;
  }
  Reset();
}

void AdaptivePartitionMap::Reset() {
  bounds_ = initial_bounds_;
  version_ = 0;
  history_.clear();
  RebuildBucketTable();
}

void AdaptivePartitionMap::RebuildBucketTable() {
  bucket_to_partition_.assign(num_buckets(), 0);
  for (std::size_t p = 0; p + 1 < bounds_.size(); ++p) {
    for (std::size_t b = bounds_[p]; b < bounds_[p + 1]; ++b) {
      bucket_to_partition_[b] = p;
    }
  }
}

bool AdaptivePartitionMap::Rebalance(
    const std::vector<std::int64_t>& bucket_load, Time now) {
  SJOIN_CHECK_EQ(bucket_load.size(), num_buckets());
  const std::size_t partitions = num_partitions();
  if (partitions < 2) return false;

  range_load_.assign(partitions, 0);
  std::int64_t total = 0;
  for (std::size_t p = 0; p < partitions; ++p) {
    std::int64_t sum = 0;
    for (std::size_t b = bounds_[p]; b < bounds_[p + 1]; ++b) {
      sum += bucket_load[b];
    }
    range_load_[p] = sum;
    total += sum;
  }
  if (total <= 0) return false;

  // Hottest range; lowest index wins ties so the decision is a pure
  // function of the loads.
  std::size_t hot = 0;
  for (std::size_t p = 1; p < partitions; ++p) {
    if (range_load_[p] > range_load_[hot]) hot = p;
  }
  const double mean = static_cast<double>(total) / partitions;
  if (static_cast<double>(range_load_[hot]) <= options_.imbalance_ratio * mean) {
    return false;
  }

  // Coldest adjacent pair that excludes the hottest range. If its combined
  // load is still below the hot load, coalescing it frees a range to split
  // the hot one with. Otherwise (hot dwarfs nothing, e.g. two partitions)
  // fall back to redistributing: merge the hot range with its lighter
  // neighbor and re-split the union — a pure boundary move.
  bool have_cold = false;
  std::size_t cold_left = 0;
  std::int64_t cold_load = 0;
  for (std::size_t i = 0; i + 1 < partitions; ++i) {
    if (i == hot || i + 1 == hot) continue;
    const std::int64_t pair = range_load_[i] + range_load_[i + 1];
    if (!have_cold || pair < cold_load) {
      have_cold = true;
      cold_left = i;
      cold_load = pair;
    }
  }

  std::size_t merge_left;
  if (have_cold && cold_load < range_load_[hot]) {
    merge_left = cold_left;
  } else if (hot == 0) {
    merge_left = 0;
  } else if (hot == partitions - 1) {
    merge_left = partitions - 2;
  } else {
    merge_left =
        range_load_[hot - 1] <= range_load_[hot + 1] ? hot - 1 : hot;
  }
  const bool hot_in_pair = merge_left == hot || merge_left + 1 == hot;
  const std::size_t removed_boundary = bounds_[merge_left + 1];
  cold_load = range_load_[merge_left] + range_load_[merge_left + 1];

  // The post-merge range to split: the hot range itself, or the merged
  // union when the hot range took part in the merge.
  const std::size_t split_begin =
      hot_in_pair ? bounds_[merge_left] : bounds_[hot];
  const std::size_t split_end =
      hot_in_pair ? bounds_[merge_left + 2] : bounds_[hot + 1];
  const std::int64_t split_load = hot_in_pair ? cold_load : range_load_[hot];
  if (split_end - split_begin < 2) return false;  // Single hot bucket.

  // Load-weighted midpoint: the first cut where the left half reaches half
  // the range's load, clamped to keep both halves non-empty.
  std::size_t cut = split_begin + 1;
  std::int64_t prefix = 0;
  for (std::size_t b = split_begin; b < split_end; ++b) {
    prefix += bucket_load[b];
    if (2 * prefix >= split_load) {
      cut = b + 1;
      break;
    }
  }
  cut = std::max(cut, split_begin + 1);
  cut = std::min(cut, split_end - 1);
  // Merging a pair and cutting the old boundary back would be an identity
  // rebalance; report no change instead of churning the version.
  if (cut == removed_boundary) return false;

  bounds_.erase(bounds_.begin() + static_cast<std::ptrdiff_t>(merge_left + 1));
  bounds_.insert(std::lower_bound(bounds_.begin(), bounds_.end(), cut), cut);
  ++version_;
  history_.push_back(RebalanceAction{
      .version = version_,
      .step = now,
      .coalesced_left = static_cast<int>(merge_left),
      .removed_boundary = removed_boundary,
      .split_partition = static_cast<int>(hot),
      .split_boundary = cut,
      .hot_load = range_load_[hot],
      .cold_load = cold_load,
      .total_load = total,
  });
  RebuildBucketTable();
  return true;
}

double AdaptivePartitionMap::RangeLoadRatio(
    const std::vector<std::int64_t>& bucket_load,
    const std::vector<std::size_t>& bounds) const {
  SJOIN_CHECK_EQ(bucket_load.size(), num_buckets());
  const std::size_t partitions = bounds.size() - 1;
  std::int64_t total = 0;
  std::int64_t max_load = 0;
  for (std::size_t p = 0; p < partitions; ++p) {
    std::int64_t sum = 0;
    for (std::size_t b = bounds[p]; b < bounds[p + 1]; ++b) {
      sum += bucket_load[b];
    }
    total += sum;
    max_load = std::max(max_load, sum);
  }
  if (total <= 0) return 1.0;
  return static_cast<double>(max_load) * static_cast<double>(partitions) /
         static_cast<double>(total);
}

double AdaptivePartitionMap::LoadRatio(
    const std::vector<std::int64_t>& bucket_load) const {
  return RangeLoadRatio(bucket_load, bounds_);
}

double AdaptivePartitionMap::StaticLoadRatio(
    const std::vector<std::int64_t>& bucket_load) const {
  return RangeLoadRatio(bucket_load, initial_bounds_);
}

}  // namespace sjoin
