#ifndef SJOIN_ENGINE_PROBE_PLANNER_H_
#define SJOIN_ENGINE_PROBE_PLANNER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sjoin/common/types.h"

/// \file
/// Runtime probe planning for the N-way step loop (DESIGN.md §2f).
///
/// Phase 1 probes each arrival against the cached tuples of every partner
/// stream. For a multi-way topology that inner loop has freedom the binary
/// join never had: the partner *order* is arbitrary (the produced count is
/// an integer sum, so any order gives the same result), probes against
/// partners that cache nothing can be skipped outright, and two probes of
/// the same (partner, value) pair within a stable cache return the same
/// count. ProbePlanner packages those three observations:
///
///  - a SelectivityMonitor keeps decayed per-directed-edge match-rate
///    counters, fed by every considered probe;
///  - a deterministic re-planner reorders each stream's partner probe list
///    at fixed step checkpoints (`now % replan_interval == 0`), highest
///    observed match rate first — like the PR 7 rebalancer, the plan is a
///    pure function of the observed prefix of the run, so it replays
///    identically across reruns and thread counts;
///  - a probe-result cache memoizes the cached-partner match count per
///    (partner stream, value), shared by every edge that touches the same
///    value index, invalidated incrementally as the engine commits inserts
///    and evictions (windowed runs expire tuples by age, which the memo
///    cannot see, so they keep entries for one step only).
///
/// All of this is cost-only: `counted_results` and the retained sets are
/// bit-identical to the naive fixed-order probe loop, which the
/// multi_planner differential suite verifies at 1000 trials.

namespace sjoin {

class StreamTopology;

/// Cumulative planner accounting. `probes` counts every considered
/// (arrival, partner) pair and always equals skipped + cache_hits +
/// evaluated.
struct ProbePlanStats {
  /// Partner probes considered by Phase 1.
  std::int64_t probes = 0;
  /// Probes short-circuited because the partner stream caches no tuple.
  std::int64_t skipped = 0;
  /// Probes served from the (partner, value) probe-result cache.
  std::int64_t cache_hits = 0;
  /// Probes that actually hit the value index or scanned the cache.
  std::int64_t evaluated = 0;
  /// Checkpoints at which at least one stream's probe order changed.
  std::int64_t replans = 0;
  /// Re-plan checkpoints reached.
  std::int64_t checkpoints = 0;
};

/// How Phase 1 served one considered probe (stats + selectivity feed).
enum class ProbeKind { kSkipped, kMemoHit, kEvaluated };

/// Per-run probe planner + selectivity monitor + probe-result cache. Owned
/// by the caller (the façades build one per Run when enabled), attached to
/// the engine via StreamEngine::Options::probe_planner, and driven by the
/// step loop through the protocol below. Not thread-safe; the planner only
/// ever runs on the serial engine path.
class ProbePlanner {
 public:
  struct Options {
    /// Steps between re-plan checkpoints; >= 1.
    Time replan_interval = 64;
    /// Multiplier applied to the accumulated selectivity counters at each
    /// checkpoint; in (0, 1]. Smaller forgets faster.
    double decay = 0.5;
  };

  ProbePlanner() : ProbePlanner(Options()) {}
  explicit ProbePlanner(Options options);

  // --- Engine protocol, in call order -----------------------------------

  /// Sizes the monitor for `topology` and resets plans to topology partner
  /// order. `memo_across_steps` keeps probe-result entries alive across
  /// steps (valid only when no sliding window expires tuples by age).
  void BeginRun(const StreamTopology& topology, bool memo_across_steps);

  /// Starts a step: resets the per-step stats and, at checkpoint steps,
  /// decays the selectivity counters and recomputes every probe order.
  void BeginStep(Time now);

  /// The partner probe order for arrivals of `stream` this step.
  const std::vector<int>& PlanFor(int stream) const {
    return plans_[static_cast<std::size_t>(stream)];
  }

  /// Probe-result cache lookup for (partner, value); true on hit.
  bool LookupCount(int partner, Value value, std::int64_t* count) const;

  /// Stores an evaluated probe result for (partner, value).
  void StoreCount(int partner, Value value, std::int64_t count);

  /// Reports one considered probe: `matches` cached partner tuples for the
  /// arrival's value, served as `kind`. Feeds the selectivity counters and
  /// the stats. Every considered probe must be reported exactly once, in
  /// plan order, so the monitor state is independent of cache hit/miss
  /// timing.
  void ObserveProbe(int stream, int partner, std::int64_t matches,
                    ProbeKind kind);

  /// Invalidates the probe-result entry for (stream, value); called by the
  /// engine's commit for every inserted and evicted cached tuple.
  void OnCacheChange(int stream, Value value);

  // --- Accounting --------------------------------------------------------

  /// Stats accumulated since BeginRun.
  const ProbePlanStats& stats() const { return stats_; }
  /// Stats for the current step only (reset by BeginStep).
  const ProbePlanStats& step_stats() const { return step_stats_; }

  const Options& options() const { return options_; }

 private:
  /// Flattened (stream, partner) cell of the selectivity monitor.
  struct EdgeCounter {
    double probes = 0.0;
    double matches = 0.0;
  };

  std::size_t CellOf(int stream, int partner) const {
    return static_cast<std::size_t>(stream) *
               static_cast<std::size_t>(num_streams_) +
           static_cast<std::size_t>(partner);
  }

  /// Decays counters and rebuilds plans_; counts a replan if any order
  /// changed.
  void Replan();

  Options options_;
  int num_streams_ = 0;
  bool memo_across_steps_ = false;

  /// Decayed + in-window selectivity counters per directed edge.
  std::vector<EdgeCounter> decayed_;
  std::vector<EdgeCounter> window_;

  /// Current probe order per stream (a permutation of topology partners).
  std::vector<std::vector<int>> plans_;
  /// Scratch for Replan: (rate, partner) pairs.
  std::vector<std::pair<double, int>> rank_scratch_;

  /// Probe-result cache: value -> cached match count, per partner stream.
  std::vector<std::unordered_map<Value, std::int64_t>> memo_;

  ProbePlanStats stats_;
  ProbePlanStats step_stats_;
};

}  // namespace sjoin

#endif  // SJOIN_ENGINE_PROBE_PLANNER_H_
