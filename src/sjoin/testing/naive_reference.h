#ifndef SJOIN_TESTING_NAIVE_REFERENCE_H_
#define SJOIN_TESTING_NAIVE_REFERENCE_H_

#include "sjoin/core/ecb.h"
#include "sjoin/core/heeb.h"
#include "sjoin/core/lifetime_fn.h"
#include "sjoin/engine/scored_caching_policy.h"
#include "sjoin/engine/scored_policy.h"
#include "sjoin/stochastic/process.h"

/// \file
/// Deliberately-naive reference implementations of the ECB / HEEB
/// definitions (Sections 4.1 and 4.3), used as differential-testing
/// oracles against the optimized library code.
///
/// Each function recomputes its answer from scratch on every call — fresh
/// Predict() per probability, no tabulation, no incremental recurrences, no
/// buffer reuse — but performs the same floating-point operations in the
/// same order as the definitional formulas, so matching optimized paths
/// (tabulated ECBs, HeebJoinPolicy kDirect) must agree bit for bit, not
/// merely within a tolerance. Keep these dumb: their only job is to be
/// obviously correct.

namespace sjoin {
namespace testing {

/// Joining ECB B(dt) (Lemma 1) by summing dt fresh predictive
/// probabilities. O(dt) per call where TabulatedEcb amortizes to O(1).
double NaiveJoiningEcbAt(const StochasticProcess& partner,
                         const StreamHistory& partner_history, Time t0,
                         Value v, Time dt);

/// Caching ECB B(dt) = 1 - Pr{never referenced} (Corollary 1), survival
/// product recomputed from scratch.
double NaiveCachingEcbAt(const StochasticProcess& reference,
                         const StreamHistory& history, Time t0, Value v,
                         Time dt);

/// Sliding-window ECB (Section 7) applied pointwise to a base curve:
/// 0 if expired, else min(B(dt), B(min(remaining, horizon))).
double NaiveWindowedEcbAt(const EcbFn& base, Time arrival, Time now,
                          Time window, Time horizon, Time dt);

/// The literal Section 4.3 H definition, with every B(dt) taken from the
/// given curve: B(1)L(1) + sum (B(dt) - B(dt-1)) L(dt).
double NaiveHeebFromEcb(const EcbFn& ecb, const LifetimeFn& lifetime,
                        Time horizon);

/// Joining H (Lemma 1 substituted into the definition), fresh Predict per
/// term.
double NaiveJoiningHeeb(const StochasticProcess& partner,
                        const StreamHistory& partner_history, Time t0,
                        Value v, const LifetimeFn& lifetime, Time horizon);

/// Caching H (Corollary 1 substituted into the definition), per-step
/// marginals, fresh Predict per term.
double NaiveCachingHeeb(const StochasticProcess& reference,
                        const StreamHistory& history, Time t0, Value v,
                        const LifetimeFn& lifetime, Time horizon);

/// HEEB joining policy computing every score with a window-truncated
/// direct sum of fresh Predict() calls — no prediction cache, no
/// PredictInto, no incremental state. The oracle for HeebJoinPolicy
/// (all modes; bit-identical runs against kDirect).
class NaiveHeebJoinPolicy final : public ScoredPolicy {
 public:
  /// Processes are not owned. `lifetime` may be null (L_exp(alpha)).
  NaiveHeebJoinPolicy(const StochasticProcess* r_process,
                      const StochasticProcess* s_process, double alpha,
                      Time horizon, const LifetimeFn* lifetime = nullptr);

  const char* name() const override { return "NAIVE-HEEB"; }

 protected:
  double Score(const Tuple& tuple, const PolicyContext& ctx) override;

 private:
  const StochasticProcess* r_process_;
  const StochasticProcess* s_process_;
  ExpLifetime exp_lifetime_;
  Time horizon_;
  const LifetimeFn* lifetime_;
};

/// HEEB caching policy scoring every candidate with NaiveCachingHeeb.
/// The oracle for HeebCachingPolicy kDirect / kTimeIncremental.
class NaiveHeebCachingPolicy final : public ScoredCachingPolicy {
 public:
  NaiveHeebCachingPolicy(const StochasticProcess* reference, double alpha,
                         Time horizon, const LifetimeFn* lifetime = nullptr);

  const char* name() const override { return "NAIVE-HEEB"; }

 protected:
  double Score(Value v, const CachingContext& ctx) override;

 private:
  const StochasticProcess* reference_;
  ExpLifetime exp_lifetime_;
  Time horizon_;
  const LifetimeFn* lifetime_;
};

}  // namespace testing
}  // namespace sjoin

#endif  // SJOIN_TESTING_NAIVE_REFERENCE_H_
