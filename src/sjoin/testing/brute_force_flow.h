#ifndef SJOIN_TESTING_BRUTE_FORCE_FLOW_H_
#define SJOIN_TESTING_BRUTE_FORCE_FLOW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/flow/flow_graph.h"

/// \file
/// Brute-force min-cost-flow oracle on small assignment (unit-capacity
/// bipartite) instances. Every integral flow on such a network is a
/// matching, so exhaustive enumeration over job subsets yields the exact
/// minimum cost per matching size — the ground truth SolveMinCostFlow must
/// reproduce, negative arc costs included.

namespace sjoin {
namespace testing {

/// A bipartite assignment instance: unit-capacity arcs source->worker,
/// worker->job (where present, with real possibly-negative cost), and
/// job->sink.
struct AssignmentInstance {
  int num_workers = 0;
  int num_jobs = 0;
  /// has_arc[w][j] / cost[w][j] describe the worker->job arcs.
  std::vector<std::vector<bool>> has_arc;
  std::vector<std::vector<double>> cost;
  /// Units requested from the solver.
  std::int64_t target_flow = 0;
};

/// Samples an instance with 1..max_workers workers, 1..max_jobs jobs, each
/// arc present with probability ~0.6, costs uniform in [-4, 4].
AssignmentInstance MakeRandomAssignmentInstance(Rng& rng, int max_workers,
                                                int max_jobs);

/// Builds the flow network. On return `source`/`sink` identify the
/// terminals and `worker_arcs[w][j]` holds the AddArc index of the
/// worker->job arc (-1 where absent) for FlowOn queries; worker w is node
/// 2 + w and job j is node 2 + num_workers + j.
void BuildAssignmentGraph(const AssignmentInstance& instance,
                          FlowGraph* graph, NodeId* source, NodeId* sink,
                          std::vector<std::vector<std::int32_t>>* worker_arcs);

/// min_cost_by_size[k] = cost of the cheapest matching of exactly k pairs
/// (infinity where no matching of that size exists; index 0 is 0). The
/// maximum matching size is min_cost_by_size.size() - 1.
std::vector<double> BruteForceAssignmentCosts(
    const AssignmentInstance& instance);

/// Checks flow conservation at every non-terminal node of a solved graph
/// by recounting FlowOn over all forward arcs, plus capacity bounds.
/// Returns an error description, or empty if consistent.
std::string CheckFlowConsistency(const FlowGraph& graph, NodeId source,
                                 NodeId sink);

}  // namespace testing
}  // namespace sjoin

#endif  // SJOIN_TESTING_BRUTE_FORCE_FLOW_H_
