#include "sjoin/testing/differential.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <memory>
#include <sstream>
#include <string_view>
#include <unordered_map>

#include "sjoin/common/check.h"
#include "sjoin/common/rng.h"
#include "sjoin/core/ecb.h"
#include "sjoin/core/heeb.h"
#include "sjoin/core/heeb_caching_policy.h"
#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/core/lifetime_fn.h"
#include "sjoin/engine/cache_simulator.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/engine/reduction.h"
#include "sjoin/engine/probe_planner.h"
#include "sjoin/engine/scored_caching_policy.h"
#include "sjoin/engine/scored_policy.h"
#include "sjoin/engine/scoring_batch.h"
#include "sjoin/engine/sharded_stream_engine.h"
#include "sjoin/engine/stream_engine.h"
#include "sjoin/engine/tuple.h"
#include "sjoin/flow/min_cost_flow.h"
#include "sjoin/multi/multi_baseline_policies.h"
#include "sjoin/multi/multi_heeb_policy.h"
#include "sjoin/multi/multi_join_simulator.h"
#include "sjoin/policies/edge_budget_policy.h"
#include "sjoin/policies/lfu_policy.h"
#include "sjoin/policies/life_policy.h"
#include "sjoin/policies/lru_policy.h"
#include "sjoin/policies/opt_offline_policy.h"
#include "sjoin/policies/prob_policy.h"
#include "sjoin/policies/random_caching_policy.h"
#include "sjoin/policies/random_policy.h"
#include "sjoin/core/flow_expect_policy.h"
#include "sjoin/serve/session_scheduler.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/stream_sampler.h"
#include "sjoin/testing/brute_force_flow.h"
#include "sjoin/testing/brute_force_opt.h"
#include "sjoin/testing/naive_flow_expect.h"
#include "sjoin/testing/naive_reference.h"
#include "sjoin/testing/naive_simulator.h"
#include "sjoin/testing/scenario_generator.h"

namespace sjoin {
namespace testing {
namespace {

// Salts decorrelate the draw streams that share one trial seed (the
// scenario shape, the realization, and auxiliary policy choices).
constexpr std::uint64_t kRealizationSalt = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kAuxSalt = 0xbf58476d1ce4e5b9ULL;

bool CloseEnough(double a, double b) {
  return std::abs(a - b) <=
         1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
}

/// Exact comparison of two joining runs. `compare_composition` additionally
/// requires identical r_fraction_by_time traces (elementwise bitwise —
/// both sides derive them from the same integer counts).
std::optional<std::string> ExpectEqualRuns(const std::string& context,
                                           const JoinRunResult& oracle,
                                           const JoinRunResult& optimized,
                                           bool compare_composition) {
  std::ostringstream out;
  if (oracle.total_results != optimized.total_results ||
      oracle.counted_results != optimized.counted_results) {
    out << context << ": result counts diverge (oracle "
        << oracle.total_results << "/" << oracle.counted_results
        << ", optimized " << optimized.total_results << "/"
        << optimized.counted_results << ")";
    return out.str();
  }
  if (oracle.telemetry.peak_candidates !=
          optimized.telemetry.peak_candidates ||
      oracle.telemetry.steps != optimized.telemetry.steps) {
    out << context << ": telemetry diverges (oracle peak "
        << oracle.telemetry.peak_candidates << " steps "
        << oracle.telemetry.steps << ", optimized peak "
        << optimized.telemetry.peak_candidates << " steps "
        << optimized.telemetry.steps << ")";
    return out.str();
  }
  if (compare_composition) {
    if (oracle.r_fraction_by_time.size() !=
        optimized.r_fraction_by_time.size()) {
      out << context << ": r_fraction trace lengths diverge";
      return out.str();
    }
    for (std::size_t i = 0; i < oracle.r_fraction_by_time.size(); ++i) {
      if (oracle.r_fraction_by_time[i] != optimized.r_fraction_by_time[i]) {
        out << context << ": r_fraction diverges at step " << i << " (oracle "
            << oracle.r_fraction_by_time[i] << ", optimized "
            << optimized.r_fraction_by_time[i] << ")";
        return out.str();
      }
    }
  }
  return std::nullopt;
}

/// SJOIN_DIFF_SHARDS=<n> (n > 1) reruns every optimized engine run in the
/// suites sharded at n shards. Sharding is bit-identical by contract, so
/// all existing oracles must keep passing unchanged — this turns each of
/// the 1000-trial suites into a sharding differential for free. Returns 0
/// when unset or <= 1 (serial).
int DiffShards() {
  static const int shards = [] {
    const char* env = std::getenv("SJOIN_DIFF_SHARDS");
    if (env == nullptr) return 0;
    int parsed = std::atoi(env);
    return parsed > 1 ? parsed : 0;
  }();
  return shards;
}

/// SJOIN_DIFF_THREADS=<n> (n > 1) runs the sharded reruns requested by
/// SJOIN_DIFF_SHARDS on a persistent worker team of n threads instead of
/// inline, so the suites double as a threading differential: parallel
/// shard scoring and the parallel merge cascade must stay bit-identical
/// to the serial oracles. No effect unless SJOIN_DIFF_SHARDS engages the
/// sharded path. Returns 0 when unset or <= 1.
int DiffThreads() {
  static const int threads = [] {
    const char* env = std::getenv("SJOIN_DIFF_THREADS");
    if (env == nullptr) return 0;
    int parsed = std::atoi(env);
    return parsed > 1 ? parsed : 0;
  }();
  return threads;
}

/// SJOIN_DIFF_ADAPTIVE=1 reruns every optimized engine run with the
/// skew-adaptive partition map enabled (interval 8, short enough that
/// rebalances actually fire inside the suites' scenario lengths).
/// Adaptive sharding is bit-identical by the same merge contract as
/// static sharding, so all oracles must keep passing unchanged. The hook
/// is self-sufficient: when SJOIN_DIFF_SHARDS leaves the run serial, the
/// adaptive reruns default to 4 shards.
bool DiffAdaptive() {
  static const bool adaptive = [] {
    const char* env = std::getenv("SJOIN_DIFF_ADAPTIVE");
    return env != nullptr && *env != '\0' && std::string_view(env) != "0";
  }();
  return adaptive;
}

/// SJOIN_DIFF_MULTI=1 makes the multi_planner suite additionally rerun
/// every trial through the MultiJoinSimulator façade (planner on and off)
/// and through a 4-shard ShardedStreamEngine — multi policies publish no
/// shard scoring, so the sharded engine must take its serial fallback and
/// still honor the attached planner. Both reruns must reproduce the
/// direct-engine results exactly.
bool DiffMulti() {
  static const bool multi = [] {
    const char* env = std::getenv("SJOIN_DIFF_MULTI");
    return env != nullptr && *env != '\0' && std::string_view(env) != "0";
  }();
  return multi;
}

/// SJOIN_DIFF_SERVE=1 forces every serve_scheduler trial to execute its
/// served side on 4 worker engines instead of the seed-rotated worker
/// count — the TSan job sets it so the scheduler's round fan-out
/// (disjoint sessions on real threads, thread-local latency buffers,
/// deterministic fold) runs under the race detector on every trial.
bool DiffServe() {
  static const bool serve = [] {
    const char* env = std::getenv("SJOIN_DIFF_SERVE");
    return env != nullptr && *env != '\0' && std::string_view(env) != "0";
  }();
  return serve;
}

/// SJOIN_DIFF_BATCH=<0|1> pins the batch_scoring suite's engine runs to
/// one flag value instead of comparing batch-off against batch-on: 0 runs
/// every side scalar, anything else runs every side through the batch
/// kernels. The trial then degenerates to a serial-vs-sharded identity
/// check under the pinned setting — the TSan job pins it on (together
/// with SJOIN_DIFF_SHARDS / SJOIN_DIFF_THREADS) so the kernels execute
/// under the race detector.
std::optional<bool> DiffBatch() {
  static const std::optional<bool> batch = []() -> std::optional<bool> {
    const char* env = std::getenv("SJOIN_DIFF_BATCH");
    if (env == nullptr || *env == '\0') return std::nullopt;
    return std::string_view(env) != "0";
  }();
  return batch;
}

/// Runs the optimized joining side of a trial. By default this goes
/// through the JoinSimulator façade; with SJOIN_DIFF_ENGINE=direct it
/// constructs the engine + BinaryPolicyAdapter + observer chain by
/// hand instead, so CI exercises both entry paths against the same
/// oracles (the two must be indistinguishable — the façade adds nothing
/// but plumbing). SJOIN_DIFF_SHARDS applies to both paths.
JoinRunResult RunOptimizedJoin(const JoinSimulator::Options& options,
                               const std::vector<Value>& r,
                               const std::vector<Value>& s,
                               ReplacementPolicy& policy) {
  static const bool direct = [] {
    const char* env = std::getenv("SJOIN_DIFF_ENGINE");
    return env != nullptr && std::string_view(env) == "direct";
  }();
  JoinSimulator::Options run_options = options;
  if (DiffShards() > 0) run_options.shards = DiffShards();
  if (DiffThreads() > 0) run_options.threads = DiffThreads();
  if (DiffAdaptive()) {
    if (run_options.shards <= 1) run_options.shards = 4;
    run_options.adaptive_shards = true;
    run_options.adaptive_interval = 8;
  }
  if (!direct) return JoinSimulator(run_options).Run(r, s, policy);

  // ShardedStreamEngine with shards = 1 delegates to a plain serial
  // StreamEngine internally, so the historical direct-path semantics are
  // preserved when SJOIN_DIFF_SHARDS is unset.
  ShardedStreamEngine engine(
      StreamTopology::Binary(),
      {.capacity = run_options.capacity,
       .warmup = run_options.warmup,
       .window = run_options.window,
       .shards = run_options.shards,
       .threads = run_options.threads,
       .adaptive = {.enabled = run_options.adaptive_shards,
                    .interval = run_options.adaptive_interval}});
  BinaryPolicyAdapter adapter(&policy);
  JoinRunResult result;
  PerfObserver perf;
  CacheCompositionObserver composition(0, &result.r_fraction_by_time);
  std::vector<StepObserver*> observers{&perf};
  if (options.track_cache_composition) observers.push_back(&composition);
  EngineRunResult run = engine.Run({&r, &s}, adapter, observers);
  result.total_results = run.total_results;
  result.counted_results = run.counted_results;
  result.telemetry = perf.telemetry();
  return result;
}

/// Runs `decider` and `other` over the same unwindowed cache trajectory
/// (chosen by `decider`) and compares every candidate score they produce,
/// within `tolerance` relative to max(1, |decider score|). This is how the
/// incremental HEEB modes are verified: their recurrences are exact only
/// up to re-anchored truncation/fp drift, so whole-run output equality is
/// not a theorem (a drift-sized near-tie can legitimately flip an
/// eviction), but scorewise agreement within the drift bound is.
std::optional<std::string> LockstepJoinScoreCompare(
    const Scenario& scenario, const std::vector<Value>& r,
    const std::vector<Value>& s, ScoredPolicy& decider, ScoredPolicy& other,
    const char* other_name, double tolerance) {
  decider.Reset();
  other.Reset();
  std::unordered_map<TupleId, double> decider_scores;
  std::unordered_map<TupleId, double> other_scores;
  decider.set_score_observer([&decider_scores](const Tuple& t, double score) {
    decider_scores[t.id] = score;
  });
  other.set_score_observer([&other_scores](const Tuple& t, double score) {
    other_scores[t.id] = score;
  });

  std::optional<std::string> failure;
  std::vector<Tuple> cache;
  StreamHistory history_r;
  StreamHistory history_s;
  for (Time t = 0; t < scenario.length && !failure.has_value(); ++t) {
    Value rv = r[static_cast<std::size_t>(t)];
    Value sv = s[static_cast<std::size_t>(t)];
    history_r.Append(rv);
    history_s.Append(sv);
    std::vector<Tuple> arrivals = {
        Tuple{TupleIdAt(StreamSide::kR, t), StreamSide::kR, rv, t},
        Tuple{TupleIdAt(StreamSide::kS, t), StreamSide::kS, sv, t}};
    PolicyContext ctx;
    ctx.now = t;
    ctx.capacity = scenario.capacity;
    ctx.cached = &cache;
    ctx.arrivals = &arrivals;
    ctx.history_r = &history_r;
    ctx.history_s = &history_s;
    decider_scores.clear();
    other_scores.clear();
    std::vector<TupleId> retained = decider.SelectRetained(ctx);
    other.SelectRetained(ctx);
    for (const auto& [id, expected] : decider_scores) {
      auto it = other_scores.find(id);
      if (it == other_scores.end()) {
        std::ostringstream out;
        out << scenario.description << ": " << other_name
            << " never scored tuple " << id << " at step " << t;
        failure = out.str();
        break;
      }
      if (std::abs(it->second - expected) >
          tolerance * std::max(1.0, std::abs(expected))) {
        std::ostringstream out;
        out << scenario.description << ": " << other_name
            << " score for tuple " << id << " at step " << t
            << " drifts beyond tolerance (direct " << expected << ", "
            << other_name << " " << it->second << ")";
        failure = out.str();
        break;
      }
    }
    std::vector<Tuple> next;
    next.reserve(retained.size());
    for (TupleId id : retained) {
      for (const Tuple& tuple : cache) {
        if (tuple.id == id) next.push_back(tuple);
      }
      for (const Tuple& tuple : arrivals) {
        if (tuple.id == id) next.push_back(tuple);
      }
    }
    cache = std::move(next);
  }
  decider.set_score_observer(nullptr);
  other.set_score_observer(nullptr);
  return failure;
}

/// Caching-side twin of LockstepJoinScoreCompare, following the
/// CacheSimulator protocol (Observe every reference, SelectRetained on
/// misses).
std::optional<std::string> LockstepCachingScoreCompare(
    const Scenario& scenario, const std::vector<Value>& references,
    ScoredCachingPolicy& decider, ScoredCachingPolicy& other,
    const char* other_name, double tolerance) {
  decider.Reset();
  other.Reset();
  std::unordered_map<Value, double> decider_scores;
  std::unordered_map<Value, double> other_scores;
  decider.set_score_observer([&decider_scores](Value v, double score) {
    decider_scores[v] = score;
  });
  other.set_score_observer([&other_scores](Value v, double score) {
    other_scores[v] = score;
  });

  std::optional<std::string> failure;
  std::vector<Value> cache;
  StreamHistory history;
  for (Time t = 0;
       t < static_cast<Time>(references.size()) && !failure.has_value();
       ++t) {
    Value v = references[static_cast<std::size_t>(t)];
    history.Append(v);
    bool hit = std::find(cache.begin(), cache.end(), v) != cache.end();
    CachingContext ctx;
    ctx.now = t;
    ctx.capacity = scenario.capacity;
    ctx.cached = &cache;
    ctx.referenced = v;
    ctx.hit = hit;
    ctx.history = &history;
    decider.Observe(ctx);
    other.Observe(ctx);
    if (hit) continue;
    decider_scores.clear();
    other_scores.clear();
    std::vector<Value> retained = decider.SelectRetained(ctx);
    other.SelectRetained(ctx);
    for (const auto& [value, expected] : decider_scores) {
      auto it = other_scores.find(value);
      if (it == other_scores.end()) {
        std::ostringstream out;
        out << scenario.description << ": " << other_name
            << " never scored value " << value << " at step " << t;
        failure = out.str();
        break;
      }
      if (std::abs(it->second - expected) >
          tolerance * std::max(1.0, std::abs(expected))) {
        std::ostringstream out;
        out << scenario.description << ": " << other_name << " score for "
            << value << " at step " << t
            << " drifts beyond tolerance (direct " << expected << ", "
            << other_name << " " << it->second << ")";
        failure = out.str();
        break;
      }
    }
    cache = std::move(retained);
  }
  decider.set_score_observer(nullptr);
  other.set_score_observer(nullptr);
  return failure;
}

// ---------------------------------------------------------------------------
// Suite 1: ecb_heeb_scoring — tabulated ECB curves and HEEB closed forms
// against from-scratch recomputation, bit for bit.

std::optional<std::string> EcbHeebScoringTrial(std::uint64_t seed) {
  ScenarioGenerator::Options options;
  options.pool = ScenarioGenerator::Pool::kAny;
  options.min_length = 6;
  options.max_length = 20;
  options.min_capacity = 1;
  options.max_capacity = 4;
  options.max_horizon = 16;
  ScenarioGenerator generator(options);
  Scenario scenario = generator.Sample(seed);
  Rng realization_rng(seed ^ kRealizationSalt);
  auto [r, s] = SampleRealization(scenario, realization_rng);
  StreamHistory history_r(r);
  StreamHistory history_s(s);
  Time t0 = scenario.length - 1;

  Rng aux(seed ^ kAuxSalt);
  const std::vector<Value>& pool = aux.UniformReal() < 0.5 ? r : s;
  Value v = pool[aux.UniformIndex(pool.size())] + aux.UniformInt(-2, 2);

  ExpLifetime exp_lifetime(scenario.alpha);
  FixedLifetime fixed_lifetime(aux.UniformInt(1, scenario.horizon));
  InverseLifetime inverse_lifetime;
  const LifetimeFn* lifetimes[] = {&exp_lifetime, &fixed_lifetime,
                                   &inverse_lifetime};

  struct SideCase {
    const char* label;
    const StochasticProcess* process;
    const StreamHistory* history;
  };
  SideCase cases[] = {{"S", scenario.s_process.get(), &history_s},
                      {"R", scenario.r_process.get(), &history_r}};

  auto fail = [&](const char* what, const char* side, Time dt, double naive,
                  double optimized) {
    std::ostringstream out;
    out << scenario.description << ", v=" << v << ", side=" << side << ": "
        << what << " at dt=" << dt << " diverges (naive " << naive
        << ", optimized " << optimized << ")";
    return out.str();
  };

  for (const SideCase& side : cases) {
    TabulatedEcb joining =
        MakeJoiningEcb(*side.process, *side.history, t0, v, scenario.horizon);
    TabulatedEcb caching =
        MakeCachingEcb(*side.process, *side.history, t0, v, scenario.horizon);
    for (Time dt = 1; dt <= scenario.horizon; ++dt) {
      double naive =
          NaiveJoiningEcbAt(*side.process, *side.history, t0, v, dt);
      if (joining.At(dt) != naive) {
        return fail("joining ECB", side.label, dt, naive, joining.At(dt));
      }
      naive = NaiveCachingEcbAt(*side.process, *side.history, t0, v, dt);
      if (caching.At(dt) != naive) {
        return fail("caching ECB", side.label, dt, naive, caching.At(dt));
      }
    }

    // Sliding-window curve (Section 7), every point.
    Time arrival = aux.UniformInt(0, t0);
    Time window = aux.UniformInt(0, 2 * scenario.horizon);
    TabulatedEcb windowed =
        MakeWindowedEcb(joining, arrival, t0, window, scenario.horizon);
    for (Time dt = 1; dt <= scenario.horizon; ++dt) {
      double naive = NaiveWindowedEcbAt(joining, arrival, t0, window,
                                        scenario.horizon, dt);
      if (windowed.At(dt) != naive) {
        return fail("windowed ECB", side.label, dt, naive, windowed.At(dt));
      }
    }

    for (const LifetimeFn* lifetime : lifetimes) {
      double optimized = HeebFromEcb(joining, *lifetime, scenario.horizon);
      double naive = NaiveHeebFromEcb(joining, *lifetime, scenario.horizon);
      if (optimized != naive) {
        return fail("HeebFromEcb", side.label, scenario.horizon, naive,
                    optimized);
      }
    }

    double joining_heeb = JoiningHeeb(*side.process, *side.history, t0, v,
                                      exp_lifetime, scenario.horizon);
    double naive_joining = NaiveJoiningHeeb(
        *side.process, *side.history, t0, v, exp_lifetime, scenario.horizon);
    if (joining_heeb != naive_joining) {
      return fail("JoiningHeeb", side.label, scenario.horizon, naive_joining,
                  joining_heeb);
    }
    double caching_heeb = CachingHeeb(*side.process, *side.history, t0, v,
                                      exp_lifetime, scenario.horizon);
    double naive_caching = NaiveCachingHeeb(
        *side.process, *side.history, t0, v, exp_lifetime, scenario.horizon);
    if (caching_heeb != naive_caching) {
      return fail("CachingHeeb", side.label, scenario.horizon, naive_caching,
                  caching_heeb);
    }

    // Cross-form consistency (telescoping sums match only analytically, so
    // these get a tolerance instead of bit equality).
    double via_ecb = HeebFromEcb(joining, exp_lifetime, scenario.horizon);
    if (!CloseEnough(via_ecb, joining_heeb)) {
      return fail("HeebFromEcb vs JoiningHeeb", side.label, scenario.horizon,
                  joining_heeb, via_ecb);
    }
    via_ecb = HeebFromEcb(caching, exp_lifetime, scenario.horizon);
    if (!CloseEnough(via_ecb, caching_heeb)) {
      return fail("HeebFromEcb vs CachingHeeb", side.label, scenario.horizon,
                  caching_heeb, via_ecb);
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Suite 2: heeb_policy_join — full simulated runs of HeebJoinPolicy: the
// kDirect path against the naive policy on the naive simulator (bit
// identical), and each Section 4.4 incremental mode against kDirect on
// result counts.

std::optional<std::string> HeebPolicyJoinTrial(std::uint64_t seed) {
  ScenarioGenerator::Options options;
  options.min_length = 32;
  options.max_length = 72;
  options.min_capacity = 2;
  options.max_capacity = 6;
  options.max_horizon = 16;
  int variant = static_cast<int>(seed % 3);
  const char* incremental_name = "time-incremental";
  HeebJoinPolicy::Mode incremental_mode =
      HeebJoinPolicy::Mode::kTimeIncremental;
  switch (variant) {
    case 0:
      options.pool = ScenarioGenerator::Pool::kIndependent;
      options.window_probability = 0.35;
      break;
    case 1:
      options.pool = ScenarioGenerator::Pool::kEqualSlopeTrends;
      incremental_mode = HeebJoinPolicy::Mode::kValueIncremental;
      incremental_name = "value-incremental";
      break;
    default:
      options.pool = ScenarioGenerator::Pool::kWalks;
      options.max_length = 56;
      options.max_horizon = 12;
      incremental_mode = HeebJoinPolicy::Mode::kWalkTable;
      incremental_name = "walk-table";
      break;
  }
  ScenarioGenerator generator(options);
  Scenario scenario = generator.Sample(seed);
  Rng realization_rng(seed ^ kRealizationSalt);
  auto [r, s] = SampleRealization(scenario, realization_rng);

  JoinSimulator::Options sim_options;
  sim_options.capacity = scenario.capacity;
  sim_options.warmup = scenario.warmup;
  sim_options.window = scenario.window;
  sim_options.track_cache_composition = true;
  NaiveJoinSimulator naive_sim(sim_options);

  HeebJoinPolicy::Options direct_options;
  direct_options.mode = HeebJoinPolicy::Mode::kDirect;
  direct_options.alpha = scenario.alpha;
  direct_options.horizon = scenario.horizon;
  HeebJoinPolicy direct(scenario.r_process.get(), scenario.s_process.get(),
                        direct_options);
  NaiveHeebJoinPolicy naive(scenario.r_process.get(),
                            scenario.s_process.get(), scenario.alpha,
                            scenario.horizon);

  JoinRunResult direct_result = RunOptimizedJoin(sim_options, r, s, direct);
  JoinRunResult naive_result = naive_sim.Run(r, s, naive);
  if (auto mismatch =
          ExpectEqualRuns(scenario.description + " [direct vs naive]",
                          naive_result, direct_result, true)) {
    return mismatch;
  }

  if (!scenario.window.has_value()) {
    HeebJoinPolicy::Options incremental_options = direct_options;
    incremental_options.mode = incremental_mode;
    if (incremental_mode == HeebJoinPolicy::Mode::kWalkTable) {
      // The walk table accumulates exactly the per-offset products kDirect
      // sums (same doubles, same order), so whole runs match exactly at
      // any horizon.
      HeebJoinPolicy table(scenario.r_process.get(), scenario.s_process.get(),
                           incremental_options);
      JoinRunResult table_result = RunOptimizedJoin(sim_options, r, s, table);
      if (table_result.total_results != direct_result.total_results ||
          table_result.counted_results != direct_result.counted_results) {
        std::ostringstream out;
        out << scenario.description
            << ": walk-table HEEB diverges from kDirect (direct "
            << direct_result.total_results << "/"
            << direct_result.counted_results << ", walk-table "
            << table_result.total_results << "/"
            << table_result.counted_results << ")";
        return out.str();
      }
    } else {
      // Corollaries 3/5 lose the truncation tail on every advance, so both
      // sides run at horizon 0 (ExpHorizon, tail < 1e-9) and compare
      // scores in lockstep. A short refresh interval keeps the e^{k/alpha}
      // amplification of that tail far below the tolerance.
      incremental_options.horizon = 0;
      incremental_options.refresh_interval = 8;
      HeebJoinPolicy::Options wide_options = direct_options;
      wide_options.horizon = 0;
      HeebJoinPolicy wide_direct(scenario.r_process.get(),
                                 scenario.s_process.get(), wide_options);
      HeebJoinPolicy incremental(scenario.r_process.get(),
                                 scenario.s_process.get(),
                                 incremental_options);
      if (auto mismatch =
              LockstepJoinScoreCompare(scenario, r, s, wide_direct,
                                       incremental, incremental_name, 1e-4)) {
        return mismatch;
      }
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Suite 3: min_cost_flow — SolveMinCostFlow on random unit-capacity
// assignment networks against exhaustive matching enumeration.

std::optional<std::string> MinCostFlowTrial(std::uint64_t seed) {
  Rng rng(seed);
  AssignmentInstance instance = MakeRandomAssignmentInstance(rng, 6, 6);

  FlowGraph graph;
  NodeId source = 0;
  NodeId sink = 0;
  std::vector<std::vector<std::int32_t>> worker_arcs;
  BuildAssignmentGraph(instance, &graph, &source, &sink, &worker_arcs);
  MinCostFlowResult solved =
      SolveMinCostFlow(graph, source, sink, instance.target_flow);

  std::vector<double> by_size = BruteForceAssignmentCosts(instance);
  std::int64_t max_matching = static_cast<std::int64_t>(by_size.size()) - 1;
  std::int64_t want_flow = std::min(instance.target_flow, max_matching);

  auto context = [&] {
    std::ostringstream out;
    out << "assignment " << instance.num_workers << "x" << instance.num_jobs
        << " target=" << instance.target_flow
        << " max_matching=" << max_matching;
    return out.str();
  };
  if (solved.flow != want_flow) {
    std::ostringstream out;
    out << context() << ": flow diverges (brute force " << want_flow
        << ", solver " << solved.flow << ")";
    return out.str();
  }
  double want_cost = by_size[static_cast<std::size_t>(want_flow)];
  if (!CloseEnough(solved.cost, want_cost)) {
    std::ostringstream out;
    out << context() << ": cost diverges (brute force " << want_cost
        << ", solver " << solved.cost << ")";
    return out.str();
  }

  std::string inconsistency = CheckFlowConsistency(graph, source, sink);
  if (!inconsistency.empty()) {
    return context() + ": " + inconsistency;
  }

  // The same instance solved by a long-lived MinCostFlowSolver (shared
  // across every trial in the process, so its workspaces have seen graphs
  // of many shapes) must reproduce the cold free-function solve exactly:
  // flow, bitwise cost, and per-arc routing. Workspace reuse may not leak
  // state between graphs.
  {
    static MinCostFlowSolver shared_solver;
    FlowGraph reuse_graph;
    NodeId reuse_source = 0;
    NodeId reuse_sink = 0;
    std::vector<std::vector<std::int32_t>> reuse_arcs;
    BuildAssignmentGraph(instance, &reuse_graph, &reuse_source, &reuse_sink,
                         &reuse_arcs);
    MinCostFlowResult reused = shared_solver.Solve(
        reuse_graph, reuse_source, reuse_sink, instance.target_flow);
    if (reused.flow != solved.flow || reused.cost != solved.cost) {
      std::ostringstream out;
      out << context() << ": reused solver diverges from cold solve (cold "
          << solved.flow << " units / cost " << solved.cost << ", reused "
          << reused.flow << " units / cost " << reused.cost << ")";
      return out.str();
    }
    for (int w = 0; w < instance.num_workers; ++w) {
      for (int j = 0; j < instance.num_jobs; ++j) {
        std::int32_t arc = worker_arcs[static_cast<std::size_t>(w)]
                                      [static_cast<std::size_t>(j)];
        if (arc < 0) continue;
        if (graph.FlowOn(static_cast<NodeId>(2 + w), arc) !=
            reuse_graph.FlowOn(static_cast<NodeId>(2 + w), arc)) {
          std::ostringstream out;
          out << context() << ": reused solver routes worker " << w
              << " / job " << j << " differently from the cold solve";
          return out.str();
        }
      }
    }
  }

  // Decode the routed matching and re-derive flow and cost from the arcs.
  std::vector<int> worker_degree(
      static_cast<std::size_t>(instance.num_workers), 0);
  std::vector<int> job_degree(static_cast<std::size_t>(instance.num_jobs),
                              0);
  std::int64_t pairs = 0;
  double arc_cost = 0.0;
  for (int w = 0; w < instance.num_workers; ++w) {
    for (int j = 0; j < instance.num_jobs; ++j) {
      std::int32_t arc =
          worker_arcs[static_cast<std::size_t>(w)][static_cast<std::size_t>(j)];
      if (arc < 0) continue;
      std::int64_t flow = graph.FlowOn(static_cast<NodeId>(2 + w), arc);
      if (flow == 0) continue;
      if (flow != 1) {
        return context() + ": unit arc carries more than one unit";
      }
      ++worker_degree[static_cast<std::size_t>(w)];
      ++job_degree[static_cast<std::size_t>(j)];
      ++pairs;
      arc_cost += instance.cost[static_cast<std::size_t>(w)]
                               [static_cast<std::size_t>(j)];
    }
  }
  for (int degree : worker_degree) {
    if (degree > 1) return context() + ": worker matched twice";
  }
  for (int degree : job_degree) {
    if (degree > 1) return context() + ": job matched twice";
  }
  if (pairs != solved.flow || !CloseEnough(arc_cost, solved.cost)) {
    std::ostringstream out;
    out << context() << ": decoded matching (" << pairs << " pairs, cost "
        << arc_cost << ") disagrees with result (" << solved.flow
        << " units, cost " << solved.cost << ")";
    return out.str();
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Suite: flow_expect — the optimized FlowExpectPolicy (graph templates,
// PredictInto buffers, workspace-reusing solver, optional dominance
// prefilter) against the frozen rebuild-everything oracle, in lockstep
// over one cache trajectory. Retained sets must match exactly — order and
// tie-breaks included — with the prefilter both off and on.

std::optional<std::string> FlowExpectTrial(std::uint64_t seed) {
  ScenarioGenerator::Options options;
  options.pool = ScenarioGenerator::Pool::kAny;
  options.min_length = 12;
  options.max_length = 32;
  options.min_capacity = 1;
  options.max_capacity = 4;
  options.window_probability = 0.3;
  ScenarioGenerator generator(options);
  Scenario scenario = generator.Sample(seed);
  Rng realization_rng(seed ^ kRealizationSalt);
  auto [r, s] = SampleRealization(scenario, realization_rng);
  Rng aux(seed ^ kAuxSalt);
  Time lookahead = aux.UniformInt(2, 4);

  FlowExpectPolicy opt_off(scenario.r_process.get(), scenario.s_process.get(),
                           {.lookahead = lookahead, .dominance_prune = false});
  FlowExpectPolicy opt_on(scenario.r_process.get(), scenario.s_process.get(),
                          {.lookahead = lookahead, .dominance_prune = true});
  NaiveFlowExpectPolicy naive_off(
      scenario.r_process.get(), scenario.s_process.get(),
      {.lookahead = lookahead, .dominance_prune = false});
  NaiveFlowExpectPolicy naive_on(
      scenario.r_process.get(), scenario.s_process.get(),
      {.lookahead = lookahead, .dominance_prune = true});

  auto compare = [&](const char* variant, Time t,
                     const std::vector<TupleId>& oracle,
                     const std::vector<TupleId>& optimized)
      -> std::optional<std::string> {
    if (oracle == optimized) return std::nullopt;
    std::ostringstream out;
    out << scenario.description << " lookahead=" << lookahead << " step " << t
        << " [" << variant << "]: retained sets diverge (oracle {";
    for (TupleId id : oracle) out << " " << id;
    out << " }, optimized {";
    for (TupleId id : optimized) out << " " << id;
    out << " })";
    return out.str();
  };

  std::vector<Tuple> cache;
  StreamHistory history_r;
  StreamHistory history_s;
  for (Time t = 0; t < scenario.length; ++t) {
    Value rv = r[static_cast<std::size_t>(t)];
    Value sv = s[static_cast<std::size_t>(t)];
    history_r.Append(rv);
    history_s.Append(sv);
    std::vector<Tuple> arrivals = {
        Tuple{TupleIdAt(StreamSide::kR, t), StreamSide::kR, rv, t},
        Tuple{TupleIdAt(StreamSide::kS, t), StreamSide::kS, sv, t}};
    PolicyContext ctx;
    ctx.now = t;
    ctx.capacity = scenario.capacity;
    ctx.cached = &cache;
    ctx.arrivals = &arrivals;
    ctx.history_r = &history_r;
    ctx.history_s = &history_s;
    ctx.window = scenario.window;

    std::vector<TupleId> retained = opt_off.SelectRetained(ctx);
    if (auto mismatch =
            compare("prune off", t, naive_off.SelectRetained(ctx), retained)) {
      return mismatch;
    }
    if (auto mismatch = compare("prune on", t, naive_on.SelectRetained(ctx),
                                opt_on.SelectRetained(ctx))) {
      return mismatch;
    }

    // Advance the cache along the prune-off decider's trajectory (both
    // variants are optimal, but tie-breaks may legitimately differ between
    // them; each is compared against its own oracle on the same contexts).
    std::vector<Tuple> next;
    next.reserve(retained.size());
    for (TupleId id : retained) {
      for (const Tuple& tuple : cache) {
        if (tuple.id == id) next.push_back(tuple);
      }
      for (const Tuple& tuple : arrivals) {
        if (tuple.id == id) next.push_back(tuple);
      }
    }
    cache = std::move(next);
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Suite 4: offline_opt — OptOfflinePolicy's min-cost-flow schedule against
// exhaustive eviction search on tiny instances.

std::optional<std::string> OfflineOptTrial(std::uint64_t seed) {
  Rng rng(seed);
  Time length = rng.UniformInt(4, 9);
  std::size_t capacity = static_cast<std::size_t>(rng.UniformInt(1, 3));
  Value domain = rng.UniformInt(2, 4);
  std::vector<Value> r;
  std::vector<Value> s;
  for (Time t = 0; t < length; ++t) {
    r.push_back(rng.UniformInt(0, domain - 1));
    s.push_back(rng.UniformInt(0, domain - 1));
  }
  std::optional<Time> window;
  if (rng.UniformReal() < 0.4) window = rng.UniformInt(0, 4);

  std::int64_t brute =
      BruteForceOfflineOptBenefit(r, s, capacity, window);
  OptOfflinePolicy opt(r, s, capacity, window);

  auto context = [&] {
    std::ostringstream out;
    out << "len=" << length << " cap=" << capacity << " domain=" << domain;
    if (window.has_value()) out << " window=" << *window;
    return out.str();
  };
  if (opt.optimal_benefit() != brute) {
    std::ostringstream out;
    out << context() << ": optimal benefit diverges (brute force " << brute
        << ", flow " << opt.optimal_benefit() << ")";
    return out.str();
  }

  JoinSimulator::Options sim_options;
  sim_options.capacity = capacity;
  sim_options.window = window;
  JoinRunResult replayed = RunOptimizedJoin(sim_options, r, s, opt);
  if (replayed.total_results != brute) {
    std::ostringstream out;
    out << context() << ": replayed schedule produces "
        << replayed.total_results << " results, brute force says " << brute;
    return out.str();
  }
  JoinRunResult naive_replayed = NaiveJoinSimulator(sim_options).Run(r, s, opt);
  return ExpectEqualRuns(context() + " [replay, naive vs optimized sim]",
                         naive_replayed, replayed, false);
}

// ---------------------------------------------------------------------------
// Suite 5: join_simulator — JoinSimulator (hoisted buffers, value->count
// index) against NaiveJoinSimulator, and the two-stream MultiJoinSimulator
// against the binary engine, under assorted baseline policies.

std::optional<std::string> JoinSimulatorTrial(std::uint64_t seed) {
  ScenarioGenerator::Options options;
  options.pool = ScenarioGenerator::Pool::kIndependent;
  options.min_length = 48;
  options.max_length = 120;
  options.min_capacity = 1;
  options.max_capacity = 8;
  options.window_probability = 0.3;
  ScenarioGenerator generator(options);
  Scenario scenario = generator.Sample(seed);

  Rng aux(seed ^ kAuxSalt);
  if (aux.UniformReal() < 0.3) {
    // Exercise the value->count index: it only engages unwindowed at
    // capacity >= 32 (kValueIndexMinCapacity). The sampled length stays —
    // scripted processes only cover their sampled run.
    scenario.capacity = static_cast<std::size_t>(aux.UniformInt(32, 40));
    scenario.window.reset();
  }
  Rng realization_rng(seed ^ kRealizationSalt);
  auto [r, s] = SampleRealization(scenario, realization_rng);

  std::unique_ptr<ReplacementPolicy> policy;
  std::optional<Time> assumed_lifetime;
  if (aux.UniformReal() < 0.5) assumed_lifetime = aux.UniformInt(4, 24);
  switch (aux.UniformInt(0, 2)) {
    case 0:
      policy = std::make_unique<RandomPolicy>(seed ^ kAuxSalt,
                                              assumed_lifetime);
      break;
    case 1:
      policy = std::make_unique<ProbPolicy>(assumed_lifetime);
      break;
    default:
      policy = std::make_unique<LifePolicy>(aux.UniformInt(4, 24));
      break;
  }

  JoinSimulator::Options sim_options;
  sim_options.capacity = scenario.capacity;
  sim_options.warmup = scenario.warmup;
  sim_options.window = scenario.window;
  sim_options.track_cache_composition = true;
  JoinRunResult optimized = RunOptimizedJoin(sim_options, r, s, *policy);
  JoinRunResult naive = NaiveJoinSimulator(sim_options).Run(r, s, *policy);
  std::string context =
      scenario.description + " policy=" + policy->name();
  if (auto mismatch = ExpectEqualRuns(context + " [naive vs optimized sim]",
                                      naive, optimized, true)) {
    return mismatch;
  }

  // Two streams joined along the single edge (0, 1) must reduce exactly to
  // the binary simulator.
  MultiJoinSimulator::Options multi_options;
  multi_options.capacity = sim_options.capacity;
  multi_options.warmup = sim_options.warmup;
  multi_options.window = sim_options.window;
  MultiJoinSimulator multi_sim(2, {{0, 1}}, multi_options);
  BinaryAsMultiPolicy adapter(policy.get());
  MultiJoinRunResult multi = multi_sim.Run({r, s}, adapter);
  if (multi.total_results != optimized.total_results ||
      multi.counted_results != optimized.counted_results) {
    std::ostringstream out;
    out << context << ": two-stream multi join diverges from binary (binary "
        << optimized.total_results << "/" << optimized.counted_results
        << ", multi " << multi.total_results << "/" << multi.counted_results
        << ")";
    return out.str();
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Suite 6: reduction — Theorem 1 (caching hits == joining results on the
// transformed streams) under assorted caching policies, windowed and not;
// the engine-backed CacheSimulator against the pre-engine direct loop
// (NaiveCacheSimulator); plus HeebCachingPolicy kDirect against its naive
// oracle and kTimeIncremental against kDirect.

std::optional<std::string> ReductionTrial(std::uint64_t seed) {
  ScenarioGenerator::Options options;
  options.pool = ScenarioGenerator::Pool::kIndependent;
  options.min_length = 48;
  options.max_length = 110;
  options.min_capacity = 2;
  options.max_capacity = 6;
  options.max_horizon = 12;
  options.window_probability = 0.3;
  ScenarioGenerator generator(options);
  Scenario scenario = generator.Sample(seed);
  const StochasticProcess& reference = *scenario.r_process;
  Rng realization_rng(seed ^ kRealizationSalt);
  std::vector<Value> references =
      SampleStream(reference, scenario.length, realization_rng);

  Rng aux(seed ^ kAuxSalt);
  std::unique_ptr<CachingPolicy> policy;
  switch (aux.UniformInt(0, 2)) {
    case 0:
      policy = std::make_unique<LruCachingPolicy>();
      break;
    case 1:
      policy = std::make_unique<LfuCachingPolicy>();
      break;
    default:
      policy = std::make_unique<RandomCachingPolicy>(seed ^ kAuxSalt);
      break;
  }

  CacheSimulator::Options cache_options;
  cache_options.capacity = scenario.capacity;
  cache_options.warmup = scenario.warmup;
  cache_options.window = scenario.window;
  // Under SJOIN_DIFF_SHARDS the engine-backed side runs sharded while the
  // naive loop stays serial — every comparison below then doubles as a
  // sharding bit-identity check on the reduction path (and a threading
  // one under SJOIN_DIFF_THREADS).
  if (DiffShards() > 0) cache_options.shards = DiffShards();
  if (DiffThreads() > 0) cache_options.threads = DiffThreads();
  if (DiffAdaptive()) {
    if (cache_options.shards <= 1) cache_options.shards = 4;
    cache_options.adaptive_shards = true;
    cache_options.adaptive_interval = 8;
  }
  CacheSimulator cache_sim(cache_options);
  CacheRunResult cached = cache_sim.Run(references, *policy);
  std::string context = scenario.description + " policy=" + policy->name();

  // The engine-backed façade against the frozen pre-engine caching loop,
  // bit for bit on all four counters (the TTL-refresh window semantics
  // must agree too).
  CacheRunResult naive_cached =
      NaiveCacheSimulator(cache_options).Run(references, *policy);
  if (cached.hits != naive_cached.hits ||
      cached.misses != naive_cached.misses ||
      cached.counted_hits != naive_cached.counted_hits ||
      cached.counted_misses != naive_cached.counted_misses) {
    std::ostringstream out;
    out << context << ": CacheSimulator diverges from the naive cache loop "
        << "(naive " << naive_cached.hits << "h/" << naive_cached.misses
        << "m counted " << naive_cached.counted_hits << "/"
        << naive_cached.counted_misses << ", engine " << cached.hits << "h/"
        << cached.misses << "m counted " << cached.counted_hits << "/"
        << cached.counted_misses << ")";
    return out.str();
  }

  CachingReduction reduction(references);
  ReductionJoinPolicy reduced_policy(&reduction, policy.get());
  JoinSimulator::Options sim_options;
  sim_options.capacity = scenario.capacity;
  sim_options.warmup = scenario.warmup;
  sim_options.window = scenario.window;
  JoinRunResult joined =
      RunOptimizedJoin(sim_options, reduction.r_stream(),
                       reduction.s_stream(), reduced_policy);
  if (joined.total_results != cached.hits ||
      joined.counted_results != cached.counted_hits) {
    std::ostringstream out;
    out << context << ": Theorem 1 violated (caching " << cached.hits << "/"
        << cached.counted_hits << " hits, reduced join "
        << joined.total_results << "/" << joined.counted_results
        << " results)";
    return out.str();
  }
  JoinRunResult naive_joined =
      NaiveJoinSimulator(sim_options)
          .Run(reduction.r_stream(), reduction.s_stream(), reduced_policy);
  if (auto mismatch =
          ExpectEqualRuns(context + " [reduced join, naive vs optimized sim]",
                          naive_joined, joined, false)) {
    return mismatch;
  }

  // Caching HEEB: the optimized direct path must reproduce the naive oracle
  // run exactly; the Corollary 4 incremental path must reproduce kDirect's
  // hit counts.
  HeebCachingPolicy::Options direct_options;
  direct_options.mode = HeebCachingPolicy::Mode::kDirect;
  direct_options.alpha = scenario.alpha;
  direct_options.horizon = scenario.horizon;
  HeebCachingPolicy direct(&reference, direct_options);
  NaiveHeebCachingPolicy naive(&reference, scenario.alpha, scenario.horizon);
  CacheRunResult direct_run = cache_sim.Run(references, direct);
  CacheRunResult naive_run = cache_sim.Run(references, naive);
  if (direct_run.hits != naive_run.hits ||
      direct_run.misses != naive_run.misses ||
      direct_run.counted_hits != naive_run.counted_hits ||
      direct_run.counted_misses != naive_run.counted_misses) {
    std::ostringstream out;
    out << scenario.description
        << ": caching HEEB kDirect diverges from naive oracle (naive "
        << naive_run.hits << "/" << naive_run.counted_hits << ", direct "
        << direct_run.hits << "/" << direct_run.counted_hits << ")";
    return out.str();
  }
  // The Corollary 4 recurrence amplifies drift by e^{1/alpha}/(1-p) per
  // step, so kTimeIncremental is verified scorewise in lockstep against
  // kDirect — both at horizon 0 (ExpHorizon) with a short refresh
  // interval — rather than on whole-run hit counts, where a drift-sized
  // near-tie can legitimately flip an eviction.
  HeebCachingPolicy::Options wide_options = direct_options;
  wide_options.horizon = 0;
  HeebCachingPolicy wide_direct(&reference, wide_options);
  HeebCachingPolicy::Options incremental_options = wide_options;
  incremental_options.mode = HeebCachingPolicy::Mode::kTimeIncremental;
  incremental_options.refresh_interval = 4;
  HeebCachingPolicy incremental(&reference, incremental_options);
  return LockstepCachingScoreCompare(scenario, references, wide_direct,
                                     incremental, "kTimeIncremental", 1e-3);
}

// ---------------------------------------------------------------------------
// Suite 8: sharded_engine — ShardedStreamEngine across shard counts
// {1, 2, 4, 8} crossed with worker-team sizes (inline, fewer threads than
// shards, one per shard, more threads than shards) against the serial
// StreamEngine on the same realization and policy, bit for bit: per-step
// retained ids (in policy order), post-step cache contents, produced
// counts, candidate-set sizes, run totals, and merged telemetry. This is
// the direct statement of the sharding contract; the SJOIN_DIFF_SHARDS /
// SJOIN_DIFF_THREADS hooks additionally re-run the other suites' oracles
// sharded (and threaded).

/// Records the full per-step trace of an engine run for exact comparison.
class EngineTraceObserver final : public StepObserver {
 public:
  void OnStep(const EngineStepView& step) override {
    retained_.push_back(*step.retained);
    cache_.push_back(*step.cache);
    produced_.push_back(step.produced);
    candidates_.push_back(step.num_candidates);
  }

  const std::vector<std::vector<TupleId>>& retained() const {
    return retained_;
  }
  const std::vector<std::vector<StreamTuple>>& cache() const {
    return cache_;
  }
  const std::vector<std::int64_t>& produced() const { return produced_; }
  const std::vector<std::size_t>& candidates() const { return candidates_; }

 private:
  std::vector<std::vector<TupleId>> retained_;
  std::vector<std::vector<StreamTuple>> cache_;
  std::vector<std::int64_t> produced_;
  std::vector<std::size_t> candidates_;
};

bool SameStreamTuple(const StreamTuple& a, const StreamTuple& b) {
  return a.id == b.id && a.stream == b.stream && a.value == b.value &&
         a.arrival == b.arrival;
}

std::optional<std::string> CompareEngineTraces(
    const std::string& context, const EngineTraceObserver& serial,
    const EngineTraceObserver& sharded) {
  std::ostringstream out;
  if (serial.retained().size() != sharded.retained().size()) {
    out << context << ": step counts diverge (serial "
        << serial.retained().size() << ", sharded "
        << sharded.retained().size() << ")";
    return out.str();
  }
  for (std::size_t t = 0; t < serial.retained().size(); ++t) {
    if (serial.produced()[t] != sharded.produced()[t]) {
      out << context << ": produced diverges at step " << t << " (serial "
          << serial.produced()[t] << ", sharded " << sharded.produced()[t]
          << ")";
      return out.str();
    }
    if (serial.candidates()[t] != sharded.candidates()[t]) {
      out << context << ": num_candidates diverges at step " << t
          << " (serial " << serial.candidates()[t] << ", sharded "
          << sharded.candidates()[t] << ")";
      return out.str();
    }
    if (serial.retained()[t] != sharded.retained()[t]) {
      out << context << ": retained ids diverge at step " << t;
      return out.str();
    }
    const std::vector<StreamTuple>& sc = serial.cache()[t];
    const std::vector<StreamTuple>& hc = sharded.cache()[t];
    if (sc.size() != hc.size() ||
        !std::equal(sc.begin(), sc.end(), hc.begin(), &SameStreamTuple)) {
      out << context << ": cache contents diverge at step " << t;
      return out.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> ShardedEngineTrial(std::uint64_t seed) {
  ScenarioGenerator::Options options;
  options.min_length = 32;
  options.max_length = 80;
  options.min_capacity = 2;
  options.max_capacity = 8;
  options.max_horizon = 12;
  // Rotate over every shard-scorable join policy family. Value-incremental
  // HEEB needs trend processes and no window; the others sample windows.
  const int variant = static_cast<int>(seed % 5);
  options.pool = variant == 3 ? ScenarioGenerator::Pool::kEqualSlopeTrends
                              : ScenarioGenerator::Pool::kIndependent;
  options.window_probability = variant == 3 ? 0.0 : 0.3;
  ScenarioGenerator generator(options);
  Scenario scenario = generator.Sample(seed);

  Rng aux(seed ^ kAuxSalt);
  if (variant != 3 && aux.UniformReal() < 0.3) {
    // Engage the per-shard value->count indexes (unwindowed, capacity >=
    // StreamEngine::kValueIndexMinCapacity).
    scenario.capacity = static_cast<std::size_t>(aux.UniformInt(32, 40));
    scenario.window.reset();
  }
  Rng realization_rng(seed ^ kRealizationSalt);
  auto [r, s] = SampleRealization(scenario, realization_rng);

  std::unique_ptr<ReplacementPolicy> policy;
  switch (variant) {
    case 0:
    case 2:
    case 3: {
      HeebJoinPolicy::Options heeb_options;
      heeb_options.mode = variant == 0 ? HeebJoinPolicy::Mode::kDirect
                          : variant == 2
                              ? HeebJoinPolicy::Mode::kTimeIncremental
                              : HeebJoinPolicy::Mode::kValueIncremental;
      if (variant == 2) scenario.window.reset();  // incremental: unwindowed
      heeb_options.alpha = scenario.alpha;
      heeb_options.horizon = scenario.horizon;
      heeb_options.refresh_interval = 8;
      policy = std::make_unique<HeebJoinPolicy>(scenario.r_process.get(),
                                                scenario.s_process.get(),
                                                heeb_options);
      break;
    }
    case 1: {
      std::optional<Time> assumed_lifetime;
      if (aux.UniformReal() < 0.5) assumed_lifetime = aux.UniformInt(4, 24);
      policy = std::make_unique<ProbPolicy>(assumed_lifetime);
      break;
    }
    default:
      policy = std::make_unique<LifePolicy>(aux.UniformInt(4, 24));
      break;
  }

  BinaryPolicyAdapter adapter(policy.get());
  if (adapter.shard_scoring() == nullptr) {
    return scenario.description + " policy=" + policy->name() +
           ": expected a shard-scorable policy (coverage would be vacuous)";
  }

  const StreamEngine::Options engine_options{.capacity = scenario.capacity,
                                             .warmup = scenario.warmup,
                                             .window = scenario.window};
  StreamEngine serial_engine(StreamTopology::Binary(), engine_options);
  EngineTraceObserver serial_trace;
  PerfObserver serial_perf;
  EngineRunResult serial_run =
      serial_engine.Run({&r, &s}, adapter, {&serial_perf, &serial_trace});

  // Shard counts cross worker-team sizes: threads == 1 is the inline
  // path, threads < shards folds several shards onto one worker,
  // threads == shards is one shard per worker, and threads > shards
  // leaves workers idle. Every combination must reproduce the serial
  // trace bit for bit — the merge cascade's output is independent of
  // how (or whether) its pair merges are parallelized.
  struct ShardCase {
    int shards;
    int threads;
  };
  constexpr ShardCase kCases[] = {{1, 1}, {2, 2}, {4, 1}, {4, 2},
                                  {4, 4}, {8, 3}, {4, 8}};
  for (const ShardCase c : kCases) {
    ShardedStreamEngine sharded(StreamTopology::Binary(),
                                {.capacity = scenario.capacity,
                                 .warmup = scenario.warmup,
                                 .window = scenario.window,
                                 .shards = c.shards,
                                 .threads = c.threads});
    EngineTraceObserver trace;
    PerfObserver perf;
    EngineRunResult run =
        sharded.Run({&r, &s}, adapter, {&perf, &trace});

    std::ostringstream context;
    context << scenario.description << " policy=" << policy->name()
            << " shards=" << c.shards << " threads=" << c.threads;
    if (run.total_results != serial_run.total_results ||
        run.counted_results != serial_run.counted_results) {
      std::ostringstream out;
      out << context.str() << ": result counts diverge (serial "
          << serial_run.total_results << "/" << serial_run.counted_results
          << ", sharded " << run.total_results << "/" << run.counted_results
          << ")";
      return out.str();
    }
    if (perf.telemetry().peak_candidates !=
            serial_perf.telemetry().peak_candidates ||
        perf.telemetry().steps != serial_perf.telemetry().steps) {
      std::ostringstream out;
      out << context.str() << ": telemetry diverges (serial peak "
          << serial_perf.telemetry().peak_candidates << " steps "
          << serial_perf.telemetry().steps << ", sharded peak "
          << perf.telemetry().peak_candidates << " steps "
          << perf.telemetry().steps << ")";
      return out.str();
    }
    if (auto mismatch =
            CompareEngineTraces(context.str(), serial_trace, trace)) {
      return mismatch;
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Suite 9: adaptive_engine — the skew-adaptive partition map under the
// workloads it exists for (Zipf popularity, bursty phases, regime
// switches that move the hot set mid-run) against the serial
// StreamEngine, bit for bit on full per-step traces. Each case then
// reruns on the same engine and requires the identical trace AND the
// identical rebalance history, action for action — the rebalancer is a
// pure function of observed load, so its decisions must reproduce
// exactly across reruns and thread counts.

std::optional<std::string> AdaptiveEngineTrial(std::uint64_t seed) {
  ScenarioGenerator::Options options;
  options.pool = ScenarioGenerator::Pool::kSkewed;
  options.min_length = 48;
  options.max_length = 112;
  options.min_capacity = 2;
  options.max_capacity = 8;
  options.max_horizon = 12;
  options.window_probability = 0.3;
  const int variant = static_cast<int>(seed % 4);
  ScenarioGenerator generator(options);
  Scenario scenario = generator.Sample(seed);

  Rng aux(seed ^ kAuxSalt);
  if (aux.UniformReal() < 0.25) {
    // Engage the per-shard value->count indexes (unwindowed, capacity >=
    // StreamEngine::kValueIndexMinCapacity) so migration has to rebuild
    // them alongside the cache slices.
    scenario.capacity = static_cast<std::size_t>(aux.UniformInt(32, 40));
    scenario.window.reset();
  }
  Rng realization_rng(seed ^ kRealizationSalt);
  auto [r, s] = SampleRealization(scenario, realization_rng);

  std::unique_ptr<ReplacementPolicy> policy;
  switch (variant) {
    case 0:
    case 1: {
      HeebJoinPolicy::Options heeb_options;
      heeb_options.mode = variant == 0
                              ? HeebJoinPolicy::Mode::kDirect
                              : HeebJoinPolicy::Mode::kTimeIncremental;
      if (variant == 1) scenario.window.reset();  // incremental: unwindowed
      heeb_options.alpha = scenario.alpha;
      heeb_options.horizon = scenario.horizon;
      heeb_options.refresh_interval = 8;
      policy = std::make_unique<HeebJoinPolicy>(scenario.r_process.get(),
                                                scenario.s_process.get(),
                                                heeb_options);
      break;
    }
    case 2: {
      std::optional<Time> assumed_lifetime;
      if (aux.UniformReal() < 0.5) assumed_lifetime = aux.UniformInt(4, 24);
      policy = std::make_unique<ProbPolicy>(assumed_lifetime);
      break;
    }
    default:
      policy = std::make_unique<LifePolicy>(aux.UniformInt(4, 24));
      break;
  }

  BinaryPolicyAdapter adapter(policy.get());
  if (adapter.shard_scoring() == nullptr) {
    return scenario.description + " policy=" + policy->name() +
           ": expected a shard-scorable policy (coverage would be vacuous)";
  }

  const StreamEngine::Options engine_options{.capacity = scenario.capacity,
                                             .warmup = scenario.warmup,
                                             .window = scenario.window};
  StreamEngine serial_engine(StreamTopology::Binary(), engine_options);
  EngineTraceObserver serial_trace;
  PerfObserver serial_perf;
  EngineRunResult serial_run =
      serial_engine.Run({&r, &s}, adapter, {&serial_perf, &serial_trace});

  // Shards cross threads cross rebalance intervals, including intervals
  // short enough that several migrations land inside one run.
  struct AdaptiveCase {
    int shards;
    int threads;
    Time interval;
  };
  constexpr AdaptiveCase kCases[] = {
      {2, 2, 8}, {4, 1, 4}, {4, 4, 8}, {8, 3, 16}};
  for (const AdaptiveCase c : kCases) {
    ShardedStreamEngine sharded(
        StreamTopology::Binary(),
        {.capacity = scenario.capacity,
         .warmup = scenario.warmup,
         .window = scenario.window,
         .shards = c.shards,
         .threads = c.threads,
         .adaptive = {.enabled = true, .interval = c.interval}});
    EngineTraceObserver trace;
    PerfObserver perf;
    EngineRunResult run = sharded.Run({&r, &s}, adapter, {&perf, &trace});

    std::ostringstream context;
    context << scenario.description << " policy=" << policy->name()
            << " shards=" << c.shards << " threads=" << c.threads
            << " interval=" << c.interval;
    if (run.total_results != serial_run.total_results ||
        run.counted_results != serial_run.counted_results) {
      std::ostringstream out;
      out << context.str() << ": result counts diverge (serial "
          << serial_run.total_results << "/" << serial_run.counted_results
          << ", adaptive " << run.total_results << "/" << run.counted_results
          << ")";
      return out.str();
    }
    if (perf.telemetry().peak_candidates !=
            serial_perf.telemetry().peak_candidates ||
        perf.telemetry().steps != serial_perf.telemetry().steps) {
      std::ostringstream out;
      out << context.str() << ": telemetry diverges (serial peak "
          << serial_perf.telemetry().peak_candidates << " steps "
          << serial_perf.telemetry().steps << ", adaptive peak "
          << perf.telemetry().peak_candidates << " steps "
          << perf.telemetry().steps << ")";
      return out.str();
    }
    if (auto mismatch =
            CompareEngineTraces(context.str(), serial_trace, trace)) {
      return mismatch;
    }

    const AdaptivePartitionMap* map = sharded.adaptive_map();
    if (map == nullptr) {
      return context.str() + ": adaptive map missing after an adaptive run";
    }
    const std::vector<AdaptivePartitionMap::RebalanceAction> history =
        map->history();
    const std::uint64_t version = map->version();
    const AdaptiveShardStats stats = sharded.adaptive_stats();
    if (stats.windows <= 0) {
      return context.str() + ": adaptive run recorded no checkpoint windows";
    }

    EngineTraceObserver rerun_trace;
    sharded.Run({&r, &s}, adapter, {&rerun_trace});
    if (auto mismatch = CompareEngineTraces(context.str() + " [rerun]",
                                            serial_trace, rerun_trace)) {
      return mismatch;
    }
    if (sharded.adaptive_map()->version() != version ||
        sharded.adaptive_map()->history() != history) {
      std::ostringstream out;
      out << context.str()
          << ": rebalance history diverges across reruns (first run v"
          << version << " with " << history.size() << " actions, rerun v"
          << sharded.adaptive_map()->version() << " with "
          << sharded.adaptive_map()->history().size() << " actions)";
      return out.str();
    }
    const AdaptiveShardStats rerun_stats = sharded.adaptive_stats();
    if (rerun_stats.windows != stats.windows ||
        rerun_stats.rebalances != stats.rebalances ||
        rerun_stats.map_version != stats.map_version ||
        rerun_stats.static_ratio_sum != stats.static_ratio_sum ||
        rerun_stats.adaptive_ratio_sum != stats.adaptive_ratio_sum) {
      return context.str() + ": adaptive stats diverge across reruns";
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Suite 10: multi_planner — the runtime probe planner (DESIGN.md §2f) on
// multi-way topologies (3-way chain, 5-way star) crossed with the four
// multi policy families {MULTI-HEEB, MULTI-PROB, MULTI-LIFE, EDGE-BUDGET}.
// Planner-on runs (re-planned probe order + empty-partner skips + the
// (partner, value) probe-result cache) must reproduce the naive
// fixed-order engine bit for bit on full per-step traces, with the
// policy's ScoreMemo both off and on; a rerun must additionally replay
// the identical planner statistics (plans are pure functions of the run
// prefix). SJOIN_DIFF_MULTI adds façade and sharded-fallback reruns.

std::optional<std::string> MultiPlannerTrial(std::uint64_t seed) {
  Rng aux(seed ^ kAuxSalt);
  const bool star = seed % 2 == 1;
  const int n = star ? 5 : 3;
  const std::vector<std::pair<int, int>> edges =
      star ? std::vector<std::pair<int, int>>{{0, 1}, {0, 2}, {0, 3}, {0, 4}}
           : std::vector<std::pair<int, int>>{{0, 1}, {1, 2}};
  const int variant = static_cast<int>((seed / 2) % 4);

  const Time len = aux.UniformInt(48, 112);
  std::size_t capacity = static_cast<std::size_t>(aux.UniformInt(2, 10));
  std::optional<Time> window;
  if (aux.UniformReal() < 0.3) window = aux.UniformInt(6, 24);
  if (!window.has_value() && aux.UniformReal() < 0.25) {
    // Engage the per-partner value->count indexes (unwindowed, capacity >=
    // StreamEngine::kValueIndexMinCapacity) so the planner's memo sits in
    // front of the indexed probe path too.
    capacity = static_cast<std::size_t>(aux.UniformInt(32, 40));
  }
  const Time warmup = aux.UniformInt(0, 10);
  const Time replan_interval = aux.UniformInt(4, 24);

  // Drifting trend processes with overlapping value ranges so every edge
  // sees real matches and real misses.
  Rng realization_rng(seed ^ kRealizationSalt);
  std::vector<std::unique_ptr<LinearTrendProcess>> owned;
  std::vector<const StochasticProcess*> processes;
  std::vector<std::vector<Value>> streams;
  std::vector<const std::vector<Value>*> stream_ptrs;
  for (int s = 0; s < n; ++s) {
    const double slope = 0.25 * aux.UniformInt(0, 4);
    const double intercept = aux.UniformInt(-3, 3);
    const int bound = aux.UniformInt(4, 10);
    owned.push_back(std::make_unique<LinearTrendProcess>(
        slope, intercept,
        DiscreteDistribution::TruncatedDiscretizedNormal(
            0.0, 2.0, -bound, bound)));
    processes.push_back(owned.back().get());
    streams.push_back(SampleRealization(*owned.back(), len, realization_rng));
  }
  for (const auto& stream : streams) stream_ptrs.push_back(&stream);

  const StreamTopology topology(n, edges);
  const MultiJoinSimulator::Options facade_options{
      .capacity = capacity, .warmup = warmup, .window = window};
  const MultiJoinSimulator facade(n, edges, facade_options);

  // The same policy family with the score memo off and on — the memoized
  // per-partner subtotals must not move a single bit of any score.
  std::unique_ptr<EnginePolicy> plain;
  std::unique_ptr<EnginePolicy> memoized;
  const double alpha = 4.0 + aux.UniformInt(0, 12);
  const Time horizon = aux.UniformInt(8, 40);
  switch (variant) {
    case 0:
      plain = std::make_unique<MultiHeebPolicy>(
          processes, &facade,
          MultiHeebPolicy::Options{.alpha = alpha, .horizon = horizon});
      memoized = std::make_unique<MultiHeebPolicy>(
          processes, &facade,
          MultiHeebPolicy::Options{
              .alpha = alpha, .horizon = horizon, .use_score_cache = true});
      break;
    case 1: {
      std::optional<Time> assumed_lifetime;
      if (aux.UniformReal() < 0.5) assumed_lifetime = aux.UniformInt(4, 24);
      plain = std::make_unique<MultiProbPolicy>(
          &facade, MultiProbPolicy::Options{.assumed_lifetime =
                                                assumed_lifetime});
      memoized = std::make_unique<MultiProbPolicy>(
          &facade, MultiProbPolicy::Options{.assumed_lifetime =
                                                assumed_lifetime,
                                            .use_score_cache = true});
      break;
    }
    case 2: {
      const Time lifetime = aux.UniformInt(4, 32);
      plain = std::make_unique<MultiLifePolicy>(
          &facade, MultiLifePolicy::Options{.lifetime = lifetime});
      memoized = std::make_unique<MultiLifePolicy>(
          &facade, MultiLifePolicy::Options{.lifetime = lifetime,
                                            .use_score_cache = true});
      break;
    }
    default: {
      const Time realloc_interval = aux.UniformInt(4, 24);
      plain = std::make_unique<EdgeBudgetPolicy>(
          processes, &topology,
          EdgeBudgetPolicy::Options{.alpha = alpha,
                                    .horizon = horizon,
                                    .realloc_interval = realloc_interval});
      memoized = std::make_unique<EdgeBudgetPolicy>(
          processes, &topology,
          EdgeBudgetPolicy::Options{.alpha = alpha,
                                    .horizon = horizon,
                                    .realloc_interval = realloc_interval,
                                    .use_score_cache = true});
      break;
    }
  }

  std::ostringstream context;
  context << (star ? "star5" : "chain3") << " policy=" << plain->name()
          << " len=" << len << " k=" << capacity
          << " window=" << (window.has_value() ? *window : -1)
          << " replan=" << replan_interval;

  const StreamEngine::Options naive_options{
      .capacity = capacity, .warmup = warmup, .window = window};
  StreamEngine naive_engine(topology, naive_options);
  EngineTraceObserver naive_trace;
  PerfObserver naive_perf;
  const EngineRunResult naive_run =
      naive_engine.Run(stream_ptrs, *plain, {&naive_perf, &naive_trace});

  ProbePlanner planner({.replan_interval = replan_interval});
  const StreamEngine::Options planned_options{.capacity = capacity,
                                              .warmup = warmup,
                                              .window = window,
                                              .probe_planner = &planner};
  StreamEngine planned_engine(topology, planned_options);

  auto check_planned = [&](EnginePolicy& policy, const std::string& label)
      -> std::optional<std::string> {
    EngineTraceObserver trace;
    PerfObserver perf;
    const EngineRunResult run =
        planned_engine.Run(stream_ptrs, policy, {&perf, &trace});
    if (run.total_results != naive_run.total_results ||
        run.counted_results != naive_run.counted_results) {
      std::ostringstream out;
      out << context.str() << " [" << label
          << "]: result counts diverge (naive " << naive_run.total_results
          << "/" << naive_run.counted_results << ", planned "
          << run.total_results << "/" << run.counted_results << ")";
      return out.str();
    }
    if (auto mismatch = CompareEngineTraces(context.str() + " [" + label +
                                                "]",
                                            naive_trace, trace)) {
      return mismatch;
    }
    const ProbePlanStats& stats = planner.stats();
    if (stats.probes !=
        stats.skipped + stats.cache_hits + stats.evaluated) {
      std::ostringstream out;
      out << context.str() << " [" << label
          << "]: planner stats do not partition (" << stats.probes << " != "
          << stats.skipped << " + " << stats.cache_hits << " + "
          << stats.evaluated << ")";
      return out.str();
    }
    if (perf.telemetry().probes != stats.probes ||
        perf.telemetry().plan_replans != stats.replans) {
      return context.str() + " [" + label +
             "]: telemetry disagrees with the planner's own accounting";
    }
    return std::nullopt;
  };

  if (auto mismatch = check_planned(*plain, "planner")) return mismatch;
  const ProbePlanStats first_stats = planner.stats();
  if (auto mismatch = check_planned(*memoized, "planner+memo")) {
    return mismatch;
  }
  // Rerun determinism: plans are pure functions of the observed prefix,
  // so the second pass must replay the first's statistics exactly.
  const ProbePlanStats rerun_stats = planner.stats();
  if (rerun_stats.probes != first_stats.probes ||
      rerun_stats.skipped != first_stats.skipped ||
      rerun_stats.cache_hits != first_stats.cache_hits ||
      rerun_stats.evaluated != first_stats.evaluated ||
      rerun_stats.replans != first_stats.replans ||
      rerun_stats.checkpoints != first_stats.checkpoints) {
    std::ostringstream out;
    out << context.str() << ": planner stats diverge across reruns ("
        << first_stats.probes << "/" << first_stats.skipped << "/"
        << first_stats.cache_hits << "/" << first_stats.evaluated << "/"
        << first_stats.replans << " vs " << rerun_stats.probes << "/"
        << rerun_stats.skipped << "/" << rerun_stats.cache_hits << "/"
        << rerun_stats.evaluated << "/" << rerun_stats.replans << ")";
    return out.str();
  }

  if (DiffMulti()) {
    // Façade reruns, planner off and on: MultiJoinSimulator adds nothing
    // but plumbing over the engine.
    MultiJoinRunResult facade_naive = facade.Run(streams, *plain);
    MultiJoinSimulator::Options planned_facade_options = facade_options;
    planned_facade_options.planner = true;
    planned_facade_options.replan_interval = replan_interval;
    const MultiJoinSimulator planned_facade(n, edges,
                                            planned_facade_options);
    MultiJoinRunResult facade_planned = planned_facade.Run(streams, *plain);
    if (facade_naive.counted_results != naive_run.counted_results ||
        facade_planned.counted_results != naive_run.counted_results ||
        facade_naive.total_results != naive_run.total_results ||
        facade_planned.total_results != naive_run.total_results) {
      return context.str() + ": facade reruns diverge from the engine";
    }
    if (facade_planned.telemetry.probes <= 0) {
      return context.str() +
             ": planned facade rerun reported no considered probes";
    }

    // Sharded fallback: multi policies publish no shard scoring, so the
    // sharded engine must fall back to its serial path and still honor
    // the attached planner.
    ProbePlanner fallback_planner({.replan_interval = replan_interval});
    ShardedStreamEngine sharded(topology,
                                {.capacity = capacity,
                                 .warmup = warmup,
                                 .window = window,
                                 .shards = 4,
                                 .threads = 2,
                                 .probe_planner = &fallback_planner});
    EngineTraceObserver trace;
    const EngineRunResult run = sharded.Run(stream_ptrs, *plain, {&trace});
    if (run.counted_results != naive_run.counted_results) {
      return context.str() + ": sharded-fallback rerun diverges";
    }
    if (auto mismatch = CompareEngineTraces(
            context.str() + " [sharded-fallback]", naive_trace, trace)) {
      return mismatch;
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Suite 11: serve_scheduler — N concurrent sessions multiplexed through a
// serve::SessionScheduler (seed-rotated WRR quotas, weights and worker
// counts, randomly chunked arrival interleavings, and sometimes a tight
// queue that sheds offers at the high watermark) against a solo
// StreamEngine batch run per session on exactly the arrivals the
// scheduler accepted, bit for bit on full per-step traces. This is the
// service contract: multiplexing adds admission, backpressure and
// fairness, never a different join.

std::optional<std::string> ServeSchedulerTrial(std::uint64_t seed) {
  ScenarioGenerator::Options options;
  options.min_length = 24;
  options.max_length = 64;
  options.min_capacity = 2;
  options.max_capacity = 8;
  options.max_horizon = 12;
  options.window_probability = 0.3;
  const ScenarioGenerator generator(options);

  Rng aux(seed ^ kAuxSalt);
  const int num_sessions = 2 + static_cast<int>(seed % 3);

  struct PlannedSession {
    Scenario scenario;
    std::vector<Value> r, s;
    // Policies are stateful, so the served session and its solo reference
    // each need their own instance; identical deterministic construction
    // makes them twins.
    std::unique_ptr<ReplacementPolicy> served_policy;
    std::unique_ptr<ReplacementPolicy> solo_policy;
    const char* family = "";
    int weight = 1;
    // What the scheduler actually admitted into the queue: under a tight
    // watermark this is a concatenation of accepted chunk prefixes, and
    // it is the realization the solo reference replays.
    std::vector<Value> accepted_r, accepted_s;
  };
  std::vector<PlannedSession> plans;
  for (int i = 0; i < num_sessions; ++i) {
    PlannedSession plan;
    const std::uint64_t session_seed =
        seed + (static_cast<std::uint64_t>(i + 1) << 32);
    plan.scenario = generator.Sample(session_seed);
    Rng realization_rng(session_seed ^ kRealizationSalt);
    auto [r, s] = SampleRealization(plan.scenario, realization_rng);
    plan.r = std::move(r);
    plan.s = std::move(s);
    plan.weight = static_cast<int>(aux.UniformInt(1, 3));

    const int family = static_cast<int>(aux.UniformInt(0, 3));
    std::optional<Time> lifetime;
    if (aux.UniformReal() < 0.5) lifetime = aux.UniformInt(4, 24);
    const Time fixed_life = aux.UniformInt(4, 24);
    for (int copy = 0; copy < 2; ++copy) {
      std::unique_ptr<ReplacementPolicy> policy;
      switch (family) {
        case 0:
          policy = std::make_unique<ProbPolicy>(lifetime);
          plan.family = "PROB";
          break;
        case 1:
          policy = std::make_unique<LifePolicy>(fixed_life);
          plan.family = "LIFE";
          break;
        case 2:
          policy = std::make_unique<RandomPolicy>(session_seed ^ kAuxSalt,
                                                  lifetime);
          plan.family = "RAND";
          break;
        default: {
          HeebJoinPolicy::Options heeb_options;
          heeb_options.mode = HeebJoinPolicy::Mode::kDirect;
          heeb_options.alpha = plan.scenario.alpha;
          heeb_options.horizon = plan.scenario.horizon;
          heeb_options.refresh_interval = 8;
          policy = std::make_unique<HeebJoinPolicy>(
              plan.scenario.r_process.get(), plan.scenario.s_process.get(),
              heeb_options);
          plan.family = "HEEB";
          break;
        }
      }
      (copy == 0 ? plan.served_policy : plan.solo_policy) =
          std::move(policy);
    }
    plans.push_back(std::move(plan));
  }

  constexpr Time kQuotas[] = {1, 2, 5, 16, 64};
  serve::SessionScheduler::Options sched_options;
  sched_options.max_sessions = static_cast<std::size_t>(num_sessions);
  sched_options.quota_unit = kQuotas[seed % 5];
  sched_options.threads = DiffServe() ? 4 : 1 + static_cast<int>(seed % 4);
  const bool throttled = aux.UniformReal() < 0.35;
  if (throttled) {
    sched_options.queue_capacity = 24;
    sched_options.high_watermark = 12;
  }
  serve::SessionScheduler scheduler(StreamTopology::Binary(), sched_options);

  std::deque<BinaryPolicyAdapter> served_adapters;
  std::vector<EngineTraceObserver> served_traces(plans.size());
  std::vector<serve::SessionId> ids;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    PlannedSession& plan = plans[i];
    served_adapters.emplace_back(plan.served_policy.get());
    serve::SessionConfig config;
    config.engine = {.capacity = plan.scenario.capacity,
                     .warmup = plan.scenario.warmup,
                     .window = plan.scenario.window};
    config.policy = &served_adapters.back();
    config.observers = {&served_traces[i]};
    config.weight = plan.weight;
    serve::Admission admission = scheduler.Open(config);
    if (!admission.ok()) {
      return plan.scenario.description +
             ": unexpected admission reject: " + admission.reject_reason;
    }
    ids.push_back(admission.id);
  }
  {
    // The table is full: one more Open must reject without touching any
    // live session (the config is never bound on reject, so borrowing an
    // already-bound adapter here is safe).
    serve::SessionConfig config;
    config.engine = {.capacity = 4};
    config.policy = &served_adapters.back();
    serve::Admission overflow = scheduler.Open(config);
    if (overflow.ok()) {
      return "admission past max_sessions unexpectedly accepted";
    }
  }

  // Open-loop interleaving: per iteration each live session offers a
  // random 1..17-step chunk and one WRR round runs. Shed chunks simply
  // never happened; consumed still advances, so the loop terminates.
  std::vector<std::size_t> consumed(plans.size(), 0);
  std::vector<bool> finished(plans.size(), false);
  bool any_live = true;
  while (any_live) {
    any_live = false;
    for (std::size_t i = 0; i < plans.size(); ++i) {
      if (finished[i]) continue;
      PlannedSession& plan = plans[i];
      const std::size_t remaining = plan.r.size() - consumed[i];
      if (remaining == 0) {
        scheduler.Finish(ids[i]);
        finished[i] = true;
        continue;
      }
      any_live = true;
      const std::size_t take = std::min(
          remaining, static_cast<std::size_t>(aux.UniformInt(1, 17)));
      const auto begin = static_cast<std::ptrdiff_t>(consumed[i]);
      const auto end = static_cast<std::ptrdiff_t>(consumed[i] + take);
      const std::vector<Value> chunk_r(plan.r.begin() + begin,
                                       plan.r.begin() + end);
      const std::vector<Value> chunk_s(plan.s.begin() + begin,
                                       plan.s.begin() + end);
      const std::size_t accepted =
          scheduler.Offer(ids[i], {&chunk_r, &chunk_s});
      const auto accepted_end = static_cast<std::ptrdiff_t>(accepted);
      plan.accepted_r.insert(plan.accepted_r.end(), chunk_r.begin(),
                             chunk_r.begin() + accepted_end);
      plan.accepted_s.insert(plan.accepted_s.end(), chunk_s.begin(),
                             chunk_s.begin() + accepted_end);
      consumed[i] += take;
    }
    scheduler.RunRound();
  }
  scheduler.Drain();

  std::int64_t total_accepted = 0;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    PlannedSession& plan = plans[i];
    total_accepted += static_cast<std::int64_t>(plan.accepted_r.size());

    std::ostringstream context;
    context << plan.scenario.description << " family=" << plan.family
            << " session=" << i << "/" << num_sessions
            << " quota=" << sched_options.quota_unit
            << " threads=" << sched_options.threads
            << (throttled ? " throttled" : "")
            << " steps=" << plan.accepted_r.size();

    if (!scheduler.closed(ids[i])) {
      return context.str() + ": session not closed after Drain";
    }
    StreamEngine solo_engine(StreamTopology::Binary(),
                             {.capacity = plan.scenario.capacity,
                              .warmup = plan.scenario.warmup,
                              .window = plan.scenario.window});
    BinaryPolicyAdapter solo_adapter(plan.solo_policy.get());
    EngineTraceObserver solo_trace;
    const EngineRunResult solo = solo_engine.Run(
        {&plan.accepted_r, &plan.accepted_s}, solo_adapter, {&solo_trace});

    const EngineRunResult& served = scheduler.result(ids[i]);
    if (served.total_results != solo.total_results ||
        served.counted_results != solo.counted_results) {
      std::ostringstream out;
      out << context.str() << ": result counts diverge (solo "
          << solo.total_results << "/" << solo.counted_results << ", served "
          << served.total_results << "/" << served.counted_results << ")";
      return out.str();
    }
    if (auto mismatch = CompareEngineTraces(context.str(), solo_trace,
                                            served_traces[i])) {
      return mismatch;
    }
  }

  // Accounting closes: every accepted step was executed exactly once, and
  // the latency slices cover exactly the executed steps.
  const serve::SchedulerStats& stats = scheduler.stats();
  if (stats.steps_offered != total_accepted ||
      stats.steps_executed != total_accepted) {
    std::ostringstream out;
    out << "scheduler accounting diverges from accepted arrivals (accepted "
        << total_accepted << ", offered " << stats.steps_offered
        << ", executed " << stats.steps_executed << ")";
    return out.str();
  }
  std::int64_t latency_steps = 0;
  for (const serve::SliceLatency& slice : scheduler.slice_latencies()) {
    latency_steps += slice.steps;
  }
  if (latency_steps != total_accepted) {
    std::ostringstream out;
    out << "latency slices cover " << latency_steps << " steps, expected "
        << total_accepted;
    return out.str();
  }
  if (stats.sessions_rejected != 1 ||
      stats.sessions_admitted != num_sessions ||
      stats.sessions_closed != num_sessions) {
    return "admission counters diverge from the session roster";
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Suite 12: batch_scoring — the batched SoA scoring kernels against the
// scalar per-tuple path, bit for bit on full per-step traces. Each trial
// rotates over every batch-scorable policy family (HEEB kDirect /
// kTimeIncremental / kWalkTable, PROB, LIFE, caching HEEB) and runs the
// same realization four ways: serial batch-off (baseline), serial
// batch-on, sharded 4x2 batch-off, sharded 4x2 batch-on. The kernels
// preserve per-lane operation order, so every run must reproduce the
// baseline exactly — scores, retained sets, produced counts, telemetry.
// SJOIN_DIFF_BATCH pins all four runs to one flag value instead (see
// DiffBatch above).

std::optional<std::string> BatchScoringTrial(std::uint64_t seed) {
  const bool off_flag = DiffBatch().value_or(false);
  const bool on_flag = DiffBatch().value_or(true);
  const int variant = static_cast<int>(seed % 6);

  if (variant == 5) {
    // Caching surface: HeebCachingPolicy kDirect (CachingHeebBatch fused
    // kernel) or kWalkTable (precomputed-table gather) under the
    // CacheSimulator, serial and sharded, batch off and on. All four
    // hit/miss counters must agree with the serial batch-off baseline.
    ScenarioGenerator::Options options;
    options.min_length = 48;
    options.max_length = 110;
    options.min_capacity = 2;
    options.max_capacity = 6;
    options.max_horizon = 12;
    options.window_probability = 0.3;
    Rng aux(seed ^ kAuxSalt);
    const bool walk_mode = aux.UniformReal() < 0.5;
    options.pool = walk_mode ? ScenarioGenerator::Pool::kWalks
                             : ScenarioGenerator::Pool::kIndependent;
    ScenarioGenerator generator(options);
    Scenario scenario = generator.Sample(seed);
    const StochasticProcess& reference = *scenario.r_process;
    Rng realization_rng(seed ^ kRealizationSalt);
    std::vector<Value> references =
        SampleStream(reference, scenario.length, realization_rng);

    HeebCachingPolicy::Options caching_options;
    caching_options.mode = walk_mode ? HeebCachingPolicy::Mode::kWalkTable
                                     : HeebCachingPolicy::Mode::kDirect;
    caching_options.alpha = scenario.alpha;
    caching_options.horizon = scenario.horizon;
    HeebCachingPolicy policy(&reference, caching_options);

    CacheSimulator::Options cache_options;
    cache_options.capacity = scenario.capacity;
    cache_options.warmup = scenario.warmup;
    cache_options.window = scenario.window;
    auto run_cache = [&](bool batch, int shards, int threads) {
      ScopedScoringBatch scoped(batch);
      CacheSimulator::Options run_options = cache_options;
      if (shards > 0) {
        run_options.shards = shards;
        run_options.threads = threads;
      }
      return CacheSimulator(run_options).Run(references, policy);
    };

    const CacheRunResult base = run_cache(off_flag, 0, 0);
    struct CacheCase {
      const char* name;
      bool batch;
      int shards;
      int threads;
    };
    const CacheCase kCases[] = {{"serial batch-on", on_flag, 0, 0},
                                {"sharded batch-off", off_flag, 4, 2},
                                {"sharded batch-on", on_flag, 4, 2}};
    for (const CacheCase& c : kCases) {
      const CacheRunResult run = run_cache(c.batch, c.shards, c.threads);
      if (run.hits != base.hits || run.misses != base.misses ||
          run.counted_hits != base.counted_hits ||
          run.counted_misses != base.counted_misses) {
        std::ostringstream out;
        out << scenario.description << " policy=" << policy.name() << " ["
            << c.name << "]: cache counters diverge from serial batch-off "
            << "(base " << base.hits << "h/" << base.misses << "m counted "
            << base.counted_hits << "/" << base.counted_misses << ", got "
            << run.hits << "h/" << run.misses << "m counted "
            << run.counted_hits << "/" << run.counted_misses << ")";
        return out.str();
      }
    }
    return std::nullopt;
  }

  ScenarioGenerator::Options options;
  options.min_length = 32;
  options.max_length = 80;
  options.min_capacity = 2;
  options.max_capacity = 8;
  options.max_horizon = 12;
  // Walk-table HEEB needs random-walk processes; the rest sample from the
  // independent pool. kTimeIncremental runs unwindowed (as in
  // sharded_engine) so the lazy Corollary 3 advance is exercised without
  // window-expiry churn masking it.
  options.pool = variant == 2 ? ScenarioGenerator::Pool::kWalks
                              : ScenarioGenerator::Pool::kIndependent;
  options.window_probability = 0.3;
  ScenarioGenerator generator(options);
  Scenario scenario = generator.Sample(seed);
  if (variant == 1) scenario.window.reset();

  Rng aux(seed ^ kAuxSalt);
  Rng realization_rng(seed ^ kRealizationSalt);
  auto [r, s] = SampleRealization(scenario, realization_rng);

  std::unique_ptr<ReplacementPolicy> policy;
  switch (variant) {
    case 0:
    case 1:
    case 2: {
      HeebJoinPolicy::Options heeb_options;
      heeb_options.mode = variant == 0 ? HeebJoinPolicy::Mode::kDirect
                          : variant == 1
                              ? HeebJoinPolicy::Mode::kTimeIncremental
                              : HeebJoinPolicy::Mode::kWalkTable;
      heeb_options.alpha = scenario.alpha;
      heeb_options.horizon = scenario.horizon;
      heeb_options.refresh_interval = 8;
      policy = std::make_unique<HeebJoinPolicy>(scenario.r_process.get(),
                                                scenario.s_process.get(),
                                                heeb_options);
      break;
    }
    case 3: {
      std::optional<Time> assumed_lifetime;
      if (aux.UniformReal() < 0.5) assumed_lifetime = aux.UniformInt(4, 24);
      policy = std::make_unique<ProbPolicy>(assumed_lifetime);
      break;
    }
    default:
      policy = std::make_unique<LifePolicy>(aux.UniformInt(4, 24));
      break;
  }
  BinaryPolicyAdapter adapter(policy.get());

  const StreamEngine::Options engine_options{.capacity = scenario.capacity,
                                             .warmup = scenario.warmup,
                                             .window = scenario.window};
  auto run_engine = [&](bool batch, int shards, int threads,
                        EngineTraceObserver* trace, PerfObserver* perf) {
    ScopedScoringBatch scoped(batch);
    if (shards == 0) {
      StreamEngine engine(StreamTopology::Binary(), engine_options);
      return engine.Run({&r, &s}, adapter, {perf, trace});
    }
    ShardedStreamEngine engine(StreamTopology::Binary(),
                               {.capacity = scenario.capacity,
                                .warmup = scenario.warmup,
                                .window = scenario.window,
                                .shards = shards,
                                .threads = threads});
    return engine.Run({&r, &s}, adapter, {perf, trace});
  };

  EngineTraceObserver base_trace;
  PerfObserver base_perf;
  const EngineRunResult base_run =
      run_engine(off_flag, 0, 0, &base_trace, &base_perf);

  struct EngineCase {
    const char* name;
    bool batch;
    int shards;
    int threads;
  };
  const EngineCase kCases[] = {{"serial batch-on", on_flag, 0, 0},
                               {"sharded batch-off", off_flag, 4, 2},
                               {"sharded batch-on", on_flag, 4, 2}};
  for (const EngineCase& c : kCases) {
    EngineTraceObserver trace;
    PerfObserver perf;
    const EngineRunResult run =
        run_engine(c.batch, c.shards, c.threads, &trace, &perf);

    std::ostringstream context;
    context << scenario.description << " policy=" << policy->name() << " ["
            << c.name << "]";
    if (run.total_results != base_run.total_results ||
        run.counted_results != base_run.counted_results) {
      std::ostringstream out;
      out << context.str() << ": result counts diverge from serial "
          << "batch-off (base " << base_run.total_results << "/"
          << base_run.counted_results << ", got " << run.total_results
          << "/" << run.counted_results << ")";
      return out.str();
    }
    if (perf.telemetry().peak_candidates !=
            base_perf.telemetry().peak_candidates ||
        perf.telemetry().steps != base_perf.telemetry().steps) {
      std::ostringstream out;
      out << context.str() << ": telemetry diverges from serial batch-off "
          << "(base peak " << base_perf.telemetry().peak_candidates
          << " steps " << base_perf.telemetry().steps << ", got peak "
          << perf.telemetry().peak_candidates << " steps "
          << perf.telemetry().steps << ")";
      return out.str();
    }
    if (auto mismatch =
            CompareEngineTraces(context.str(), base_trace, trace)) {
      return mismatch;
    }
  }
  return std::nullopt;
}

const std::vector<DifferentialSuite>& Registry() {
  static const std::vector<DifferentialSuite> suites = {
      {"ecb_heeb_scoring",
       "tabulated ECB / HEEB closed forms vs from-scratch recomputation",
       1000, &EcbHeebScoringTrial},
      {"heeb_policy_join",
       "HeebJoinPolicy kDirect vs naive policy+simulator; incremental modes "
       "vs kDirect",
       1000, &HeebPolicyJoinTrial},
      {"min_cost_flow",
       "SolveMinCostFlow vs exhaustive matching enumeration; reused solver "
       "vs cold solves",
       1000, &MinCostFlowTrial},
      {"flow_expect",
       "template+pruned FlowExpectPolicy vs the rebuild-everything oracle, "
       "prefilter on and off",
       1000, &FlowExpectTrial},
      {"offline_opt",
       "OptOfflinePolicy flow schedule vs exhaustive eviction search", 1000,
       &OfflineOptTrial},
      {"join_simulator",
       "JoinSimulator and two-stream MultiJoinSimulator vs the naive "
       "simulator",
       1000, &JoinSimulatorTrial},
      {"reduction",
       "Theorem 1 caching<->joining reduction (windowed and not); "
       "CacheSimulator vs naive cache loop; caching HEEB vs naive oracle",
       1000, &ReductionTrial},
      {"sharded_engine",
       "ShardedStreamEngine at shards {1,2,4,8} x worker threads vs the "
       "serial StreamEngine: per-step retained/cache/produced traces and "
       "telemetry, bit for bit",
       1000, &ShardedEngineTrial},
      {"adaptive_engine",
       "skew-adaptive ShardedStreamEngine on Zipf / bursty / "
       "regime-switching workloads vs the serial StreamEngine, bit for "
       "bit, plus rerun determinism of the rebalance history",
       1000, &AdaptiveEngineTrial},
      {"multi_planner",
       "runtime probe planner on 3-way chain / 5-way star topologies x "
       "{MULTI-HEEB, MULTI-PROB, MULTI-LIFE, EDGE-BUDGET} vs the naive "
       "fixed-order engine, bit for bit, score memo off and on, plus rerun "
       "determinism of the planner statistics",
       1000, &MultiPlannerTrial},
      {"serve_scheduler",
       "N sessions multiplexed through a serve::SessionScheduler (random "
       "quotas, weights, worker counts, chunked interleavings, watermark "
       "shedding) vs a solo StreamEngine run per session on the accepted "
       "arrivals, bit for bit, plus scheduler accounting invariants",
       1000, &ServeSchedulerTrial},
      {"batch_scoring",
       "batched SoA scoring kernels vs the scalar per-tuple path across "
       "{HEEB kDirect/kTimeIncremental/kWalkTable, PROB, LIFE, caching "
       "HEEB} x serial/sharded engines, bit for bit on full traces",
       1000, &BatchScoringTrial},
  };
  return suites;
}

}  // namespace

const std::vector<DifferentialSuite>& AllDifferentialSuites() {
  return Registry();
}

const DifferentialSuite* FindDifferentialSuite(std::string_view name) {
  for (const DifferentialSuite& suite : Registry()) {
    if (name == suite.name) return &suite;
  }
  return nullptr;
}

DifferentialReport RunDifferentialSuite(const DifferentialSuite& suite,
                                        std::uint64_t base_seed, int trials) {
  SJOIN_CHECK_GE(trials, 1);
  DifferentialReport report;
  report.suite = suite.name;
  for (int i = 0; i < trials; ++i) {
    std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    std::optional<std::string> failure = suite.run(seed);
    ++report.trials_run;
    if (failure.has_value()) {
      if (report.failures == 0) {
        report.first_failing_seed = seed;
        report.first_failure = *failure;
      }
      ++report.failures;
    }
  }
  return report;
}

std::string DifferentialReport::Summary() const {
  std::ostringstream out;
  out << "suite '" << suite << "': " << trials_run << " trials, " << failures
      << " failures";
  if (failures > 0) {
    out << "\n  first failure (seed " << first_failing_seed
        << "): " << first_failure << "\n  reproduce: fuzz_differential"
        << " --suite=" << suite << " --seed=" << first_failing_seed
        << " --trials=1";
  }
  return out.str();
}

int TrialCountFromEnv(int fallback) {
  const char* env = std::getenv("SJOIN_DIFF_TRIALS");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(env, &end, 10);
  if (end == nullptr || *end != '\0' || parsed <= 0) return fallback;
  return static_cast<int>(parsed);
}

}  // namespace testing
}  // namespace sjoin
