#include "sjoin/testing/brute_force_opt.h"

#include <algorithm>
#include <map>
#include <utility>

#include "sjoin/common/check.h"
#include "sjoin/engine/tuple.h"

namespace sjoin {
namespace testing {
namespace {

/// Exhaustive searcher. Tuple ids follow the simulator's scheme
/// (TupleIdAt), so id -> (side, arrival, value) is recoverable from the
/// realizations.
class Searcher {
 public:
  Searcher(const std::vector<Value>& r, const std::vector<Value>& s,
           std::size_t capacity, std::optional<Time> window)
      : r_(r), s_(s), capacity_(capacity), window_(window) {}

  std::int64_t Best() { return Rec(0, {}); }

 private:
  Value ValueOf(TupleId id) const {
    std::size_t t = static_cast<std::size_t>(id / 2);
    return (id % 2 == 0) ? r_[t] : s_[t];
  }
  Time ArrivalOf(TupleId id) const { return static_cast<Time>(id / 2); }
  bool IsR(TupleId id) const { return id % 2 == 0; }

  /// Max benefit obtainable from step t onward, entering it with `cache`
  /// (sorted; the cache selected at the end of step t - 1).
  std::int64_t Rec(Time t, std::vector<TupleId> cache) {
    if (t >= static_cast<Time>(r_.size())) return 0;
    auto key = std::make_pair(t, cache);
    auto memo_it = memo_.find(key);
    if (memo_it != memo_.end()) return memo_it->second;

    // Phase 1: arrivals join the inherited cache.
    Value r_value = r_[static_cast<std::size_t>(t)];
    Value s_value = s_[static_cast<std::size_t>(t)];
    std::int64_t benefit = 0;
    for (TupleId id : cache) {
      if (window_.has_value() && t - ArrivalOf(id) > *window_) continue;
      if (IsR(id) ? ValueOf(id) == s_value : ValueOf(id) == r_value) {
        ++benefit;
      }
    }

    // Phase 2: try every feasible new cache.
    std::vector<TupleId> candidates = cache;
    candidates.push_back(TupleIdAt(StreamSide::kR, t));
    candidates.push_back(TupleIdAt(StreamSide::kS, t));
    std::int64_t best_future = 0;
    std::size_t num_subsets = std::size_t{1} << candidates.size();
    for (std::size_t mask = 0; mask < num_subsets; ++mask) {
      std::vector<TupleId> next;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if ((mask >> i) & 1) next.push_back(candidates[i]);
      }
      if (next.size() > capacity_) continue;
      std::sort(next.begin(), next.end());
      best_future = std::max(best_future, Rec(t + 1, std::move(next)));
    }

    std::int64_t total = benefit + best_future;
    memo_.emplace(std::move(key), total);
    return total;
  }

  const std::vector<Value>& r_;
  const std::vector<Value>& s_;
  std::size_t capacity_;
  std::optional<Time> window_;
  std::map<std::pair<Time, std::vector<TupleId>>, std::int64_t> memo_;
};

}  // namespace

std::int64_t BruteForceOfflineOptBenefit(const std::vector<Value>& r,
                                         const std::vector<Value>& s,
                                         std::size_t capacity,
                                         std::optional<Time> window) {
  SJOIN_CHECK_EQ(r.size(), s.size());
  SJOIN_CHECK_GE(capacity, 1u);
  // 2^(capacity + 2) subsets per state and states keyed by id subsets:
  // strictly small instances only.
  SJOIN_CHECK_LE(r.size(), 12u);
  SJOIN_CHECK_LE(capacity, 4u);
  return Searcher(r, s, capacity, window).Best();
}

}  // namespace testing
}  // namespace sjoin
