#include "sjoin/testing/naive_simulator.h"

#include <algorithm>

#include "sjoin/common/check.h"
#include "sjoin/stochastic/stream_history.h"

namespace sjoin {
namespace testing {

NaiveJoinSimulator::NaiveJoinSimulator(JoinSimulator::Options options)
    : options_(options) {
  SJOIN_CHECK_GE(options_.capacity, 1u);
  SJOIN_CHECK_GE(options_.warmup, 0);
  if (options_.window.has_value()) SJOIN_CHECK_GE(*options_.window, 0);
}

JoinRunResult NaiveJoinSimulator::Run(const std::vector<Value>& r,
                                      const std::vector<Value>& s,
                                      ReplacementPolicy& policy) const {
  SJOIN_CHECK_EQ(r.size(), s.size());
  policy.Reset();

  JoinRunResult result;
  std::vector<Tuple> cache;
  StreamHistory history_r;
  StreamHistory history_s;

  Time len = static_cast<Time>(r.size());
  for (Time t = 0; t < len; ++t) {
    Tuple r_tuple{TupleIdAt(StreamSide::kR, t), StreamSide::kR,
                  r[static_cast<std::size_t>(t)], t};
    Tuple s_tuple{TupleIdAt(StreamSide::kS, t), StreamSide::kS,
                  s[static_cast<std::size_t>(t)], t};

    // Phase 1: arrivals join with the cache chosen at the previous step,
    // one full linear scan per step.
    std::int64_t produced = 0;
    for (const Tuple& cached : cache) {
      if (!InWindow(cached, t, options_.window)) continue;
      if (cached.side == StreamSide::kS && cached.value == r_tuple.value) {
        ++produced;
      }
      if (cached.side == StreamSide::kR && cached.value == s_tuple.value) {
        ++produced;
      }
    }
    result.total_results += produced;
    if (t >= options_.warmup) result.counted_results += produced;

    // Phase 2: the policy picks the new cache content. All containers are
    // built fresh; candidate resolution is a linear search.
    history_r.Append(r_tuple.value);
    history_s.Append(s_tuple.value);
    std::vector<Tuple> arrivals{r_tuple, s_tuple};
    PolicyContext ctx;
    ctx.now = t;
    ctx.capacity = options_.capacity;
    ctx.cached = &cache;
    ctx.arrivals = &arrivals;
    ctx.history_r = &history_r;
    ctx.history_s = &history_s;
    ctx.window = options_.window;

    std::vector<TupleId> retained = policy.SelectRetained(ctx);
    SJOIN_CHECK_LE(retained.size(), options_.capacity);

    std::vector<Tuple> candidates;
    for (const Tuple& tuple : cache) candidates.push_back(tuple);
    for (const Tuple& tuple : arrivals) candidates.push_back(tuple);
    ++result.telemetry.steps;
    result.telemetry.peak_candidates =
        std::max(result.telemetry.peak_candidates,
                 static_cast<std::int64_t>(candidates.size()));

    std::vector<Tuple> new_cache;
    for (TupleId id : retained) {
      auto it = std::find_if(
          candidates.begin(), candidates.end(),
          [id](const Tuple& tuple) { return tuple.id == id; });
      SJOIN_CHECK_MSG(it != candidates.end(),
                      "policy retained a tuple that is not a candidate");
      for (const Tuple& already : new_cache) {
        SJOIN_CHECK_MSG(already.id != id,
                        "policy retained the same tuple twice");
      }
      new_cache.push_back(*it);
    }
    cache = new_cache;

    if (options_.track_cache_composition) {
      std::size_t r_count = 0;
      for (const Tuple& tuple : cache) {
        if (tuple.side == StreamSide::kR) ++r_count;
      }
      result.r_fraction_by_time.push_back(
          cache.empty() ? 0.0
                        : static_cast<double>(r_count) /
                              static_cast<double>(cache.size()));
    }
  }
  return result;
}

NaiveCacheSimulator::NaiveCacheSimulator(CacheSimulator::Options options)
    : options_(options) {
  SJOIN_CHECK_GE(options_.capacity, 1u);
  SJOIN_CHECK_GE(options_.warmup, 0);
  if (options_.window.has_value()) SJOIN_CHECK_GE(*options_.window, 0);
}

CacheRunResult NaiveCacheSimulator::Run(
    const std::vector<Value>& references, CachingPolicy& policy) const {
  policy.Reset();

  CacheRunResult result;
  // Cached values with the time each was fetched or last served a hit;
  // under a window, older entries are stale and miss until refetched.
  std::vector<Value> cache;
  std::vector<Time> fetched_at;
  StreamHistory history;

  for (Time t = 0; t < static_cast<Time>(references.size()); ++t) {
    Value v = references[static_cast<std::size_t>(t)];
    history.Append(v);

    bool hit = false;
    for (std::size_t i = 0; i < cache.size(); ++i) {
      if (cache[i] != v) continue;
      if (!options_.window.has_value() ||
          t - fetched_at[i] <= *options_.window) {
        hit = true;
        fetched_at[i] = t;  // A hit serves the fresh tuple: TTL refresh.
      } else {
        // Expired copy of the referenced value: dead weight (expiry is
        // monotone), dropped so the policy sees v only as the
        // demand-fetched candidate.
        cache.erase(cache.begin() + static_cast<std::ptrdiff_t>(i));
        fetched_at.erase(fetched_at.begin() +
                         static_cast<std::ptrdiff_t>(i));
      }
      break;
    }
    if (hit) {
      ++result.hits;
      if (t >= options_.warmup) ++result.counted_hits;
    } else {
      ++result.misses;
      if (t >= options_.warmup) ++result.counted_misses;
    }

    CachingContext ctx;
    ctx.now = t;
    ctx.capacity = options_.capacity;
    ctx.cached = &cache;
    ctx.referenced = v;
    ctx.hit = hit;
    ctx.history = &history;
    policy.Observe(ctx);

    if (!hit) {
      std::vector<Value> retained = policy.SelectRetained(ctx);
      SJOIN_CHECK_LE(retained.size(), options_.capacity);
      std::vector<Time> retained_fetched_at;
      retained_fetched_at.reserve(retained.size());
      std::vector<Value> seen;
      for (Value kept : retained) {
        for (Value already : seen) {
          SJOIN_CHECK_MSG(already != kept,
                          "policy retained the same value twice");
        }
        seen.push_back(kept);
        if (kept == v) {
          retained_fetched_at.push_back(t);  // The demand-fetched tuple.
          continue;
        }
        auto it = std::find(cache.begin(), cache.end(), kept);
        SJOIN_CHECK_MSG(it != cache.end(),
                        "policy retained a value that is not a candidate");
        retained_fetched_at.push_back(
            fetched_at[static_cast<std::size_t>(it - cache.begin())]);
      }
      cache = std::move(retained);
      fetched_at = std::move(retained_fetched_at);
    }
  }
  return result;
}

std::vector<TupleId> BinaryAsMultiPolicy::SelectRetained(
    const MultiPolicyContext& ctx) {
  SJOIN_CHECK_EQ(ctx.arrivals->size(), 2u);
  auto to_binary = [](const MultiTuple& tuple) {
    SJOIN_CHECK(tuple.stream == 0 || tuple.stream == 1);
    return Tuple{tuple.id,
                 tuple.stream == 0 ? StreamSide::kR : StreamSide::kS,
                 tuple.value, tuple.arrival};
  };
  std::vector<Tuple> cached;
  cached.reserve(ctx.cached->size());
  for (const MultiTuple& tuple : *ctx.cached) {
    cached.push_back(to_binary(tuple));
  }
  std::vector<Tuple> arrivals;
  arrivals.reserve(ctx.arrivals->size());
  for (const MultiTuple& tuple : *ctx.arrivals) {
    arrivals.push_back(to_binary(tuple));
  }
  PolicyContext binary_ctx;
  binary_ctx.now = ctx.now;
  binary_ctx.capacity = ctx.capacity;
  binary_ctx.cached = &cached;
  binary_ctx.arrivals = &arrivals;
  binary_ctx.history_r = &(*ctx.histories)[0];
  binary_ctx.history_s = &(*ctx.histories)[1];
  binary_ctx.window = ctx.window;
  return policy_->SelectRetained(binary_ctx);
}

}  // namespace testing
}  // namespace sjoin
