#ifndef SJOIN_TESTING_SCENARIO_GENERATOR_H_
#define SJOIN_TESTING_SCENARIO_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/common/types.h"
#include "sjoin/stochastic/process.h"

/// \file
/// Seeded random-scenario sampling for differential trials: a pair of
/// stream processes (walk / AR(1) / seasonal / linear-trend / scripted /
/// stationary), a cache size, an optional sliding window, and HEEB
/// lifetime-estimator parameters, all derived deterministically from one
/// uint64 seed so every failure reproduces from its seed alone.

namespace sjoin {
namespace testing {

/// One sampled experiment configuration.
struct Scenario {
  std::uint64_t seed = 0;
  std::unique_ptr<StochasticProcess> r_process;
  std::unique_ptr<StochasticProcess> s_process;
  std::size_t capacity = 2;
  Time length = 32;
  Time warmup = 0;
  std::optional<Time> window;
  /// L_exp parameter and truncation horizon for HEEB policies.
  double alpha = 5.0;
  Time horizon = 8;
  /// Human-readable shape, e.g. "trend(0.5)/seasonal" — for failure
  /// messages.
  std::string description;
};

/// Samples scenarios from a configurable process pool.
class ScenarioGenerator {
 public:
  /// Which process shapes a stream may take. Differential trials restrict
  /// the pool to match the optimized path under test (incremental HEEB
  /// needs independent steps, Corollary 5 equal-slope linear trends,
  /// Theorem 5(2) random walks).
  enum class Pool {
    /// Any supported process, including history-dependent walk and AR(1).
    kAny,
    /// Independent-step processes only (stationary / linear trend /
    /// seasonal / scripted).
    kIndependent,
    /// Both streams LinearTrendProcess with the same non-zero integer
    /// slope (value-incremental HEEB's requirement).
    kEqualSlopeTrends,
    /// Both streams random walks (walk-table HEEB's requirement).
    kWalks,
    /// Skewed independent-step processes: Zipf value popularity, bursty
    /// hot phases and regime switches that move the hot set mid-run
    /// (RegimeSwitchingProcess). The workloads the adaptive-sharding
    /// differential suites run on — a static value partition pins one
    /// shard here, so rebalancing actually engages.
    kSkewed,
  };

  struct Options {
    Pool pool = Pool::kIndependent;
    Time min_length = 32;
    Time max_length = 96;
    std::size_t min_capacity = 1;
    std::size_t max_capacity = 8;
    /// Probability that the scenario uses a sliding window.
    double window_probability = 0.0;
    Time max_horizon = 24;
  };

  explicit ScenarioGenerator(Options options) : options_(options) {}

  /// Deterministic: equal seeds (and options) produce equal scenarios.
  Scenario Sample(std::uint64_t seed) const;

  const Options& options() const { return options_; }

 private:
  std::unique_ptr<StochasticProcess> SampleProcess(
      Rng& rng, Time length, std::string* description) const;
  std::unique_ptr<StochasticProcess> SampleSkewedProcess(
      Rng& rng, std::string* description) const;

  Options options_;
};

/// Draws one realization pair of the scenario's processes via SampleNext.
std::pair<std::vector<Value>, std::vector<Value>> SampleRealization(
    const Scenario& scenario, Rng& rng);

/// Draws a single-stream realization from `process` (for caching trials).
std::vector<Value> SampleStream(const StochasticProcess& process, Time length,
                                Rng& rng);

}  // namespace testing
}  // namespace sjoin

#endif  // SJOIN_TESTING_SCENARIO_GENERATOR_H_
