#include "sjoin/testing/naive_flow_expect.h"

#include <utility>
#include <vector>

#include "sjoin/common/check.h"
#include "sjoin/core/dominance.h"
#include "sjoin/core/ecb.h"
#include "sjoin/flow/flow_graph.h"
#include "sjoin/flow/min_cost_flow.h"
#include "sjoin/stochastic/discrete_distribution.h"

namespace sjoin {
namespace testing {

NaiveFlowExpectPolicy::NaiveFlowExpectPolicy(
    const StochasticProcess* r_process, const StochasticProcess* s_process,
    Options options)
    : r_process_(r_process), s_process_(s_process), options_(options) {
  SJOIN_CHECK(r_process != nullptr && s_process != nullptr);
  SJOIN_CHECK_GE(options_.lookahead, 1);
}

std::vector<TupleId> NaiveFlowExpectPolicy::SelectRetained(
    const PolicyContext& ctx) {
  // Candidate tuples: cache contents plus the two arrivals (all determined
  // nodes of the first slice).
  std::vector<Tuple> candidates;
  candidates.reserve(ctx.cached->size() + ctx.arrivals->size());
  for (const Tuple& t : *ctx.cached) candidates.push_back(t);
  for (const Tuple& t : *ctx.arrivals) candidates.push_back(t);
  if (candidates.size() <= ctx.capacity) {
    std::vector<TupleId> all;
    all.reserve(candidates.size());
    for (const Tuple& t : candidates) all.push_back(t.id);
    return all;
  }

  Time t0 = ctx.now;
  Time l = options_.lookahead;

  // Predictive pmfs pred[side][j] for X^side_{t0+j}, j = 1..l.
  std::vector<DiscreteDistribution> pred[2];
  for (StreamSide side : {StreamSide::kR, StreamSide::kS}) {
    const StochasticProcess* process =
        side == StreamSide::kR ? r_process_ : s_process_;
    const StreamHistory* history =
        side == StreamSide::kR ? ctx.history_r : ctx.history_s;
    auto& out = pred[SideIndex(side)];
    out.resize(static_cast<std::size_t>(l) + 1);
    for (Time j = 1; j <= l; ++j) {
      out[static_cast<std::size_t>(j)] = process->Predict(*history, t0 + j);
    }
  }

  // Expected benefit of keeping node `n` through time t0+j+1, where j is
  // the slice the arc leaves. Determined nodes are candidates; undetermined
  // nodes are future arrivals (side, arrival offset j' in 1..l-1).
  auto det_benefit = [&](int c, Time j) {
    const Tuple& tuple = candidates[static_cast<std::size_t>(c)];
    const auto& partner = pred[SideIndex(Partner(tuple.side))];
    double p = partner[static_cast<std::size_t>(j + 1)].Prob(tuple.value);
    if (ctx.window.has_value() &&
        (t0 + j + 1) - tuple.arrival > *ctx.window) {
      p = 0.0;  // Sliding-window semantics: expired tuples join nothing.
    }
    return p;
  };
  auto undet_benefit = [&](StreamSide side, Time j_arrived, Time j) {
    if (ctx.window.has_value() && (j + 1) - j_arrived > *ctx.window) {
      return 0.0;
    }
    const auto& own = pred[SideIndex(side)];
    const auto& partner = pred[SideIndex(Partner(side))];
    return own[static_cast<std::size_t>(j_arrived)].OverlapProb(
        partner[static_cast<std::size_t>(j + 1)]);
  };

  // Theorem 3 prefilter, recomputed from scratch: tabulate each
  // candidate's cumulative benefit curve over the lookahead and discard a
  // dominated subset of at most (candidates - capacity). The summation
  // order matches the optimized policy's benefit table exactly, so the
  // curves — and therefore the discard set — are bit-identical.
  if (options_.dominance_prune) {
    std::vector<TabulatedEcb> curves;
    curves.reserve(candidates.size());
    for (int c = 0; c < static_cast<int>(candidates.size()); ++c) {
      std::vector<double> cumulative(static_cast<std::size_t>(l));
      double sum = 0.0;
      for (Time j = 0; j < l; ++j) {
        sum += det_benefit(c, j);
        cumulative[static_cast<std::size_t>(j)] = sum;
      }
      curves.emplace_back(std::move(cumulative));
    }
    std::vector<const EcbFn*> curve_ptrs;
    curve_ptrs.reserve(curves.size());
    for (const TabulatedEcb& curve : curves) curve_ptrs.push_back(&curve);
    std::vector<std::size_t> dominated = FindDominatedSubset(
        curve_ptrs, candidates.size() - ctx.capacity, l);
    if (!dominated.empty()) {
      std::vector<Tuple> kept;
      kept.reserve(candidates.size() - dominated.size());
      std::size_t next_dominated = 0;
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (next_dominated < dominated.size() &&
            dominated[next_dominated] == c) {
          ++next_dominated;
          continue;
        }
        kept.push_back(candidates[c]);
      }
      candidates = std::move(kept);
    }
    if (candidates.size() <= ctx.capacity) {
      std::vector<TupleId> all;
      all.reserve(candidates.size());
      for (const Tuple& t : candidates) all.push_back(t.id);
      return all;
    }
  }
  int n_c = static_cast<int>(candidates.size());

  // Build the slice graph. Slice j (0-based, j = 0..l-1) holds n_c
  // determined-node copies plus two undetermined nodes per earlier arrival
  // offset j' = 1..j.
  FlowGraph graph;
  NodeId source = graph.AddNode();
  NodeId sink = graph.AddNode();
  std::vector<NodeId> slice_base(static_cast<std::size_t>(l));
  for (Time j = 0; j < l; ++j) {
    slice_base[static_cast<std::size_t>(j)] =
        graph.AddNodes(n_c + 2 * static_cast<int>(j));
  }
  auto det_node = [&](Time j, int c) {
    return slice_base[static_cast<std::size_t>(j)] + static_cast<NodeId>(c);
  };
  auto undet_node = [&](Time j, Time j_arrived, StreamSide side) {
    return slice_base[static_cast<std::size_t>(j)] +
           static_cast<NodeId>(n_c) +
           static_cast<NodeId>(2 * (j_arrived - 1)) +
           static_cast<NodeId>(SideIndex(side));
  };

  // Source arcs: remember handles to read the decision afterwards.
  std::vector<std::int32_t> source_arcs;
  source_arcs.reserve(static_cast<std::size_t>(n_c));
  for (int c = 0; c < n_c; ++c) {
    source_arcs.push_back(graph.AddArc(source, det_node(0, c), 1, 0.0));
  }

  for (Time j = 0; j < l; ++j) {
    bool last_slice = (j == l - 1);
    // Horizontal arcs (or sink arcs from the last slice): keeping a tuple
    // through t0+j+1 earns its expected benefit there.
    for (int c = 0; c < n_c; ++c) {
      NodeId to = last_slice ? sink : det_node(j + 1, c);
      graph.AddArc(det_node(j, c), to, 1, -det_benefit(c, j));
    }
    for (Time j_arrived = 1; j_arrived <= j; ++j_arrived) {
      for (StreamSide side : {StreamSide::kR, StreamSide::kS}) {
        NodeId to = last_slice ? sink : undet_node(j + 1, j_arrived, side);
        graph.AddArc(undet_node(j, j_arrived, side), to, 1,
                     -undet_benefit(side, j_arrived, j));
      }
    }
    // Non-horizontal arcs within slice j (j >= 1): every duplicate node may
    // hand its slot to one of the two tuples arriving at t0+j.
    if (j >= 1) {
      for (StreamSide new_side : {StreamSide::kR, StreamSide::kS}) {
        NodeId new_node = undet_node(j, j, new_side);
        for (int c = 0; c < n_c; ++c) {
          graph.AddArc(det_node(j, c), new_node, 1, 0.0);
        }
        for (Time j_arrived = 1; j_arrived < j; ++j_arrived) {
          for (StreamSide side : {StreamSide::kR, StreamSide::kS}) {
            graph.AddArc(undet_node(j, j_arrived, side), new_node, 1, 0.0);
          }
        }
      }
    }
  }

  std::int64_t target = static_cast<std::int64_t>(ctx.capacity);
  MinCostFlowResult result = SolveMinCostFlow(graph, source, sink, target);
  SJOIN_CHECK_EQ(result.flow, target);

  // The decision at t0: candidates whose source arc carries flow stay.
  std::vector<TupleId> retained;
  retained.reserve(ctx.capacity);
  for (int c = 0; c < n_c; ++c) {
    if (graph.FlowOn(source, source_arcs[static_cast<std::size_t>(c)]) > 0) {
      retained.push_back(candidates[static_cast<std::size_t>(c)].id);
    }
  }
  return retained;
}

}  // namespace testing
}  // namespace sjoin
