#ifndef SJOIN_TESTING_NAIVE_SIMULATOR_H_
#define SJOIN_TESTING_NAIVE_SIMULATOR_H_

#include <optional>
#include <vector>

#include "sjoin/engine/cache_simulator.h"
#include "sjoin/engine/caching_policy.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/engine/replacement_policy.h"
#include "sjoin/multi/multi_join_simulator.h"

/// \file
/// Reference simulators with none of the StreamEngine's optimizations —
/// fresh containers every step, linear scans for both the join probe and
/// the candidate lookup, and no value->count index — used as the
/// differential-testing oracles for the engine. For any deterministic
/// policy, a run must reproduce the façade's result bit for bit
/// (including r_fraction_by_time and telemetry.peak_candidates).

namespace sjoin {
namespace testing {

/// Naive twin of JoinSimulator; accepts the same Options.
class NaiveJoinSimulator {
 public:
  explicit NaiveJoinSimulator(JoinSimulator::Options options);

  /// Simulates exactly like JoinSimulator::Run, sans every shortcut.
  JoinRunResult Run(const std::vector<Value>& r, const std::vector<Value>& s,
                    ReplacementPolicy& policy) const;

 private:
  JoinSimulator::Options options_;
};

/// Naive twin of CacheSimulator: the direct demand-fetch caching loop the
/// pre-engine CacheSimulator ran, frozen as an oracle now that the façade
/// routes through the Theorem 1 reduction and the engine. Extended with
/// the sliding-window TTL semantics (a cached tuple older than the window
/// misses until refetched; every hit refreshes its age) so the windowed
/// reduction path has an independent from-first-principles check.
class NaiveCacheSimulator {
 public:
  explicit NaiveCacheSimulator(CacheSimulator::Options options);

  /// Simulates exactly like CacheSimulator::Run, without the reduction.
  /// telemetry is left untouched (the direct loop has no candidate sets).
  CacheRunResult Run(const std::vector<Value>& references,
                     CachingPolicy& policy) const;

 private:
  CacheSimulator::Options options_;
};

/// Adapts a binary ReplacementPolicy to the two-stream multi-join problem.
/// MultiTupleIdAt(2, s, t) and TupleIdAt(side, t) coincide (both are
/// 2t + s), so ids pass through unchanged; stream 0 plays R and stream 1
/// plays S. Lets differential trials assert MultiJoinSimulator over
/// {(0, 1)} == JoinSimulator for the same policy. Kept independent of the
/// engine's BinaryPolicyAdapter on purpose: this is the oracle-side twin
/// the production adapter is verified against.
class BinaryAsMultiPolicy final : public MultiReplacementPolicy {
 public:
  /// `policy` is not owned and must outlive the adapter.
  explicit BinaryAsMultiPolicy(ReplacementPolicy* policy)
      : policy_(policy) {}

  void Reset() override { policy_->Reset(); }

  std::vector<TupleId> SelectRetained(const MultiPolicyContext& ctx) override;

  const char* name() const override { return policy_->name(); }

 private:
  ReplacementPolicy* policy_;
};

}  // namespace testing
}  // namespace sjoin

#endif  // SJOIN_TESTING_NAIVE_SIMULATOR_H_
