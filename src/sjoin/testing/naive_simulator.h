#ifndef SJOIN_TESTING_NAIVE_SIMULATOR_H_
#define SJOIN_TESTING_NAIVE_SIMULATOR_H_

#include <optional>
#include <vector>

#include "sjoin/engine/join_simulator.h"
#include "sjoin/engine/replacement_policy.h"
#include "sjoin/multi/multi_join_simulator.h"

/// \file
/// Reference join simulator with none of JoinSimulator's optimizations —
/// fresh containers every step, linear scans for both the join probe and
/// the candidate lookup, and no value->count index — used as the
/// differential-testing oracle for the engine. For any deterministic
/// policy, a run must reproduce JoinSimulator's JoinRunResult bit for bit
/// (including r_fraction_by_time and peak_candidates).

namespace sjoin {
namespace testing {

/// Naive twin of JoinSimulator; accepts the same Options.
class NaiveJoinSimulator {
 public:
  explicit NaiveJoinSimulator(JoinSimulator::Options options);

  /// Simulates exactly like JoinSimulator::Run, sans every shortcut.
  JoinRunResult Run(const std::vector<Value>& r, const std::vector<Value>& s,
                    ReplacementPolicy& policy) const;

 private:
  JoinSimulator::Options options_;
};

/// Adapts a binary ReplacementPolicy to the two-stream multi-join problem.
/// MultiTupleIdAt(2, s, t) and TupleIdAt(side, t) coincide (both are
/// 2t + s), so ids pass through unchanged; stream 0 plays R and stream 1
/// plays S. Lets differential trials assert MultiJoinSimulator over
/// {(0, 1)} == JoinSimulator for the same policy.
class BinaryAsMultiPolicy final : public MultiReplacementPolicy {
 public:
  /// `policy` is not owned and must outlive the adapter.
  explicit BinaryAsMultiPolicy(ReplacementPolicy* policy)
      : policy_(policy) {}

  void Reset() override { policy_->Reset(); }

  std::vector<TupleId> SelectRetained(const MultiPolicyContext& ctx) override;

  const char* name() const override { return policy_->name(); }

 private:
  ReplacementPolicy* policy_;
};

}  // namespace testing
}  // namespace sjoin

#endif  // SJOIN_TESTING_NAIVE_SIMULATOR_H_
