#ifndef SJOIN_TESTING_NAIVE_FLOW_EXPECT_H_
#define SJOIN_TESTING_NAIVE_FLOW_EXPECT_H_

#include <vector>

#include "sjoin/engine/replacement_policy.h"
#include "sjoin/stochastic/process.h"

/// \file
/// Frozen rebuild-everything FlowExpect oracle.
///
/// This is the pre-optimization FlowExpectPolicy::SelectRetained kept
/// verbatim: by-value Predict calls, a fresh FlowGraph every step, and the
/// one-shot SolveMinCostFlow entry point. The optimized policy
/// (graph templates, retained prediction buffers, workspace-reusing
/// solver, dominance prefilter) must stay bit-identical to this oracle —
/// same retained sets including tie-breaks — which the `flow_expect`
/// differential suite checks with the prefilter both on and off.
///
/// The oracle deliberately shares the production min-cost-flow *solver*
/// and the production `FindDominatedSubset`: those kernels have their own
/// oracles (the brute-force assignment enumerator behind the
/// `min_cost_flow` suite, and dominance_test), and sharing them makes
/// retained-set comparisons exact rather than tolerance-based. What this
/// oracle independently re-derives is everything FlowExpect itself adds:
/// candidate assembly, predictions, benefit arithmetic, graph shape, and
/// the decision read-back.

namespace sjoin {
namespace testing {

/// Reference FlowExpect: identical decisions to FlowExpectPolicy, none of
/// its caching. Intentionally slow; use only in tests.
class NaiveFlowExpectPolicy final : public ReplacementPolicy {
 public:
  struct Options {
    Time lookahead = 5;
    /// Mirror of FlowExpectPolicy::Options::dominance_prune, evaluated
    /// from scratch each step.
    bool dominance_prune = true;
  };

  NaiveFlowExpectPolicy(const StochasticProcess* r_process,
                        const StochasticProcess* s_process, Options options);

  std::vector<TupleId> SelectRetained(const PolicyContext& ctx) override;

  const char* name() const override { return "NAIVE-FLOWEXPECT"; }

 private:
  const StochasticProcess* r_process_;
  const StochasticProcess* s_process_;
  Options options_;
};

}  // namespace testing
}  // namespace sjoin

#endif  // SJOIN_TESTING_NAIVE_FLOW_EXPECT_H_
